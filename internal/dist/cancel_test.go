//go:build unix

package dist

import (
	"context"
	"errors"
	"syscall"
	"testing"
	"time"
)

// TestCancelKillsSpawnedRanks is the lifecycle regression for cancelled
// runs: with a spawned rank wedged (SIGSTOP — the stand-in for a hung
// kernel or dead peer), cancelling the step context must return promptly
// with context.Canceled — not a wire error, and not after waiting out
// stepTimeout — and must kill and reap every rank process so no orphans
// survive. Pre-fix, Step had no context path at all: the coordinator sat
// in recvFrame for the full five-minute step timeout and the stopped
// rank process outlived the caller.
func TestCancelKillsSpawnedRanks(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real rank processes")
	}
	tc := newTestConfig(t, "acoustic", true, 2, 2)
	co, err := Start(Config{Run: tc.cfg, InProcess: false})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer co.Close()
	owners, err := ReceiverOwnerParts(tc.geom, &tc.cfg)
	if err != nil {
		t.Fatalf("ReceiverOwnerParts: %v", err)
	}
	if err := co.SetReceiverParts(owners); err != nil {
		t.Fatalf("SetReceiverParts: %v", err)
	}
	if _, _, err := co.Step(); err != nil {
		t.Fatalf("healthy Step: %v", err)
	}

	pids := make([]int, len(co.ranks))
	for i, h := range co.ranks {
		if h.proc == nil {
			t.Fatalf("rank %d was not spawned", i)
		}
		pids[i] = h.proc.Process.Pid
	}

	// Wedge rank 1: it stops responding, and rank 0 blocks on the halo
	// exchange with it, so the step cannot complete on its own.
	if err := syscall.Kill(pids[1], syscall.SIGSTOP); err != nil {
		t.Fatalf("SIGSTOP rank 1: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = co.StepCtx(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("StepCtx returned %v, want context.Canceled", err)
	}
	// Far below stepTimeout (5 min): cancellation plus the kill/reap of a
	// SIGSTOPped process should take well under the 5 s abort grace.
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled step took %v — waited out a timeout instead of aborting", elapsed)
	}

	// No orphans: both rank processes must be killed AND reaped by the
	// time the abort returns — signal 0 probes existence without touching
	// the process, and must report ESRCH.
	for i, pid := range pids {
		if err := syscall.Kill(pid, 0); !errors.Is(err, syscall.ESRCH) {
			t.Errorf("rank %d (pid %d) still exists after cancel (kill 0 err=%v)", i, pid, err)
		}
	}

	// Close after an abort is a clean no-op.
	if err := co.Close(); err != nil {
		t.Errorf("Close after abort: %v", err)
	}
}
