package dist

import (
	"strings"
	"testing"
	"time"
)

// runFaulted drives a checkpointed in-process run with injected fault
// plans and returns the coordinator (left open for counter inspection)
// plus the delivered trajectory.
func runFaulted(t *testing.T, tc *testConfig, cycles int, cfg Config) (*Coordinator, []float64, [][]float64) {
	t.Helper()
	cfg.InProcess = true
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 1
	}
	if cfg.MaxRecoveries == 0 {
		cfg.MaxRecoveries = 2
	}
	return runDistConfig(t, tc, cycles, cfg)
}

// TestDropLinkRecovery: a severed coordinator uplink (failed NIC, fallen
// switch port) surfaces as a silent drop and recovers bitwise.
func TestDropLinkRecovery(t *testing.T) {
	const cycles = 10
	tc := newTestConfigScale(t, "acoustic", true, 2, 4, 0.004)
	wantT, want := runShared(t, tc, cycles)
	if maxAbsSamples(want) == 0 {
		t.Fatal("vacuous baseline: every receiver sample is exactly zero")
	}
	co, gotT, got := runFaulted(t, tc, cycles, Config{
		Fault: &FaultPlan{Kind: FaultDropLink, Rank: 1, Cycle: 6, Substep: 0},
	})
	defer co.Close()
	if rec, _ := co.Recoveries(); rec < 1 {
		t.Fatal("no recovery happened (droplink did not fire?)")
	}
	requireBitwise(t, "droplink", wantT, gotT, want, got)
}

// TestStallLinkRideOut: a link stall shorter than the heartbeat timeout
// delays frames but must not trigger recovery or disturb the trajectory.
func TestStallLinkRideOut(t *testing.T) {
	const cycles = 6
	tc := newTestConfig(t, "acoustic", true, 2, 4)
	wantT, want := runShared(t, tc, cycles)
	co, gotT, got := runFaulted(t, tc, cycles, Config{
		Fault: &FaultPlan{Kind: FaultStallLink, Rank: 1, Cycle: 3, Substep: 1, Delay: 100 * time.Millisecond},
	})
	defer co.Close()
	if rec, _ := co.Recoveries(); rec != 0 {
		t.Fatalf("short link stall triggered %d recoveries", rec)
	}
	requireBitwise(t, "stall-link ride-out", wantT, gotT, want, got)
}

// TestStallLinkDetected: a link stall beyond the heartbeat timeout is
// indistinguishable from a hung host — heartbeats queue behind the
// stalled conn — and must trigger recovery, bitwise.
func TestStallLinkDetected(t *testing.T) {
	const cycles = 10
	tc := newTestConfigScale(t, "acoustic", true, 2, 4, 0.004)
	wantT, want := runShared(t, tc, cycles)
	if maxAbsSamples(want) == 0 {
		t.Fatal("vacuous baseline: every receiver sample is exactly zero")
	}
	tc.cfg.HeartbeatMillis = 50
	tc.cfg.HeartbeatTimeoutMillis = 400
	tc.cfg.PeerTimeoutMillis = 2000
	co, gotT, got := runFaulted(t, tc, cycles, Config{
		Fault: &FaultPlan{Kind: FaultStallLink, Rank: 1, Cycle: 6, Substep: 1, Delay: 2 * time.Second},
	})
	defer co.Close()
	if rec, _ := co.Recoveries(); rec < 1 {
		t.Fatal("no recovery happened (long link stall undetected)")
	}
	requireBitwise(t, "stall-link detected", wantT, gotT, want, got)
}

// TestCorruptFrameRecovery: a frame whose CRC tail was flipped in flight
// is rejected by checksum verification, counted, classified as
// FailureCorrupt, and recovered from bitwise — not surfaced as an opaque
// decode error.
func TestCorruptFrameRecovery(t *testing.T) {
	const cycles = 10
	tc := newTestConfigScale(t, "acoustic", true, 2, 4, 0.004)
	wantT, want := runShared(t, tc, cycles)
	if maxAbsSamples(want) == 0 {
		t.Fatal("vacuous baseline: every receiver sample is exactly zero")
	}
	co, gotT, got := runFaulted(t, tc, cycles, Config{
		Fault: &FaultPlan{Kind: FaultCorrupt, Rank: 1, Cycle: 6, Substep: 1},
	})
	defer co.Close()
	if rec, _ := co.Recoveries(); rec < 1 {
		t.Fatal("no recovery happened (corrupt frame undetected)")
	}
	if n := co.CorruptFrames(); n < 1 {
		t.Fatalf("CorruptFrames = %d, want >= 1", n)
	}
	requireBitwise(t, "corrupt", wantT, gotT, want, got)
}

// TestPartitionRecovery: a rank isolated from coordinator and peers at
// once — a network partition — is detected from whichever side notices
// first and recovered bitwise.
func TestPartitionRecovery(t *testing.T) {
	const cycles = 10
	tc := newTestConfigScale(t, "acoustic", true, 2, 4, 0.004)
	wantT, want := runShared(t, tc, cycles)
	if maxAbsSamples(want) == 0 {
		t.Fatal("vacuous baseline: every receiver sample is exactly zero")
	}
	tc.cfg.PeerTimeoutMillis = 2000
	co, gotT, got := runFaulted(t, tc, cycles, Config{
		Fault: &FaultPlan{Kind: FaultPartition, Rank: 1, Cycle: 6, Substep: 1},
	})
	defer co.Close()
	if rec, _ := co.Recoveries(); rec < 1 {
		t.Fatal("no recovery happened (partition undetected)")
	}
	requireBitwise(t, "partition", wantT, gotT, want, got)
}

// TestTwoRankKillSameCycle: both ranks die in the same cycle — a
// correlated failure (shared PDU, one host running several ranks). One
// relaunch replaces the whole generation, so a single recovery absorbs
// the double loss, bitwise.
func TestTwoRankKillSameCycle(t *testing.T) {
	const cycles = 10
	tc := newTestConfigScale(t, "acoustic", true, 2, 4, 0.004)
	wantT, want := runShared(t, tc, cycles)
	if maxAbsSamples(want) == 0 {
		t.Fatal("vacuous baseline: every receiver sample is exactly zero")
	}
	co, gotT, got := runFaulted(t, tc, cycles, Config{
		Faults: []*FaultPlan{
			{Kind: FaultKill, Rank: 0, Cycle: 6, Substep: 1},
			{Kind: FaultKill, Rank: 1, Cycle: 6, Substep: 1},
		},
	})
	defer co.Close()
	if rec, _ := co.Recoveries(); rec < 1 {
		t.Fatal("no recovery happened (double kill did not fire?)")
	}
	requireBitwise(t, "double kill", wantT, gotT, want, got)
}

// TestKillDuringReplayRecovers: the respawned rank is killed again while
// the recovery replay is still running (gen=1 plan). The recovery loop
// must charge a second recovery and still converge bitwise.
func TestKillDuringReplayRecovers(t *testing.T) {
	const cycles = 10
	tc := newTestConfigScale(t, "acoustic", true, 2, 4, 0.004)
	wantT, want := runShared(t, tc, cycles)
	if maxAbsSamples(want) == 0 {
		t.Fatal("vacuous baseline: every receiver sample is exactly zero")
	}
	co, gotT, got := runFaulted(t, tc, cycles, Config{
		CheckpointEvery: 4, // failure at cycle 6 replays from cycle 4
		Faults: []*FaultPlan{
			{Kind: FaultKill, Rank: 1, Cycle: 6, Substep: 2},
			{Kind: FaultKill, Rank: 1, Cycle: 1, Substep: 1, Gen: 1},
		},
	})
	defer co.Close()
	if rec, _ := co.Recoveries(); rec != 2 {
		t.Fatalf("Recoveries = %d, want 2 (kill + kill-during-replay)", rec)
	}
	requireBitwise(t, "kill during replay", wantT, gotT, want, got)
}

// TestDegradedModeBitwise is the tentpole acceptance at unit scope: a
// rank that dies past its recovery budget is permanently retired, its
// parts LPT-remapped onto the survivor, and the run completes on fewer
// ranks with a trajectory bitwise identical to the fault-free baseline
// at provably nonzero amplitude.
func TestDegradedModeBitwise(t *testing.T) {
	const cycles = 10
	tc := newTestConfigScale(t, "acoustic", true, 2, 4, 0.004)
	wantT, want := runShared(t, tc, cycles)
	if maxAbsSamples(want) == 0 {
		t.Fatal("vacuous baseline: every receiver sample is exactly zero")
	}
	co, gotT, got := runFaulted(t, tc, cycles, Config{
		MaxRecoveries: 1,
		DegradedMode:  true,
		Faults: []*FaultPlan{
			{Kind: FaultKill, Rank: 1, Cycle: 6, Substep: 2},
			{Kind: FaultKill, Rank: 1, Cycle: 1, Substep: 1, Gen: 1},
		},
	})
	defer co.Close()
	deg, _ := co.Degraded()
	if deg != 1 {
		t.Fatalf("Degraded = %d, want 1", deg)
	}
	if n := co.Ranks(); n != 1 {
		t.Fatalf("Ranks after degrade = %d, want 1", n)
	}
	if rec, _ := co.Recoveries(); rec != 1 {
		t.Fatalf("Recoveries = %d, want 1 (second failure went to degrade)", rec)
	}
	requireBitwise(t, "degraded", wantT, gotT, want, got)
}

// TestDegradedModeMinRanksFloor: with the floor at the current width,
// exhausting the budget must fail with an error naming the floor instead
// of shrinking below it.
func TestDegradedModeMinRanksFloor(t *testing.T) {
	tc := newTestConfig(t, "acoustic", true, 2, 4)
	co, err := Start(Config{
		Run:             tc.cfg,
		InProcess:       true,
		CheckpointEvery: 1,
		MaxRecoveries:   1,
		DegradedMode:    true,
		MinRanks:        2,
		Faults: []*FaultPlan{
			{Kind: FaultKill, Rank: 1, Cycle: 2, Substep: 1},
			{Kind: FaultKill, Rank: 1, Cycle: 1, Substep: 1, Gen: 1},
		},
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer co.Abort()
	owners, err := ReceiverOwnerParts(tc.geom, &tc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.SetReceiverParts(owners); err != nil {
		t.Fatal(err)
	}
	stepErr := error(nil)
	for c := 0; c < 4 && stepErr == nil; c++ {
		_, _, stepErr = co.Step()
	}
	if stepErr == nil {
		t.Fatal("run survived past an exhausted budget at the MinRanks floor")
	}
	if !strings.Contains(stepErr.Error(), "MinRanks floor") {
		t.Fatalf("error does not name the floor: %v", stepErr)
	}
}

// TestDegradedModeRequiresCheckpoints: DegradedMode without a checkpoint
// cadence is rejected at Start — shrinking restores from a checkpoint.
func TestDegradedModeRequiresCheckpoints(t *testing.T) {
	tc := newTestConfig(t, "acoustic", true, 2, 4)
	if _, err := Start(Config{Run: tc.cfg, InProcess: true, DegradedMode: true}); err == nil {
		t.Fatal("DegradedMode without CheckpointEvery accepted")
	}
	if _, err := Start(Config{
		Run: tc.cfg, InProcess: true,
		CheckpointEvery: 1, DegradedMode: true, MinRanks: 3,
	}); err == nil {
		t.Fatal("MinRanks above the rank count accepted")
	}
}

// TestHaloWaitChargesDelayedRank: the busy trace must blame a slow
// *link*, not only a slow CPU. A delay injected into rank 1 makes rank 0
// wait on rank 1's halo frames; the coordinator charges that wait to
// rank 1, so the imbalance signal sees it.
func TestHaloWaitChargesDelayedRank(t *testing.T) {
	const delay = 300 * time.Millisecond
	tc := newTestConfig(t, "acoustic", true, 2, 4)
	tc.cfg.Telemetry = true
	co, _, _ := runDistConfig(t, tc, 3, Config{
		InProcess: true,
		Fault:     &FaultPlan{Kind: FaultDelay, Rank: 1, Cycle: 2, Substep: 1, Delay: delay},
	})
	defer co.Close()
	if rec, _ := co.Recoveries(); rec != 0 {
		t.Fatalf("delay fault triggered %d recoveries", rec)
	}
	var found bool
	for _, s := range co.TraceSamples() {
		if s.Cycle != 2 {
			continue
		}
		found = true
		if len(s.Busy) != 2 {
			t.Fatalf("cycle-2 sample has %d ranks", len(s.Busy))
		}
		// Rank 1 slept ~300ms; its charged busy must carry most of the
		// wait rank 0 paid for it and dominate rank 0's.
		if s.Busy[1] < float64((delay / 2).Nanoseconds()) {
			t.Errorf("delayed rank charged %.0fns busy, want >= %dns", s.Busy[1], (delay / 2).Nanoseconds())
		}
		if s.Busy[1] <= s.Busy[0] {
			t.Errorf("delayed rank busy %.0f not above peer busy %.0f", s.Busy[1], s.Busy[0])
		}
	}
	if !found {
		t.Fatalf("no cycle-2 trace sample: %v", co.TraceSamples())
	}
}
