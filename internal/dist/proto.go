package dist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"golts/internal/ckpt"
)

// Wire format: every message is one length-prefixed, checksummed frame
//
//	[u32 payload length (little-endian)] [u8 type] [payload] [u32 crc]
//
// over a stream connection (TCP on 127.0.0.1). The trailing CRC32-IEEE
// covers the type byte and the payload; a mismatch on receive is a
// typed *CorruptFrameError, which the coordinator routes into checkpoint
// recovery rather than aborting the run. Control payloads
// (configuration, peer lists, statistics) are gob-encoded structs; hot
// payloads (halo contributions, receiver samples) are raw little-endian
// float64 arrays with a small fixed header, so the per-substep exchange
// never touches an encoder. The protocol is strictly sequenced — every
// participant knows which message type it expects next — so no message
// carries a correlation id beyond the halo frames' (sequence, plan)
// sanity pair.
const (
	// Rank → coordinator.
	msgHello       byte = 1 // [u32 rank][token bytes]
	msgPeerAddr    byte = 2 // rank's peer-listener address (string bytes)
	msgReady       byte = 3 // operators built, peers connected
	msgCycleDone   byte = 4 // [f64 time][owned receiver samples ...f64]
	msgStatsResp   byte = 5 // gob RankStats
	msgErr         byte = 6 // error text (any time; fatal)
	msgCkptResp    byte = 7 // gob ckptFrame (snapshot + owned footprint)
	msgRestoreDone byte = 8 // restore installed, empty payload
	msgHeartbeat   byte = 9 // periodic liveness beacon, empty payload

	// Coordinator → rank.
	msgConfig   byte = 10 // gob RunConfig
	msgPeers    byte = 11 // gob []string peer addresses, rank order
	msgStep     byte = 12 // [u32 cycles]
	msgStats    byte = 13 // request RankStats
	msgShutdown byte = 14 // clean exit
	msgCkpt     byte = 15 // request a state snapshot (reply msgCkptResp)
	msgRestore  byte = 16 // gob ckpt.StepperState: install and reply msgRestoreDone

	// Rank → rank.
	msgPeerHello byte = 20 // [u32 rank][token bytes]
	msgHalo      byte = 21 // [u32 seq][u32 plan id][values ...f64]
)

// ckptFrame is the payload of msgCkptResp: one rank's stepper snapshot
// plus the footprint on which its replicated arrays are exact. A rank's
// field is bitwise correct only at nodes its owned elements touch
// (Operator.OwnedNodes); the coordinator overlays every rank's owned
// dofs to reconstruct the exact global state.
type ckptFrame struct {
	State *ckpt.StepperState
	Nodes []int32 // owned-footprint node ids, ascending
	Comps int     // field components per node (dof = node*Comps + c)
}

// maxFrame bounds a frame payload; anything larger indicates a corrupt
// or foreign stream.
const maxFrame = 1 << 30

// writeFrameTimeout is the per-frame write deadline applied to every
// send: a healthy receiver drains frames immediately (loopback TCP), so
// a write that cannot complete within this budget means the peer has
// stopped reading and the sender must not hang on it.
const writeFrameTimeout = 60 * time.Second

// CorruptFrameError reports a frame whose CRC32 tail did not match its
// contents (or whose header is structurally impossible): the stream
// delivered bytes, but not the bytes that were sent. The coordinator
// classifies it as FailureCorrupt and recovers the affected rank from
// the last checkpoint instead of trusting anything further on the
// stream.
type CorruptFrameError struct {
	Type byte   // frame type byte as received
	Len  int    // payload length as received
	Want uint32 // checksum carried by the frame
	Got  uint32 // checksum computed over the received bytes
}

func (e *CorruptFrameError) Error() string {
	if e.Want == e.Got {
		return fmt.Sprintf("dist: corrupt frame: type %d with impossible length %d", e.Type, e.Len)
	}
	return fmt.Sprintf("dist: corrupt frame: type %d len %d: crc %08x, frame claims %08x",
		e.Type, e.Len, e.Got, e.Want)
}

// conn wraps a stream connection with buffered framed I/O. Sends are
// serialized by a mutex (the heartbeat goroutine shares the rank →
// coordinator direction with the serve loop); the receive direction
// still admits exactly one goroutine.
//
// corruptNext and stallNanos are fault-injection hooks driven by the
// corrupt / stall-link GOLTS_FAULT verbs: the former flips bits in the
// next frame's CRC tail after it is computed (so the receiver sees a
// checksum mismatch on an otherwise well-formed frame), the latter is
// drained and slept inside send while the write mutex is held, so every
// sender sharing the conn — the heartbeat goroutine included — blocks
// behind the stalled link.
type conn struct {
	c   net.Conn
	r   *bufio.Reader
	wmu sync.Mutex
	w   *bufio.Writer

	corruptNext atomic.Bool
	stallNanos  atomic.Int64
}

func newConn(c net.Conn) *conn {
	return &conn{c: c, r: bufio.NewReaderSize(c, 1<<16), w: bufio.NewWriterSize(c, 1<<16)}
}

// frameCRC is the checksum carried in a frame's tail: CRC32-IEEE over
// the type byte followed by the payload.
func frameCRC(t byte, payload []byte) uint32 {
	crc := crc32.ChecksumIEEE([]byte{t})
	return crc32.Update(crc, crc32.IEEETable, payload)
}

// send writes one framed message and flushes it, under a per-frame
// write deadline.
func (c *conn) send(t byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if d := c.stallNanos.Swap(0); d > 0 {
		time.Sleep(time.Duration(d))
	}
	c.c.SetWriteDeadline(time.Now().Add(writeFrameTimeout))
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = t
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(payload); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], frameCRC(t, payload))
	if c.corruptNext.CompareAndSwap(true, false) {
		tail[0] ^= 0xff
	}
	if _, err := c.w.Write(tail[:]); err != nil {
		return err
	}
	return c.w.Flush()
}

// recv reads one framed message, verifying the CRC tail. The returned
// payload is freshly allocated and owned by the caller.
func (c *conn) recv() (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, &CorruptFrameError{Type: hdr[4], Len: int(n)}
	}
	payload := make([]byte, n+4)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return 0, nil, err
	}
	want := binary.LittleEndian.Uint32(payload[n:])
	payload = payload[:n]
	if got := frameCRC(hdr[4], payload); got != want {
		return 0, nil, &CorruptFrameError{Type: hdr[4], Len: int(n), Want: want, Got: got}
	}
	return hdr[4], payload, nil
}

// expect reads one message and checks its type, converting msgErr frames
// into errors carrying the remote text.
func (c *conn) expect(t byte) ([]byte, error) {
	got, payload, err := c.recv()
	if err != nil {
		return nil, err
	}
	if got == msgErr {
		return nil, fmt.Errorf("dist: remote error: %s", payload)
	}
	if got != t {
		return nil, fmt.Errorf("dist: expected message type %d, got %d", t, got)
	}
	return payload, nil
}

// sendGob gob-encodes v as the payload of one message.
func (c *conn) sendGob(t byte, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	return c.send(t, buf.Bytes())
}

func decodeGob(payload []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// setDeadline applies an absolute deadline to the underlying connection;
// a zero time clears it.
func (c *conn) setDeadline(t time.Time) { c.c.SetDeadline(t) }

func (c *conn) close() { c.c.Close() }

// putFloats appends the little-endian encoding of vals to buf.
func putFloats(buf []byte, vals []float64) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, 8*len(vals))...)
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	return buf
}

// getFloats decodes a little-endian float64 array from payload into a
// fresh slice.
func getFloats(payload []byte) ([]float64, error) {
	if len(payload)%8 != 0 {
		return nil, fmt.Errorf("dist: float payload of %d bytes", len(payload))
	}
	out := make([]float64, len(payload)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return out, nil
}
