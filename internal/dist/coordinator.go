package dist

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"
)

// Handshake and stepping deadlines. Handshake failures almost always
// mean a spawned child did not call RankMain, so the timeout error says
// so; the step timeout only guards CI against a deadlocked run.
const (
	handshakeTimeout = 30 * time.Second
	stepTimeout      = 5 * time.Minute
)

// Config configures Start.
type Config struct {
	// Run is the SPMD run description broadcast to every rank.
	Run RunConfig
	// InProcess runs the ranks as goroutines of this process instead of
	// spawned subprocesses. The full wire protocol still runs over
	// loopback sockets; only the process boundary is elided. Tests use
	// this for speed and so the race detector observes the rank runtime.
	InProcess bool
	// Stderr receives the spawned ranks' output (default os.Stderr).
	Stderr io.Writer
}

// ctrlFrame is one control-plane message from a rank, read off the
// connection by the coordinator's per-rank reader goroutine.
type ctrlFrame struct {
	t       byte
	payload []byte
}

// rankHandle is the coordinator's view of one rank: its control
// connection, the reader goroutine's channels, and the subprocess (nil
// for in-process ranks).
type rankHandle struct {
	c      *conn
	proc   *exec.Cmd
	frames chan ctrlFrame
	errs   chan error
	done   chan error // in-process rank completion
}

// Coordinator owns a distributed run: it spawns the ranks, broadcasts
// the configuration, drives lockstep cycles, collects receiver samples
// and statistics, and shuts the ranks down. The control connections are
// multiplexed on one reader goroutine per rank; halo traffic never
// touches the coordinator. A Coordinator is driven by one goroutine at a
// time.
type Coordinator struct {
	cfg    Config
	ranks  []*rankHandle
	recOwn []int // receiver index → owning rank
	t      float64

	closeOnce sync.Once
	closeErr  error
}

// Start launches a distributed run: it validates the configuration,
// spawns cfg.Run.Ranks rank processes (or goroutines), and completes the
// startup handshake. On return every rank has built its operators and
// stands ready for Step.
func Start(cfg Config) (*Coordinator, error) {
	if IsRank() {
		return nil, fmt.Errorf("dist: Start called inside a rank process — the parent binary " +
			"did not call RankMain before starting distributed work")
	}
	if err := cfg.Run.validate(); err != nil {
		return nil, err
	}
	tokenRaw := make([]byte, 16)
	if _, err := rand.Read(tokenRaw); err != nil {
		return nil, err
	}
	token := hex.EncodeToString(tokenRaw)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()

	co := &Coordinator{cfg: cfg, ranks: make([]*rankHandle, cfg.Run.Ranks)}
	fail := func(err error) (*Coordinator, error) {
		co.kill()
		return nil, err
	}
	stderr := cfg.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}

	// Launch.
	for i := 0; i < cfg.Run.Ranks; i++ {
		if cfg.InProcess {
			h := &rankHandle{done: make(chan error, 1)}
			co.ranks[i] = h
			params := rankParams{rank: i, addr: ln.Addr().String(), token: token}
			go func() { h.done <- runRank(params) }()
			continue
		}
		exe, err := os.Executable()
		if err != nil {
			return fail(err)
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("%s=%d", envRank, i),
			fmt.Sprintf("%s=%s", envAddr, ln.Addr().String()),
			fmt.Sprintf("%s=%s", envToken, token),
		)
		cmd.Stdout = stderr
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("dist: spawning rank %d: %w", i, err))
		}
		co.ranks[i] = &rankHandle{proc: cmd}
	}

	// Accept the control connections and match hellos to ranks. Stray
	// connections — bad tokens, malformed hellos, immediate disconnects
	// from port probes — are discarded and accepting continues; only the
	// deadline aborts the run. A *valid-token* hello with an impossible
	// rank id is one of our own children misbehaving, which is fatal.
	deadline := time.Now().Add(handshakeTimeout)
	for accepted := 0; accepted < cfg.Run.Ranks; {
		nc, err := acceptWithDeadline(ln, deadline)
		if err != nil {
			return fail(fmt.Errorf("dist: waiting for rank hellos: %w (a spawned binary that "+
				"does not call wave.RankMain at the top of main cannot join the run)", err))
		}
		c := newConn(nc)
		c.setDeadline(deadline)
		payload, err := c.expect(msgHello)
		if err != nil || len(payload) < 4 || string(payload[4:]) != token {
			c.close()
			continue // stray connection; keep waiting
		}
		id := int(binary.LittleEndian.Uint32(payload[:4]))
		if id < 0 || id >= cfg.Run.Ranks || co.ranks[id].c != nil {
			return fail(fmt.Errorf("dist: unexpected hello from rank %d", id))
		}
		co.ranks[id].c = c
		accepted++
	}

	// Broadcast config, gather peer listeners, broadcast the peer list,
	// await readiness.
	for _, h := range co.ranks {
		if err := h.c.sendGob(msgConfig, &cfg.Run); err != nil {
			return fail(err)
		}
	}
	addrs := make([]string, cfg.Run.Ranks)
	for i, h := range co.ranks {
		payload, err := h.c.expect(msgPeerAddr)
		if err != nil {
			return fail(fmt.Errorf("dist: rank %d: %w", i, err))
		}
		addrs[i] = string(payload)
	}
	for _, h := range co.ranks {
		if err := h.c.sendGob(msgPeers, addrs); err != nil {
			return fail(err)
		}
	}
	for i, h := range co.ranks {
		if _, err := h.c.expect(msgReady); err != nil {
			return fail(fmt.Errorf("dist: rank %d: %w", i, err))
		}
		h.c.setDeadline(time.Time{})
	}

	// Hand each control connection to a reader goroutine; from here on
	// all receives are multiplexed through channels.
	for _, h := range co.ranks {
		h.frames = make(chan ctrlFrame, 4)
		h.errs = make(chan error, 1)
		go func(h *rankHandle) {
			for {
				t, payload, err := h.c.recv()
				if err != nil {
					h.errs <- err
					close(h.frames)
					return
				}
				h.frames <- ctrlFrame{t, payload}
			}
		}(h)
	}
	return co, nil
}

// recvFrame pops the next control frame from rank i, converting remote
// msgErr frames and dead connections into errors. Cancelling ctx aborts
// the wait immediately with ctx.Err() — a wedged rank cannot hold the
// caller hostage for the full timeout once its context is gone.
func (co *Coordinator) recvFrame(ctx context.Context, i int, timeout time.Duration) (ctrlFrame, error) {
	h := co.ranks[i]
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case fr, ok := <-h.frames:
		if !ok {
			return ctrlFrame{}, fmt.Errorf("dist: rank %d connection lost: %w", i, <-h.errs)
		}
		if fr.t == msgErr {
			return ctrlFrame{}, fmt.Errorf("dist: rank %d: %s", i, fr.payload)
		}
		return fr, nil
	case <-ctx.Done():
		return ctrlFrame{}, ctx.Err()
	case <-timer.C:
		return ctrlFrame{}, fmt.Errorf("dist: rank %d: no response within %v", i, timeout)
	}
}

// Receivers returns the number of configured receiver dofs.
func (co *Coordinator) Receivers() int { return len(co.cfg.Run.Receivers) }

// SetReceiverOwners installs the receiver → sampling-rank mapping (see
// ReceiverOwners). Operator construction is the caller's concern — the
// facade already holds the geometry operator — so the owners arrive
// precomputed; Step refuses to run without them.
func (co *Coordinator) SetReceiverOwners(owners []int) error {
	if len(owners) != len(co.cfg.Run.Receivers) {
		return fmt.Errorf("dist: %d owners for %d receivers", len(owners), len(co.cfg.Run.Receivers))
	}
	for _, r := range owners {
		if r < 0 || r >= co.cfg.Run.Ranks {
			return fmt.Errorf("dist: receiver owner rank %d outside [0,%d)", r, co.cfg.Run.Ranks)
		}
	}
	co.recOwn = append([]int(nil), owners...)
	return nil
}

// Step advances every rank by one coarse cycle and returns the cycle
// time plus the receiver samples, in configured receiver order. The
// samples slice is valid until the next Step.
func (co *Coordinator) Step() (t float64, samples []float64, err error) {
	return co.StepCtx(context.Background())
}

// StepCtx is Step with cancellation: when ctx is cancelled mid-step the
// run is aborted immediately — spawned rank processes are killed and
// reaped, halo and control connections closed — and ctx.Err() (not a
// wire error from the dying ranks) is returned. Without cancellation the
// behaviour is identical to Step.
func (co *Coordinator) StepCtx(ctx context.Context) (t float64, samples []float64, err error) {
	if co.recOwn == nil {
		return 0, nil, fmt.Errorf("dist: Step before SetReceiverOwners")
	}
	if err := ctx.Err(); err != nil {
		co.Abort()
		return 0, nil, err
	}
	var cmd [4]byte
	binary.LittleEndian.PutUint32(cmd[:], 1)
	for i, h := range co.ranks {
		if err := h.c.send(msgStep, cmd[:]); err != nil {
			return 0, nil, fmt.Errorf("dist: rank %d: %w", i, err)
		}
	}
	samples = make([]float64, len(co.cfg.Run.Receivers))
	for i := range co.ranks {
		fr, err := co.recvFrame(ctx, i, stepTimeout)
		if err != nil {
			// Context cancellation wins over any wire error the teardown
			// provokes: abort tears the ranks down and the caller sees a
			// clean ctx.Err().
			if ctx.Err() != nil {
				co.Abort()
				return 0, nil, ctx.Err()
			}
			return 0, nil, err
		}
		if fr.t != msgCycleDone {
			return 0, nil, fmt.Errorf("dist: rank %d: unexpected frame type %d", i, fr.t)
		}
		vals, err := getFloats(fr.payload)
		if err != nil {
			return 0, nil, err
		}
		want := 1
		for _, o := range co.recOwn {
			if o == i {
				want++
			}
		}
		if len(vals) != want {
			return 0, nil, fmt.Errorf("dist: rank %d reported %d values, want %d", i, len(vals), want)
		}
		if i == 0 {
			co.t = vals[0]
		}
		k := 1
		for ri, o := range co.recOwn {
			if o == i {
				samples[ri] = vals[k]
				k++
			}
		}
	}
	return co.t, samples, nil
}

// Time returns the cycle time reported by rank 0 after the last Step.
func (co *Coordinator) Time() float64 { return co.t }

// Stats gathers every rank's statistics. The first element is rank 0's
// (whose scheme-level work model the facade reports); the distributed
// operator counters differ per rank and are summed by callers as needed.
func (co *Coordinator) Stats() ([]RankStats, error) {
	out := make([]RankStats, len(co.ranks))
	for i, h := range co.ranks {
		if err := h.c.send(msgStats, nil); err != nil {
			return nil, fmt.Errorf("dist: rank %d: %w", i, err)
		}
	}
	for i := range co.ranks {
		fr, err := co.recvFrame(context.Background(), i, handshakeTimeout)
		if err != nil {
			return nil, err
		}
		if fr.t != msgStatsResp {
			return nil, fmt.Errorf("dist: rank %d: unexpected frame type %d", i, fr.t)
		}
		if err := decodeGob(fr.payload, &out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Close shuts the ranks down cleanly, escalating to kill after a grace
// period. It is idempotent and safe after a failed or aborted Step.
func (co *Coordinator) Close() error {
	co.closeOnce.Do(func() { co.closeErr = co.teardown(true) })
	return co.closeErr
}

// Abort tears the run down immediately: spawned rank processes are
// killed and reaped, in-process ranks are unblocked by closing their
// connections, and every control connection is closed. It is the
// non-graceful twin of Close for cancelled contexts — no shutdown
// message, no grace period — and leaves no orphan processes behind. A
// later Close returns without further work.
func (co *Coordinator) Abort() {
	co.closeOnce.Do(func() { co.teardown(false) })
}

// teardown is the shared shutdown path. graceful sends msgShutdown and
// gives every rank a grace period to exit on its own before killing;
// non-graceful kills spawned ranks outright and severs the in-process
// ranks' connections. Both paths reap every spawned process (Wait) so no
// zombies survive, and both close every control connection.
func (co *Coordinator) teardown(graceful bool) error {
	var firstErr error
	grace := 10 * time.Second
	if graceful {
		for _, h := range co.ranks {
			if h.c != nil {
				h.c.send(msgShutdown, nil)
			}
		}
	} else {
		grace = 5 * time.Second
		for _, h := range co.ranks {
			if h.proc != nil {
				h.proc.Process.Kill()
			}
			// Severing the control connection unblocks an in-process rank's
			// serve loop (and any peer reads follow when the fabric dies).
			if h.c != nil {
				h.c.close()
			}
		}
	}
	// One absolute deadline shared by all ranks: each wait gets its own
	// timer on the remaining time, so several wedged ranks are all killed
	// instead of only the first.
	deadline := time.Now().Add(grace)
	for i, h := range co.ranks {
		switch {
		case h.proc != nil:
			done := make(chan error, 1)
			go func() { done <- h.proc.Wait() }()
			select {
			case err := <-done:
				if graceful && err != nil && firstErr == nil {
					firstErr = fmt.Errorf("dist: rank %d: %w", i, err)
				}
			case <-time.After(time.Until(deadline)):
				h.proc.Process.Kill()
				<-done
				if graceful && firstErr == nil {
					firstErr = fmt.Errorf("dist: rank %d killed after shutdown timeout", i)
				}
			}
		case h.done != nil:
			select {
			case err := <-h.done:
				if graceful && err != nil && firstErr == nil {
					firstErr = fmt.Errorf("dist: rank %d: %w", i, err)
				}
			case <-time.After(time.Until(deadline)):
				if firstErr == nil {
					firstErr = fmt.Errorf("dist: rank %d did not exit after shutdown", i)
				}
			}
		}
		if h.c != nil {
			h.c.close()
		}
	}
	return firstErr
}

// kill tears down a partially-started run.
func (co *Coordinator) kill() {
	for _, h := range co.ranks {
		if h == nil {
			continue
		}
		if h.c != nil {
			h.c.close()
		}
		if h.proc != nil {
			h.proc.Process.Kill()
			h.proc.Wait()
		}
	}
}
