package dist

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"golts/internal/ckpt"
	"golts/internal/tune"
)

// Handshake and stepping deadlines. Handshake failures almost always
// mean a spawned child did not call RankMain, so the timeout error says
// so; the step timeout only guards CI against a deadlocked run.
const (
	handshakeTimeout = 30 * time.Second
	stepTimeout      = 5 * time.Minute
)

// Config configures Start.
type Config struct {
	// Run is the SPMD run description broadcast to every rank.
	Run RunConfig
	// InProcess runs the ranks as goroutines of this process instead of
	// spawned subprocesses. The full wire protocol still runs over
	// loopback sockets; only the process boundary is elided. Tests use
	// this for speed and so the race detector observes the rank runtime.
	InProcess bool
	// Stderr receives the spawned ranks' output (default os.Stderr).
	Stderr io.Writer

	// CheckpointEvery enables rank-failure recovery: the coordinator
	// snapshots the replicated stepper state at startup and every n
	// completed cycles, and on a RankFailure it relaunches every rank,
	// restores the snapshot, and silently replays the cycles since it
	// (the decomposition width pins the arithmetic, so the replay is
	// bitwise identical and its samples are discarded). 0 disables both
	// checkpointing and recovery.
	CheckpointEvery int
	// MaxRecoveries bounds the number of recoveries per rank
	// configuration; 0 selects the default (3) when CheckpointEvery > 0.
	// With DegradedMode the budget resets after each successful shrink.
	MaxRecoveries int
	// Fault arms a fault-injection plan on in-process ranks. Spawned
	// ranks read the GOLTS_FAULT environment variable instead, which
	// they inherit from this process.
	Fault *FaultPlan
	// Faults arms additional fault-injection plans on in-process ranks
	// (the multi-plan analogue of Fault: several ranks, cycles or spawn
	// generations at once).
	Faults []*FaultPlan

	// DegradedMode keeps the run alive through permanent rank loss: when
	// a rank exhausts the recovery budget, the coordinator — instead of
	// failing — LPT-remaps the dead rank's parts onto the survivors,
	// relaunches with one rank fewer, restores the checkpoint and
	// replays. The decomposition width never changes, so the degraded
	// trajectory stays bitwise identical to the fault-free one. Requires
	// CheckpointEvery > 0.
	DegradedMode bool
	// MinRanks is the floor DegradedMode will not shrink below; 0
	// selects 1 (a run survives down to a single rank).
	MinRanks int

	// AutoRebalance enables the runtime rebalancer: the coordinator
	// watches the per-cycle, per-rank busy telemetry and, on sustained
	// imbalance, snapshots the run, remaps parts onto ranks (LPT over
	// the measured per-part costs), relaunches and resumes. Parts stay
	// fixed — only their placement moves — so the trajectory stays
	// bitwise identical. Implies Run.Telemetry.
	AutoRebalance bool
	// MaxRebalances bounds automatic rebalances per run; 0 selects the
	// default (4) when AutoRebalance is set.
	MaxRebalances int
	// RebalanceDetector tunes the imbalance detector; zero fields take
	// the tune package defaults (ratio 1.5 over 3 cycles, cooldown 10).
	RebalanceDetector tune.DetectorConfig
}

// faultPlans merges the legacy single-plan Fault field with the
// multi-plan Faults list, for in-process ranks.
func (cfg *Config) faultPlans() []*FaultPlan {
	if cfg.Fault == nil {
		return cfg.Faults
	}
	return append([]*FaultPlan{cfg.Fault}, cfg.Faults...)
}

// ctrlFrame is one control-plane message from a rank, read off the
// connection by the coordinator's per-rank reader goroutine.
type ctrlFrame struct {
	t       byte
	payload []byte
}

// rankHandle is the coordinator's view of one rank: its control
// connection, the reader goroutine's channels, and the subprocess (nil
// for in-process ranks).
type rankHandle struct {
	c      *conn
	proc   *exec.Cmd
	frames chan ctrlFrame
	errs   chan error
	done   chan error // in-process rank completion

	// procDead is closed by the watcher goroutine — the sole caller of
	// proc.Wait — once the spawned process has been reaped; procErr holds
	// the Wait result from before the close.
	procDead chan struct{}
	procErr  error

	// lastBeat is the unix-nano arrival time of the most recent frame
	// (heartbeats included), written by the reader goroutine.
	lastBeat atomic.Int64
}

// Coordinator owns a distributed run: it spawns the ranks, broadcasts
// the configuration, drives lockstep cycles, collects receiver samples
// and statistics, recovers from rank failures when checkpointing is on,
// and shuts the ranks down. The control connections are multiplexed on
// one reader goroutine per rank; halo traffic never touches the
// coordinator. A Coordinator is driven by one goroutine at a time.
type Coordinator struct {
	cfg      Config
	ranks    []*rankHandle
	recParts []int // receiver index → owning part (placement-invariant)
	recOwn   []int // receiver index → owning rank, under the current map
	t        float64

	gen       int   // spawn generation; respawned ranks run at gen ≥ 1
	cycle     int64 // completed cycles since Start (or RestoreState)
	ckpt      *ckpt.StepperState
	ckptCycle int64 // cycle the held snapshot belongs to

	recoveries   int // cumulative, across degrades
	budgetUsed   int // recoveries charged against the current rank set
	recoveryWall time.Duration

	// Degraded-mode state: ranks permanently lost (each one shrink of
	// the rank set), wall time spent shrinking, and CRC failures seen.
	degradedRanks int
	degradeWall   time.Duration
	corruptFrames int64

	// Telemetry + rebalancer state (Run.Telemetry / AutoRebalance):
	busy          []float64      // last cycle's per-rank busy nanos
	trace         *tune.Trace    // recent busy samples, ring-buffered
	det           *tune.Detector // nil unless AutoRebalance
	partCost      []float64      // last measured per-part costs (LPT input)
	rebalances    int
	rebalanceWall time.Duration

	closeOnce sync.Once
	closeErr  error
}

// Start launches a distributed run: it validates the configuration,
// spawns cfg.Run.Ranks rank processes (or goroutines), and completes the
// startup handshake. On return every rank has built its operators and
// stands ready for Step. With CheckpointEvery > 0 the coordinator also
// holds a cycle-0 snapshot, so even a first-cycle failure is
// recoverable.
func Start(cfg Config) (*Coordinator, error) {
	if IsRank() {
		return nil, fmt.Errorf("dist: Start called inside a rank process — the parent binary " +
			"did not call RankMain before starting distributed work")
	}
	if cfg.AutoRebalance {
		cfg.Run.Telemetry = true
		if cfg.MaxRebalances == 0 {
			cfg.MaxRebalances = 4
		}
	}
	if err := cfg.Run.validate(); err != nil {
		return nil, err
	}
	if cfg.CheckpointEvery > 0 && cfg.MaxRecoveries == 0 {
		cfg.MaxRecoveries = 3
	}
	if cfg.DegradedMode {
		if cfg.CheckpointEvery <= 0 {
			return nil, fmt.Errorf("dist: DegradedMode requires CheckpointEvery > 0 (shrinking restores from a checkpoint)")
		}
		if cfg.MinRanks <= 0 {
			cfg.MinRanks = 1
		}
		if cfg.MinRanks > cfg.Run.Ranks {
			return nil, fmt.Errorf("dist: MinRanks %d exceeds rank count %d", cfg.MinRanks, cfg.Run.Ranks)
		}
	}
	co := &Coordinator{cfg: cfg}
	if cfg.Run.Telemetry {
		co.busy = make([]float64, cfg.Run.Ranks)
		co.trace = tune.NewTrace(64)
	}
	if cfg.AutoRebalance {
		co.det = tune.NewDetector(cfg.RebalanceDetector)
	}
	if err := co.launch(); err != nil {
		return nil, err
	}
	if cfg.CheckpointEvery > 0 {
		st, err := co.fetchState(context.Background())
		if err != nil {
			co.Abort()
			return nil, fmt.Errorf("dist: initial checkpoint: %w", err)
		}
		co.ckpt, co.ckptCycle = st, 0
	}
	return co, nil
}

// launch spawns the current generation of ranks and completes the
// startup handshake. On failure every partially-started rank is killed.
// It is called by Start and again — with gen bumped — by recovery.
func (co *Coordinator) launch() error {
	cfg := co.cfg
	tokenRaw := make([]byte, 16)
	if _, err := rand.Read(tokenRaw); err != nil {
		return err
	}
	token := hex.EncodeToString(tokenRaw)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()

	co.ranks = make([]*rankHandle, cfg.Run.Ranks)
	fail := func(err error) error {
		co.kill()
		return err
	}
	stderr := cfg.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}

	// Launch.
	for i := 0; i < cfg.Run.Ranks; i++ {
		if cfg.InProcess {
			h := &rankHandle{done: make(chan error, 1)}
			co.ranks[i] = h
			params := rankParams{
				rank: i, addr: ln.Addr().String(), token: token,
				gen: co.gen, faults: cfg.faultPlans(),
			}
			go func() { h.done <- runRank(params) }()
			continue
		}
		exe, err := os.Executable()
		if err != nil {
			return fail(err)
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("%s=%d", envRank, i),
			fmt.Sprintf("%s=%s", envAddr, ln.Addr().String()),
			fmt.Sprintf("%s=%s", envToken, token),
			fmt.Sprintf("%s=%d", envGen, co.gen),
		)
		cmd.Stdout = stderr
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("dist: spawning rank %d: %w", i, err))
		}
		h := &rankHandle{proc: cmd, procDead: make(chan struct{})}
		co.ranks[i] = h
		// The watcher owns the one and only Wait, so teardown, recovery
		// and failure detection can all observe the exit without racing
		// to reap it.
		go func() {
			h.procErr = cmd.Wait()
			close(h.procDead)
		}()
	}

	// Accept the control connections and match hellos to ranks. Stray
	// connections — bad tokens, malformed hellos, immediate disconnects
	// from port probes — are discarded and accepting continues; only the
	// deadline aborts the run. A *valid-token* hello with an impossible
	// rank id is one of our own children misbehaving, which is fatal.
	deadline := time.Now().Add(handshakeTimeout)
	for accepted := 0; accepted < cfg.Run.Ranks; {
		nc, err := acceptWithDeadline(ln, deadline)
		if err != nil {
			return fail(fmt.Errorf("dist: waiting for rank hellos: %w (a spawned binary that "+
				"does not call wave.RankMain at the top of main cannot join the run)", err))
		}
		c := newConn(nc)
		c.setDeadline(deadline)
		payload, err := c.expect(msgHello)
		if err != nil || len(payload) < 4 || string(payload[4:]) != token {
			c.close()
			continue // stray connection; keep waiting
		}
		id := int(binary.LittleEndian.Uint32(payload[:4]))
		if id < 0 || id >= cfg.Run.Ranks || co.ranks[id].c != nil {
			return fail(fmt.Errorf("dist: unexpected hello from rank %d", id))
		}
		co.ranks[id].c = c
		accepted++
	}

	// Broadcast config, gather peer listeners, broadcast the peer list,
	// await readiness.
	for _, h := range co.ranks {
		if err := h.c.sendGob(msgConfig, &cfg.Run); err != nil {
			return fail(err)
		}
	}
	addrs := make([]string, cfg.Run.Ranks)
	for i, h := range co.ranks {
		payload, err := h.c.expect(msgPeerAddr)
		if err != nil {
			return fail(fmt.Errorf("dist: rank %d: %w", i, err))
		}
		addrs[i] = string(payload)
	}
	for _, h := range co.ranks {
		if err := h.c.sendGob(msgPeers, addrs); err != nil {
			return fail(err)
		}
	}
	for i, h := range co.ranks {
		if _, err := h.c.expect(msgReady); err != nil {
			return fail(fmt.Errorf("dist: rank %d: %w", i, err))
		}
		h.c.setDeadline(time.Time{})
	}

	// Hand each control connection to a reader goroutine; from here on
	// all receives are multiplexed through channels. The reader also
	// timestamps every arrival (and swallows heartbeats), giving
	// recvFrame its liveness signal.
	now := time.Now().UnixNano()
	for _, h := range co.ranks {
		h.frames = make(chan ctrlFrame, 4)
		h.errs = make(chan error, 1)
		h.lastBeat.Store(now)
		go func(h *rankHandle) {
			for {
				t, payload, err := h.c.recv()
				if err != nil {
					h.errs <- err
					close(h.frames)
					return
				}
				h.lastBeat.Store(time.Now().UnixNano())
				if t == msgHeartbeat {
					continue
				}
				h.frames <- ctrlFrame{t, payload}
			}
		}(h)
	}
	co.applyRecOwn()
	return nil
}

// recvFrame pops the next control frame from rank i, converting remote
// msgErr frames, dead connections, dead processes and heartbeat
// silences into *RankFailure errors. Cancelling ctx aborts the wait
// immediately with ctx.Err() — a wedged rank cannot hold the caller
// hostage for the full timeout once its context is gone.
func (co *Coordinator) recvFrame(ctx context.Context, i int, timeout time.Duration) (ctrlFrame, error) {
	h := co.ranks[i]
	overall := time.NewTimer(timeout)
	defer overall.Stop()

	// Poll the heartbeat clock a few times per timeout window; the
	// beacons themselves arrive through the reader goroutine.
	var beatC <-chan time.Time
	hbTimeout := co.cfg.Run.heartbeatTimeout()
	if hbTimeout > 0 {
		period := hbTimeout / 4
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		beatC = ticker.C
	}
	var dead <-chan struct{}
	if h.proc != nil {
		dead = h.procDead
	}
	for {
		select {
		case fr, ok := <-h.frames:
			if !ok {
				// Classify the read error: a failed CRC means the link
				// delivered garbage (FailureCorrupt); anything else is a
				// silent disappearance.
				err := <-h.errs
				kind := FailureCrash
				var ce *CorruptFrameError
				if errors.As(err, &ce) {
					kind = FailureCorrupt
					co.corruptFrames++
				}
				return ctrlFrame{}, &RankFailure{Rank: i, Kind: kind, Err: fmt.Errorf("connection lost: %w", err)}
			}
			if fr.t == msgErr {
				// During stepping a remote error report almost always means
				// some *other* rank died mid-exchange and this one noticed
				// first; typing it as a RankFailure lets recovery handle
				// either order of detection.
				kind := FailureCrash
				if strings.Contains(string(fr.payload), "corrupt frame") {
					kind = FailureCorrupt
					co.corruptFrames++
				}
				return ctrlFrame{}, &RankFailure{Rank: i, Kind: kind, Err: fmt.Errorf("remote error: %s", fr.payload)}
			}
			return fr, nil
		case <-dead:
			// Drain any frame the process managed to send before exiting.
			select {
			case fr, ok := <-h.frames:
				if ok && fr.t != msgErr {
					return fr, nil
				}
			default:
			}
			return ctrlFrame{}, &RankFailure{Rank: i, Kind: FailureCrash, Err: fmt.Errorf("process exited: %v", h.procErr)}
		case <-ctx.Done():
			return ctrlFrame{}, ctx.Err()
		case <-overall.C:
			return ctrlFrame{}, &RankFailure{Rank: i, Kind: FailureTimeout, Err: fmt.Errorf("no response within %v", timeout)}
		case <-beatC:
			if since := time.Duration(time.Now().UnixNano() - h.lastBeat.Load()); since > hbTimeout {
				return ctrlFrame{}, &RankFailure{Rank: i, Kind: FailureTimeout, Err: fmt.Errorf("no heartbeat for %v", since.Round(time.Millisecond))}
			}
		}
	}
}

// Receivers returns the number of configured receiver dofs.
func (co *Coordinator) Receivers() int { return len(co.cfg.Run.Receivers) }

// SetReceiverParts installs the receiver → owning-part mapping (see
// ReceiverOwnerParts). Operator construction is the caller's concern —
// the facade already holds the geometry operator — so the parts arrive
// precomputed; Step refuses to run without them. The coordinator
// derives the sampling rank of each receiver from the current
// part → rank placement, and re-derives it after every rebalance (the
// owning part never moves; the executing rank may).
func (co *Coordinator) SetReceiverParts(parts []int) error {
	if len(parts) != len(co.cfg.Run.Receivers) {
		return fmt.Errorf("dist: %d owner parts for %d receivers", len(parts), len(co.cfg.Run.Receivers))
	}
	for _, p := range parts {
		if p < 0 || p >= co.cfg.Run.Parts {
			return fmt.Errorf("dist: receiver owner part %d outside [0,%d)", p, co.cfg.Run.Parts)
		}
	}
	co.recParts = make([]int, len(parts))
	copy(co.recParts, parts)
	co.applyRecOwn()
	return nil
}

// applyRecOwn recomputes the receiver → sampling-rank table from the
// stored owner parts and the current part → rank placement. launch
// calls it too, so a relaunch under a new map (rebalance, or recovery
// after a failed rebalance) always scatters samples consistently.
func (co *Coordinator) applyRecOwn() {
	if co.recParts == nil {
		return
	}
	ranks := co.cfg.Run.partRanks()
	co.recOwn = make([]int, len(co.recParts))
	for i, p := range co.recParts {
		co.recOwn[i] = ranks[p]
	}
}

// Step advances every rank by one coarse cycle and returns the cycle
// time plus the receiver samples, in configured receiver order. The
// samples slice is valid until the next Step.
func (co *Coordinator) Step() (t float64, samples []float64, err error) {
	return co.StepCtx(context.Background())
}

// StepCtx is Step with cancellation: when ctx is cancelled mid-step the
// run is aborted immediately — spawned rank processes are killed and
// reaped, halo and control connections closed — and ctx.Err() (not a
// wire error from the dying ranks) is returned. With CheckpointEvery >
// 0, rank failures inside the cycle trigger transparent recovery
// (relaunch + restore + bitwise replay) before the cycle is retried;
// only an exhausted recovery budget or an unrecoverable error reaches
// the caller.
func (co *Coordinator) StepCtx(ctx context.Context) (t float64, samples []float64, err error) {
	if co.recOwn == nil {
		return 0, nil, fmt.Errorf("dist: Step before SetReceiverParts")
	}
	if err := ctx.Err(); err != nil {
		co.Abort()
		return 0, nil, err
	}
	t, samples, err = co.stepCycle(ctx)
	for err != nil {
		if ctx.Err() != nil {
			co.Abort()
			return 0, nil, ctx.Err()
		}
		if rerr := co.tryRecover(ctx, err); rerr != nil {
			return 0, nil, rerr
		}
		t, samples, err = co.stepCycle(ctx)
	}
	co.cycle++
	if co.trace != nil {
		co.trace.Record(co.cycle, co.busy)
	}
	if co.cfg.CheckpointEvery > 0 && co.cycle%int64(co.cfg.CheckpointEvery) == 0 {
		for {
			st, ferr := co.fetchState(ctx)
			if ferr == nil {
				co.ckpt, co.ckptCycle = st, co.cycle
				break
			}
			if ctx.Err() != nil {
				co.Abort()
				return 0, nil, ctx.Err()
			}
			// Recovery replays up to co.cycle, so the samples already
			// collected for this cycle remain valid afterwards.
			if rerr := co.tryRecover(ctx, ferr); rerr != nil {
				return 0, nil, rerr
			}
		}
	}
	if rerr := co.maybeRebalance(ctx); rerr != nil {
		if ctx.Err() != nil {
			co.Abort()
			return 0, nil, ctx.Err()
		}
		// A failed rebalance attempt is a rank failure like any other:
		// recovery replays up to co.cycle, so this cycle's samples stay
		// valid; only an unrecoverable error surfaces.
		if rerr = co.tryRecover(ctx, rerr); rerr != nil {
			return 0, nil, rerr
		}
	}
	return t, samples, nil
}

// maybeRebalance runs the imbalance detector over the cycle's busy
// telemetry and, when it fires and budget remains, performs an
// automatic rebalance: per-part costs are gathered from the ranks and
// LPT-remapped onto the rank set. A remap identical to the current
// placement (the load is as balanced as the parts allow) is skipped.
func (co *Coordinator) maybeRebalance(ctx context.Context) error {
	if co.det == nil || co.rebalances >= co.cfg.MaxRebalances {
		return nil
	}
	if !co.det.Observe(co.busy) {
		return nil
	}
	stats, err := co.Stats()
	if err != nil {
		return err
	}
	cost := make([]float64, co.cfg.Run.Parts)
	for _, st := range stats {
		for j, p := range st.OwnedParts {
			if j < len(st.PartNanos) {
				cost[p] = float64(st.PartNanos[j])
			}
		}
	}
	co.partCost = cost // degraded-mode shrinks reuse the freshest costs
	next := tune.Remap(cost, co.cfg.Run.Ranks)
	if tune.Equal(next, co.cfg.Run.partRanks()) {
		return nil
	}
	return co.rebalance(ctx, next)
}

// Rebalance moves the parts → ranks placement mid-run: snapshot the
// replicated state, tear the current generation down, relaunch every
// rank under the new map, and restore the snapshot. Parts — and with
// them the ascending-part assembly order — never change, so the
// resumed trajectory is bitwise identical to one that ran under either
// placement throughout. The receiver sampling ranks are re-derived
// from their (placement-invariant) owning parts.
func (co *Coordinator) Rebalance(partRank []int) error {
	return co.rebalance(context.Background(), partRank)
}

func (co *Coordinator) rebalance(ctx context.Context, partRank []int) error {
	trial := co.cfg.Run
	trial.PartRank = append([]int(nil), partRank...)
	if err := trial.validate(); err != nil {
		return err
	}
	st, err := co.fetchState(ctx)
	if err != nil {
		return err
	}
	start := time.Now()
	co.teardown(false)
	co.cfg.Run.PartRank = trial.PartRank
	co.gen++
	if err := co.launch(); err != nil {
		return err
	}
	if err := co.restoreAll(ctx, st); err != nil {
		return err
	}
	co.rebalances++
	co.rebalanceWall += time.Since(start)
	return nil
}

// Rebalances reports how many part → rank rebalances this run has
// performed and the wall-clock time spent inside them.
func (co *Coordinator) Rebalances() (int, time.Duration) {
	return co.rebalances, co.rebalanceWall
}

// PartRanks returns the current part → rank placement.
func (co *Coordinator) PartRanks() []int {
	return append([]int(nil), co.cfg.Run.partRanks()...)
}

// TraceSamples returns the recent per-cycle busy telemetry (oldest
// first); empty unless Run.Telemetry is enabled.
func (co *Coordinator) TraceSamples() []tune.Sample {
	if co.trace == nil {
		return nil
	}
	return co.trace.Samples()
}

// stepCycle drives one lockstep cycle across the ranks.
func (co *Coordinator) stepCycle(ctx context.Context) (float64, []float64, error) {
	var cmd [4]byte
	binary.LittleEndian.PutUint32(cmd[:], 1)
	for i, h := range co.ranks {
		if err := h.c.send(msgStep, cmd[:]); err != nil {
			return 0, nil, &RankFailure{Rank: i, Kind: FailureLink, Err: fmt.Errorf("sending step: %w", err)}
		}
	}
	samples := make([]float64, len(co.cfg.Run.Receivers))
	ranks := co.cfg.Run.Ranks
	// maxWait[q] is the longest any rank spent this cycle waiting for
	// rank q's halo frames (telemetry only).
	var maxWait []float64
	if co.cfg.Run.Telemetry {
		maxWait = make([]float64, ranks)
	}
	for i := range co.ranks {
		fr, err := co.recvFrame(ctx, i, stepTimeout)
		if err != nil {
			return 0, nil, err
		}
		if fr.t != msgCycleDone {
			return 0, nil, fmt.Errorf("dist: rank %d: unexpected frame type %d", i, fr.t)
		}
		vals, err := getFloats(fr.payload)
		if err != nil {
			return 0, nil, err
		}
		want := 1
		for _, o := range co.recOwn {
			if o == i {
				want++
			}
		}
		if co.cfg.Run.Telemetry {
			// Trailing compute busy-nanos plus per-peer halo-wait nanos.
			want += 1 + ranks
		}
		if len(vals) != want {
			return 0, nil, fmt.Errorf("dist: rank %d reported %d values, want %d", i, len(vals), want)
		}
		if i == 0 {
			co.t = vals[0]
		}
		if co.cfg.Run.Telemetry {
			co.busy[i] = vals[len(vals)-1-ranks]
			for q, w := range vals[len(vals)-ranks:] {
				if w > maxWait[q] {
					maxWait[q] = w
				}
			}
		}
		k := 1
		for ri, o := range co.recOwn {
			if o == i {
				samples[ri] = vals[k]
				k++
			}
		}
	}
	if co.cfg.Run.Telemetry {
		// Charge each rank the worst wait its peers paid for it: a rank
		// behind a delayed or stalled link reads as busy even when its
		// compute is light, which is exactly the skew the imbalance
		// detector should fire on.
		for q, w := range maxWait {
			co.busy[q] += w
		}
	}
	return co.t, samples, nil
}

// tryRecover decides whether cause is recoverable (a *RankFailure, a
// held checkpoint, budget left) and if so performs recovery: tear down
// the current generation, relaunch every rank, restore the snapshot and
// replay up to the current cycle. It loops on failures *during*
// recovery until the budget runs out — at which point DegradedMode
// shrinks the rank set instead of giving up. A nil return means the run
// is healthy again at exactly co.cycle completed cycles.
func (co *Coordinator) tryRecover(ctx context.Context, cause error) error {
	var rf *RankFailure
	if !errors.As(cause, &rf) {
		return cause
	}
	if co.cfg.CheckpointEvery <= 0 || co.ckpt == nil {
		return cause
	}
	for {
		if co.budgetUsed >= co.cfg.MaxRecoveries {
			// Same-width recovery is not working: this rank (or its link)
			// is permanently gone. Degrade by redistributing its parts onto
			// the survivors, or fail the run if that is not allowed.
			return co.degrade(ctx, cause)
		}
		co.budgetUsed++
		co.recoveries++
		start := time.Now()
		err := co.restartRanks(ctx)
		co.recoveryWall += time.Since(start)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			co.Abort()
			return ctx.Err()
		}
		if !errors.As(err, &rf) {
			return err
		}
		cause = err
	}
}

// degrade is the permanent-loss path: recovery at the current width has
// exhausted its budget, so shrink the rank set by one and continue on
// the survivors. It loops — a failure during the shrunken relaunch
// shrinks again — until the run is healthy, the MinRanks floor blocks
// further shrinking, or an unrecoverable error surfaces. Each
// successful shrink resets the recovery budget: the new configuration
// earns a fresh chance before degrading further.
func (co *Coordinator) degrade(ctx context.Context, cause error) error {
	if !co.cfg.DegradedMode {
		return fmt.Errorf("dist: recovery budget (%d) exhausted: %w", co.cfg.MaxRecoveries, cause)
	}
	for {
		if co.cfg.Run.Ranks <= co.cfg.MinRanks {
			return fmt.Errorf("dist: recovery budget (%d) exhausted at the MinRanks floor (%d): %w",
				co.cfg.MaxRecoveries, co.cfg.MinRanks, cause)
		}
		start := time.Now()
		err := co.shrink(ctx)
		co.degradeWall += time.Since(start)
		if err == nil {
			co.degradedRanks++
			co.budgetUsed = 0
			return nil
		}
		if ctx.Err() != nil {
			co.Abort()
			return ctx.Err()
		}
		var rf *RankFailure
		if !errors.As(err, &rf) {
			return err
		}
		cause = err
	}
}

// shrink relaunches the run with one rank fewer: the parts are
// LPT-remapped over the last measured per-part costs (unit costs when
// telemetry never ran) onto Ranks−1 ranks, the held checkpoint is
// restored, and the cycles since it replay silently. Parts — and with
// them the ascending-part assembly order — never change, so the
// degraded trajectory is bitwise identical to the fault-free one.
func (co *Coordinator) shrink(ctx context.Context) error {
	newRanks := co.cfg.Run.Ranks - 1
	cost := co.partCost
	if len(cost) != co.cfg.Run.Parts {
		// No telemetry measured yet: unit costs (Remap floors zeros to
		// 1 ns) spread the parts evenly.
		cost = make([]float64, co.cfg.Run.Parts)
	}
	trial := co.cfg.Run
	trial.Ranks = newRanks
	trial.PartRank = tune.Remap(cost, newRanks)
	if err := trial.validate(); err != nil {
		return err
	}
	co.teardown(false)
	co.cfg.Run.Ranks = newRanks
	co.cfg.Run.PartRank = trial.PartRank
	if co.busy != nil {
		co.busy = make([]float64, newRanks)
	}
	co.gen++
	if err := co.launch(); err != nil {
		return err
	}
	if err := co.restoreAll(ctx, co.ckpt); err != nil {
		return err
	}
	for c := co.ckptCycle; c < co.cycle; c++ {
		if _, _, err := co.stepCycle(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Degraded reports how many ranks this run has permanently lost (each
// one a shrink of the rank set) and the wall-clock time spent inside
// the shrinks.
func (co *Coordinator) Degraded() (int, time.Duration) {
	return co.degradedRanks, co.degradeWall
}

// CorruptFrames reports how many CRC-failed frames the coordinator has
// rejected (each one routed into recovery).
func (co *Coordinator) CorruptFrames() int64 { return co.corruptFrames }

// Ranks reports the current rank count (smaller than the configured
// count after degraded-mode shrinks).
func (co *Coordinator) Ranks() int { return co.cfg.Run.Ranks }

// restartRanks is one recovery attempt: kill the current generation,
// launch the next, restore the held snapshot on every rank, and replay
// the cycles between the snapshot and the failure. Replayed samples are
// discarded — the fixed decomposition width makes them bitwise
// identical to the ones already delivered.
func (co *Coordinator) restartRanks(ctx context.Context) error {
	co.teardown(false)
	co.gen++
	if err := co.launch(); err != nil {
		return err
	}
	if err := co.restoreAll(ctx, co.ckpt); err != nil {
		return err
	}
	for c := co.ckptCycle; c < co.cycle; c++ {
		if _, _, err := co.stepCycle(ctx); err != nil {
			return err
		}
	}
	return nil
}

// fetchState pulls a snapshot of the stepper state from every rank and
// merges them into the exact global field. Under owner-computes
// stepping a rank's replicated arrays are bitwise correct only on its
// owned element-node footprint — the rest is stale — so the snapshot
// starts from rank 0's full-length arrays and overlays each remaining
// rank's owned dofs. Footprints overlap at part boundaries, where the
// assembled values agree bitwise on both sides, so overlay order does
// not matter; nodes in no footprint see only the replicated pointwise
// update and are identical on every rank.
func (co *Coordinator) fetchState(ctx context.Context) (*ckpt.StepperState, error) {
	for i, h := range co.ranks {
		if err := h.c.send(msgCkpt, nil); err != nil {
			return nil, &RankFailure{Rank: i, Kind: FailureLink, Err: fmt.Errorf("requesting checkpoint: %w", err)}
		}
	}
	var st *ckpt.StepperState
	for i := range co.ranks {
		fr, err := co.recvFrame(ctx, i, stepTimeout)
		if err != nil {
			return nil, err
		}
		if fr.t != msgCkptResp {
			return nil, fmt.Errorf("dist: rank %d: unexpected frame type %d", i, fr.t)
		}
		var cf ckptFrame
		if err := decodeGob(fr.payload, &cf); err != nil {
			return nil, err
		}
		if cf.State == nil {
			return nil, fmt.Errorf("dist: rank %d: checkpoint frame without state", i)
		}
		if i == 0 {
			st = cf.State
			continue
		}
		if len(cf.State.U) != len(st.U) || len(cf.State.V) != len(st.V) {
			return nil, fmt.Errorf("dist: rank %d snapshot has %d/%d dofs, rank 0 has %d/%d",
				i, len(cf.State.U), len(cf.State.V), len(st.U), len(st.V))
		}
		for _, n := range cf.Nodes {
			base := int(n) * cf.Comps
			for c := 0; c < cf.Comps; c++ {
				st.U[base+c] = cf.State.U[base+c]
				st.V[base+c] = cf.State.V[base+c]
			}
		}
	}
	return st, nil
}

// restoreAll installs st on every rank.
func (co *Coordinator) restoreAll(ctx context.Context, st *ckpt.StepperState) error {
	for i, h := range co.ranks {
		if err := h.c.sendGob(msgRestore, st); err != nil {
			return &RankFailure{Rank: i, Kind: FailureLink, Err: fmt.Errorf("sending restore: %w", err)}
		}
	}
	for i := range co.ranks {
		fr, err := co.recvFrame(ctx, i, handshakeTimeout)
		if err != nil {
			return err
		}
		if fr.t != msgRestoreDone {
			return fmt.Errorf("dist: rank %d: unexpected frame type %d", i, fr.t)
		}
	}
	return nil
}

// FetchState returns a snapshot of the global stepper state, merged
// across every rank's owned footprint so it matches the shared-memory
// engine bitwise. The facade uses it to write file checkpoints of
// distributed runs.
func (co *Coordinator) FetchState() (*ckpt.StepperState, error) {
	return co.fetchState(context.Background())
}

// RestoreState installs st on every rank and adopts it as the recovery
// baseline, resetting the cycle counter — the coordinator now sits at
// "cycle 0 of the resumed run".
func (co *Coordinator) RestoreState(st *ckpt.StepperState) error {
	if err := co.restoreAll(context.Background(), st); err != nil {
		return err
	}
	stCopy := *st
	co.ckpt, co.ckptCycle, co.cycle = &stCopy, 0, 0
	return nil
}

// Recoveries reports how many rank-failure recoveries this run has
// performed and the wall-clock time spent inside them.
func (co *Coordinator) Recoveries() (int, time.Duration) {
	return co.recoveries, co.recoveryWall
}

// Time returns the cycle time reported by rank 0 after the last Step.
func (co *Coordinator) Time() float64 { return co.t }

// Stats gathers every rank's statistics. The first element is rank 0's
// (whose scheme-level work model the facade reports); the distributed
// operator counters differ per rank and are summed by callers as needed.
func (co *Coordinator) Stats() ([]RankStats, error) {
	out := make([]RankStats, len(co.ranks))
	for i, h := range co.ranks {
		if err := h.c.send(msgStats, nil); err != nil {
			return nil, fmt.Errorf("dist: rank %d: %w", i, err)
		}
	}
	for i := range co.ranks {
		fr, err := co.recvFrame(context.Background(), i, handshakeTimeout)
		if err != nil {
			return nil, err
		}
		if fr.t != msgStatsResp {
			return nil, fmt.Errorf("dist: rank %d: unexpected frame type %d", i, fr.t)
		}
		if err := decodeGob(fr.payload, &out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Close shuts the ranks down cleanly, escalating to kill after a grace
// period. It is idempotent and safe after a failed or aborted Step.
func (co *Coordinator) Close() error {
	co.closeOnce.Do(func() { co.closeErr = co.teardown(true) })
	return co.closeErr
}

// Abort tears the run down immediately: spawned rank processes are
// killed and reaped, in-process ranks are unblocked by closing their
// connections, and every control connection is closed. It is the
// non-graceful twin of Close for cancelled contexts — no shutdown
// message, no grace period — and leaves no orphan processes behind. A
// later Close returns without further work.
func (co *Coordinator) Abort() {
	co.closeOnce.Do(func() { co.teardown(false) })
}

// teardown is the shared shutdown path. graceful sends msgShutdown and
// gives every rank a grace period to exit on its own before killing;
// non-graceful kills spawned ranks outright and severs the in-process
// ranks' connections. Both paths reap every spawned process (via its
// watcher goroutine) so no zombies survive, and both close every
// control connection. Recovery reuses the non-graceful path directly to
// clear out a failed generation.
func (co *Coordinator) teardown(graceful bool) error {
	var firstErr error
	grace := 10 * time.Second
	if graceful {
		for _, h := range co.ranks {
			if h != nil && h.c != nil {
				h.c.send(msgShutdown, nil)
			}
		}
	} else {
		grace = 5 * time.Second
		for _, h := range co.ranks {
			if h == nil {
				continue
			}
			if h.proc != nil {
				h.proc.Process.Kill()
			}
			// Severing the control connection unblocks an in-process rank's
			// serve loop (and any peer reads follow when the fabric dies).
			if h.c != nil {
				h.c.close()
			}
		}
	}
	// One absolute deadline shared by all ranks: each wait gets its own
	// timer on the remaining time, so several wedged ranks are all killed
	// instead of only the first.
	deadline := time.Now().Add(grace)
	for i, h := range co.ranks {
		switch {
		case h == nil:
		case h.proc != nil:
			select {
			case <-h.procDead:
				if graceful && h.procErr != nil && firstErr == nil {
					firstErr = fmt.Errorf("dist: rank %d: %w", i, h.procErr)
				}
			case <-time.After(time.Until(deadline)):
				h.proc.Process.Kill()
				<-h.procDead
				if graceful && firstErr == nil {
					firstErr = fmt.Errorf("dist: rank %d killed after shutdown timeout", i)
				}
			}
		case h.done != nil:
			select {
			case err := <-h.done:
				if graceful && err != nil && firstErr == nil {
					firstErr = fmt.Errorf("dist: rank %d: %w", i, err)
				}
			case <-time.After(time.Until(deadline)):
				if firstErr == nil {
					firstErr = fmt.Errorf("dist: rank %d did not exit after shutdown", i)
				}
			}
		}
		if h != nil && h.c != nil {
			h.c.close()
		}
	}
	return firstErr
}

// kill tears down a partially-started run.
func (co *Coordinator) kill() {
	for _, h := range co.ranks {
		if h == nil {
			continue
		}
		if h.c != nil {
			h.c.close()
		}
		if h.proc != nil {
			h.proc.Process.Kill()
			<-h.procDead
		}
	}
}
