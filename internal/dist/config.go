// Package dist is the distributed multi-process execution backend: the
// process-level analogue of the shared-memory engine in internal/parallel,
// with the same owner-computes decomposition plans (package decomp) and
// real message passing over loopback sockets in place of the in-memory
// merge.
//
// A run is SPMD: a coordinator process spawns N rank processes of the
// same binary (see RankMain), each rank rebuilds the mesh, operator and
// time stepper deterministically from a broadcast RunConfig, and all
// ranks step the same scheme in lockstep. The stiffness application is
// the only coupled operation of either stepper — every other update is
// pointwise in the degrees of freedom — so each rank computes K·u only
// over its owned partition slice (with the batched SoA kernels) and
// exchanges halo node contributions with its neighbouring ranks at every
// LTS substep, using the per-rank, per-level halo sets induced by the
// decomposition plans. After the exchange a rank's field values are
// exact on every node its elements touch and harmlessly stale elsewhere;
// receivers are sampled by the rank owning their node.
//
// Determinism: contributions assemble at every node in ascending part
// order — the same order as the shared-memory engine's merge — so for a
// fixed decomposition width (Parts) the seismograms are bitwise
// identical to the shared-memory engine with Parts workers, for any
// number of rank processes executing those parts.
package dist

import (
	"fmt"
	"time"

	"golts/internal/decomp"
	"golts/internal/mesh"
	"golts/internal/sem"
)

// SourceSpec is one collocated Ricker point force, resolved to a global
// degree of freedom by the coordinator.
type SourceSpec struct {
	Dof          int
	F0, T0, Gain float64
}

// SpongeSpec configures the absorbing boundary layer; ranks rebuild the
// per-node damping profile deterministically from it.
type SpongeSpec struct {
	Width, Strength float64
	Faces           [6]bool
}

// RunConfig is everything a rank needs to rebuild the simulation. It is
// broadcast once, gob-encoded, right after the handshake. Every field
// must be deterministic: ranks reconstruct mesh, operator, level
// assignment and stepper from it, and the equivalence tests pin the
// reconstruction bitwise against the in-process build.
type RunConfig struct {
	// Mesh names a registered benchmark mesh generator; Scale its size.
	Mesh  string
	Scale float64
	// Physics is "acoustic" or "elastic".
	Physics string
	// Degree is the SEM polynomial degree.
	Degree int
	// LevelCFL is the normalised Courant number handed to
	// mesh.AssignLevels (the facade's cfl/degree²).
	LevelCFL float64
	// LTS selects the multi-level scheme; false runs global Newmark with
	// p_max substeps per coarse cycle.
	LTS bool
	// PerElement forces the per-element reference kernel instead of the
	// batched SoA kernel.
	PerElement bool
	// Ranks is the number of rank processes; Parts the decomposition
	// width (Parts ≥ Ranks; parts map onto ranks in contiguous blocks
	// unless PartRank overrides the placement).
	Ranks, Parts int
	// Part is the element → part assignment, len NumElements.
	Part []int32
	// PartRank optionally assigns each part to an arbitrary rank
	// (len Parts, values in [0,Ranks), every rank owning at least one
	// part). Nil selects the default contiguous block map. Remapping
	// parts onto ranks never changes the assembly order — contributions
	// merge in ascending part order regardless of which process executes
	// a part — so any PartRank produces bitwise-identical seismograms;
	// the runtime rebalancer exploits exactly this freedom.
	PartRank []int
	// Sources are the resolved point forces; Receivers the recorded
	// degrees of freedom, in facade receiver order.
	Sources   []SourceSpec
	Receivers []int
	// Sponge configures absorbing boundaries; zero disables.
	Sponge SpongeSpec

	// Telemetry enables the per-part and per-level timing counters the
	// rebalancer and auto-tuner consume: each rank times its owned
	// parts' kernel work and appends a per-cycle busy-nanos sample to
	// its cycle-done report. Off by default — the counters are cheap
	// (two monotonic clock reads per part per apply) but not free.
	Telemetry bool

	// Liveness knobs, broadcast so ranks and coordinator agree. Zero
	// selects the defaults (1 s heartbeat, 15 s heartbeat timeout, 2 min
	// peer-frame timeout); negative disables the mechanism.
	HeartbeatMillis        int
	HeartbeatTimeoutMillis int
	PeerTimeoutMillis      int
}

func timeoutMillis(v, def int) time.Duration {
	if v < 0 {
		return 0
	}
	if v == 0 {
		v = def
	}
	return time.Duration(v) * time.Millisecond
}

// heartbeatInterval is the rank → coordinator beacon period.
func (c *RunConfig) heartbeatInterval() time.Duration { return timeoutMillis(c.HeartbeatMillis, 1000) }

// heartbeatTimeout is how long the coordinator tolerates silence from a
// rank while waiting on it before declaring a RankFailure.
func (c *RunConfig) heartbeatTimeout() time.Duration {
	return timeoutMillis(c.HeartbeatTimeoutMillis, 15000)
}

// peerTimeout bounds a blocking halo receive on the rank ↔ rank mesh.
func (c *RunConfig) peerTimeout() time.Duration { return timeoutMillis(c.PeerTimeoutMillis, 120000) }

// validate checks the structural invariants the handshake relies on.
func (c *RunConfig) validate() error {
	if c.Ranks < 1 {
		return fmt.Errorf("dist: ranks must be >= 1, got %d", c.Ranks)
	}
	if c.Parts < c.Ranks {
		return fmt.Errorf("dist: parts (%d) must be >= ranks (%d)", c.Parts, c.Ranks)
	}
	if _, ok := mesh.Generators[c.Mesh]; !ok {
		return fmt.Errorf("dist: unknown mesh %q", c.Mesh)
	}
	if c.Physics != "acoustic" && c.Physics != "elastic" {
		return fmt.Errorf("dist: unknown physics %q", c.Physics)
	}
	for _, p := range c.Part {
		if p < 0 || int(p) >= c.Parts {
			return fmt.Errorf("dist: part id %d outside [0,%d)", p, c.Parts)
		}
	}
	if c.PartRank != nil {
		if len(c.PartRank) != c.Parts {
			return fmt.Errorf("dist: part-rank map has %d entries, want %d", len(c.PartRank), c.Parts)
		}
		seen := make([]bool, c.Ranks)
		for p, r := range c.PartRank {
			if r < 0 || r >= c.Ranks {
				return fmt.Errorf("dist: part %d mapped to rank %d outside [0,%d)", p, r, c.Ranks)
			}
			seen[r] = true
		}
		for r, ok := range seen {
			if !ok {
				return fmt.Errorf("dist: part-rank map leaves rank %d without parts", r)
			}
		}
	}
	return nil
}

// partRanks is the effective part → rank placement: the explicit
// PartRank map when set, the contiguous block default otherwise.
func (c *RunConfig) partRanks() []int {
	if c.PartRank != nil {
		return c.PartRank
	}
	return ownerRanks(c.Parts, c.Ranks)
}

// rankParts inverts a part → rank map into each rank's owned parts, in
// ascending part order — the order owned contributions are packed and
// assembled in, whatever the placement.
func rankParts(partRank []int, ranks int) [][]int {
	out := make([][]int, ranks)
	for p, r := range partRank {
		out[r] = append(out[r], p)
	}
	return out
}

// partRange returns the half-open part range [lo, hi) owned by rank r:
// parts split into contiguous ascending blocks, so each rank's parts are
// consecutive in the global part order (which is what lets a receiving
// rank read one neighbour message sequentially while assembling parts in
// ascending order).
func partRange(r, parts, ranks int) (lo, hi int) {
	return r * parts / ranks, (r + 1) * parts / ranks
}

// ownerRanks maps every part to its rank via partRange, as a lookup
// table.
func ownerRanks(parts, ranks int) []int {
	own := make([]int, parts)
	for r := 0; r < ranks; r++ {
		lo, hi := partRange(r, parts, ranks)
		for p := lo; p < hi; p++ {
			own[p] = r
		}
	}
	return own
}

// geomOperator is the slice of the concrete operators the rank runtime
// needs beyond sem.Operator: node coordinates for the sponge profile.
type geomOperator interface {
	sem.Operator
	NodeCoords(n int32) (x, y, z float64)
}

// buildOperator reconstructs the discretization a RunConfig describes.
// It is the deterministic twin of the facade's operator construction.
func buildOperator(cfg *RunConfig) (*mesh.Mesh, *mesh.Levels, geomOperator, error) {
	gen, ok := mesh.Generators[cfg.Mesh]
	if !ok {
		return nil, nil, nil, fmt.Errorf("dist: unknown mesh %q", cfg.Mesh)
	}
	m := gen(cfg.Scale)
	lv := mesh.AssignLevels(m, cfg.LevelCFL, 0)
	var geom geomOperator
	switch cfg.Physics {
	case "acoustic":
		op, err := sem.NewAcoustic3D(m, cfg.Degree, false)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("dist: %w", err)
		}
		geom = op
	case "elastic":
		op, err := sem.NewElastic3D(m, cfg.Degree, false, 0)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("dist: %w", err)
		}
		geom = op
	default:
		return nil, nil, nil, fmt.Errorf("dist: unknown physics %q", cfg.Physics)
	}
	return m, lv, geom, nil
}

// ReceiverOwnerParts maps every configured receiver to the part that
// samples it: the lowest part whose elements touch the receiver's node.
// Unlike the executing rank, the owning part is invariant under
// part → rank remapping, so the coordinator stores parts and re-derives
// ranks from the current placement after every rebalance.
func ReceiverOwnerParts(op sem.Operator, cfg *RunConfig) ([]int, error) {
	dp := decomp.Build(op, cfg.Part, cfg.Parts, sem.AllElements(op))
	owners := decomp.Owners(op.NumNodes(), dp.Touched)
	nc := op.Comps()
	out := make([]int, len(cfg.Receivers))
	for i, dof := range cfg.Receivers {
		if dof < 0 || dof >= op.NDof() {
			return nil, fmt.Errorf("dist: receiver dof %d outside [0,%d)", dof, op.NDof())
		}
		p := owners[dof/nc]
		if p < 0 {
			return nil, fmt.Errorf("dist: receiver dof %d on a node no part touches", dof)
		}
		out[i] = int(p)
	}
	return out, nil
}

// ReceiverOwners maps every configured receiver to the rank that samples
// it under the configuration's current part → rank placement. The
// coordinator's caller and every rank compute the same mapping from the
// broadcast configuration.
func ReceiverOwners(op sem.Operator, cfg *RunConfig) ([]int, error) {
	parts, err := ReceiverOwnerParts(op, cfg)
	if err != nil {
		return nil, err
	}
	ranks := cfg.partRanks()
	out := make([]int, len(parts))
	for i, p := range parts {
		out[i] = ranks[p]
	}
	return out, nil
}
