package dist

import (
	"fmt"
	"time"

	"golts/internal/decomp"
	"golts/internal/sem"
)

// exchanger is the rank runtime's message fabric, as the operator sees
// it: send a halo frame to a peer rank and receive the next halo frame
// from a peer rank. Receives are per-peer ordered (one TCP stream per
// pair) and block until the frame arrives.
type exchanger interface {
	sendHalo(rank int, seq, planID uint32, values []float64) error
	recvHalo(rank int) (seq, planID uint32, values []float64, err error)
}

// Stats accumulates the operator's real communication counters: one
// message per neighbour send, volume in node-contribution values
// (node count, not components, matching internal/parallel's units).
type Stats struct {
	Applies  int64
	Messages int64
	Volume   int64
}

// Operator is the message-passing analogue of
// parallel.PartitionedOperator: it implements sem.Operator (and
// sem.BatchKernel when the inner operator supports batching) for one
// rank of an SPMD run. Every stiffness application computes the owned
// parts' contributions locally — per part, into private accumulation
// buffers — exchanges the halo values with neighbouring ranks, and
// assembles all contributions in ascending part order, which makes the
// result at every locally-touched node bitwise identical to the
// shared-memory engine with Parts workers. Nodes no local element
// touches receive no contributions (their field values are harmlessly
// stale under the replicated-state stepping discipline; see the package
// comment).
//
// The operator is driven by a single stepping goroutine; the parallelism
// lives across processes.
type Operator struct {
	inner sem.Operator
	bk    sem.BatchKernel // inner's batched kernel, nil when unsupported
	cfg   *RunConfig
	rank  int
	ex    exchanger

	// OnApply, when set, runs at the top of every distributed stiffness
	// application. The fault-injection harness uses it to address
	// individual substeps within a cycle.
	OnApply func()

	owned    []int       // owned parts, ascending
	localIdx []int       // part → index into owned/acc, -1 for remote parts
	acc      [][]float64 // per owned part, full-length accumulation buffers
	scr      sem.Scratch
	bscr     sem.BatchScratch

	// rankNodes[q] is rank q's global element-node footprint: the sorted
	// union of all nodes its owned elements touch, over the whole mesh.
	// This — not the per-level touched set — is the halo target: the
	// stepper reads u at every node of its owned elements at *some*
	// level, so every level's apply must deliver assembled contributions
	// on the full footprint to keep the replicated state exact there.
	rankNodes [][]int32

	partRank []int   // part → executing rank
	ownedBy  [][]int // rank → its owned parts, ascending

	// partNanos accumulates per-owned-part compute wall time (indexed
	// like owned/acc) when cfg.Telemetry is set; the rebalancer reads it
	// through RankStats to cost parts before remapping them.
	telemetry bool
	partNanos []int64

	plans      *decomp.Cache
	ext        map[*decomp.Plan]*distPlan
	nextPlanID uint32
	seq        uint32

	vals []float64   // reusable halo extraction buffer
	recv [][]float64 // per-rank frame values of the apply in flight
	offs []int       // per-rank read offsets of the assembly phase

	stats Stats
}

// distPlan is the per-element-list execution state layered on a
// decomposition plan: the halo index sets against every neighbouring
// rank and the per-owned-part inner batch plans.
type distPlan struct {
	dp *decomp.Plan
	id uint32
	// sendRanks lists the ranks we send halo values to for this element
	// list and recvRanks the ranks we receive from, both ascending. The
	// two differ in general: a rank with no elements at this level still
	// receives contributions on its global footprint but sends none.
	// Both sides derive both lists from the shared plan, so the pairing
	// always matches.
	sendRanks, recvRanks []int
	// sendNodes[q][i] lists, for rank q and the i-th owned part, the
	// ascending nodes of Touched[owned[i]] ∩ rankNodes[q] whose
	// contributions we send to q. recvNodes[p] lists, for each remote
	// part p, the ascending nodes of Touched[p] ∩ rankNodes[self] we
	// receive. A rank packs its parts in ascending part order and the
	// global assembly sweep also visits parts ascending, so each
	// neighbour's single message is consumed sequentially whatever the
	// part → rank placement — owned parts need not be contiguous.
	sendNodes map[int][][]int32
	recvNodes [][]int32
	sendCount map[int]int // total nodes sent to q per apply
	// batch[i] is the inner batch plan of the i-th owned part (nil for
	// empty parts); built lazily on the first batched apply so
	// per-element configurations never hold the packed constants.
	batch      []sem.BatchPlan
	batchTried bool
}

// NewOperator builds the rank-local distributed operator. part maps
// every element to a part in [0, cfg.Parts); parts map onto ranks in
// contiguous blocks unless cfg.PartRank places them explicitly.
func NewOperator(inner sem.Operator, cfg *RunConfig, rank int, ex exchanger) (*Operator, error) {
	if rank < 0 || rank >= cfg.Ranks {
		return nil, fmt.Errorf("dist: rank %d outside [0,%d)", rank, cfg.Ranks)
	}
	if len(cfg.Part) != inner.NumElements() {
		return nil, fmt.Errorf("dist: partition has %d entries for %d elements",
			len(cfg.Part), inner.NumElements())
	}
	d := &Operator{
		inner: inner,
		cfg:   cfg,
		rank:  rank,
		ex:    ex,
		plans: decomp.NewCache(inner, cfg.Part, cfg.Parts),
		ext:   make(map[*decomp.Plan]*distPlan),
	}
	d.bk, _ = inner.(sem.BatchKernel)
	d.partRank = cfg.partRanks()
	d.ownedBy = rankParts(d.partRank, cfg.Ranks)
	d.owned = d.ownedBy[rank]
	d.localIdx = make([]int, cfg.Parts)
	for p := range d.localIdx {
		d.localIdx[p] = -1
	}
	for i, p := range d.owned {
		d.localIdx[p] = i
	}
	d.acc = make([][]float64, len(d.owned))
	for i := range d.acc {
		d.acc[i] = make([]float64, inner.NDof())
	}
	d.telemetry = cfg.Telemetry
	d.partNanos = make([]int64, len(d.owned))
	// Global per-rank element-node footprints: one list of element ids
	// per rank, then the shared touched-set construction.
	rankElems := make([][]int32, cfg.Ranks)
	for e, p := range cfg.Part {
		r := d.partRank[p]
		rankElems[r] = append(rankElems[r], int32(e))
	}
	d.rankNodes = decomp.TouchedNodes(inner, rankElems)
	d.recv = make([][]float64, cfg.Ranks)
	d.offs = make([]int, cfg.Ranks)
	return d, nil
}

// Stats returns the accumulated communication counters.
func (d *Operator) Stats() Stats { return d.stats }

// OwnedParts returns this rank's owned parts, ascending.
func (d *Operator) OwnedParts() []int { return d.owned }

// PartNanos returns the cumulative compute wall time of each owned part
// (indexed like OwnedParts), measured only when cfg.Telemetry is set.
func (d *Operator) PartNanos() []int64 { return d.partNanos }

// OwnedNodes returns this rank's global element-node footprint: the
// ascending nodes its owned elements touch. On exactly these nodes the
// rank's replicated field arrays are bitwise identical to the
// shared-memory engine after every cycle; elsewhere they are stale.
// Checkpoint capture merges the footprints of all ranks to reconstruct
// the exact global field.
func (d *Operator) OwnedNodes() []int32 { return d.rankNodes[d.rank] }

// lookup returns the execution state for one element list, building the
// decomposition plan and halo index sets on first use. Plan ids are
// assigned in first-use order; the SPMD ranks execute the same apply
// sequence, so ids agree across ranks and serve as a desync check on
// every halo frame.
func (d *Operator) lookup(elems []int32) *distPlan {
	dp, flushed := d.plans.Lookup(elems)
	if flushed {
		d.ext = make(map[*decomp.Plan]*distPlan)
	}
	if pl, ok := d.ext[dp]; ok {
		return pl
	}
	pl := d.buildHalo(dp)
	pl.id = d.nextPlanID
	d.nextPlanID++
	d.ext[dp] = pl
	return pl
}

// Prepare implements sem.Preparer: the steppers announce their stable
// element lists (the all-elements list, each LTS level's force elements)
// at construction time, so the per-level halo sets exist before the
// first substep. The announcement order is deterministic across ranks.
func (d *Operator) Prepare(elems []int32) { d.lookup(elems) }

// buildHalo computes the halo index sets of one decomposition plan for
// this rank: which nodes go to and come from every other rank. Outgoing
// values target the receiver's global element-node footprint (see
// rankNodes); all ranks derive the same sets from the same plan, so no
// negotiation is needed.
func (d *Operator) buildHalo(dp *decomp.Plan) *distPlan {
	pl := &distPlan{
		dp:        dp,
		sendNodes: make(map[int][][]int32),
		sendCount: make(map[int]int),
		recvNodes: make([][]int32, dp.P),
	}
	mine := d.rankNodes[d.rank]
	for q := 0; q < d.cfg.Ranks; q++ {
		if q == d.rank {
			continue
		}
		// Outgoing: per owned part, the slice of this level's touched set
		// inside q's footprint.
		send := make([][]int32, len(d.owned))
		total := 0
		for i, p := range d.owned {
			send[i] = decomp.Shared(dp.Touched[p], d.rankNodes[q])
			total += len(send[i])
		}
		if total > 0 {
			pl.sendRanks = append(pl.sendRanks, q)
			pl.sendNodes[q] = send
			pl.sendCount[q] = total
		}
		// Incoming: per remote part of q, the slice of its touched set
		// inside our footprint. The sender computes the identical lists
		// from the same plan, so the payload needs no index header.
		recvTotal := 0
		for _, p := range d.ownedBy[q] {
			pl.recvNodes[p] = decomp.Shared(dp.Touched[p], mine)
			recvTotal += len(pl.recvNodes[p])
		}
		if recvTotal > 0 {
			pl.recvRanks = append(pl.recvRanks, q)
		}
	}
	return pl
}

// apply runs the three-phase distributed stiffness application —
// owner-computes, halo exchange, ascending-part assembly — with compute
// supplying the per-part kernel (batched or per-element).
func (d *Operator) apply(dst []float64, pl *distPlan, compute func(i, p int)) {
	if d.OnApply != nil {
		d.OnApply()
	}
	seq := d.seq
	d.seq++
	dp := pl.dp
	nc := d.inner.Comps()

	// Phase 1 — compute: every owned part accumulates its elements into
	// its private buffer (the request-order, per-part accumulation that
	// matches one shared-memory rank worker bitwise).
	for i, p := range d.owned {
		if len(dp.Parts[p]) > 0 {
			if d.telemetry {
				start := time.Now()
				compute(i, p)
				d.partNanos[i] += time.Since(start).Nanoseconds()
			} else {
				compute(i, p)
			}
		}
	}

	// Phase 2a — send: for every receiving rank, the owned parts' halo
	// values in (part, node, component) order. Peer reader goroutines
	// drain the stream on the far side, so these writes cannot deadlock
	// against the symmetric sends of the neighbours.
	for _, q := range pl.sendRanks {
		vals := d.vals[:0]
		for i := range pl.sendNodes[q] {
			acc := d.acc[i]
			for _, n := range pl.sendNodes[q][i] {
				base := int(n) * nc
				vals = append(vals, acc[base:base+nc]...)
			}
		}
		d.vals = vals
		if err := d.ex.sendHalo(q, seq, pl.id, vals); err != nil {
			panic(&commError{err: fmt.Errorf("dist: rank %d send to %d: %w", d.rank, q, err)})
		}
		d.stats.Messages++
		d.stats.Volume += int64(pl.sendCount[q])
	}

	// Phase 2b — receive: one frame per sending rank, any arrival order.
	// The per-rank frame and offset tables live on the operator (dense,
	// small), so the steady-state apply allocates nothing itself.
	for _, q := range pl.recvRanks {
		rseq, rid, vals, err := d.ex.recvHalo(q)
		if err != nil {
			panic(&commError{err: fmt.Errorf("dist: rank %d recv from %d: %w", d.rank, q, err)})
		}
		if rseq != seq || rid != pl.id {
			panic(&commError{err: fmt.Errorf("dist: rank %d desync with %d: got (seq %d, plan %d), want (%d, %d)",
				d.rank, q, rseq, rid, seq, pl.id)})
		}
		d.recv[q] = vals
		d.offs[q] = 0
	}

	// Phase 3 — assemble: add every part's contribution in ascending
	// part order. Local parts drain (and re-zero) their buffers; remote
	// parts consume their neighbour's frame sequentially (a rank's parts
	// are met in ascending order during the sweep, matching the sender's
	// packing order, whatever the placement). The ascending-part adds
	// reproduce the shared-memory merge bitwise at every locally-touched
	// node.
	for p := 0; p < dp.P; p++ {
		if li := d.localIdx[p]; li >= 0 {
			acc := d.acc[li]
			for _, n := range dp.Touched[p] {
				base := int(n) * nc
				for c := 0; c < nc; c++ {
					dst[base+c] += acc[base+c]
					acc[base+c] = 0
				}
			}
			continue
		}
		nodes := pl.recvNodes[p]
		if len(nodes) == 0 {
			continue
		}
		q := d.partRank[p]
		vals := d.recv[q]
		o := d.offs[q]
		for _, n := range nodes {
			base := int(n) * nc
			for c := 0; c < nc; c++ {
				dst[base+c] += vals[o]
				o++
			}
		}
		d.offs[q] = o
	}
	for _, q := range pl.recvRanks {
		d.recv[q] = nil // release the frame to the collector
	}
	d.stats.Applies++
}

// commError wraps a communication failure raised inside an apply; the
// rank runtime recovers it at the stepping boundary and reports it to
// the coordinator instead of crashing with a bare panic.
type commError struct{ err error }

func (e *commError) Error() string { return e.err.Error() }

// AddKu implements sem.Operator.
func (d *Operator) AddKu(dst, u []float64, elems []int32) {
	d.AddKuScratch(dst, u, elems, &d.scr)
}

// AddKuScratch implements sem.Operator: the per-element compute path of
// the distributed apply.
func (d *Operator) AddKuScratch(dst, u []float64, elems []int32, sc *sem.Scratch) {
	if sc == nil {
		sc = &d.scr
	}
	pl := d.lookup(elems)
	d.apply(dst, pl, func(i, p int) {
		d.inner.AddKuScratch(d.acc[i], u, pl.dp.Parts[p], sc)
	})
}

// distBatchPlan is the Operator's BatchPlan: the halo execution state
// plus the inner per-part batch plans.
type distBatchPlan struct {
	d  *Operator
	pl *distPlan
}

// Elems implements sem.BatchPlan.
func (bp *distBatchPlan) Elems() []int32 { return bp.pl.dp.Elems }

// BatchedElems implements sem.BatchPlan: the owned elements executing
// through full SoA blocks.
func (bp *distBatchPlan) BatchedElems() int {
	n := 0
	for _, b := range bp.pl.batch {
		if b != nil {
			n += b.BatchedElems()
		}
	}
	return n
}

// NewBatchPlan implements sem.BatchKernel. Returns nil when the inner
// operator cannot batch; callers fall back to AddKuScratch.
func (d *Operator) NewBatchPlan(elems []int32) sem.BatchPlan {
	if d.bk == nil {
		return nil
	}
	pl := d.lookup(elems)
	if !pl.batchTried {
		pl.batchTried = true
		b := make([]sem.BatchPlan, len(d.owned))
		ok := true
		for i, p := range d.owned {
			if len(pl.dp.Parts[p]) == 0 {
				continue
			}
			if b[i] = d.bk.NewBatchPlan(pl.dp.Parts[p]); b[i] == nil {
				ok = false // wrapper whose inner operator cannot batch
				break
			}
		}
		if ok {
			pl.batch = b
		}
	}
	if pl.batch == nil {
		return nil
	}
	return &distBatchPlan{d: d, pl: pl}
}

// AddKuBatch implements sem.BatchKernel: the batched compute path of the
// distributed apply, bitwise identical to AddKuScratch with the same
// plan.
func (d *Operator) AddKuBatch(dst, u []float64, plan sem.BatchPlan, bs *sem.BatchScratch) {
	bp, ok := plan.(*distBatchPlan)
	if !ok {
		panic(fmt.Sprintf("dist: AddKuBatch: foreign plan type %T", plan))
	}
	if bp.d != d {
		panic("dist: AddKuBatch: plan built by a different operator")
	}
	if bs == nil {
		bs = &d.bscr
	}
	pl := bp.pl
	d.apply(dst, pl, func(i, p int) {
		d.bk.AddKuBatch(d.acc[i], u, pl.batch[i], bs)
	})
}

// NumNodes implements sem.Operator.
func (d *Operator) NumNodes() int { return d.inner.NumNodes() }

// Comps implements sem.Operator.
func (d *Operator) Comps() int { return d.inner.Comps() }

// NDof implements sem.Operator.
func (d *Operator) NDof() int { return d.inner.NDof() }

// NumElements implements sem.Operator.
func (d *Operator) NumElements() int { return d.inner.NumElements() }

// MInv implements sem.Operator.
func (d *Operator) MInv() []float64 { return d.inner.MInv() }

// ElemNodes implements sem.Operator.
func (d *Operator) ElemNodes(e int, buf []int32) []int32 { return d.inner.ElemNodes(e, buf) }

// ConnTable forwards the inner operator's flat connectivity table
// (implements sem.Connectivity); (nil, 0) when it has none.
func (d *Operator) ConnTable() ([]int32, int) {
	if ct, ok := d.inner.(sem.Connectivity); ok {
		return ct.ConnTable()
	}
	return nil, 0
}

var (
	_ sem.Operator     = (*Operator)(nil)
	_ sem.Preparer     = (*Operator)(nil)
	_ sem.Connectivity = (*Operator)(nil)
	_ sem.BatchKernel  = (*Operator)(nil)
)
