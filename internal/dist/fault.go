package dist

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// FailureKind classifies how a rank was lost, for reporting and for
// routing: every kind recovers the same way (checkpoint restore), but
// the taxonomy tells operators whether they are fighting crashing
// processes, a hung host, a flaky NIC, or data corruption in flight.
type FailureKind string

const (
	// FailureCrash is a silent disappearance: the process exited or its
	// connection dropped without a farewell frame.
	FailureCrash FailureKind = "crash"
	// FailureTimeout is unresponsiveness: heartbeats stopped, or a step
	// overran the configured timeout, while connections stayed open.
	FailureTimeout FailureKind = "timeout"
	// FailureCorrupt is a frame whose CRC did not match its contents —
	// the link delivered bytes that were never sent.
	FailureCorrupt FailureKind = "corrupt"
	// FailureLink is a send-side transport error: the coordinator could
	// not deliver a frame to the rank.
	FailureLink FailureKind = "link"
)

// RankFailure reports the loss (or unresponsiveness) of one rank during
// a distributed run. Callers detect it with errors.As; when the
// coordinator holds a checkpoint it recovers from these automatically.
type RankFailure struct {
	Rank int
	Kind FailureKind
	Err  error
}

func (e *RankFailure) Error() string {
	kind := e.Kind
	if kind == "" {
		kind = FailureCrash
	}
	return fmt.Sprintf("dist: rank %d failed (%s): %v", e.Rank, kind, e.Err)
}

func (e *RankFailure) Unwrap() error { return e.Err }

// FaultKind selects what a FaultPlan does when it triggers.
type FaultKind string

const (
	// FaultKill terminates the target rank abruptly: a spawned rank
	// SIGKILLs its own process; an in-process rank tears down its
	// connections without a farewell frame. Either way the coordinator
	// sees a silent disappearance, exactly like a real crash.
	FaultKill FaultKind = "kill"
	// FaultStall freezes the target rank forever while keeping every
	// connection open, modelling a hung process or a stalled link; only
	// the heartbeat timeout can detect it.
	FaultStall FaultKind = "stall"
	// FaultDelay pauses the target rank once for Delay, modelling a
	// transient network hiccup; the run must ride it out unharmed.
	FaultDelay FaultKind = "delay"
	// FaultDropLink severs the target rank's coordinator connection,
	// modelling a failed uplink: the rank's serve loop dies on the closed
	// socket and the coordinator sees the drop as a crash to recover.
	FaultDropLink FaultKind = "droplink"
	// FaultStallLink freezes the target rank's coordinator link for
	// Delay, at the conn layer with the write mutex held: frames and
	// heartbeats alike queue behind it. A short stall rides out; one
	// longer than the heartbeat timeout is indistinguishable from a hung
	// host and triggers recovery.
	FaultStallLink FaultKind = "stall-link"
	// FaultCorrupt flips bits in the CRC tail of the target rank's next
	// coordinator-bound frame, modelling in-flight data corruption; the
	// coordinator's checksum verification must catch it and recover.
	FaultCorrupt FaultKind = "corrupt"
	// FaultPartition severs every connection of the target rank —
	// coordinator and peers — modelling a network partition that
	// isolates the host completely.
	FaultPartition FaultKind = "partition"
)

// EnvFault names the environment variable carrying a fault-plan spec.
// Spawned rank processes inherit it from the launcher, so
//
//	GOLTS_FAULT=kill:rank=1,cycle=3,substep=2 distrun ...
//
// injects the fault without any flag plumbing.
const EnvFault = "GOLTS_FAULT"

// envGen carries the coordinator's spawn generation to rank processes.
// Respawned ranks run at generation ≥ 1, and a plan only arms in its
// own generation, so an injected fault never re-fires after recovery.
const envGen = "GOLTS_DIST_GEN"

// FaultPlan injects one fault into one rank of a distributed run, at a
// chosen cycle and substep. Substep n triggers immediately before the
// n-th stiffness apply of the cycle (an LTS cycle with L levels runs
// 2^L − 1 applies, so every level boundary is addressable); substep 0
// triggers before the cycle steps at all.
type FaultPlan struct {
	Kind    FaultKind
	Rank    int
	Cycle   int64 // 1-based cycle in which the fault triggers
	Substep int   // 1-based stiffness apply within the cycle; 0 = before stepping
	Delay   time.Duration
	Gen     int // spawn generation the plan arms in (0 = initial launch)
}

// ParseFaultPlan parses a spec of the form
//
//	kind:rank=R,cycle=C[,substep=S][,ms=D][,gen=G]
//
// with kind one of kill, stall, delay, droplink, stall-link, corrupt,
// partition.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("dist: fault spec %q: want kind:rank=R,cycle=C,...", spec)
	}
	p := &FaultPlan{Kind: FaultKind(kind)}
	switch p.Kind {
	case FaultKill, FaultStall, FaultDelay,
		FaultDropLink, FaultStallLink, FaultCorrupt, FaultPartition:
	default:
		return nil, fmt.Errorf("dist: fault spec %q: unknown kind %q", spec, kind)
	}
	for _, field := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("dist: fault spec %q: bad field %q", spec, field)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dist: fault spec %q: field %q: %v", spec, field, err)
		}
		switch key {
		case "rank":
			p.Rank = int(n)
		case "cycle":
			p.Cycle = n
		case "substep":
			p.Substep = int(n)
		case "ms":
			p.Delay = time.Duration(n) * time.Millisecond
		case "gen":
			p.Gen = int(n)
		default:
			return nil, fmt.Errorf("dist: fault spec %q: unknown field %q", spec, key)
		}
	}
	if p.Rank < 0 || p.Cycle < 1 || p.Substep < 0 {
		return nil, fmt.Errorf("dist: fault spec %q: rank ≥ 0, cycle ≥ 1, substep ≥ 0 required", spec)
	}
	return p, nil
}

// String re-encodes the plan in ParseFaultPlan's syntax.
func (p *FaultPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:rank=%d,cycle=%d,substep=%d", p.Kind, p.Rank, p.Cycle, p.Substep)
	if p.Delay > 0 {
		fmt.Fprintf(&b, ",ms=%d", p.Delay.Milliseconds())
	}
	if p.Gen != 0 {
		fmt.Fprintf(&b, ",gen=%d", p.Gen)
	}
	return b.String()
}

// ParseFaultPlans parses a ';'-separated list of fault specs, so one
// GOLTS_FAULT value can target several ranks, cycles or generations at
// once (two ranks killed in the same cycle; a rank killed again during
// the replay of its own recovery via gen=1; ...).
func ParseFaultPlans(specs string) ([]*FaultPlan, error) {
	var plans []*FaultPlan
	for _, spec := range strings.Split(specs, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		p, err := ParseFaultPlan(spec)
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	return plans, nil
}

// faultsFromEnv reads the process's fault plans, if any, from EnvFault.
func faultsFromEnv() ([]*FaultPlan, error) {
	specs := os.Getenv(EnvFault)
	if specs == "" {
		return nil, nil
	}
	return ParseFaultPlans(specs)
}

// killPanic aborts an in-process rank from inside the stepper the way
// SIGKILL aborts a spawned one: the rank's runRank recover tears down
// its connections without any farewell frame.
type killPanic struct{}
