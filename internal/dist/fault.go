package dist

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// RankFailure reports the loss (or unresponsiveness) of one rank during
// a distributed run. Callers detect it with errors.As; when the
// coordinator holds a checkpoint it recovers from these automatically.
type RankFailure struct {
	Rank int
	Err  error
}

func (e *RankFailure) Error() string { return fmt.Sprintf("dist: rank %d failed: %v", e.Rank, e.Err) }

func (e *RankFailure) Unwrap() error { return e.Err }

// FaultKind selects what a FaultPlan does when it triggers.
type FaultKind string

const (
	// FaultKill terminates the target rank abruptly: a spawned rank
	// SIGKILLs its own process; an in-process rank tears down its
	// connections without a farewell frame. Either way the coordinator
	// sees a silent disappearance, exactly like a real crash.
	FaultKill FaultKind = "kill"
	// FaultStall freezes the target rank forever while keeping every
	// connection open, modelling a hung process or a stalled link; only
	// the heartbeat timeout can detect it.
	FaultStall FaultKind = "stall"
	// FaultDelay pauses the target rank once for Delay, modelling a
	// transient network hiccup; the run must ride it out unharmed.
	FaultDelay FaultKind = "delay"
)

// EnvFault names the environment variable carrying a fault-plan spec.
// Spawned rank processes inherit it from the launcher, so
//
//	GOLTS_FAULT=kill:rank=1,cycle=3,substep=2 distrun ...
//
// injects the fault without any flag plumbing.
const EnvFault = "GOLTS_FAULT"

// envGen carries the coordinator's spawn generation to rank processes.
// Respawned ranks run at generation ≥ 1, and a plan only arms in its
// own generation, so an injected fault never re-fires after recovery.
const envGen = "GOLTS_DIST_GEN"

// FaultPlan injects one fault into one rank of a distributed run, at a
// chosen cycle and substep. Substep n triggers immediately before the
// n-th stiffness apply of the cycle (an LTS cycle with L levels runs
// 2^L − 1 applies, so every level boundary is addressable); substep 0
// triggers before the cycle steps at all.
type FaultPlan struct {
	Kind    FaultKind
	Rank    int
	Cycle   int64 // 1-based cycle in which the fault triggers
	Substep int   // 1-based stiffness apply within the cycle; 0 = before stepping
	Delay   time.Duration
	Gen     int // spawn generation the plan arms in (0 = initial launch)
}

// ParseFaultPlan parses a spec of the form
//
//	kind:rank=R,cycle=C[,substep=S][,ms=D][,gen=G]
//
// with kind one of kill, stall, delay.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("dist: fault spec %q: want kind:rank=R,cycle=C,...", spec)
	}
	p := &FaultPlan{Kind: FaultKind(kind)}
	switch p.Kind {
	case FaultKill, FaultStall, FaultDelay:
	default:
		return nil, fmt.Errorf("dist: fault spec %q: unknown kind %q", spec, kind)
	}
	for _, field := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("dist: fault spec %q: bad field %q", spec, field)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dist: fault spec %q: field %q: %v", spec, field, err)
		}
		switch key {
		case "rank":
			p.Rank = int(n)
		case "cycle":
			p.Cycle = n
		case "substep":
			p.Substep = int(n)
		case "ms":
			p.Delay = time.Duration(n) * time.Millisecond
		case "gen":
			p.Gen = int(n)
		default:
			return nil, fmt.Errorf("dist: fault spec %q: unknown field %q", spec, key)
		}
	}
	if p.Rank < 0 || p.Cycle < 1 || p.Substep < 0 {
		return nil, fmt.Errorf("dist: fault spec %q: rank ≥ 0, cycle ≥ 1, substep ≥ 0 required", spec)
	}
	return p, nil
}

// String re-encodes the plan in ParseFaultPlan's syntax.
func (p *FaultPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:rank=%d,cycle=%d,substep=%d", p.Kind, p.Rank, p.Cycle, p.Substep)
	if p.Delay > 0 {
		fmt.Fprintf(&b, ",ms=%d", p.Delay.Milliseconds())
	}
	if p.Gen != 0 {
		fmt.Fprintf(&b, ",gen=%d", p.Gen)
	}
	return b.String()
}

// faultFromEnv reads the process's fault plan, if any, from EnvFault.
func faultFromEnv() (*FaultPlan, error) {
	spec := os.Getenv(EnvFault)
	if spec == "" {
		return nil, nil
	}
	return ParseFaultPlan(spec)
}

// killPanic aborts an in-process rank from inside the stepper the way
// SIGKILL aborts a spawned one: the rank's runRank recover tears down
// its connections without any farewell frame.
type killPanic struct{}
