package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"golts/internal/ckpt"
	"golts/internal/lts"
	"golts/internal/newmark"
	"golts/internal/sem"
)

// Environment variables of the spawn handshake. A process started with
// these set is a rank of some coordinator's run and must hand control to
// RankMain before doing anything else.
const (
	envRank  = "GOLTS_DIST_RANK"
	envAddr  = "GOLTS_DIST_ADDR"
	envToken = "GOLTS_DIST_TOKEN"
)

// IsRank reports whether this process was spawned as a rank.
func IsRank() bool { return os.Getenv(envRank) != "" }

// RankMain is the cooperative re-exec hook of the distributed backend:
// binaries that start distributed runs (and test binaries whose tests
// do) must call it at the top of main / TestMain. In a normal process it
// returns immediately; in a spawned rank process it runs the rank
// runtime to completion and exits, never returning.
func RankMain() {
	if !IsRank() {
		return
	}
	rank, err := strconv.Atoi(os.Getenv(envRank))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist: bad %s: %v\n", envRank, err)
		os.Exit(2)
	}
	gen, _ := strconv.Atoi(os.Getenv(envGen))
	faults, err := faultsFromEnv()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist: rank %d: %v\n", rank, err)
		os.Exit(2)
	}
	if err := runRank(rankParams{
		rank:    rank,
		addr:    os.Getenv(envAddr),
		token:   os.Getenv(envToken),
		gen:     gen,
		faults:  faults,
		spawned: true,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "dist: rank %d: %v\n", rank, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// rankParams identifies one rank's place in a run; in spawned mode they
// arrive through the environment, in in-process mode directly.
type rankParams struct {
	rank    int
	addr    string // coordinator address
	token   string
	gen     int          // coordinator spawn generation (0 = initial launch)
	faults  []*FaultPlan // injected faults, if any
	spawned bool         // true in a separate rank process
}

// haloFrame is one received halo message, decoded off the wire by the
// peer reader goroutine.
type haloFrame struct {
	seq, planID uint32
	values      []float64
}

// peerLink is one rank↔rank connection: sends run on the stepping
// goroutine (the far side's reader always drains, so writes cannot
// deadlock), receives are decoded by a dedicated reader goroutine into a
// buffered channel. Lockstep stepping bounds the frames in flight per
// pair to a handful, far below the channel capacity.
type peerLink struct {
	c      *conn
	frames chan haloFrame
	errs   chan error
	timer  *time.Timer // reusable receive-timeout timer, owned by recvHalo
}

func newPeerLink(c *conn) *peerLink {
	l := &peerLink{c: c, frames: make(chan haloFrame, 16), errs: make(chan error, 1)}
	go func() {
		for {
			t, payload, err := c.recv()
			if err != nil {
				l.errs <- err
				close(l.frames)
				return
			}
			if t != msgHalo || len(payload) < 8 {
				l.errs <- fmt.Errorf("dist: unexpected peer frame type %d (%d bytes)", t, len(payload))
				close(l.frames)
				return
			}
			vals, err := getFloats(payload[8:])
			if err != nil {
				l.errs <- err
				close(l.frames)
				return
			}
			l.frames <- haloFrame{
				seq:    binary.LittleEndian.Uint32(payload[0:4]),
				planID: binary.LittleEndian.Uint32(payload[4:8]),
				values: vals,
			}
		}
	}()
	return l
}

// peerFabric implements exchanger over the rank's peer links.
type peerFabric struct {
	links   []*peerLink // indexed by rank; nil for self
	buf     []byte      // reusable send frame
	timeout time.Duration
	// telemetry enables waitNanos: cumulative time the stepping
	// goroutine spent blocked waiting for halo frames, per peer rank.
	// The coordinator charges each rank the time its peers spent
	// waiting on it, so the imbalance signal sees a slow or delayed
	// link — not only a slow CPU.
	telemetry bool
	waitNanos []int64 // per peer rank; accessed only by the stepping goroutine
}

func (f *peerFabric) sendHalo(rank int, seq, planID uint32, values []float64) error {
	buf := f.buf[:0]
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], seq)
	binary.LittleEndian.PutUint32(hdr[4:8], planID)
	buf = append(buf, hdr[:]...)
	buf = putFloats(buf, values)
	f.buf = buf
	return f.links[rank].c.send(msgHalo, buf)
}

func (f *peerFabric) recvHalo(rank int) (uint32, uint32, []float64, error) {
	l := f.links[rank]
	if f.telemetry {
		start := time.Now()
		defer func() { f.waitNanos[rank] += time.Since(start).Nanoseconds() }()
	}
	if f.timeout <= 0 {
		fr, ok := <-l.frames
		if !ok {
			return 0, 0, nil, <-l.errs
		}
		return fr.seq, fr.planID, fr.values, nil
	}
	// Bounded wait, so a dead or stalled peer cannot hang the substep
	// forever; the timer is reused across the hot path.
	if l.timer == nil {
		l.timer = time.NewTimer(f.timeout)
	} else {
		l.timer.Reset(f.timeout)
	}
	select {
	case fr, ok := <-l.frames:
		if !l.timer.Stop() {
			<-l.timer.C
		}
		if !ok {
			return 0, 0, nil, <-l.errs
		}
		return fr.seq, fr.planID, fr.values, nil
	case <-l.timer.C:
		return 0, 0, nil, fmt.Errorf("dist: no halo frame from rank %d within %v", rank, f.timeout)
	}
}

func (f *peerFabric) close() {
	for _, l := range f.links {
		if l != nil {
			l.c.close()
		}
	}
}

// rankStepper is the rank-local unified stepper: one Step advances one
// coarse cycle, mirroring the facade's cycle semantics so receiver
// sampling lands on the same time axis.
type rankStepper interface {
	Step()
	Time() float64
	State() []float64
}

type ltsRankStepper struct{ s *lts.Scheme }

func (a ltsRankStepper) Step()            { a.s.Step() }
func (a ltsRankStepper) Time() float64    { return a.s.Time() }
func (a ltsRankStepper) State() []float64 { return a.s.U }

type newmarkRankStepper struct {
	s    *newmark.Stepper
	pmax int
}

func (a newmarkRankStepper) Step()            { a.s.Run(a.pmax) }
func (a newmarkRankStepper) Time() float64    { return a.s.Time() }
func (a newmarkRankStepper) State() []float64 { return a.s.U }

// RankStats is one rank's contribution to the aggregated run statistics:
// the real communication counters of its distributed operator plus the
// rank-local scheme's work model (identical on every rank under the
// replicated stepping discipline, so the coordinator reports rank 0's).
type RankStats struct {
	Applies, Messages, Volume int64
	ElemApplies               int64
	Cycles                    int64
	EffectiveSpeedup          float64
	Efficiency                float64

	// LinkRetries counts connection attempts beyond the first that this
	// rank needed to reach the coordinator or a peer — nonzero means the
	// bounded reconnect-with-backoff path absorbed transient link errors.
	LinkRetries int64

	// Telemetry (populated only when RunConfig.Telemetry is set):
	// LevelNanos is the cumulative per-LTS-level kernel wall time of this
	// rank; OwnedParts its owned parts (ascending) and PartNanos the
	// cumulative compute wall time of each, indexed like OwnedParts —
	// the per-part costs the rebalancer feeds to the remapper.
	LevelNanos []int64
	OwnedParts []int
	PartNanos  []int64
}

// rankRun is the live state of one rank process.
type rankRun struct {
	params rankParams
	cfg    RunConfig
	coord  *conn
	fabric *peerFabric
	dop    *Operator
	st     rankStepper
	ltsS   *lts.Scheme
	gS     *newmark.Stepper
	// recIdx lists the indices into cfg.Receivers this rank owns,
	// ascending; samples are reported in this order.
	recIdx []int
	// lastBusy / lastWait are the owned-part compute nanos and per-peer
	// halo-wait nanos already reported, so each cycle-done frame carries
	// only the cycle's deltas (telemetry only).
	lastBusy int64
	lastWait []int64
	// linkRetries counts reconnect attempts beyond the first.
	linkRetries int64

	// Fault-injection state (nil fault = none armed).
	fault   *FaultPlan
	fcycle  int64       // 1-based cycle in progress
	fsub    int         // stiffness applies seen in the current cycle
	stalled atomic.Bool // silences the heartbeat during an injected stall
}

// dialRetry dials with bounded retry and exponential backoff, absorbing
// transient link errors (a listener mid-restart, an exhausted accept
// backlog). Attempts beyond the first are counted into *retries.
func dialRetry(addr string, timeout time.Duration, retries *int64) (net.Conn, error) {
	backoff := 50 * time.Millisecond
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			*retries++
			time.Sleep(backoff)
			backoff *= 2
		}
		var c net.Conn
		if c, err = net.DialTimeout("tcp", addr, timeout); err == nil {
			return c, nil
		}
	}
	return nil, err
}

// runRank executes one rank to completion: handshake, deterministic
// rebuild, peer wiring, then the lockstep step/stats/shutdown service
// loop.
func runRank(params rankParams) (err error) {
	// An in-process kill fault panics out of the stepper; converting it
	// into an error here — after the deferred connection closes have run
	// — makes the rank vanish mid-cycle without a farewell frame, the
	// in-process analogue of SIGKILL. (Registered first so it runs last.)
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(*killPanic); ok {
				err = errors.New("rank killed by fault injection")
				return
			}
			panic(rec)
		}
	}()
	r := &rankRun{params: params}
	nc, err := dialRetry(params.addr, handshakeTimeout, &r.linkRetries)
	if err != nil {
		return fmt.Errorf("dialing coordinator: %w", err)
	}
	r.coord = newConn(nc)
	for _, f := range params.faults {
		if f != nil && f.Rank == params.rank && f.Gen == params.gen {
			r.fault = f
			break
		}
	}
	defer r.coord.close()
	if err := r.handshake(); err != nil {
		return err
	}
	defer r.fabric.close()
	if err := r.build(); err != nil {
		r.coord.send(msgErr, []byte(err.Error()))
		return err
	}
	if err := r.coord.send(msgReady, nil); err != nil {
		return err
	}
	return r.serve()
}

// handshake runs the startup dance: hello, config broadcast, peer
// listener exchange, full-mesh peer wiring.
func (r *rankRun) handshake() error {
	deadline := time.Now().Add(handshakeTimeout)
	r.coord.setDeadline(deadline)
	defer r.coord.setDeadline(time.Time{})

	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(r.params.rank))
	if err := r.coord.send(msgHello, append(hello[:], r.params.token...)); err != nil {
		return err
	}
	payload, err := r.coord.expect(msgConfig)
	if err != nil {
		return err
	}
	if err := decodeGob(payload, &r.cfg); err != nil {
		return fmt.Errorf("decoding config: %w", err)
	}
	if err := r.cfg.validate(); err != nil {
		return err
	}

	// Publish a peer listener, learn everyone's, then wire the mesh:
	// dial every lower rank, accept every higher rank. Peer hellos carry
	// the rank id and the run token, so stray connections are rejected.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	if err := r.coord.send(msgPeerAddr, []byte(ln.Addr().String())); err != nil {
		return err
	}
	payload, err = r.coord.expect(msgPeers)
	if err != nil {
		return err
	}
	var addrs []string
	if err := decodeGob(payload, &addrs); err != nil {
		return fmt.Errorf("decoding peer list: %w", err)
	}
	if len(addrs) != r.cfg.Ranks {
		return fmt.Errorf("peer list has %d entries for %d ranks", len(addrs), r.cfg.Ranks)
	}

	links := make([]*peerLink, r.cfg.Ranks)
	for q := 0; q < r.params.rank; q++ {
		c, err := dialRetry(addrs[q], handshakeTimeout, &r.linkRetries)
		if err != nil {
			return fmt.Errorf("dialing rank %d: %w", q, err)
		}
		pc := newConn(c)
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(r.params.rank))
		if err := pc.send(msgPeerHello, append(hdr[:], r.params.token...)); err != nil {
			return err
		}
		links[q] = newPeerLink(pc)
	}
	// Accept until every higher rank has identified itself. Stray
	// connections (port probes, misdirected clients, bad tokens, or
	// malformed hellos) are discarded and accepting continues; only the
	// deadline aborts the run.
	for connected := r.params.rank + 1; connected < r.cfg.Ranks; {
		c, err := acceptWithDeadline(ln, deadline)
		if err != nil {
			return fmt.Errorf("accepting peer: %w", err)
		}
		pc := newConn(c)
		pc.setDeadline(deadline)
		payload, err := pc.expect(msgPeerHello)
		if err != nil || len(payload) < 4 || string(payload[4:]) != r.params.token {
			pc.close()
			continue // stray connection; keep accepting
		}
		from := int(binary.LittleEndian.Uint32(payload[:4]))
		if from <= r.params.rank || from >= r.cfg.Ranks || links[from] != nil {
			pc.close()
			continue
		}
		pc.setDeadline(time.Time{})
		links[from] = newPeerLink(pc)
		connected++
	}
	r.fabric = &peerFabric{links: links, timeout: r.cfg.peerTimeout(), telemetry: r.cfg.Telemetry}
	if r.cfg.Telemetry {
		r.fabric.waitNanos = make([]int64, r.cfg.Ranks)
		r.lastWait = make([]int64, r.cfg.Ranks)
	}
	return nil
}

func acceptWithDeadline(ln net.Listener, deadline time.Time) (net.Conn, error) {
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	return ln.Accept()
}

// build reconstructs the rank-local simulation from the broadcast
// configuration: mesh, operator, distributed wrapper, scheme, sources,
// sponge and owned receivers. Every step is deterministic, so each
// rank agrees bitwise with the shared-memory baseline on its owned
// element-node footprint (the rest of its replicated arrays is stale;
// see Operator.OwnedNodes).
func (r *rankRun) build() error {
	m, lv, geom, err := buildOperator(&r.cfg)
	if err != nil {
		return err
	}
	dop, err := NewOperator(geom, &r.cfg, r.params.rank, r.fabric)
	if err != nil {
		return err
	}
	r.dop = dop
	if r.fault != nil {
		r.dop.OnApply = r.faultHook
	}

	srcs := make([]sem.Source, len(r.cfg.Sources))
	for i, s := range r.cfg.Sources {
		srcs[i] = sem.Source{Dof: s.Dof, W: sem.Ricker{F0: s.F0, T0: s.T0, Scale: s.Gain}}
	}
	var sigma []float64
	if r.cfg.Sponge.Strength > 0 {
		x0, x1, y0, y1, z0, z1 := m.Extent()
		sigma = sem.SpongeProfile(geom.NumNodes(), geom.NodeCoords,
			x0, x1, y0, y1, z0, z1, r.cfg.Sponge.Faces, r.cfg.Sponge.Width, r.cfg.Sponge.Strength)
	}
	kern := sem.KernelBatched
	if r.cfg.PerElement {
		kern = sem.KernelPerElement
	}
	if r.cfg.LTS {
		sch, err := lts.FromMeshLevels(dop, lv, true)
		if err != nil {
			return err
		}
		sch.Kernel = kern
		sch.Telemetry = r.cfg.Telemetry
		sch.SetSources(srcs)
		sch.Sigma = sigma
		r.ltsS = sch
		r.st = ltsRankStepper{sch}
	} else {
		g := newmark.New(dop, lv.CoarseDt/float64(lv.PMax()))
		g.Kernel = kern
		g.Sources = srcs
		g.Sigma = sigma
		r.gS = g
		r.st = newmarkRankStepper{g, lv.PMax()}
	}

	owners, err := ReceiverOwners(geom, &r.cfg)
	if err != nil {
		return err
	}
	for i, owner := range owners {
		if owner == r.params.rank {
			r.recIdx = append(r.recIdx, i)
		}
	}
	return nil
}

// serve is the control loop: execute coordinator commands until
// shutdown. Halo traffic flows rank-to-rank inside st.Step; only
// control and samples touch the coordinator link. A heartbeat goroutine
// shares the coordinator link (conn sends are mutex-serialized) so the
// coordinator can tell a slow cycle from a dead or stalled rank.
func (r *rankRun) serve() error {
	if hb := r.cfg.heartbeatInterval(); hb > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			t := time.NewTicker(hb)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					if r.stalled.Load() {
						continue
					}
					if r.coord.send(msgHeartbeat, nil) != nil {
						return
					}
				}
			}
		}()
	}
	for {
		t, payload, err := r.coord.recv()
		if err != nil {
			// A vanished coordinator means the run is over (crash or kill);
			// exiting is the only useful response.
			return fmt.Errorf("coordinator link lost: %w", err)
		}
		switch t {
		case msgStep:
			if len(payload) != 4 {
				return fmt.Errorf("malformed step frame (%d bytes)", len(payload))
			}
			cycles := int(binary.LittleEndian.Uint32(payload))
			for i := 0; i < cycles; i++ {
				if err := r.stepOnce(); err != nil {
					r.coord.send(msgErr, []byte(err.Error()))
					return err
				}
			}
		case msgStats:
			st := RankStats{}
			ds := r.dop.Stats()
			st.Applies, st.Messages, st.Volume = ds.Applies, ds.Messages, ds.Volume
			if r.ltsS != nil {
				st.ElemApplies = r.ltsS.Work.ElemApplies
				st.Cycles = r.ltsS.CycleCount()
				st.EffectiveSpeedup = r.ltsS.EffectiveSpeedup()
				st.Efficiency = r.ltsS.Efficiency()
			} else {
				st.ElemApplies = r.gS.ElementSteps
				st.Cycles = r.gS.StepCount()
			}
			st.LinkRetries = r.linkRetries
			if r.cfg.Telemetry {
				if r.ltsS != nil {
					st.LevelNanos = append([]int64(nil), r.ltsS.Work.LevelNanos...)
				}
				st.OwnedParts = append([]int(nil), r.dop.OwnedParts()...)
				st.PartNanos = append([]int64(nil), r.dop.PartNanos()...)
			}
			if err := r.coord.sendGob(msgStatsResp, &st); err != nil {
				return err
			}
		case msgCkpt:
			fr := ckptFrame{State: r.capture(), Nodes: r.dop.OwnedNodes(), Comps: r.dop.Comps()}
			if err := r.coord.sendGob(msgCkptResp, &fr); err != nil {
				return err
			}
		case msgRestore:
			var st ckpt.StepperState
			if err := decodeGob(payload, &st); err != nil {
				r.coord.send(msgErr, []byte(err.Error()))
				return err
			}
			if err := r.restore(&st); err != nil {
				r.coord.send(msgErr, []byte(err.Error()))
				return err
			}
			if err := r.coord.send(msgRestoreDone, nil); err != nil {
				return err
			}
		case msgShutdown:
			return nil
		default:
			return fmt.Errorf("unexpected control frame type %d", t)
		}
	}
}

// capture snapshots the rank-local stepper state. The arrays are exact
// only on this rank's owned footprint (see Operator.OwnedNodes) — the
// coordinator merges the footprints of every rank's snapshot into the
// global field.
func (r *rankRun) capture() *ckpt.StepperState {
	if r.ltsS != nil {
		return r.ltsS.Save()
	}
	return r.gS.Save()
}

// restore installs a snapshot into the rank-local stepper.
func (r *rankRun) restore(st *ckpt.StepperState) error {
	if r.ltsS != nil {
		return r.ltsS.Restore(st)
	}
	return r.gS.Restore(st)
}

// stepOnce advances one coarse cycle and reports the cycle time plus the
// owned receivers' samples. Communication failures inside the halo
// exchange surface as commError panics; they are converted back into
// errors here, at the cycle boundary.
func (r *rankRun) stepOnce() (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			ce, ok := rec.(*commError)
			if !ok {
				panic(rec)
			}
			err = ce.err
		}
	}()
	if r.fault != nil {
		r.fcycle++
		r.fsub = 0
		if r.fcycle == r.fault.Cycle && r.fault.Substep == 0 {
			r.trigger()
		}
	}
	r.st.Step()
	u := r.st.State()
	vals := make([]float64, 0, 2+len(r.recIdx))
	vals = append(vals, r.st.Time())
	for _, i := range r.recIdx {
		vals = append(vals, u[r.cfg.Receivers[i]])
	}
	if r.cfg.Telemetry {
		// Trailing telemetry: this cycle's owned-part compute nanos,
		// then this rank's halo-wait nanos per peer. The coordinator
		// charges each rank the time its peers spent waiting on it, so
		// the busy trace sees a slow or delayed *link* — not only a
		// slow CPU.
		var busy int64
		for _, n := range r.dop.PartNanos() {
			busy += n
		}
		vals = append(vals, float64(busy-r.lastBusy))
		r.lastBusy = busy
		for q, w := range r.fabric.waitNanos {
			vals = append(vals, float64(w-r.lastWait[q]))
			r.lastWait[q] = w
		}
	}
	return r.coord.send(msgCycleDone, putFloats(nil, vals))
}

// faultHook counts stiffness applies and fires the armed fault at its
// (cycle, substep) address. It runs inside the stepper, immediately
// before the addressed apply begins.
func (r *rankRun) faultHook() {
	r.fsub++
	if r.fault != nil && r.fcycle == r.fault.Cycle && r.fsub == r.fault.Substep {
		r.trigger()
	}
}

// trigger executes the armed fault. Kill never returns.
func (r *rankRun) trigger() {
	p := r.fault
	r.fault = nil // one-shot
	switch p.Kind {
	case FaultDelay:
		time.Sleep(p.Delay)
	case FaultStall:
		// Freeze forever with every connection open: heartbeats stop
		// (stalled is checked by the beacon goroutine) but nothing closes,
		// so only the coordinator's heartbeat timeout can notice. In a
		// spawned rank the process is killed during recovery; in-process
		// this intentionally parks the rank goroutine for the test's
		// lifetime.
		r.stalled.Store(true)
		select {}
	case FaultKill:
		if r.params.spawned {
			// Real SIGKILL: no deferred cleanup, no farewell frame —
			// exactly what a crashed node looks like.
			if proc, err := os.FindProcess(os.Getpid()); err == nil {
				proc.Kill()
			}
			os.Exit(137)
		}
		panic(&killPanic{})
	case FaultDropLink:
		// Sever the uplink only: the next coordinator-bound frame fails,
		// the serve loop exits, and the coordinator sees a silent drop.
		r.coord.close()
	case FaultStallLink:
		// Freeze the uplink at the conn layer for Delay: the next sender
		// to grab the write mutex sleeps it off, and heartbeats queue
		// behind it, so a stall beyond the heartbeat timeout reads as a
		// dead host.
		r.coord.stallNanos.Store(int64(p.Delay))
	case FaultCorrupt:
		// Flip bits in the next coordinator-bound frame's CRC tail; the
		// coordinator's checksum verification must reject it.
		r.coord.corruptNext.Store(true)
	case FaultPartition:
		// Total isolation: every connection — coordinator and peers —
		// goes down at once.
		r.coord.close()
		r.fabric.close()
	}
}
