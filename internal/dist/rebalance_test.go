package dist

import (
	"testing"

	"golts/internal/tune"
)

// runDistConfig is runDist with a caller-supplied coordinator Config
// (the Run field is overwritten with the test configuration).
func runDistConfig(t *testing.T, tc *testConfig, cycles int, cfg Config) (*Coordinator, []float64, [][]float64) {
	t.Helper()
	cfg.Run = tc.cfg
	co, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	parts, err := ReceiverOwnerParts(tc.geom, &tc.cfg)
	if err != nil {
		co.Close()
		t.Fatalf("ReceiverOwnerParts: %v", err)
	}
	if err := co.SetReceiverParts(parts); err != nil {
		co.Close()
		t.Fatalf("SetReceiverParts: %v", err)
	}
	var times []float64
	var samples [][]float64
	for c := 0; c < cycles; c++ {
		tm, row, err := co.Step()
		if err != nil {
			co.Close()
			t.Fatalf("Step %d: %v", c, err)
		}
		times = append(times, tm)
		samples = append(samples, append([]float64(nil), row...))
	}
	return co, times, samples
}

// TestArbitraryPartRankBitwise pins the contract the rebalancer stands
// on: any part→rank placement — skewed, scattered, reversed — produces
// bitwise-identical seismograms, because the decomposition (not the
// placement) fixes the assembly order.
func TestArbitraryPartRankBitwise(t *testing.T) {
	base := newTestConfig(t, "acoustic", true, 2, 4)
	wantT, want := runDist(t, base, 4, true)
	for _, m := range [][]int{
		{0, 0, 0, 1}, // maximally skewed
		{1, 0, 1, 0}, // interleaved
		{1, 1, 0, 0}, // reversed blocks
	} {
		tc := newTestConfig(t, "acoustic", true, 2, 4)
		tc.cfg.PartRank = m
		gotT, got := runDist(t, tc, 4, true)
		requireBitwise(t, "placement", wantT, gotT, want, got)
	}
}

// TestPartRankValidation: malformed placements are rejected at Start.
func TestPartRankValidation(t *testing.T) {
	for _, bad := range [][]int{
		{0, 1},       // wrong length
		{0, 0, 0, 2}, // rank out of range
		{0, 0, 0, 0}, // rank 1 owns nothing
	} {
		tc := newTestConfig(t, "acoustic", true, 2, 4)
		tc.cfg.PartRank = bad
		if _, err := Start(Config{Run: tc.cfg, InProcess: true}); err == nil {
			t.Errorf("placement %v accepted", bad)
		}
	}
}

// TestManualRebalanceBitwise: an explicit mid-run remap — snapshot,
// relaunch under the new placement, restore — leaves the receiver
// trajectory bitwise identical and is counted.
func TestManualRebalanceBitwise(t *testing.T) {
	base := newTestConfig(t, "acoustic", true, 2, 4)
	wantT, want := runDist(t, base, 6, true)

	tc := newTestConfig(t, "acoustic", true, 2, 4)
	co, gotT, got := runDistConfig(t, tc, 3, Config{InProcess: true})
	defer co.Close()
	if err := co.Rebalance([]int{1, 0, 1, 0}); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if pr := co.PartRanks(); pr[0] != 1 || pr[1] != 0 {
		t.Fatalf("PartRanks after rebalance = %v", pr)
	}
	for c := 3; c < 6; c++ {
		tm, row, err := co.Step()
		if err != nil {
			t.Fatalf("Step %d: %v", c, err)
		}
		gotT = append(gotT, tm)
		got = append(got, append([]float64(nil), row...))
	}
	requireBitwise(t, "manual rebalance", wantT, gotT, want, got)
	if n, _ := co.Rebalances(); n != 1 {
		t.Errorf("Rebalances = %d, want 1", n)
	}
}

// TestAutoRebalance: a run started on a maximally skewed placement
// triggers the imbalance detector, remaps automatically, and stays
// bitwise identical to the balanced run.
func TestAutoRebalance(t *testing.T) {
	base := newTestConfig(t, "acoustic", true, 2, 4)
	wantT, want := runDist(t, base, 10, true)

	tc := newTestConfig(t, "acoustic", true, 2, 4)
	tc.cfg.PartRank = []int{0, 0, 0, 1} // rank 0 carries 3 of 4 parts
	co, gotT, got := runDistConfig(t, tc, 10, Config{
		InProcess:     true,
		AutoRebalance: true,
		RebalanceDetector: tune.DetectorConfig{
			Threshold: 1.2, Window: 2, Cooldown: 3,
		},
	})
	defer co.Close()
	requireBitwise(t, "auto rebalance", wantT, gotT, want, got)
	n, _ := co.Rebalances()
	if n < 1 {
		t.Fatalf("no automatic rebalance triggered (trace %v)", co.TraceSamples())
	}
	if pr := co.PartRanks(); tune.Equal(pr, []int{0, 0, 0, 1}) {
		t.Errorf("placement unchanged after %d rebalances: %v", n, pr)
	}
}

// TestTelemetryCounters: with telemetry on, the per-level and per-part
// counters fill in and the coordinator's busy trace records one sample
// per cycle; with it off (the default) they stay empty.
func TestTelemetryCounters(t *testing.T) {
	tc := newTestConfig(t, "acoustic", true, 2, 4)
	tc.cfg.Telemetry = true
	co, _, _ := runDistConfig(t, tc, 3, Config{InProcess: true})
	defer co.Close()
	if got := len(co.TraceSamples()); got != 3 {
		t.Errorf("trace has %d samples, want 3", got)
	}
	stats, err := co.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	for r, st := range stats {
		var lvl, part int64
		for _, n := range st.LevelNanos {
			lvl += n
		}
		for _, n := range st.PartNanos {
			part += n
		}
		if lvl <= 0 {
			t.Errorf("rank %d level nanos sum %d, want > 0", r, lvl)
		}
		if part <= 0 {
			t.Errorf("rank %d part nanos sum %d, want > 0", r, part)
		}
		if len(st.OwnedParts) == 0 || len(st.PartNanos) != len(st.OwnedParts) {
			t.Errorf("rank %d owned/part telemetry mismatch: %v vs %d nanos",
				r, st.OwnedParts, len(st.PartNanos))
		}
	}

	off := newTestConfig(t, "acoustic", true, 2, 4)
	co2, _, _ := runDistConfig(t, off, 2, Config{InProcess: true})
	defer co2.Close()
	stats2, err := co2.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if len(co2.TraceSamples()) != 0 {
		t.Error("trace recorded without telemetry")
	}
	for r, st := range stats2 {
		if len(st.LevelNanos) != 0 || len(st.PartNanos) != 0 {
			t.Errorf("rank %d carries telemetry with it disabled", r)
		}
	}
}
