package dist

import (
	"math"
	"net"
	"testing"
)

// TestFrameRoundTrip: framed messages survive a loopback connection,
// including empty payloads and float arrays.
func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := newConn(a), newConn(b)
	defer ca.close()
	defer cb.close()

	vals := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	go func() {
		ca.send(msgHalo, putFloats(nil, vals))
		ca.send(msgReady, nil)
	}()
	typ, payload, err := cb.recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if typ != msgHalo {
		t.Fatalf("type = %d, want %d", typ, msgHalo)
	}
	got, err := getFloats(payload)
	if err != nil {
		t.Fatalf("getFloats: %v", err)
	}
	if len(got) != len(vals) {
		t.Fatalf("got %d floats, want %d", len(got), len(vals))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Errorf("float %d: %v != %v", i, got[i], vals[i])
		}
	}
	if _, err := cb.expect(msgReady); err != nil {
		t.Fatalf("expect ready: %v", err)
	}
}

// TestExpectErrFrame: msgErr frames surface as errors carrying the
// remote text.
func TestExpectErrFrame(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := newConn(a), newConn(b)
	defer ca.close()
	defer cb.close()
	go ca.send(msgErr, []byte("boom"))
	_, err := cb.expect(msgReady)
	if err == nil || err.Error() != "dist: remote error: boom" {
		t.Fatalf("err = %v", err)
	}
}

// TestGobRoundTrip: control structs survive the gob path.
func TestGobRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := newConn(a), newConn(b)
	defer ca.close()
	defer cb.close()
	want := RunConfig{
		Mesh: "trench", Scale: 0.5, Physics: "elastic", Degree: 4,
		LevelCFL: 0.025, LTS: true, Ranks: 2, Parts: 4,
		Part:      []int32{0, 1, 2, 3},
		Sources:   []SourceSpec{{Dof: 7, F0: 10, T0: 0.05}},
		Receivers: []int{1, 2, 3},
	}
	go ca.sendGob(msgConfig, &want)
	payload, err := cb.expect(msgConfig)
	if err != nil {
		t.Fatalf("expect: %v", err)
	}
	var got RunConfig
	if err := decodeGob(payload, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Mesh != want.Mesh || got.Parts != want.Parts || len(got.Part) != 4 ||
		got.Sources[0].F0 != 10 || got.Receivers[2] != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestGetFloatsRejectsRagged: a payload that is not a whole number of
// float64s is rejected.
func TestGetFloatsRejectsRagged(t *testing.T) {
	if _, err := getFloats(make([]byte, 9)); err == nil {
		t.Error("ragged payload accepted")
	}
}
