package dist

import (
	"fmt"
	"math"
	"os"
	"testing"

	"golts/internal/lts"
	"golts/internal/mesh"
	"golts/internal/newmark"
	"golts/internal/parallel"
	"golts/internal/partition"
	"golts/internal/sem"
)

// TestMain is the cooperative re-exec hook: when the coordinator spawns
// this test binary as a rank process, RankMain runs the rank runtime and
// exits instead of re-running the tests.
func TestMain(m *testing.M) {
	RankMain()
	os.Exit(m.Run())
}

// testConfig assembles a deterministic tiny-trench RunConfig plus the
// locally-built pieces the baseline and owner computations need.
type testConfig struct {
	cfg  RunConfig
	m    *mesh.Mesh
	lv   *mesh.Levels
	geom geomOperator
	srcs []sem.Source
}

func newTestConfig(t *testing.T, physics string, ltsScheme bool, ranks, parts int) *testConfig {
	return newTestConfigScale(t, physics, ltsScheme, ranks, parts, 0.0005)
}

func newTestConfigScale(t *testing.T, physics string, ltsScheme bool, ranks, parts int, scale float64) *testConfig {
	t.Helper()
	cfg := RunConfig{
		Mesh:     "trench",
		Scale:    scale,
		Physics:  physics,
		Degree:   4,
		LevelCFL: 0.4 / 16,
		LTS:      ltsScheme,
		Ranks:    ranks,
		Parts:    parts,
	}
	m, lv, geom, err := buildOperator(&cfg)
	if err != nil {
		t.Fatalf("buildOperator: %v", err)
	}
	part, err := partition.Assign(m, lv, parts, partition.ScotchP, 7)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	cfg.Part = part

	nc := geom.Comps()
	comp := 0
	if physics == "elastic" {
		comp = 2
	}
	cfg.Sources = []SourceSpec{
		{Dof: (geom.NumNodes()/2)*nc + comp, F0: 10, T0: 0.05},
		{Dof: (geom.NumNodes()/3)*nc + 0, F0: 14, T0: 0.03, Gain: 0.5},
	}
	cfg.Receivers = []int{
		0 * nc,
		(geom.NumNodes() / 4) * nc,
		(geom.NumNodes() - 1) * nc,
	}
	if nc > 1 {
		cfg.Receivers = append(cfg.Receivers, (geom.NumNodes()/5)*nc+1)
	}
	tc := &testConfig{cfg: cfg, m: m, lv: lv, geom: geom}
	for _, s := range cfg.Sources {
		tc.srcs = append(tc.srcs, sem.Source{Dof: s.Dof, W: sem.Ricker{F0: s.F0, T0: s.T0, Scale: s.Gain}})
	}
	return tc
}

// runShared produces the shared-memory baseline: the parallel engine
// with cfg.Parts rank workers, stepped exactly as the rank runtime steps,
// sampled at the configured receivers. Returns per-cycle times and
// samples.
func runShared(t *testing.T, tc *testConfig, cycles int) ([]float64, [][]float64) {
	t.Helper()
	pop, err := parallel.NewOperator(tc.geom, tc.cfg.Part, tc.cfg.Parts)
	if err != nil {
		t.Fatalf("parallel.NewOperator: %v", err)
	}
	defer pop.Close()
	var st rankStepper
	if tc.cfg.LTS {
		sch, err := lts.FromMeshLevels(pop, tc.lv, true)
		if err != nil {
			t.Fatalf("lts: %v", err)
		}
		sch.SetSources(tc.srcs)
		st = ltsRankStepper{sch}
	} else {
		g := newmark.New(pop, tc.lv.CoarseDt/float64(tc.lv.PMax()))
		g.Sources = tc.srcs
		st = newmarkRankStepper{g, tc.lv.PMax()}
	}
	var times []float64
	var samples [][]float64
	for c := 0; c < cycles; c++ {
		st.Step()
		u := st.State()
		row := make([]float64, len(tc.cfg.Receivers))
		for i, dof := range tc.cfg.Receivers {
			row[i] = u[dof]
		}
		times = append(times, st.Time())
		samples = append(samples, row)
	}
	return times, samples
}

// runDist runs the distributed backend and returns per-cycle times and
// samples.
func runDist(t *testing.T, tc *testConfig, cycles int, inProcess bool) ([]float64, [][]float64) {
	t.Helper()
	co, err := Start(Config{Run: tc.cfg, InProcess: inProcess})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() {
		if err := co.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	owners, err := ReceiverOwnerParts(tc.geom, &tc.cfg)
	if err != nil {
		t.Fatalf("ReceiverOwnerParts: %v", err)
	}
	if err := co.SetReceiverParts(owners); err != nil {
		t.Fatalf("SetReceiverParts: %v", err)
	}
	var times []float64
	var samples [][]float64
	for c := 0; c < cycles; c++ {
		tm, row, err := co.Step()
		if err != nil {
			t.Fatalf("Step %d: %v", c, err)
		}
		times = append(times, tm)
		samples = append(samples, append([]float64(nil), row...))
	}
	return times, samples
}

// requireBitwise fails unless two trajectories match bit for bit.
func requireBitwise(t *testing.T, label string, wantT, gotT []float64, want, got [][]float64) {
	t.Helper()
	if len(wantT) != len(gotT) || len(want) != len(got) {
		t.Fatalf("%s: cycle count mismatch", label)
	}
	for c := range want {
		if math.Float64bits(wantT[c]) != math.Float64bits(gotT[c]) {
			t.Fatalf("%s: cycle %d time %v != %v", label, c, gotT[c], wantT[c])
		}
		for i := range want[c] {
			if math.Float64bits(want[c][i]) != math.Float64bits(got[c][i]) {
				t.Fatalf("%s: cycle %d receiver %d: got %v (%#x), want %v (%#x)",
					label, c, i, got[c][i], math.Float64bits(got[c][i]),
					want[c][i], math.Float64bits(want[c][i]))
			}
		}
	}
}

// TestEquivalenceMatrix is the acceptance bar: 2- and 4-rank distributed
// runs produce bitwise-identical seismograms to the shared-memory engine
// with the same decomposition, for both physics and both schemes.
func TestEquivalenceMatrix(t *testing.T) {
	cycles := 4
	rankCounts := []int{2, 4}
	if testing.Short() {
		rankCounts = []int{2}
	}
	for _, physics := range []string{"acoustic", "elastic"} {
		for _, ltsScheme := range []bool{true, false} {
			if testing.Short() && physics == "elastic" && !ltsScheme {
				continue // the slowest corner; covered by the full run
			}
			for _, ranks := range rankCounts {
				name := fmt.Sprintf("%s-lts=%v-ranks=%d", physics, ltsScheme, ranks)
				t.Run(name, func(t *testing.T) {
					tc := newTestConfig(t, physics, ltsScheme, ranks, ranks)
					wantT, want := runShared(t, tc, cycles)
					gotT, got := runDist(t, tc, cycles, true)
					requireBitwise(t, name, wantT, gotT, want, got)
				})
			}
		}
	}
}

// TestRankCountIndependence pins the reproducibility contract: with the
// decomposition width fixed, the seismograms do not depend on how many
// rank processes execute the parts — including the 1-process run.
func TestRankCountIndependence(t *testing.T) {
	const parts, cycles = 4, 3
	base := newTestConfig(t, "acoustic", true, 1, parts)
	wantT, want := runDist(t, base, cycles, true)
	shmT, shm := runShared(t, base, cycles)
	requireBitwise(t, "ranks=1 vs shared-memory", shmT, wantT, shm, want)
	for _, ranks := range []int{2, 4} {
		tc := newTestConfig(t, "acoustic", true, ranks, parts)
		gotT, got := runDist(t, tc, cycles, true)
		requireBitwise(t, fmt.Sprintf("ranks=%d vs ranks=1", ranks), wantT, gotT, want, got)
	}
}

// TestScatteredPartition stresses the halo machinery with a spatially
// scattered (pseudo-random) decomposition: maximal inter-rank surface,
// parts interleaved everywhere, every level exchanging with every rank.
// (The facade-level halo-closure regression lives in
// wave.TestDistributedHaloClosureRegression, at the configuration that
// exposed it.)
func TestScatteredPartition(t *testing.T) {
	tc := newTestConfig(t, "acoustic", true, 2, 2)
	if tc.lv.NumLevels < 2 {
		t.Skip("mesh produced a single level")
	}
	state := uint64(0x9e3779b97f4a7c15)
	for e := range tc.cfg.Part {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		tc.cfg.Part[e] = int32(state % 2)
	}
	wantT, want := runShared(t, tc, 6)
	gotT, got := runDist(t, tc, 6, true)
	requireBitwise(t, "scattered partition", wantT, gotT, want, got)
}

// TestSpawnedProcesses runs the real thing once: rank subprocesses of
// this test binary (via the TestMain RankMain hook), full wire protocol
// across process boundaries.
func TestSpawnedProcesses(t *testing.T) {
	tc := newTestConfig(t, "acoustic", true, 2, 2)
	wantT, want := runShared(t, tc, 3)
	gotT, got := runDist(t, tc, 3, false)
	requireBitwise(t, "spawned", wantT, gotT, want, got)
}

// TestPerElementKernel: the distributed per-element path is bitwise
// identical to the distributed batched path.
func TestPerElementKernel(t *testing.T) {
	physics := "elastic"
	if testing.Short() {
		physics = "acoustic"
	}
	tc := newTestConfig(t, physics, true, 2, 2)
	wantT, want := runDist(t, tc, 3, true)
	tc2 := newTestConfig(t, physics, true, 2, 2)
	tc2.cfg.PerElement = true
	gotT, got := runDist(t, tc2, 3, true)
	requireBitwise(t, "per-element vs batched", wantT, gotT, want, got)
}

// TestSpongeEquivalence covers the absorbing-boundary reconstruction on
// the ranks.
func TestSpongeEquivalence(t *testing.T) {
	tc := newTestConfig(t, "acoustic", false, 2, 2)
	tc.cfg.Sponge = SpongeSpec{Width: 0.1, Strength: 50, Faces: [6]bool{true, true, true, true, true, false}}
	wantT, want := func() ([]float64, [][]float64) {
		pop, err := parallel.NewOperator(tc.geom, tc.cfg.Part, tc.cfg.Parts)
		if err != nil {
			t.Fatalf("parallel.NewOperator: %v", err)
		}
		defer pop.Close()
		x0, x1, y0, y1, z0, z1 := tc.m.Extent()
		sigma := sem.SpongeProfile(tc.geom.NumNodes(), tc.geom.NodeCoords,
			x0, x1, y0, y1, z0, z1, tc.cfg.Sponge.Faces, tc.cfg.Sponge.Width, tc.cfg.Sponge.Strength)
		g := newmark.New(pop, tc.lv.CoarseDt/float64(tc.lv.PMax()))
		g.Sources = tc.srcs
		g.Sigma = sigma
		st := newmarkRankStepper{g, tc.lv.PMax()}
		var times []float64
		var rows [][]float64
		for c := 0; c < 3; c++ {
			st.Step()
			u := st.State()
			row := make([]float64, len(tc.cfg.Receivers))
			for i, dof := range tc.cfg.Receivers {
				row[i] = u[dof]
			}
			times = append(times, st.Time())
			rows = append(rows, row)
		}
		return times, rows
	}()
	gotT, got := runDist(t, tc, 3, true)
	requireBitwise(t, "sponge", wantT, gotT, want, got)
}

// TestStats: the aggregated counters are consistent — every rank applied
// the same number of distributed applies, the scheme work model matches
// the shared-memory scheme, and messages flowed for multi-rank runs.
func TestStats(t *testing.T) {
	tc := newTestConfig(t, "acoustic", true, 2, 2)
	co, err := Start(Config{Run: tc.cfg, InProcess: true})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer co.Close()
	owners, err := ReceiverOwnerParts(tc.geom, &tc.cfg)
	if err != nil {
		t.Fatalf("ReceiverOwnerParts: %v", err)
	}
	if err := co.SetReceiverParts(owners); err != nil {
		t.Fatalf("SetReceiverParts: %v", err)
	}
	for c := 0; c < 3; c++ {
		if _, _, err := co.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	stats, err := co.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if len(stats) != 2 {
		t.Fatalf("got %d rank stats", len(stats))
	}
	if stats[0].Cycles != 3 {
		t.Errorf("rank 0 cycles = %d, want 3", stats[0].Cycles)
	}
	for i, st := range stats {
		if st.Applies != stats[0].Applies {
			t.Errorf("rank %d applies = %d, want %d (lockstep)", i, st.Applies, stats[0].Applies)
		}
		if st.ElemApplies != stats[0].ElemApplies {
			t.Errorf("rank %d scheme work %d != rank 0's %d", i, st.ElemApplies, stats[0].ElemApplies)
		}
		if st.Messages == 0 {
			t.Errorf("rank %d sent no halo messages", i)
		}
	}
}

// TestReceiverOwnersCover: every receiver is owned by exactly one valid
// part, and the rank-level mapping agrees with the placement.
func TestReceiverOwnersCover(t *testing.T) {
	tc := newTestConfig(t, "elastic", true, 3, 3)
	parts, err := ReceiverOwnerParts(tc.geom, &tc.cfg)
	if err != nil {
		t.Fatalf("ReceiverOwnerParts: %v", err)
	}
	if len(parts) != len(tc.cfg.Receivers) {
		t.Fatalf("got %d owner parts for %d receivers", len(parts), len(tc.cfg.Receivers))
	}
	for i, p := range parts {
		if p < 0 || p >= tc.cfg.Parts {
			t.Errorf("receiver %d owner part %d outside [0,%d)", i, p, tc.cfg.Parts)
		}
	}
	owners, err := ReceiverOwners(tc.geom, &tc.cfg)
	if err != nil {
		t.Fatalf("ReceiverOwners: %v", err)
	}
	ranks := tc.cfg.partRanks()
	for i, r := range owners {
		if r < 0 || r >= tc.cfg.Ranks {
			t.Errorf("receiver %d owner rank %d outside [0,%d)", i, r, tc.cfg.Ranks)
		}
		if r != ranks[parts[i]] {
			t.Errorf("receiver %d owner rank %d != placement of part %d (%d)", i, r, parts[i], ranks[parts[i]])
		}
	}
}

// TestStartValidation: malformed configurations are rejected before any
// process is spawned.
func TestStartValidation(t *testing.T) {
	tc := newTestConfig(t, "acoustic", true, 2, 2)
	bad := tc.cfg
	bad.Parts = 1 // parts < ranks
	if _, err := Start(Config{Run: bad, InProcess: true}); err == nil {
		t.Error("parts < ranks accepted")
	}
	bad = tc.cfg
	bad.Ranks = 0
	if _, err := Start(Config{Run: bad, InProcess: true}); err == nil {
		t.Error("zero ranks accepted")
	}
	bad = tc.cfg
	bad.Physics = "plasma"
	if _, err := Start(Config{Run: bad, InProcess: true}); err == nil {
		t.Error("unknown physics accepted")
	}
	// Recursive-spawn guard: Start inside a rank environment must refuse.
	t.Setenv(envRank, "0")
	if _, err := Start(Config{Run: tc.cfg, InProcess: true}); err == nil {
		t.Error("Start accepted inside a rank environment")
	}
}

// TestPartRange: the contiguous block mapping covers all parts exactly
// once and keeps each rank's parts consecutive.
func TestPartRange(t *testing.T) {
	for _, tc := range []struct{ parts, ranks int }{
		{1, 1}, {2, 2}, {4, 2}, {5, 2}, {7, 3}, {8, 8}, {9, 4},
	} {
		own := ownerRanks(tc.parts, tc.ranks)
		prev := 0
		for p, r := range own {
			if r < prev {
				t.Errorf("P=%d R=%d: part %d rank %d after rank %d (not ascending)",
					tc.parts, tc.ranks, p, r, prev)
			}
			prev = r
		}
		for r := 0; r < tc.ranks; r++ {
			lo, hi := partRange(r, tc.parts, tc.ranks)
			if hi <= lo {
				t.Errorf("P=%d R=%d: rank %d owns empty part range [%d,%d)", tc.parts, tc.ranks, r, lo, hi)
			}
			for p := lo; p < hi; p++ {
				if own[p] != r {
					t.Errorf("P=%d R=%d: part %d owner %d, range says %d", tc.parts, tc.ranks, p, own[p], r)
				}
			}
		}
	}
}
