package dist

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"golts/internal/lts"
	"golts/internal/parallel"
)

func TestFaultPlanParse(t *testing.T) {
	cases := []string{
		"kill:rank=1,cycle=3,substep=2",
		"stall:rank=0,cycle=1,substep=0",
		"delay:rank=2,cycle=4,substep=1,ms=150",
		"kill:rank=1,cycle=2,substep=0,gen=1",
		"droplink:rank=1,cycle=2,substep=0",
		"stall-link:rank=1,cycle=3,substep=0,ms=2000",
		"corrupt:rank=0,cycle=5,substep=0",
		"partition:rank=1,cycle=4,substep=1",
	}
	for _, spec := range cases {
		p, err := ParseFaultPlan(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if p.String() != spec {
			t.Fatalf("round trip: %q -> %q", spec, p.String())
		}
	}
	bad := []string{
		"",
		"kill",
		"explode:rank=1,cycle=1",
		"kill:rank=1", // cycle missing (cycle 0 invalid)
		"kill:rank=-1,cycle=1",
		"kill:rank=x,cycle=1",
		"kill:rank=1,cycle=1,weird=2",
		"kill:rank=1,cycle=1,substep",
	}
	for _, spec := range bad {
		if _, err := ParseFaultPlan(spec); err == nil {
			t.Fatalf("%q parsed without error", spec)
		}
	}
}

// TestRankDeathReturnsTypedFailure is the regression for the
// block-forever bug: a rank that dies between frames during Step used to
// hang the coordinator on a deadline-less read. Now the loss surfaces
// promptly as a *RankFailure.
func TestRankDeathReturnsTypedFailure(t *testing.T) {
	tc := newTestConfig(t, "acoustic", true, 2, 4)
	tc.cfg.PeerTimeoutMillis = 2000 // unblock the surviving rank quickly
	co, err := Start(Config{
		Run:       tc.cfg,
		InProcess: true,
		Fault:     &FaultPlan{Kind: FaultKill, Rank: 1, Cycle: 2, Substep: 0},
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer co.Abort()
	owners, err := ReceiverOwnerParts(tc.geom, &tc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.SetReceiverParts(owners); err != nil {
		t.Fatal(err)
	}
	if _, _, err := co.Step(); err != nil {
		t.Fatalf("cycle 1: %v", err)
	}
	start := time.Now()
	_, _, err = co.Step()
	if err == nil {
		t.Fatal("cycle 2 succeeded despite a dead rank")
	}
	var rf *RankFailure
	if !errors.As(err, &rf) {
		t.Fatalf("error is not a *RankFailure: %v", err)
	}
	if wait := time.Since(start); wait > time.Minute {
		t.Fatalf("failure detection took %v", wait)
	}
}

// TestStallDetectedByHeartbeat: a rank that freezes with every
// connection held open is invisible to EOF detection; only the missing
// heartbeats give it away.
func TestStallDetectedByHeartbeat(t *testing.T) {
	tc := newTestConfig(t, "acoustic", true, 2, 4)
	tc.cfg.HeartbeatMillis = 50
	tc.cfg.HeartbeatTimeoutMillis = 400
	tc.cfg.PeerTimeoutMillis = 1000 // unblock the surviving rank's halo wait
	co, err := Start(Config{
		Run:       tc.cfg,
		InProcess: true,
		Fault:     &FaultPlan{Kind: FaultStall, Rank: 1, Cycle: 1, Substep: 1},
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// The stalled rank goroutine parks forever by design; Abort (not
	// Close) so teardown does not wait politely for it.
	defer co.Abort()
	owners, err := ReceiverOwnerParts(tc.geom, &tc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.SetReceiverParts(owners); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _, err = co.Step()
	if err == nil {
		t.Fatal("Step succeeded despite a stalled rank")
	}
	var rf *RankFailure
	if !errors.As(err, &rf) {
		t.Fatalf("error is not a *RankFailure: %v", err)
	}
	if wait := time.Since(start); wait > 10*time.Second {
		t.Fatalf("stall detection took %v", wait)
	}
}

// runRecovered drives a run with an injected fault and recovery enabled,
// returning the full trajectory and the recovery count.
func runRecovered(t *testing.T, tc *testConfig, cycles int, inProcess bool, fault *FaultPlan) ([]float64, [][]float64, int) {
	t.Helper()
	co, err := Start(Config{
		Run:             tc.cfg,
		InProcess:       inProcess,
		CheckpointEvery: 1,
		MaxRecoveries:   2,
		Fault:           fault,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() {
		if err := co.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	owners, err := ReceiverOwnerParts(tc.geom, &tc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.SetReceiverParts(owners); err != nil {
		t.Fatal(err)
	}
	var times []float64
	var samples [][]float64
	for c := 0; c < cycles; c++ {
		tm, row, err := co.Step()
		if err != nil {
			t.Fatalf("Step %d: %v", c, err)
		}
		times = append(times, tm)
		samples = append(samples, append([]float64(nil), row...))
	}
	n, _ := co.Recoveries()
	return times, samples, n
}

// TestKillRecoveryBitwise: an in-process rank killed mid-cycle is
// respawned, the run restarts from the coordinator's checkpoint, and the
// delivered seismogram is bitwise identical to the fault-free baseline.
// The scale is chosen so the baseline samples are nonzero — recovery
// from a checkpoint with stale field regions passes this comparison at
// tiny amplitudes, where every sample is exactly 0.0.
func TestKillRecoveryBitwise(t *testing.T) {
	const cycles = 10
	for _, physics := range []string{"acoustic", "elastic"} {
		t.Run(physics, func(t *testing.T) {
			tc := newTestConfigScale(t, physics, true, 2, 4, 0.004)
			wantT, want := runShared(t, tc, cycles)
			if maxAbsSamples(want) == 0 {
				t.Fatal("vacuous baseline: every receiver sample is exactly zero")
			}
			gotT, got, rec := runRecovered(t, tc, cycles, true,
				&FaultPlan{Kind: FaultKill, Rank: 1, Cycle: 6, Substep: 2})
			if rec < 1 {
				t.Fatalf("no recovery happened (fault did not fire?)")
			}
			requireBitwise(t, physics, wantT, gotT, want, got)
		})
	}
}

// TestSpawnedKillRecovery exercises the real thing: a spawned rank
// process SIGKILLs itself (fault plan via the environment, as inherited
// by the child) and the coordinator respawns and recovers, bitwise.
func TestSpawnedKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawned-process test skipped in -short")
	}
	t.Setenv(EnvFault, "kill:rank=1,cycle=2,substep=1")
	tc := newTestConfig(t, "acoustic", true, 2, 4)
	const cycles = 5
	wantT, want := runShared(t, tc, cycles)
	gotT, got, rec := runRecovered(t, tc, cycles, false, nil)
	if rec < 1 {
		t.Fatalf("no recovery happened (fault did not fire?)")
	}
	requireBitwise(t, "spawned", wantT, gotT, want, got)
}

// TestDelayFaultHarmless: a transient delay must ride out on the
// timeouts without triggering recovery, and without disturbing the
// trajectory.
func TestDelayFaultHarmless(t *testing.T) {
	tc := newTestConfig(t, "acoustic", true, 2, 4)
	const cycles = 4
	wantT, want := runShared(t, tc, cycles)
	gotT, got, rec := runRecovered(t, tc, cycles, true,
		&FaultPlan{Kind: FaultDelay, Rank: 1, Cycle: 2, Substep: 1, Delay: 80 * time.Millisecond})
	if rec != 0 {
		t.Fatalf("delay fault triggered %d recoveries", rec)
	}
	requireBitwise(t, "delay", wantT, gotT, want, got)
}

// TestFetchRestoreState: state pulled from one run and installed into a
// freshly started run continues the trajectory bitwise.
func TestFetchRestoreState(t *testing.T) {
	tc := newTestConfig(t, "acoustic", true, 2, 4)
	const pre, post = 3, 3

	run := func() (*Coordinator, func()) {
		co, err := Start(Config{Run: tc.cfg, InProcess: true})
		if err != nil {
			t.Fatalf("Start: %v", err)
		}
		owners, err := ReceiverOwnerParts(tc.geom, &tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := co.SetReceiverParts(owners); err != nil {
			t.Fatal(err)
		}
		return co, func() { co.Close() }
	}

	co1, done1 := run()
	defer done1()
	for c := 0; c < pre; c++ {
		if _, _, err := co1.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st, err := co1.FetchState()
	if err != nil {
		t.Fatalf("FetchState: %v", err)
	}
	var wantT []float64
	var want [][]float64
	for c := 0; c < post; c++ {
		tm, row, err := co1.Step()
		if err != nil {
			t.Fatal(err)
		}
		wantT = append(wantT, tm)
		want = append(want, append([]float64(nil), row...))
	}

	co2, done2 := run()
	defer done2()
	if err := co2.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	var gotT []float64
	var got [][]float64
	for c := 0; c < post; c++ {
		tm, row, err := co2.Step()
		if err != nil {
			t.Fatal(err)
		}
		gotT = append(gotT, tm)
		got = append(got, append([]float64(nil), row...))
	}
	requireBitwise(t, "restore", wantT, gotT, want, got)
}

// maxAbsSamples returns the largest |sample| across a trajectory — the
// anti-vacuity guard: a bitwise comparison of all-zero samples proves
// nothing.
func maxAbsSamples(rows [][]float64) float64 {
	m := 0.0
	for _, row := range rows {
		for _, v := range row {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
	}
	return m
}

// TestFetchStateExactGlobalField is the regression for the stale-replica
// checkpoint bug. Under owner-computes stepping each rank's replicated
// field is bitwise exact only on its owned element-node footprint — a
// snapshot taken from rank 0 alone carries stale values everywhere else,
// which every trajectory test at trivially small amplitude missed
// (all samples exactly 0.0). At a scale where the baseline is provably
// nonzero, the merged snapshot must equal the shared-memory engine's
// field at every dof, and a fresh run restored from it must continue the
// shared baseline bitwise.
func TestFetchStateExactGlobalField(t *testing.T) {
	const cycles, mid = 12, 7
	tc := newTestConfigScale(t, "acoustic", true, 2, 4, 0.004)
	refT, refS := runShared(t, tc, cycles)
	if maxAbsSamples(refS) == 0 {
		t.Fatal("vacuous baseline: every receiver sample is exactly zero")
	}

	co, err := Start(Config{Run: tc.cfg, InProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Abort()
	owners, err := ReceiverOwnerParts(tc.geom, &tc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.SetReceiverParts(owners); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < mid; c++ {
		if _, _, err := co.Step(); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
	}
	st, err := co.FetchState()
	if err != nil {
		t.Fatal(err)
	}

	// Field-level check: the snapshot equals the shared engine at every
	// dof, not only at the receivers.
	pop, err := parallel.NewOperator(tc.geom, tc.cfg.Part, tc.cfg.Parts)
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	sch, err := lts.FromMeshLevels(pop, tc.lv, true)
	if err != nil {
		t.Fatal(err)
	}
	sch.SetSources(tc.srcs)
	for c := 0; c < mid; c++ {
		sch.Step()
	}
	du, dv := 0, 0
	for i := range st.U {
		if st.U[i] != sch.U[i] {
			du++
		}
		if st.V[i] != sch.V[i] {
			dv++
		}
	}
	if du != 0 || dv != 0 {
		t.Fatalf("snapshot differs from shared engine: %d/%d U dofs, %d V dofs", du, len(st.U), dv)
	}

	// Trajectory check: a fresh coordinator restored from the snapshot
	// continues the shared baseline bitwise.
	co2, err := Start(Config{Run: tc.cfg, InProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Abort()
	if err := co2.SetReceiverParts(owners); err != nil {
		t.Fatal(err)
	}
	if err := co2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	var gotT []float64
	var got [][]float64
	for c := mid; c < cycles; c++ {
		tm, row, err := co2.Step()
		if err != nil {
			t.Fatalf("restored cycle %d: %v", c, err)
		}
		gotT = append(gotT, tm)
		got = append(got, append([]float64(nil), row...))
	}
	if maxAbsSamples(got) == 0 {
		t.Fatal("vacuous tail: every restored sample is exactly zero")
	}
	requireBitwise(t, "restored-tail", refT[mid:], gotT, refS[mid:], got)
}

// TestFaultFromEnv keeps the env plumbing honest without spawning
// anything: single plans, ';'-separated multi-plans, and rejects.
func TestFaultFromEnv(t *testing.T) {
	t.Setenv(EnvFault, "delay:rank=0,cycle=1,substep=0,ms=5")
	ps, err := faultsFromEnv()
	if err != nil || len(ps) != 1 || ps[0].Kind != FaultDelay || ps[0].Delay != 5*time.Millisecond {
		t.Fatalf("faultsFromEnv: %+v, %v", ps, err)
	}
	t.Setenv(EnvFault, "kill:rank=0,cycle=2;kill:rank=1,cycle=2;kill:rank=1,cycle=2,gen=1")
	ps, err = faultsFromEnv()
	if err != nil || len(ps) != 3 {
		t.Fatalf("multi-plan env: %+v, %v", ps, err)
	}
	if ps[1].Rank != 1 || ps[2].Gen != 1 {
		t.Fatalf("multi-plan fields: %+v", ps)
	}
	t.Setenv(EnvFault, "nonsense")
	if _, err := faultsFromEnv(); err == nil {
		t.Fatal("bad env spec accepted")
	}
	t.Setenv(EnvFault, "kill:rank=0,cycle=1;nonsense")
	if _, err := faultsFromEnv(); err == nil {
		t.Fatal("bad multi-plan spec accepted")
	}
	t.Setenv(EnvFault, "")
	if ps, err := faultsFromEnv(); ps != nil || err != nil {
		t.Fatalf("empty env: %+v, %v", ps, err)
	}
	if !strings.Contains((&FaultPlan{Kind: FaultKill, Rank: 1, Cycle: 2}).String(), "kill:") {
		t.Fatal("String misses kind")
	}
}
