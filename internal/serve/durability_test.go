package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"golts/wave"
)

// parkOnShutdown wires the test hook so every attempt blocks until the
// server shuts down and then reports the shutdown as its failure — the
// deterministic way to catch jobs "mid-run" at Close.
func parkOnShutdown(s *Server) {
	s.testRunFault = func(*Job, int) error {
		<-s.baseCtx.Done()
		return s.baseCtx.Err()
	}
}

// TestSpoolReplayAfterRestart: jobs interrupted by a shutdown — one
// running, one still queued — keep their spool entries and run to
// completion on the next server instance with the same ids.
func TestSpoolReplayAfterRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := mustNew(t, Config{Concurrency: 1, WorkerBudget: 1, SpoolDir: dir})
	parkOnShutdown(s1)
	var ids []string
	for i := 0; i < 2; i++ {
		j, err := s1.Submit(tinyReq())
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ids = append(ids, j.ID)
	}
	s1.Close()

	s2 := mustNew(t, Config{Concurrency: 1, WorkerBudget: 1, SpoolDir: dir})
	defer s2.Close()
	if got := s2.Stats().Replayed; got != 2 {
		t.Fatalf("replayed %d jobs, want 2", got)
	}
	for _, id := range ids {
		j, ok := s2.Job(id)
		if !ok {
			t.Fatalf("job %s not replayed", id)
		}
		waitTerminal(t, j)
		if st := j.StateNow(); st != StateDone {
			t.Fatalf("replayed job %s finished %s (%s)", id, st, j.Err())
		}
		if _, err := os.Stat(s2.spool.jobPath(id)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("job %s spool entry not removed after completion", id)
		}
	}
}

// TestResumeByteIdentical is the durability acceptance bar: a spooled
// job interrupted mid-run resumes from its checkpoint on the next
// instance and the final row stream is byte-identical to an
// uninterrupted run.
func TestResumeByteIdentical(t *testing.T) {
	req := tinyReq()
	req.Cycles = 40

	ref := mustNew(t, Config{Concurrency: 1, WorkerBudget: 1})
	jr, err := ref.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitTerminal(t, jr)
	if jr.StateNow() != StateDone {
		t.Fatalf("reference job: %s (%s)", jr.StateNow(), jr.Err())
	}
	want := rowBytes(jr)
	ref.Close()

	dir := t.TempDir()
	cfg := Config{Concurrency: 1, WorkerBudget: 1, SpoolDir: dir, CheckpointEvery: 2}
	s1 := mustNew(t, cfg)
	j1, err := s1.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Interrupt once the run is demonstrably past a few checkpoints.
	for deadline := time.Now().Add(time.Minute); j1.rows.len() < 10; {
		if time.Now().After(deadline) {
			t.Fatal("job never produced enough rows to interrupt")
		}
		if j1.StateNow().Terminal() {
			t.Fatalf("job finished before the interrupt; raise Cycles")
		}
		time.Sleep(time.Millisecond)
	}
	s1.Close()

	s2 := mustNew(t, cfg)
	defer s2.Close()
	j2, ok := s2.Job(j1.ID)
	if !ok {
		t.Fatalf("job %s not replayed", j1.ID)
	}
	waitTerminal(t, j2)
	if j2.StateNow() != StateDone {
		t.Fatalf("resumed job: %s (%s)", j2.StateNow(), j2.Err())
	}
	if got := rowBytes(j2); !bytes.Equal(got, want) {
		t.Fatalf("resumed stream differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
	st := s2.Stats()
	if st.Resumed < 1 {
		t.Errorf("job restarted from scratch, not from its checkpoint: %+v", st)
	}
	if st.Checkpoints < 1 {
		t.Errorf("resumed run wrote no checkpoints: %+v", st)
	}
}

// TestRetryBackoffThenSuccess: infrastructure failures retry with
// backoff until an attempt succeeds; the terminal snapshot is clean.
func TestRetryBackoffThenSuccess(t *testing.T) {
	s := mustNew(t, Config{Concurrency: 1, WorkerBudget: 1, RetryBaseDelay: 5 * time.Millisecond})
	defer s.Close()
	attempts := 0
	s.testRunFault = func(j *Job, attempt int) error {
		attempts++
		if attempt < 2 {
			return fmt.Errorf("transient failure %d", attempt)
		}
		return nil
	}
	req := tinyReq()
	req.MaxRetries = 3
	j, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitTerminal(t, j)
	if j.StateNow() != StateDone {
		t.Fatalf("job finished %s (%s), want done", j.StateNow(), j.Err())
	}
	if attempts != 3 || j.Retries() != 2 {
		t.Errorf("attempts=%d retries=%d, want 3 attempts / 2 retries", attempts, j.Retries())
	}
	if kind := j.ErrKind(); kind != "" {
		t.Errorf("successful job kept error kind %q", kind)
	}
	if st := s.Stats(); st.Retried != 2 || st.Done != 1 {
		t.Errorf("stats: %+v, want retried=2 done=1", st)
	}
}

// TestRetriesExhausted: a job that keeps failing lands failed with kind
// "infra" after MaxRetries retries.
func TestRetriesExhausted(t *testing.T) {
	s := mustNew(t, Config{Concurrency: 1, WorkerBudget: 1, RetryBaseDelay: 5 * time.Millisecond})
	defer s.Close()
	s.testRunFault = func(*Job, int) error { return errors.New("node on fire") }
	req := tinyReq()
	req.MaxRetries = 1
	j, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitTerminal(t, j)
	if j.StateNow() != StateFailed || j.ErrKind() != "infra" || j.Retries() != 1 {
		t.Fatalf("state=%s kind=%s retries=%d, want failed/infra/1",
			j.StateNow(), j.ErrKind(), j.Retries())
	}
	if st := s.Stats(); st.Failed != 1 || st.Retried != 1 {
		t.Errorf("stats: %+v, want failed=1 retried=1", st)
	}
}

// TestConfigErrorNotRetried: a typed configuration rejection
// (*wave.OptionError) fails immediately with kind "config" — no retry
// budget is spent on an input that can never succeed — and the kind is
// visible on the HTTP status surface.
func TestConfigErrorNotRetried(t *testing.T) {
	s := mustNew(t, Config{Concurrency: 1, WorkerBudget: 1, RetryBaseDelay: time.Millisecond})
	defer s.Close()
	s.testRunFault = func(*Job, int) error {
		return &wave.OptionError{Option: "WithWorkers", Err: wave.ErrWorkersRange}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := tinyReq()
	req.MaxRetries = 5
	j, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitTerminal(t, j)
	if j.StateNow() != StateFailed || j.ErrKind() != "config" || j.Retries() != 0 {
		t.Fatalf("state=%s kind=%s retries=%d, want failed/config/0",
			j.StateNow(), j.ErrKind(), j.Retries())
	}
	if st := s.Stats(); st.Retried != 0 {
		t.Errorf("config rejection consumed %d retries", st.Retried)
	}

	resp, err := http.Get(ts.URL + "/jobs/" + j.ID)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var sn struct {
		ErrorKind string `json:"error_kind"`
	}
	if err := json.Unmarshal(raw, &sn); err != nil || sn.ErrorKind != "config" {
		t.Fatalf("status JSON error_kind = %q (%v), want \"config\"; body: %s", sn.ErrorKind, err, raw)
	}
}

// TestCancelRemovesSpool: cancelling a queued job deletes its spool
// entry so it cannot haunt the next restart.
func TestCancelRemovesSpool(t *testing.T) {
	dir := t.TempDir()
	s := mustNew(t, Config{Concurrency: 1, WorkerBudget: 1, SpoolDir: dir})
	parkOnShutdown(s) // keeps the first job occupying the only slot
	blocker, err := s.Submit(tinyReq())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	queued, err := s.Submit(tinyReq())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := os.Stat(s.spool.jobPath(queued.ID)); err != nil {
		t.Fatalf("queued job not spooled: %v", err)
	}
	if !s.Cancel(queued.ID) {
		t.Fatal("cancel returned false")
	}
	waitTerminal(t, queued)
	if _, err := os.Stat(s.spool.jobPath(queued.ID)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("cancelled job left its spool entry behind")
	}
	_ = blocker
	s.Close()
}

// TestSpoolDropsInvalidSpecs: a spooled spec that no longer validates
// (or is corrupt) is dropped at replay instead of wedging the restart.
func TestSpoolDropsInvalidSpecs(t *testing.T) {
	dir := t.TempDir()
	sp, err := newSpool(dir)
	if err != nil {
		t.Fatalf("newSpool: %v", err)
	}
	bad := tinyReq()
	bad.Workers = 64 // exceeds the restarted server's budget
	if err := sp.saveJob(spoolJob{ID: "j1", Req: bad}); err != nil {
		t.Fatalf("saveJob: %v", err)
	}
	if err := os.WriteFile(sp.jobPath("j2"), []byte("{torn"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	s := mustNew(t, Config{Concurrency: 1, WorkerBudget: 1, SpoolDir: dir})
	defer s.Close()
	if got := s.Stats().Replayed; got != 0 {
		t.Fatalf("replayed %d invalid jobs", got)
	}
	if _, err := os.Stat(sp.jobPath("j1")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("over-budget spec kept in spool")
	}
	if _, err := os.Stat(sp.jobPath("j2")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("corrupt spec kept in spool")
	}
}
