package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"golts/internal/simio"
	"golts/wave"
)

// tinyReq is the fast test configuration: the smallest benchmark mesh,
// two coarse cycles.
func tinyReq() JobRequest {
	return JobRequest{
		Config: simio.Config{
			Mesh:   "trench",
			Scale:  0.0005,
			LTS:    true,
			Cycles: 2,
		},
		Workers: 1,
	}
}

func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func waitTerminal(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s stuck in state %s", j.ID, j.StateNow())
	}
}

func postJob(t *testing.T, url string, req JobRequest) (*http.Response, snapshot) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var sn snapshot
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, sn
}

// TestQueueSaturationAndCancelReleasesSlot drives the full bounded-queue
// lifecycle over HTTP: with the single dispatcher pinned by a running
// job, submissions beyond MaxQueue get 429; cancelling one queued job
// frees its slot so the next submission is accepted again; cancelling
// the running blocker ends it promptly as "cancelled".
func TestQueueSaturationAndCancelReleasesSlot(t *testing.T) {
	s := mustNew(t, Config{MaxQueue: 2, Concurrency: 1, WorkerBudget: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A long blocker occupies the only dispatcher; cancelled at the end.
	blocker := tinyReq()
	blocker.Cycles = 100000
	resp, bsn := postJob(t, ts.URL, blocker)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker submit: status %d", resp.StatusCode)
	}
	bj, _ := s.Job(bsn.ID)
	for i := 0; bj.StateNow() != StateRunning; i++ {
		if i > 1000 {
			t.Fatal("blocker never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Fill the queue, then overflow it.
	var queued []string
	for i := 0; i < 2; i++ {
		resp, sn := postJob(t, ts.URL, tinyReq())
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queued submit %d: status %d", i, resp.StatusCode)
		}
		queued = append(queued, sn.ID)
	}
	resp, _ = postJob(t, ts.URL, tinyReq())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if st := s.Stats(); st.QueueDepth != 2 || st.InFlight != 1 {
		t.Fatalf("stats: depth %d in-flight %d, want 2 / 1", st.QueueDepth, st.InFlight)
	}

	// Cancel one queued job: it finishes immediately and frees its slot.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+queued[0], nil)
	dresp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	qj, _ := s.Job(queued[0])
	waitTerminal(t, qj)
	if st := qj.StateNow(); st != StateCancelled {
		t.Fatalf("cancelled queued job state = %s", st)
	}
	resp, _ = postJob(t, ts.URL, tinyReq())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after cancel: status %d, want 202 (slot not released)", resp.StatusCode)
	}

	// Cancel the running blocker; it must wind down promptly.
	if !s.Cancel(bsn.ID) {
		t.Fatal("Cancel(blocker) = false")
	}
	waitTerminal(t, bj)
	if st := bj.StateNow(); st != StateCancelled {
		t.Fatalf("cancelled running job state = %s", st)
	}
}

// TestConcurrentSameConfigBuildsOnce submits the same configuration to
// two dispatchers at once: single-flight construction must build each
// artifact exactly as often as one cold run does, and both jobs must
// produce identical rows.
func TestConcurrentSameConfigBuildsOnce(t *testing.T) {
	// Reference: builds (= cache misses) of one cold run.
	ref := mustNew(t, Config{Concurrency: 1, WorkerBudget: 1})
	j, err := ref.Submit(tinyReq())
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	waitTerminal(t, j)
	if st := j.StateNow(); st != StateDone {
		t.Fatalf("reference job: %s (%s)", st, j.Err())
	}
	coldBuilds := ref.Cache().Counters().Misses
	ref.Close()
	if coldBuilds == 0 {
		t.Fatal("cold run recorded no artifact builds")
	}

	s := mustNew(t, Config{Concurrency: 2, WorkerBudget: 2})
	defer s.Close()
	var jobs [2]*Job
	for i := range jobs {
		if jobs[i], err = s.Submit(tinyReq()); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for _, j := range jobs {
		waitTerminal(t, j)
		if st := j.StateNow(); st != StateDone {
			t.Fatalf("job %s: %s (%s)", j.ID, st, j.Err())
		}
	}
	ctr := s.Cache().Counters()
	if ctr.Misses != coldBuilds {
		t.Errorf("two concurrent same-config jobs built %d artifacts, one cold run builds %d", ctr.Misses, coldBuilds)
	}
	if ctr.Hits == 0 {
		t.Error("second job joined no cached builds")
	}
	if !bytes.Equal(rowBytes(jobs[0]), rowBytes(jobs[1])) {
		t.Error("concurrent same-config jobs produced different rows")
	}
}

func rowBytes(j *Job) []byte {
	var buf bytes.Buffer
	rows, _, _ := j.rows.next(0)
	for _, r := range rows {
		buf.Write(r)
	}
	return buf.Bytes()
}

// TestCachedRunBitwiseIdentical is the service-level reproducibility
// bar: a warm (cache-hit) run streams byte-identical CSV to the cold
// run, and both match a direct wave.FromConfig run of the same
// configuration without any cache.
func TestCachedRunBitwiseIdentical(t *testing.T) {
	s := mustNew(t, Config{Concurrency: 1, WorkerBudget: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fetch := func() []byte {
		resp, sn := postJob(t, ts.URL, tinyReq())
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		// Stream rows while the job runs: the handler must deliver the
		// full byte stream and terminate at job completion.
		rresp, err := http.Get(ts.URL + "/jobs/" + sn.ID + "/rows")
		if err != nil {
			t.Fatalf("GET rows: %v", err)
		}
		defer rresp.Body.Close()
		if ct := rresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
			t.Errorf("rows content type %q", ct)
		}
		data, err := io.ReadAll(rresp.Body)
		if err != nil {
			t.Fatalf("read rows: %v", err)
		}
		j, _ := s.Job(sn.ID)
		waitTerminal(t, j)
		if st := j.StateNow(); st != StateDone {
			t.Fatalf("job: %s (%s)", st, j.Err())
		}
		return data
	}

	cold := fetch()
	warm := fetch()
	if len(cold) == 0 {
		t.Fatal("no rows streamed")
	}
	if !bytes.Equal(cold, warm) {
		t.Error("warm (cache-hit) run streams different bytes than cold run")
	}
	if ctr := s.Cache().Counters(); ctr.Hits == 0 {
		t.Errorf("warm run hit no cached artifacts: %+v", ctr)
	}

	// Direct cache-free reference through the wave facade.
	req := tinyReq()
	if err := req.canonicalize(); err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	cfgJSON, _ := json.Marshal(req.Config)
	var buf bytes.Buffer
	sim, err := wave.FromConfig(strings.NewReader(string(cfgJSON)),
		wave.WithWorkers(req.Workers),
		wave.WithPartitioner(wave.Partitioner(req.Partitioner)),
		wave.WithSeed(req.Seed),
		wave.WithSink(wave.CSVSink(&buf)),
	)
	if err != nil {
		t.Fatalf("FromConfig: %v", err)
	}
	if err := sim.Run(context.Background(), 0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := sim.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !bytes.Equal(cold, buf.Bytes()) {
		t.Error("service rows diverge from direct cache-free CSVSink run")
	}
}

// TestJobStatusAndStats covers the polling surface: snapshots carry
// state transitions, stats and the config hash; /stats and /healthz
// respond; same-config submissions share a hash while priority does not
// perturb it.
func TestJobStatusAndStats(t *testing.T) {
	s := mustNew(t, Config{Concurrency: 1, WorkerBudget: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, sn := postJob(t, ts.URL, tinyReq())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if sn.State != StateQueued && sn.State != StateRunning {
		t.Errorf("fresh job state %s", sn.State)
	}
	if sn.Hash == "" {
		t.Error("snapshot missing config hash")
	}
	base, prio := tinyReq(), tinyReq()
	prio.Priority = 7
	if base.canonicalize() != nil || prio.canonicalize() != nil {
		t.Fatal("canonicalize failed")
	}
	if base.hash() != prio.hash() {
		t.Error("priority perturbs the config hash")
	}

	j, _ := s.Job(sn.ID)
	waitTerminal(t, j)
	gresp, err := http.Get(ts.URL + "/jobs/" + sn.ID)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	var got snapshot
	if err := json.NewDecoder(gresp.Body).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	gresp.Body.Close()
	if got.State != StateDone {
		t.Fatalf("finished job state %s (%s)", got.State, got.Error)
	}
	if got.Stats == nil || got.Stats.Cycles == 0 {
		t.Errorf("finished job missing stats: %+v", got.Stats)
	}
	if got.Rows == 0 {
		t.Error("finished job reports zero rows")
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v / %v", err, hresp)
	}
	hresp.Body.Close()
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var st StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	sresp.Body.Close()
	if st.Submitted != 1 || st.Done != 1 {
		t.Errorf("stats counters: %+v", st)
	}
	if st.WorkerBudget != 1 {
		t.Errorf("worker budget %d", st.WorkerBudget)
	}

	nresp, err := http.Get(ts.URL + "/jobs/nope")
	if err != nil {
		t.Fatalf("GET unknown: %v", err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", nresp.StatusCode)
	}
}

// TestSubmitValidation: malformed and invalid requests are rejected
// eagerly with 400, before any job is enqueued.
func TestSubmitValidation(t *testing.T) {
	s := mustNew(t, Config{Concurrency: 1, WorkerBudget: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []string{
		`{"mesh": "trench", "scale": 0.0005, "physics": "plasma"}`,
		`{"mesh": "nosuchmesh", "scale": 0.0005}`,
		`{"mesh": "trench", "scale": 0.0005, "workers": 99}`,
		`{"mesh": "trench", "unknown_knob": 3}`,
		`not json`,
	}
	for _, body := range cases {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if st := s.Stats(); st.Submitted != 0 {
		t.Errorf("invalid requests were enqueued: %+v", st)
	}
}

// TestPriorityOrdering: with the dispatcher pinned, a later high-priority
// job runs before earlier low-priority ones.
func TestPriorityOrdering(t *testing.T) {
	s := mustNew(t, Config{MaxQueue: 8, Concurrency: 1, WorkerBudget: 1})
	defer s.Close()

	blocker := tinyReq()
	blocker.Cycles = 100000
	bj, err := s.Submit(blocker)
	if err != nil {
		t.Fatalf("blocker: %v", err)
	}
	for i := 0; bj.StateNow() != StateRunning; i++ {
		if i > 1000 {
			t.Fatal("blocker never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	low, err := s.Submit(tinyReq())
	if err != nil {
		t.Fatalf("low: %v", err)
	}
	hiReq := tinyReq()
	hiReq.Priority = 5
	hi, err := s.Submit(hiReq)
	if err != nil {
		t.Fatalf("hi: %v", err)
	}
	s.Cancel(bj.ID)
	waitTerminal(t, hi)
	if low.StateNow() == StateDone && hi.StateNow() != StateDone {
		t.Error("low-priority job completed before high-priority job started")
	}
	// The high-priority job must have started no later than the
	// low-priority one.
	hiSn, lowSn := hi.snapshot(), low.snapshot()
	waitTerminal(t, low)
	if hiSn.Started == nil {
		t.Fatal("high-priority job never started")
	}
	if lowSn.Started != nil && lowSn.Started.Before(*hiSn.Started) {
		t.Error("low-priority job dispatched before high-priority job")
	}
}

// TestServerClose: Close cancels queued and running jobs and Submit
// afterwards reports ErrClosed.
func TestServerClose(t *testing.T) {
	s := mustNew(t, Config{MaxQueue: 4, Concurrency: 1, WorkerBudget: 1})
	blocker := tinyReq()
	blocker.Cycles = 100000
	bj, err := s.Submit(blocker)
	if err != nil {
		t.Fatalf("blocker: %v", err)
	}
	for i := 0; bj.StateNow() != StateRunning; i++ {
		if i > 1000 {
			t.Fatal("blocker never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	qj, err := s.Submit(tinyReq())
	if err != nil {
		t.Fatalf("queued: %v", err)
	}
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(60 * time.Second):
		t.Fatal("Close did not drain")
	}
	if st := bj.StateNow(); st != StateCancelled {
		t.Errorf("running job after Close: %s", st)
	}
	if st := qj.StateNow(); st != StateCancelled {
		t.Errorf("queued job after Close: %s", st)
	}
	if _, err := s.Submit(tinyReq()); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("Submit after Close: %v", err)
	}
}

// TestAutoTuneJobs: with Config.AutoTune set, jobs are placed with a
// calibrated deployment shape, the plan is cached so a same-config job
// reuses it without re-probing, and GET /stats lists each job's tuned
// shape.
func TestAutoTuneJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probes skipped in -short")
	}
	s := mustNew(t, Config{Concurrency: 1, WorkerBudget: 1, AutoTune: 30 * time.Second})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, sn1 := postJob(t, ts.URL, tinyReq())
	j1, _ := s.Job(sn1.ID)
	waitTerminal(t, j1)
	if st := j1.StateNow(); st != StateDone {
		t.Fatalf("tuned job finished %s (%s)", st, j1.Err())
	}
	st1, ok := j1.Stats()
	if !ok || st1.TunedWorkers < 1 {
		t.Fatalf("tuned job carries no plan: %+v", st1)
	}
	if st1.Workers != st1.TunedWorkers {
		t.Errorf("tuned shape not applied: ran %d workers, plan %d", st1.Workers, st1.TunedWorkers)
	}

	// Second identical job: the cached plan is reused (one tune artifact,
	// no second probe sweep) and reports the same shape.
	misses := s.Cache().Counters().Misses
	_, sn2 := postJob(t, ts.URL, tinyReq())
	j2, _ := s.Job(sn2.ID)
	waitTerminal(t, j2)
	st2, ok := j2.Stats()
	if !ok || st2.TunedWorkers != st1.TunedWorkers {
		t.Errorf("cached plan not reused: %+v vs %+v", st2, st1)
	}
	if d := s.Cache().Counters().Misses - misses; d != 0 {
		t.Errorf("second same-config job rebuilt %d artifacts, want 0", d)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	resp.Body.Close()
	if len(stats.Jobs) != 2 {
		t.Fatalf("stats lists %d jobs, want 2: %+v", len(stats.Jobs), stats.Jobs)
	}
	for _, js := range stats.Jobs {
		if js.TunedWorkers != st1.TunedWorkers {
			t.Errorf("job %s tuned_workers %d, want %d", js.ID, js.TunedWorkers, st1.TunedWorkers)
		}
		if js.State != StateDone {
			t.Errorf("job %s state %s in summary", js.ID, js.State)
		}
	}
}
