package serve

import (
	"container/heap"
	"time"
)

// jobHeap is the pending-job priority queue: higher Priority first,
// FIFO (submission order) within a class. It implements heap.Interface;
// Server holds it under its mutex. Jobs track their heap index so a
// cancelled queued job can be removed in O(log n), releasing its queue
// slot immediately.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }

func (h jobHeap) Less(i, j int) bool {
	if h[i].req.Priority != h[j].req.Priority {
		return h[i].req.Priority > h[j].req.Priority
	}
	return h[i].seq < h[j].seq
}

func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (h *jobHeap) Push(x any) {
	j := x.(*Job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}

func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	*h = old[:n-1]
	return j
}

// popFit removes and returns the best job whose worker demand fits the
// available budget and whose retry backoff (notBefore) has elapsed, or
// nil if none qualifies. Candidates are probed in heap order by
// repeatedly popping, so the best-fitting job is still the
// highest-priority one that fits; skipped jobs are pushed back.
// notBefore is written only while a job is out of the heap, so reading
// it under the server mutex is race-free.
func (h *jobHeap) popFit(avail int, now time.Time) *Job {
	var skipped []*Job
	var picked *Job
	for h.Len() > 0 {
		j := heap.Pop(h).(*Job)
		if j.workers <= avail && !j.notBefore.After(now) {
			picked = j
			break
		}
		skipped = append(skipped, j)
	}
	for _, j := range skipped {
		heap.Push(h, j)
	}
	return picked
}

// remove deletes the job from the heap if it is still queued there.
func (h *jobHeap) remove(j *Job) bool {
	if j.heapIdx < 0 || j.heapIdx >= h.Len() || (*h)[j.heapIdx] != j {
		return false
	}
	heap.Remove(h, j.heapIdx)
	return true
}
