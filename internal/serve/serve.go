// Package serve is the long-running simulation service behind cmd/waved:
// an HTTP/JSON job API over the wave facade with a bounded priority
// queue, per-job cancellation, and a process-wide artifact cache keyed
// by canonical configuration hash.
//
// Lifecycle: POST /jobs enqueues a simulation and returns its id; the
// dispatcher runs up to Concurrency jobs at once, each admitted against
// a shared worker budget; GET /jobs/{id} polls state and final
// wave.Stats; GET /jobs/{id}/rows streams seismogram CSV rows as they
// are produced (byte-identical to the wave.CSVSink encoding, and — via
// the artifact cache — bitwise identical between cold and cache-hit
// runs of one configuration); DELETE /jobs/{id} cancels a queued or
// running job, releasing its queue slot immediately. GET /healthz and
// GET /stats expose liveness and the queue/cache counters.
//
// Identical configurations share build artifacts (mesh, operator,
// partition, batch plans) through a single wave.ArtifactCache with
// single-flight construction: two same-config jobs submitted
// concurrently build each artifact exactly once.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"container/heap"

	"golts/internal/decomp"
	"golts/internal/simio"
	"golts/wave"
)

// Config sizes a Server. Zero values select the documented defaults.
type Config struct {
	// MaxQueue bounds the pending queue; submissions beyond it are
	// rejected with 429. Default 64.
	MaxQueue int
	// Concurrency is the number of simulations run simultaneously.
	// Default 2.
	Concurrency int
	// WorkerBudget is the total shared-memory worker count divided among
	// the in-flight simulations: a job demanding w workers is dispatched
	// only when w fit the remaining budget. Default max(Concurrency,
	// GOMAXPROCS is deliberately NOT consulted — the budget is explicit
	// so results stay machine-independent).
	WorkerBudget int
	// CacheSize bounds the artifact cache (entries). Default
	// wave.DefaultArtifactCacheSize.
	CacheSize int
}

// ErrQueueFull is returned by Submit when the pending queue is at
// capacity; the HTTP layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: server closed")

// JobRequest is the POST /jobs payload: a simulation configuration (the
// cmd/wavesim JSON format) plus execution settings. Workers,
// Partitioner and Seed pin the decomposition and thus the result bits;
// they are part of the canonical config hash. Priority only orders the
// queue and is excluded from the hash.
type JobRequest struct {
	simio.Config
	// Priority orders pending jobs (higher first, FIFO within a class).
	Priority int `json:"priority"`
	// Workers is the shared-memory worker count (default 1; must fit the
	// server's WorkerBudget).
	Workers int `json:"workers"`
	// Partitioner names the element-partitioning strategy (default
	// "scotch-p").
	Partitioner string `json:"partitioner"`
	// Seed is the partitioner seed (default 1).
	Seed int64 `json:"seed"`
}

// canonicalize fills defaults so equal configurations hash equally, and
// validates everything an eager 400 should catch.
func (r *JobRequest) canonicalize() error {
	if err := r.Config.Validate(); err != nil {
		return err
	}
	if r.Workers == 0 {
		r.Workers = 1
	}
	if r.Partitioner == "" {
		r.Partitioner = string(wave.ScotchP)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	return wave.Validate(
		wave.WithMesh(r.Mesh, r.Scale),
		wave.WithWorkers(r.Workers),
		wave.WithPartitioner(wave.Partitioner(r.Partitioner)),
		wave.WithSeed(r.Seed),
	)
}

// hash is the canonical content hash: sha256 over the JSON encoding of
// every result-determining field (priority excluded).
func (r *JobRequest) hash() string {
	keyed := struct {
		Config      simio.Config `json:"config"`
		Workers     int          `json:"workers"`
		Partitioner string       `json:"partitioner"`
		Seed        int64        `json:"seed"`
	}{r.Config, r.Workers, r.Partitioner, r.Seed}
	raw, _ := json.Marshal(keyed)
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Server owns the job queue, the dispatcher goroutines and the shared
// artifact cache. Create with New, serve its Handler, stop with Close.
type Server struct {
	cfg   Config
	cache *wave.ArtifactCache

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu        sync.Mutex
	cond      *sync.Cond
	pending   jobHeap
	jobs      map[string]*Job
	nextID    int64
	nextSeq   int64
	inFlight  int
	availWork int
	closed    bool

	submitted, done, failed, cancelled int64
}

// New creates a Server and starts its dispatcher goroutines.
func New(cfg Config) *Server {
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 2
	}
	if cfg.WorkerBudget <= 0 {
		cfg.WorkerBudget = cfg.Concurrency
	}
	s := &Server{
		cfg:       cfg,
		cache:     wave.NewArtifactCache(cfg.CacheSize),
		jobs:      make(map[string]*Job),
		availWork: cfg.WorkerBudget,
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	for i := 0; i < cfg.Concurrency; i++ {
		s.wg.Add(1)
		go s.dispatch()
	}
	return s
}

// Cache exposes the server's artifact cache (read-only use: counters).
func (s *Server) Cache() *wave.ArtifactCache { return s.cache }

// Close stops accepting jobs, cancels everything queued or running, and
// waits for the dispatchers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for s.pending.Len() > 0 {
		j := heap.Pop(&s.pending).(*Job)
		s.cancelled++
		j.finish(StateCancelled, "server shutting down")
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.stop() // cancels the contexts of running jobs
	s.wg.Wait()
}

// Submit validates, enqueues and returns a new job. The request is
// canonicalized in place (defaults filled).
func (s *Server) Submit(req JobRequest) (*Job, error) {
	if err := req.canonicalize(); err != nil {
		return nil, err
	}
	if req.Workers > s.cfg.WorkerBudget {
		return nil, fmt.Errorf("serve: job demands %d workers, budget is %d", req.Workers, s.cfg.WorkerBudget)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.pending.Len() >= s.cfg.MaxQueue {
		return nil, ErrQueueFull
	}
	s.nextID++
	s.nextSeq++
	j := &Job{
		ID:       "j" + strconv.FormatInt(s.nextID, 10),
		Hash:     req.hash(),
		req:      req,
		workers:  req.Workers,
		seq:      s.nextSeq,
		heapIdx:  -1,
		rows:     newRowBuffer(),
		state:    StateQueued,
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	s.jobs[j.ID] = j
	heap.Push(&s.pending, j)
	s.submitted++
	s.cond.Signal()
	return j, nil
}

// Job returns a submitted job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels a job: a queued job leaves the queue (releasing its
// slot) and finishes Cancelled immediately; a running job's context is
// cancelled and it finishes as the run winds down. Returns false for
// unknown ids.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	if s.pending.remove(j) {
		s.cancelled++
		s.mu.Unlock()
		j.finish(StateCancelled, "cancelled while queued")
		return true
	}
	s.mu.Unlock()
	j.mu.Lock()
	if j.cancelRun != nil {
		j.cancelRun()
	}
	j.mu.Unlock()
	return true
}

// dispatch is one runner goroutine: it pulls the best pending job that
// fits the remaining worker budget and runs it to completion.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *Job
		for {
			if s.closed {
				s.mu.Unlock()
				return
			}
			if j = s.pending.popFit(s.availWork); j != nil {
				break
			}
			s.cond.Wait()
		}
		s.inFlight++
		s.availWork -= j.workers
		s.mu.Unlock()

		s.runJob(j)

		s.mu.Lock()
		s.inFlight--
		s.availWork += j.workers
		switch j.StateNow() {
		case StateDone:
			s.done++
		case StateFailed:
			s.failed++
		case StateCancelled:
			s.cancelled++
		}
		// A freed worker may unblock a wide job another dispatcher skipped.
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// runJob executes one simulation, feeding its CSV rows to the job's
// buffer and recording stats at the end.
func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.state.Terminal() { // cancelled between pop and here
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancelRun = cancel
	j.mu.Unlock()

	cfgJSON, err := json.Marshal(j.req.Config)
	if err != nil {
		j.finish(StateFailed, err.Error())
		return
	}
	sim, err := wave.FromConfig(strings.NewReader(string(cfgJSON)),
		wave.WithWorkers(j.req.Workers),
		wave.WithPartitioner(wave.Partitioner(j.req.Partitioner)),
		wave.WithSeed(j.req.Seed),
		wave.WithArtifactCache(s.cache),
		wave.WithSink(wave.RowCSVSink(j.rows.append)),
	)
	if err != nil {
		j.finish(StateFailed, err.Error())
		return
	}
	runErr := sim.Run(ctx, 0)
	stats := sim.Stats()
	closeErr := sim.Close()

	j.mu.Lock()
	j.stats = stats
	j.hasStats = true
	j.mu.Unlock()

	switch {
	case runErr != nil && errors.Is(runErr, context.Canceled):
		j.finish(StateCancelled, "cancelled while running")
	case runErr != nil:
		j.finish(StateFailed, runErr.Error())
	case closeErr != nil:
		j.finish(StateFailed, closeErr.Error())
	default:
		j.finish(StateDone, "")
	}
}

// StatsResponse is the GET /stats payload.
type StatsResponse struct {
	// QueueDepth is the number of pending jobs; InFlight the number
	// currently running.
	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`
	// WorkerBudget / WorkersInUse report the shared worker pool.
	WorkerBudget int `json:"worker_budget"`
	WorkersInUse int `json:"workers_in_use"`
	// Submitted/Done/Failed/Cancelled are lifetime job counts.
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	// Cache reports the artifact cache: traffic counters plus residency.
	Cache struct {
		decomp.MemoCounters
		Entries int `json:"entries"`
	} `json:"cache"`
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() StatsResponse {
	s.mu.Lock()
	resp := StatsResponse{
		QueueDepth:   s.pending.Len(),
		InFlight:     s.inFlight,
		WorkerBudget: s.cfg.WorkerBudget,
		WorkersInUse: s.cfg.WorkerBudget - s.availWork,
		Submitted:    s.submitted,
		Done:         s.done,
		Failed:       s.failed,
		Cancelled:    s.cancelled,
	}
	s.mu.Unlock()
	resp.Cache.MemoCounters = s.cache.Counters()
	resp.Cache.Entries = s.cache.Len()
	return resp
}

// Handler returns the HTTP API. Routes:
//
//	POST   /jobs            submit (202 + {id,hash,state}; 429 when full)
//	GET    /jobs/{id}       job status + final stats
//	GET    /jobs/{id}/rows  stream seismogram CSV rows (text/csv)
//	DELETE /jobs/{id}       cancel
//	GET    /healthz         liveness
//	GET    /stats           queue depth, in-flight, cache counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST /jobs")
			return
		}
		var req JobRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "malformed request: "+err.Error())
			return
		}
		j, err := s.Submit(req)
		switch {
		case errors.Is(err, ErrQueueFull):
			httpError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case err != nil:
			httpError(w, http.StatusBadRequest, err.Error())
		default:
			writeJSON(w, http.StatusAccepted, j.snapshot())
		}
	})
	mux.HandleFunc("/jobs/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
		id, sub, _ := strings.Cut(rest, "/")
		j, ok := s.Job(id)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job "+id)
			return
		}
		switch {
		case sub == "" && r.Method == http.MethodGet:
			writeJSON(w, http.StatusOK, j.snapshot())
		case sub == "" && r.Method == http.MethodDelete:
			s.Cancel(id)
			writeJSON(w, http.StatusOK, j.snapshot())
		case sub == "rows" && r.Method == http.MethodGet:
			s.streamRows(w, r, j)
		default:
			httpError(w, http.StatusNotFound, "unknown route")
		}
	})
	return mux
}

// streamRows writes the job's CSV rows to the client as they appear:
// the retained prefix first, then live rows until the job reaches a
// terminal state or the client disconnects. Concatenated rows are
// byte-identical to a wave.CSVSink file of the same run.
func (s *Server) streamRows(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		rows, done, wait := j.rows.next(sent)
		if len(rows) > 0 {
			for _, row := range rows {
				if _, err := w.Write(row); err != nil {
					return
				}
			}
			sent += len(rows)
			if flusher != nil {
				flusher.Flush()
			}
			continue
		}
		if done {
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
