// Package serve is the long-running simulation service behind cmd/waved:
// an HTTP/JSON job API over the wave facade with a bounded priority
// queue, per-job cancellation, and a process-wide artifact cache keyed
// by canonical configuration hash.
//
// Lifecycle: POST /jobs enqueues a simulation and returns its id; the
// dispatcher runs up to Concurrency jobs at once, each admitted against
// a shared worker budget; GET /jobs/{id} polls state and final
// wave.Stats; GET /jobs/{id}/rows streams seismogram CSV rows as they
// are produced (byte-identical to the wave.CSVSink encoding, and — via
// the artifact cache — bitwise identical between cold and cache-hit
// runs of one configuration); DELETE /jobs/{id} cancels a queued or
// running job, releasing its queue slot immediately. GET /healthz and
// GET /stats expose liveness and the queue/cache counters.
//
// Identical configurations share build artifacts (mesh, operator,
// partition, batch plans) through a single wave.ArtifactCache with
// single-flight construction: two same-config jobs submitted
// concurrently build each artifact exactly once.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"container/heap"

	"golts/internal/ckpt"
	"golts/internal/decomp"
	"golts/internal/simio"
	"golts/wave"
)

// Config sizes a Server. Zero values select the documented defaults.
type Config struct {
	// MaxQueue bounds the pending queue; submissions beyond it are
	// rejected with 429. Default 64.
	MaxQueue int
	// Concurrency is the number of simulations run simultaneously.
	// Default 2.
	Concurrency int
	// WorkerBudget is the total shared-memory worker count divided among
	// the in-flight simulations: a job demanding w workers is dispatched
	// only when w fit the remaining budget. Default max(Concurrency,
	// GOMAXPROCS is deliberately NOT consulted — the budget is explicit
	// so results stay machine-independent).
	WorkerBudget int
	// CacheSize bounds the artifact cache (entries). Default
	// wave.DefaultArtifactCacheSize.
	CacheSize int
	// SpoolDir enables durability: job specs, per-job simulation
	// checkpoints and streamed rows are persisted under it, unfinished
	// jobs replay on the next New with the same directory, and a job
	// whose checkpoint survived resumes mid-run with its already-streamed
	// rows preserved byte for byte. Empty disables.
	SpoolDir string
	// CheckpointEvery is the per-job checkpoint interval in cycles when
	// SpoolDir is set (default 4).
	CheckpointEvery int
	// RetryBaseDelay is the first retry's backoff for jobs that fail with
	// an infrastructure error; it doubles per retry, capped at 30 s.
	// Default 500 ms.
	RetryBaseDelay time.Duration
	// AutoTune, when positive, runs every job under wave.WithAutoTune
	// with this probing budget: the first build of each configuration
	// calibrates a deployment shape (worker count, kernel) and the plan is
	// cached in the shared artifact cache, so same-config jobs pay the
	// probes once. Zero disables tuning (jobs run at their requested
	// worker count). Note the budget accounting still charges each job its
	// requested Workers — the tuned count applies inside the simulation.
	AutoTune time.Duration
}

// ErrQueueFull is returned by Submit when the pending queue is at
// capacity; the HTTP layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: server closed")

// JobRequest is the POST /jobs payload: a simulation configuration (the
// cmd/wavesim JSON format) plus execution settings. Workers,
// Partitioner and Seed pin the decomposition and thus the result bits;
// they are part of the canonical config hash. Priority only orders the
// queue and is excluded from the hash.
type JobRequest struct {
	simio.Config
	// Priority orders pending jobs (higher first, FIFO within a class).
	Priority int `json:"priority"`
	// Workers is the shared-memory worker count (default 1; must fit the
	// server's WorkerBudget).
	Workers int `json:"workers"`
	// Partitioner names the element-partitioning strategy (default
	// "scotch-p").
	Partitioner string `json:"partitioner"`
	// Seed is the partitioner seed (default 1).
	Seed int64 `json:"seed"`
	// MaxRetries is how many times an infrastructure failure (anything
	// that is not a typed configuration rejection) is retried with
	// exponential backoff before the job fails for good. Excluded from
	// the canonical hash: it does not affect results.
	MaxRetries int `json:"max_retries"`
	// Ranks, when positive, runs the job on the distributed backend with
	// this many spawned rank processes, decomposed at Workers parts — the
	// decomposition, not the process count, pins the assembly order, so
	// the rows are byte-identical to the local run of the same request.
	// Excluded from the canonical hash for the same reason. Requires
	// Workers >= Ranks.
	Ranks int `json:"ranks"`
	// MinRanks, when positive, enables degraded mode for a distributed
	// job: a rank that exhausts its recovery budget is retired and its
	// parts are redistributed onto the survivors, down to this floor.
	// Excluded from the canonical hash (results stay bitwise identical).
	MinRanks int `json:"min_ranks"`
	// MaxRecoveries bounds rank-failure recoveries per rank configuration
	// for a distributed job (0: backend default). Excluded from the
	// canonical hash.
	MaxRecoveries int `json:"max_recoveries"`
}

// distBackend is the distributed backend a Ranks > 0 request resolves
// to: Parts is pinned to Workers so the decomposition (and therefore
// every result bit) matches the local run of the same request.
func (r *JobRequest) distBackend() wave.Distributed {
	return wave.Distributed{
		Ranks:         r.Ranks,
		Parts:         r.Workers,
		MaxRecoveries: r.MaxRecoveries,
		DegradedMode:  r.MinRanks > 0,
		MinRanks:      r.MinRanks,
	}
}

// canonicalize fills defaults so equal configurations hash equally, and
// validates everything an eager 400 should catch.
func (r *JobRequest) canonicalize() error {
	if err := r.Config.Validate(); err != nil {
		return err
	}
	if r.Workers == 0 {
		r.Workers = 1
	}
	if r.Partitioner == "" {
		r.Partitioner = string(wave.ScotchP)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Ranks < 0 {
		return fmt.Errorf("serve: ranks %d out of range", r.Ranks)
	}
	if r.MaxRecoveries < 0 {
		return fmt.Errorf("serve: max_recoveries %d out of range", r.MaxRecoveries)
	}
	if r.MinRanks > 0 && r.Ranks == 0 {
		return fmt.Errorf("serve: min_ranks requires ranks > 0")
	}
	execOpt := wave.WithWorkers(r.Workers)
	if r.Ranks > 0 {
		// The distributed backend refuses WithWorkers > 1; Workers becomes
		// the decomposition width instead (Parts), so it must cover Ranks.
		execOpt = wave.WithBackend(r.distBackend())
	}
	return wave.Validate(
		wave.WithMesh(r.Mesh, r.Scale),
		execOpt,
		wave.WithPartitioner(wave.Partitioner(r.Partitioner)),
		wave.WithSeed(r.Seed),
	)
}

// hash is the canonical content hash: sha256 over the JSON encoding of
// every result-determining field (priority excluded).
func (r *JobRequest) hash() string {
	keyed := struct {
		Config      simio.Config `json:"config"`
		Workers     int          `json:"workers"`
		Partitioner string       `json:"partitioner"`
		Seed        int64        `json:"seed"`
	}{r.Config, r.Workers, r.Partitioner, r.Seed}
	raw, _ := json.Marshal(keyed)
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Server owns the job queue, the dispatcher goroutines and the shared
// artifact cache. Create with New, serve its Handler, stop with Close.
type Server struct {
	cfg   Config
	cache *wave.ArtifactCache

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu        sync.Mutex
	cond      *sync.Cond
	pending   jobHeap
	jobs      map[string]*Job
	nextID    int64
	nextSeq   int64
	inFlight  int
	availWork int
	closed    bool

	spool *spool

	submitted, done, failed, cancelled int64
	replayed, retried, resumed         int64
	checkpoints, recoveries            int64
	rebalances                         int64
	degraded, corruptFrames            int64
	linkRetries                        int64

	// testRunFault, when set, is invoked before each attempt's Run; a
	// non-nil return is treated as that attempt's infrastructure failure.
	// Test hook only.
	testRunFault func(j *Job, attempt int) error
}

// New creates a Server and starts its dispatcher goroutines. With
// Config.SpoolDir set it first replays every job spec persisted by a
// previous instance: replayed jobs re-enter the queue in their original
// submission order (and resume from their spooled checkpoint when they
// reach a dispatcher).
func New(cfg Config) (*Server, error) {
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 2
	}
	if cfg.WorkerBudget <= 0 {
		cfg.WorkerBudget = cfg.Concurrency
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 4
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = 500 * time.Millisecond
	}
	s := &Server{
		cfg:       cfg,
		cache:     wave.NewArtifactCache(cfg.CacheSize),
		jobs:      make(map[string]*Job),
		availWork: cfg.WorkerBudget,
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	if cfg.SpoolDir != "" {
		sp, err := newSpool(cfg.SpoolDir)
		if err != nil {
			return nil, err
		}
		s.spool = sp
		s.replay()
	}
	for i := 0; i < cfg.Concurrency; i++ {
		s.wg.Add(1)
		go s.dispatch()
	}
	return s, nil
}

// replay re-enqueues every spooled job spec, before the dispatchers
// start. Specs that no longer validate are dropped from the spool.
func (s *Server) replay() {
	for _, sj := range s.spool.loadJobs() {
		req := sj.Req
		if err := req.canonicalize(); err != nil || req.Workers > s.cfg.WorkerBudget {
			s.spool.remove(sj.ID)
			continue
		}
		if n := jobNum(sj.ID); n > s.nextID {
			s.nextID = n
		}
		s.nextSeq++
		j := &Job{
			ID:       sj.ID,
			Hash:     req.hash(),
			req:      req,
			workers:  req.Workers,
			seq:      s.nextSeq,
			heapIdx:  -1,
			rows:     newRowBuffer(),
			state:    StateQueued,
			enqueued: time.Now(),
			done:     make(chan struct{}),
			retries:  sj.Retries,
		}
		s.jobs[j.ID] = j
		heap.Push(&s.pending, j)
		s.replayed++
	}
}

// Cache exposes the server's artifact cache (read-only use: counters).
func (s *Server) Cache() *wave.ArtifactCache { return s.cache }

// Close stops accepting jobs and waits for the dispatchers to drain.
// Without a spool, everything queued or running is cancelled. With one,
// pending and interrupted jobs keep their spool entries (their in-memory
// state stays queued, untouched) so a successor server replays them —
// Close is the graceful half of a restart, not a discard.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for s.pending.Len() > 0 {
		j := heap.Pop(&s.pending).(*Job)
		if s.spool != nil {
			continue // spec stays spooled for the next instance
		}
		s.cancelled++
		j.finish(StateCancelled, "server shutting down")
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.stop() // cancels the contexts of running jobs
	s.wg.Wait()
}

// Submit validates, enqueues and returns a new job. The request is
// canonicalized in place (defaults filled).
func (s *Server) Submit(req JobRequest) (*Job, error) {
	if err := req.canonicalize(); err != nil {
		return nil, err
	}
	if req.Workers > s.cfg.WorkerBudget {
		return nil, fmt.Errorf("serve: job demands %d workers, budget is %d", req.Workers, s.cfg.WorkerBudget)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.pending.Len() >= s.cfg.MaxQueue {
		return nil, ErrQueueFull
	}
	s.nextID++
	s.nextSeq++
	j := &Job{
		ID:       "j" + strconv.FormatInt(s.nextID, 10),
		Hash:     req.hash(),
		req:      req,
		workers:  req.Workers,
		seq:      s.nextSeq,
		heapIdx:  -1,
		rows:     newRowBuffer(),
		state:    StateQueued,
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	if s.spool != nil {
		if err := s.spool.saveJob(spoolJob{ID: j.ID, Req: req}); err != nil {
			s.nextID--
			s.nextSeq--
			return nil, err
		}
	}
	s.jobs[j.ID] = j
	heap.Push(&s.pending, j)
	s.submitted++
	s.cond.Signal()
	return j, nil
}

// Job returns a submitted job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels a job: a queued job leaves the queue (releasing its
// slot) and finishes Cancelled immediately; a running job's context is
// cancelled and it finishes as the run winds down. Returns false for
// unknown ids.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	if s.pending.remove(j) {
		s.cancelled++
		s.mu.Unlock()
		if s.spool != nil {
			s.spool.remove(j.ID)
		}
		j.finish(StateCancelled, "cancelled while queued")
		return true
	}
	s.mu.Unlock()
	j.mu.Lock()
	if j.cancelRun != nil {
		j.cancelRun()
	}
	j.mu.Unlock()
	return true
}

// dispatch is one runner goroutine: it pulls the best pending job that
// fits the remaining worker budget and runs it to completion.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *Job
		for {
			if s.closed {
				s.mu.Unlock()
				return
			}
			if j = s.pending.popFit(s.availWork, time.Now()); j != nil {
				break
			}
			s.cond.Wait()
		}
		s.inFlight++
		s.availWork -= j.workers
		s.mu.Unlock()

		s.runJob(j)

		s.mu.Lock()
		s.inFlight--
		s.availWork += j.workers
		switch j.StateNow() {
		case StateDone:
			s.done++
		case StateFailed:
			s.failed++
		case StateCancelled:
			s.cancelled++
		}
		// A freed worker may unblock a wide job another dispatcher skipped.
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// runJob executes one attempt of a job: build (or resume), run, then
// classify the outcome — done, cancelled, parked for replay (spooled
// shutdown), retried with backoff (infrastructure failure), or failed
// for good (configuration rejection / exhausted retries).
func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.state.Terminal() { // cancelled between pop and here
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancelRun = cancel
	attempt := j.retries
	j.mu.Unlock()

	runErr := s.runSim(ctx, j, attempt)

	switch {
	case runErr == nil:
		if s.spool != nil {
			s.spool.remove(j.ID)
		}
		j.finish(StateDone, "")
	case errors.Is(runErr, context.Canceled):
		if s.spool != nil && s.isClosed() {
			// Shutdown, not a user cancellation: park the job queued; its
			// spool entry (and newest checkpoint) replays on the next start.
			j.mu.Lock()
			j.cancelRun = nil
			j.state = StateQueued
			j.mu.Unlock()
			return
		}
		if s.spool != nil {
			s.spool.remove(j.ID)
		}
		j.finish(StateCancelled, "cancelled while running")
	default:
		s.failJob(j, runErr)
	}
}

// runSim performs one simulation attempt. With a spool it resumes from
// the job's persisted checkpoint when one exists (trimming the rows file
// to the checkpoint cycle and preloading those rows into the stream
// buffer, so the delivered bytes stay identical to an uninterrupted
// run), streams every new row to disk before the facade checkpoints the
// cycle, and checkpoints every Config.CheckpointEvery cycles.
func (s *Server) runSim(ctx context.Context, j *Job, attempt int) error {
	cfgJSON, err := json.Marshal(j.req.Config)
	if err != nil {
		return &wave.OptionError{Option: "FromConfig", Err: err}
	}
	opts, err := wave.ConfigOptions(bytes.NewReader(cfgJSON))
	if err != nil {
		return &wave.OptionError{Option: "FromConfig", Err: err}
	}
	execOpt := wave.WithWorkers(j.req.Workers)
	if j.req.Ranks > 0 {
		execOpt = wave.WithBackend(j.req.distBackend())
	}
	opts = append(opts,
		execOpt,
		wave.WithPartitioner(wave.Partitioner(j.req.Partitioner)),
		wave.WithSeed(j.req.Seed),
		wave.WithArtifactCache(s.cache),
	)
	if s.cfg.AutoTune > 0 {
		opts = append(opts, wave.WithAutoTune(s.cfg.AutoTune))
	}

	// A retry rebuilds the stream, so the buffer restarts empty (and is
	// refilled from the spooled prefix on resume).
	j.rows.reset()

	var sim *wave.Simulation
	var rowsFile *os.File
	if s.spool == nil {
		sim, err = wave.New(append(opts, wave.WithSink(wave.RowCSVSink(j.rows.append)))...)
		if err != nil {
			return err
		}
	} else {
		var preload [][]byte
		sim, preload, rowsFile, err = s.buildSpooled(j, opts)
		if err != nil {
			return err
		}
		defer rowsFile.Close()
		for _, row := range preload {
			j.rows.append(row)
		}
	}

	if s.testRunFault != nil {
		if ferr := s.testRunFault(j, attempt); ferr != nil {
			sim.Close()
			return ferr
		}
	}

	runErr := sim.Run(ctx, 0)
	stats := sim.Stats()
	closeErr := sim.Close()

	j.mu.Lock()
	j.stats = stats
	j.hasStats = true
	j.mu.Unlock()
	s.mu.Lock()
	s.checkpoints += stats.Checkpoints
	s.recoveries += int64(stats.Recoveries)
	s.rebalances += int64(stats.Rebalances)
	s.degraded += int64(stats.DegradedRanks)
	s.corruptFrames += stats.CorruptFrames
	s.linkRetries += stats.LinkRetries
	s.mu.Unlock()

	if runErr != nil {
		return runErr
	}
	return closeErr
}

// buildSpooled constructs the attempt's simulation against the spool:
// resumed from the persisted checkpoint when it is usable (returning the
// trimmed row prefix for the stream buffer), from scratch otherwise. The
// simulation's row sink appends to the spooled rows file before the
// row enters the in-memory buffer — and, by the facade's ordering,
// before the cycle's checkpoint is written.
func (s *Server) buildSpooled(j *Job, opts []wave.Option) (*wave.Simulation, [][]byte, *os.File, error) {
	ckptPath := s.spool.ckptPath(j.ID)
	rowsPath := s.spool.rowsPath(j.ID)
	opts = append(opts, wave.WithCheckpointEvery(ckptPath, s.cfg.CheckpointEvery))

	// skip swallows the duplicate header a resumed simulation's sink
	// emits on Open; the spooled prefix already carries one.
	skip := 0
	var rf *os.File
	rowFn := func(row []byte) error {
		if skip > 0 {
			skip--
			return nil
		}
		if _, err := rf.Write(row); err != nil {
			return err
		}
		return j.rows.append(row)
	}
	sinkOpt := wave.WithSink(wave.RowCSVSink(rowFn))

	var preload [][]byte
	var sim *wave.Simulation
	if f, err := ckpt.ReadFile(ckptPath); err == nil {
		if meta, err := f.Meta(); err == nil {
			if rows, ok := s.spool.trimRows(j.ID, 1+int(meta.Cycle)); ok {
				if rsim, rerr := wave.Resume(ckptPath, append(opts, sinkOpt)...); rerr == nil {
					sim = rsim
					preload = rows
					skip = 1
					s.mu.Lock()
					s.resumed++
					s.mu.Unlock()
				}
			}
		}
	}
	if sim == nil {
		// No checkpoint, or one this configuration can no longer use:
		// scrap the partial state and recompute from cycle 0.
		os.Remove(ckptPath)
		os.Remove(rowsPath)
		var err error
		sim, err = wave.New(append(opts, sinkOpt)...)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	f, err := os.OpenFile(rowsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		sim.Close()
		return nil, nil, nil, err
	}
	rf = f
	return sim, preload, f, nil
}

// failJob classifies a failed attempt. A typed configuration rejection
// (*wave.OptionError) can never succeed on retry and fails immediately
// with kind "config"; anything else is infrastructure, retried with
// exponential backoff while the budget lasts, then failed with kind
// "infra".
func (s *Server) failJob(j *Job, cause error) {
	var oe *wave.OptionError
	if errors.As(cause, &oe) {
		if s.spool != nil {
			s.spool.remove(j.ID)
		}
		j.failTerminal("config", cause.Error())
		return
	}
	j.mu.Lock()
	retries := j.retries
	j.mu.Unlock()
	if retries < j.req.MaxRetries && !s.isClosed() {
		delay := s.cfg.RetryBaseDelay << retries
		if max := 30 * time.Second; delay > max {
			delay = max
		}
		j.mu.Lock()
		j.retries++
		j.err = cause.Error()
		j.errKind = "infra"
		j.state = StateQueued
		j.cancelRun = nil
		j.notBefore = time.Now().Add(delay)
		j.mu.Unlock()
		if s.spool != nil {
			s.spool.saveJob(spoolJob{ID: j.ID, Retries: retries + 1, Req: j.req})
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		heap.Push(&s.pending, j)
		s.retried++
		s.mu.Unlock()
		time.AfterFunc(delay, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		return
	}
	if s.spool != nil {
		s.spool.remove(j.ID)
	}
	j.failTerminal("infra", cause.Error())
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// StatsResponse is the GET /stats payload.
type StatsResponse struct {
	// QueueDepth is the number of pending jobs; InFlight the number
	// currently running.
	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`
	// WorkerBudget / WorkersInUse report the shared worker pool.
	WorkerBudget int `json:"worker_budget"`
	WorkersInUse int `json:"workers_in_use"`
	// Submitted/Done/Failed/Cancelled are lifetime job counts.
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	// Durability counters (all zero without a spool): Replayed jobs were
	// re-enqueued from a previous instance's spool, Retried counts backoff
	// retries after infrastructure failures, Resumed counts attempts that
	// restarted mid-run from a spooled checkpoint. Checkpoints and
	// Recoveries aggregate wave.Stats over every completed attempt.
	Replayed    int64 `json:"replayed"`
	Retried     int64 `json:"retried"`
	Resumed     int64 `json:"resumed"`
	Checkpoints int64 `json:"checkpoints"`
	Recoveries  int64 `json:"recoveries"`
	// Rebalances aggregates the mid-run part→rank remaps of every
	// completed attempt (zero unless jobs ran distributed with automatic
	// rebalancing on).
	Rebalances int64 `json:"rebalances"`
	// DegradedRanks aggregates the ranks permanently retired across every
	// completed attempt (zero unless distributed jobs ran degraded);
	// CorruptFrames counts wire frames rejected by CRC and LinkRetries the
	// connection attempts retried with backoff, both summed the same way.
	DegradedRanks int64 `json:"degraded_ranks"`
	CorruptFrames int64 `json:"corrupt_frames"`
	LinkRetries   int64 `json:"link_retries"`
	// Jobs lists, per completed attempt, the tuned deployment shape and
	// rebalance count — the observable effect of Config.AutoTune and the
	// runtime load balancer on each job.
	Jobs []JobSummary `json:"jobs,omitempty"`
	// Cache reports the artifact cache: traffic counters plus residency.
	Cache struct {
		decomp.MemoCounters
		Entries int `json:"entries"`
	} `json:"cache"`
}

// JobSummary is one job's tuning line in the /stats payload. Jobs whose
// attempts have not produced stats yet (queued, still running their
// first attempt) are omitted.
type JobSummary struct {
	ID           string `json:"id"`
	State        State  `json:"state"`
	TunedWorkers int    `json:"tuned_workers,omitempty"`
	TunedRanks   int    `json:"tuned_ranks,omitempty"`
	Rebalances   int    `json:"rebalances,omitempty"`
	// DegradedRanks is how many ranks the job's distributed run retired
	// permanently (degraded mode); zero for local and fault-free runs.
	DegradedRanks int `json:"degraded_ranks,omitempty"`
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() StatsResponse {
	s.mu.Lock()
	resp := StatsResponse{
		QueueDepth:    s.pending.Len(),
		InFlight:      s.inFlight,
		WorkerBudget:  s.cfg.WorkerBudget,
		WorkersInUse:  s.cfg.WorkerBudget - s.availWork,
		Submitted:     s.submitted,
		Done:          s.done,
		Failed:        s.failed,
		Cancelled:     s.cancelled,
		Replayed:      s.replayed,
		Retried:       s.retried,
		Resumed:       s.resumed,
		Checkpoints:   s.checkpoints,
		Recoveries:    s.recoveries,
		Rebalances:    s.rebalances,
		DegradedRanks: s.degraded,
		CorruptFrames: s.corruptFrames,
		LinkRetries:   s.linkRetries,
	}
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.hasStats {
			resp.Jobs = append(resp.Jobs, JobSummary{
				ID:            j.ID,
				State:         j.state,
				TunedWorkers:  j.stats.TunedWorkers,
				TunedRanks:    j.stats.TunedRanks,
				Rebalances:    j.stats.Rebalances,
				DegradedRanks: j.stats.DegradedRanks,
			})
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	sort.Slice(resp.Jobs, func(a, b int) bool {
		return jobNum(resp.Jobs[a].ID) < jobNum(resp.Jobs[b].ID)
	})
	resp.Cache.MemoCounters = s.cache.Counters()
	resp.Cache.Entries = s.cache.Len()
	return resp
}

// Handler returns the HTTP API. Routes:
//
//	POST   /jobs            submit (202 + {id,hash,state}; 429 when full)
//	GET    /jobs/{id}       job status + final stats
//	GET    /jobs/{id}/rows  stream seismogram CSV rows (text/csv)
//	DELETE /jobs/{id}       cancel
//	GET    /healthz         liveness
//	GET    /stats           queue depth, in-flight, cache counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST /jobs")
			return
		}
		var req JobRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "malformed request: "+err.Error())
			return
		}
		j, err := s.Submit(req)
		switch {
		case errors.Is(err, ErrQueueFull):
			httpError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case err != nil:
			httpError(w, http.StatusBadRequest, err.Error())
		default:
			writeJSON(w, http.StatusAccepted, j.snapshot())
		}
	})
	mux.HandleFunc("/jobs/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
		id, sub, _ := strings.Cut(rest, "/")
		j, ok := s.Job(id)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job "+id)
			return
		}
		switch {
		case sub == "" && r.Method == http.MethodGet:
			writeJSON(w, http.StatusOK, j.snapshot())
		case sub == "" && r.Method == http.MethodDelete:
			s.Cancel(id)
			writeJSON(w, http.StatusOK, j.snapshot())
		case sub == "rows" && r.Method == http.MethodGet:
			s.streamRows(w, r, j)
		default:
			httpError(w, http.StatusNotFound, "unknown route")
		}
	})
	return mux
}

// streamRows writes the job's CSV rows to the client as they appear:
// the retained prefix first, then live rows until the job reaches a
// terminal state or the client disconnects. Concatenated rows are
// byte-identical to a wave.CSVSink file of the same run.
func (s *Server) streamRows(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		rows, done, wait := j.rows.next(sent)
		if len(rows) > 0 {
			for _, row := range rows {
				if _, err := w.Write(row); err != nil {
					return
				}
			}
			sent += len(rows)
			if flusher != nil {
				flusher.Flush()
			}
			continue
		}
		if done {
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
