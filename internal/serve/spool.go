package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// spool is the server's durability layer: a directory holding, per job,
// the submitted request (jobs/<id>.json), the newest simulation
// checkpoint (ckpt/<id>.ckpt, written by the wave facade) and the CSV
// rows streamed so far (rows/<id>.csv). A restarted server replays every
// spooled job; one whose checkpoint survived resumes mid-run instead of
// recomputing from cycle 0.
//
// Invariant: the facade writes a cycle's sink rows before its
// checkpoint, so the rows file always holds at least 1+k lines (header
// plus one row per cycle) when the checkpoint says cycle k. Resume trims
// the rows file to exactly 1+k lines; a rows file that fell short (a
// crash between the row write reaching the page cache and the fsynced
// checkpoint) invalidates the checkpoint and the job restarts from
// scratch — never with a gap in its stream.
type spool struct {
	dir string
}

// spoolJob is the persisted form of a submitted job.
type spoolJob struct {
	ID      string     `json:"id"`
	Retries int        `json:"retries"`
	Req     JobRequest `json:"request"`
}

func newSpool(dir string) (*spool, error) {
	for _, sub := range []string{"jobs", "ckpt", "rows"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: spool: %w", err)
		}
	}
	return &spool{dir: dir}, nil
}

func (sp *spool) jobPath(id string) string  { return filepath.Join(sp.dir, "jobs", id+".json") }
func (sp *spool) ckptPath(id string) string { return filepath.Join(sp.dir, "ckpt", id+".ckpt") }
func (sp *spool) rowsPath(id string) string { return filepath.Join(sp.dir, "rows", id+".csv") }

// saveJob persists the job spec atomically (write-to-temp + rename).
func (sp *spool) saveJob(j spoolJob) error {
	raw, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("serve: spool: %w", err)
	}
	return atomicWrite(sp.jobPath(j.ID), raw)
}

// loadJobs reads every persisted job spec, in submission (numeric id)
// order. Unreadable entries are dropped and their files removed — a
// half-written spec from a crash mid-save must not wedge every restart.
func (sp *spool) loadJobs() []spoolJob {
	ents, err := os.ReadDir(filepath.Join(sp.dir, "jobs"))
	if err != nil {
		return nil
	}
	var jobs []spoolJob
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(sp.dir, "jobs", name))
		if err != nil {
			continue
		}
		var j spoolJob
		if err := json.Unmarshal(raw, &j); err != nil || j.ID != strings.TrimSuffix(name, ".json") {
			sp.remove(strings.TrimSuffix(name, ".json"))
			continue
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobNum(jobs[a].ID) < jobNum(jobs[b].ID) })
	return jobs
}

// jobNum extracts the numeric part of a "j<n>" id (0 for foreign ids).
func jobNum(id string) int64 {
	n, _ := strconv.ParseInt(strings.TrimPrefix(id, "j"), 10, 64)
	return n
}

// remove deletes every spooled file of the job.
func (sp *spool) remove(id string) {
	os.Remove(sp.jobPath(id))
	os.Remove(sp.ckptPath(id))
	os.Remove(sp.rowsPath(id))
}

// loadRows reads the job's persisted CSV rows (each including its
// newline), or nil if none exist.
func (sp *spool) loadRows(id string) [][]byte {
	raw, err := os.ReadFile(sp.rowsPath(id))
	if err != nil || len(raw) == 0 {
		return nil
	}
	var rows [][]byte
	for len(raw) > 0 {
		i := bytes.IndexByte(raw, '\n')
		if i < 0 {
			// Torn trailing row (crash mid-write): drop it.
			break
		}
		rows = append(rows, raw[:i+1])
		raw = raw[i+1:]
	}
	return rows
}

// trimRows rewrites the job's rows file to exactly n rows, atomically,
// and returns them. Returns false when fewer than n complete rows exist.
func (sp *spool) trimRows(id string, n int) ([][]byte, bool) {
	rows := sp.loadRows(id)
	if len(rows) < n {
		return nil, false
	}
	rows = rows[:n]
	if err := atomicWrite(sp.rowsPath(id), bytes.Join(rows, nil)); err != nil {
		return nil, false
	}
	return rows, true
}

func atomicWrite(path string, raw []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: spool: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: spool: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: spool: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: spool: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: spool: %w", err)
	}
	return nil
}
