package serve

import (
	"context"
	"sync"
	"time"

	"golts/wave"
)

// State is a job's lifecycle phase.
type State string

// The job lifecycle: Queued → Running → one of Done / Failed /
// Cancelled. A queued job cancelled before dispatch goes straight to
// Cancelled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one submitted simulation. All mutable fields are guarded by mu;
// the identity fields (ID, Hash, req, seq) are immutable after Submit.
type Job struct {
	ID   string
	Hash string // canonical config hash (artifact-cache key space)

	req     JobRequest
	workers int   // resolved worker demand against the server budget
	seq     int64 // FIFO tiebreak within a priority class
	heapIdx int   // index in the pending heap; -1 once dispatched

	rows *rowBuffer

	mu        sync.Mutex
	state     State
	err       string
	errKind   string // "config" (never retried) or "infra" (retried)
	stats     wave.Stats
	hasStats  bool
	enqueued  time.Time
	started   time.Time
	finished  time.Time
	cancelRun context.CancelFunc // set while running
	done      chan struct{}      // closed on any terminal transition

	// retries counts completed failed attempts; notBefore delays the next
	// dispatch (exponential backoff). Both are written only while the job
	// is out of the pending heap.
	retries   int
	notBefore time.Time
}

// snapshot is the wire form of a job's status.
type snapshot struct {
	ID        string      `json:"id"`
	Hash      string      `json:"hash"`
	State     State       `json:"state"`
	Error     string      `json:"error,omitempty"`
	ErrorKind string      `json:"error_kind,omitempty"`
	Retries   int         `json:"retries,omitempty"`
	Rows      int         `json:"rows"`
	Enqueued  time.Time   `json:"enqueued"`
	Started   *time.Time  `json:"started,omitempty"`
	Finished  *time.Time  `json:"finished,omitempty"`
	Stats     *wave.Stats `json:"stats,omitempty"`
	// DegradedRanks surfaces permanent rank retirements (degraded mode)
	// without making clients dig through Stats.
	DegradedRanks int `json:"degraded_ranks,omitempty"`
}

func (j *Job) snapshot() snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	sn := snapshot{
		ID:        j.ID,
		Hash:      j.Hash,
		State:     j.state,
		Error:     j.err,
		ErrorKind: j.errKind,
		Retries:   j.retries,
		Rows:      j.rows.len(),
		Enqueued:  j.enqueued,
	}
	if !j.started.IsZero() {
		t := j.started
		sn.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		sn.Finished = &t
	}
	if j.hasStats {
		st := j.stats
		sn.Stats = &st
		sn.DegradedRanks = st.DegradedRanks
	}
	return sn
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state State, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.err = errMsg
	if errMsg == "" {
		// A clean finish clears classification left by retried attempts.
		j.errKind = ""
	}
	j.finished = time.Now()
	j.cancelRun = nil
	close(j.done)
	j.rows.closeBuf()
}

// failTerminal finishes the job Failed with an error classification.
func (j *Job) failTerminal(kind, msg string) {
	j.mu.Lock()
	j.errKind = kind
	j.mu.Unlock()
	j.finish(StateFailed, msg)
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// StateNow returns the job's current state.
func (j *Job) StateNow() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the failure message of a failed job ("" otherwise).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ErrKind returns the failure classification: "config" for a rejected
// configuration (*wave.OptionError — retrying cannot help), "infra" for
// an execution failure (retried up to MaxRetries), "" otherwise.
func (j *Job) ErrKind() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errKind
}

// Retries returns the number of failed attempts so far.
func (j *Job) Retries() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.retries
}

// Stats returns the simulation stats recorded at completion.
func (j *Job) Stats() (wave.Stats, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats, j.hasStats
}

// rowBuffer retains every CSV row a job has produced and broadcasts
// appends to streaming subscribers with a channel-swap: each append
// closes the current wait channel and installs a fresh one, so any
// number of subscribers wake without the buffer tracking them.
type rowBuffer struct {
	mu     sync.Mutex
	rows   [][]byte
	nbytes int
	closed bool
	wait   chan struct{}
}

func newRowBuffer() *rowBuffer { return &rowBuffer{wait: make(chan struct{})} }

// append copies and retains one row (the wave.RowCSVSink callback: the
// passed slice is reused by the sink).
func (b *rowBuffer) append(row []byte) error {
	cp := append([]byte(nil), row...)
	b.mu.Lock()
	b.rows = append(b.rows, cp)
	b.nbytes += len(cp)
	w := b.wait
	b.wait = make(chan struct{})
	b.mu.Unlock()
	close(w)
	return nil
}

// reset drops every retained row, for a retry that rebuilds the stream
// (from scratch or from the preloaded checkpoint prefix). The wait
// channel stays armed so subscribers simply see the stream grow again.
func (b *rowBuffer) reset() {
	b.mu.Lock()
	b.rows = nil
	b.nbytes = 0
	b.mu.Unlock()
}

// closeBuf marks the stream complete and wakes all subscribers. Safe to
// call more than once.
func (b *rowBuffer) closeBuf() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	w := b.wait
	b.mu.Unlock()
	close(w)
}

func (b *rowBuffer) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.rows)
}

// next returns the rows at index from onward. When no new rows exist it
// returns (nil, done, wait): done means the stream is complete; wait is
// closed on the next append (or close) otherwise.
func (b *rowBuffer) next(from int) (rows [][]byte, done bool, wait <-chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if from < len(b.rows) {
		return b.rows[from:], false, nil
	}
	return nil, b.closed, b.wait
}
