// Package mesh provides structured, non-uniformly graded hexahedral meshes
// for wave propagation, mirroring the role of the user-supplied hexahedral
// meshes in SPECFEM3D (paper §II-C, §IV-A).
//
// Elements are axis-aligned boxes on a tensor grid with per-axis spacing
// arrays, which keeps the element Jacobian diagonal while still allowing the
// local refinement (small elements near surface features, velocity
// anomalies) that creates the CFL bottleneck the paper addresses.
package mesh

import (
	"fmt"
	"math"
)

// Mesh is a structured hexahedral mesh with graded spacing and per-element
// material properties.
type Mesh struct {
	// Name identifies the benchmark family ("trench", "embedding", ...).
	Name string
	// NX, NY, NZ are the element counts along each axis.
	NX, NY, NZ int
	// XC, YC, ZC are the element boundary coordinates along each axis
	// (length NX+1, NY+1, NZ+1, strictly ascending).
	XC, YC, ZC []float64
	// C is the compressional wave speed per element (length NX*NY*NZ).
	C []float64
	// Rho is the density per element (length NX*NY*NZ).
	Rho []float64
}

// New builds a mesh from boundary coordinate arrays with uniform material
// (c = 1, rho = 1). Material fields can be overwritten afterwards.
func New(name string, xc, yc, zc []float64) (*Mesh, error) {
	for _, c := range [][]float64{xc, yc, zc} {
		if len(c) < 2 {
			return nil, fmt.Errorf("mesh: need at least 2 boundary coordinates per axis, got %d", len(c))
		}
		for i := 1; i < len(c); i++ {
			if c[i] <= c[i-1] {
				return nil, fmt.Errorf("mesh: boundary coordinates must be strictly ascending (axis value %g after %g)", c[i], c[i-1])
			}
		}
	}
	m := &Mesh{
		Name: name,
		NX:   len(xc) - 1, NY: len(yc) - 1, NZ: len(zc) - 1,
		XC: xc, YC: yc, ZC: zc,
	}
	n := m.NumElements()
	m.C = make([]float64, n)
	m.Rho = make([]float64, n)
	for i := range m.C {
		m.C[i] = 1
		m.Rho[i] = 1
	}
	return m, nil
}

// NumElements returns the total element count NX*NY*NZ.
func (m *Mesh) NumElements() int { return m.NX * m.NY * m.NZ }

// EIndex maps (i, j, k) element coordinates to the linear element id.
func (m *Mesh) EIndex(i, j, k int) int { return (k*m.NY+j)*m.NX + i }

// ECoords is the inverse of EIndex.
func (m *Mesh) ECoords(e int) (i, j, k int) {
	i = e % m.NX
	j = (e / m.NX) % m.NY
	k = e / (m.NX * m.NY)
	return
}

// Dx returns the x-extent of elements in column i.
func (m *Mesh) Dx(i int) float64 { return m.XC[i+1] - m.XC[i] }

// Dy returns the y-extent of elements in row j.
func (m *Mesh) Dy(j int) float64 { return m.YC[j+1] - m.YC[j] }

// Dz returns the z-extent of elements in layer k.
func (m *Mesh) Dz(k int) float64 { return m.ZC[k+1] - m.ZC[k] }

// ElemSize returns the box dimensions of element e.
func (m *Mesh) ElemSize(e int) (dx, dy, dz float64) {
	i, j, k := m.ECoords(e)
	return m.Dx(i), m.Dy(j), m.Dz(k)
}

// CharLength returns the characteristic element size h_e used in the CFL
// condition (Eq. 7): the smallest box dimension.
func (m *Mesh) CharLength(e int) float64 {
	dx, dy, dz := m.ElemSize(e)
	return math.Min(dx, math.Min(dy, dz))
}

// StableDt returns the per-element CFL-stable time step C_CFL * h_e / c_e
// (Eq. 7 before taking the global minimum).
func (m *Mesh) StableDt(e int, cfl float64) float64 {
	return cfl * m.CharLength(e) / m.C[e]
}

// GlobalDt returns the globally stable time step: the minimum of StableDt
// over all elements. This is the non-LTS bottleneck step Δt_min = Δt/p_max.
func (m *Mesh) GlobalDt(cfl float64) float64 {
	dt := math.Inf(1)
	for e := 0; e < m.NumElements(); e++ {
		if d := m.StableDt(e, cfl); d < dt {
			dt = d
		}
	}
	return dt
}

// NumCornerNodes returns the number of element corner (vertex) nodes.
func (m *Mesh) NumCornerNodes() int { return (m.NX + 1) * (m.NY + 1) * (m.NZ + 1) }

// NumGLLNodes returns the number of unique GLL nodes for basis degree deg
// (shared between neighbouring elements): the "DOF" column of the paper's
// Fig. 5 table counts exactly these.
func (m *Mesh) NumGLLNodes(deg int) int {
	return (deg*m.NX + 1) * (deg*m.NY + 1) * (deg*m.NZ + 1)
}

// CornerIndex maps corner-node grid coordinates to a linear node id.
func (m *Mesh) CornerIndex(i, j, k int) int {
	return (k*(m.NY+1)+j)*(m.NX+1) + i
}

// FaceNeighbors appends to buf the element ids sharing a face with e (up to
// 6) and returns the extended slice. This adjacency defines the mesh's dual
// graph (paper §III-A.1).
func (m *Mesh) FaceNeighbors(e int, buf []int32) []int32 {
	i, j, k := m.ECoords(e)
	if i > 0 {
		buf = append(buf, int32(m.EIndex(i-1, j, k)))
	}
	if i < m.NX-1 {
		buf = append(buf, int32(m.EIndex(i+1, j, k)))
	}
	if j > 0 {
		buf = append(buf, int32(m.EIndex(i, j-1, k)))
	}
	if j < m.NY-1 {
		buf = append(buf, int32(m.EIndex(i, j+1, k)))
	}
	if k > 0 {
		buf = append(buf, int32(m.EIndex(i, j, k-1)))
	}
	if k < m.NZ-1 {
		buf = append(buf, int32(m.EIndex(i, j, k+1)))
	}
	return buf
}

// CornerIncidence returns the node -> incident-elements relation in CSR form
// (offsets of length NumCornerNodes+1, element ids concatenated). Each
// corner node touches up to 8 elements; this relation defines the hyperedges
// of the paper's hypergraph model (§III-A.2).
func (m *Mesh) CornerIncidence() (offsets []int32, elems []int32) {
	nn := m.NumCornerNodes()
	offsets = make([]int32, nn+1)
	// Count incident elements per node.
	for k := 0; k < m.NZ; k++ {
		for j := 0; j < m.NY; j++ {
			for i := 0; i < m.NX; i++ {
				for dk := 0; dk <= 1; dk++ {
					for dj := 0; dj <= 1; dj++ {
						for di := 0; di <= 1; di++ {
							offsets[m.CornerIndex(i+di, j+dj, k+dk)+1]++
						}
					}
				}
			}
		}
	}
	for i := 0; i < nn; i++ {
		offsets[i+1] += offsets[i]
	}
	elems = make([]int32, offsets[nn])
	fill := make([]int32, nn)
	for k := 0; k < m.NZ; k++ {
		for j := 0; j < m.NY; j++ {
			for i := 0; i < m.NX; i++ {
				e := int32(m.EIndex(i, j, k))
				for dk := 0; dk <= 1; dk++ {
					for dj := 0; dj <= 1; dj++ {
						for di := 0; di <= 1; di++ {
							n := m.CornerIndex(i+di, j+dj, k+dk)
							elems[offsets[n]+fill[n]] = e
							fill[n]++
						}
					}
				}
			}
		}
	}
	return offsets, elems
}

// Centroid returns the centroid coordinates of element e.
func (m *Mesh) Centroid(e int) (x, y, z float64) {
	i, j, k := m.ECoords(e)
	return (m.XC[i] + m.XC[i+1]) / 2, (m.YC[j] + m.YC[j+1]) / 2, (m.ZC[k] + m.ZC[k+1]) / 2
}

// Extent returns the bounding box of the mesh.
func (m *Mesh) Extent() (x0, x1, y0, y1, z0, z1 float64) {
	return m.XC[0], m.XC[m.NX], m.YC[0], m.YC[m.NY], m.ZC[0], m.ZC[m.NZ]
}

// LocateElement returns the element containing point (x, y, z), clamping to
// the nearest element when the point lies outside the mesh.
func (m *Mesh) LocateElement(x, y, z float64) int {
	return m.EIndex(locate(m.XC, x), locate(m.YC, y), locate(m.ZC, z))
}

func locate(c []float64, x float64) int {
	n := len(c) - 1
	if x <= c[0] {
		return 0
	}
	if x >= c[n] {
		return n - 1
	}
	lo, hi := 0, n
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if c[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
