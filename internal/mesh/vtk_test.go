package mesh

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteVTKStructure(t *testing.T) {
	m := Uniform(2, 2, 2, 1, 1)
	lv := AssignLevels(m, 0.4, 0)
	levels := make([]float64, m.NumElements())
	for e := range levels {
		levels[e] = float64(lv.Lvl[e])
	}
	var buf bytes.Buffer
	if err := WriteVTK(&buf, m, map[string][]float64{"plevel": levels}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"DATASET UNSTRUCTURED_GRID",
		"POINTS 27 double",
		"CELLS 8 72",
		"CELL_TYPES 8",
		"CELL_DATA 8",
		"SCALARS plevel double 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
	// Exactly 8 hexahedron type markers.
	count := 0
	for _, line := range strings.Split(out, "\n") {
		if line == "12" {
			count++
		}
	}
	if count != 8 {
		t.Errorf("found %d hexahedron markers, want 8", count)
	}
}

func TestWriteVTKBadCellData(t *testing.T) {
	m := Uniform(2, 1, 1, 1, 1)
	var buf bytes.Buffer
	if err := WriteVTK(&buf, m, map[string][]float64{"x": {1}}); err == nil {
		t.Error("expected error for wrong-length cell data")
	}
}

func TestWriteVTKDeterministicOrder(t *testing.T) {
	m := Uniform(2, 1, 1, 1, 1)
	data := map[string][]float64{"b": {1, 2}, "a": {3, 4}}
	var b1, b2 bytes.Buffer
	if err := WriteVTK(&b1, m, data); err != nil {
		t.Fatal(err)
	}
	if err := WriteVTK(&b2, m, data); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("VTK output not deterministic")
	}
	if strings.Index(b1.String(), "SCALARS a") > strings.Index(b1.String(), "SCALARS b") {
		t.Error("cell data not sorted by name")
	}
}
