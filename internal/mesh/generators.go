package mesh

import (
	"math"
)

// The benchmark mesh generators replicate the refinement patterns of the
// paper's four application meshes (§IV-A, Figs. 4-5):
//
//   - Trench: a long strip of pinched (graded) elements, 4 levels, ~6.7x
//     theoretical speedup.
//   - Trench Big: the trench extended by an order of magnitude with an
//     extra refinement layer, 6 levels, ~21.7x.
//   - Embedding: a localized small-scale feature (here a high-velocity
//     inclusion on a uniform grid), 4 levels, ~7.9x.
//   - Crust: surface features force small elements in the top layers,
//     2 levels, ~1.9x.
//
// Scale 1.0 targets roughly 1/10 of the paper's element counts (250k for
// trench vs 2.5M) so the full experiment suite runs on a laptop; the scale
// parameter multiplies the element count (linear dimensions scale with its
// cube root). The p-level fractions, and therefore the theoretical
// speedups and partitioning behaviour, are scale-invariant by construction.

// run describes a contiguous band of elements of a given size.
type run struct {
	count int
	size  float64
}

// spacingFromRuns builds a boundary-coordinate array starting at origin from
// a sequence of runs.
func spacingFromRuns(origin float64, runs []run) []float64 {
	n := 0
	for _, r := range runs {
		n += r.count
	}
	xc := make([]float64, 0, n+1)
	xc = append(xc, origin)
	x := origin
	for _, r := range runs {
		for i := 0; i < r.count; i++ {
			x += r.size
			xc = append(xc, x)
		}
	}
	return xc
}

// scaleCount multiplies a count by the linear scale factor, keeping at
// least min.
func scaleCount(c int, f float64, min int) int {
	s := int(math.Round(float64(c) * f))
	if s < min {
		s = min
	}
	return s
}

// solveCoarseCount returns the number of coarse (p=1) elements along the
// graded axis needed to hit the target theoretical speedup (Eq. 9) given
// the fine-band counts and their multipliers:
//
//	target = pMax (nc + ΣF) / (nc + Σ p_i F_i)  =>  solve for nc.
//
// Because scaling shrinks the fine bands toward their minimum counts, a
// fixed coarse count would drift the speedup at small scales; solving keeps
// the Fig. 5 speedups scale-invariant.
func solveCoarseCount(target float64, pMax int, counts, ps []int) int {
	fsum, wsum := 0, 0
	for i, c := range counts {
		fsum += c
		wsum += c * ps[i]
	}
	nc := (target*float64(wsum) - float64(pMax*fsum)) / (float64(pMax) - target)
	if nc < 4 {
		nc = 4
	}
	return int(math.Round(nc))
}

// uniformSpacing returns n+1 boundary coordinates for n elements of size h.
func uniformSpacing(n int, h float64) []float64 {
	return spacingFromRuns(0, []run{{n, h}})
}

// Uniform generates an unrefined nx*ny*nz mesh with unit-ish element size
// and uniform material (c = cspeed, rho = 1). Useful as the non-LTS
// baseline and in unit tests.
func Uniform(nx, ny, nz int, h, cspeed float64) *Mesh {
	m, err := New("uniform", uniformSpacing(nx, h), uniformSpacing(ny, h), uniformSpacing(nz, h))
	if err != nil {
		panic(err) // spacing arrays are valid by construction
	}
	for e := range m.C {
		m.C[e] = cspeed
	}
	return m
}

// Trench generates the trench benchmark: a strip of refined elements
// running the length of the mesh (the paper's "long row of pinched
// elements" where two internal topographies meet). The x axis is graded
// from the base size h down to h/8 in nested bands, yielding 4 p-levels
// with element fractions ≈ {92%, 5%, 2%, 1%} and a theoretical speedup of
// ~6.7x (paper Fig. 5).
func Trench(scale float64) *Mesh {
	f := math.Cbrt(scale)
	const h = 1.0
	// Band counts at scale 1 (nx ≈ 100 total): 5 at h/2, 2 at h/4,
	// 1 at h/8; the coarse count is solved so the theoretical speedup
	// (Eq. 9) stays at the paper's 6.7x at every scale.
	n2 := scaleCount(5, f, 2)
	n4 := scaleCount(2, f, 1)
	n8 := scaleCount(1, f, 1)
	nc := solveCoarseCount(6.7, 8, []int{n2, n4, n8}, []int{2, 4, 8})
	ncl := nc / 2
	ncr := nc - ncl
	n2l := n2 / 2
	n2r := n2 - n2l
	n4l := n4 / 2
	n4r := n4 - n4l
	xc := spacingFromRuns(0, []run{
		{ncl, h}, {n2l, h / 2}, {n4l, h / 4},
		{n8, h / 8},
		{n4r, h / 4}, {n2r, h / 2}, {ncr, h},
	})
	ny := scaleCount(50, f, 4)
	nz := scaleCount(50, f, 4)
	m, err := New("trench", xc, uniformSpacing(ny, h), uniformSpacing(nz, h))
	if err != nil {
		panic(err)
	}
	return m
}

// TrenchBig generates the large trench benchmark with an additional two
// refinement bands (down to h/32), yielding 6 p-levels and a theoretical
// speedup of ~21.7x (paper Fig. 5: 26M elements, 21.7x, 6 levels). Scale
// 1.0 targets ~2.6M elements; the Fig. 13 experiment uses a reduced scale.
func TrenchBig(scale float64) *Mesh {
	f := math.Cbrt(scale)
	const h = 1.0
	// Fine-band counts at scale 1 (nx ≈ 200): 8 at h/2, 4 at h/4, 2 at
	// h/8, 2 at h/16, 1 at h/32; the coarse count is solved for the
	// paper's 21.7x theoretical speedup.
	n2 := scaleCount(8, f, 2)
	n4 := scaleCount(4, f, 1)
	n8 := scaleCount(2, f, 1)
	n16 := scaleCount(2, f, 1)
	n32 := scaleCount(1, f, 1)
	nc := solveCoarseCount(21.7, 32, []int{n2, n4, n8, n16, n32}, []int{2, 4, 8, 16, 32})
	half := func(n int) (int, int) { return n / 2, n - n/2 }
	ncl, ncr := half(nc)
	n2l, n2r := half(n2)
	n4l, n4r := half(n4)
	n8l, n8r := half(n8)
	n16l, n16r := half(n16)
	xc := spacingFromRuns(0, []run{
		{ncl, h}, {n2l, h / 2}, {n4l, h / 4}, {n8l, h / 8}, {n16l, h / 16},
		{n32, h / 32},
		{n16r, h / 16}, {n8r, h / 8}, {n4r, h / 4}, {n2r, h / 2}, {ncr, h},
	})
	ny := scaleCount(114, f, 6)
	nz := scaleCount(114, f, 6)
	m, err := New("trench-big", xc, uniformSpacing(ny, h), uniformSpacing(nz, h))
	if err != nil {
		panic(err)
	}
	return m
}

// Embedding generates the embedding benchmark: the simplest possible
// refinement, a localized small-scale feature in the interior (paper Fig.
// 4). On our tensor grid, a geometric cube refinement is impossible without
// refining whole slabs, so the feature is realised as a nested
// high-velocity inclusion on a uniform grid: the CFL step Δt ∝ h/c shrinks
// inside the inclusion exactly as it would for small elements (Eq. 7 uses
// only the ratio h_e/c_e). Nested velocity shells of 2c, 4c, 8c give 4
// p-levels with tiny fine fractions and a theoretical speedup of ~7.9x.
func Embedding(scale float64) *Mesh {
	f := math.Cbrt(scale)
	n := scaleCount(50, f, 12)
	const h = 1.0
	m := Uniform(n, n, n, h, 1.0)
	m.Name = "embedding"
	// Nested cubes centred in the grid with odd side lengths 9, 7, 5 at
	// scale 1 (scaled with f, kept odd and >= minimums).
	odd := func(v int, min int) int {
		if v < min {
			v = min
		}
		if v%2 == 0 {
			v++
		}
		return v
	}
	s8 := odd(scaleCount(5, f, 1), 1)
	s4 := odd(scaleCount(7, f, 3), s8+2)
	s2 := odd(scaleCount(9, f, 5), s4+2)
	cx, cy, cz := n/2, n/2, n/2
	setCube := func(side int, c float64) {
		r := side / 2
		for k := cz - r; k <= cz+r; k++ {
			for j := cy - r; j <= cy+r; j++ {
				for i := cx - r; i <= cx+r; i++ {
					if i >= 0 && i < n && j >= 0 && j < n && k >= 0 && k < n {
						m.C[m.EIndex(i, j, k)] = c
					}
				}
			}
		}
	}
	setCube(s2, 2)
	setCube(s4, 4)
	setCube(s8, 8)
	return m
}

// Crust generates the crust benchmark: a uniform body with two thin
// half-thickness layers at the surface modelling squeezed topography
// elements, yielding 2 p-levels with ~5% fine elements and a theoretical
// speedup of ~1.9x (paper Fig. 5). The wave speed is uniform: a continuous
// velocity gradient would smear the per-element stable steps across
// power-of-two boundaries and manufacture spurious levels, whereas the
// paper's crust mesh derives its two levels from geometry alone.
func Crust(scale float64) *Mesh {
	f := math.Cbrt(scale)
	const h = 1.0
	nx := scaleCount(85, f, 6)
	ny := scaleCount(85, f, 6)
	nzf := scaleCount(2, f, 1)
	// Exact 1.9x: 2(nzc+nzf)/(nzc+2nzf) = 1.9  =>  nzc = 18 nzf.
	nzc := 18 * nzf
	// z increases downward from the free surface at z=0; the fine layers
	// sit at the top.
	zc := spacingFromRuns(0, []run{{nzf, h / 2}, {nzc, h}})
	m, err := New("crust", uniformSpacing(nx, h), uniformSpacing(ny, h), zc)
	if err != nil {
		panic(err)
	}
	return m
}

// Generators maps benchmark names to their constructors, for CLI tools.
var Generators = map[string]func(scale float64) *Mesh{
	"trench":     Trench,
	"trench-big": TrenchBig,
	"embedding":  Embedding,
	"crust":      Crust,
}
