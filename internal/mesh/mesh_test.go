package mesh

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", []float64{0}, []float64{0, 1}, []float64{0, 1}); err == nil {
		t.Error("expected error for single boundary coordinate")
	}
	if _, err := New("bad", []float64{0, 1}, []float64{0, 1, 0.5}, []float64{0, 1}); err == nil {
		t.Error("expected error for non-ascending coordinates")
	}
	if _, err := New("ok", []float64{0, 1, 2}, []float64{0, 1}, []float64{0, 0.5}); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	m := Uniform(4, 3, 5, 1, 1)
	for e := 0; e < m.NumElements(); e++ {
		i, j, k := m.ECoords(e)
		if m.EIndex(i, j, k) != e {
			t.Fatalf("round trip failed for element %d -> (%d,%d,%d)", e, i, j, k)
		}
		if i < 0 || i >= m.NX || j < 0 || j >= m.NY || k < 0 || k >= m.NZ {
			t.Fatalf("coords out of range for element %d", e)
		}
	}
}

func TestIndexRoundTripProperty(t *testing.T) {
	m := Uniform(7, 6, 5, 1, 1)
	f := func(e uint16) bool {
		id := int(e) % m.NumElements()
		i, j, k := m.ECoords(id)
		return m.EIndex(i, j, k) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestElemSizeUniform(t *testing.T) {
	m := Uniform(3, 3, 3, 2.5, 1)
	for e := 0; e < m.NumElements(); e++ {
		dx, dy, dz := m.ElemSize(e)
		for _, d := range []float64{dx, dy, dz} {
			if math.Abs(d-2.5) > 1e-12 {
				t.Fatalf("element %d size %v, want 2.5", e, d)
			}
		}
		if math.Abs(m.CharLength(e)-2.5) > 1e-12 {
			t.Fatalf("char length wrong")
		}
	}
}

func TestStableDtScalesWithVelocity(t *testing.T) {
	m := Uniform(2, 2, 2, 1, 1)
	m.C[0] = 4
	if got, want := m.StableDt(0, 0.5), 0.5/4.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("StableDt = %v, want %v", got, want)
	}
	if got, want := m.GlobalDt(0.5), 0.125; math.Abs(got-want) > 1e-12 {
		t.Errorf("GlobalDt = %v, want %v", got, want)
	}
}

func TestFaceNeighbors(t *testing.T) {
	m := Uniform(3, 3, 3, 1, 1)
	center := m.EIndex(1, 1, 1)
	nb := m.FaceNeighbors(center, nil)
	if len(nb) != 6 {
		t.Fatalf("center element has %d neighbors, want 6", len(nb))
	}
	corner := m.EIndex(0, 0, 0)
	nb = m.FaceNeighbors(corner, nil)
	if len(nb) != 3 {
		t.Fatalf("corner element has %d neighbors, want 3", len(nb))
	}
	// Symmetry: if b is a neighbor of a, a is a neighbor of b.
	for e := 0; e < m.NumElements(); e++ {
		for _, b := range m.FaceNeighbors(e, nil) {
			found := false
			for _, a := range m.FaceNeighbors(int(b), nil) {
				if int(a) == e {
					found = true
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d -> %d", e, b)
			}
		}
	}
}

func TestCornerIncidence(t *testing.T) {
	m := Uniform(2, 2, 2, 1, 1)
	off, elems := m.CornerIncidence()
	if len(off) != m.NumCornerNodes()+1 {
		t.Fatalf("offsets length %d, want %d", len(off), m.NumCornerNodes()+1)
	}
	// Total incidences: 8 corners per element.
	if got, want := int(off[len(off)-1]), 8*m.NumElements(); got != want {
		t.Fatalf("total incidences %d, want %d", got, want)
	}
	// The central node of a 2x2x2 mesh touches all 8 elements.
	c := m.CornerIndex(1, 1, 1)
	if got := off[c+1] - off[c]; got != 8 {
		t.Fatalf("central corner touches %d elements, want 8", got)
	}
	seen := map[int32]bool{}
	for _, e := range elems[off[c]:off[c+1]] {
		if seen[e] {
			t.Fatalf("duplicate element %d at central corner", e)
		}
		seen[e] = true
	}
	// A domain corner touches exactly 1.
	cc := m.CornerIndex(0, 0, 0)
	if got := off[cc+1] - off[cc]; got != 1 {
		t.Fatalf("domain corner touches %d, want 1", got)
	}
}

func TestLocateElement(t *testing.T) {
	m := Uniform(4, 4, 4, 1, 1)
	e := m.LocateElement(2.5, 0.5, 3.9)
	i, j, k := m.ECoords(e)
	if i != 2 || j != 0 || k != 3 {
		t.Errorf("located (%d,%d,%d), want (2,0,3)", i, j, k)
	}
	// Out-of-range points clamp.
	e = m.LocateElement(-5, 100, 2.2)
	i, j, k = m.ECoords(e)
	if i != 0 || j != 3 || k != 2 {
		t.Errorf("clamped to (%d,%d,%d), want (0,3,2)", i, j, k)
	}
}

func TestNumGLLNodes(t *testing.T) {
	m := Uniform(2, 3, 4, 1, 1)
	// degree 4: (2*4+1)(3*4+1)(4*4+1) = 9*13*17
	if got, want := m.NumGLLNodes(4), 9*13*17; got != want {
		t.Errorf("NumGLLNodes = %d, want %d", got, want)
	}
}

func TestExtentAndCentroid(t *testing.T) {
	m := Uniform(2, 2, 2, 1.5, 1)
	x0, x1, _, _, _, z1 := m.Extent()
	if x0 != 0 || math.Abs(x1-3) > 1e-12 || math.Abs(z1-3) > 1e-12 {
		t.Errorf("extent wrong: %v %v %v", x0, x1, z1)
	}
	cx, cy, cz := m.Centroid(0)
	if math.Abs(cx-0.75) > 1e-12 || math.Abs(cy-0.75) > 1e-12 || math.Abs(cz-0.75) > 1e-12 {
		t.Errorf("centroid wrong: %v %v %v", cx, cy, cz)
	}
}
