package mesh

import (
	"fmt"
	"math"
)

// Levels records the LTS refinement-level (p-level) assignment of a mesh:
// level k elements advance with time step Δt / P[k-1], P[k-1] = 2^(k-1)
// (paper Eq. 16). Level 1 is the coarsest.
type Levels struct {
	// NumLevels is N, the number of distinct p-levels in use.
	NumLevels int
	// Lvl[e] is the 1-based level of element e.
	Lvl []uint8
	// P[k-1] = 2^(k-1) is the substep multiplier of level k.
	P []int
	// Count[k-1] is the number of elements in level k.
	Count []int
	// CoarseDt is the level-1 step Δt (the LTS cycle length).
	CoarseDt float64
	// CFL is the Courant number used for the assignment.
	CFL float64
}

// AssignLevels computes the p-level of every element from the per-element
// CFL-stable step (Eq. 7): the coarsest level takes the largest stable step
// found in the mesh, and each element is assigned the smallest power-of-two
// subdivision that makes its own step stable. maxLevels caps the number of
// levels (0 = unlimited); elements below the cap are clamped to the finest
// allowed level, which then needs a smaller coarse Δt to stay stable.
func AssignLevels(m *Mesh, cfl float64, maxLevels int) *Levels {
	n := m.NumElements()
	if n == 0 {
		return &Levels{NumLevels: 0, CFL: cfl}
	}
	dts := make([]float64, n)
	maxDt := 0.0
	for e := 0; e < n; e++ {
		dts[e] = m.StableDt(e, cfl)
		if dts[e] > maxDt {
			maxDt = dts[e]
		}
	}
	lv := &Levels{Lvl: make([]uint8, n), CFL: cfl}
	// Small relative slack so that exact power-of-two size/velocity ratios
	// land on the intended level rather than one finer due to roundoff.
	const slack = 1 - 1e-9
	maxK := 1
	for e := 0; e < n; e++ {
		ratio := maxDt / dts[e] * slack
		k := 1
		for p := 1.0; p < ratio && k < 32; p *= 2 {
			k++
		}
		if maxLevels > 0 && k > maxLevels {
			k = maxLevels
		}
		lv.Lvl[e] = uint8(k)
		if k > maxK {
			maxK = k
		}
	}
	lv.NumLevels = maxK
	lv.P = make([]int, maxK)
	lv.Count = make([]int, maxK)
	for k := 0; k < maxK; k++ {
		lv.P[k] = 1 << k
	}
	for e := 0; e < n; e++ {
		lv.Count[lv.Lvl[e]-1]++
	}
	// The coarse step must keep every element stable given its assigned
	// subdivision: Δt = min_e p_e * dt_e. Without a level cap this equals a
	// value in [maxDt/2, maxDt]; with a cap it may be smaller.
	coarse := math.Inf(1)
	for e := 0; e < n; e++ {
		if d := float64(lv.P[lv.Lvl[e]-1]) * dts[e]; d < coarse {
			coarse = d
		}
	}
	lv.CoarseDt = coarse
	return lv
}

// PFor returns the substep multiplier p of element e.
func (l *Levels) PFor(e int) int { return l.P[l.Lvl[e]-1] }

// PMax returns the finest multiplier p_N (the non-LTS scheme must step at
// Δt / p_N everywhere).
func (l *Levels) PMax() int {
	if l.NumLevels == 0 {
		return 1
	}
	return l.P[l.NumLevels-1]
}

// WorkPerCycle returns Σ_e p_e: the number of element-steps one LTS cycle
// (one coarse Δt) performs. The non-LTS scheme performs p_N * numElements
// element-steps over the same simulated time.
func (l *Levels) WorkPerCycle() int64 {
	var w int64
	for _, c := range l.Lvl {
		w += int64(l.P[c-1])
	}
	return w
}

// TheoreticalSpeedup evaluates the paper's speedup model (Eq. 9),
// generalised to N levels:
//
//	speedup = p_N * numElements / Σ_e p_e .
//
// For two levels this reduces exactly to Eq. (9).
func (l *Levels) TheoreticalSpeedup() float64 {
	if len(l.Lvl) == 0 {
		return 1
	}
	return float64(l.PMax()) * float64(len(l.Lvl)) / float64(l.WorkPerCycle())
}

// LevelElements returns, for each level k (1-based index k-1), the sorted
// list of element ids on that level.
func (l *Levels) LevelElements() [][]int32 {
	out := make([][]int32, l.NumLevels)
	for k := range out {
		out[k] = make([]int32, 0, l.Count[k])
	}
	for e, c := range l.Lvl {
		out[c-1] = append(out[c-1], int32(e))
	}
	return out
}

// Validate checks internal consistency (counts, level range, power-of-two
// multipliers) and that the assignment is CFL-stable for mesh m.
func (l *Levels) Validate(m *Mesh) error {
	if len(l.Lvl) != m.NumElements() {
		return fmt.Errorf("levels: %d entries for %d elements", len(l.Lvl), m.NumElements())
	}
	counts := make([]int, l.NumLevels)
	for e, c := range l.Lvl {
		if c < 1 || int(c) > l.NumLevels {
			return fmt.Errorf("levels: element %d has level %d outside [1, %d]", e, c, l.NumLevels)
		}
		counts[c-1]++
		// Stability: the element's substep CoarseDt/p_e must not exceed its
		// own stable step.
		sub := l.CoarseDt / float64(l.P[c-1])
		if sub > m.StableDt(e, l.CFL)*(1+1e-9) {
			return fmt.Errorf("levels: element %d unstable: substep %g > stable %g", e, sub, m.StableDt(e, l.CFL))
		}
	}
	for k, c := range counts {
		if c != l.Count[k] {
			return fmt.Errorf("levels: count[%d] = %d, recomputed %d", k, l.Count[k], c)
		}
	}
	for k, p := range l.P {
		if p != 1<<k {
			return fmt.Errorf("levels: P[%d] = %d, want %d", k, p, 1<<k)
		}
	}
	if l.Count[0] == 0 {
		return fmt.Errorf("levels: coarsest level empty")
	}
	return nil
}

// Smooth enforces that face-adjacent elements differ by at most maxJump
// levels by promoting coarse elements near fine ones. This reduces the halo
// work at level interfaces at the cost of extra fine elements; the paper's
// scheme does not require it, so it is optional. Returns the number of
// promoted elements.
func (l *Levels) Smooth(m *Mesh, maxJump int) int {
	if maxJump < 1 {
		maxJump = 1
	}
	promoted := 0
	var buf []int32
	changed := true
	for changed {
		changed = false
		for e := 0; e < m.NumElements(); e++ {
			buf = m.FaceNeighbors(e, buf[:0])
			for _, nb := range buf {
				if int(l.Lvl[nb])-int(l.Lvl[e]) > maxJump {
					l.Count[l.Lvl[e]-1]--
					l.Lvl[e] = l.Lvl[nb] - uint8(maxJump)
					l.Count[l.Lvl[e]-1]++
					promoted++
					changed = true
				}
			}
		}
	}
	// Promotion may empty the coarsest level(s); renormalise so level 1 is
	// nonempty again. Shifting every level down by one halves all
	// multipliers, so the coarse step must halve too (each element keeps
	// its absolute substep, preserving stability).
	for l.NumLevels > 1 && l.Count[0] == 0 {
		for e := range l.Lvl {
			l.Lvl[e]--
		}
		l.Count = l.Count[1:]
		l.P = l.P[:l.NumLevels-1]
		l.NumLevels--
		l.CoarseDt /= 2
	}
	return promoted
}
