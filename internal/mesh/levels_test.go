package mesh

import (
	"math"
	"testing"
)

func TestAssignLevelsUniformMeshHasOneLevel(t *testing.T) {
	m := Uniform(4, 4, 4, 1, 1)
	lv := AssignLevels(m, 0.5, 0)
	if lv.NumLevels != 1 {
		t.Fatalf("uniform mesh got %d levels, want 1", lv.NumLevels)
	}
	if lv.TheoreticalSpeedup() != 1 {
		t.Errorf("speedup %v, want 1", lv.TheoreticalSpeedup())
	}
	if err := lv.Validate(m); err != nil {
		t.Error(err)
	}
}

func TestAssignLevelsTwoSizes(t *testing.T) {
	// 3 coarse columns of size 1 and 1 fine column of size 0.5 in x.
	xc := []float64{0, 1, 2, 3, 3.5}
	m, err := New("two", xc, []float64{0, 1, 2}, []float64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	lv := AssignLevels(m, 0.4, 0)
	if lv.NumLevels != 2 {
		t.Fatalf("got %d levels, want 2", lv.NumLevels)
	}
	// 4 elements per column layer * 3 coarse columns vs 1 fine column.
	if lv.Count[0] != 12 || lv.Count[1] != 4 {
		t.Fatalf("counts %v, want [12 4]", lv.Count)
	}
	// Eq. (9): p*E / (p*fine + coarse) = 2*16/(2*4+12) = 32/20 = 1.6
	if got := lv.TheoreticalSpeedup(); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("speedup %v, want 1.6", got)
	}
	if err := lv.Validate(m); err != nil {
		t.Error(err)
	}
	// Coarse step = CFL * 1 / 1.
	if math.Abs(lv.CoarseDt-0.4) > 1e-12 {
		t.Errorf("coarse dt %v, want 0.4", lv.CoarseDt)
	}
}

func TestAssignLevelsVelocityDriven(t *testing.T) {
	// Uniform sizes but one element with c = 4 must land on level 3 (p=4).
	m := Uniform(3, 3, 3, 1, 1)
	m.C[13] = 4
	lv := AssignLevels(m, 0.5, 0)
	if lv.NumLevels != 3 {
		t.Fatalf("got %d levels, want 3", lv.NumLevels)
	}
	if lv.Lvl[13] != 3 {
		t.Errorf("fast element level %d, want 3", lv.Lvl[13])
	}
	if lv.Count[1] != 0 {
		t.Errorf("level 2 should be empty, has %d", lv.Count[1])
	}
	if err := lv.Validate(m); err != nil {
		t.Error(err)
	}
}

func TestAssignLevelsMaxLevelsCap(t *testing.T) {
	m := Uniform(3, 1, 1, 1, 1)
	m.C[0] = 16 // would be level 5
	lv := AssignLevels(m, 0.5, 3)
	if lv.NumLevels != 3 {
		t.Fatalf("got %d levels, want 3 (capped)", lv.NumLevels)
	}
	// With the cap, the coarse step must shrink so the clamped element
	// remains stable: Δt = p_e * dt_e = 4 * (0.5/16) = 0.125.
	if math.Abs(lv.CoarseDt-0.125) > 1e-12 {
		t.Errorf("coarse dt %v, want 0.125", lv.CoarseDt)
	}
	if err := lv.Validate(m); err != nil {
		t.Error(err)
	}
}

func TestPowersOfTwoExactRatiosStable(t *testing.T) {
	// Element exactly 2x smaller must get p=2, not p=4 (roundoff slack).
	xc := []float64{0, 1, 1.5}
	m, err := New("exact", xc, []float64{0, 1}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	lv := AssignLevels(m, 0.3, 0)
	if lv.NumLevels != 2 || lv.Lvl[1] != 2 {
		t.Fatalf("exact 2x ratio: levels=%d lvl=%v", lv.NumLevels, lv.Lvl)
	}
}

func TestWorkPerCycle(t *testing.T) {
	m := Uniform(2, 1, 1, 1, 1)
	m.C[1] = 2
	lv := AssignLevels(m, 0.5, 0)
	// One p=1 element and one p=2 element: 3 element-steps per cycle.
	if got := lv.WorkPerCycle(); got != 3 {
		t.Errorf("work per cycle %d, want 3", got)
	}
	// Speedup: 2*2 / 3.
	if got, want := lv.TheoreticalSpeedup(), 4.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("speedup %v, want %v", got, want)
	}
}

func TestLevelElementsPartition(t *testing.T) {
	m := Trench(0.05)
	lv := AssignLevels(m, 0.4, 0)
	le := lv.LevelElements()
	total := 0
	seen := make([]bool, m.NumElements())
	for k, es := range le {
		if len(es) != lv.Count[k] {
			t.Fatalf("level %d has %d elements, count says %d", k+1, len(es), lv.Count[k])
		}
		total += len(es)
		for _, e := range es {
			if seen[e] {
				t.Fatalf("element %d in two levels", e)
			}
			seen[e] = true
			if int(lv.Lvl[e]) != k+1 {
				t.Fatalf("element %d in list %d but level %d", e, k+1, lv.Lvl[e])
			}
		}
	}
	if total != m.NumElements() {
		t.Fatalf("levels cover %d of %d elements", total, m.NumElements())
	}
}

func TestSmoothLimitsLevelJumps(t *testing.T) {
	m := Uniform(5, 1, 1, 1, 1)
	m.C[2] = 8 // level 4 next to level 1 neighbors
	lv := AssignLevels(m, 0.5, 0)
	if lv.Lvl[2] != 4 || lv.Lvl[1] != 1 {
		t.Fatalf("setup wrong: %v", lv.Lvl)
	}
	n := lv.Smooth(m, 1)
	if n == 0 {
		t.Fatal("smoothing promoted nothing")
	}
	var buf []int32
	for e := 0; e < m.NumElements(); e++ {
		buf = m.FaceNeighbors(e, buf[:0])
		for _, nb := range buf {
			d := int(lv.Lvl[nb]) - int(lv.Lvl[e])
			if d > 1 || d < -1 {
				t.Fatalf("jump of %d between %d and %d after smoothing", d, e, nb)
			}
		}
	}
	// Counts stay consistent.
	counts := make([]int, lv.NumLevels)
	for _, c := range lv.Lvl {
		counts[c-1]++
	}
	for k := range counts {
		if counts[k] != lv.Count[k] {
			t.Fatalf("count[%d]=%d, recomputed %d", k, lv.Count[k], counts[k])
		}
	}
}

// TestBenchmarkMeshProperties pins the paper's Fig. 5 table shape for the
// scaled benchmark meshes: number of levels and theoretical speedups.
func TestBenchmarkMeshProperties(t *testing.T) {
	const cfl = 0.4
	cases := []struct {
		name     string
		gen      func(float64) *Mesh
		scale    float64
		levels   int
		minSpd   float64
		maxSpd   float64
		paperSpd float64
		minElems int
	}{
		{"trench", Trench, 0.3, 4, 5.5, 7.5, 6.7, 50000},
		{"trench-big", TrenchBig, 0.05, 6, 18, 25, 21.7, 80000},
		{"embedding", Embedding, 0.3, 4, 7.0, 8.0, 7.9, 30000},
		{"crust", Crust, 0.3, 2, 1.7, 2.0, 1.9, 60000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.gen(tc.scale)
			if m.NumElements() < tc.minElems {
				t.Errorf("%s: only %d elements at scale %v", tc.name, m.NumElements(), tc.scale)
			}
			lv := AssignLevels(m, cfl, 0)
			if err := lv.Validate(m); err != nil {
				t.Fatal(err)
			}
			if lv.NumLevels != tc.levels {
				t.Errorf("%s: %d levels, want %d (paper Fig. 5)", tc.name, lv.NumLevels, tc.levels)
			}
			spd := lv.TheoreticalSpeedup()
			if spd < tc.minSpd || spd > tc.maxSpd {
				t.Errorf("%s: theoretical speedup %.2f outside [%.1f, %.1f] (paper: %.1fx)",
					tc.name, spd, tc.minSpd, tc.maxSpd, tc.paperSpd)
			}
			// All levels nonempty.
			for k, c := range lv.Count {
				if c == 0 {
					t.Errorf("%s: level %d empty", tc.name, k+1)
				}
			}
		})
	}
}

// TestSpeedupScaleInvariance: the generators are designed so the p-level
// fractions (and thus the theoretical speedup) barely move with scale.
func TestSpeedupScaleInvariance(t *testing.T) {
	s1 := AssignLevels(Trench(0.1), 0.4, 0).TheoreticalSpeedup()
	s2 := AssignLevels(Trench(0.8), 0.4, 0).TheoreticalSpeedup()
	if math.Abs(s1-s2)/s2 > 0.25 {
		t.Errorf("trench speedup varies too much with scale: %.2f vs %.2f", s1, s2)
	}
}

func BenchmarkAssignLevelsTrench(b *testing.B) {
	m := Trench(0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AssignLevels(m, 0.4, 0)
	}
}

func BenchmarkCornerIncidence(b *testing.B) {
	m := Trench(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CornerIncidence()
	}
}
