package mesh

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteVTK writes the mesh as a legacy-ASCII VTK unstructured grid with
// optional per-element (cell) data arrays — enough to recreate the paper's
// Fig. 4 (p-level colouring) and Fig. 6 (partition colouring) in ParaView.
func WriteVTK(w io.Writer, m *Mesh, cellData map[string][]float64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintf(bw, "golts mesh %s\n", m.Name)
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET UNSTRUCTURED_GRID")
	np := m.NumCornerNodes()
	fmt.Fprintf(bw, "POINTS %d double\n", np)
	for k := 0; k <= m.NZ; k++ {
		for j := 0; j <= m.NY; j++ {
			for i := 0; i <= m.NX; i++ {
				fmt.Fprintf(bw, "%g %g %g\n", m.XC[i], m.YC[j], m.ZC[k])
			}
		}
	}
	ne := m.NumElements()
	fmt.Fprintf(bw, "CELLS %d %d\n", ne, ne*9)
	for e := 0; e < ne; e++ {
		i, j, k := m.ECoords(e)
		// VTK_HEXAHEDRON ordering: bottom face CCW, then top face CCW.
		fmt.Fprintf(bw, "8 %d %d %d %d %d %d %d %d\n",
			m.CornerIndex(i, j, k), m.CornerIndex(i+1, j, k),
			m.CornerIndex(i+1, j+1, k), m.CornerIndex(i, j+1, k),
			m.CornerIndex(i, j, k+1), m.CornerIndex(i+1, j, k+1),
			m.CornerIndex(i+1, j+1, k+1), m.CornerIndex(i, j+1, k+1))
	}
	fmt.Fprintf(bw, "CELL_TYPES %d\n", ne)
	for e := 0; e < ne; e++ {
		fmt.Fprintln(bw, 12) // VTK_HEXAHEDRON
	}
	if len(cellData) > 0 {
		fmt.Fprintf(bw, "CELL_DATA %d\n", ne)
		names := make([]string, 0, len(cellData))
		for name := range cellData {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			data := cellData[name]
			if len(data) != ne {
				return fmt.Errorf("mesh: cell data %q has %d values for %d elements", name, len(data), ne)
			}
			fmt.Fprintf(bw, "SCALARS %s double 1\nLOOKUP_TABLE default\n", name)
			for _, v := range data {
				fmt.Fprintf(bw, "%g\n", v)
			}
		}
	}
	return bw.Flush()
}
