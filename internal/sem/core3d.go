package sem

import (
	"golts/internal/gll"
	"golts/internal/mesh"
)

// core3d is the shared kernel core of the 3-D operators (acoustic,
// isotropic elastic, anisotropic elastic): the precomputed state that
// makes the stiffness kernels flat and allocation-free.
//
//   - conn is the flat gather/scatter table, built once at construction:
//     conn[e*n3+i] is the global node of element e's i-th local GLL node
//     (a fastest, then b, then c). ElemNodes, mass assembly, and the
//     AddKu kernels all read it; no call path re-derives element
//     connectivity through NodeIndex.
//   - dfl/dtf are the GLL derivative matrix and its transpose stored
//     row-major with stride nq (dfl[i*nq+j] = D[i][j] = l'_j(x_i)), so the
//     tensor contractions run over contiguous rows with no [][]float64
//     double indirection.
//
// The struct is embedded by value in each operator; the operators keep
// their exported M/Rule/Periodic fields and mirror them here for the
// kernels.
type core3d struct {
	msh           *mesh.Mesh
	rule          *gll.Rule
	deg           int
	nq, n3        int // nodes per axis (deg+1) and per element (deg+1)³
	nxn, nyn, nzn int
	periodic      bool

	conn []int32   // flat connectivity: numElements × n3 node ids
	dfl  []float64 // derivative matrix, row-major, stride nq
	dtf  []float64 // transposed derivative matrix, row-major, stride nq
	minv []float64 // per-node inverse lumped mass
}

// initCore fills the dimensions, the flat derivative matrices, and the
// connectivity table, then assembles the lumped mass.
func (c *core3d) initCore(m *mesh.Mesh, r *gll.Rule, deg int, periodic bool, rho []float64) {
	c.msh, c.rule, c.deg, c.periodic = m, r, deg, periodic
	c.nq = deg + 1
	c.n3 = c.nq * c.nq * c.nq
	c.nxn, c.nyn, c.nzn = deg*m.NX+1, deg*m.NY+1, deg*m.NZ+1
	if periodic {
		c.nxn, c.nyn, c.nzn = deg*m.NX, deg*m.NY, deg*m.NZ
	}
	c.dfl = make([]float64, c.nq*c.nq)
	c.dtf = make([]float64, c.nq*c.nq)
	for i := 0; i < c.nq; i++ {
		for j := 0; j < c.nq; j++ {
			c.dfl[i*c.nq+j] = r.D[i][j]
			c.dtf[i*c.nq+j] = r.D[j][i]
		}
	}
	ne := m.NumElements()
	c.conn = make([]int32, ne*c.n3)
	p := 0
	for e := 0; e < ne; e++ {
		i, j, k := m.ECoords(e)
		for cc := 0; cc < c.nq; cc++ {
			for b := 0; b < c.nq; b++ {
				for a := 0; a < c.nq; a++ {
					c.conn[p] = c.NodeIndex(deg*i+a, deg*j+b, deg*k+cc)
					p++
				}
			}
		}
	}
	c.assembleMass(rho)
}

// assembleMass builds the diagonal lumped mass from the flat connectivity.
func (c *core3d) assembleMass(rho []float64) {
	mass := make([]float64, c.NumNodes())
	w := c.rule.Weights
	nq := c.nq
	for e := 0; e < c.msh.NumElements(); e++ {
		dx, dy, dz := c.msh.ElemSize(e)
		jdet := dx * dy * dz / 8
		re := rho[e]
		nb := c.elemConn(e)
		idx := 0
		for cc := 0; cc < nq; cc++ {
			for b := 0; b < nq; b++ {
				for a := 0; a < nq; a++ {
					mass[nb[idx]] += re * w[a] * w[b] * w[cc] * jdet
					idx++
				}
			}
		}
	}
	c.minv = make([]float64, len(mass))
	for i, m := range mass {
		c.minv[i] = 1 / m
	}
}

// elemConn returns the connectivity view of element e: a zero-copy slice
// of the flat table.
func (c *core3d) elemConn(e int) []int32 {
	return c.conn[e*c.n3 : (e+1)*c.n3 : (e+1)*c.n3]
}

// NumNodes returns the unique global GLL node count.
func (c *core3d) NumNodes() int { return c.nxn * c.nyn * c.nzn }

// NumElements returns the mesh element count.
func (c *core3d) NumElements() int { return c.msh.NumElements() }

// MInv returns the per-node inverse lumped mass.
func (c *core3d) MInv() []float64 { return c.minv }

// NodeIndex maps per-axis GLL indices to the global node id, wrapping when
// periodic.
func (c *core3d) NodeIndex(i, j, k int) int32 {
	if c.periodic {
		if i == c.deg*c.msh.NX {
			i = 0
		}
		if j == c.deg*c.msh.NY {
			j = 0
		}
		if k == c.deg*c.msh.NZ {
			k = 0
		}
	}
	return int32((k*c.nyn+j)*c.nxn + i)
}

// ElemNodes appends the (deg+1)³ node ids of element e: a copy from the
// precomputed flat table.
func (c *core3d) ElemNodes(e int, buf []int32) []int32 {
	return append(buf, c.elemConn(e)...)
}

// ConnTable exposes the flat connectivity (implements Connectivity).
func (c *core3d) ConnTable() ([]int32, int) { return c.conn, c.n3 }

// NodeCoords returns the physical coordinates of node n.
func (c *core3d) NodeCoords(n int32) (x, y, z float64) {
	i := int(n) % c.nxn
	j := (int(n) / c.nxn) % c.nyn
	k := int(n) / (c.nxn * c.nyn)
	return axisCoord(c.rule, c.deg, c.msh.XC, i), axisCoord(c.rule, c.deg, c.msh.YC, j), axisCoord(c.rule, c.deg, c.msh.ZC, k)
}

func axisCoord(r *gll.Rule, deg int, bc []float64, gi int) float64 {
	e := gi / deg
	a := gi % deg
	if e == len(bc)-1 {
		e, a = len(bc)-2, deg
	}
	return bc[e] + (bc[e+1]-bc[e])*(r.Points[a]+1)/2
}
