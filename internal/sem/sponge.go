package sem

import "math"

// SpongeProfile builds a per-node damping coefficient σ for a sponge-layer
// absorbing boundary: σ rises quadratically from 0 at distance `width` from
// the selected faces to `strength` at the boundary. The time stepper applies
// v *= exp(-σ Δt) each step, which attenuates outgoing waves — a simple
// stand-in for the paper's absorbing boundary condition on the vertical and
// lower boundaries (§I-A).
//
// coords must return the physical position of node n; extent is the mesh
// bounding box; faces selects which of the six faces absorb, in the order
// x0, x1, y0, y1, z0, z1 (the paper keeps the free surface — typically z0 —
// non-absorbing).
func SpongeProfile(numNodes int, coords func(int32) (x, y, z float64),
	x0, x1, y0, y1, z0, z1 float64, faces [6]bool, width, strength float64) []float64 {
	sigma := make([]float64, numNodes)
	if width <= 0 || strength <= 0 {
		return sigma
	}
	ramp := func(dist float64) float64 {
		if dist >= width {
			return 0
		}
		r := 1 - dist/width
		return strength * r * r
	}
	for n := 0; n < numNodes; n++ {
		x, y, z := coords(int32(n))
		s := 0.0
		if faces[0] {
			s = math.Max(s, ramp(x-x0))
		}
		if faces[1] {
			s = math.Max(s, ramp(x1-x))
		}
		if faces[2] {
			s = math.Max(s, ramp(y-y0))
		}
		if faces[3] {
			s = math.Max(s, ramp(y1-y))
		}
		if faces[4] {
			s = math.Max(s, ramp(z-z0))
		}
		if faces[5] {
			s = math.Max(s, ramp(z1-z))
		}
		sigma[n] = s
	}
	return sigma
}
