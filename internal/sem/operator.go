// Package sem implements spectral element discretizations of the acoustic
// and elastic wave equations (paper §I-A/§I-B): a 1-D scalar operator and
// 3-D scalar (acoustic) and 3-component (isotropic elastic) operators on
// the structured hexahedral meshes of package mesh.
//
// The operators expose exactly what explicit time stepping needs: the
// diagonal inverse mass matrix and element-restricted accumulation of K·u,
// so both the global Newmark scheme (Eq. 5-6) and the multi-level
// LTS-Newmark scheme (Algorithm 1) can be built on top without knowing the
// discretization.
//
// All concrete operators share a flat kernel core: element connectivity is
// precomputed into one gather/scatter table at construction, the GLL
// derivative matrices are stored flat, and the AddKuScratch entry point
// runs with caller-owned scratch so the steady-state stepping loops
// perform zero heap allocations.
package sem

import (
	"fmt"
	"sort"
)

// Operator is a semi-discrete wave operator M ü = -K u + F with diagonal
// mass matrix. Degrees of freedom are laid out node-major: dof = node*Comps
// + comp.
type Operator interface {
	// NumNodes returns the number of global (shared) GLL nodes.
	NumNodes() int
	// Comps returns the number of field components per node (1 or 3).
	Comps() int
	// NDof returns NumNodes() * Comps().
	NDof() int
	// NumElements returns the number of spectral elements.
	NumElements() int
	// MInv returns the per-node inverse lumped mass (length NumNodes).
	// Entries set to zero encode Dirichlet (fixed) nodes.
	MInv() []float64
	// AddKu accumulates the stiffness contributions of the listed elements
	// into dst: dst += K_e u for each e in elems. Contributions from an
	// element whose nodal values are all zero are exactly zero, so
	// restricting elems to the support of u is lossless.
	AddKu(dst, u []float64, elems []int32)
	// AddKuScratch is AddKu with caller-owned kernel scratch: a warm
	// Scratch makes the call allocation-free, which the steady-state
	// stepping loops rely on. AddKu delegates here with pooled scratch.
	AddKuScratch(dst, u []float64, elems []int32, sc *Scratch)
	// ElemNodes appends the global node ids of element e to buf and
	// returns the extended slice.
	ElemNodes(e int, buf []int32) []int32
}

// Connectivity is an optional Operator extension exposing the precomputed
// flat gather/scatter table: ConnTable returns (conn, npe) such that
// conn[e*npe+i] is the global node id of element e's i-th local node. All
// concrete operators in this package implement it; consumers that walk
// element connectivity in bulk (LTS set construction, parallel plan
// building) read the table directly instead of copying through ElemNodes.
type Connectivity interface {
	ConnTable() (conn []int32, nodesPerElem int)
}

// Preparer is an optional Operator extension: implementations can
// precompute per-element-list execution state (ownership splits, merge
// plans) for lists that will be applied repeatedly. The steppers announce
// their stable lists — the global all-elements list, each LTS level's
// force elements — at construction time, so parallel backends never pay
// plan construction inside the stepping loop.
type Preparer interface {
	Prepare(elems []int32)
}

// Prepare announces a reusable element list to op if it supports it.
func Prepare(op Operator, elems []int32) {
	if p, ok := op.(Preparer); ok {
		p.Prepare(elems)
	}
}

// AllElements returns the identity element list [0, n).
func AllElements(op Operator) []int32 {
	n := op.NumElements()
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// NodesOf returns the sorted unique global node ids touched by the listed
// elements.
func NodesOf(op Operator, elems []int32) []int32 {
	seen := make([]bool, op.NumNodes())
	var nodes []int32
	var nb []int32
	conn, npe := ConnOf(op)
	for _, e := range elems {
		if conn != nil {
			nb = conn[int(e)*npe : (int(e)+1)*npe]
		} else {
			nb = op.ElemNodes(int(e), nb[:0])
		}
		for _, n := range nb {
			if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// ConnOf returns op's flat connectivity table when it exposes one, and
// (nil, 0) otherwise; callers treat nil as "fall back to ElemNodes". The
// single helper keeps every Connectivity consumer (LTS set construction,
// parallel plan building, NodesOf) on one contract.
func ConnOf(op Operator) ([]int32, int) {
	if ct, ok := op.(Connectivity); ok {
		return ct.ConnTable()
	}
	return nil, 0
}

// Restriction is an element list with its precomputed node support, for
// repeated restricted applications: where Accel pays O(NDof) zeroing and
// O(NumNodes) mass scaling regardless of the list, Restriction.Accel
// touches only the support.
type Restriction struct {
	// Elems is the element list (not copied; must not be mutated).
	Elems []int32
	// Nodes is the sorted unique node support of Elems.
	Nodes []int32
}

// NewRestriction precomputes the node support of elems.
func NewRestriction(op Operator, elems []int32) *Restriction {
	return &Restriction{Elems: elems, Nodes: NodesOf(op, elems)}
}

// Accel computes dst = -M⁻¹ K u over the restriction's elements, reading
// and writing only the support nodes: entries of dst outside r.Nodes are
// left untouched. With a warm Scratch the call is allocation-free.
func (r *Restriction) Accel(op Operator, dst, u []float64, sc *Scratch) {
	nc := op.Comps()
	for _, n := range r.Nodes {
		base := int(n) * nc
		for c := 0; c < nc; c++ {
			dst[base+c] = 0
		}
	}
	op.AddKuScratch(dst, u, r.Elems, sc)
	minv := op.MInv()
	for _, n := range r.Nodes {
		mi := minv[n]
		base := int(n) * nc
		for c := 0; c < nc; c++ {
			dst[base+c] *= -mi
		}
	}
}

// Energy returns the discrete mechanical energy ½vᵀMv + ½uᵀKu accumulated
// over the restriction's elements and node support. work must have length
// NDof with all-zero entries on the support; it is used as stiffness
// scratch and restored to zero on the support before returning, so a warm
// Scratch makes the call allocation-free — the plan-cache-aware diagnostic
// path the steppers' Energy methods use.
func (r *Restriction) Energy(op Operator, u, v, work []float64, sc *Scratch) float64 {
	nc := op.Comps()
	op.AddKuScratch(work, u, r.Elems, sc)
	minv := op.MInv()
	e := 0.0
	for _, n := range r.Nodes {
		base := int(n) * nc
		if minv[n] != 0 { // fixed nodes carry no kinetic energy
			m := 1 / minv[n]
			for c := 0; c < nc; c++ {
				d := base + c
				e += 0.5*m*v[d]*v[d] + 0.5*u[d]*work[d]
			}
		}
		for c := 0; c < nc; c++ {
			work[base+c] = 0
		}
	}
	return e
}

// Accel computes dst = -M⁻¹ K u over all elements (the right-hand side of
// Eq. 4 without sources). dst is overwritten. Callers holding a small
// restricted element list should prefer Restriction.Accel, which touches
// only the list's node support.
func Accel(op Operator, dst, u []float64, elems []int32) {
	for i := range dst {
		dst[i] = 0
	}
	op.AddKu(dst, u, elems)
	minv := op.MInv()
	nc := op.Comps()
	for n := 0; n < op.NumNodes(); n++ {
		mi := minv[n]
		for c := 0; c < nc; c++ {
			dst[n*nc+c] *= -mi
		}
	}
}

// Energy returns the discrete mechanical energy ½ vᵀMv + ½ uᵀKu over the
// listed elements' node support. For the staggered leap-frog scheme this
// quantity oscillates with amplitude O(Δt²) around a conserved value,
// which is what the conservation tests check. This is the one-shot
// convenience form; callers that evaluate repeatedly should hold a
// Restriction and call its Energy method with owned scratch.
func Energy(op Operator, u, v []float64, elems []int32, work []float64) float64 {
	if len(work) < len(u) {
		work = make([]float64, len(u))
	}
	work = work[:len(u)]
	for i := range work {
		work[i] = 0
	}
	var sc Scratch
	return NewRestriction(op, elems).Energy(op, u, v, work, &sc)
}

// checkLens panics with a descriptive message when a vector has the wrong
// length; used by the concrete operators' entry points.
func checkLens(op Operator, name string, v []float64) {
	if len(v) != op.NDof() {
		panic(fmt.Sprintf("sem: %s has length %d, want %d", name, len(v), op.NDof()))
	}
}
