//go:build amd64 && !purego

package sem

import (
	"os"
	"strings"
)

// Runtime dispatch of the five batched microkernel primitives. The hot
// batch loops (batch3d.go) call mul5/elStress8/... through these
// package-level function variables; applyTier repoints the whole table
// at once. A function-variable call costs nothing measurable next to a
// 5×5×(8..200)-flop kernel body and keeps every call site unchanged.
var (
	mul5v      func(dst, src, d []float64, n, blocks int)
	mul5accv   func(dst, src, d []float64, n, blocks int)
	elStress8v func(g, cst, w []float64)
	acStress8v func(f, cst, w []float64)
	anStress8v func(g, cst, w []float64)
)

// mul5 computes dst[g*5n+a*n+j] = Σ_m d[a*5+m]·src[g*5n+m*n+j] over
// `blocks` consecutive 5-row groups, with the same per-lane rounding
// chain as the scalar kernels (see mm5go), through the active tier.
func mul5(dst, src, d []float64, n, blocks int) { mul5v(dst, src, d, n, blocks) }

// mul5acc is mul5 accumulating into dst (see mm5accgo).
func mul5acc(dst, src, d []float64, n, blocks int) { mul5accv(dst, src, d, n, blocks) }

// elStress8 runs the batched elastic stress pass over one 8-lane deg=4
// block (see the pure-Go reference elStressN).
func elStress8(g, cst, w []float64) { elStress8v(g, cst, w) }

// acStress8 runs the batched acoustic pointwise pass over one 8-lane
// deg=4 block (see acStressN).
func acStress8(f, cst, w []float64) { acStress8v(f, cst, w) }

// anStress8 runs the batched anisotropic stress pass over one 8-lane
// deg=4 block (see anStressN).
func anStress8(g, cst, w []float64) { anStress8v(g, cst, w) }

// Pure-Go tier entries (forceable on amd64 too, so the cross-tier tests
// can pin every assembly tier against the references in one process).
func goMul5(dst, src, d []float64, n, blocks int)    { mm5go(dst, src, d, n, blocks) }
func goMul5acc(dst, src, d []float64, n, blocks int) { mm5accgo(dst, src, d, n, blocks) }
func goElStress8(g, cst, w []float64)                { elStressN(g, cst, w, 125) }
func goAcStress8(f, cst, w []float64)                { acStressN(f, cst, w, 125) }
func goAnStress8(g, cst, w []float64)                { anStressN(g, cst, w, 125) }

// applyTier repoints the dispatch table; callers guarantee t is usable.
func applyTier(t simdTier) {
	switch t {
	case tierAVX512:
		mul5v, mul5accv = avx512Mul5, avx512Mul5acc
		elStress8v, acStress8v, anStress8v = avx512ElStress8, avx512AcStress8, avx512AnStress8
	case tierAVX2:
		mul5v, mul5accv = avx2Mul5, avx2Mul5acc
		elStress8v, acStress8v, anStress8v = avx2ElStress8, avx2AcStress8, avx2AnStress8
	case tierSSE2:
		mul5v, mul5accv = sse2Mul5, sse2Mul5acc
		elStress8v, acStress8v, anStress8v = sse2ElStress8, sse2AcStress8, sse2AnStress8
	default:
		mul5v, mul5accv = goMul5, goMul5acc
		elStress8v, acStress8v, anStress8v = goElStress8, goAcStress8, goAnStress8
	}
	activeTier = t
}

// simdAvail is the usable-tier list, widest first (fixed at init).
var simdAvail []simdTier

func availableTiers() []simdTier { return simdAvail }

// simdCap parses GODEBUG for internal/cpu-style feature switches and
// returns the widest tier they allow. Only "=off" is honored; switching
// a tier off also rules out every wider tier (the ladder collapses
// downward, matching how the CI matrix forces each fallback path).
// "cpu.avx512f" is accepted alongside "cpu.avx512" because it is the Go
// runtime's own spelling — using it keeps the runtime from printing an
// "unknown cpu feature" warning on stderr.
func simdCap(godebug string) simdTier {
	cap := tierAVX512
	for _, kv := range strings.Split(godebug, ",") {
		switch strings.TrimSpace(kv) {
		case "cpu.avx512=off", "cpu.avx512f=off":
			if cap > tierAVX2 {
				cap = tierAVX2
			}
		case "cpu.avx2=off":
			if cap > tierSSE2 {
				cap = tierSSE2
			}
		case "cpu.sse2=off":
			cap = tierGo
		}
	}
	return cap
}

func init() {
	avx2, avx512 := cpuFeatures()
	max := simdCap(os.Getenv("GODEBUG"))
	if avx512 && max >= tierAVX512 {
		simdAvail = append(simdAvail, tierAVX512)
	}
	if avx2 && max >= tierAVX2 {
		simdAvail = append(simdAvail, tierAVX2)
	}
	if max >= tierSSE2 {
		simdAvail = append(simdAvail, tierSSE2)
	}
	simdAvail = append(simdAvail, tierGo)
	applyTier(simdAvail[0])
}

// cpuid and xgetbv are implemented in cpuid_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// cpuFeatures probes CPUID for the AVX2 and AVX-512 tiers: the ISA bits
// plus OS state support via OSXSAVE/XGETBV (XMM+YMM saved for AVX2;
// opmask+ZMM additionally for AVX-512), the same gates internal/cpu and
// golang.org/x/sys/cpu apply.
func cpuFeatures() (avx2, avx512 bool) {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false, false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false, false
	}
	xlo, _ := xgetbv()
	if xlo&0x6 != 0x6 { // XMM and YMM state enabled
		return false, false
	}
	_, b7, _, _ := cpuid(7, 0)
	avx2 = b7&(1<<5) != 0
	avx512 = avx2 && xlo&0xe0 == 0xe0 && b7&(1<<16) != 0 // opmask+ZMM state, AVX512F
	return avx2, avx512
}
