package sem

import (
	"testing"

	"golts/internal/race"
)

// forceTier forces the named SIMD tier for the duration of the test.
func forceTier(t *testing.T, name string) {
	t.Helper()
	restore, err := ForceSIMDTier(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restore)
}

// TestSIMDTierSemantics checks the dispatch bookkeeping: the usable-tier
// list shape, ForceSIMDTier errors, and restore behaviour.
func TestSIMDTierSemantics(t *testing.T) {
	tiers := SIMDTiers()
	if len(tiers) == 0 || tiers[len(tiers)-1] != "go" {
		t.Fatalf("SIMDTiers() = %v, want non-empty list ending in \"go\"", tiers)
	}
	if got := ActiveSIMDTier(); got != tiers[0] {
		t.Fatalf("ActiveSIMDTier() = %q, want widest usable tier %q", got, tiers[0])
	}
	if _, err := ForceSIMDTier("avx1024"); err == nil {
		t.Fatal("ForceSIMDTier accepted an unknown tier name")
	}
	usable := map[string]bool{}
	for _, name := range tiers {
		usable[name] = true
	}
	for _, name := range []string{"go", "sse2", "avx2", "avx512"} {
		if usable[name] {
			continue
		}
		if _, err := ForceSIMDTier(name); err == nil {
			t.Fatalf("ForceSIMDTier(%q) succeeded but the tier is not usable", name)
		}
	}
	prev := ActiveSIMDTier()
	restore, err := ForceSIMDTier("go")
	if err != nil {
		t.Fatal(err)
	}
	if got := ActiveSIMDTier(); got != "go" {
		restore()
		t.Fatalf("after ForceSIMDTier(go): ActiveSIMDTier() = %q", got)
	}
	restore()
	if got := ActiveSIMDTier(); got != prev {
		t.Fatalf("restore left tier %q, want %q", got, prev)
	}
}

// TestMul5PropertyAllTiers sweeps the mm5 microkernels across every
// usable tier against the pure-Go references, over small n (scalar-tail
// heavy) and odd block counts so the ragged-tail and block-advance logic
// of each vector width is exercised.
func TestMul5PropertyAllTiers(t *testing.T) {
	d := make([]float64, 25)
	randFill(d, 11)
	ns := []int{1, 2, 3, 4, 5, 6, 8, 13, 40, 200}
	blockCounts := []int{1, 3, 7, 17}
	for _, tier := range SIMDTiers() {
		t.Run(tier, func(t *testing.T) {
			forceTier(t, tier)
			for _, n := range ns {
				for _, blocks := range blockCounts {
					src := make([]float64, 5*n*blocks)
					randFill(src, uint64(31*n+blocks))
					want := make([]float64, len(src))
					got := make([]float64, len(src))
					mm5go(want, src, d, n, blocks)
					mul5(got, src, d, n, blocks)
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("mul5 n=%d blocks=%d idx=%d: got %v want %v", n, blocks, i, got[i], want[i])
						}
					}
					randFill(want, uint64(7*n+blocks))
					copy(got, want)
					mm5accgo(want, src, d, n, blocks)
					mul5acc(got, src, d, n, blocks)
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("mul5acc n=%d blocks=%d idx=%d: got %v want %v", n, blocks, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestStress8AllTiers pins the three deg=4 pointwise passes bitwise
// against their pure-Go references under every usable tier.
func TestStress8AllTiers(t *testing.T) {
	const pb = 125 * batchB
	w := make([]float64, 250)
	randPos(w, 13)
	for _, tier := range SIMDTiers() {
		t.Run(tier, func(t *testing.T) {
			forceTier(t, tier)
			t.Run("elastic", func(t *testing.T) {
				cst := make([]float64, elCstRows*batchB)
				randPos(cst, 14)
				want := make([]float64, 9*pb)
				randFill(want, 15)
				got := append([]float64(nil), want...)
				elStressN(want, cst, w, 125)
				elStress8(got, cst, w)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("idx %d: got %v want %v", i, got[i], want[i])
					}
				}
			})
			t.Run("acoustic", func(t *testing.T) {
				cst := make([]float64, acCstRows*batchB)
				randPos(cst, 16)
				want := make([]float64, 3*pb)
				randFill(want, 17)
				got := append([]float64(nil), want...)
				acStressN(want, cst, w, 125)
				acStress8(got, cst, w)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("idx %d: got %v want %v", i, got[i], want[i])
					}
				}
			})
			t.Run("anisotropic", func(t *testing.T) {
				cst := make([]float64, anCstRows*batchB)
				randPos(cst, 18)
				want := make([]float64, 9*pb)
				randFill(want, 19)
				got := append([]float64(nil), want...)
				anStressN(want, cst, w, 125)
				anStress8(got, cst, w)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("idx %d: got %v want %v", i, got[i], want[i])
					}
				}
			})
		})
	}
}

// TestAddKuBatchTiersBitwise runs the full batched stiffness application
// at deg=4 (the degree that hits all five dispatched primitives) under
// every usable tier and requires the outputs to be bitwise identical to
// the go-tier result.
func TestAddKuBatchTiersBitwise(t *testing.T) {
	m := batchMesh(t)
	for _, tc := range batchOps(t, m, 4, false) {
		nd := tc.op.NDof()
		u := make([]float64, nd)
		pseudoField(u)
		base := make([]float64, nd)
		randFill(base, 23)
		plan := tc.op.NewBatchPlan(AllElements(tc.op))
		var bs BatchScratch
		want := make([]float64, nd)
		{
			restore, err := ForceSIMDTier("go")
			if err != nil {
				t.Fatal(err)
			}
			copy(want, base)
			tc.op.AddKuBatch(want, u, plan, &bs)
			restore()
		}
		for _, tier := range SIMDTiers() {
			restore, err := ForceSIMDTier(tier)
			if err != nil {
				t.Fatal(err)
			}
			got := append([]float64(nil), base...)
			tc.op.AddKuBatch(got, u, plan, &bs)
			restore()
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s tier=%s dof=%d: %v != go-tier %v", tc.name, tier, i, got[i], want[i])
				}
			}
		}
	}
}

// TestAddKuBatchZeroAllocsAllTiers extends the zero-allocation pin to
// every usable tier, including the pure-Go fallback entries.
func TestAddKuBatchZeroAllocsAllTiers(t *testing.T) {
	if race.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	m := batchMesh(t)
	for _, tier := range SIMDTiers() {
		t.Run(tier, func(t *testing.T) {
			forceTier(t, tier)
			for _, tc := range batchOps(t, m, 4, false) {
				u := make([]float64, tc.op.NDof())
				pseudoField(u)
				dst := make([]float64, tc.op.NDof())
				plan := tc.op.NewBatchPlan(AllElements(tc.op))
				var bs BatchScratch
				tc.op.AddKuBatch(dst, u, plan, &bs) // warm the arena
				if n := testing.AllocsPerRun(5, func() {
					tc.op.AddKuBatch(dst, u, plan, &bs)
				}); n != 0 {
					t.Errorf("%s tier=%s: AddKuBatch allocates %v per op, want 0", tc.name, tier, n)
				}
			}
		})
	}
}

// TestSIMDCap checks the GODEBUG ladder parsing (amd64 builds; the
// noasm build has no cap to parse).
func TestSIMDCap(t *testing.T) {
	testSIMDCap(t)
}
