package sem

import (
	"fmt"

	"golts/internal/gll"
	"golts/internal/mesh"
)

// VoigtC is the elasticity tensor of Hooke's law (paper Eq. 2) in Voigt
// notation: a symmetric 6x6 matrix with up to 21 independent parameters
// (the fully anisotropic / triclinic case the paper mentions). Index order
// is the seismological convention [xx, yy, zz, yz, xz, xy], with
// engineering shear strains (γ = 2ε) on the strain side.
type VoigtC [6][6]float64

// IsotropicC builds the two-parameter isotropic tensor from the Lamé
// constants.
func IsotropicC(lam, mu float64) VoigtC {
	var c VoigtC
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			c[i][j] = lam
		}
		c[i][i] = lam + 2*mu
		c[i+3][i+3] = mu
	}
	return c
}

// VTIC builds a transversely isotropic tensor with a vertical symmetry
// axis from the five Love parameters (A, C, L, N, F) — the standard
// anisotropy model for layered Earth media.
func VTIC(a, cc, l, n, f float64) VoigtC {
	var c VoigtC
	c[0][0], c[1][1] = a, a
	c[2][2] = cc
	c[0][1], c[1][0] = a-2*n, a-2*n
	c[0][2], c[2][0] = f, f
	c[1][2], c[2][1] = f, f
	c[3][3], c[4][4] = l, l
	c[5][5] = n
	return c
}

// Symmetric reports whether the tensor has the required major symmetry.
func (c VoigtC) Symmetric() bool {
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if c[i][j] != c[j][i] {
				return false
			}
		}
	}
	return true
}

// Anisotropic3D is the 3-component elastic wave operator with a general
// (up to triclinic) elasticity tensor per element: T = C : ε(u), the
// unrestricted form of paper Eq. 2. It generalises Elastic3D, which it
// reproduces exactly when every element carries IsotropicC.
type Anisotropic3D struct {
	M    *mesh.Mesh
	Rule *gll.Rule
	// Periodic selects periodic boundaries (otherwise free surfaces).
	Periodic bool
	// C is the per-element elasticity tensor.
	C []VoigtC

	deg           int
	nxn, nyn, nzn int
	minv          []float64
}

// NewAnisotropic3D builds the operator; c must hold one symmetric tensor
// per element.
func NewAnisotropic3D(m *mesh.Mesh, deg int, periodic bool, c []VoigtC) (*Anisotropic3D, error) {
	if len(c) != m.NumElements() {
		return nil, fmt.Errorf("sem: %d tensors for %d elements", len(c), m.NumElements())
	}
	for e := range c {
		if !c[e].Symmetric() {
			return nil, fmt.Errorf("sem: element %d elasticity tensor not symmetric", e)
		}
	}
	r, err := gll.New(deg)
	if err != nil {
		return nil, err
	}
	op := &Anisotropic3D{M: m, Rule: r, Periodic: periodic, C: c, deg: deg}
	op.nxn, op.nyn, op.nzn = deg*m.NX+1, deg*m.NY+1, deg*m.NZ+1
	if periodic {
		op.nxn, op.nyn, op.nzn = deg*m.NX, deg*m.NY, deg*m.NZ
	}
	op.assembleMass()
	return op, nil
}

func (op *Anisotropic3D) assembleMass() {
	mass := make([]float64, op.NumNodes())
	w := op.Rule.Weights
	nq := op.deg + 1
	var nb []int32
	for e := 0; e < op.M.NumElements(); e++ {
		dx, dy, dz := op.M.ElemSize(e)
		jdet := dx * dy * dz / 8
		rho := op.M.Rho[e]
		nb = op.ElemNodes(e, nb[:0])
		idx := 0
		for c := 0; c < nq; c++ {
			for b := 0; b < nq; b++ {
				for a := 0; a < nq; a++ {
					mass[nb[idx]] += rho * w[a] * w[b] * w[c] * jdet
					idx++
				}
			}
		}
	}
	op.minv = make([]float64, len(mass))
	for i, m := range mass {
		op.minv[i] = 1 / m
	}
}

// NumNodes returns the unique GLL node count.
func (op *Anisotropic3D) NumNodes() int { return op.nxn * op.nyn * op.nzn }

// Comps returns 3.
func (op *Anisotropic3D) Comps() int { return 3 }

// NDof returns 3 * NumNodes().
func (op *Anisotropic3D) NDof() int { return 3 * op.NumNodes() }

// NumElements returns the element count.
func (op *Anisotropic3D) NumElements() int { return op.M.NumElements() }

// MInv returns the per-node inverse lumped mass.
func (op *Anisotropic3D) MInv() []float64 { return op.minv }

// NodeIndex maps per-axis GLL indices to the node id.
func (op *Anisotropic3D) NodeIndex(i, j, k int) int32 {
	if op.Periodic {
		if i == op.deg*op.M.NX {
			i = 0
		}
		if j == op.deg*op.M.NY {
			j = 0
		}
		if k == op.deg*op.M.NZ {
			k = 0
		}
	}
	return int32((k*op.nyn+j)*op.nxn + i)
}

// NodeCoords returns the physical coordinates of node n.
func (op *Anisotropic3D) NodeCoords(n int32) (x, y, z float64) {
	i := int(n) % op.nxn
	j := (int(n) / op.nxn) % op.nyn
	k := int(n) / (op.nxn * op.nyn)
	return axisCoord(op.Rule, op.deg, op.M.XC, i), axisCoord(op.Rule, op.deg, op.M.YC, j), axisCoord(op.Rule, op.deg, op.M.ZC, k)
}

// ElemNodes appends the (deg+1)³ node ids of element e.
func (op *Anisotropic3D) ElemNodes(e int, buf []int32) []int32 {
	i, j, k := op.M.ECoords(e)
	nq := op.deg + 1
	for c := 0; c < nq; c++ {
		for b := 0; b < nq; b++ {
			for a := 0; a < nq; a++ {
				buf = append(buf, op.NodeIndex(op.deg*i+a, op.deg*j+b, op.deg*k+c))
			}
		}
	}
	return buf
}

// AddKu accumulates dst += K u: per GLL point, the strain in Voigt form,
// the stress s = C e, and the transposed-gradient scatter.
func (op *Anisotropic3D) AddKu(dst, u []float64, elems []int32) {
	checkLens(op, "dst", dst)
	checkLens(op, "u", u)
	nq := op.deg + 1
	n3 := nq * nq * nq
	d := op.Rule.D
	w := op.Rule.Weights
	ue := make([][]float64, 3)
	var tf [3][3][]float64
	for c := 0; c < 3; c++ {
		ue[c] = make([]float64, n3)
		for dd := 0; dd < 3; dd++ {
			tf[c][dd] = make([]float64, n3)
		}
	}
	nb := make([]int32, 0, n3)
	idx := func(a, b, c int) int { return (c*nq+b)*nq + a }
	for _, e := range elems {
		dx, dy, dz := op.M.ElemSize(int(e))
		jdet := dx * dy * dz / 8
		alpha := [3]float64{2 / dx, 2 / dy, 2 / dz}
		cm := &op.C[e]
		nb = op.ElemNodes(int(e), nb[:0])
		for i, n := range nb {
			ue[0][i] = u[3*n]
			ue[1][i] = u[3*n+1]
			ue[2][i] = u[3*n+2]
		}
		for c := 0; c < nq; c++ {
			for b := 0; b < nq; b++ {
				for a := 0; a < nq; a++ {
					var g [3][3]float64
					for comp := 0; comp < 3; comp++ {
						var gx, gy, gz float64
						uc := ue[comp]
						for m := 0; m < nq; m++ {
							gx += d[a][m] * uc[idx(m, b, c)]
							gy += d[b][m] * uc[idx(a, m, c)]
							gz += d[c][m] * uc[idx(a, b, m)]
						}
						g[comp][0] = alpha[0] * gx
						g[comp][1] = alpha[1] * gy
						g[comp][2] = alpha[2] * gz
					}
					// Voigt strain with engineering shears.
					ev := [6]float64{
						g[0][0], g[1][1], g[2][2],
						g[1][2] + g[2][1], g[0][2] + g[2][0], g[0][1] + g[1][0],
					}
					var sv [6]float64
					for i := 0; i < 6; i++ {
						s := 0.0
						for j := 0; j < 6; j++ {
							s += cm[i][j] * ev[j]
						}
						sv[i] = s
					}
					// Stress tensor from Voigt stress.
					t3 := [3][3]float64{
						{sv[0], sv[5], sv[4]},
						{sv[5], sv[1], sv[3]},
						{sv[4], sv[3], sv[2]},
					}
					wq := w[a] * w[b] * w[c] * jdet
					q := idx(a, b, c)
					for comp := 0; comp < 3; comp++ {
						for ax := 0; ax < 3; ax++ {
							tf[comp][ax][q] = wq * alpha[ax] * t3[comp][ax]
						}
					}
				}
			}
		}
		for c := 0; c < nq; c++ {
			for b := 0; b < nq; b++ {
				for a := 0; a < nq; a++ {
					n := nb[idx(a, b, c)]
					for comp := 0; comp < 3; comp++ {
						var acc float64
						tx, ty, tz := tf[comp][0], tf[comp][1], tf[comp][2]
						for m := 0; m < nq; m++ {
							acc += d[m][a]*tx[idx(m, b, c)] + d[m][b]*ty[idx(a, m, c)] + d[m][c]*tz[idx(a, b, m)]
						}
						dst[3*int(n)+comp] += acc
					}
				}
			}
		}
	}
}

var _ Operator = (*Anisotropic3D)(nil)

func (op *Anisotropic3D) String() string {
	return fmt.Sprintf("Anisotropic3D(%s, deg=%d, nodes=%d)", op.M.Name, op.deg, op.NumNodes())
}
