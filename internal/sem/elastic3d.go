package sem

import (
	"fmt"

	"golts/internal/gll"
	"golts/internal/mesh"
)

// Elastic3D is the 3-component isotropic elastic wave operator
// ρ ü = ∇·T, T = λ (∇·u) I + 2 μ ε(u) (paper Eqs. 1-2 with the isotropic
// specialisation of Hooke's law), discretized with tensor-product GLL
// bases on a structured hexahedral mesh. The mesh's C field is the
// compressional speed c_p; the shear speed is c_s = CsRatio * c_p
// (default 1/√3, a Poisson solid).
type Elastic3D struct {
	M    *mesh.Mesh
	Rule *gll.Rule
	// Periodic selects periodic boundaries; otherwise all faces are free
	// surfaces (the natural boundary condition r̂·T = 0 of Eq. 1).
	Periodic bool
	// CsRatio is c_s / c_p per element.
	CsRatio float64

	deg           int
	nxn, nyn, nzn int
	minv          []float64
}

// NewElastic3D builds the elastic operator on mesh m with basis degree deg.
// csRatio <= 0 selects the Poisson-solid default 1/√3.
func NewElastic3D(m *mesh.Mesh, deg int, periodic bool, csRatio float64) (*Elastic3D, error) {
	r, err := gll.New(deg)
	if err != nil {
		return nil, err
	}
	if csRatio <= 0 {
		csRatio = 0.5773502691896258 // 1/√3
	}
	if csRatio*csRatio >= 0.75 {
		// λ = ρ(c_p² − 2 c_s²) must stay positive-definite combined with μ;
		// physically c_s/c_p < √3/2 ≈ 0.866 keeps λ > -(2/3)μ; we require
		// λ >= 0 for simplicity: c_s²/c_p² <= 1/2... allow up to 0.75 with
		// warning-free behaviour but reject beyond.
		return nil, fmt.Errorf("sem: cs/cp ratio %v too large (need < √3/2)", csRatio)
	}
	op := &Elastic3D{M: m, Rule: r, Periodic: periodic, CsRatio: csRatio, deg: deg}
	op.nxn, op.nyn, op.nzn = deg*m.NX+1, deg*m.NY+1, deg*m.NZ+1
	if periodic {
		op.nxn, op.nyn, op.nzn = deg*m.NX, deg*m.NY, deg*m.NZ
	}
	op.assembleMass()
	return op, nil
}

func (op *Elastic3D) assembleMass() {
	mass := make([]float64, op.NumNodes())
	w := op.Rule.Weights
	nq := op.deg + 1
	var nb []int32
	for e := 0; e < op.M.NumElements(); e++ {
		dx, dy, dz := op.M.ElemSize(e)
		jdet := dx * dy * dz / 8
		rho := op.M.Rho[e]
		nb = op.ElemNodes(e, nb[:0])
		idx := 0
		for c := 0; c < nq; c++ {
			for b := 0; b < nq; b++ {
				for a := 0; a < nq; a++ {
					mass[nb[idx]] += rho * w[a] * w[b] * w[c] * jdet
					idx++
				}
			}
		}
	}
	op.minv = make([]float64, len(mass))
	for i, m := range mass {
		op.minv[i] = 1 / m
	}
}

// Lame returns the Lamé parameters (λ, μ) of element e.
func (op *Elastic3D) Lame(e int) (lam, mu float64) {
	cp := op.M.C[e]
	cs := op.CsRatio * cp
	rho := op.M.Rho[e]
	mu = rho * cs * cs
	lam = rho * (cp*cp - 2*cs*cs)
	return lam, mu
}

// NumNodes returns the unique global GLL node count.
func (op *Elastic3D) NumNodes() int { return op.nxn * op.nyn * op.nzn }

// Comps returns 3 (displacement components).
func (op *Elastic3D) Comps() int { return 3 }

// NDof returns 3 * NumNodes().
func (op *Elastic3D) NDof() int { return 3 * op.NumNodes() }

// NumElements returns the mesh element count.
func (op *Elastic3D) NumElements() int { return op.M.NumElements() }

// MInv returns the per-node inverse lumped mass.
func (op *Elastic3D) MInv() []float64 { return op.minv }

// NodeIndex maps per-axis GLL indices to the global node id.
func (op *Elastic3D) NodeIndex(i, j, k int) int32 {
	if op.Periodic {
		if i == op.deg*op.M.NX {
			i = 0
		}
		if j == op.deg*op.M.NY {
			j = 0
		}
		if k == op.deg*op.M.NZ {
			k = 0
		}
	}
	return int32((k*op.nyn+j)*op.nxn + i)
}

// NodeCoords returns the physical coordinates of node n.
func (op *Elastic3D) NodeCoords(n int32) (x, y, z float64) {
	i := int(n) % op.nxn
	j := (int(n) / op.nxn) % op.nyn
	k := int(n) / (op.nxn * op.nyn)
	return axisCoord(op.Rule, op.deg, op.M.XC, i), axisCoord(op.Rule, op.deg, op.M.YC, j), axisCoord(op.Rule, op.deg, op.M.ZC, k)
}

func axisCoord(r *gll.Rule, deg int, bc []float64, gi int) float64 {
	e := gi / deg
	a := gi % deg
	if e == len(bc)-1 {
		e, a = len(bc)-2, deg
	}
	return bc[e] + (bc[e+1]-bc[e])*(r.Points[a]+1)/2
}

// ElemNodes appends the (deg+1)³ node ids of element e.
func (op *Elastic3D) ElemNodes(e int, buf []int32) []int32 {
	i, j, k := op.M.ECoords(e)
	nq := op.deg + 1
	for c := 0; c < nq; c++ {
		for b := 0; b < nq; b++ {
			for a := 0; a < nq; a++ {
				buf = append(buf, op.NodeIndex(op.deg*i+a, op.deg*j+b, op.deg*k+c))
			}
		}
	}
	return buf
}

// AddKu accumulates dst += K u for the listed elements. Per GLL point the
// kernel computes the displacement gradient (nine tensor contractions),
// forms the isotropic stress T = λ tr(ε) I + 2 μ ε, and scatters
// w J T : ∇φ back with the transposed derivative matrices — the structure
// of the SPECFEM3D forces kernel on undeformed elements.
func (op *Elastic3D) AddKu(dst, u []float64, elems []int32) {
	checkLens(op, "dst", dst)
	checkLens(op, "u", u)
	nq := op.deg + 1
	n3 := nq * nq * nq
	d := op.Rule.D
	w := op.Rule.Weights
	// Element-local buffers: displacement per component and stress-flux
	// terms t[c][d] = w J T_{cd} * metric factor for axis d.
	ue := make([][]float64, 3)
	var tf [3][3][]float64
	for c := 0; c < 3; c++ {
		ue[c] = make([]float64, n3)
		for dd := 0; dd < 3; dd++ {
			tf[c][dd] = make([]float64, n3)
		}
	}
	nb := make([]int32, 0, n3)
	idx := func(a, b, c int) int { return (c*nq+b)*nq + a }
	for _, e := range elems {
		dx, dy, dz := op.M.ElemSize(int(e))
		jdet := dx * dy * dz / 8
		alpha := [3]float64{2 / dx, 2 / dy, 2 / dz}
		lam, mu := op.Lame(int(e))
		nb = op.ElemNodes(int(e), nb[:0])
		for i, n := range nb {
			ue[0][i] = u[3*n]
			ue[1][i] = u[3*n+1]
			ue[2][i] = u[3*n+2]
		}
		for c := 0; c < nq; c++ {
			for b := 0; b < nq; b++ {
				for a := 0; a < nq; a++ {
					// Displacement gradient G[comp][axis].
					var g [3][3]float64
					for comp := 0; comp < 3; comp++ {
						var gx, gy, gz float64
						uc := ue[comp]
						for m := 0; m < nq; m++ {
							gx += d[a][m] * uc[idx(m, b, c)]
							gy += d[b][m] * uc[idx(a, m, c)]
							gz += d[c][m] * uc[idx(a, b, m)]
						}
						g[comp][0] = alpha[0] * gx
						g[comp][1] = alpha[1] * gy
						g[comp][2] = alpha[2] * gz
					}
					tr := g[0][0] + g[1][1] + g[2][2]
					wq := w[a] * w[b] * w[c] * jdet
					q := idx(a, b, c)
					for comp := 0; comp < 3; comp++ {
						for ax := 0; ax < 3; ax++ {
							t := mu * (g[comp][ax] + g[ax][comp])
							if comp == ax {
								t += lam * tr
							}
							// Include the test-function metric factor for
							// axis ax so the scatter is a pure transposed
							// derivative contraction.
							tf[comp][ax][q] = wq * alpha[ax] * t
						}
					}
				}
			}
		}
		for c := 0; c < nq; c++ {
			for b := 0; b < nq; b++ {
				for a := 0; a < nq; a++ {
					n := nb[idx(a, b, c)]
					for comp := 0; comp < 3; comp++ {
						var acc float64
						tx, ty, tz := tf[comp][0], tf[comp][1], tf[comp][2]
						for m := 0; m < nq; m++ {
							acc += d[m][a]*tx[idx(m, b, c)] + d[m][b]*ty[idx(a, m, c)] + d[m][c]*tz[idx(a, b, m)]
						}
						dst[3*int(n)+comp] += acc
					}
				}
			}
		}
	}
}

var _ Operator = (*Elastic3D)(nil)

func (op *Elastic3D) String() string {
	return fmt.Sprintf("Elastic3D(%s, deg=%d, nodes=%d, periodic=%v)", op.M.Name, op.deg, op.NumNodes(), op.Periodic)
}
