package sem

import (
	"fmt"

	"golts/internal/gll"
	"golts/internal/mesh"
)

// Elastic3D is the 3-component isotropic elastic wave operator
// ρ ü = ∇·T, T = λ (∇·u) I + 2 μ ε(u) (paper Eqs. 1-2 with the isotropic
// specialisation of Hooke's law), discretized with tensor-product GLL
// bases on a structured hexahedral mesh. The mesh's C field is the
// compressional speed c_p; the shear speed is c_s = CsRatio * c_p
// (default 1/√3, a Poisson solid).
type Elastic3D struct {
	M    *mesh.Mesh
	Rule *gll.Rule
	// Periodic selects periodic boundaries; otherwise all faces are free
	// surfaces (the natural boundary condition r̂·T = 0 of Eq. 1).
	Periodic bool
	// CsRatio is c_s / c_p per element.
	CsRatio float64

	core3d
}

// NewElastic3D builds the elastic operator on mesh m with basis degree deg.
// csRatio <= 0 selects the Poisson-solid default 1/√3.
func NewElastic3D(m *mesh.Mesh, deg int, periodic bool, csRatio float64) (*Elastic3D, error) {
	r, err := gll.New(deg)
	if err != nil {
		return nil, err
	}
	if csRatio <= 0 {
		csRatio = 0.5773502691896258 // 1/√3
	}
	if csRatio*csRatio >= 0.75 {
		// λ = ρ(c_p² − 2 c_s²) must stay positive-definite combined with μ;
		// physically c_s/c_p < √3/2 ≈ 0.866 keeps λ > -(2/3)μ; we require
		// λ >= 0 for simplicity: c_s²/c_p² <= 1/2... allow up to 0.75 with
		// warning-free behaviour but reject beyond.
		return nil, fmt.Errorf("sem: cs/cp ratio %v too large (need < √3/2)", csRatio)
	}
	op := &Elastic3D{M: m, Rule: r, Periodic: periodic, CsRatio: csRatio}
	op.initCore(m, r, deg, periodic, m.Rho)
	return op, nil
}

// Lame returns the Lamé parameters (λ, μ) of element e.
func (op *Elastic3D) Lame(e int) (lam, mu float64) {
	cp := op.M.C[e]
	cs := op.CsRatio * cp
	rho := op.M.Rho[e]
	mu = rho * cs * cs
	lam = rho * (cp*cp - 2*cs*cs)
	return lam, mu
}

// Comps returns 3 (displacement components).
func (op *Elastic3D) Comps() int { return 3 }

// NDof returns 3 * NumNodes().
func (op *Elastic3D) NDof() int { return 3 * op.NumNodes() }

// AddKu accumulates dst += K u for the listed elements, using a pooled
// scratch. Hot callers hold their own Scratch and call AddKuScratch.
func (op *Elastic3D) AddKu(dst, u []float64, elems []int32) {
	sc := scratchPool.Get().(*Scratch)
	op.AddKuScratch(dst, u, elems, sc)
	scratchPool.Put(sc)
}

// AddKuScratch accumulates dst += K u for the listed elements. Per GLL
// point the kernel computes the displacement gradient (nine tensor
// contractions), forms the isotropic stress T = λ tr(ε) I + 2 μ ε, and
// scatters w J T : ∇φ back with the transposed derivative matrices — the
// structure of the SPECFEM3D forces kernel on undeformed elements. All
// element state (connectivity, derivative matrices) is precomputed flat;
// zero heap allocations once sc is warm.
func (op *Elastic3D) AddKuScratch(dst, u []float64, elems []int32, sc *Scratch) {
	checkLens(op, "dst", dst)
	checkLens(op, "u", u)
	if op.deg == 4 {
		op.addKu5(dst, u, elems, sc)
		return
	}
	nq, n3 := op.nq, op.n3
	d, dt := op.dfl, op.dtf
	w := op.Rule.Weights
	// Element-local buffers: displacement per component and stress-flux
	// terms t[3*comp+axis] = w J alpha[axis] T_{comp,axis}.
	buf := sc.floats(12 * n3)
	ux := buf[0*n3 : 1*n3]
	uy := buf[1*n3 : 2*n3]
	uz := buf[2*n3 : 3*n3]
	var tf [9][]float64
	for i := range tf {
		tf[i] = buf[(3+i)*n3 : (4+i)*n3]
	}
	for _, e := range elems {
		dx, dy, dz := op.M.ElemSize(int(e))
		jdet := dx * dy * dz / 8
		ax, ay, az := 2/dx, 2/dy, 2/dz
		lam, mu := op.Lame(int(e))
		nb := op.elemConn(int(e))
		for i, n := range nb {
			j := 3 * int(n)
			ux[i], uy[i], uz[i] = u[j], u[j+1], u[j+2]
		}
		for c := 0; c < nq; c++ {
			dc := d[c*nq : c*nq+nq]
			for b := 0; b < nq; b++ {
				db := d[b*nq : b*nq+nq]
				cb := (c*nq + b) * nq
				wbc := w[b] * w[c] * jdet
				for a := 0; a < nq; a++ {
					da := d[a*nq : a*nq+nq]
					yi := c*nq*nq + a
					zi := b*nq + a
					// Displacement gradient g[comp][axis].
					var g00, g01, g02, g10, g11, g12, g20, g21, g22 float64
					for m := 0; m < nq; m++ {
						dm, em, fm := da[m], db[m], dc[m]
						xm, ym, zm := cb+m, yi+m*nq, zi+m*nq*nq
						g00 += dm * ux[xm]
						g01 += em * ux[ym]
						g02 += fm * ux[zm]
						g10 += dm * uy[xm]
						g11 += em * uy[ym]
						g12 += fm * uy[zm]
						g20 += dm * uz[xm]
						g21 += em * uz[ym]
						g22 += fm * uz[zm]
					}
					g00 *= ax
					g01 *= ay
					g02 *= az
					g10 *= ax
					g11 *= ay
					g12 *= az
					g20 *= ax
					g21 *= ay
					g22 *= az
					tr := g00 + g11 + g22
					wq := w[a] * wbc
					wx, wy, wz := wq*ax, wq*ay, wq*az
					q := cb + a
					// Include the test-function metric factor per axis so
					// the scatter is a pure transposed contraction.
					tf[0][q] = wx * (2*mu*g00 + lam*tr)
					tf[1][q] = wy * (mu * (g01 + g10))
					tf[2][q] = wz * (mu * (g02 + g20))
					tf[3][q] = wx * (mu * (g10 + g01))
					tf[4][q] = wy * (2*mu*g11 + lam*tr)
					tf[5][q] = wz * (mu * (g12 + g21))
					tf[6][q] = wx * (mu * (g20 + g02))
					tf[7][q] = wy * (mu * (g21 + g12))
					tf[8][q] = wz * (2*mu*g22 + lam*tr)
				}
			}
		}
		for c := 0; c < nq; c++ {
			dc := dt[c*nq : c*nq+nq]
			for b := 0; b < nq; b++ {
				db := dt[b*nq : b*nq+nq]
				cb := (c*nq + b) * nq
				for a := 0; a < nq; a++ {
					da := dt[a*nq : a*nq+nq]
					yi := c*nq*nq + a
					zi := b*nq + a
					// Axis sums in x-then-y-then-z order: the same chain as
					// the deg=4 kernel and the batched axis sweeps, so all
					// three paths are bitwise-identical.
					var s0, s1, s2 float64
					for m := 0; m < nq; m++ {
						dm, xm := da[m], cb+m
						s0 += dm * tf[0][xm]
						s1 += dm * tf[3][xm]
						s2 += dm * tf[6][xm]
					}
					for m := 0; m < nq; m++ {
						em, ym := db[m], yi+m*nq
						s0 += em * tf[1][ym]
						s1 += em * tf[4][ym]
						s2 += em * tf[7][ym]
					}
					for m := 0; m < nq; m++ {
						fm, zm := dc[m], zi+m*nq*nq
						s0 += fm * tf[2][zm]
						s1 += fm * tf[5][zm]
						s2 += fm * tf[8][zm]
					}
					j := 3 * int(nb[cb+a])
					dst[j] += s0
					dst[j+1] += s1
					dst[j+2] += s2
				}
			}
		}
	}
}

// addKu5 is the specialised deg=4 (125-node, 375-dof) elastic kernel used
// by the paper's experiments: fixed loop bounds, fully unrolled length-5
// contractions, array-pointer element buffers.
func (op *Elastic3D) addKu5(dst, u []float64, elems []int32, sc *Scratch) {
	const n3 = 125
	buf := sc.floats(12 * n3)
	ux := (*[n3]float64)(buf[0*n3:])
	uy := (*[n3]float64)(buf[1*n3:])
	uz := (*[n3]float64)(buf[2*n3:])
	t0 := (*[n3]float64)(buf[3*n3:])
	t1 := (*[n3]float64)(buf[4*n3:])
	t2 := (*[n3]float64)(buf[5*n3:])
	t3 := (*[n3]float64)(buf[6*n3:])
	t4 := (*[n3]float64)(buf[7*n3:])
	t5 := (*[n3]float64)(buf[8*n3:])
	t6 := (*[n3]float64)(buf[9*n3:])
	t7 := (*[n3]float64)(buf[10*n3:])
	t8 := (*[n3]float64)(buf[11*n3:])
	d := (*[25]float64)(op.dfl)
	dt := (*[25]float64)(op.dtf)
	w := (*[5]float64)(op.Rule.Weights)
	for _, e := range elems {
		dx, dy, dz := op.M.ElemSize(int(e))
		jdet := dx * dy * dz / 8
		ax, ay, az := 2/dx, 2/dy, 2/dz
		lam, mu := op.Lame(int(e))
		nb := op.elemConn(int(e))
		for i, n := range nb {
			j := 3 * int(n)
			ux[i], uy[i], uz[i] = u[j], u[j+1], u[j+2]
		}
		for c := 0; c < 5; c++ {
			c0, c1, c2, c3, c4 := d[c*5], d[c*5+1], d[c*5+2], d[c*5+3], d[c*5+4]
			for b := 0; b < 5; b++ {
				b0, b1, b2, b3, b4 := d[b*5], d[b*5+1], d[b*5+2], d[b*5+3], d[b*5+4]
				cb := (c*5 + b) * 5
				wbc := w[b] * w[c] * jdet
				for a := 0; a < 5; a++ {
					a0, a1, a2, a3, a4 := d[a*5], d[a*5+1], d[a*5+2], d[a*5+3], d[a*5+4]
					yi := c*25 + a
					zi := b*5 + a
					g00 := ax * (a0*ux[cb] + a1*ux[cb+1] + a2*ux[cb+2] + a3*ux[cb+3] + a4*ux[cb+4])
					g01 := ay * (b0*ux[yi] + b1*ux[yi+5] + b2*ux[yi+10] + b3*ux[yi+15] + b4*ux[yi+20])
					g02 := az * (c0*ux[zi] + c1*ux[zi+25] + c2*ux[zi+50] + c3*ux[zi+75] + c4*ux[zi+100])
					g10 := ax * (a0*uy[cb] + a1*uy[cb+1] + a2*uy[cb+2] + a3*uy[cb+3] + a4*uy[cb+4])
					g11 := ay * (b0*uy[yi] + b1*uy[yi+5] + b2*uy[yi+10] + b3*uy[yi+15] + b4*uy[yi+20])
					g12 := az * (c0*uy[zi] + c1*uy[zi+25] + c2*uy[zi+50] + c3*uy[zi+75] + c4*uy[zi+100])
					g20 := ax * (a0*uz[cb] + a1*uz[cb+1] + a2*uz[cb+2] + a3*uz[cb+3] + a4*uz[cb+4])
					g21 := ay * (b0*uz[yi] + b1*uz[yi+5] + b2*uz[yi+10] + b3*uz[yi+15] + b4*uz[yi+20])
					g22 := az * (c0*uz[zi] + c1*uz[zi+25] + c2*uz[zi+50] + c3*uz[zi+75] + c4*uz[zi+100])
					tr := g00 + g11 + g22
					wq := w[a] * wbc
					wx, wy, wz := wq*ax, wq*ay, wq*az
					q := cb + a
					t0[q] = wx * (2*mu*g00 + lam*tr)
					t1[q] = wy * (mu * (g01 + g10))
					t2[q] = wz * (mu * (g02 + g20))
					t3[q] = wx * (mu * (g10 + g01))
					t4[q] = wy * (2*mu*g11 + lam*tr)
					t5[q] = wz * (mu * (g12 + g21))
					t6[q] = wx * (mu * (g20 + g02))
					t7[q] = wy * (mu * (g21 + g12))
					t8[q] = wz * (2*mu*g22 + lam*tr)
				}
			}
		}
		for c := 0; c < 5; c++ {
			c0, c1, c2, c3, c4 := dt[c*5], dt[c*5+1], dt[c*5+2], dt[c*5+3], dt[c*5+4]
			for b := 0; b < 5; b++ {
				b0, b1, b2, b3, b4 := dt[b*5], dt[b*5+1], dt[b*5+2], dt[b*5+3], dt[b*5+4]
				cb := (c*5 + b) * 5
				for a := 0; a < 5; a++ {
					a0, a1, a2, a3, a4 := dt[a*5], dt[a*5+1], dt[a*5+2], dt[a*5+3], dt[a*5+4]
					yi := c*25 + a
					zi := b*5 + a
					s0 := a0*t0[cb] + a1*t0[cb+1] + a2*t0[cb+2] + a3*t0[cb+3] + a4*t0[cb+4] +
						b0*t1[yi] + b1*t1[yi+5] + b2*t1[yi+10] + b3*t1[yi+15] + b4*t1[yi+20] +
						c0*t2[zi] + c1*t2[zi+25] + c2*t2[zi+50] + c3*t2[zi+75] + c4*t2[zi+100]
					s1 := a0*t3[cb] + a1*t3[cb+1] + a2*t3[cb+2] + a3*t3[cb+3] + a4*t3[cb+4] +
						b0*t4[yi] + b1*t4[yi+5] + b2*t4[yi+10] + b3*t4[yi+15] + b4*t4[yi+20] +
						c0*t5[zi] + c1*t5[zi+25] + c2*t5[zi+50] + c3*t5[zi+75] + c4*t5[zi+100]
					s2 := a0*t6[cb] + a1*t6[cb+1] + a2*t6[cb+2] + a3*t6[cb+3] + a4*t6[cb+4] +
						b0*t7[yi] + b1*t7[yi+5] + b2*t7[yi+10] + b3*t7[yi+15] + b4*t7[yi+20] +
						c0*t8[zi] + c1*t8[zi+25] + c2*t8[zi+50] + c3*t8[zi+75] + c4*t8[zi+100]
					j := 3 * int(nb[cb+a])
					dst[j] += s0
					dst[j+1] += s1
					dst[j+2] += s2
				}
			}
		}
	}
}

var (
	_ Operator     = (*Elastic3D)(nil)
	_ Connectivity = (*Elastic3D)(nil)
)

func (op *Elastic3D) String() string {
	return fmt.Sprintf("Elastic3D(%s, deg=%d, nodes=%d, periodic=%v)", op.M.Name, op.deg, op.NumNodes(), op.Periodic)
}
