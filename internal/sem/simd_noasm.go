//go:build !amd64 || purego

package sem

// Without assembly (non-amd64 targets, or the `purego` build tag) the
// only tier is the pure-Go reference path; the mul5/stress entry points
// are bound directly in mm5_noasm.go, so there is no dispatch table to
// repoint.

func availableTiers() []simdTier { return []simdTier{tierGo} }

func applyTier(t simdTier) { activeTier = t }
