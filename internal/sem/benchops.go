package sem

import "golts/internal/mesh"

// KernelBenchCase is one operator fixture of the kernel benchmark suite.
type KernelBenchCase struct {
	Name string
	Op   Operator
}

// KernelBenchOperators builds the canonical operator set used by both
// BenchmarkAddKu (internal/sem) and cmd/kernelbench, so the in-repo
// benchmark and the BENCH_kernels.json trajectory measure the same
// workload: uniform meshes sized to realistic per-apply working sets, a
// VTI anisotropic tensor, and a 256-element 1-D line.
func KernelBenchOperators(deg int) ([]KernelBenchCase, error) {
	m := mesh.Uniform(6, 6, 6, 1, 1)
	ac, err := NewAcoustic3D(m, deg, false)
	if err != nil {
		return nil, err
	}
	me := mesh.Uniform(4, 4, 4, 1, 1)
	el, err := NewElastic3D(me, deg, false, 0)
	if err != nil {
		return nil, err
	}
	cs := make([]VoigtC, me.NumElements())
	for e := range cs {
		cs[e] = VTIC(4, 3.6, 1.1, 1.3, 1.4)
	}
	an, err := NewAnisotropic3D(me, deg, false, cs)
	if err != nil {
		return nil, err
	}
	xc := make([]float64, 257)
	cl := make([]float64, 256)
	rho := make([]float64, 256)
	for i := range xc {
		xc[i] = float64(i)
	}
	for i := range cl {
		cl[i], rho[i] = 1, 1
	}
	o1, err := NewOp1D(xc, cl, rho, deg, FreeBC, FreeBC)
	if err != nil {
		return nil, err
	}
	return []KernelBenchCase{
		{"Op1D", o1}, {"Acoustic3D", ac}, {"Elastic3D", el}, {"Anisotropic3D", an},
	}, nil
}

// KernelSweepOperators builds the batch-sweep fixtures: 512-element
// meshes (8×8×8 boxes, a 512-element line) so the batched-kernel sweep
// can run element-list sizes up to 512 with realistic shared-face
// gather/scatter overlap. All returned operators implement BatchKernel.
func KernelSweepOperators(deg int) ([]KernelBenchCase, error) {
	m := mesh.Uniform(8, 8, 8, 1, 1)
	ac, err := NewAcoustic3D(m, deg, false)
	if err != nil {
		return nil, err
	}
	el, err := NewElastic3D(m, deg, false, 0)
	if err != nil {
		return nil, err
	}
	cs := make([]VoigtC, m.NumElements())
	for e := range cs {
		cs[e] = VTIC(4, 3.6, 1.1, 1.3, 1.4)
	}
	an, err := NewAnisotropic3D(m, deg, false, cs)
	if err != nil {
		return nil, err
	}
	xc := make([]float64, 513)
	cl := make([]float64, 512)
	rho := make([]float64, 512)
	for i := range xc {
		xc[i] = float64(i)
	}
	for i := range cl {
		cl[i], rho[i] = 1, 1
	}
	o1, err := NewOp1D(xc, cl, rho, deg, FreeBC, FreeBC)
	if err != nil {
		return nil, err
	}
	return []KernelBenchCase{
		{"Op1D", o1}, {"Acoustic3D", ac}, {"Elastic3D", el}, {"Anisotropic3D", an},
	}, nil
}

// BenchField fills u with the deterministic non-smooth pseudo-random
// field shared by the kernel tests and benchmarks.
func BenchField(u []float64) {
	s := uint64(12345)
	for i := range u {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		u[i] = float64(int64(s)) / float64(1<<63)
	}
}
