package sem

import "fmt"

// This file is the public surface of the batched kernel layer: the paper's
// speedup model (Eq. 9) treats the per-element stiffness application as the
// fixed unit of work, so every nanosecond shaved off it multiplies through
// all p LTS levels. The batched layer executes a whole element set — one
// LTS level's force elements, one rank's owned slice — as fused
// gather → contract → scatter passes over a flat structure-of-arrays
// workspace (the SPECFEM3D-GPU kernel structure): all elements' nodal
// values are gathered into per-component planes of batchB lanes, the
// D/Dᵀ tensor contractions run as blocked matrix–matrix loops over whole
// planes (long contiguous rows instead of one 125-node element at a
// time), and the results scatter back in element-list order — the
// conflict-free ordering the flat connectivity already defines for a
// single goroutine (the parallel engine keeps ranks on private
// accumulation buffers, so batched scatter never races there either).
//
// Every lane of every batched pass reproduces the per-element kernels'
// floating-point chains exactly — same products, same one-rounding-per-add
// order — so AddKuBatch is bitwise-identical to AddKuScratch. That makes
// the per-element path the always-available reference oracle, lets the
// steppers default to batched without disturbing golden outputs, and is
// what allows the amd64 microkernels to vectorise across lanes (each SIMD
// lane is an independent element).

// Kernel selects how the steppers execute their stiffness applications.
// The zero value is KernelBatched: the fused batch path is the default
// wherever an operator supports it.
type Kernel uint8

const (
	// KernelBatched executes each prepared element set as fused SoA batch
	// passes via AddKuBatch.
	KernelBatched Kernel = iota
	// KernelPerElement applies elements one at a time through
	// AddKuScratch — the bitwise-testable reference path.
	KernelPerElement
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case KernelBatched:
		return "batched"
	case KernelPerElement:
		return "per-element"
	}
	return fmt.Sprintf("Kernel(%d)", uint8(k))
}

// BatchPlan is the precomputed execution layout of one element set: the
// element list (owned copy), the per-block packed material and metric
// constants, and the per-point quadrature weights. Plans are built once
// per stable element set — per LTS level, per rank — and reused for every
// apply; they are immutable after construction and safe for concurrent
// reads.
type BatchPlan interface {
	// Elems returns the plan's element list (callers must not mutate it).
	Elems() []int32
	// BatchedElems returns how many of the elements execute through full
	// SoA blocks; the remainder (len(Elems()) - BatchedElems()) runs
	// through the per-element fallback inside AddKuBatch.
	BatchedElems() int
}

// BatchKernel is an optional Operator extension: operators that can
// execute a prepared element set as one fused batch. All four concrete
// operators implement it; parallel.PartitionedOperator forwards it to
// per-rank sub-plans.
type BatchKernel interface {
	Operator
	// NewBatchPlan precomputes the batch execution layout for the element
	// list (copied; later mutation of elems is safe). Wrapper operators
	// may return nil when their inner operator cannot batch; callers must
	// fall back to AddKuScratch on a nil plan.
	NewBatchPlan(elems []int32) BatchPlan
	// AddKuBatch accumulates dst += K u over the plan's elements, bitwise
	// identical to AddKuScratch(dst, u, plan.Elems(), ·). The plan must
	// have been built by this operator; bs is the caller-owned workspace
	// (zero heap allocations once warm).
	AddKuBatch(dst, u []float64, plan BatchPlan, bs *BatchScratch)
}

// BatchScratch is the reusable workspace of AddKuBatch: the SoA plane
// arena plus a per-element Scratch for ragged-tail elements. Like
// Scratch, it may be shared across operators (it grows to the largest
// request) but not across goroutines: each parallel rank worker and each
// sequential stepper owns its own.
type BatchScratch struct {
	buf  []float64
	tail Scratch
}

// floats returns a slice of length n backed by the arena, growing it when
// needed. Contents are unspecified: kernels must fully overwrite what
// they read.
func (b *BatchScratch) floats(n int) []float64 {
	if cap(b.buf) < n {
		b.buf = make([]float64, n)
	}
	return b.buf[:n]
}

// elemBatchPlan is the concrete plan of the four sem operators.
type elemBatchPlan struct {
	owner Operator
	elems []int32
	nfull int       // elements executing through full batchB-lane blocks
	cst   []float64 // per-block packed constants, op-specific row layout
	wpair []float64 // deg-4 3-D: n3 interleaved (w[a], w[b]·w[c]) pairs
}

// Elems implements BatchPlan.
func (p *elemBatchPlan) Elems() []int32 { return p.elems }

// BatchedElems implements BatchPlan.
func (p *elemBatchPlan) BatchedElems() int { return p.nfull }

// checkPlan validates plan ownership and type for the concrete operators.
func checkPlan(op Operator, plan BatchPlan) *elemBatchPlan {
	pl, ok := plan.(*elemBatchPlan)
	if !ok {
		panic(fmt.Sprintf("sem: AddKuBatch: foreign plan type %T", plan))
	}
	if pl.owner != op {
		panic("sem: AddKuBatch: plan built by a different operator")
	}
	return pl
}

// newElemBatchPlan fills the shared plan fields: the element-list copy,
// the full-block count, and (for 3-D operators) the per-point quadrature
// weight pairs matching the scalar kernels' w[a] and w[b]·w[c] factors.
func newElemBatchPlan(op Operator, elems []int32, nq int, weights []float64) *elemBatchPlan {
	pl := &elemBatchPlan{
		owner: op,
		elems: append([]int32(nil), elems...),
		nfull: len(elems) / batchB * batchB,
	}
	if weights != nil {
		pl.wpair = make([]float64, 0, 2*nq*nq*nq)
		for c := 0; c < nq; c++ {
			for b := 0; b < nq; b++ {
				for a := 0; a < nq; a++ {
					pl.wpair = append(pl.wpair, weights[a], weights[b]*weights[c])
				}
			}
		}
	}
	return pl
}
