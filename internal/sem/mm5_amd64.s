//go:build !purego

#include "textflag.h"

// Batched contraction microkernels of the deg=4 (nq=5) SoA kernels.
// mm5asm / mm5accasm compute, for a 5-row coefficient matrix d
// (row-major, stride 5) and `blocks` consecutive groups of 5 input rows
// of length n at stride n,
//
//	dst[g*5*n + a*n + j] (=|+=) Σ_{m<5} d[a*5+m] · src[g*5*n + m*n + j]
//
// with the products summed in ascending m, one rounding per add — the
// same left-to-right chain as the scalar per-element kernels. The SIMD
// width runs across j (independent batch lanes), so every lane is
// bitwise-identical to the scalar path. SSE2 only: part of the amd64
// baseline, no feature detection needed.

// func mm5asm(dst, src, d *float64, n, blocks int)
TEXT ·mm5asm(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ d+16(FP), DX
	MOVQ n+24(FP), CX
	MOVQ CX, AX
	SHLQ $3, AX        // row stride in bytes
	MOVQ SI, R8        // src rows m = 0..4
	LEAQ (SI)(AX*1), R9
	LEAQ (R9)(AX*1), R10
	LEAQ (R10)(AX*1), R11
	LEAQ (R11)(AX*1), R12
	MOVQ CX, R14
	SUBQ $4, R14       // quad-loop bound: j <= n-4
	MOVQ CX, R15
	SUBQ $2, R15       // pair-loop bound: j <= n-2
	MOVQ blocks+32(FP), SI

mm5block:
	MOVQ $5, R13       // output rows left in this block

mm5row:
	// Broadcast the five coefficients of this output row.
	MOVQ 0(DX), X0
	UNPCKLPD X0, X0
	MOVQ 8(DX), X1
	UNPCKLPD X1, X1
	MOVQ 16(DX), X2
	UNPCKLPD X2, X2
	MOVQ 24(DX), X3
	UNPCKLPD X3, X3
	MOVQ 32(DX), X4
	UNPCKLPD X4, X4
	XORQ BX, BX        // j

mm5quad:
	CMPQ BX, R14
	JG   mm5pair
	MOVUPD (R8)(BX*8), X8
	MULPD X0, X8
	MOVUPD 16(R8)(BX*8), X12
	MULPD X0, X12
	MOVUPD (R9)(BX*8), X9
	MULPD X1, X9
	ADDPD X9, X8
	MOVUPD 16(R9)(BX*8), X13
	MULPD X1, X13
	ADDPD X13, X12
	MOVUPD (R10)(BX*8), X10
	MULPD X2, X10
	ADDPD X10, X8
	MOVUPD 16(R10)(BX*8), X14
	MULPD X2, X14
	ADDPD X14, X12
	MOVUPD (R11)(BX*8), X11
	MULPD X3, X11
	ADDPD X11, X8
	MOVUPD 16(R11)(BX*8), X15
	MULPD X3, X15
	ADDPD X15, X12
	MOVUPD (R12)(BX*8), X9
	MULPD X4, X9
	ADDPD X9, X8
	MOVUPD 16(R12)(BX*8), X13
	MULPD X4, X13
	ADDPD X13, X12
	MOVUPD X8, (DI)(BX*8)
	MOVUPD X12, 16(DI)(BX*8)
	ADDQ $4, BX
	JMP  mm5quad

mm5pair:
	CMPQ BX, R15
	JG   mm5tail
	MOVUPD (R8)(BX*8), X8
	MULPD X0, X8
	MOVUPD (R9)(BX*8), X9
	MULPD X1, X9
	ADDPD X9, X8
	MOVUPD (R10)(BX*8), X10
	MULPD X2, X10
	ADDPD X10, X8
	MOVUPD (R11)(BX*8), X11
	MULPD X3, X11
	ADDPD X11, X8
	MOVUPD (R12)(BX*8), X9
	MULPD X4, X9
	ADDPD X9, X8
	MOVUPD X8, (DI)(BX*8)
	ADDQ $2, BX
	JMP  mm5pair

mm5tail:
	CMPQ BX, CX
	JGE  mm5next
	MOVQ (R8)(BX*8), X8
	MULSD X0, X8
	MOVQ (R9)(BX*8), X9
	MULSD X1, X9
	ADDSD X9, X8
	MOVQ (R10)(BX*8), X10
	MULSD X2, X10
	ADDSD X10, X8
	MOVQ (R11)(BX*8), X11
	MULSD X3, X11
	ADDSD X11, X8
	MOVQ (R12)(BX*8), X9
	MULSD X4, X9
	ADDSD X9, X8
	MOVQ X8, (DI)(BX*8)
	INCQ BX
	JMP  mm5tail

mm5next:
	ADDQ AX, DI        // next dst row
	ADDQ $40, DX       // next coefficient row
	DECQ R13
	JNZ  mm5row
	// Next block: dst already advanced 5 rows; advance the src row
	// pointers by 5 rows and rewind the coefficient pointer.
	LEAQ (AX)(AX*4), DX
	ADDQ DX, R8
	ADDQ DX, R9
	ADDQ DX, R10
	ADDQ DX, R11
	ADDQ DX, R12
	MOVQ d+16(FP), DX
	DECQ SI
	JNZ  mm5block
	RET

// func mm5accasm(dst, src, d *float64, n, blocks int)
TEXT ·mm5accasm(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ d+16(FP), DX
	MOVQ n+24(FP), CX
	MOVQ CX, AX
	SHLQ $3, AX
	MOVQ SI, R8
	LEAQ (SI)(AX*1), R9
	LEAQ (R9)(AX*1), R10
	LEAQ (R10)(AX*1), R11
	LEAQ (R11)(AX*1), R12
	MOVQ CX, R14
	SUBQ $4, R14
	MOVQ CX, R15
	SUBQ $2, R15
	MOVQ blocks+32(FP), SI

accblock:
	MOVQ $5, R13

accrow:
	MOVQ 0(DX), X0
	UNPCKLPD X0, X0
	MOVQ 8(DX), X1
	UNPCKLPD X1, X1
	MOVQ 16(DX), X2
	UNPCKLPD X2, X2
	MOVQ 24(DX), X3
	UNPCKLPD X3, X3
	MOVQ 32(DX), X4
	UNPCKLPD X4, X4
	XORQ BX, BX

accquad:
	CMPQ BX, R14
	JG   accpair
	MOVUPD (DI)(BX*8), X8
	MOVUPD 16(DI)(BX*8), X12
	MOVUPD (R8)(BX*8), X9
	MULPD X0, X9
	ADDPD X9, X8
	MOVUPD 16(R8)(BX*8), X13
	MULPD X0, X13
	ADDPD X13, X12
	MOVUPD (R9)(BX*8), X10
	MULPD X1, X10
	ADDPD X10, X8
	MOVUPD 16(R9)(BX*8), X14
	MULPD X1, X14
	ADDPD X14, X12
	MOVUPD (R10)(BX*8), X11
	MULPD X2, X11
	ADDPD X11, X8
	MOVUPD 16(R10)(BX*8), X15
	MULPD X2, X15
	ADDPD X15, X12
	MOVUPD (R11)(BX*8), X9
	MULPD X3, X9
	ADDPD X9, X8
	MOVUPD 16(R11)(BX*8), X13
	MULPD X3, X13
	ADDPD X13, X12
	MOVUPD (R12)(BX*8), X10
	MULPD X4, X10
	ADDPD X10, X8
	MOVUPD 16(R12)(BX*8), X14
	MULPD X4, X14
	ADDPD X14, X12
	MOVUPD X8, (DI)(BX*8)
	MOVUPD X12, 16(DI)(BX*8)
	ADDQ $4, BX
	JMP  accquad

accpair:
	CMPQ BX, R15
	JG   acctail
	MOVUPD (DI)(BX*8), X8
	MOVUPD (R8)(BX*8), X9
	MULPD X0, X9
	ADDPD X9, X8
	MOVUPD (R9)(BX*8), X10
	MULPD X1, X10
	ADDPD X10, X8
	MOVUPD (R10)(BX*8), X11
	MULPD X2, X11
	ADDPD X11, X8
	MOVUPD (R11)(BX*8), X9
	MULPD X3, X9
	ADDPD X9, X8
	MOVUPD (R12)(BX*8), X10
	MULPD X4, X10
	ADDPD X10, X8
	MOVUPD X8, (DI)(BX*8)
	ADDQ $2, BX
	JMP  accpair

acctail:
	CMPQ BX, CX
	JGE  accnext
	MOVQ (DI)(BX*8), X8
	MOVQ (R8)(BX*8), X9
	MULSD X0, X9
	ADDSD X9, X8
	MOVQ (R9)(BX*8), X10
	MULSD X1, X10
	ADDSD X10, X8
	MOVQ (R10)(BX*8), X11
	MULSD X2, X11
	ADDSD X11, X8
	MOVQ (R11)(BX*8), X9
	MULSD X3, X9
	ADDSD X9, X8
	MOVQ (R12)(BX*8), X10
	MULSD X4, X10
	ADDSD X10, X8
	MOVQ X8, (DI)(BX*8)
	INCQ BX
	JMP  acctail

accnext:
	ADDQ AX, DI
	ADDQ $40, DX
	DECQ R13
	JNZ  accrow
	LEAQ (AX)(AX*4), DX
	ADDQ DX, R8
	ADDQ DX, R9
	ADDQ DX, R10
	ADDQ DX, R11
	ADDQ DX, R12
	MOVQ d+16(FP), DX
	DECQ SI
	JNZ  accblock
	RET

// func elStress8asm(gp, cst, w *float64)
//
// The pointwise stress pass of the batched deg=4 isotropic elastic
// kernel, over one 8-lane block: g points at 9 gradient planes of
// 125×8 values (plane stride 8000 bytes) holding the raw axis
// derivatives; they are rewritten in place with the weighted stress-flux
// planes t0..t8. cst holds 8 rows of 8 per-element constants
// (ax, ay, az, jdet, lam, mu, unused, unused); w holds 125 interleaved
// (w[a], w[b]*w[c]) pairs. Lane arithmetic follows the scalar kernel's
// chains exactly (see the pure-Go elStress8 in batch3d.go).
TEXT ·elStress8asm(SB), NOSPLIT, $0-24
	MOVQ gp+0(FP), DI
	MOVQ cst+8(FP), SI
	MOVQ w+16(FP), DX
	MOVQ $125, CX

esq:
	// Broadcast wa and wbc of this quadrature point.
	MOVQ 0(DX), X0
	UNPCKLPD X0, X0
	MOVQ 8(DX), X1
	UNPCKLPD X1, X1
	XORQ BX, BX        // lane

eslane:
	MOVUPD (SI)(BX*8), X2     // ax
	MOVUPD 64(SI)(BX*8), X3   // ay
	MOVUPD 128(SI)(BX*8), X4  // az
	// wbc = wbc0·jdet ; wq = wa·wbc ; wx/wy/wz = wq·a{x,y,z}
	MOVUPD 192(SI)(BX*8), X5  // jdet
	MULPD X1, X5              // wbc
	MULPD X0, X5              // wq
	MOVAPD X5, X6
	MULPD X2, X6              // wx
	MOVAPD X5, X7
	MULPD X3, X7              // wy
	MULPD X4, X5              // wz (X5 now free as wq)
	MOVUPD 256(SI)(BX*8), X9  // lam
	MOVUPD 320(SI)(BX*8), X10 // mu
	MOVAPD X10, X11
	ADDPD X10, X11            // 2mu
	// Diagonal: v00 = ax·g00, v11 = ay·g11, v22 = az·g22,
	// tr = (v00+v11)+v22, lt = lam·tr, tkk = w·(2mu·vkk + lt).
	MOVUPD (DI)(BX*8), X12
	MULPD X2, X12
	MOVUPD 32000(DI)(BX*8), X13
	MULPD X3, X13
	MOVUPD 64000(DI)(BX*8), X14
	MULPD X4, X14
	MOVAPD X12, X15
	ADDPD X13, X15
	ADDPD X14, X15            // tr
	MULPD X15, X9             // lt = lam·tr
	MULPD X11, X12
	ADDPD X9, X12
	MULPD X6, X12
	MOVUPD X12, (DI)(BX*8)    // t0
	MULPD X11, X13
	ADDPD X9, X13
	MULPD X7, X13
	MOVUPD X13, 32000(DI)(BX*8) // t4
	MULPD X11, X14
	ADDPD X9, X14
	MULPD X5, X14
	MOVUPD X14, 64000(DI)(BX*8) // t8
	// Shear xy: sxy = mu·(ay·g01 + ax·g10); t1 = wy·sxy, t3 = wx·sxy.
	MOVUPD 8000(DI)(BX*8), X12
	MULPD X3, X12
	MOVUPD 24000(DI)(BX*8), X13
	MULPD X2, X13
	ADDPD X13, X12
	MULPD X10, X12
	MOVAPD X12, X14
	MULPD X7, X14
	MOVUPD X14, 8000(DI)(BX*8)  // t1
	MULPD X6, X12
	MOVUPD X12, 24000(DI)(BX*8) // t3
	// Shear xz: sxz = mu·(az·g02 + ax·g20); t2 = wz·sxz, t6 = wx·sxz.
	MOVUPD 16000(DI)(BX*8), X12
	MULPD X4, X12
	MOVUPD 48000(DI)(BX*8), X13
	MULPD X2, X13
	ADDPD X13, X12
	MULPD X10, X12
	MOVAPD X12, X14
	MULPD X5, X14
	MOVUPD X14, 16000(DI)(BX*8) // t2
	MULPD X6, X12
	MOVUPD X12, 48000(DI)(BX*8) // t6
	// Shear yz: syz = mu·(az·g12 + ay·g21); t5 = wz·syz, t7 = wy·syz.
	MOVUPD 40000(DI)(BX*8), X12
	MULPD X4, X12
	MOVUPD 56000(DI)(BX*8), X13
	MULPD X3, X13
	ADDPD X13, X12
	MULPD X10, X12
	MOVAPD X12, X14
	MULPD X5, X14
	MOVUPD X14, 40000(DI)(BX*8) // t5
	MULPD X7, X12
	MOVUPD X12, 56000(DI)(BX*8) // t7
	ADDQ $2, BX
	CMPQ BX, $8
	JL   eslane
	ADDQ $64, DI       // next quadrature point (8 lanes)
	ADDQ $16, DX       // next (wa, wbc) pair
	DECQ CX
	JNZ  esq
	RET

// func acStress8asm(fp, cst, w *float64)
//
// The pointwise pass of the batched deg=4 acoustic kernel over one
// 8-lane block: fp points at 3 derivative planes of 125×8 values (plane
// stride 8000 bytes), rescaled in place by the premultiplied metric
// factors sx, sy, sz (cst, 3 rows of 8) and the quadrature weights (w,
// 125 interleaved (w[a], w[b]·w[c]) pairs), following the scalar
// kernel's ((s·wa)·wbc)·∂u chain (see acStressN).
TEXT ·acStress8asm(SB), NOSPLIT, $0-24
	MOVQ fp+0(FP), DI
	MOVQ cst+8(FP), SI
	MOVQ w+16(FP), DX
	MOVQ $125, CX

acq:
	MOVQ 0(DX), X0
	UNPCKLPD X0, X0
	MOVQ 8(DX), X1
	UNPCKLPD X1, X1
	XORQ BX, BX

aclane:
	MOVUPD (SI)(BX*8), X2
	MULPD X0, X2
	MULPD X1, X2
	MOVUPD (DI)(BX*8), X5
	MULPD X2, X5
	MOVUPD X5, (DI)(BX*8)
	MOVUPD 64(SI)(BX*8), X3
	MULPD X0, X3
	MULPD X1, X3
	MOVUPD 8000(DI)(BX*8), X6
	MULPD X3, X6
	MOVUPD X6, 8000(DI)(BX*8)
	MOVUPD 128(SI)(BX*8), X4
	MULPD X0, X4
	MULPD X1, X4
	MOVUPD 16000(DI)(BX*8), X7
	MULPD X4, X7
	MOVUPD X7, 16000(DI)(BX*8)
	ADDQ $2, BX
	CMPQ BX, $8
	JL   aclane
	ADDQ $64, DI
	ADDQ $16, DX
	DECQ CX
	JNZ  acq
	RET

// func anStress8asm(gp, cst, w *float64)
//
// The pointwise stress pass of the batched deg=4 anisotropic elastic
// kernel over one 8-lane block: gp points at 9 gradient planes of 125×8
// values (plane stride 8000 bytes), rewritten in place with the
// stress-flux planes. cst holds 40 rows of 8 per-element constants
// (ax, ay, az, jdet, then the 6×6 Voigt tensor row-major); w holds 125
// interleaved (w[a], w[b]·w[c]) pairs. Chains match the scalar kernel
// (see anStressN).
TEXT ·anStress8asm(SB), NOSPLIT, $0-24
	MOVQ gp+0(FP), DI
	MOVQ cst+8(FP), SI
	MOVQ w+16(FP), DX
	MOVQ $125, CX

anq:
	MOVQ 0(DX), X0
	UNPCKLPD X0, X0
	MOVQ 8(DX), X1
	UNPCKLPD X1, X1
	XORQ BX, BX

anlane:
	MOVUPD (SI)(BX*8), X2       // ax
	MOVUPD 64(SI)(BX*8), X3     // ay
	MOVUPD 128(SI)(BX*8), X4    // az
	MOVUPD 192(SI)(BX*8), X5    // jdet
	MULPD X1, X5                // wbc
	MULPD X0, X5                // wq
	MOVAPD X5, X6
	MULPD X2, X6                // wx
	MOVAPD X5, X7
	MULPD X3, X7                // wy
	MULPD X4, X5                // wz
	// Voigt strain from the nine scaled gradients.
	MOVUPD (DI)(BX*8), X8
	MULPD X2, X8                // e0 = ax·g00
	MOVUPD 32000(DI)(BX*8), X9
	MULPD X3, X9                // e1 = ay·g11
	MOVUPD 64000(DI)(BX*8), X10
	MULPD X4, X10               // e2 = az·g22
	MOVUPD 40000(DI)(BX*8), X11
	MULPD X4, X11
	MOVUPD 56000(DI)(BX*8), X15
	MULPD X3, X15
	ADDPD X15, X11              // e3 = az·g12 + ay·g21
	MOVUPD 16000(DI)(BX*8), X12
	MULPD X4, X12
	MOVUPD 48000(DI)(BX*8), X15
	MULPD X2, X15
	ADDPD X15, X12              // e4 = az·g02 + ax·g20
	MOVUPD 8000(DI)(BX*8), X13
	MULPD X3, X13
	MOVUPD 24000(DI)(BX*8), X15
	MULPD X2, X15
	ADDPD X15, X13              // e5 = ay·g01 + ax·g10
	// s0 = C0:e ; t0 = wx·s0
	MOVUPD 256(SI)(BX*8), X14
	MULPD X8, X14
	MOVUPD 320(SI)(BX*8), X2
	MULPD X9, X2
	ADDPD X2, X14
	MOVUPD 384(SI)(BX*8), X2
	MULPD X10, X2
	ADDPD X2, X14
	MOVUPD 448(SI)(BX*8), X2
	MULPD X11, X2
	ADDPD X2, X14
	MOVUPD 512(SI)(BX*8), X2
	MULPD X12, X2
	ADDPD X2, X14
	MOVUPD 576(SI)(BX*8), X2
	MULPD X13, X2
	ADDPD X2, X14
	MULPD X6, X14
	MOVUPD X14, (DI)(BX*8)
	// s1 ; t4 = wy·s1
	MOVUPD 640(SI)(BX*8), X14
	MULPD X8, X14
	MOVUPD 704(SI)(BX*8), X2
	MULPD X9, X2
	ADDPD X2, X14
	MOVUPD 768(SI)(BX*8), X2
	MULPD X10, X2
	ADDPD X2, X14
	MOVUPD 832(SI)(BX*8), X2
	MULPD X11, X2
	ADDPD X2, X14
	MOVUPD 896(SI)(BX*8), X2
	MULPD X12, X2
	ADDPD X2, X14
	MOVUPD 960(SI)(BX*8), X2
	MULPD X13, X2
	ADDPD X2, X14
	MULPD X7, X14
	MOVUPD X14, 32000(DI)(BX*8)
	// s2 ; t8 = wz·s2
	MOVUPD 1024(SI)(BX*8), X14
	MULPD X8, X14
	MOVUPD 1088(SI)(BX*8), X2
	MULPD X9, X2
	ADDPD X2, X14
	MOVUPD 1152(SI)(BX*8), X2
	MULPD X10, X2
	ADDPD X2, X14
	MOVUPD 1216(SI)(BX*8), X2
	MULPD X11, X2
	ADDPD X2, X14
	MOVUPD 1280(SI)(BX*8), X2
	MULPD X12, X2
	ADDPD X2, X14
	MOVUPD 1344(SI)(BX*8), X2
	MULPD X13, X2
	ADDPD X2, X14
	MULPD X5, X14
	MOVUPD X14, 64000(DI)(BX*8)
	// s3 ; t5 = wz·s3, t7 = wy·s3
	MOVUPD 1408(SI)(BX*8), X14
	MULPD X8, X14
	MOVUPD 1472(SI)(BX*8), X2
	MULPD X9, X2
	ADDPD X2, X14
	MOVUPD 1536(SI)(BX*8), X2
	MULPD X10, X2
	ADDPD X2, X14
	MOVUPD 1600(SI)(BX*8), X2
	MULPD X11, X2
	ADDPD X2, X14
	MOVUPD 1664(SI)(BX*8), X2
	MULPD X12, X2
	ADDPD X2, X14
	MOVUPD 1728(SI)(BX*8), X2
	MULPD X13, X2
	ADDPD X2, X14
	MOVAPD X14, X2
	MULPD X5, X2
	MOVUPD X2, 40000(DI)(BX*8)
	MULPD X7, X14
	MOVUPD X14, 56000(DI)(BX*8)
	// s4 ; t2 = wz·s4, t6 = wx·s4
	MOVUPD 1792(SI)(BX*8), X14
	MULPD X8, X14
	MOVUPD 1856(SI)(BX*8), X2
	MULPD X9, X2
	ADDPD X2, X14
	MOVUPD 1920(SI)(BX*8), X2
	MULPD X10, X2
	ADDPD X2, X14
	MOVUPD 1984(SI)(BX*8), X2
	MULPD X11, X2
	ADDPD X2, X14
	MOVUPD 2048(SI)(BX*8), X2
	MULPD X12, X2
	ADDPD X2, X14
	MOVUPD 2112(SI)(BX*8), X2
	MULPD X13, X2
	ADDPD X2, X14
	MOVAPD X14, X2
	MULPD X5, X2
	MOVUPD X2, 16000(DI)(BX*8)
	MULPD X6, X14
	MOVUPD X14, 48000(DI)(BX*8)
	// s5 ; t1 = wy·s5, t3 = wx·s5
	MOVUPD 2176(SI)(BX*8), X14
	MULPD X8, X14
	MOVUPD 2240(SI)(BX*8), X2
	MULPD X9, X2
	ADDPD X2, X14
	MOVUPD 2304(SI)(BX*8), X2
	MULPD X10, X2
	ADDPD X2, X14
	MOVUPD 2368(SI)(BX*8), X2
	MULPD X11, X2
	ADDPD X2, X14
	MOVUPD 2432(SI)(BX*8), X2
	MULPD X12, X2
	ADDPD X2, X14
	MOVUPD 2496(SI)(BX*8), X2
	MULPD X13, X2
	ADDPD X2, X14
	MOVAPD X14, X2
	MULPD X7, X2
	MOVUPD X2, 8000(DI)(BX*8)
	MULPD X6, X14
	MOVUPD X14, 24000(DI)(BX*8)
	ADDQ $2, BX
	CMPQ BX, $8
	JL   anlane
	ADDQ $64, DI
	ADDQ $16, DX
	DECQ CX
	JNZ  anq
	RET
