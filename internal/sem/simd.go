package sem

import "fmt"

// SIMD tier dispatch of the batched microkernels. The deg=4 batched
// kernels funnel all heavy arithmetic through five primitives — the two
// mm5 contraction microkernels (mul5/mul5acc) and the three pointwise
// stress passes (elStress8/acStress8/anStress8) — and every primitive
// vectorises strictly ACROSS independent 8-lane SoA blocks: each SIMD
// lane is a separate element with its own rounding chain, so the sse2,
// avx2 and avx512 implementations are bitwise-identical to the pure-Go
// references at any width. That identity is what makes runtime dispatch
// safe: switching tiers never changes results, only speed, and golden
// seismograms stay pinned across every tier.
//
// The active tier is chosen once at init from CPUID feature detection,
// capped by GODEBUG (cpu.avx512=off, cpu.avx2=off, cpu.sse2=off —
// internal/cpu-style switches, so CI can force every fallback path), and
// redirectable at runtime through ForceSIMDTier for tests and
// benchmarks. Builds with the `purego` tag (or non-amd64 targets) carry
// no assembly at all and run the Go references ("go" tier).

// simdTier identifies one microkernel implementation tier. Tiers are
// ordered: a larger value is a wider (or equal) vector width.
type simdTier uint8

const (
	// tierGo is the pure-Go reference path (always available).
	tierGo simdTier = iota
	// tierSSE2 is the 2-lane baseline amd64 assembly.
	tierSSE2
	// tierAVX2 is the 4-lane VEX assembly.
	tierAVX2
	// tierAVX512 is the 8-lane EVEX assembly: one register spans a full
	// SoA block.
	tierAVX512
)

var tierNames = [...]string{"go", "sse2", "avx2", "avx512"}

// String implements fmt.Stringer.
func (t simdTier) String() string {
	if int(t) < len(tierNames) {
		return tierNames[t]
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// tierFromName is the inverse of String for the known tiers.
func tierFromName(name string) (simdTier, bool) {
	for i, n := range tierNames {
		if n == name {
			return simdTier(i), true
		}
	}
	return 0, false
}

// activeTier is the currently dispatched tier; the build-specific init
// (simd_amd64.go / simd_noasm.go) selects the widest usable tier.
var activeTier simdTier

// ActiveSIMDTier reports the microkernel tier currently dispatched by
// the batched deg=4 kernels: "avx512", "avx2", "sse2" or "go".
func ActiveSIMDTier() string { return activeTier.String() }

// SIMDTiers lists the tiers usable in this process — supported by the
// CPU and build, and not disabled via GODEBUG — widest first. The list
// always ends with "go".
func SIMDTiers() []string {
	av := availableTiers()
	names := make([]string, len(av))
	for i, t := range av {
		names[i] = t.String()
	}
	return names
}

// ForceSIMDTier redirects the microkernel dispatch to the named tier
// and returns a function restoring the previous tier. It errors when
// the tier is unknown or not usable in this process (see SIMDTiers).
// Every tier computes bitwise-identical results; the switch exists for
// cross-tier tests and per-tier benchmarking. Forcing swaps the
// package-level dispatch table and must not race with in-flight
// kernels: call it only while no stiffness applications are running.
func ForceSIMDTier(name string) (restore func(), err error) {
	t, ok := tierFromName(name)
	if !ok {
		return nil, fmt.Errorf("sem: unknown SIMD tier %q (usable: %v)", name, SIMDTiers())
	}
	usable := false
	for _, a := range availableTiers() {
		if a == t {
			usable = true
			break
		}
	}
	if !usable {
		return nil, fmt.Errorf("sem: SIMD tier %q not usable on this CPU/build (usable: %v)", name, SIMDTiers())
	}
	prev := activeTier
	applyTier(t)
	return func() { applyTier(prev) }, nil
}
