package sem

import (
	"math"
	"math/rand"
	"testing"

	"golts/internal/gll"
)

func uniform1D(ne int, l float64, c float64, deg int, left, right BC1D) *Op1D {
	xc := make([]float64, ne+1)
	cs := make([]float64, ne)
	rho := make([]float64, ne)
	for i := range xc {
		xc[i] = l * float64(i) / float64(ne)
	}
	for i := range cs {
		cs[i] = c
		rho[i] = 1
	}
	op, err := NewOp1D(xc, cs, rho, deg, left, right)
	if err != nil {
		panic(err)
	}
	return op
}

func TestOp1DValidation(t *testing.T) {
	if _, err := NewOp1D([]float64{0}, nil, nil, 4, FreeBC, FreeBC); err == nil {
		t.Error("expected error for empty mesh")
	}
	if _, err := NewOp1D([]float64{0, 1}, []float64{1}, []float64{1, 2}, 4, FreeBC, FreeBC); err == nil {
		t.Error("expected error for material length mismatch")
	}
	if _, err := NewOp1D([]float64{0, 1, 0.5}, []float64{1, 1}, []float64{1, 1}, 4, FreeBC, FreeBC); err == nil {
		t.Error("expected error for inverted element")
	}
	if _, err := NewOp1D([]float64{0, 1}, []float64{-1}, []float64{1}, 4, FreeBC, FreeBC); err == nil {
		t.Error("expected error for negative velocity")
	}
}

func TestOp1DMassMatchesDomain(t *testing.T) {
	// Total mass Σ 1/minv must equal ρ * length.
	op := uniform1D(7, 3.5, 2, 4, FreeBC, FreeBC)
	total := 0.0
	for _, mi := range op.MInv() {
		total += 1 / mi
	}
	if math.Abs(total-3.5) > 1e-12 {
		t.Errorf("total mass %v, want 3.5", total)
	}
}

func TestOp1DKuConstantIsZero(t *testing.T) {
	op := uniform1D(5, 1, 1, 4, FreeBC, FreeBC)
	u := make([]float64, op.NDof())
	for i := range u {
		u[i] = 7.3
	}
	ku := make([]float64, op.NDof())
	op.AddKu(ku, u, AllElements(op))
	for i, v := range ku {
		if math.Abs(v) > 1e-10 {
			t.Fatalf("Ku(const) nonzero at %d: %v", i, v)
		}
	}
}

func TestOp1DSymmetryAndPSD(t *testing.T) {
	op := uniform1D(6, 2, 1.5, 4, FreeBC, FreeBC)
	rng := rand.New(rand.NewSource(1))
	n := op.NDof()
	elems := AllElements(op)
	for trial := 0; trial < 10; trial++ {
		u := make([]float64, n)
		v := make([]float64, n)
		for i := range u {
			u[i] = rng.NormFloat64()
			v[i] = rng.NormFloat64()
		}
		ku := make([]float64, n)
		kv := make([]float64, n)
		op.AddKu(ku, u, elems)
		op.AddKu(kv, v, elems)
		var vku, ukv, uku float64
		for i := range u {
			vku += v[i] * ku[i]
			ukv += u[i] * kv[i]
			uku += u[i] * ku[i]
		}
		if math.Abs(vku-ukv) > 1e-9*math.Max(1, math.Abs(vku)) {
			t.Fatalf("K not symmetric: %v vs %v", vku, ukv)
		}
		if uku < -1e-10 {
			t.Fatalf("K not positive semidefinite: uᵀKu = %v", uku)
		}
	}
}

// TestOp1DMatchesDenseAssembly compares the matrix-free kernel against a
// brute-force dense assembly K_ij = Σ_e μ/J Σ_q w_q l_i'(ξ_q) l_j'(ξ_q).
func TestOp1DMatchesDenseAssembly(t *testing.T) {
	xc := []float64{0, 0.5, 1.3, 1.7, 3}
	c := []float64{1, 2, 0.7, 1.4}
	rho := []float64{1, 0.5, 2, 1}
	deg := 3
	op, err := NewOp1D(xc, c, rho, deg, FreeBC, FreeBC)
	if err != nil {
		t.Fatal(err)
	}
	r := gll.MustNew(deg)
	n := op.NDof()
	dense := make([][]float64, n)
	for i := range dense {
		dense[i] = make([]float64, n)
	}
	for e := 0; e < 4; e++ {
		j := (xc[e+1] - xc[e]) / 2
		mu := rho[e] * c[e] * c[e]
		for a := 0; a <= deg; a++ {
			for b := 0; b <= deg; b++ {
				kab := 0.0
				for q := 0; q <= deg; q++ {
					kab += r.Weights[q] * r.D[q][a] * r.D[q][b]
				}
				dense[e*deg+a][e*deg+b] += mu / j * kab
			}
		}
	}
	rng := rand.New(rand.NewSource(2))
	u := make([]float64, n)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	ku := make([]float64, n)
	op.AddKu(ku, u, AllElements(op))
	for i := 0; i < n; i++ {
		want := 0.0
		for j := 0; j < n; j++ {
			want += dense[i][j] * u[j]
		}
		if math.Abs(ku[i]-want) > 1e-10 {
			t.Fatalf("Ku[%d] = %v, dense gives %v", i, ku[i], want)
		}
	}
}

// TestOp1DRestrictedApplication: applying only the elements whose nodal
// values are nonzero gives the same result as applying all elements — the
// property the LTS active sets rely on.
func TestOp1DRestrictedApplication(t *testing.T) {
	op := uniform1D(10, 1, 1, 4, FreeBC, FreeBC)
	n := op.NDof()
	u := make([]float64, n)
	// Support only inside elements 3 and 4.
	for i := 3*4 + 1; i < 5*4; i++ {
		u[i] = float64(i)
	}
	full := make([]float64, n)
	op.AddKu(full, u, AllElements(op))
	part := make([]float64, n)
	op.AddKu(part, u, []int32{2, 3, 4, 5})
	for i := range full {
		if full[i] != part[i] {
			t.Fatalf("restricted application differs at %d: %v vs %v", i, full[i], part[i])
		}
	}
}

func TestOp1DDirichletZerosMass(t *testing.T) {
	op := uniform1D(4, 1, 1, 4, FixedBC, FreeBC)
	if op.MInv()[0] != 0 {
		t.Error("left boundary inverse mass not zeroed")
	}
	if op.MInv()[op.NumNodes()-1] == 0 {
		t.Error("right boundary should be free")
	}
}

func TestOp1DNodeX(t *testing.T) {
	op := uniform1D(4, 4, 1, 4, FreeBC, FreeBC)
	if got := op.NodeX(0); got != 0 {
		t.Errorf("NodeX(0) = %v", got)
	}
	if got := op.NodeX(op.NumNodes() - 1); math.Abs(got-4) > 1e-12 {
		t.Errorf("NodeX(last) = %v, want 4", got)
	}
	if got := op.NodeX(4); math.Abs(got-1) > 1e-12 {
		t.Errorf("NodeX(4) = %v, want 1 (element boundary)", got)
	}
	// Nodes strictly increasing.
	for i := 1; i < op.NumNodes(); i++ {
		if op.NodeX(i) <= op.NodeX(i-1) {
			t.Fatalf("node coordinates not increasing at %d", i)
		}
	}
}

// TestOp1DDiscreteEigenmode: for the free-free uniform bar, cos(kπx/L) is
// close to a discrete eigenvector: Ku ≈ ω² M u with spectral accuracy.
func TestOp1DDiscreteEigenmode(t *testing.T) {
	const L, c = 1.0, 1.0
	op := uniform1D(12, L, c, 6, FreeBC, FreeBC)
	n := op.NDof()
	u := make([]float64, n)
	k := math.Pi / L
	for i := 0; i < n; i++ {
		u[i] = math.Cos(k * op.NodeX(i))
	}
	ku := make([]float64, n)
	op.AddKu(ku, u, AllElements(op))
	want := c * c * k * k // ω²
	for i := 0; i < n; i++ {
		got := ku[i] * op.MInv()[i] / u[i]
		if math.Abs(u[i]) < 0.1 {
			continue // avoid dividing by near-zero mode values
		}
		if math.Abs(got-want) > 1e-6*want {
			t.Fatalf("eigenvalue at node %d: %v, want %v", i, got, want)
		}
	}
}

func BenchmarkOp1DAddKu(b *testing.B) {
	op := uniform1D(256, 1, 1, 4, FreeBC, FreeBC)
	u := make([]float64, op.NDof())
	for i := range u {
		u[i] = math.Sin(float64(i))
	}
	dst := make([]float64, op.NDof())
	elems := AllElements(op)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.AddKu(dst, u, elems)
	}
}
