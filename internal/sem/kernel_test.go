package sem

import (
	"math"
	"testing"

	"golts/internal/mesh"
	"golts/internal/race"
)

// The reference kernels below are direct transcriptions of the pre-flat
// implementations (per-call ElemNodes, [][]float64 derivative matrices,
// closure indexing, per-call buffers). The flat/specialised kernels must
// reproduce them to 1e-12 relative.

func refAddKuAcoustic(op *Acoustic3D, dst, u []float64, elems []int32) {
	nq := op.deg + 1
	n3 := nq * nq * nq
	d := op.Rule.D
	w := op.Rule.Weights
	ue := make([]float64, n3)
	fx := make([]float64, n3)
	fy := make([]float64, n3)
	fz := make([]float64, n3)
	nb := make([]int32, 0, n3)
	idx := func(a, b, c int) int { return (c*nq+b)*nq + a }
	for _, e := range elems {
		dx, dy, dz := op.M.ElemSize(int(e))
		jdet := dx * dy * dz / 8
		ax, ay, az := 2/dx, 2/dy, 2/dz
		mu := op.M.Rho[e] * op.M.C[e] * op.M.C[e]
		sx, sy, sz := mu*jdet*ax*ax, mu*jdet*ay*ay, mu*jdet*az*az
		nb = op.ElemNodes(int(e), nb[:0])
		for i, n := range nb {
			ue[i] = u[n]
		}
		for c := 0; c < nq; c++ {
			for b := 0; b < nq; b++ {
				wbc := w[b] * w[c]
				for a := 0; a < nq; a++ {
					var dxu, dyu, dzu float64
					for m := 0; m < nq; m++ {
						dxu += d[a][m] * ue[idx(m, b, c)]
						dyu += d[b][m] * ue[idx(a, m, c)]
						dzu += d[c][m] * ue[idx(a, b, m)]
					}
					wa := w[a]
					fx[idx(a, b, c)] = sx * wa * wbc * dxu
					fy[idx(a, b, c)] = sy * wa * wbc * dyu
					fz[idx(a, b, c)] = sz * wa * wbc * dzu
				}
			}
		}
		for c := 0; c < nq; c++ {
			for b := 0; b < nq; b++ {
				for a := 0; a < nq; a++ {
					var acc float64
					for m := 0; m < nq; m++ {
						acc += d[m][a]*fx[idx(m, b, c)] + d[m][b]*fy[idx(a, m, c)] + d[m][c]*fz[idx(a, b, m)]
					}
					dst[nb[idx(a, b, c)]] += acc
				}
			}
		}
	}
}

func refAddKuElastic(op *Elastic3D, dst, u []float64, elems []int32) {
	nq := op.deg + 1
	n3 := nq * nq * nq
	d := op.Rule.D
	w := op.Rule.Weights
	ue := make([][]float64, 3)
	var tf [3][3][]float64
	for c := 0; c < 3; c++ {
		ue[c] = make([]float64, n3)
		for dd := 0; dd < 3; dd++ {
			tf[c][dd] = make([]float64, n3)
		}
	}
	nb := make([]int32, 0, n3)
	idx := func(a, b, c int) int { return (c*nq+b)*nq + a }
	for _, e := range elems {
		dx, dy, dz := op.M.ElemSize(int(e))
		jdet := dx * dy * dz / 8
		alpha := [3]float64{2 / dx, 2 / dy, 2 / dz}
		lam, mu := op.Lame(int(e))
		nb = op.ElemNodes(int(e), nb[:0])
		for i, n := range nb {
			ue[0][i] = u[3*n]
			ue[1][i] = u[3*n+1]
			ue[2][i] = u[3*n+2]
		}
		for c := 0; c < nq; c++ {
			for b := 0; b < nq; b++ {
				for a := 0; a < nq; a++ {
					var g [3][3]float64
					for comp := 0; comp < 3; comp++ {
						var gx, gy, gz float64
						uc := ue[comp]
						for m := 0; m < nq; m++ {
							gx += d[a][m] * uc[idx(m, b, c)]
							gy += d[b][m] * uc[idx(a, m, c)]
							gz += d[c][m] * uc[idx(a, b, m)]
						}
						g[comp][0] = alpha[0] * gx
						g[comp][1] = alpha[1] * gy
						g[comp][2] = alpha[2] * gz
					}
					tr := g[0][0] + g[1][1] + g[2][2]
					wq := w[a] * w[b] * w[c] * jdet
					q := idx(a, b, c)
					for comp := 0; comp < 3; comp++ {
						for ax := 0; ax < 3; ax++ {
							t := mu * (g[comp][ax] + g[ax][comp])
							if comp == ax {
								t += lam * tr
							}
							tf[comp][ax][q] = wq * alpha[ax] * t
						}
					}
				}
			}
		}
		for c := 0; c < nq; c++ {
			for b := 0; b < nq; b++ {
				for a := 0; a < nq; a++ {
					n := nb[idx(a, b, c)]
					for comp := 0; comp < 3; comp++ {
						var acc float64
						tx, ty, tz := tf[comp][0], tf[comp][1], tf[comp][2]
						for m := 0; m < nq; m++ {
							acc += d[m][a]*tx[idx(m, b, c)] + d[m][b]*ty[idx(a, m, c)] + d[m][c]*tz[idx(a, b, m)]
						}
						dst[3*int(n)+comp] += acc
					}
				}
			}
		}
	}
}

func refAddKuAniso(op *Anisotropic3D, dst, u []float64, elems []int32) {
	nq := op.deg + 1
	n3 := nq * nq * nq
	d := op.Rule.D
	w := op.Rule.Weights
	ue := make([][]float64, 3)
	var tf [3][3][]float64
	for c := 0; c < 3; c++ {
		ue[c] = make([]float64, n3)
		for dd := 0; dd < 3; dd++ {
			tf[c][dd] = make([]float64, n3)
		}
	}
	nb := make([]int32, 0, n3)
	idx := func(a, b, c int) int { return (c*nq+b)*nq + a }
	for _, e := range elems {
		dx, dy, dz := op.M.ElemSize(int(e))
		jdet := dx * dy * dz / 8
		alpha := [3]float64{2 / dx, 2 / dy, 2 / dz}
		cm := &op.C[e]
		nb = op.ElemNodes(int(e), nb[:0])
		for i, n := range nb {
			ue[0][i] = u[3*n]
			ue[1][i] = u[3*n+1]
			ue[2][i] = u[3*n+2]
		}
		for c := 0; c < nq; c++ {
			for b := 0; b < nq; b++ {
				for a := 0; a < nq; a++ {
					var g [3][3]float64
					for comp := 0; comp < 3; comp++ {
						var gx, gy, gz float64
						uc := ue[comp]
						for m := 0; m < nq; m++ {
							gx += d[a][m] * uc[idx(m, b, c)]
							gy += d[b][m] * uc[idx(a, m, c)]
							gz += d[c][m] * uc[idx(a, b, m)]
						}
						g[comp][0] = alpha[0] * gx
						g[comp][1] = alpha[1] * gy
						g[comp][2] = alpha[2] * gz
					}
					ev := [6]float64{
						g[0][0], g[1][1], g[2][2],
						g[1][2] + g[2][1], g[0][2] + g[2][0], g[0][1] + g[1][0],
					}
					var sv [6]float64
					for i := 0; i < 6; i++ {
						s := 0.0
						for j := 0; j < 6; j++ {
							s += cm[i][j] * ev[j]
						}
						sv[i] = s
					}
					t3 := [3][3]float64{
						{sv[0], sv[5], sv[4]},
						{sv[5], sv[1], sv[3]},
						{sv[4], sv[3], sv[2]},
					}
					wq := w[a] * w[b] * w[c] * jdet
					q := idx(a, b, c)
					for comp := 0; comp < 3; comp++ {
						for ax := 0; ax < 3; ax++ {
							tf[comp][ax][q] = wq * alpha[ax] * t3[comp][ax]
						}
					}
				}
			}
		}
		for c := 0; c < nq; c++ {
			for b := 0; b < nq; b++ {
				for a := 0; a < nq; a++ {
					n := nb[idx(a, b, c)]
					for comp := 0; comp < 3; comp++ {
						var acc float64
						tx, ty, tz := tf[comp][0], tf[comp][1], tf[comp][2]
						for m := 0; m < nq; m++ {
							acc += d[m][a]*tx[idx(m, b, c)] + d[m][b]*ty[idx(a, m, c)] + d[m][c]*tz[idx(a, b, m)]
						}
						dst[3*int(n)+comp] += acc
					}
				}
			}
		}
	}
}

func refAddKuOp1D(op *Op1D, dst, u []float64, elems []int32) {
	nq := op.deg + 1
	d := op.Rule.D
	w := op.Rule.Weights
	f := make([]float64, nq)
	for _, e := range elems {
		base := int(e) * op.deg
		j := (op.XC[e+1] - op.XC[e]) / 2
		mu := op.Rho[e] * op.C[e] * op.C[e]
		s := mu / j
		for q := 0; q < nq; q++ {
			du := 0.0
			for a := 0; a < nq; a++ {
				du += d[q][a] * u[base+a]
			}
			f[q] = w[q] * s * du
		}
		for a := 0; a < nq; a++ {
			acc := 0.0
			for q := 0; q < nq; q++ {
				acc += d[q][a] * f[q]
			}
			dst[base+a] += acc
		}
	}
}

// kernelMesh is a small graded mesh with non-trivial material contrasts.
func kernelMesh(t testing.TB) *mesh.Mesh {
	t.Helper()
	m, err := mesh.New("kernel",
		[]float64{0, 0.7, 1.5, 2.0},
		[]float64{0, 1.1, 2.0},
		[]float64{0, 0.9, 2.1})
	if err != nil {
		t.Fatal(err)
	}
	for e := range m.C {
		m.C[e] = 1 + 0.3*float64(e%5)
		m.Rho[e] = 1 + 0.1*float64(e%3)
	}
	return m
}

// pseudoField fills u with a deterministic non-smooth field.
func pseudoField(u []float64) { BenchField(u) }

func maxRelDiff(a, b []float64) float64 {
	scale := 0.0
	for _, v := range b {
		if math.Abs(v) > scale {
			scale = math.Abs(v)
		}
	}
	if scale == 0 {
		scale = 1
	}
	d := 0.0
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d / scale
}

// TestKernelsMatchReference checks every operator's flat (and, at deg=4,
// specialised) kernel against the pre-flat reference implementation at
// 1e-12 relative, across degrees and boundary types.
func TestKernelsMatchReference(t *testing.T) {
	m := kernelMesh(t)
	for _, deg := range []int{2, 3, 4, 5} {
		for _, periodic := range []bool{false, true} {
			ac, err := NewAcoustic3D(m, deg, periodic)
			if err != nil {
				t.Fatal(err)
			}
			el, err := NewElastic3D(m, deg, periodic, 0)
			if err != nil {
				t.Fatal(err)
			}
			cs := make([]VoigtC, m.NumElements())
			for e := range cs {
				// VTI with element-dependent Love parameters.
				f := 1 + 0.2*float64(e%4)
				cs[e] = VTIC(4*f, 3.6*f, 1.1*f, 1.3*f, 1.4*f)
			}
			an, err := NewAnisotropic3D(m, deg, periodic, cs)
			if err != nil {
				t.Fatal(err)
			}
			// Restricted element list exercising gather/scatter overlap.
			elems := []int32{0, 1, 3, 4, 7, 10, 11}
			var sc Scratch
			for _, tc := range []struct {
				name string
				op   Operator
				ref  func(dst, u []float64, elems []int32)
			}{
				{"acoustic", ac, func(dst, u []float64, list []int32) { refAddKuAcoustic(ac, dst, u, list) }},
				{"elastic", el, func(dst, u []float64, list []int32) { refAddKuElastic(el, dst, u, list) }},
				{"anisotropic", an, func(dst, u []float64, list []int32) { refAddKuAniso(an, dst, u, list) }},
			} {
				u := make([]float64, tc.op.NDof())
				pseudoField(u)
				want := make([]float64, tc.op.NDof())
				tc.ref(want, u, elems)
				got := make([]float64, tc.op.NDof())
				tc.op.AddKuScratch(got, u, elems, &sc)
				if d := maxRelDiff(got, want); d > 1e-12 {
					t.Errorf("%s deg=%d periodic=%v: kernel differs from reference by %g", tc.name, deg, periodic, d)
				}
				// Plain AddKu must agree exactly with AddKuScratch.
				got2 := make([]float64, tc.op.NDof())
				tc.op.AddKu(got2, u, elems)
				for i := range got2 {
					if got2[i] != got[i] {
						t.Fatalf("%s deg=%d: AddKu != AddKuScratch at %d", tc.name, deg, i)
					}
				}
			}
		}
	}
	// 1-D operator across degrees.
	for _, deg := range []int{1, 2, 4, 6} {
		xc := []float64{0, 0.5, 1.2, 2.0, 2.3, 3.1}
		c := []float64{1, 2, 1.5, 3, 1}
		rho := []float64{1, 1.2, 0.8, 1, 2}
		op, err := NewOp1D(xc, c, rho, deg, FreeBC, FixedBC)
		if err != nil {
			t.Fatal(err)
		}
		u := make([]float64, op.NDof())
		pseudoField(u)
		elems := []int32{0, 2, 3}
		want := make([]float64, op.NDof())
		refAddKuOp1D(op, want, u, elems)
		got := make([]float64, op.NDof())
		var sc Scratch
		op.AddKuScratch(got, u, elems, &sc)
		if d := maxRelDiff(got, want); d > 1e-12 {
			t.Errorf("op1d deg=%d: kernel differs from reference by %g", deg, d)
		}
	}
}

// TestConnTable checks the flat connectivity against ElemNodes on every
// operator, including the periodic wrap.
func TestConnTable(t *testing.T) {
	m := kernelMesh(t)
	for _, periodic := range []bool{false, true} {
		op, err := NewAcoustic3D(m, 3, periodic)
		if err != nil {
			t.Fatal(err)
		}
		conn, npe := op.ConnTable()
		if npe != 64 {
			t.Fatalf("nodes per element = %d, want 64", npe)
		}
		if len(conn) != npe*op.NumElements() {
			t.Fatalf("conn length %d, want %d", len(conn), npe*op.NumElements())
		}
		var nb []int32
		for e := 0; e < op.NumElements(); e++ {
			nb = op.ElemNodes(e, nb[:0])
			for i, n := range nb {
				if conn[e*npe+i] != n {
					t.Fatalf("periodic=%v elem %d node %d: conn %d, ElemNodes %d", periodic, e, i, conn[e*npe+i], n)
				}
			}
		}
	}
}

// TestAddKuScratchZeroAllocs asserts the allocation contract of the
// kernel fast path on all four operators: after warm-up, zero heap
// allocations per apply.
func TestAddKuScratchZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	m := kernelMesh(t)
	cs := make([]VoigtC, m.NumElements())
	for e := range cs {
		cs[e] = IsotropicC(1, 0.5)
	}
	for _, deg := range []int{3, 4} { // generic and specialised paths
		ac, _ := NewAcoustic3D(m, deg, false)
		el, _ := NewElastic3D(m, deg, false, 0)
		an, _ := NewAnisotropic3D(m, deg, false, cs)
		o1, err := NewOp1D([]float64{0, 1, 2, 3}, []float64{1, 1, 1}, []float64{1, 1, 1}, deg, FreeBC, FreeBC)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			name string
			op   Operator
		}{
			{"acoustic", ac}, {"elastic", el}, {"anisotropic", an}, {"op1d", o1},
		} {
			op := tc.op
			u := make([]float64, op.NDof())
			pseudoField(u)
			dst := make([]float64, op.NDof())
			elems := AllElements(op)
			var sc Scratch
			op.AddKuScratch(dst, u, elems, &sc) // warm-up
			if n := testing.AllocsPerRun(10, func() {
				op.AddKuScratch(dst, u, elems, &sc)
			}); n != 0 {
				t.Errorf("%s deg=%d: AddKuScratch allocates %v per run, want 0", tc.name, deg, n)
			}
		}
	}
}

// TestRestrictionAccel checks the node-restricted accel against the full
// Accel on the support and that off-support entries are untouched.
func TestRestrictionAccel(t *testing.T) {
	m := kernelMesh(t)
	op, err := NewElastic3D(m, 4, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	elems := []int32{0, 1, 5}
	r := NewRestriction(op, elems)
	// Support must match a brute-force node set.
	seen := map[int32]bool{}
	var nb []int32
	for _, e := range elems {
		nb = op.ElemNodes(int(e), nb[:0])
		for _, n := range nb {
			seen[n] = true
		}
	}
	if len(seen) != len(r.Nodes) {
		t.Fatalf("restriction support %d nodes, want %d", len(r.Nodes), len(seen))
	}
	for i := 1; i < len(r.Nodes); i++ {
		if r.Nodes[i-1] >= r.Nodes[i] {
			t.Fatal("restriction support not strictly ascending")
		}
	}
	u := make([]float64, op.NDof())
	pseudoField(u)
	want := make([]float64, op.NDof())
	Accel(op, want, u, elems)
	const sentinel = 1e300
	got := make([]float64, op.NDof())
	for i := range got {
		got[i] = sentinel
	}
	var sc Scratch
	r.Accel(op, got, u, &sc)
	onSupport := make([]bool, op.NumNodes())
	for _, n := range r.Nodes {
		onSupport[n] = true
	}
	for n := 0; n < op.NumNodes(); n++ {
		for c := 0; c < 3; c++ {
			d := n*3 + c
			if onSupport[n] {
				if math.Abs(got[d]-want[d]) > 1e-12*math.Max(1, math.Abs(want[d])) {
					t.Fatalf("dof %d: restricted accel %g, full %g", d, got[d], want[d])
				}
			} else if got[d] != sentinel {
				t.Fatalf("dof %d off support was written", d)
			}
		}
	}
	if race.Enabled {
		return
	}
	if n := testing.AllocsPerRun(10, func() { r.Accel(op, got, u, &sc) }); n != 0 {
		t.Errorf("Restriction.Accel allocates %v per run, want 0", n)
	}
}
