//go:build !purego

#include "textflag.h"

// AVX2 (4-lane) tier of the batched deg=4 microkernels. Same contracts
// and — crucially — the same per-lane floating-point chains as the SSE2
// kernels in mm5_amd64.s and the pure-Go references in mm5.go: products
// are summed in ascending m with one rounding per add, the SIMD width
// runs across independent batch lanes only, and no FMA contraction is
// used anywhere, so every lane is bitwise-identical to the scalar path.
// Selected at runtime by the dispatch table in simd_amd64.go.

// func mm5avx2(dst, src, d *float64, n, blocks int)
TEXT ·mm5avx2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ d+16(FP), DX
	MOVQ n+24(FP), CX
	MOVQ CX, AX
	SHLQ $3, AX        // row stride in bytes
	MOVQ SI, R8        // src rows m = 0..4
	LEAQ (SI)(AX*1), R9
	LEAQ (R9)(AX*1), R10
	LEAQ (R10)(AX*1), R11
	LEAQ (R11)(AX*1), R12
	MOVQ CX, R14
	SUBQ $8, R14       // oct-loop bound: j <= n-8
	MOVQ CX, R15
	SUBQ $4, R15       // quad-loop bound: j <= n-4
	MOVQ blocks+32(FP), SI

a2block:
	MOVQ $5, R13       // output rows left in this block

a2row:
	// Broadcast the five coefficients of this output row.
	VBROADCASTSD 0(DX), Y0
	VBROADCASTSD 8(DX), Y1
	VBROADCASTSD 16(DX), Y2
	VBROADCASTSD 24(DX), Y3
	VBROADCASTSD 32(DX), Y4
	XORQ BX, BX        // j

a2oct:
	CMPQ BX, R14
	JG   a2quad
	VMOVUPD (R8)(BX*8), Y8
	VMULPD Y0, Y8, Y8
	VMOVUPD 32(R8)(BX*8), Y12
	VMULPD Y0, Y12, Y12
	VMOVUPD (R9)(BX*8), Y9
	VMULPD Y1, Y9, Y9
	VADDPD Y9, Y8, Y8
	VMOVUPD 32(R9)(BX*8), Y13
	VMULPD Y1, Y13, Y13
	VADDPD Y13, Y12, Y12
	VMOVUPD (R10)(BX*8), Y10
	VMULPD Y2, Y10, Y10
	VADDPD Y10, Y8, Y8
	VMOVUPD 32(R10)(BX*8), Y14
	VMULPD Y2, Y14, Y14
	VADDPD Y14, Y12, Y12
	VMOVUPD (R11)(BX*8), Y11
	VMULPD Y3, Y11, Y11
	VADDPD Y11, Y8, Y8
	VMOVUPD 32(R11)(BX*8), Y15
	VMULPD Y3, Y15, Y15
	VADDPD Y15, Y12, Y12
	VMOVUPD (R12)(BX*8), Y9
	VMULPD Y4, Y9, Y9
	VADDPD Y9, Y8, Y8
	VMOVUPD 32(R12)(BX*8), Y13
	VMULPD Y4, Y13, Y13
	VADDPD Y13, Y12, Y12
	VMOVUPD Y8, (DI)(BX*8)
	VMOVUPD Y12, 32(DI)(BX*8)
	ADDQ $8, BX
	JMP  a2oct

a2quad:
	CMPQ BX, R15
	JG   a2tail
	VMOVUPD (R8)(BX*8), Y8
	VMULPD Y0, Y8, Y8
	VMOVUPD (R9)(BX*8), Y9
	VMULPD Y1, Y9, Y9
	VADDPD Y9, Y8, Y8
	VMOVUPD (R10)(BX*8), Y10
	VMULPD Y2, Y10, Y10
	VADDPD Y10, Y8, Y8
	VMOVUPD (R11)(BX*8), Y11
	VMULPD Y3, Y11, Y11
	VADDPD Y11, Y8, Y8
	VMOVUPD (R12)(BX*8), Y9
	VMULPD Y4, Y9, Y9
	VADDPD Y9, Y8, Y8
	VMOVUPD Y8, (DI)(BX*8)
	ADDQ $4, BX
	JMP  a2quad

a2tail:
	CMPQ BX, CX
	JGE  a2next
	VMOVSD (R8)(BX*8), X8
	VMULSD X0, X8, X8
	VMOVSD (R9)(BX*8), X9
	VMULSD X1, X9, X9
	VADDSD X9, X8, X8
	VMOVSD (R10)(BX*8), X10
	VMULSD X2, X10, X10
	VADDSD X10, X8, X8
	VMOVSD (R11)(BX*8), X11
	VMULSD X3, X11, X11
	VADDSD X11, X8, X8
	VMOVSD (R12)(BX*8), X9
	VMULSD X4, X9, X9
	VADDSD X9, X8, X8
	VMOVSD X8, (DI)(BX*8)
	INCQ BX
	JMP  a2tail

a2next:
	ADDQ AX, DI        // next dst row
	ADDQ $40, DX       // next coefficient row
	DECQ R13
	JNZ  a2row
	// Next block: dst already advanced 5 rows; advance the src row
	// pointers by 5 rows and rewind the coefficient pointer.
	LEAQ (AX)(AX*4), DX
	ADDQ DX, R8
	ADDQ DX, R9
	ADDQ DX, R10
	ADDQ DX, R11
	ADDQ DX, R12
	MOVQ d+16(FP), DX
	DECQ SI
	JNZ  a2block
	VZEROUPPER
	RET

// func mm5accavx2(dst, src, d *float64, n, blocks int)
TEXT ·mm5accavx2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ d+16(FP), DX
	MOVQ n+24(FP), CX
	MOVQ CX, AX
	SHLQ $3, AX
	MOVQ SI, R8
	LEAQ (SI)(AX*1), R9
	LEAQ (R9)(AX*1), R10
	LEAQ (R10)(AX*1), R11
	LEAQ (R11)(AX*1), R12
	MOVQ CX, R14
	SUBQ $8, R14
	MOVQ CX, R15
	SUBQ $4, R15
	MOVQ blocks+32(FP), SI

c2block:
	MOVQ $5, R13

c2row:
	VBROADCASTSD 0(DX), Y0
	VBROADCASTSD 8(DX), Y1
	VBROADCASTSD 16(DX), Y2
	VBROADCASTSD 24(DX), Y3
	VBROADCASTSD 32(DX), Y4
	XORQ BX, BX

c2oct:
	CMPQ BX, R14
	JG   c2quad
	VMOVUPD (DI)(BX*8), Y8
	VMOVUPD 32(DI)(BX*8), Y12
	VMOVUPD (R8)(BX*8), Y9
	VMULPD Y0, Y9, Y9
	VADDPD Y9, Y8, Y8
	VMOVUPD 32(R8)(BX*8), Y13
	VMULPD Y0, Y13, Y13
	VADDPD Y13, Y12, Y12
	VMOVUPD (R9)(BX*8), Y10
	VMULPD Y1, Y10, Y10
	VADDPD Y10, Y8, Y8
	VMOVUPD 32(R9)(BX*8), Y14
	VMULPD Y1, Y14, Y14
	VADDPD Y14, Y12, Y12
	VMOVUPD (R10)(BX*8), Y11
	VMULPD Y2, Y11, Y11
	VADDPD Y11, Y8, Y8
	VMOVUPD 32(R10)(BX*8), Y15
	VMULPD Y2, Y15, Y15
	VADDPD Y15, Y12, Y12
	VMOVUPD (R11)(BX*8), Y9
	VMULPD Y3, Y9, Y9
	VADDPD Y9, Y8, Y8
	VMOVUPD 32(R11)(BX*8), Y13
	VMULPD Y3, Y13, Y13
	VADDPD Y13, Y12, Y12
	VMOVUPD (R12)(BX*8), Y10
	VMULPD Y4, Y10, Y10
	VADDPD Y10, Y8, Y8
	VMOVUPD 32(R12)(BX*8), Y14
	VMULPD Y4, Y14, Y14
	VADDPD Y14, Y12, Y12
	VMOVUPD Y8, (DI)(BX*8)
	VMOVUPD Y12, 32(DI)(BX*8)
	ADDQ $8, BX
	JMP  c2oct

c2quad:
	CMPQ BX, R15
	JG   c2tail
	VMOVUPD (DI)(BX*8), Y8
	VMOVUPD (R8)(BX*8), Y9
	VMULPD Y0, Y9, Y9
	VADDPD Y9, Y8, Y8
	VMOVUPD (R9)(BX*8), Y10
	VMULPD Y1, Y10, Y10
	VADDPD Y10, Y8, Y8
	VMOVUPD (R10)(BX*8), Y11
	VMULPD Y2, Y11, Y11
	VADDPD Y11, Y8, Y8
	VMOVUPD (R11)(BX*8), Y9
	VMULPD Y3, Y9, Y9
	VADDPD Y9, Y8, Y8
	VMOVUPD (R12)(BX*8), Y10
	VMULPD Y4, Y10, Y10
	VADDPD Y10, Y8, Y8
	VMOVUPD Y8, (DI)(BX*8)
	ADDQ $4, BX
	JMP  c2quad

c2tail:
	CMPQ BX, CX
	JGE  c2next
	VMOVSD (DI)(BX*8), X8
	VMOVSD (R8)(BX*8), X9
	VMULSD X0, X9, X9
	VADDSD X9, X8, X8
	VMOVSD (R9)(BX*8), X10
	VMULSD X1, X10, X10
	VADDSD X10, X8, X8
	VMOVSD (R10)(BX*8), X11
	VMULSD X2, X11, X11
	VADDSD X11, X8, X8
	VMOVSD (R11)(BX*8), X9
	VMULSD X3, X9, X9
	VADDSD X9, X8, X8
	VMOVSD (R12)(BX*8), X10
	VMULSD X4, X10, X10
	VADDSD X10, X8, X8
	VMOVSD X8, (DI)(BX*8)
	INCQ BX
	JMP  c2tail

c2next:
	ADDQ AX, DI
	ADDQ $40, DX
	DECQ R13
	JNZ  c2row
	LEAQ (AX)(AX*4), DX
	ADDQ DX, R8
	ADDQ DX, R9
	ADDQ DX, R10
	ADDQ DX, R11
	ADDQ DX, R12
	MOVQ d+16(FP), DX
	DECQ SI
	JNZ  c2block
	VZEROUPPER
	RET

// func elStress8avx2(gp, cst, w *float64)
//
// AVX2 twin of elStress8asm: the same layout (9 gradient planes of
// 125×8 values at plane stride 8000 bytes, 8 rows of per-element
// constants, 125 interleaved (w[a], w[b]·w[c]) pairs) with the 8-lane
// loop run as two 4-lane halves.
TEXT ·elStress8avx2(SB), NOSPLIT, $0-24
	MOVQ gp+0(FP), DI
	MOVQ cst+8(FP), SI
	MOVQ w+16(FP), DX
	MOVQ $125, CX

e2q:
	// Broadcast wa and wbc of this quadrature point.
	VBROADCASTSD 0(DX), Y0
	VBROADCASTSD 8(DX), Y1
	XORQ BX, BX        // lane

e2lane:
	VMOVUPD (SI)(BX*8), Y2     // ax
	VMOVUPD 64(SI)(BX*8), Y3   // ay
	VMOVUPD 128(SI)(BX*8), Y4  // az
	// wbc = wbc0·jdet ; wq = wa·wbc ; wx/wy/wz = wq·a{x,y,z}
	VMOVUPD 192(SI)(BX*8), Y5  // jdet
	VMULPD Y1, Y5, Y5          // wbc
	VMULPD Y0, Y5, Y5          // wq
	VMOVAPD Y5, Y6
	VMULPD Y2, Y6, Y6          // wx
	VMOVAPD Y5, Y7
	VMULPD Y3, Y7, Y7          // wy
	VMULPD Y4, Y5, Y5          // wz
	VMOVUPD 256(SI)(BX*8), Y9  // lam
	VMOVUPD 320(SI)(BX*8), Y10 // mu
	VMOVAPD Y10, Y11
	VADDPD Y10, Y11, Y11       // 2mu
	// Diagonal: v00 = ax·g00, v11 = ay·g11, v22 = az·g22,
	// tr = (v00+v11)+v22, lt = lam·tr, tkk = w·(2mu·vkk + lt).
	VMOVUPD (DI)(BX*8), Y12
	VMULPD Y2, Y12, Y12
	VMOVUPD 32000(DI)(BX*8), Y13
	VMULPD Y3, Y13, Y13
	VMOVUPD 64000(DI)(BX*8), Y14
	VMULPD Y4, Y14, Y14
	VMOVAPD Y12, Y15
	VADDPD Y13, Y15, Y15
	VADDPD Y14, Y15, Y15       // tr
	VMULPD Y15, Y9, Y9         // lt = lam·tr
	VMULPD Y11, Y12, Y12
	VADDPD Y9, Y12, Y12
	VMULPD Y6, Y12, Y12
	VMOVUPD Y12, (DI)(BX*8)    // t0
	VMULPD Y11, Y13, Y13
	VADDPD Y9, Y13, Y13
	VMULPD Y7, Y13, Y13
	VMOVUPD Y13, 32000(DI)(BX*8) // t4
	VMULPD Y11, Y14, Y14
	VADDPD Y9, Y14, Y14
	VMULPD Y5, Y14, Y14
	VMOVUPD Y14, 64000(DI)(BX*8) // t8
	// Shear xy: sxy = mu·(ay·g01 + ax·g10); t1 = wy·sxy, t3 = wx·sxy.
	VMOVUPD 8000(DI)(BX*8), Y12
	VMULPD Y3, Y12, Y12
	VMOVUPD 24000(DI)(BX*8), Y13
	VMULPD Y2, Y13, Y13
	VADDPD Y13, Y12, Y12
	VMULPD Y10, Y12, Y12
	VMOVAPD Y12, Y14
	VMULPD Y7, Y14, Y14
	VMOVUPD Y14, 8000(DI)(BX*8)  // t1
	VMULPD Y6, Y12, Y12
	VMOVUPD Y12, 24000(DI)(BX*8) // t3
	// Shear xz: sxz = mu·(az·g02 + ax·g20); t2 = wz·sxz, t6 = wx·sxz.
	VMOVUPD 16000(DI)(BX*8), Y12
	VMULPD Y4, Y12, Y12
	VMOVUPD 48000(DI)(BX*8), Y13
	VMULPD Y2, Y13, Y13
	VADDPD Y13, Y12, Y12
	VMULPD Y10, Y12, Y12
	VMOVAPD Y12, Y14
	VMULPD Y5, Y14, Y14
	VMOVUPD Y14, 16000(DI)(BX*8) // t2
	VMULPD Y6, Y12, Y12
	VMOVUPD Y12, 48000(DI)(BX*8) // t6
	// Shear yz: syz = mu·(az·g12 + ay·g21); t5 = wz·syz, t7 = wy·syz.
	VMOVUPD 40000(DI)(BX*8), Y12
	VMULPD Y4, Y12, Y12
	VMOVUPD 56000(DI)(BX*8), Y13
	VMULPD Y3, Y13, Y13
	VADDPD Y13, Y12, Y12
	VMULPD Y10, Y12, Y12
	VMOVAPD Y12, Y14
	VMULPD Y5, Y14, Y14
	VMOVUPD Y14, 40000(DI)(BX*8) // t5
	VMULPD Y7, Y12, Y12
	VMOVUPD Y12, 56000(DI)(BX*8) // t7
	ADDQ $4, BX
	CMPQ BX, $8
	JL   e2lane
	ADDQ $64, DI       // next quadrature point (8 lanes)
	ADDQ $16, DX       // next (wa, wbc) pair
	DECQ CX
	JNZ  e2q
	VZEROUPPER
	RET

// func acStress8avx2(fp, cst, w *float64)
//
// AVX2 twin of acStress8asm: 3 derivative planes rescaled in place by
// the premultiplied metric factors and quadrature weights, two 4-lane
// halves per quadrature point.
TEXT ·acStress8avx2(SB), NOSPLIT, $0-24
	MOVQ fp+0(FP), DI
	MOVQ cst+8(FP), SI
	MOVQ w+16(FP), DX
	MOVQ $125, CX

p2q:
	VBROADCASTSD 0(DX), Y0
	VBROADCASTSD 8(DX), Y1
	XORQ BX, BX

p2lane:
	VMOVUPD (SI)(BX*8), Y2
	VMULPD Y0, Y2, Y2
	VMULPD Y1, Y2, Y2
	VMOVUPD (DI)(BX*8), Y5
	VMULPD Y2, Y5, Y5
	VMOVUPD Y5, (DI)(BX*8)
	VMOVUPD 64(SI)(BX*8), Y3
	VMULPD Y0, Y3, Y3
	VMULPD Y1, Y3, Y3
	VMOVUPD 8000(DI)(BX*8), Y6
	VMULPD Y3, Y6, Y6
	VMOVUPD Y6, 8000(DI)(BX*8)
	VMOVUPD 128(SI)(BX*8), Y4
	VMULPD Y0, Y4, Y4
	VMULPD Y1, Y4, Y4
	VMOVUPD 16000(DI)(BX*8), Y7
	VMULPD Y4, Y7, Y7
	VMOVUPD Y7, 16000(DI)(BX*8)
	ADDQ $4, BX
	CMPQ BX, $8
	JL   p2lane
	ADDQ $64, DI
	ADDQ $16, DX
	DECQ CX
	JNZ  p2q
	VZEROUPPER
	RET

// func anStress8avx2(gp, cst, w *float64)
//
// AVX2 twin of anStress8asm: Voigt strain contracted with the 6×6
// per-element tensor (cst rows 4..39) exactly in the scalar kernel's
// chain order, two 4-lane halves per quadrature point.
TEXT ·anStress8avx2(SB), NOSPLIT, $0-24
	MOVQ gp+0(FP), DI
	MOVQ cst+8(FP), SI
	MOVQ w+16(FP), DX
	MOVQ $125, CX

n2q:
	VBROADCASTSD 0(DX), Y0
	VBROADCASTSD 8(DX), Y1
	XORQ BX, BX

n2lane:
	VMOVUPD (SI)(BX*8), Y2       // ax
	VMOVUPD 64(SI)(BX*8), Y3     // ay
	VMOVUPD 128(SI)(BX*8), Y4    // az
	VMOVUPD 192(SI)(BX*8), Y5    // jdet
	VMULPD Y1, Y5, Y5            // wbc
	VMULPD Y0, Y5, Y5            // wq
	VMOVAPD Y5, Y6
	VMULPD Y2, Y6, Y6            // wx
	VMOVAPD Y5, Y7
	VMULPD Y3, Y7, Y7            // wy
	VMULPD Y4, Y5, Y5            // wz
	// Voigt strain from the nine scaled gradients.
	VMOVUPD (DI)(BX*8), Y8
	VMULPD Y2, Y8, Y8            // e0 = ax·g00
	VMOVUPD 32000(DI)(BX*8), Y9
	VMULPD Y3, Y9, Y9            // e1 = ay·g11
	VMOVUPD 64000(DI)(BX*8), Y10
	VMULPD Y4, Y10, Y10          // e2 = az·g22
	VMOVUPD 40000(DI)(BX*8), Y11
	VMULPD Y4, Y11, Y11
	VMOVUPD 56000(DI)(BX*8), Y15
	VMULPD Y3, Y15, Y15
	VADDPD Y15, Y11, Y11         // e3 = az·g12 + ay·g21
	VMOVUPD 16000(DI)(BX*8), Y12
	VMULPD Y4, Y12, Y12
	VMOVUPD 48000(DI)(BX*8), Y15
	VMULPD Y2, Y15, Y15
	VADDPD Y15, Y12, Y12         // e4 = az·g02 + ax·g20
	VMOVUPD 8000(DI)(BX*8), Y13
	VMULPD Y3, Y13, Y13
	VMOVUPD 24000(DI)(BX*8), Y15
	VMULPD Y2, Y15, Y15
	VADDPD Y15, Y13, Y13         // e5 = ay·g01 + ax·g10
	// s0 = C0:e ; t0 = wx·s0
	VMOVUPD 256(SI)(BX*8), Y14
	VMULPD Y8, Y14, Y14
	VMOVUPD 320(SI)(BX*8), Y2
	VMULPD Y9, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 384(SI)(BX*8), Y2
	VMULPD Y10, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 448(SI)(BX*8), Y2
	VMULPD Y11, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 512(SI)(BX*8), Y2
	VMULPD Y12, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 576(SI)(BX*8), Y2
	VMULPD Y13, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMULPD Y6, Y14, Y14
	VMOVUPD Y14, (DI)(BX*8)
	// s1 ; t4 = wy·s1
	VMOVUPD 640(SI)(BX*8), Y14
	VMULPD Y8, Y14, Y14
	VMOVUPD 704(SI)(BX*8), Y2
	VMULPD Y9, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 768(SI)(BX*8), Y2
	VMULPD Y10, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 832(SI)(BX*8), Y2
	VMULPD Y11, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 896(SI)(BX*8), Y2
	VMULPD Y12, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 960(SI)(BX*8), Y2
	VMULPD Y13, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMULPD Y7, Y14, Y14
	VMOVUPD Y14, 32000(DI)(BX*8)
	// s2 ; t8 = wz·s2
	VMOVUPD 1024(SI)(BX*8), Y14
	VMULPD Y8, Y14, Y14
	VMOVUPD 1088(SI)(BX*8), Y2
	VMULPD Y9, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 1152(SI)(BX*8), Y2
	VMULPD Y10, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 1216(SI)(BX*8), Y2
	VMULPD Y11, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 1280(SI)(BX*8), Y2
	VMULPD Y12, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 1344(SI)(BX*8), Y2
	VMULPD Y13, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMULPD Y5, Y14, Y14
	VMOVUPD Y14, 64000(DI)(BX*8)
	// s3 ; t5 = wz·s3, t7 = wy·s3
	VMOVUPD 1408(SI)(BX*8), Y14
	VMULPD Y8, Y14, Y14
	VMOVUPD 1472(SI)(BX*8), Y2
	VMULPD Y9, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 1536(SI)(BX*8), Y2
	VMULPD Y10, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 1600(SI)(BX*8), Y2
	VMULPD Y11, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 1664(SI)(BX*8), Y2
	VMULPD Y12, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 1728(SI)(BX*8), Y2
	VMULPD Y13, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVAPD Y14, Y2
	VMULPD Y5, Y2, Y2
	VMOVUPD Y2, 40000(DI)(BX*8)
	VMULPD Y7, Y14, Y14
	VMOVUPD Y14, 56000(DI)(BX*8)
	// s4 ; t2 = wz·s4, t6 = wx·s4
	VMOVUPD 1792(SI)(BX*8), Y14
	VMULPD Y8, Y14, Y14
	VMOVUPD 1856(SI)(BX*8), Y2
	VMULPD Y9, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 1920(SI)(BX*8), Y2
	VMULPD Y10, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 1984(SI)(BX*8), Y2
	VMULPD Y11, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 2048(SI)(BX*8), Y2
	VMULPD Y12, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 2112(SI)(BX*8), Y2
	VMULPD Y13, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVAPD Y14, Y2
	VMULPD Y5, Y2, Y2
	VMOVUPD Y2, 16000(DI)(BX*8)
	VMULPD Y6, Y14, Y14
	VMOVUPD Y14, 48000(DI)(BX*8)
	// s5 ; t1 = wy·s5, t3 = wx·s5
	VMOVUPD 2176(SI)(BX*8), Y14
	VMULPD Y8, Y14, Y14
	VMOVUPD 2240(SI)(BX*8), Y2
	VMULPD Y9, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 2304(SI)(BX*8), Y2
	VMULPD Y10, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 2368(SI)(BX*8), Y2
	VMULPD Y11, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 2432(SI)(BX*8), Y2
	VMULPD Y12, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVUPD 2496(SI)(BX*8), Y2
	VMULPD Y13, Y2, Y2
	VADDPD Y2, Y14, Y14
	VMOVAPD Y14, Y2
	VMULPD Y7, Y2, Y2
	VMOVUPD Y2, 8000(DI)(BX*8)
	VMULPD Y6, Y14, Y14
	VMOVUPD Y14, 24000(DI)(BX*8)
	ADDQ $4, BX
	CMPQ BX, $8
	JL   n2lane
	ADDQ $64, DI
	ADDQ $16, DX
	DECQ CX
	JNZ  n2q
	VZEROUPPER
	RET
