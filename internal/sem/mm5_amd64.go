//go:build amd64 && !purego

package sem

// Declarations for the asm microkernels and their tier wrappers. Three
// assembly tiers implement the same five primitives: SSE2 (2-lane,
// mm5_amd64.s — part of the amd64 baseline), AVX2 (4-lane,
// mm5_avx2_amd64.s) and AVX-512 (8-lane, mm5_avx512_amd64.s). All
// vectorise across independent batch lanes only, so every tier is
// bitwise-identical to the pure-Go references in mm5.go; tests pin all
// of them against each other. Dispatch lives in simd_amd64.go.

//go:noescape
func mm5asm(dst, src, d *float64, n, blocks int)

//go:noescape
func mm5accasm(dst, src, d *float64, n, blocks int)

//go:noescape
func elStress8asm(gp, cst, w *float64)

//go:noescape
func acStress8asm(fp, cst, w *float64)

//go:noescape
func anStress8asm(gp, cst, w *float64)

//go:noescape
func mm5avx2(dst, src, d *float64, n, blocks int)

//go:noescape
func mm5accavx2(dst, src, d *float64, n, blocks int)

//go:noescape
func elStress8avx2(gp, cst, w *float64)

//go:noescape
func acStress8avx2(fp, cst, w *float64)

//go:noescape
func anStress8avx2(gp, cst, w *float64)

//go:noescape
func mm5avx512(dst, src, d *float64, n, blocks int)

//go:noescape
func mm5accavx512(dst, src, d *float64, n, blocks int)

//go:noescape
func elStress8avx512(gp, cst, w *float64)

//go:noescape
func acStress8avx512(fp, cst, w *float64)

//go:noescape
func anStress8avx512(gp, cst, w *float64)

// The slice-level tier entries below carry the bounds hints the asm
// kernels rely on; simd_amd64.go binds them into the dispatch table.

func sse2Mul5(dst, src, d []float64, n, blocks int) {
	_ = dst[5*n*blocks-1]
	_ = src[5*n*blocks-1]
	_ = d[24]
	mm5asm(&dst[0], &src[0], &d[0], n, blocks)
}

func sse2Mul5acc(dst, src, d []float64, n, blocks int) {
	_ = dst[5*n*blocks-1]
	_ = src[5*n*blocks-1]
	_ = d[24]
	mm5accasm(&dst[0], &src[0], &d[0], n, blocks)
}

func avx2Mul5(dst, src, d []float64, n, blocks int) {
	_ = dst[5*n*blocks-1]
	_ = src[5*n*blocks-1]
	_ = d[24]
	mm5avx2(&dst[0], &src[0], &d[0], n, blocks)
}

func avx2Mul5acc(dst, src, d []float64, n, blocks int) {
	_ = dst[5*n*blocks-1]
	_ = src[5*n*blocks-1]
	_ = d[24]
	mm5accavx2(&dst[0], &src[0], &d[0], n, blocks)
}

func avx512Mul5(dst, src, d []float64, n, blocks int) {
	_ = dst[5*n*blocks-1]
	_ = src[5*n*blocks-1]
	_ = d[24]
	mm5avx512(&dst[0], &src[0], &d[0], n, blocks)
}

func avx512Mul5acc(dst, src, d []float64, n, blocks int) {
	_ = dst[5*n*blocks-1]
	_ = src[5*n*blocks-1]
	_ = d[24]
	mm5accavx512(&dst[0], &src[0], &d[0], n, blocks)
}

func sse2ElStress8(g, cst, w []float64) {
	_ = g[9*125*batchB-1]
	_ = cst[elCstRows*batchB-1]
	_ = w[249]
	elStress8asm(&g[0], &cst[0], &w[0])
}

func sse2AcStress8(f, cst, w []float64) {
	_ = f[3*125*batchB-1]
	_ = cst[acCstRows*batchB-1]
	_ = w[249]
	acStress8asm(&f[0], &cst[0], &w[0])
}

func sse2AnStress8(g, cst, w []float64) {
	_ = g[9*125*batchB-1]
	_ = cst[anCstRows*batchB-1]
	_ = w[249]
	anStress8asm(&g[0], &cst[0], &w[0])
}

func avx2ElStress8(g, cst, w []float64) {
	_ = g[9*125*batchB-1]
	_ = cst[elCstRows*batchB-1]
	_ = w[249]
	elStress8avx2(&g[0], &cst[0], &w[0])
}

func avx2AcStress8(f, cst, w []float64) {
	_ = f[3*125*batchB-1]
	_ = cst[acCstRows*batchB-1]
	_ = w[249]
	acStress8avx2(&f[0], &cst[0], &w[0])
}

func avx2AnStress8(g, cst, w []float64) {
	_ = g[9*125*batchB-1]
	_ = cst[anCstRows*batchB-1]
	_ = w[249]
	anStress8avx2(&g[0], &cst[0], &w[0])
}

func avx512ElStress8(g, cst, w []float64) {
	_ = g[9*125*batchB-1]
	_ = cst[elCstRows*batchB-1]
	_ = w[249]
	elStress8avx512(&g[0], &cst[0], &w[0])
}

func avx512AcStress8(f, cst, w []float64) {
	_ = f[3*125*batchB-1]
	_ = cst[acCstRows*batchB-1]
	_ = w[249]
	acStress8avx512(&f[0], &cst[0], &w[0])
}

func avx512AnStress8(g, cst, w []float64) {
	_ = g[9*125*batchB-1]
	_ = cst[anCstRows*batchB-1]
	_ = w[249]
	anStress8avx512(&g[0], &cst[0], &w[0])
}
