//go:build amd64

package sem

// Declarations for the asm microkernels (mm5_amd64.s). SSE2 is part of
// the amd64 baseline, so no runtime feature detection is needed. The
// pure-Go references in mm5.go compute bitwise-identical results; tests
// pin the two against each other.

//go:noescape
func mm5asm(dst, src, d *float64, n, blocks int)

//go:noescape
func mm5accasm(dst, src, d *float64, n, blocks int)

//go:noescape
func elStress8asm(gp, cst, w *float64)

//go:noescape
func acStress8asm(fp, cst, w *float64)

//go:noescape
func anStress8asm(gp, cst, w *float64)

// mul5 computes dst[g*5n+a*n+j] = Σ_m d[a*5+m]·src[g*5n+m*n+j] over
// `blocks` consecutive 5-row groups, with the same per-lane rounding
// chain as the scalar kernels (see mm5go).
func mul5(dst, src, d []float64, n, blocks int) {
	_ = dst[5*n*blocks-1]
	_ = src[5*n*blocks-1]
	_ = d[24]
	mm5asm(&dst[0], &src[0], &d[0], n, blocks)
}

// mul5acc is mul5 accumulating into dst (see mm5accgo).
func mul5acc(dst, src, d []float64, n, blocks int) {
	_ = dst[5*n*blocks-1]
	_ = src[5*n*blocks-1]
	_ = d[24]
	mm5accasm(&dst[0], &src[0], &d[0], n, blocks)
}

// elStress8 runs the batched elastic stress pass over one 8-lane deg=4
// block (see the pure-Go reference elStressN).
func elStress8(g, cst, w []float64) {
	_ = g[9*125*batchB-1]
	_ = cst[elCstRows*batchB-1]
	_ = w[249]
	elStress8asm(&g[0], &cst[0], &w[0])
}

// acStress8 runs the batched acoustic pointwise pass over one 8-lane
// deg=4 block (see acStressN).
func acStress8(f, cst, w []float64) {
	_ = f[3*125*batchB-1]
	_ = cst[acCstRows*batchB-1]
	_ = w[249]
	acStress8asm(&f[0], &cst[0], &w[0])
}

// anStress8 runs the batched anisotropic stress pass over one 8-lane
// deg=4 block (see anStressN).
func anStress8(g, cst, w []float64) {
	_ = g[9*125*batchB-1]
	_ = cst[anCstRows*batchB-1]
	_ = w[249]
	anStress8asm(&g[0], &cst[0], &w[0])
}
