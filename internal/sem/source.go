package sem

import "math"

// Wavelet is a source time function.
type Wavelet interface {
	// Amp returns the source amplitude at time t.
	Amp(t float64) float64
}

// Ricker is the Ricker wavelet (second derivative of a Gaussian), the
// standard seismic source time function.
type Ricker struct {
	// F0 is the dominant frequency.
	F0 float64
	// T0 is the time shift; a common choice is 1.2/F0 so the wavelet
	// starts near zero.
	T0 float64
	// Scale multiplies the amplitude (default treated as 1 when zero).
	Scale float64
}

// Amp evaluates the wavelet: (1 - 2a) e^{-a}, a = (π f0 (t - t0))².
func (r Ricker) Amp(t float64) float64 {
	s := r.Scale
	if s == 0 {
		s = 1
	}
	a := math.Pi * r.F0 * (t - r.T0)
	a *= a
	return s * (1 - 2*a) * math.Exp(-a)
}

// GaussianPulse is a smooth single-signed pulse, useful for travel-time
// tests.
type GaussianPulse struct {
	T0, Sigma, Scale float64
}

// Amp evaluates the pulse.
func (g GaussianPulse) Amp(t float64) float64 {
	s := g.Scale
	if s == 0 {
		s = 1
	}
	d := (t - g.T0) / g.Sigma
	return s * math.Exp(-d*d/2)
}

// Source is a point force applied to a single degree of freedom (the f(x_s,
// t) term of Eq. 1 collocated at a GLL node).
type Source struct {
	// Dof is the global degree of freedom (node*Comps + comp).
	Dof int
	// W is the source time function.
	W Wavelet
}

// AddForces accumulates M⁻¹ F(t) for all sources into dst (length NDof).
// The division by the lumped mass turns the nodal force into an
// acceleration contribution.
func AddForces(op Operator, sources []Source, t float64, dst []float64) {
	if len(sources) == 0 {
		return
	}
	minv := op.MInv()
	nc := op.Comps()
	for _, s := range sources {
		dst[s.Dof] += s.W.Amp(t) * minv[s.Dof/nc]
	}
}

// Receiver records the value of one degree of freedom over time.
type Receiver struct {
	// Dof is the recorded degree of freedom.
	Dof int
	// Times and Values accumulate the seismogram samples.
	Times, Values []float64
}

// Record appends a sample.
func (r *Receiver) Record(t float64, u []float64) {
	r.Times = append(r.Times, t)
	r.Values = append(r.Values, u[r.Dof])
}

// PeakTime returns the time at which |value| is largest (crude arrival
// picker for travel-time tests). Returns 0 when empty.
func (r *Receiver) PeakTime() float64 {
	best, bt := 0.0, 0.0
	for i, v := range r.Values {
		if math.Abs(v) > best {
			best, bt = math.Abs(v), r.Times[i]
		}
	}
	return bt
}

// FirstArrival returns the first time |value| exceeds frac times the peak
// amplitude — a threshold picker robust against later reflections. Returns
// 0 when the trace is empty or all-zero.
func (r *Receiver) FirstArrival(frac float64) float64 {
	peak := 0.0
	for _, v := range r.Values {
		if math.Abs(v) > peak {
			peak = math.Abs(v)
		}
	}
	if peak == 0 {
		return 0
	}
	for i, v := range r.Values {
		if math.Abs(v) >= frac*peak {
			return r.Times[i]
		}
	}
	return 0
}
