package sem

import (
	"fmt"

	"golts/internal/gll"
	"golts/internal/mesh"
)

// Acoustic3D is the scalar wave operator ρ ü = ∇·(μ ∇u), μ = ρ c², on a
// structured hexahedral mesh with tensor-product GLL bases (degree 4 gives
// the paper's 125-node elements). Because the mesh elements are axis-aligned
// boxes, the Jacobian is diagonal, and the stiffness action reduces to six
// 1-D tensor contractions per element — the same computational structure as
// SPECFEM3D's kernels.
type Acoustic3D struct {
	M    *mesh.Mesh
	Rule *gll.Rule
	// Periodic selects periodic boundary conditions in all directions
	// (nodes on opposite faces are identified); otherwise all boundaries
	// are free surfaces (natural/Neumann), as on the paper's top surface.
	Periodic bool

	core3d
	fixed []int32 // Dirichlet nodes (minv zeroed)
}

// NewAcoustic3D builds the operator on mesh m with basis degree deg.
func NewAcoustic3D(m *mesh.Mesh, deg int, periodic bool) (*Acoustic3D, error) {
	r, err := gll.New(deg)
	if err != nil {
		return nil, err
	}
	op := &Acoustic3D{M: m, Rule: r, Periodic: periodic}
	op.initCore(m, r, deg, periodic, m.Rho)
	return op, nil
}

// FixNodes imposes homogeneous Dirichlet conditions at the given nodes by
// zeroing their inverse mass.
func (op *Acoustic3D) FixNodes(nodes []int32) {
	op.fixed = append(op.fixed, nodes...)
	for _, n := range nodes {
		op.minv[n] = 0
	}
}

// Comps returns 1.
func (op *Acoustic3D) Comps() int { return 1 }

// NDof returns the degree-of-freedom count.
func (op *Acoustic3D) NDof() int { return op.NumNodes() }

// ClosestNode returns the global node nearest to (x, y, z), snapping each
// axis independently (exact for tensor grids).
func (op *Acoustic3D) ClosestNode(x, y, z float64) int32 {
	return op.NodeIndex(op.closestAxis(op.M.XC, op.M.NX, x),
		op.closestAxis(op.M.YC, op.M.NY, y),
		op.closestAxis(op.M.ZC, op.M.NZ, z))
}

func (op *Acoustic3D) closestAxis(bc []float64, ne int, x float64) int {
	best, bd := 0, -1.0
	for gi := 0; gi <= op.deg*ne; gi++ {
		d := x - axisCoord(op.Rule, op.deg, bc, gi)
		if d < 0 {
			d = -d
		}
		if bd < 0 || d < bd {
			best, bd = gi, d
		}
	}
	return best
}

// AddKu accumulates dst += K u for the listed elements, using a pooled
// scratch. Hot callers hold their own Scratch and call AddKuScratch.
func (op *Acoustic3D) AddKu(dst, u []float64, elems []int32) {
	sc := scratchPool.Get().(*Scratch)
	op.AddKuScratch(dst, u, elems, sc)
	scratchPool.Put(sc)
}

// AddKuScratch accumulates dst += K u for the listed elements. Per element:
// gather nodal values through the flat connectivity table, differentiate
// along each axis with the flat 1-D derivative matrix, scale by metric
// terms and quadrature weights, and scatter back with the transposed
// derivative. Zero heap allocations once sc is warm.
func (op *Acoustic3D) AddKuScratch(dst, u []float64, elems []int32, sc *Scratch) {
	checkLens(op, "dst", dst)
	checkLens(op, "u", u)
	if op.deg == 4 {
		op.addKu5(dst, u, elems, sc)
		return
	}
	nq, n3 := op.nq, op.n3
	d, dt := op.dfl, op.dtf
	w := op.Rule.Weights
	buf := sc.floats(4 * n3)
	ue := buf[0*n3 : 1*n3]
	fx := buf[1*n3 : 2*n3]
	fy := buf[2*n3 : 3*n3]
	fz := buf[3*n3 : 4*n3]
	for _, e := range elems {
		dx, dy, dz := op.M.ElemSize(int(e))
		jdet := dx * dy * dz / 8
		ax, ay, az := 2/dx, 2/dy, 2/dz
		mu := op.M.Rho[e] * op.M.C[e] * op.M.C[e]
		sx, sy, sz := mu*jdet*ax*ax, mu*jdet*ay*ay, mu*jdet*az*az
		nb := op.elemConn(int(e))
		for i, n := range nb {
			ue[i] = u[n]
		}
		// Forward derivatives scaled by weights and metric; the a axis
		// (stride 1 in the element-local layout) runs innermost.
		for c := 0; c < nq; c++ {
			dc := d[c*nq : c*nq+nq]
			for b := 0; b < nq; b++ {
				db := d[b*nq : b*nq+nq]
				cb := (c*nq + b) * nq
				yb := c * nq * nq
				wbc := w[b] * w[c]
				for a := 0; a < nq; a++ {
					da := d[a*nq : a*nq+nq]
					yi := yb + a
					zi := b*nq + a
					var dxu, dyu, dzu float64
					for m := 0; m < nq; m++ {
						dxu += da[m] * ue[cb+m]
						dyu += db[m] * ue[yi+m*nq]
						dzu += dc[m] * ue[zi+m*nq*nq]
					}
					wa := w[a]
					fx[cb+a] = sx * wa * wbc * dxu
					fy[cb+a] = sy * wa * wbc * dyu
					fz[cb+a] = sz * wa * wbc * dzu
				}
			}
		}
		// Transposed scatter: dst_l += Σ_m D[m][l] f(m). The three axis
		// sums accumulate in x-then-y-then-z order — the same chain as the
		// deg=4 kernel and the batched axis sweeps, so all three paths are
		// bitwise-identical.
		for c := 0; c < nq; c++ {
			dc := dt[c*nq : c*nq+nq]
			for b := 0; b < nq; b++ {
				db := dt[b*nq : b*nq+nq]
				cb := (c*nq + b) * nq
				yb := c * nq * nq
				for a := 0; a < nq; a++ {
					da := dt[a*nq : a*nq+nq]
					yi := yb + a
					zi := b*nq + a
					var acc float64
					for m := 0; m < nq; m++ {
						acc += da[m] * fx[cb+m]
					}
					for m := 0; m < nq; m++ {
						acc += db[m] * fy[yi+m*nq]
					}
					for m := 0; m < nq; m++ {
						acc += dc[m] * fz[zi+m*nq*nq]
					}
					dst[nb[cb+a]] += acc
				}
			}
		}
	}
}

// addKu5 is the specialised deg=4 (125-node) kernel: fixed loop bounds,
// fully unrolled length-5 contractions, and array-pointer views that let
// the compiler drop slice-header loads in the innermost loops.
func (op *Acoustic3D) addKu5(dst, u []float64, elems []int32, sc *Scratch) {
	const n3 = 125
	buf := sc.floats(4 * n3)
	ue := (*[n3]float64)(buf[0*n3:])
	fx := (*[n3]float64)(buf[1*n3:])
	fy := (*[n3]float64)(buf[2*n3:])
	fz := (*[n3]float64)(buf[3*n3:])
	d := (*[25]float64)(op.dfl)
	dt := (*[25]float64)(op.dtf)
	w := (*[5]float64)(op.Rule.Weights)
	for _, e := range elems {
		dx, dy, dz := op.M.ElemSize(int(e))
		jdet := dx * dy * dz / 8
		ax, ay, az := 2/dx, 2/dy, 2/dz
		mu := op.M.Rho[e] * op.M.C[e] * op.M.C[e]
		sx, sy, sz := mu*jdet*ax*ax, mu*jdet*ay*ay, mu*jdet*az*az
		nb := op.elemConn(int(e))
		for i, n := range nb {
			ue[i] = u[n]
		}
		for c := 0; c < 5; c++ {
			c0, c1, c2, c3, c4 := d[c*5], d[c*5+1], d[c*5+2], d[c*5+3], d[c*5+4]
			for b := 0; b < 5; b++ {
				b0, b1, b2, b3, b4 := d[b*5], d[b*5+1], d[b*5+2], d[b*5+3], d[b*5+4]
				cb := (c*5 + b) * 5
				wbc := w[b] * w[c]
				for a := 0; a < 5; a++ {
					a0, a1, a2, a3, a4 := d[a*5], d[a*5+1], d[a*5+2], d[a*5+3], d[a*5+4]
					yi := c*25 + a
					zi := b*5 + a
					dxu := a0*ue[cb] + a1*ue[cb+1] + a2*ue[cb+2] + a3*ue[cb+3] + a4*ue[cb+4]
					dyu := b0*ue[yi] + b1*ue[yi+5] + b2*ue[yi+10] + b3*ue[yi+15] + b4*ue[yi+20]
					dzu := c0*ue[zi] + c1*ue[zi+25] + c2*ue[zi+50] + c3*ue[zi+75] + c4*ue[zi+100]
					wa := w[a]
					fx[cb+a] = sx * wa * wbc * dxu
					fy[cb+a] = sy * wa * wbc * dyu
					fz[cb+a] = sz * wa * wbc * dzu
				}
			}
		}
		for c := 0; c < 5; c++ {
			c0, c1, c2, c3, c4 := dt[c*5], dt[c*5+1], dt[c*5+2], dt[c*5+3], dt[c*5+4]
			for b := 0; b < 5; b++ {
				b0, b1, b2, b3, b4 := dt[b*5], dt[b*5+1], dt[b*5+2], dt[b*5+3], dt[b*5+4]
				cb := (c*5 + b) * 5
				for a := 0; a < 5; a++ {
					a0, a1, a2, a3, a4 := dt[a*5], dt[a*5+1], dt[a*5+2], dt[a*5+3], dt[a*5+4]
					yi := c*25 + a
					zi := b*5 + a
					acc := a0*fx[cb] + a1*fx[cb+1] + a2*fx[cb+2] + a3*fx[cb+3] + a4*fx[cb+4] +
						b0*fy[yi] + b1*fy[yi+5] + b2*fy[yi+10] + b3*fy[yi+15] + b4*fy[yi+20] +
						c0*fz[zi] + c1*fz[zi+25] + c2*fz[zi+50] + c3*fz[zi+75] + c4*fz[zi+100]
					dst[nb[cb+a]] += acc
				}
			}
		}
	}
}

var (
	_ Operator     = (*Acoustic3D)(nil)
	_ Connectivity = (*Acoustic3D)(nil)
)

func (op *Acoustic3D) String() string {
	return fmt.Sprintf("Acoustic3D(%s, deg=%d, nodes=%d, periodic=%v)", op.M.Name, op.deg, op.NumNodes(), op.Periodic)
}
