package sem

import (
	"fmt"

	"golts/internal/gll"
	"golts/internal/mesh"
)

// Acoustic3D is the scalar wave operator ρ ü = ∇·(μ ∇u), μ = ρ c², on a
// structured hexahedral mesh with tensor-product GLL bases (degree 4 gives
// the paper's 125-node elements). Because the mesh elements are axis-aligned
// boxes, the Jacobian is diagonal, and the stiffness action reduces to six
// 1-D tensor contractions per element — the same computational structure as
// SPECFEM3D's kernels.
type Acoustic3D struct {
	M    *mesh.Mesh
	Rule *gll.Rule
	// Periodic selects periodic boundary conditions in all directions
	// (nodes on opposite faces are identified); otherwise all boundaries
	// are free surfaces (natural/Neumann), as on the paper's top surface.
	Periodic bool

	deg           int
	nxn, nyn, nzn int // global node counts per axis
	minv          []float64
	fixed         []int32 // Dirichlet nodes (minv zeroed)
}

// NewAcoustic3D builds the operator on mesh m with basis degree deg.
func NewAcoustic3D(m *mesh.Mesh, deg int, periodic bool) (*Acoustic3D, error) {
	r, err := gll.New(deg)
	if err != nil {
		return nil, err
	}
	op := &Acoustic3D{M: m, Rule: r, Periodic: periodic, deg: deg}
	op.nxn, op.nyn, op.nzn = deg*m.NX+1, deg*m.NY+1, deg*m.NZ+1
	if periodic {
		op.nxn, op.nyn, op.nzn = deg*m.NX, deg*m.NY, deg*m.NZ
	}
	op.assembleMass()
	return op, nil
}

func (op *Acoustic3D) assembleMass() {
	mass := make([]float64, op.NumNodes())
	w := op.Rule.Weights
	nq := op.deg + 1
	var nb []int32
	for e := 0; e < op.M.NumElements(); e++ {
		dx, dy, dz := op.M.ElemSize(e)
		jdet := dx * dy * dz / 8
		rho := op.M.Rho[e]
		nb = op.ElemNodes(e, nb[:0])
		idx := 0
		for c := 0; c < nq; c++ {
			for b := 0; b < nq; b++ {
				for a := 0; a < nq; a++ {
					mass[nb[idx]] += rho * w[a] * w[b] * w[c] * jdet
					idx++
				}
			}
		}
	}
	op.minv = make([]float64, len(mass))
	for i, m := range mass {
		op.minv[i] = 1 / m
	}
}

// FixNodes imposes homogeneous Dirichlet conditions at the given nodes by
// zeroing their inverse mass.
func (op *Acoustic3D) FixNodes(nodes []int32) {
	op.fixed = append(op.fixed, nodes...)
	for _, n := range nodes {
		op.minv[n] = 0
	}
}

// NumNodes returns the unique global GLL node count.
func (op *Acoustic3D) NumNodes() int { return op.nxn * op.nyn * op.nzn }

// Comps returns 1.
func (op *Acoustic3D) Comps() int { return 1 }

// NDof returns the degree-of-freedom count.
func (op *Acoustic3D) NDof() int { return op.NumNodes() }

// NumElements returns the mesh element count.
func (op *Acoustic3D) NumElements() int { return op.M.NumElements() }

// MInv returns the inverse lumped mass.
func (op *Acoustic3D) MInv() []float64 { return op.minv }

// NodeIndex maps global per-axis GLL indices to the node id, wrapping when
// periodic.
func (op *Acoustic3D) NodeIndex(i, j, k int) int32 {
	if op.Periodic {
		if i == op.deg*op.M.NX {
			i = 0
		}
		if j == op.deg*op.M.NY {
			j = 0
		}
		if k == op.deg*op.M.NZ {
			k = 0
		}
	}
	return int32((k*op.nyn+j)*op.nxn + i)
}

// NodeCoords returns the physical coordinates of global node id n (for
// receivers and initial conditions). Only valid for non-periodic operators
// when n lies on a wrapped face; interior nodes are always exact.
func (op *Acoustic3D) NodeCoords(n int32) (x, y, z float64) {
	i := int(n) % op.nxn
	j := (int(n) / op.nxn) % op.nyn
	k := int(n) / (op.nxn * op.nyn)
	return op.axisCoord(op.M.XC, i), op.axisCoord(op.M.YC, j), op.axisCoord(op.M.ZC, k)
}

func (op *Acoustic3D) axisCoord(bc []float64, gi int) float64 {
	e := gi / op.deg
	a := gi % op.deg
	if e == len(bc)-1 {
		e, a = len(bc)-2, op.deg
	}
	return bc[e] + (bc[e+1]-bc[e])*(op.Rule.Points[a]+1)/2
}

// ClosestNode returns the global node nearest to (x, y, z), snapping each
// axis independently (exact for tensor grids).
func (op *Acoustic3D) ClosestNode(x, y, z float64) int32 {
	return op.NodeIndex(op.closestAxis(op.M.XC, op.M.NX, x),
		op.closestAxis(op.M.YC, op.M.NY, y),
		op.closestAxis(op.M.ZC, op.M.NZ, z))
}

func (op *Acoustic3D) closestAxis(bc []float64, ne int, x float64) int {
	best, bd := 0, -1.0
	for gi := 0; gi <= op.deg*ne; gi++ {
		d := x - op.axisCoord(bc, gi)
		if d < 0 {
			d = -d
		}
		if bd < 0 || d < bd {
			best, bd = gi, d
		}
	}
	return best
}

// ElemNodes appends the (deg+1)³ global node ids of element e in
// (a fastest, then b, then c) order.
func (op *Acoustic3D) ElemNodes(e int, buf []int32) []int32 {
	i, j, k := op.M.ECoords(e)
	nq := op.deg + 1
	for c := 0; c < nq; c++ {
		for b := 0; b < nq; b++ {
			for a := 0; a < nq; a++ {
				buf = append(buf, op.NodeIndex(op.deg*i+a, op.deg*j+b, op.deg*k+c))
			}
		}
	}
	return buf
}

// AddKu accumulates dst += K u for the listed elements. Per element:
// gather nodal values, differentiate along each axis with the 1-D
// derivative matrix, scale by metric terms and quadrature weights, and
// scatter back with the transposed derivative.
func (op *Acoustic3D) AddKu(dst, u []float64, elems []int32) {
	checkLens(op, "dst", dst)
	checkLens(op, "u", u)
	nq := op.deg + 1
	n3 := nq * nq * nq
	d := op.Rule.D
	w := op.Rule.Weights
	ue := make([]float64, n3)
	fx := make([]float64, n3)
	fy := make([]float64, n3)
	fz := make([]float64, n3)
	nb := make([]int32, 0, n3)
	idx := func(a, b, c int) int { return (c*nq+b)*nq + a }
	for _, e := range elems {
		dx, dy, dz := op.M.ElemSize(int(e))
		jdet := dx * dy * dz / 8
		ax, ay, az := 2/dx, 2/dy, 2/dz
		mu := op.M.Rho[e] * op.M.C[e] * op.M.C[e]
		sx, sy, sz := mu*jdet*ax*ax, mu*jdet*ay*ay, mu*jdet*az*az
		nb = op.ElemNodes(int(e), nb[:0])
		for i, n := range nb {
			ue[i] = u[n]
		}
		// Forward derivatives scaled by weights and metric.
		for c := 0; c < nq; c++ {
			for b := 0; b < nq; b++ {
				wbc := w[b] * w[c]
				for a := 0; a < nq; a++ {
					var dxu, dyu, dzu float64
					for m := 0; m < nq; m++ {
						dxu += d[a][m] * ue[idx(m, b, c)]
						dyu += d[b][m] * ue[idx(a, m, c)]
						dzu += d[c][m] * ue[idx(a, b, m)]
					}
					wa := w[a]
					fx[idx(a, b, c)] = sx * wa * wbc * dxu
					fy[idx(a, b, c)] = sy * wa * wbc * dyu
					fz[idx(a, b, c)] = sz * wa * wbc * dzu
				}
			}
		}
		// Transposed scatter: dst_l += Σ_a D[a][l] f(a).
		for c := 0; c < nq; c++ {
			for b := 0; b < nq; b++ {
				for a := 0; a < nq; a++ {
					var acc float64
					for m := 0; m < nq; m++ {
						acc += d[m][a]*fx[idx(m, b, c)] + d[m][b]*fy[idx(a, m, c)] + d[m][c]*fz[idx(a, b, m)]
					}
					dst[nb[idx(a, b, c)]] += acc
				}
			}
		}
	}
}

var _ Operator = (*Acoustic3D)(nil)

func (op *Acoustic3D) String() string {
	return fmt.Sprintf("Acoustic3D(%s, deg=%d, nodes=%d, periodic=%v)", op.M.Name, op.deg, op.NumNodes(), op.Periodic)
}
