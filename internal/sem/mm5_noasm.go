//go:build !amd64 || purego

package sem

// Portable fallbacks for the batched microkernel primitives: identical
// arithmetic (and therefore bitwise-identical results) to the amd64 asm
// kernels. The `purego` build tag selects this path on amd64 too, so
// the no-asm fallback is CI-testable on any runner.

func mul5(dst, src, d []float64, n, blocks int) { mm5go(dst, src, d, n, blocks) }

func mul5acc(dst, src, d []float64, n, blocks int) { mm5accgo(dst, src, d, n, blocks) }

func elStress8(g, cst, w []float64) { elStressN(g, cst, w, 125) }

func acStress8(f, cst, w []float64) { acStressN(f, cst, w, 125) }

func anStress8(g, cst, w []float64) { anStressN(g, cst, w, 125) }
