//go:build !amd64 || purego

package sem

import "testing"

// testSIMDCap has nothing to check on builds without assembly tiers: the
// GODEBUG cap ladder only exists in simd_amd64.go.
func testSIMDCap(t *testing.T) {
	t.Skip("no SIMD tier cap on this build")
}
