package sem

import (
	"fmt"
	"testing"
)

// benchAddKuCase times the steady-state kernel of one prebuilt operator
// and reports ns/elem; the operator fixtures come from
// KernelBenchOperators, shared with cmd/kernelbench.
func benchAddKuCase(b *testing.B, op Operator) {
	u := make([]float64, op.NDof())
	BenchField(u)
	dst := make([]float64, op.NDof())
	elems := AllElements(op)
	var sc Scratch
	op.AddKuScratch(dst, u, elems, &sc) // warm scratch + page buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.AddKuScratch(dst, u, elems, &sc)
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(len(elems))*1e9, "ns/elem")
}

// BenchmarkAddKu measures the steady-state stiffness kernel of each
// operator in ns/elem with allocation reporting — the per-element constant
// of the paper's speedup model (Eq. 9). deg=4 is the paper's 125-node
// configuration and hits the specialised kernels.
func BenchmarkAddKu(b *testing.B) {
	for _, deg := range []int{4} {
		cases, err := KernelBenchOperators(deg)
		if err != nil {
			b.Fatal(err)
		}
		for _, tc := range cases {
			b.Run(fmt.Sprintf("%s/deg=%d", tc.Name, deg), func(b *testing.B) {
				benchAddKuCase(b, tc.Op)
			})
		}
	}
}
