package sem

import (
	"fmt"
	"testing"
)

// benchAddKuCase times the steady-state kernel of one prebuilt operator
// and reports ns/elem; the operator fixtures come from
// KernelBenchOperators, shared with cmd/kernelbench.
func benchAddKuCase(b *testing.B, op Operator) {
	u := make([]float64, op.NDof())
	BenchField(u)
	dst := make([]float64, op.NDof())
	elems := AllElements(op)
	var sc Scratch
	op.AddKuScratch(dst, u, elems, &sc) // warm scratch + page buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.AddKuScratch(dst, u, elems, &sc)
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(len(elems))*1e9, "ns/elem")
}

// BenchmarkAddKu measures the steady-state stiffness kernel of each
// operator in ns/elem with allocation reporting — the per-element constant
// of the paper's speedup model (Eq. 9). deg=4 is the paper's 125-node
// configuration and hits the specialised kernels.
func BenchmarkAddKu(b *testing.B) {
	for _, deg := range []int{4} {
		cases, err := KernelBenchOperators(deg)
		if err != nil {
			b.Fatal(err)
		}
		for _, tc := range cases {
			b.Run(fmt.Sprintf("%s/deg=%d", tc.Name, deg), func(b *testing.B) {
				benchAddKuCase(b, tc.Op)
			})
		}
	}
}

// BenchmarkAddKuBatch measures the fused batched kernel on the
// 512-element sweep fixtures, next to the per-element path on the same
// workload; the ns/elem ratio is the batched_vs_scalar speedup that
// cmd/kernelbench records in BENCH_kernels.json.
func BenchmarkAddKuBatch(b *testing.B) {
	cases, err := KernelSweepOperators(4)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range cases {
		bk := tc.Op.(BatchKernel)
		b.Run(fmt.Sprintf("%s/deg=4/scalar", tc.Name), func(b *testing.B) {
			benchAddKuCase(b, tc.Op)
		})
		b.Run(fmt.Sprintf("%s/deg=4/batched", tc.Name), func(b *testing.B) {
			u := make([]float64, bk.NDof())
			BenchField(u)
			dst := make([]float64, bk.NDof())
			plan := bk.NewBatchPlan(AllElements(bk))
			var bs BatchScratch
			bk.AddKuBatch(dst, u, plan, &bs) // warm arena + page buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bk.AddKuBatch(dst, u, plan, &bs)
			}
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(len(plan.Elems()))*1e9, "ns/elem")
		})
	}
}
