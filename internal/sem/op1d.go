package sem

import (
	"fmt"

	"golts/internal/gll"
)

// Op1D is a 1-D scalar SEM wave operator ρ ü = ∂x(μ ∂x u) on a line of
// elements with per-element size and material. It is the smallest system
// exhibiting the CFL bottleneck and is used by the quickstart example and
// by the LTS correctness tests (it matches the paper's Fig. 1 setting).
type Op1D struct {
	Rule *gll.Rule
	// XC are the element boundary coordinates (len NE+1).
	XC []float64
	// C and Rho are the wave speed and density per element.
	C, Rho []float64

	ne   int
	deg  int
	minv []float64
	conn []int32   // flat connectivity: ne × (deg+1) node ids
	dfl  []float64 // derivative matrix, row-major, stride deg+1
	dtf  []float64 // transposed derivative matrix
}

// BC1D selects the boundary condition at an end of the 1-D domain.
type BC1D int

const (
	// FreeBC is the natural (Neumann, stress-free) boundary condition.
	FreeBC BC1D = iota
	// FixedBC is the homogeneous Dirichlet condition, enforced by zeroing
	// the inverse mass at the boundary node.
	FixedBC
)

// NewOp1D builds the operator for basis degree deg. left and right choose
// the boundary conditions.
func NewOp1D(xc, c, rho []float64, deg int, left, right BC1D) (*Op1D, error) {
	ne := len(xc) - 1
	if ne < 1 {
		return nil, fmt.Errorf("sem: need at least one element")
	}
	if len(c) != ne || len(rho) != ne {
		return nil, fmt.Errorf("sem: material arrays must have %d entries, got c=%d rho=%d", ne, len(c), len(rho))
	}
	for i := 0; i < ne; i++ {
		if xc[i+1] <= xc[i] {
			return nil, fmt.Errorf("sem: element %d has non-positive size", i)
		}
		if c[i] <= 0 || rho[i] <= 0 {
			return nil, fmt.Errorf("sem: element %d has non-positive material", i)
		}
	}
	r, err := gll.New(deg)
	if err != nil {
		return nil, err
	}
	op := &Op1D{Rule: r, XC: xc, C: c, Rho: rho, ne: ne, deg: deg}
	nn := op.NumNodes()
	mass := make([]float64, nn)
	for e := 0; e < ne; e++ {
		j := (xc[e+1] - xc[e]) / 2
		for a := 0; a <= deg; a++ {
			mass[e*deg+a] += rho[e] * r.Weights[a] * j
		}
	}
	op.minv = make([]float64, nn)
	for i, m := range mass {
		op.minv[i] = 1 / m
	}
	if left == FixedBC {
		op.minv[0] = 0
	}
	if right == FixedBC {
		op.minv[nn-1] = 0
	}
	nq := deg + 1
	op.conn = make([]int32, ne*nq)
	for e := 0; e < ne; e++ {
		for a := 0; a < nq; a++ {
			op.conn[e*nq+a] = int32(e*deg + a)
		}
	}
	op.dfl = make([]float64, nq*nq)
	op.dtf = make([]float64, nq*nq)
	for i := 0; i < nq; i++ {
		for j := 0; j < nq; j++ {
			op.dfl[i*nq+j] = r.D[i][j]
			op.dtf[i*nq+j] = r.D[j][i]
		}
	}
	return op, nil
}

// NumNodes returns the number of global GLL nodes: NE*deg + 1.
func (op *Op1D) NumNodes() int { return op.ne*op.deg + 1 }

// Comps returns 1: the operator is scalar.
func (op *Op1D) Comps() int { return 1 }

// NDof returns the number of degrees of freedom.
func (op *Op1D) NDof() int { return op.NumNodes() }

// NumElements returns the element count.
func (op *Op1D) NumElements() int { return op.ne }

// MInv returns the inverse lumped mass.
func (op *Op1D) MInv() []float64 { return op.minv }

// ElemNodes appends the deg+1 node ids of element e from the flat table.
func (op *Op1D) ElemNodes(e int, buf []int32) []int32 {
	nq := op.deg + 1
	return append(buf, op.conn[e*nq:(e+1)*nq]...)
}

// ConnTable exposes the flat connectivity (implements Connectivity).
func (op *Op1D) ConnTable() ([]int32, int) { return op.conn, op.deg + 1 }

// NodeX returns the physical coordinate of global node n.
func (op *Op1D) NodeX(n int) float64 {
	e := n / op.deg
	a := n % op.deg
	if e == op.ne {
		e, a = op.ne-1, op.deg
	}
	x0, x1 := op.XC[e], op.XC[e+1]
	return x0 + (x1-x0)*(op.Rule.Points[a]+1)/2
}

// AddKu accumulates dst += K u for the listed elements, using a pooled
// scratch. Hot callers hold their own Scratch and call AddKuScratch.
func (op *Op1D) AddKu(dst, u []float64, elems []int32) {
	sc := scratchPool.Get().(*Scratch)
	op.AddKuScratch(dst, u, elems, sc)
	scratchPool.Put(sc)
}

// AddKuScratch accumulates dst += K u for the listed elements:
//
//	(K u)_i = Σ_e μ_e / J_e Σ_q w_q D_{qi} (Σ_j D_{qj} u_j) .
//
// Zero heap allocations once sc is warm.
func (op *Op1D) AddKuScratch(dst, u []float64, elems []int32, sc *Scratch) {
	checkLens(op, "dst", dst)
	checkLens(op, "u", u)
	nq := op.deg + 1
	d, dt := op.dfl, op.dtf
	w := op.Rule.Weights
	f := sc.floats(nq)
	for _, e := range elems {
		base := int(e) * op.deg
		j := (op.XC[e+1] - op.XC[e]) / 2
		mu := op.Rho[e] * op.C[e] * op.C[e]
		s := mu / j
		for q := 0; q < nq; q++ {
			du := 0.0
			row := d[q*nq : q*nq+nq]
			for a := 0; a < nq; a++ {
				du += row[a] * u[base+a]
			}
			f[q] = w[q] * s * du
		}
		for a := 0; a < nq; a++ {
			acc := 0.0
			row := dt[a*nq : a*nq+nq]
			for q := 0; q < nq; q++ {
				acc += row[q] * f[q]
			}
			dst[base+a] += acc
		}
	}
}

var (
	_ Operator     = (*Op1D)(nil)
	_ Connectivity = (*Op1D)(nil)
)
