//go:build amd64 && !purego

package sem

import "testing"

// testSIMDCap pins the GODEBUG tier-cap ladder: disabling a feature also
// rules out every wider tier, unknown switches are ignored, and the Go
// runtime's own "cpu.avx512f" spelling is accepted.
func testSIMDCap(t *testing.T) {
	for _, tc := range []struct {
		godebug string
		want    simdTier
	}{
		{"", tierAVX512},
		{"gctrace=1", tierAVX512},
		{"cpu.avx512=off", tierAVX2},
		{"cpu.avx512f=off", tierAVX2},
		{"gctrace=1,cpu.avx512=off", tierAVX2},
		{"cpu.avx2=off", tierSSE2},
		{"cpu.avx512=off,cpu.avx2=off", tierSSE2},
		{"cpu.avx2=off,cpu.avx512=off", tierSSE2},
		{"cpu.sse2=off", tierGo},
		{"cpu.avx512=off,cpu.avx2=off,cpu.sse2=off", tierGo},
		{"cpu.avx2=on", tierAVX512},
		{" cpu.avx512=off , cpu.avx2=off ", tierSSE2},
	} {
		if got := simdCap(tc.godebug); got != tc.want {
			t.Errorf("simdCap(%q) = %v, want %v", tc.godebug, got, tc.want)
		}
	}
}
