package sem

import (
	"testing"

	"golts/internal/mesh"
	"golts/internal/race"
)

// batchMesh returns a heterogeneous 36-element mesh: big enough for
// several full 8-lane blocks plus a ragged tail, with per-element
// material variation so any lane/constant mix-up shows up.
func batchMesh(t testing.TB) *mesh.Mesh {
	t.Helper()
	m, err := mesh.New("batch",
		[]float64{0, 0.7, 1.5, 2.0, 2.4},
		[]float64{0, 1.1, 2.0, 2.8},
		[]float64{0, 0.9, 2.1, 3.0})
	if err != nil {
		t.Fatal(err)
	}
	for e := range m.C {
		m.C[e] = 1 + 0.3*float64(e%5)
		m.Rho[e] = 1 + 0.1*float64(e%3)
	}
	return m
}

// batchOps builds the three 3-D operators on the batch mesh.
func batchOps(t testing.TB, m *mesh.Mesh, deg int, periodic bool) []struct {
	name string
	op   BatchKernel
} {
	t.Helper()
	ac, err := NewAcoustic3D(m, deg, periodic)
	if err != nil {
		t.Fatal(err)
	}
	el, err := NewElastic3D(m, deg, periodic, 0)
	if err != nil {
		t.Fatal(err)
	}
	cs := make([]VoigtC, m.NumElements())
	for e := range cs {
		f := 1 + 0.2*float64(e%4)
		cs[e] = VTIC(4*f, 3.6*f, 1.1*f, 1.3*f, 1.4*f)
	}
	an, err := NewAnisotropic3D(m, deg, periodic, cs)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		op   BatchKernel
	}{{"acoustic", ac}, {"elastic", el}, {"anisotropic", an}}
}

// batchLists returns element lists exercising the block structure: full
// sweeps, single blocks, ragged tails, permuted non-contiguous subsets
// with shared faces, and the empty list.
func batchLists(ne int) map[string][]int32 {
	all := make([]int32, ne)
	for i := range all {
		all[i] = int32(i)
	}
	perm := []int32{int32(ne - 1), 2, 17, 8, 1, 30, 12, 9, 21, 3}
	for i, e := range perm {
		perm[i] = e % int32(ne)
	}
	return map[string][]int32{
		"all":      all,
		"single":   {5},
		"block":    all[:batchB],
		"ragged11": all[:batchB+3],
		"permuted": perm,
		"empty":    {},
	}
}

// TestAddKuBatchBitwise pins the batched kernels bitwise against the
// per-element path across degrees, boundary types, and ragged element
// lists, with nonzero initial dst (AddKu accumulates).
func TestAddKuBatchBitwise(t *testing.T) {
	m := batchMesh(t)
	for _, deg := range []int{2, 3, 4, 5} {
		for _, periodic := range []bool{false, true} {
			for _, tc := range batchOps(t, m, deg, periodic) {
				nd := tc.op.NDof()
				u := make([]float64, nd)
				pseudoField(u)
				base := make([]float64, nd)
				randFill(base, 42)
				var sc Scratch
				var bs BatchScratch
				for name, elems := range batchLists(m.NumElements()) {
					plan := tc.op.NewBatchPlan(elems)
					if got := len(plan.Elems()); got != len(elems) {
						t.Fatalf("plan.Elems() has %d entries, want %d", got, len(elems))
					}
					want := append([]float64(nil), base...)
					tc.op.AddKuScratch(want, u, elems, &sc)
					got := append([]float64(nil), base...)
					tc.op.AddKuBatch(got, u, plan, &bs)
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("%s deg=%d periodic=%v list=%s dof=%d: batched %v != per-element %v",
								tc.name, deg, periodic, name, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestAddKuBatch1D pins the 1-D batched kernel bitwise against the
// per-element path, including the ragged tail and fixed boundaries.
func TestAddKuBatch1D(t *testing.T) {
	const ne = 21
	xc := make([]float64, ne+1)
	c := make([]float64, ne)
	rho := make([]float64, ne)
	x := 0.0
	for i := range xc {
		xc[i] = x
		x += 0.5 + 0.1*float64(i%4)
	}
	for i := range c {
		c[i] = 1 + 0.2*float64(i%3)
		rho[i] = 1 + 0.1*float64(i%5)
	}
	for _, deg := range []int{1, 2, 4, 6} {
		op, err := NewOp1D(xc, c, rho, deg, FreeBC, FixedBC)
		if err != nil {
			t.Fatal(err)
		}
		u := make([]float64, op.NDof())
		pseudoField(u)
		var sc Scratch
		var bs BatchScratch
		for _, elems := range [][]int32{
			AllElements(op), {0}, {20, 3, 7, 11, 1, 8, 2, 9, 15}, {},
		} {
			plan := op.NewBatchPlan(elems)
			want := make([]float64, op.NDof())
			op.AddKuScratch(want, u, elems, &sc)
			got := make([]float64, op.NDof())
			op.AddKuBatch(got, u, plan, &bs)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("deg=%d dof=%d: batched %v != per-element %v", deg, i, got[i], want[i])
				}
			}
		}
	}
}

// TestAddKuBatchZeroAllocs pins the warm batched path at zero heap
// allocations, for the specialised deg=4 kernels and a generic degree.
func TestAddKuBatchZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	m := batchMesh(t)
	for _, deg := range []int{3, 4} {
		for _, tc := range batchOps(t, m, deg, false) {
			u := make([]float64, tc.op.NDof())
			pseudoField(u)
			dst := make([]float64, tc.op.NDof())
			plan := tc.op.NewBatchPlan(AllElements(tc.op))
			var bs BatchScratch
			tc.op.AddKuBatch(dst, u, plan, &bs) // warm the arena
			if n := testing.AllocsPerRun(5, func() {
				tc.op.AddKuBatch(dst, u, plan, &bs)
			}); n != 0 {
				t.Errorf("%s deg=%d: AddKuBatch allocates %v per op, want 0", tc.name, deg, n)
			}
		}
	}
}

// TestBatchPlanOwnership checks that a plan built by one operator is
// rejected by another (programmer error, reported by panic).
func TestBatchPlanOwnership(t *testing.T) {
	m := batchMesh(t)
	a, err := NewAcoustic3D(m, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAcoustic3D(m, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	plan := a.NewBatchPlan(AllElements(a))
	defer func() {
		if recover() == nil {
			t.Fatal("AddKuBatch accepted a foreign plan")
		}
	}()
	dst := make([]float64, b.NDof())
	u := make([]float64, b.NDof())
	var bs BatchScratch
	b.AddKuBatch(dst, u, plan, &bs)
}

// TestBatchPlanCounts checks the BatchedElems accounting.
func TestBatchPlanCounts(t *testing.T) {
	m := batchMesh(t)
	op, err := NewElastic3D(m, 4, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ n, full int }{
		{0, 0}, {1, 0}, {batchB - 1, 0}, {batchB, batchB},
		{batchB + 1, batchB}, {36, 32},
	} {
		plan := op.NewBatchPlan(AllElements(op)[:tc.n])
		if got := plan.BatchedElems(); got != tc.full {
			t.Errorf("n=%d: BatchedElems %d, want %d", tc.n, got, tc.full)
		}
	}
}
