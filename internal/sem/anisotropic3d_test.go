package sem

import (
	"math"
	"math/rand"
	"testing"

	"golts/internal/mesh"
)

func isoTensors(m *mesh.Mesh, lam, mu float64) []VoigtC {
	c := make([]VoigtC, m.NumElements())
	for e := range c {
		c[e] = IsotropicC(lam, mu)
	}
	return c
}

// TestAnisotropicReducesToIsotropic: with IsotropicC the general operator
// must agree with Elastic3D to roundoff on random fields.
func TestAnisotropicReducesToIsotropic(t *testing.T) {
	m := mesh.Uniform(3, 2, 2, 0.9, 1.5)
	iso, err := NewElastic3D(m, 3, false, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	lam, mu := iso.Lame(0)
	gen, err := NewAnisotropic3D(m, 3, false, isoTensors(m, lam, mu))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	u := make([]float64, iso.NDof())
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	a := make([]float64, iso.NDof())
	b := make([]float64, iso.NDof())
	iso.AddKu(a, u, AllElements(iso))
	gen.AddKu(b, u, AllElements(gen))
	scale := 0.0
	for _, v := range a {
		scale = math.Max(scale, math.Abs(v))
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-11*scale {
			t.Fatalf("dof %d: iso %v vs anis %v", i, a[i], b[i])
		}
	}
}

// TestAnisotropicRigidMotions: rigid translations and rotations carry zero
// strain for any elasticity tensor.
func TestAnisotropicRigidMotions(t *testing.T) {
	m := mesh.Uniform(2, 2, 2, 1, 1)
	// A random symmetric positive-ish tensor (symmetry suffices here).
	var c VoigtC
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 6; i++ {
		for j := i; j < 6; j++ {
			v := rng.Float64()
			c[i][j], c[j][i] = v, v
		}
		c[i][i] += 3
	}
	cs := make([]VoigtC, m.NumElements())
	for e := range cs {
		cs[e] = c
	}
	op, err := NewAnisotropic3D(m, 3, false, cs)
	if err != nil {
		t.Fatal(err)
	}
	rot := make([]float64, op.NDof())
	omega := [3]float64{0.4, -0.2, 1.1}
	for nd := 0; nd < op.NumNodes(); nd++ {
		x, y, z := op.NodeCoords(int32(nd))
		rot[3*nd+0] = 1 + omega[1]*z - omega[2]*y
		rot[3*nd+1] = -2 + omega[2]*x - omega[0]*z
		rot[3*nd+2] = 0.5 + omega[0]*y - omega[1]*x
	}
	ku := make([]float64, op.NDof())
	op.AddKu(ku, rot, AllElements(op))
	for i, v := range ku {
		if math.Abs(v) > 1e-8 {
			t.Fatalf("rigid motion produced force at dof %d: %v", i, v)
		}
	}
}

// TestVTIWaveSpeeds: in a VTI medium, a vertically propagating P wave
// travels at sqrt(C/ρ) and a vertically propagating S wave at sqrt(L/ρ) —
// distinct from the horizontal speeds sqrt(A/ρ), sqrt(N/ρ).
func TestVTIWaveSpeeds(t *testing.T) {
	const (
		rho = 1.0
		A   = 4.0 // horizontal P: c = 2
		C   = 2.0 // vertical P:   c = sqrt(2)
		L   = 0.8 // vertical S
		N   = 1.2 // horizontal SH
		F   = 0.7
	)
	m := mesh.Uniform(4, 4, 4, 0.5, 1)
	cs := make([]VoigtC, m.NumElements())
	for e := range cs {
		cs[e] = VTIC(A, C, L, N, F)
	}
	op, err := NewAnisotropic3D(m, 4, true, cs)
	if err != nil {
		t.Fatal(err)
	}
	// Vertical standing P wave: u_z = cos(k z) is an eigenmode with
	// ω² = (C/ρ) k². Check A·u = ω² u via the operator.
	kz := 2 * math.Pi / 2.0
	checkMode := func(comp int, k float64, axis int, want float64) {
		u := make([]float64, op.NDof())
		for nd := 0; nd < op.NumNodes(); nd++ {
			x, y, z := op.NodeCoords(int32(nd))
			coord := [3]float64{x, y, z}[axis]
			u[3*nd+comp] = math.Cos(k * coord)
		}
		ku := make([]float64, op.NDof())
		op.AddKu(ku, u, AllElements(op))
		for nd := 0; nd < op.NumNodes(); nd++ {
			d := 3*nd + comp
			if math.Abs(u[d]) < 0.3 {
				continue
			}
			got := ku[d] * op.MInv()[nd] / u[d]
			if math.Abs(got-want) > 2e-3*want {
				t.Fatalf("comp %d axis %d: eigenvalue %v, want %v", comp, axis, got, want)
			}
		}
	}
	checkMode(2, kz, 2, C/rho*kz*kz) // vertical P
	checkMode(0, kz, 2, L/rho*kz*kz) // vertical S (x-polarised, z-propagating)
	kx := 2 * math.Pi / 2.0
	checkMode(0, kx, 0, A/rho*kx*kx) // horizontal P
	checkMode(1, kx, 0, N/rho*kx*kx) // horizontal SH
}

func TestAnisotropicValidation(t *testing.T) {
	m := mesh.Uniform(2, 2, 2, 1, 1)
	if _, err := NewAnisotropic3D(m, 2, false, nil); err == nil {
		t.Error("expected error for missing tensors")
	}
	bad := isoTensors(m, 1, 1)
	bad[0][0][1] = 99 // break symmetry
	if _, err := NewAnisotropic3D(m, 2, false, bad); err == nil {
		t.Error("expected error for asymmetric tensor")
	}
}

// TestAnisotropicWithLTS: the general operator slots into the LTS scheme
// via the sem.Operator interface (smoke run through the interface used by
// package lts: masked, element-restricted application).
func TestAnisotropicRestrictedApplication(t *testing.T) {
	m := mesh.Uniform(4, 2, 2, 1, 1)
	op, err := NewAnisotropic3D(m, 2, false, isoTensors(m, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, op.NDof())
	var nb []int32
	nb = op.ElemNodes(5, nb)
	for _, n := range nb {
		u[3*n] = float64(n % 5)
	}
	full := make([]float64, op.NDof())
	part := make([]float64, op.NDof())
	op.AddKu(full, u, AllElements(op))
	// Elements sharing nodes with element 5.
	var adj []int32
	seen := map[int32]bool{}
	for e := 0; e < m.NumElements(); e++ {
		var eb []int32
		eb = op.ElemNodes(e, eb)
		for _, n := range eb {
			for _, n2 := range nb {
				if n == n2 && !seen[int32(e)] {
					seen[int32(e)] = true
					adj = append(adj, int32(e))
				}
			}
		}
	}
	op.AddKu(part, u, adj)
	for i := range full {
		if full[i] != part[i] {
			t.Fatalf("restricted application differs at %d", i)
		}
	}
}
