package sem

import (
	"math"
	"math/rand"
	"testing"

	"golts/internal/mesh"
)

func mustAcoustic(m *mesh.Mesh, deg int, periodic bool) *Acoustic3D {
	op, err := NewAcoustic3D(m, deg, periodic)
	if err != nil {
		panic(err)
	}
	return op
}

func mustElastic(m *mesh.Mesh, deg int, periodic bool) *Elastic3D {
	op, err := NewElastic3D(m, deg, periodic, 0)
	if err != nil {
		panic(err)
	}
	return op
}

func TestAcousticMassMatchesVolume(t *testing.T) {
	m := mesh.Uniform(3, 2, 2, 0.7, 1)
	op := mustAcoustic(m, 4, false)
	total := 0.0
	for _, mi := range op.MInv() {
		total += 1 / mi
	}
	want := 0.7 * 0.7 * 0.7 * 12 // volume * rho
	if math.Abs(total-want) > 1e-10 {
		t.Errorf("total mass %v, want %v", total, want)
	}
}

func TestAcousticKuConstantIsZero(t *testing.T) {
	for _, periodic := range []bool{false, true} {
		m := mesh.Uniform(2, 2, 2, 1, 1)
		op := mustAcoustic(m, 3, periodic)
		u := make([]float64, op.NDof())
		for i := range u {
			u[i] = -2.5
		}
		ku := make([]float64, op.NDof())
		op.AddKu(ku, u, AllElements(op))
		for i, v := range ku {
			if math.Abs(v) > 1e-9 {
				t.Fatalf("periodic=%v: Ku(const) nonzero at %d: %v", periodic, i, v)
			}
		}
	}
}

func TestAcousticSymmetry(t *testing.T) {
	m := mesh.Uniform(2, 3, 2, 1, 1)
	m.C[3] = 2.5 // heterogeneous material
	op := mustAcoustic(m, 4, false)
	rng := rand.New(rand.NewSource(3))
	n := op.NDof()
	elems := AllElements(op)
	u := make([]float64, n)
	v := make([]float64, n)
	for i := range u {
		u[i] = rng.NormFloat64()
		v[i] = rng.NormFloat64()
	}
	ku := make([]float64, n)
	kv := make([]float64, n)
	op.AddKu(ku, u, elems)
	op.AddKu(kv, v, elems)
	var vku, ukv float64
	for i := range u {
		vku += v[i] * ku[i]
		ukv += u[i] * kv[i]
	}
	if math.Abs(vku-ukv) > 1e-8*math.Max(1, math.Abs(vku)) {
		t.Fatalf("K not symmetric: %v vs %v", vku, ukv)
	}
}

// TestAcousticMatches1D: a field varying only in x on a 3-D mesh must give
// the same acceleration as the 1-D operator on the corresponding line.
func TestAcousticMatches1D(t *testing.T) {
	const deg = 4
	nx := 5
	m := mesh.Uniform(nx, 2, 2, 1, 1.3)
	op3 := mustAcoustic(m, deg, false)
	xc := make([]float64, nx+1)
	c1 := make([]float64, nx)
	rho := make([]float64, nx)
	for i := range xc {
		xc[i] = float64(i)
	}
	for i := range c1 {
		c1[i] = 1.3
		rho[i] = 1
	}
	op1, err := NewOp1D(xc, c1, rho, deg, FreeBC, FreeBC)
	if err != nil {
		t.Fatal(err)
	}
	// u(x) only.
	u3 := make([]float64, op3.NDof())
	u1 := make([]float64, op1.NDof())
	for gi := 0; gi <= deg*nx; gi++ {
		val := math.Sin(1.1 * op1.NodeX(gi))
		u1[gi] = val
		for j := 0; j <= deg*2; j++ {
			for k := 0; k <= deg*2; k++ {
				u3[op3.NodeIndex(gi, j, k)] = val
			}
		}
	}
	a3 := make([]float64, op3.NDof())
	a1 := make([]float64, op1.NDof())
	Accel(op3, a3, u3, AllElements(op3))
	Accel(op1, a1, u1, AllElements(op1))
	for gi := 0; gi <= deg*nx; gi++ {
		// Sample at an interior (j, k) node.
		got := a3[op3.NodeIndex(gi, 3, 5)]
		want := a1[gi]
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("accel mismatch at x-node %d: 3D %v vs 1D %v", gi, got, want)
		}
	}
}

func TestAcousticRestrictedApplication(t *testing.T) {
	m := mesh.Uniform(4, 3, 3, 1, 1)
	op := mustAcoustic(m, 2, false)
	n := op.NDof()
	u := make([]float64, n)
	// Support: strictly interior nodes of element (1,1,1).
	e := m.EIndex(1, 1, 1)
	var nb []int32
	nb = op.ElemNodes(e, nb)
	for _, nd := range nb {
		u[nd] = float64(nd%7) + 1
	}
	// Elements sharing any node with e: its 3x3x3 neighborhood.
	var adj []int32
	for dk := -1; dk <= 1; dk++ {
		for dj := -1; dj <= 1; dj++ {
			for di := -1; di <= 1; di++ {
				adj = append(adj, int32(m.EIndex(1+di, 1+dj, 1+dk)))
			}
		}
	}
	full := make([]float64, n)
	part := make([]float64, n)
	op.AddKu(full, u, AllElements(op))
	op.AddKu(part, u, adj)
	for i := range full {
		if full[i] != part[i] {
			t.Fatalf("restricted application differs at %d: %v vs %v", i, full[i], part[i])
		}
	}
}

func TestElasticRigidMotionsInNullSpace(t *testing.T) {
	m := mesh.Uniform(3, 2, 2, 0.8, 2)
	op := mustElastic(m, 4, false)
	n := op.NumNodes()
	// Rigid translations along each axis, plus an infinitesimal rotation
	// u = ω × x (a linear field, exactly representable at degree >= 1, with
	// zero strain).
	fields := make([][]float64, 0, 4)
	for c := 0; c < 3; c++ {
		u := make([]float64, op.NDof())
		for nd := 0; nd < n; nd++ {
			u[3*nd+c] = 1
		}
		fields = append(fields, u)
	}
	rot := make([]float64, op.NDof())
	omega := [3]float64{0.3, -1.1, 0.7}
	for nd := 0; nd < n; nd++ {
		x, y, z := op.NodeCoords(int32(nd))
		rot[3*nd+0] = omega[1]*z - omega[2]*y
		rot[3*nd+1] = omega[2]*x - omega[0]*z
		rot[3*nd+2] = omega[0]*y - omega[1]*x
	}
	fields = append(fields, rot)
	for fi, u := range fields {
		ku := make([]float64, op.NDof())
		op.AddKu(ku, u, AllElements(op))
		for i, v := range ku {
			if math.Abs(v) > 1e-8 {
				t.Fatalf("field %d: Ku nonzero at dof %d: %v", fi, i, v)
			}
		}
	}
}

func TestElasticSymmetryAndPSD(t *testing.T) {
	m := mesh.Uniform(2, 2, 2, 1, 1.7)
	m.Rho[0] = 2
	op := mustElastic(m, 3, false)
	rng := rand.New(rand.NewSource(4))
	n := op.NDof()
	elems := AllElements(op)
	u := make([]float64, n)
	v := make([]float64, n)
	for i := range u {
		u[i] = rng.NormFloat64()
		v[i] = rng.NormFloat64()
	}
	ku := make([]float64, n)
	kv := make([]float64, n)
	op.AddKu(ku, u, elems)
	op.AddKu(kv, v, elems)
	var vku, ukv, uku float64
	for i := range u {
		vku += v[i] * ku[i]
		ukv += u[i] * kv[i]
		uku += u[i] * ku[i]
	}
	if math.Abs(vku-ukv) > 1e-8*math.Max(1, math.Abs(vku)) {
		t.Fatalf("elastic K not symmetric: %v vs %v", vku, ukv)
	}
	if uku < -1e-9 {
		t.Fatalf("elastic K not PSD: %v", uku)
	}
}

// TestElasticPWaveMatchesAcoustic: for displacement u = (f(x), 0, 0) on a
// periodic mesh, the elastic operator reduces to the scalar operator with
// modulus λ+2μ = ρ c_p², so the x-acceleration must match the acoustic
// operator built with the same c_p.
func TestElasticPWaveMatchesAcoustic(t *testing.T) {
	const deg = 4
	m := mesh.Uniform(4, 2, 2, 1, 1.5)
	el := mustElastic(m, deg, true)
	ac := mustAcoustic(m, deg, true)
	uE := make([]float64, el.NDof())
	uA := make([]float64, ac.NDof())
	kx := 2 * math.Pi / 4.0
	for nd := 0; nd < ac.NumNodes(); nd++ {
		x, _, _ := ac.NodeCoords(int32(nd))
		val := math.Cos(kx * x)
		uA[nd] = val
		uE[3*nd] = val
	}
	aE := make([]float64, el.NDof())
	aA := make([]float64, ac.NDof())
	Accel(el, aE, uE, AllElements(el))
	Accel(ac, aA, uA, AllElements(ac))
	for nd := 0; nd < ac.NumNodes(); nd++ {
		if math.Abs(aE[3*nd]-aA[nd]) > 1e-8*math.Max(1, math.Abs(aA[nd])) {
			t.Fatalf("node %d: elastic %v vs acoustic %v", nd, aE[3*nd], aA[nd])
		}
		if math.Abs(aE[3*nd+1]) > 1e-9 || math.Abs(aE[3*nd+2]) > 1e-9 {
			t.Fatalf("node %d: transverse acceleration should vanish: %v %v", nd, aE[3*nd+1], aE[3*nd+2])
		}
	}
}

func TestElasticRejectsBadCsRatio(t *testing.T) {
	m := mesh.Uniform(2, 2, 2, 1, 1)
	if _, err := NewElastic3D(m, 2, false, 0.9); err == nil {
		t.Error("expected error for cs/cp = 0.9")
	}
}

func TestClosestNode(t *testing.T) {
	m := mesh.Uniform(4, 4, 4, 1, 1)
	op := mustAcoustic(m, 4, false)
	n := op.ClosestNode(2.0, 1.0, 3.0)
	x, y, z := op.NodeCoords(n)
	if math.Abs(x-2) > 1e-12 || math.Abs(y-1) > 1e-12 || math.Abs(z-3) > 1e-12 {
		t.Errorf("closest node at (%v,%v,%v), want (2,1,3)", x, y, z)
	}
}

func TestRickerWavelet(t *testing.T) {
	w := Ricker{F0: 2, T0: 0.6}
	if got := w.Amp(0.6); math.Abs(got-1) > 1e-12 {
		t.Errorf("Ricker peak %v, want 1", got)
	}
	if got := w.Amp(10); math.Abs(got) > 1e-10 {
		t.Errorf("Ricker tail %v, want ~0", got)
	}
	// Integral of a Ricker wavelet over the real line is zero.
	s := 0.0
	for ti := 0; ti < 4000; ti++ {
		s += w.Amp(float64(ti) * 0.001)
	}
	if math.Abs(s*0.001) > 1e-6 {
		t.Errorf("Ricker integral %v, want ~0", s*0.001)
	}
}

func TestSpongeProfile(t *testing.T) {
	m := mesh.Uniform(4, 4, 4, 1, 1)
	op := mustAcoustic(m, 2, false)
	// Absorb on all faces except z0 (free surface).
	sigma := SpongeProfile(op.NumNodes(), op.NodeCoords, 0, 4, 0, 4, 0, 4,
		[6]bool{true, true, true, true, false, true}, 1.0, 10)
	// Center node undamped.
	c := op.ClosestNode(2, 2, 2)
	if sigma[c] != 0 {
		t.Errorf("center damped: %v", sigma[c])
	}
	// x0 face fully damped.
	f := op.ClosestNode(0, 2, 2)
	if math.Abs(sigma[f]-10) > 1e-12 {
		t.Errorf("x0 face sigma %v, want 10", sigma[f])
	}
	// z0 face (free surface) undamped at interior (x, y).
	fs := op.ClosestNode(2, 2, 0)
	if sigma[fs] != 0 {
		t.Errorf("free surface damped: %v", sigma[fs])
	}
}

func BenchmarkAcousticAddKu125Node(b *testing.B) {
	m := mesh.Uniform(6, 6, 6, 1, 1)
	op := mustAcoustic(m, 4, false)
	u := make([]float64, op.NDof())
	for i := range u {
		u[i] = math.Sin(float64(i) * 0.01)
	}
	dst := make([]float64, op.NDof())
	elems := AllElements(op)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.AddKu(dst, u, elems)
	}
	b.ReportMetric(float64(b.N)*float64(len(elems))/b.Elapsed().Seconds(), "elem/s")
}

func BenchmarkElasticAddKu125Node(b *testing.B) {
	m := mesh.Uniform(4, 4, 4, 1, 1)
	op := mustElastic(m, 4, false)
	u := make([]float64, op.NDof())
	for i := range u {
		u[i] = math.Sin(float64(i) * 0.01)
	}
	dst := make([]float64, op.NDof())
	elems := AllElements(op)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.AddKu(dst, u, elems)
	}
	b.ReportMetric(float64(b.N)*float64(len(elems))/b.Elapsed().Seconds(), "elem/s")
}
