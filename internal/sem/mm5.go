package sem

// Pure-Go reference implementations of the batched microkernels, plus the
// generic-degree contraction primitives used for nq != 5.
//
// mm5go computes, for a 5-row coefficient matrix d (row-major, stride 5)
// and `blocks` consecutive groups of 5 input rows of length n at stride n,
//
//	dst[g*5n + a*n + j] = Σ_{m<5} d[a*5+m] · src[g*5n + m*n + j]
//
// with the five products summed left-to-right (ascending m), one rounding
// per add — the exact chain of the scalar per-element kernels, so the
// batched path stays bitwise-identical lane by lane. The asm microkernels
// (mm5_amd64.s) implement the same chains with 2-wide SSE2 packed
// arithmetic across j; packed lanes round independently, so they too are
// bitwise-identical. Tests pin asm against these references.

func mm5go(dst, src, d []float64, n, blocks int) {
	for g := 0; g < blocks; g++ {
		db := dst[g*5*n : (g+1)*5*n]
		sb := src[g*5*n : (g+1)*5*n]
		for a := 0; a < 5; a++ {
			d0, d1, d2, d3, d4 := d[a*5], d[a*5+1], d[a*5+2], d[a*5+3], d[a*5+4]
			o := db[a*n : a*n+n]
			s0 := sb[0*n : 0*n+n]
			s1 := sb[1*n : 1*n+n]
			s2 := sb[2*n : 2*n+n]
			s3 := sb[3*n : 3*n+n]
			s4 := sb[4*n : 4*n+n]
			for j := range o {
				o[j] = d0*s0[j] + d1*s1[j] + d2*s2[j] + d3*s3[j] + d4*s4[j]
			}
		}
	}
}

// mm5accgo is mm5go accumulating into dst: each product is added onto the
// running value one rounding at a time, matching the scalar kernels'
// left-to-right chain across the y/z axis contributions.
func mm5accgo(dst, src, d []float64, n, blocks int) {
	for g := 0; g < blocks; g++ {
		db := dst[g*5*n : (g+1)*5*n]
		sb := src[g*5*n : (g+1)*5*n]
		for a := 0; a < 5; a++ {
			d0, d1, d2, d3, d4 := d[a*5], d[a*5+1], d[a*5+2], d[a*5+3], d[a*5+4]
			o := db[a*n : a*n+n]
			s0 := sb[0*n : 0*n+n]
			s1 := sb[1*n : 1*n+n]
			s2 := sb[2*n : 2*n+n]
			s3 := sb[3*n : 3*n+n]
			s4 := sb[4*n : 4*n+n]
			for j := range o {
				acc := o[j]
				acc += d0 * s0[j]
				acc += d1 * s1[j]
				acc += d2 * s2[j]
				acc += d3 * s3[j]
				acc += d4 * s4[j]
				o[j] = acc
			}
		}
	}
}

// elStressN is the pointwise stress pass of the batched isotropic
// elastic kernel over one batchB-lane block of n3 quadrature points: g
// holds 9 gradient planes of n3×batchB raw axis derivatives (rewritten
// in place with the stress-flux planes t0..t8), cst holds 6 rows of
// batchB per-element constants (ax, ay, az, jdet, λ, μ), and w holds n3
// interleaved (w[a], w[b]·w[c]) pairs. Every chain matches the scalar
// per-element kernel, so the pass is bitwise-identical per lane; the asm
// twin (elStress8asm, n3 = 125) mirrors it with packed SSE2.
func elStressN(g, cst, w []float64, n3 int) {
	const bb = batchB
	pb := n3 * bb
	g0 := g[0*pb : 1*pb]
	g1 := g[1*pb : 2*pb]
	g2 := g[2*pb : 3*pb]
	g3 := g[3*pb : 4*pb]
	g4 := g[4*pb : 5*pb]
	g5 := g[5*pb : 6*pb]
	g6 := g[6*pb : 7*pb]
	g7 := g[7*pb : 8*pb]
	g8 := g[8*pb : 9*pb]
	pax := cst[0*bb : 1*bb]
	pay := cst[1*bb : 2*bb]
	paz := cst[2*bb : 3*bb]
	pjd := cst[3*bb : 4*bb]
	plam := cst[4*bb : 5*bb]
	pmu := cst[5*bb : 6*bb]
	for q := 0; q < n3; q++ {
		wa, wbc0 := w[2*q], w[2*q+1]
		o := q * bb
		for i := 0; i < bb; i++ {
			axv, ayv, azv := pax[i], pay[i], paz[i]
			wq := wa * (wbc0 * pjd[i])
			wx, wy, wz := wq*axv, wq*ayv, wq*azv
			lam, mu := plam[i], pmu[i]
			mu2 := mu + mu
			v00 := axv * g0[o+i]
			v11 := ayv * g4[o+i]
			v22 := azv * g8[o+i]
			tr := v00 + v11 + v22
			lt := lam * tr
			g0[o+i] = wx * (mu2*v00 + lt)
			g4[o+i] = wy * (mu2*v11 + lt)
			g8[o+i] = wz * (mu2*v22 + lt)
			sxy := mu * (ayv*g1[o+i] + axv*g3[o+i])
			g1[o+i] = wy * sxy
			g3[o+i] = wx * sxy
			sxz := mu * (azv*g2[o+i] + axv*g6[o+i])
			g2[o+i] = wz * sxz
			g6[o+i] = wx * sxz
			syz := mu * (azv*g5[o+i] + ayv*g7[o+i])
			g5[o+i] = wz * syz
			g7[o+i] = wy * syz
		}
	}
}

// anStressN is the anisotropic counterpart of elStressN: the Voigt
// strain is contracted with the per-element 6×6 tensor (cst rows 4..39,
// row-major) exactly as the scalar kernel writes it, left-to-right. The
// asm twin is anStress8asm (n3 = 125).
func anStressN(g, cst, w []float64, n3 int) {
	const bb = batchB
	pb := n3 * bb
	g0 := g[0*pb : 1*pb]
	g1 := g[1*pb : 2*pb]
	g2 := g[2*pb : 3*pb]
	g3 := g[3*pb : 4*pb]
	g4 := g[4*pb : 5*pb]
	g5 := g[5*pb : 6*pb]
	g6 := g[6*pb : 7*pb]
	g7 := g[7*pb : 8*pb]
	g8 := g[8*pb : 9*pb]
	pax := cst[0*bb : 1*bb]
	pay := cst[1*bb : 2*bb]
	paz := cst[2*bb : 3*bb]
	pjd := cst[3*bb : 4*bb]
	cm := cst[4*bb : 40*bb]
	for q := 0; q < n3; q++ {
		wa, wbc0 := w[2*q], w[2*q+1]
		o := q * bb
		for i := 0; i < bb; i++ {
			axv, ayv, azv := pax[i], pay[i], paz[i]
			wq := wa * (wbc0 * pjd[i])
			wx, wy, wz := wq*axv, wq*ayv, wq*azv
			e0 := axv * g0[o+i]
			e1 := ayv * g4[o+i]
			e2 := azv * g8[o+i]
			e3 := azv*g5[o+i] + ayv*g7[o+i]
			e4 := azv*g2[o+i] + axv*g6[o+i]
			e5 := ayv*g1[o+i] + axv*g3[o+i]
			s0 := cm[0*bb+i]*e0 + cm[1*bb+i]*e1 + cm[2*bb+i]*e2 + cm[3*bb+i]*e3 + cm[4*bb+i]*e4 + cm[5*bb+i]*e5
			s1 := cm[6*bb+i]*e0 + cm[7*bb+i]*e1 + cm[8*bb+i]*e2 + cm[9*bb+i]*e3 + cm[10*bb+i]*e4 + cm[11*bb+i]*e5
			s2 := cm[12*bb+i]*e0 + cm[13*bb+i]*e1 + cm[14*bb+i]*e2 + cm[15*bb+i]*e3 + cm[16*bb+i]*e4 + cm[17*bb+i]*e5
			s3 := cm[18*bb+i]*e0 + cm[19*bb+i]*e1 + cm[20*bb+i]*e2 + cm[21*bb+i]*e3 + cm[22*bb+i]*e4 + cm[23*bb+i]*e5
			s4 := cm[24*bb+i]*e0 + cm[25*bb+i]*e1 + cm[26*bb+i]*e2 + cm[27*bb+i]*e3 + cm[28*bb+i]*e4 + cm[29*bb+i]*e5
			s5 := cm[30*bb+i]*e0 + cm[31*bb+i]*e1 + cm[32*bb+i]*e2 + cm[33*bb+i]*e3 + cm[34*bb+i]*e4 + cm[35*bb+i]*e5
			g0[o+i] = wx * s0
			g1[o+i] = wy * s5
			g2[o+i] = wz * s4
			g3[o+i] = wx * s5
			g4[o+i] = wy * s1
			g5[o+i] = wz * s3
			g6[o+i] = wx * s4
			g7[o+i] = wy * s3
			g8[o+i] = wz * s2
		}
	}
}

// acStressN is the acoustic counterpart: the three derivative planes are
// scaled by the premultiplied metric factors (cst rows sx, sy, sz) and
// the quadrature weights, matching the scalar kernel's
// ((s·w[a])·w[b]w[c])·∂u chain. The asm twin is acStress8asm (n3 = 125).
func acStressN(f, cst, w []float64, n3 int) {
	const bb = batchB
	pb := n3 * bb
	fx := f[0*pb : 1*pb]
	fy := f[1*pb : 2*pb]
	fz := f[2*pb : 3*pb]
	psx := cst[0*bb : 1*bb]
	psy := cst[1*bb : 2*bb]
	psz := cst[2*bb : 3*bb]
	for q := 0; q < n3; q++ {
		wa, wbc := w[2*q], w[2*q+1]
		o := q * bb
		for i := 0; i < bb; i++ {
			fx[o+i] = (psx[i] * wa * wbc) * fx[o+i]
			fy[o+i] = (psy[i] * wa * wbc) * fy[o+i]
			fz[o+i] = (psz[i] * wa * wbc) * fz[o+i]
		}
	}
}

// mulN / mulNacc are the generic-degree (nq rows) contraction primitives
// for the non-specialised batched kernels; same summation order as the
// generic scalar kernels (ascending m, one rounding per add).
func mulN(dst, src, d []float64, nq, n int) {
	for a := 0; a < nq; a++ {
		da := d[a*nq : a*nq+nq]
		o := dst[a*n : a*n+n]
		s := src[0:n]
		for j := range o {
			o[j] = da[0] * s[j]
		}
		for m := 1; m < nq; m++ {
			dm := da[m]
			s := src[m*n : m*n+n]
			for j := range o {
				o[j] += dm * s[j]
			}
		}
	}
}

func mulNacc(dst, src, d []float64, nq, n int) {
	for a := 0; a < nq; a++ {
		da := d[a*nq : a*nq+nq]
		o := dst[a*n : a*n+n]
		for m := 0; m < nq; m++ {
			dm := da[m]
			s := src[m*n : m*n+n]
			for j := range o {
				o[j] += dm * s[j]
			}
		}
	}
}

// batchB is the internal lane count of the deg=4 batched kernels: eight
// elements execute together through the SoA workspace. Eight lanes keep
// the twelve 125-lane planes inside L2 on typical cores (the measured
// sweet spot) and make every plane stride a compile-time constant for
// the asm microkernels.
const batchB = 8
