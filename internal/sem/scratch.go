package sem

import "sync"

// Scratch is the reusable per-call workspace of the AddKu kernels: one
// flat float64 arena that each kernel carves into its element-local
// buffers (gathered displacements, stress-flux terms). A warm Scratch
// makes AddKuScratch perform zero heap allocations, which is what the
// steady-state stepping loops rely on.
//
// A Scratch may be shared across operators (it grows to the largest
// request) but not across goroutines: each parallel rank worker and each
// sequential stepper owns its own.
type Scratch struct {
	buf []float64
}

// floats returns a slice of length n backed by the arena, growing it when
// needed. The contents are unspecified: kernels must fully overwrite what
// they read.
func (s *Scratch) floats(n int) []float64 {
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	return s.buf[:n]
}

// scratchPool backs the plain AddKu entry points, so callers that do not
// manage a Scratch themselves still hit warm buffers after the first few
// calls. The hot paths (steppers, rank workers) bypass the pool with an
// owned Scratch.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}
