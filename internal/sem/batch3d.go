package sem

// Batched kernels of the three 3-D operators: AddKuBatch executes a
// prepared element set as fused gather → contract → scatter passes over a
// flat SoA workspace of batchB-lane planes (see batch.go for the layer's
// contract and bitwise-identity guarantee).
//
// Per full block of batchB elements:
//
//  1. gather: nodal values are pulled through the flat connectivity into
//     per-component planes u_k[q·batchB + lane];
//  2. contract: the axis derivatives are computed as blocked matrix–matrix
//     style passes — the X sweep runs the 5×5 (nq×nq) coefficient block
//     over 25 (nq²) contiguous row groups, the Y sweep over rows of
//     length nq·batchB, the Z sweep over one plane-wide row group — then
//     a pointwise pass turns gradients into weighted stress-flux planes,
//     and the transposed sweeps (Dᵀ) fold them back per component;
//  3. scatter: the output planes accumulate into dst element by element
//     in list order — the same conflict-free, deterministic order as the
//     per-element path.
//
// Ragged tails (len(elems) mod batchB) run through AddKuScratch with the
// scratch embedded in BatchScratch, which is bitwise-identical anyway.

// grad5 computes the three raw axis-derivative planes of one component
// for a deg=4 block (125-point planes, batchB lanes).
func grad5(dstX, dstY, dstZ, in, d []float64) {
	mul5(dstX, in, d, batchB, 25)
	mul5(dstY, in, d, 5*batchB, 5)
	mul5(dstZ, in, d, 25*batchB, 1)
}

// trans5 folds three stress-flux planes back through the transposed
// derivative matrix into one output component plane (deg=4):
// out = Xᵀ·tx, then += Yᵀ·ty, then += Zᵀ·tz, accumulating one product at
// a time in the scalar kernels' chain order.
func trans5(out, tx, ty, tz, dt []float64) {
	mul5(out, tx, dt, batchB, 25)
	mul5acc(out, ty, dt, 5*batchB, 5)
	mul5acc(out, tz, dt, 25*batchB, 1)
}

// gradN / transN are the generic-degree counterparts.
func gradN(dstX, dstY, dstZ, in, d []float64, nq int) {
	for cb := 0; cb < nq*nq; cb++ {
		off := cb * nq * batchB
		mulN(dstX[off:], in[off:], d, nq, batchB)
	}
	for c := 0; c < nq; c++ {
		off := c * nq * nq * batchB
		mulN(dstY[off:], in[off:], d, nq, nq*batchB)
	}
	mulN(dstZ, in, d, nq, nq*nq*batchB)
}

func transN(out, tx, ty, tz, dt []float64, nq int) {
	for cb := 0; cb < nq*nq; cb++ {
		off := cb * nq * batchB
		mulN(out[off:], tx[off:], dt, nq, batchB)
	}
	for c := 0; c < nq; c++ {
		off := c * nq * nq * batchB
		mulNacc(out[off:], ty[off:], dt, nq, nq*batchB)
	}
	mulNacc(out, tz, dt, nq, nq*nq*batchB)
}

// gather3 / scatter3 move one block of a 3-component field between the
// global node-major layout and the SoA planes; scatter3 accumulates in
// element-list order, matching the per-element kernels' dst order.
func (c *core3d) gather3(u []float64, be []int32, ux, uy, uz []float64) {
	for i, e := range be {
		nb := c.elemConn(int(e))
		o := i
		for _, n := range nb {
			j := 3 * int(n)
			ux[o], uy[o], uz[o] = u[j], u[j+1], u[j+2]
			o += batchB
		}
	}
}

func (c *core3d) scatter3(dst []float64, be []int32, sx, sy, sz []float64) {
	for i, e := range be {
		nb := c.elemConn(int(e))
		o := i
		for _, n := range nb {
			j := 3 * int(n)
			dst[j] += sx[o]
			dst[j+1] += sy[o]
			dst[j+2] += sz[o]
			o += batchB
		}
	}
}

// gather1 / scatter1 are the scalar-field (acoustic) variants.
func (c *core3d) gather1(u []float64, be []int32, ue []float64) {
	for i, e := range be {
		nb := c.elemConn(int(e))
		o := i
		for _, n := range nb {
			ue[o] = u[n]
			o += batchB
		}
	}
}

func (c *core3d) scatter1(dst []float64, be []int32, s []float64) {
	for i, e := range be {
		nb := c.elemConn(int(e))
		o := i
		for _, n := range nb {
			dst[n] += s[o]
			o += batchB
		}
	}
}

// ---- Elastic3D ----

// elCstRows is the per-block constant row count of the elastic plan:
// ax, ay, az, jdet, λ, μ.
const elCstRows = 6

// NewBatchPlan implements BatchKernel: it precomputes the gather table
// copy, per-block metric and Lamé constants, and quadrature weight pairs
// for the element list.
func (op *Elastic3D) NewBatchPlan(elems []int32) BatchPlan {
	pl := newElemBatchPlan(op, elems, op.nq, op.Rule.Weights)
	pl.cst = make([]float64, pl.nfull/batchB*elCstRows*batchB)
	for blk := 0; blk < pl.nfull; blk += batchB {
		row := pl.cst[blk/batchB*elCstRows*batchB:]
		for i := 0; i < batchB; i++ {
			e := int(pl.elems[blk+i])
			dx, dy, dz := op.M.ElemSize(e)
			lam, mu := op.Lame(e)
			row[0*batchB+i] = 2 / dx
			row[1*batchB+i] = 2 / dy
			row[2*batchB+i] = 2 / dz
			row[3*batchB+i] = dx * dy * dz / 8
			row[4*batchB+i] = lam
			row[5*batchB+i] = mu
		}
	}
	return pl
}

// AddKuBatch implements BatchKernel; bitwise-identical to AddKuScratch
// over plan.Elems().
func (op *Elastic3D) AddKuBatch(dst, u []float64, plan BatchPlan, bs *BatchScratch) {
	pl := checkPlan(op, plan)
	checkLens(op, "dst", dst)
	checkLens(op, "u", u)
	op.batch3comp(dst, u, pl, bs, func(gg, cst, wpair []float64) {
		if op.deg == 4 {
			elStress8(gg, cst, wpair)
		} else {
			elStressN(gg, cst, wpair, op.n3)
		}
	}, elCstRows)
	if pl.nfull < len(pl.elems) {
		op.AddKuScratch(dst, u, pl.elems[pl.nfull:], &bs.tail)
	}
}

// ---- Anisotropic3D ----

// anCstRows is the per-block constant row count of the anisotropic plan:
// ax, ay, az, jdet plus the 36 Voigt tensor entries.
const anCstRows = 40

// NewBatchPlan implements BatchKernel.
func (op *Anisotropic3D) NewBatchPlan(elems []int32) BatchPlan {
	pl := newElemBatchPlan(op, elems, op.nq, op.Rule.Weights)
	pl.cst = make([]float64, pl.nfull/batchB*anCstRows*batchB)
	for blk := 0; blk < pl.nfull; blk += batchB {
		row := pl.cst[blk/batchB*anCstRows*batchB:]
		for i := 0; i < batchB; i++ {
			e := int(pl.elems[blk+i])
			dx, dy, dz := op.M.ElemSize(e)
			row[0*batchB+i] = 2 / dx
			row[1*batchB+i] = 2 / dy
			row[2*batchB+i] = 2 / dz
			row[3*batchB+i] = dx * dy * dz / 8
			cm := &op.C[e]
			for r := 0; r < 6; r++ {
				for cc := 0; cc < 6; cc++ {
					row[(4+r*6+cc)*batchB+i] = cm[r][cc]
				}
			}
		}
	}
	return pl
}

// AddKuBatch implements BatchKernel; bitwise-identical to AddKuScratch
// over plan.Elems().
func (op *Anisotropic3D) AddKuBatch(dst, u []float64, plan BatchPlan, bs *BatchScratch) {
	pl := checkPlan(op, plan)
	checkLens(op, "dst", dst)
	checkLens(op, "u", u)
	op.batch3comp(dst, u, pl, bs, func(gg, cst, wpair []float64) {
		if op.deg == 4 {
			anStress8(gg, cst, wpair)
		} else {
			anStressN(gg, cst, wpair, op.n3)
		}
	}, anCstRows)
	if pl.nfull < len(pl.elems) {
		op.AddKuScratch(dst, u, pl.elems[pl.nfull:], &bs.tail)
	}
}

// batch3comp is the shared 3-component batch driver: gather, the nine
// derivative sweeps, the operator-specific pointwise stress pass, the
// transposed sweeps, and the ordered scatter. The 12-plane workspace
// reuses the input planes as output planes.
func (c *core3d) batch3comp(dst, u []float64, pl *elemBatchPlan, bs *BatchScratch, stress func(gg, cst, wpair []float64), cstRows int) {
	pb := c.n3 * batchB
	ws := bs.floats(12 * pb)
	ux := ws[0*pb : 1*pb]
	uy := ws[1*pb : 2*pb]
	uz := ws[2*pb : 3*pb]
	gg := ws[3*pb : 12*pb]
	d, dt := c.dfl, c.dtf
	deg4 := c.deg == 4
	for blk := 0; blk < pl.nfull; blk += batchB {
		be := pl.elems[blk : blk+batchB]
		c.gather3(u, be, ux, uy, uz)
		for k, in := range [3][]float64{ux, uy, uz} {
			gx := gg[(3*k+0)*pb : (3*k+1)*pb]
			gy := gg[(3*k+1)*pb : (3*k+2)*pb]
			gz := gg[(3*k+2)*pb : (3*k+3)*pb]
			if deg4 {
				grad5(gx, gy, gz, in, d)
			} else {
				gradN(gx, gy, gz, in, d, c.nq)
			}
		}
		stress(gg, pl.cst[blk/batchB*cstRows*batchB:], pl.wpair)
		for k, out := range [3][]float64{ux, uy, uz} {
			tx := gg[(3*k+0)*pb : (3*k+1)*pb]
			ty := gg[(3*k+1)*pb : (3*k+2)*pb]
			tz := gg[(3*k+2)*pb : (3*k+3)*pb]
			if deg4 {
				trans5(out, tx, ty, tz, dt)
			} else {
				transN(out, tx, ty, tz, dt, c.nq)
			}
		}
		c.scatter3(dst, be, ux, uy, uz)
	}
}

// ---- Acoustic3D ----

// acCstRows is the per-block constant row count of the acoustic plan:
// the premultiplied metric factors sx, sy, sz (μ·J·α²).
const acCstRows = 3

// NewBatchPlan implements BatchKernel.
func (op *Acoustic3D) NewBatchPlan(elems []int32) BatchPlan {
	pl := newElemBatchPlan(op, elems, op.nq, op.Rule.Weights)
	pl.cst = make([]float64, pl.nfull/batchB*acCstRows*batchB)
	for blk := 0; blk < pl.nfull; blk += batchB {
		row := pl.cst[blk/batchB*acCstRows*batchB:]
		for i := 0; i < batchB; i++ {
			e := int(pl.elems[blk+i])
			dx, dy, dz := op.M.ElemSize(e)
			jdet := dx * dy * dz / 8
			ax, ay, az := 2/dx, 2/dy, 2/dz
			mu := op.M.Rho[e] * op.M.C[e] * op.M.C[e]
			row[0*batchB+i] = mu * jdet * ax * ax
			row[1*batchB+i] = mu * jdet * ay * ay
			row[2*batchB+i] = mu * jdet * az * az
		}
	}
	return pl
}

// AddKuBatch implements BatchKernel; bitwise-identical to AddKuScratch
// over plan.Elems().
func (op *Acoustic3D) AddKuBatch(dst, u []float64, plan BatchPlan, bs *BatchScratch) {
	pl := checkPlan(op, plan)
	checkLens(op, "dst", dst)
	checkLens(op, "u", u)
	pb := op.n3 * batchB
	ws := bs.floats(4 * pb)
	ue := ws[0*pb : 1*pb]
	ff := ws[1*pb : 4*pb]
	fx := ff[0*pb : 1*pb]
	fy := ff[1*pb : 2*pb]
	fz := ff[2*pb : 3*pb]
	d, dt := op.dfl, op.dtf
	deg4 := op.deg == 4
	for blk := 0; blk < pl.nfull; blk += batchB {
		be := pl.elems[blk : blk+batchB]
		op.gather1(u, be, ue)
		cst := pl.cst[blk/batchB*acCstRows*batchB:]
		if deg4 {
			grad5(fx, fy, fz, ue, d)
			acStress8(ff, cst, pl.wpair)
			trans5(ue, fx, fy, fz, dt)
		} else {
			gradN(fx, fy, fz, ue, d, op.nq)
			acStressN(ff, cst, pl.wpair, op.n3)
			transN(ue, fx, fy, fz, dt, op.nq)
		}
		op.scatter1(dst, be, ue)
	}
	if pl.nfull < len(pl.elems) {
		op.AddKuScratch(dst, u, pl.elems[pl.nfull:], &bs.tail)
	}
}

var (
	_ BatchKernel = (*Acoustic3D)(nil)
	_ BatchKernel = (*Elastic3D)(nil)
	_ BatchKernel = (*Anisotropic3D)(nil)
)
