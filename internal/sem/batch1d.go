package sem

// Batched kernel of the 1-D operator: the same fused
// gather → contract → scatter structure as the 3-D kernels (batch3d.go),
// with nq-point planes. The 1-D kernel is far from any performance
// bottleneck; it exists so every operator offers the same BatchKernel
// contract (and the LTS correctness tests exercise the batched path on
// the paper's Fig. 1 setting).

// NewBatchPlan implements BatchKernel.
func (op *Op1D) NewBatchPlan(elems []int32) BatchPlan {
	pl := newElemBatchPlan(op, elems, 0, nil)
	pl.wpair = append([]float64(nil), op.Rule.Weights...)
	pl.cst = make([]float64, pl.nfull/batchB*batchB)
	for blk := 0; blk < pl.nfull; blk += batchB {
		row := pl.cst[blk/batchB*batchB:]
		for i := 0; i < batchB; i++ {
			e := int(pl.elems[blk+i])
			j := (op.XC[e+1] - op.XC[e]) / 2
			mu := op.Rho[e] * op.C[e] * op.C[e]
			row[i] = mu / j
		}
	}
	return pl
}

// AddKuBatch implements BatchKernel; bitwise-identical to AddKuScratch
// over plan.Elems().
func (op *Op1D) AddKuBatch(dst, u []float64, plan BatchPlan, bs *BatchScratch) {
	pl := checkPlan(op, plan)
	checkLens(op, "dst", dst)
	checkLens(op, "u", u)
	nq := op.deg + 1
	pb := nq * batchB
	ws := bs.floats(2 * pb)
	in := ws[0*pb : 1*pb]
	f := ws[1*pb : 2*pb]
	for blk := 0; blk < pl.nfull; blk += batchB {
		be := pl.elems[blk : blk+batchB]
		for i, e := range be {
			nb := op.conn[int(e)*nq : (int(e)+1)*nq]
			o := i
			for _, n := range nb {
				in[o] = u[n]
				o += batchB
			}
		}
		mulN(f, in, op.dfl, nq, batchB)
		cst := pl.cst[blk/batchB*batchB:]
		for q := 0; q < nq; q++ {
			wq := pl.wpair[q]
			o := q * batchB
			for i := 0; i < batchB; i++ {
				f[o+i] = (wq * cst[i]) * f[o+i]
			}
		}
		mulN(in, f, op.dtf, nq, batchB)
		for i, e := range be {
			nb := op.conn[int(e)*nq : (int(e)+1)*nq]
			o := i
			for _, n := range nb {
				dst[n] += in[o]
				o += batchB
			}
		}
	}
	if pl.nfull < len(pl.elems) {
		op.AddKuScratch(dst, u, pl.elems[pl.nfull:], &bs.tail)
	}
}

var _ BatchKernel = (*Op1D)(nil)
