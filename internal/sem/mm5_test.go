package sem

import (
	"testing"
)

// randFill fills v with a deterministic pseudo-random field in (-1, 1),
// offset by seed so distinct buffers differ.
func randFill(v []float64, seed uint64) {
	s := seed*2654435761 + 12345
	for i := range v {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		v[i] = float64(int64(s)) / float64(1<<63)
	}
}

// randPos fills v with positive values in (0.5, 1.5).
func randPos(v []float64, seed uint64) {
	randFill(v, seed)
	for i := range v {
		v[i] = 1 + v[i]/2
	}
}

// TestMul5MatchesReference pins the dispatch microkernels (asm on amd64)
// bitwise against the pure-Go references for row lengths exercising the
// quad, pair and scalar-tail loops.
func TestMul5MatchesReference(t *testing.T) {
	d := make([]float64, 25)
	randFill(d, 1)
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13, 40, 200} {
		for _, blocks := range []int{1, 2, 25} {
			src := make([]float64, 5*n*blocks)
			randFill(src, uint64(n))
			want := make([]float64, len(src))
			got := make([]float64, len(src))
			mm5go(want, src, d, n, blocks)
			mul5(got, src, d, n, blocks)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("mul5 n=%d blocks=%d idx=%d: got %v want %v", n, blocks, i, got[i], want[i])
				}
			}
			randFill(want, uint64(7*n))
			copy(got, want)
			mm5accgo(want, src, d, n, blocks)
			mul5acc(got, src, d, n, blocks)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("mul5acc n=%d blocks=%d idx=%d: got %v want %v", n, blocks, i, got[i], want[i])
				}
			}
		}
	}
}

// TestStress8MatchesReference pins the three deg=4 pointwise passes (asm
// on amd64) bitwise against their generic pure-Go references.
func TestStress8MatchesReference(t *testing.T) {
	const pb = 125 * batchB
	w := make([]float64, 250)
	randPos(w, 3)
	t.Run("elastic", func(t *testing.T) {
		cst := make([]float64, elCstRows*batchB)
		randPos(cst, 4)
		want := make([]float64, 9*pb)
		randFill(want, 5)
		got := append([]float64(nil), want...)
		elStressN(want, cst, w, 125)
		elStress8(got, cst, w)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("idx %d: got %v want %v", i, got[i], want[i])
			}
		}
	})
	t.Run("acoustic", func(t *testing.T) {
		cst := make([]float64, acCstRows*batchB)
		randPos(cst, 6)
		want := make([]float64, 3*pb)
		randFill(want, 7)
		got := append([]float64(nil), want...)
		acStressN(want, cst, w, 125)
		acStress8(got, cst, w)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("idx %d: got %v want %v", i, got[i], want[i])
			}
		}
	})
	t.Run("anisotropic", func(t *testing.T) {
		cst := make([]float64, anCstRows*batchB)
		randPos(cst, 8)
		want := make([]float64, 9*pb)
		randFill(want, 9)
		got := append([]float64(nil), want...)
		anStressN(want, cst, w, 125)
		anStress8(got, cst, w)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("idx %d: got %v want %v", i, got[i], want[i])
			}
		}
	})
}
