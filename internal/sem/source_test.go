package sem

import (
	"math"
	"testing"

	"golts/internal/mesh"
)

func TestGaussianPulse(t *testing.T) {
	g := GaussianPulse{T0: 1, Sigma: 0.2}
	if got := g.Amp(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("peak %v, want 1", got)
	}
	if got := g.Amp(1.2); math.Abs(got-math.Exp(-0.5)) > 1e-12 {
		t.Errorf("one sigma %v, want %v", got, math.Exp(-0.5))
	}
	g2 := GaussianPulse{T0: 0, Sigma: 1, Scale: 3}
	if got := g2.Amp(0); math.Abs(got-3) > 1e-12 {
		t.Errorf("scaled peak %v, want 3", got)
	}
}

func TestAddForces(t *testing.T) {
	op := uniform1D(4, 1, 1, 2, FreeBC, FreeBC)
	dst := make([]float64, op.NDof())
	srcs := []Source{
		{Dof: 3, W: GaussianPulse{T0: 0, Sigma: 1, Scale: 2}},
		{Dof: 5, W: Ricker{F0: 1, T0: 0}},
	}
	AddForces(op, srcs, 0, dst)
	want3 := 2 * op.MInv()[3]
	if math.Abs(dst[3]-want3) > 1e-12 {
		t.Errorf("dst[3] = %v, want %v", dst[3], want3)
	}
	if dst[5] == 0 {
		t.Error("second source not applied")
	}
	for i, v := range dst {
		if i != 3 && i != 5 && v != 0 {
			t.Errorf("dst[%d] = %v, want 0", i, v)
		}
	}
	// Empty source list is a no-op.
	AddForces(op, nil, 0, dst)
}

func TestReceiverFirstArrivalEmpty(t *testing.T) {
	r := &Receiver{Dof: 0}
	if r.FirstArrival(0.5) != 0 || r.PeakTime() != 0 {
		t.Error("empty receiver should report 0")
	}
	r.Record(1, []float64{0})
	if r.FirstArrival(0.5) != 0 {
		t.Error("all-zero trace should report 0")
	}
}

func TestEnergySkipsFixedNodes(t *testing.T) {
	op := uniform1D(4, 1, 1, 3, FixedBC, FixedBC)
	u := make([]float64, op.NDof())
	v := make([]float64, op.NDof())
	// Large velocity at fixed nodes must not contribute kinetic energy.
	v[0] = 1e9
	v[op.NumNodes()-1] = 1e9
	e := Energy(op, u, v, AllElements(op), nil)
	if e != 0 {
		t.Errorf("fixed-node energy leak: %v", e)
	}
}

func TestElastic3DNodeCoords(t *testing.T) {
	op := mustElastic(mustMesh(t), 2, false)
	x, y, z := op.NodeCoords(0)
	if x != 0 || y != 0 || z != 0 {
		t.Errorf("node 0 at (%v,%v,%v)", x, y, z)
	}
	last := int32(op.NumNodes() - 1)
	x, y, z = op.NodeCoords(last)
	if math.Abs(x-2) > 1e-12 || math.Abs(y-2) > 1e-12 || math.Abs(z-2) > 1e-12 {
		t.Errorf("last node at (%v,%v,%v), want (2,2,2)", x, y, z)
	}
	// Lame parameters: Poisson solid default has lambda = mu.
	lam, mu := op.Lame(0)
	if math.Abs(lam-mu) > 1e-9 {
		t.Errorf("Poisson solid should have lambda = mu: %v vs %v", lam, mu)
	}
}

func TestOperatorStringers(t *testing.T) {
	m := mustMesh(t)
	a := mustAcoustic(m, 2, true)
	e := mustElastic(m, 2, false)
	if a.String() == "" || e.String() == "" {
		t.Error("empty String()")
	}
}

func mustMesh(t testing.TB) *mesh.Mesh {
	t.Helper()
	return mesh.Uniform(2, 2, 2, 1, 1)
}
