package ckpt

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func sampleState() *StepperState {
	return &StepperState{
		Scheme:      "lts",
		T:           0.1 + 0.2, // a value with a non-trivial bit pattern
		N:           7,
		Started:     true,
		U:           []float64{1, math.Pi, -0.0, math.Nextafter(1, 2)},
		V:           []float64{-3, 1e-300, 4.5e17},
		ElemApplies: 1234,
		PerLevel:    []int64{10, 20, 30},
		Cycles:      7,
	}
}

func TestRoundTrip(t *testing.T) {
	f := NewFile()
	meta := &Meta{ConfigKey: "ckpt|trench|0.02", ConfigSHA: "abc", Scheme: "lts", Cycle: 7, Time: 0.3}
	if err := f.PutMeta(meta); err != nil {
		t.Fatal(err)
	}
	st := sampleState()
	if err := f.PutState(st); err != nil {
		t.Fatal(err)
	}
	f.Add("extra", []byte("opaque"))

	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := g.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if *m2 != *meta {
		t.Fatalf("meta round trip: got %+v want %+v", m2, meta)
	}
	st2, err := g.State()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Scheme != st.Scheme || st2.T != st.T || st2.N != st.N || !st2.Started {
		t.Fatalf("state scalars: got %+v", st2)
	}
	for i := range st.U {
		if math.Float64bits(st2.U[i]) != math.Float64bits(st.U[i]) {
			t.Fatalf("U[%d] bits differ", i)
		}
	}
	for i := range st.V {
		if math.Float64bits(st2.V[i]) != math.Float64bits(st.V[i]) {
			t.Fatalf("V[%d] bits differ", i)
		}
	}
	if extra, ok := g.Lookup("extra"); !ok || string(extra) != "opaque" {
		t.Fatalf("extra section: %q %v", extra, ok)
	}
}

func TestCorruptionDetected(t *testing.T) {
	f := NewFile()
	if err := f.PutState(sampleState()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one payload byte (past header + name framing) and require a
	// CRC error.
	raw[len(raw)-10] ^= 0x40
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted payload decoded without error")
	}
}

func TestTruncationDetected(t *testing.T) {
	f := NewFile()
	if err := f.PutState(sampleState()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Decode(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated container decoded without error")
	}
	if _, err := Decode(bytes.NewReader(raw[:4])); err == nil {
		t.Fatal("truncated header decoded without error")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	f := NewFile()
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	raw[0] = 'X'
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad magic accepted")
	}
	raw = append([]byte(nil), buf.Bytes()...)
	raw[8] = 99
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	f := NewFile()
	if err := f.PutMeta(&Meta{ConfigKey: "k", Cycle: 3}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	// Overwrite must be atomic and leave no temp litter.
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter in %s: %v", dir, entries)
	}
	g, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if m.ConfigKey != "k" || m.Cycle != 3 {
		t.Fatalf("meta: %+v", m)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("missing file read without error")
	}
}
