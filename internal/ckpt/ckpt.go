// Package ckpt defines the on-disk and on-wire checkpoint format shared
// by the facade, the steppers and the distributed backend.
//
// A checkpoint is a self-describing binary container:
//
//	[8]  magic "GOLTSCKP"
//	[u32] format version (little-endian, currently 1)
//	[u32] section count
//	then, per section:
//	[u16] name length  [name bytes]
//	[u32] payload length  [payload bytes]
//	[u32] CRC32 (IEEE) of the payload
//
// Section payloads are gob streams, which preserve float64 bit patterns
// exactly — the whole point of a checkpoint here is that a resumed run
// is bitwise identical to an uninterrupted one. Two well-known sections
// are defined: "meta" (a Meta) identifies the run configuration and the
// cycle the state belongs to, and "state" (a StepperState) carries the
// complete inter-cycle state of an lts.Scheme or newmark.Stepper.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

const (
	magic = "GOLTSCKP"
	// Version is the current container format version.
	Version = 1

	maxSectionName = 1 << 10
	maxSectionLen  = 1 << 31
)

// Meta identifies which run a checkpoint belongs to and where in the
// run it was taken. ConfigKey is the canonical configuration string the
// facade derives from its options; a resume refuses to install state
// whose key differs from the rebuilt simulation's.
type Meta struct {
	ConfigKey string // canonical configuration key (bitwise-compatibility class)
	ConfigSHA string // sha256 hex of ConfigKey, for display and logs
	Scheme    string // "lts" or "newmark"
	Cycle     int64  // facade cycles completed when the state was captured
	Time      float64
}

// StepperState is the complete inter-cycle state of a time stepper.
// Everything else a stepper holds (per-level scratch, batch plans,
// masks) is written before it is read within each cycle, so this is
// sufficient for a bitwise-identical resume.
type StepperState struct {
	Scheme  string // "lts" or "newmark"
	T       float64
	N       int64
	Started bool
	U       []float64
	V       []float64

	// Work counters, restored so Stats continuity survives a resume.
	ElemApplies int64
	PerLevel    []int64
	Cycles      int64
}

// File is an in-memory checkpoint container.
type File struct {
	names    []string
	payloads map[string][]byte
}

// NewFile returns an empty container.
func NewFile() *File {
	return &File{payloads: make(map[string][]byte)}
}

// Add stores payload under name, replacing any previous section of the
// same name while keeping first-add order.
func (f *File) Add(name string, payload []byte) {
	if _, ok := f.payloads[name]; !ok {
		f.names = append(f.names, name)
	}
	f.payloads[name] = payload
}

// Lookup returns the named section payload.
func (f *File) Lookup(name string) ([]byte, bool) {
	p, ok := f.payloads[name]
	return p, ok
}

// PutMeta gob-encodes m into the "meta" section.
func (f *File) PutMeta(m *Meta) error { return f.putGob("meta", m) }

// Meta decodes the "meta" section.
func (f *File) Meta() (*Meta, error) {
	var m Meta
	if err := f.getGob("meta", &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// PutState gob-encodes st into the "state" section.
func (f *File) PutState(st *StepperState) error { return f.putGob("state", st) }

// State decodes the "state" section.
func (f *File) State() (*StepperState, error) {
	var st StepperState
	if err := f.getGob("state", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (f *File) putGob(name string, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("ckpt: encode %s: %w", name, err)
	}
	f.Add(name, buf.Bytes())
	return nil
}

func (f *File) getGob(name string, v any) error {
	p, ok := f.Lookup(name)
	if !ok {
		return fmt.Errorf("ckpt: missing %q section", name)
	}
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(v); err != nil {
		return fmt.Errorf("ckpt: decode %s: %w", name, err)
	}
	return nil
}

// Encode writes the container to w.
func (f *File) Encode(w io.Writer) error {
	var hdr [16]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(f.names)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, name := range f.names {
		payload := f.payloads[name]
		var nl [2]byte
		binary.LittleEndian.PutUint16(nl[:], uint16(len(name)))
		if _, err := w.Write(nl[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, name); err != nil {
			return err
		}
		var pl [4]byte
		binary.LittleEndian.PutUint32(pl[:], uint32(len(payload)))
		if _, err := w.Write(pl[:]); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
		if _, err := w.Write(crc[:]); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads a container from r, verifying the magic, version and
// every section's CRC32.
func Decode(r io.Reader) (*File, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("ckpt: header: %w", err)
	}
	if string(hdr[:8]) != magic {
		return nil, fmt.Errorf("ckpt: bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != Version {
		return nil, fmt.Errorf("ckpt: unsupported format version %d (want %d)", v, Version)
	}
	n := binary.LittleEndian.Uint32(hdr[12:16])
	f := NewFile()
	for i := uint32(0); i < n; i++ {
		var nl [2]byte
		if _, err := io.ReadFull(r, nl[:]); err != nil {
			return nil, fmt.Errorf("ckpt: section %d name length: %w", i, err)
		}
		nameLen := binary.LittleEndian.Uint16(nl[:])
		if nameLen == 0 || nameLen > maxSectionName {
			return nil, fmt.Errorf("ckpt: section %d: bad name length %d", i, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("ckpt: section %d name: %w", i, err)
		}
		var pl [4]byte
		if _, err := io.ReadFull(r, pl[:]); err != nil {
			return nil, fmt.Errorf("ckpt: section %q length: %w", name, err)
		}
		payloadLen := binary.LittleEndian.Uint32(pl[:])
		if uint64(payloadLen) > maxSectionLen {
			return nil, fmt.Errorf("ckpt: section %q: payload too large (%d)", name, payloadLen)
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("ckpt: section %q payload: %w", name, err)
		}
		var crc [4]byte
		if _, err := io.ReadFull(r, crc[:]); err != nil {
			return nil, fmt.Errorf("ckpt: section %q crc: %w", name, err)
		}
		want := binary.LittleEndian.Uint32(crc[:])
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, fmt.Errorf("ckpt: section %q: CRC mismatch (corrupt checkpoint)", name)
		}
		f.Add(string(name), payload)
	}
	return f, nil
}

// WriteFile writes the container to path atomically: the bytes land in
// a temporary file in the same directory which is then renamed over
// path, so a crash mid-write never leaves a truncated checkpoint where
// a reader expects a valid one.
func WriteFile(path string, f *File) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := f.Encode(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// ReadFile decodes the container at path.
func ReadFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	f, err := Decode(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return f, nil
}
