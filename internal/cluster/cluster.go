// Package cluster is a deterministic performance simulator for LTS wave
// propagation on CPU and GPU clusters, standing in for the paper's Piz
// Daint measurements (§IV-C/D/E). It executes the LTS cycle schedule in
// simulated time: at every substep the active levels compute on each rank,
// neighbouring ranks exchange halos, and the cycle time is the sum over
// substeps of the slowest rank — exactly the synchronisation structure of
// Fig. 1's timeline.
//
// The machine models capture the effects the paper identifies:
//
//   - a two-level cache model (per-substep working set vs capacity) that
//     produces the super-linear CPU scaling of Figs. 9/10 and the D1+D2
//     hit behaviour of Fig. 12, including LTS's improved locality;
//   - a GPU model with per-kernel launch overhead per active level, which
//     reproduces the LTS-GPU strong-scaling collapse of Fig. 9 (bottom);
//   - an α-β message model driven by the exact per-rank, per-level halo
//     volumes of the partition (the hypergraph cut of §III-A.2).
package cluster

import (
	"fmt"

	"golts/internal/mesh"
)

// CostModel holds per-rank machine parameters. Times are in seconds;
// element costs are per element per substep.
type CostModel struct {
	Name string
	// ElemCost is the cache-friendly cost of one element-substep.
	ElemCost float64
	// MissPenalty multiplies ElemCost at a fully cache-missing working
	// set: cost = ElemCost * (1 + MissPenalty * miss(ws)).
	MissPenalty float64
	// CacheElems is the number of elements whose working set fits in the
	// rank's cache hierarchy.
	CacheElems float64
	// KernelLaunch is the fixed cost per active level per substep (kernel
	// setup + launch on GPUs; effectively 0 on CPUs).
	KernelLaunch float64
	// Alpha is the per-message latency; Beta the per-unit-volume cost
	// (volume in halo node-contributions, the hypergraph cut units).
	Alpha, Beta float64
	// RanksPerNode converts rank counts to node counts for reporting.
	RanksPerNode int
	// HitBase and HitMax bound the cache hit rate h(ws) = HitMax -
	// (HitMax-HitBase) * miss(ws).
	HitBase, HitMax float64
}

// CPUModel approximates one core of the paper's 8-core Intel E5-2670
// nodes: ~10 µs per 125-node element-substep, a cache hierarchy worth a
// few hundred elements per core, and a low-latency interconnect.
// The α/β constants are calibrated to the repo's default scaled meshes
// (~1/10 of the paper's element counts): per-rank surface-to-volume ratios
// are larger at the reduced scale, so raw Cray-XC30 message costs would
// overweight communication relative to the paper's setting.
var CPUModel = CostModel{
	Name:         "cpu",
	ElemCost:     10e-6,
	MissPenalty:  0.4,
	CacheElems:   300,
	KernelLaunch: 0,
	Alpha:        0.5e-6,
	Beta:         5e-9,
	RanksPerNode: 8,
	HitBase:      0.45,
	HitMax:       0.97,
}

// GPUModel approximates one NVIDIA K20X per node: ~55x the per-element
// throughput of a core (the paper's 6.9x node-to-node speedup times 8
// cores), kernel launch overhead per active level per substep, and
// PCIe-staged messages with higher latency. The GPU gets no cache-model
// bonus (§IV-D: "the GPU version is unable to benefit from these cache
// advantages").
var GPUModel = CostModel{
	Name:         "gpu",
	ElemCost:     10e-6 / 40,
	MissPenalty:  0,
	CacheElems:   1,
	KernelLaunch: 15e-6,
	Alpha:        1.5e-6,
	Beta:         1e-9,
	RanksPerNode: 1,
	HitBase:      0.3,
	HitMax:       0.3,
}

// Assignment is a partitioned LTS workload: per-rank, per-level element
// counts and halo communication requirements, derived exactly from the
// mesh, levels and element partition.
type Assignment struct {
	K         int
	NumLevels int
	PMax      int
	CoarseDt  float64
	// N[r][li] is the number of level-li elements owned by rank r
	// (0-based levels).
	N [][]int64
	// NHalo[r][li] is the number of rank-r elements of other levels that
	// must be recomputed at level li's rate because they border level-li
	// nodes (the gray halo of Fig. 2) — the implementation overhead that
	// keeps single-thread LTS efficiency below 100% (§II-C).
	NHalo [][]int64
	// Vol[r][li] is the halo volume rank r sends per level-li substep (in
	// node-contribution units, matching the hypergraph cost model).
	Vol [][]int64
	// Peers[r][li] is the number of distinct ranks r exchanges level-li
	// halos with.
	Peers [][]int
}

// NewAssignment derives the simulation workload from a partition.
func NewAssignment(m *mesh.Mesh, lv *mesh.Levels, part []int32, k int) (*Assignment, error) {
	if len(part) != m.NumElements() {
		return nil, fmt.Errorf("cluster: partition has %d entries for %d elements", len(part), m.NumElements())
	}
	a := &Assignment{K: k, NumLevels: lv.NumLevels, PMax: lv.PMax(), CoarseDt: lv.CoarseDt}
	a.N = make([][]int64, k)
	a.NHalo = make([][]int64, k)
	a.Vol = make([][]int64, k)
	peerSets := make([]map[int32]struct{}, k*lv.NumLevels)
	for r := 0; r < k; r++ {
		a.N[r] = make([]int64, lv.NumLevels)
		a.NHalo[r] = make([]int64, lv.NumLevels)
		a.Vol[r] = make([]int64, lv.NumLevels)
	}
	for e := 0; e < m.NumElements(); e++ {
		r := part[e]
		if r < 0 || int(r) >= k {
			return nil, fmt.Errorf("cluster: element %d in part %d (K=%d)", e, r, k)
		}
		a.N[r][int(lv.Lvl[e])-1]++
	}
	// Halo elements: a node's level is the max level of its incident
	// elements (paper's P_k selection); an element participates in level
	// li's substeps iff it touches a level-li node. Count participations
	// beyond the element's own level.
	nodeMax := make([]uint8, m.NumCornerNodes())
	for e := 0; e < m.NumElements(); e++ {
		i, j, kk := m.ECoords(e)
		l := lv.Lvl[e]
		for dk := 0; dk <= 1; dk++ {
			for dj := 0; dj <= 1; dj++ {
				for di := 0; di <= 1; di++ {
					n := m.CornerIndex(i+di, j+dj, kk+dk)
					if l > nodeMax[n] {
						nodeMax[n] = l
					}
				}
			}
		}
	}
	for e := 0; e < m.NumElements(); e++ {
		i, j, kk := m.ECoords(e)
		var mask uint16
		for dk := 0; dk <= 1; dk++ {
			for dj := 0; dj <= 1; dj++ {
				for di := 0; di <= 1; di++ {
					mask |= 1 << (nodeMax[m.CornerIndex(i+di, j+dj, kk+dk)] - 1)
				}
			}
		}
		own := int(lv.Lvl[e]) - 1
		r := part[e]
		for li := 0; li < lv.NumLevels; li++ {
			if li != own && mask&(1<<li) != 0 {
				a.NHalo[r][li]++
			}
		}
	}
	// Halo volumes from the corner-node incidence (the hypergraph model):
	// a node spanning λ parts forces each incident element to send its
	// contribution to the λ-1 other parts, once per substep of the
	// element's level.
	off, elems := m.CornerIncidence()
	var parts []int32
	for n := 0; n < m.NumCornerNodes(); n++ {
		lo, hi := off[n], off[n+1]
		if hi-lo < 2 {
			continue
		}
		parts = parts[:0]
		multi := false
		for i := lo; i < hi; i++ {
			p := part[elems[i]]
			found := false
			for _, q := range parts {
				if q == p {
					found = true
					break
				}
			}
			if !found {
				parts = append(parts, p)
				if len(parts) > 1 {
					multi = true
				}
			}
		}
		if !multi {
			continue
		}
		lambda := int64(len(parts))
		for i := lo; i < hi; i++ {
			e := elems[i]
			r := part[e]
			li := int(lv.Lvl[e]) - 1
			a.Vol[r][li] += lambda - 1
			set := peerSets[int(r)*lv.NumLevels+li]
			if set == nil {
				set = make(map[int32]struct{})
				peerSets[int(r)*lv.NumLevels+li] = set
			}
			for _, q := range parts {
				if q != r {
					set[q] = struct{}{}
				}
			}
		}
	}
	a.Peers = make([][]int, k)
	for r := 0; r < k; r++ {
		a.Peers[r] = make([]int, lv.NumLevels)
		for li := 0; li < lv.NumLevels; li++ {
			a.Peers[r][li] = len(peerSets[r*lv.NumLevels+li])
		}
	}
	return a, nil
}

// CycleStats reports the simulated execution of one LTS cycle (one coarse
// Δt).
type CycleStats struct {
	// Time is the wall-clock seconds per coarse Δt.
	Time float64
	// Compute, Comm and Launch decompose the critical path.
	Compute, Comm, Launch float64
	// Hits accumulates the cache-hit metric (hits per cycle, machine
	// wide); HitRate is the work-weighted average hit rate.
	Hits    float64
	HitRate float64
	// Performance is simulated-time per wall-time: CoarseDt / Time.
	Performance float64
}

// miss returns the cache-miss fraction for a working set of ws elements.
func (cm CostModel) miss(ws float64) float64 {
	if ws <= 0 {
		return 0
	}
	return ws / (ws + cm.CacheElems)
}

// Simulate executes one LTS cycle in simulated time. The schedule follows
// Eq. 16: level li substeps at rate Δt/2^li; substep i of the finest
// schedule activates every level whose period divides i.
func Simulate(a *Assignment, cm CostModel) CycleStats {
	var st CycleStats
	nlv := a.NumLevels
	var workWeighted, workTotal float64
	for i := 0; i < a.PMax; i++ {
		// Levels active at this substep (0-based li steps 2^li times per
		// cycle; it is active when i is a multiple of PMax/2^li).
		var active []int
		for li := 0; li < nlv; li++ {
			period := a.PMax >> uint(li)
			if i%period == 0 {
				active = append(active, li)
			}
		}
		var tMax, compMax, commMax, launchMax float64
		for r := 0; r < a.K; r++ {
			var ws int64
			for _, li := range active {
				ws += a.N[r][li] + a.NHalo[r][li]
			}
			msf := cm.miss(float64(ws))
			perElem := cm.ElemCost * (1 + cm.MissPenalty*msf)
			var comp, comm, launch float64
			for _, li := range active {
				ne := a.N[r][li] + a.NHalo[r][li]
				comp += float64(ne) * perElem
				if ne > 0 {
					launch += cm.KernelLaunch
				}
				if a.Vol[r][li] > 0 {
					comm += cm.Alpha*float64(a.Peers[r][li]) + cm.Beta*float64(a.Vol[r][li])
				}
			}
			t := comp + comm + launch
			if t > tMax {
				tMax, compMax, commMax, launchMax = t, comp, comm, launch
			}
			// Cache metric: hits accumulated machine-wide.
			h := cm.HitMax - (cm.HitMax-cm.HitBase)*msf
			st.Hits += float64(ws) * h
			workWeighted += float64(ws) * h
			workTotal += float64(ws)
		}
		st.Time += tMax
		st.Compute += compMax
		st.Comm += commMax
		st.Launch += launchMax
	}
	if workTotal > 0 {
		st.HitRate = workWeighted / workTotal
	}
	if st.Time > 0 {
		st.Performance = a.CoarseDt / st.Time
	}
	return st
}

// UniformLevels builds the degenerate single-level assignment the non-LTS
// scheme uses: every element on level 1, but stepping pMax times per
// coarse Δt (the global CFL bottleneck). The returned Levels reuses the
// LTS coarse step so performance comparisons share the simulated-time
// normalisation.
func UniformLevels(m *mesh.Mesh, lv *mesh.Levels) *mesh.Levels {
	u := &mesh.Levels{
		NumLevels: 1,
		Lvl:       make([]uint8, m.NumElements()),
		P:         []int{1},
		Count:     []int{m.NumElements()},
		CoarseDt:  lv.CoarseDt,
		CFL:       lv.CFL,
	}
	for i := range u.Lvl {
		u.Lvl[i] = 1
	}
	return u
}

// SimulateNonLTS runs the global scheme over one coarse Δt: pMax full-mesh
// substeps.
func SimulateNonLTS(m *mesh.Mesh, lv *mesh.Levels, part []int32, k int, cm CostModel) (CycleStats, error) {
	u := UniformLevels(m, lv)
	a, err := NewAssignment(m, u, part, k)
	if err != nil {
		return CycleStats{}, err
	}
	st := Simulate(a, cm)
	// The global scheme must take pMax substeps of Δt/pMax to cover Δt.
	p := float64(lv.PMax())
	st.Time *= p
	st.Compute *= p
	st.Comm *= p
	st.Launch *= p
	st.Hits *= p
	if st.Time > 0 {
		st.Performance = a.CoarseDt / st.Time
	}
	return st, nil
}
