package cluster

import (
	"math"
	"testing"

	"golts/internal/hypergraph"
	"golts/internal/mesh"
	"golts/internal/partition"
)

func fixture(t testing.TB, scale float64) (*mesh.Mesh, *mesh.Levels) {
	t.Helper()
	m := mesh.Trench(scale)
	lv := mesh.AssignLevels(m, 0.4, 0)
	return m, lv
}

func mustPartition(t testing.TB, m *mesh.Mesh, lv *mesh.Levels, k int) []int32 {
	t.Helper()
	res, err := partition.PartitionMesh(m, lv, partition.Options{K: k, Method: partition.ScotchP, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res.Part
}

func TestAssignmentConservation(t *testing.T) {
	m, lv := fixture(t, 0.02)
	k := 8
	part := mustPartition(t, m, lv, k)
	a, err := NewAssignment(m, lv, part, k)
	if err != nil {
		t.Fatal(err)
	}
	for li := 0; li < lv.NumLevels; li++ {
		var sum int64
		for r := 0; r < k; r++ {
			sum += a.N[r][li]
		}
		if sum != int64(lv.Count[li]) {
			t.Errorf("level %d: assigned %d elements, mesh has %d", li+1, sum, lv.Count[li])
		}
	}
}

// TestVolumeMatchesHypergraphCut: summing the per-substep volumes times
// their substep counts must reproduce the hypergraph connectivity-1 cut —
// the paper's exact MPI volume per LTS cycle.
func TestVolumeMatchesHypergraphCut(t *testing.T) {
	m, lv := fixture(t, 0.02)
	k := 6
	part := mustPartition(t, m, lv, k)
	a, err := NewAssignment(m, lv, part, k)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for r := 0; r < k; r++ {
		for li := 0; li < lv.NumLevels; li++ {
			total += a.Vol[r][li] * int64(1<<uint(li))
		}
	}
	h := hypergraph.FromMesh(m, lv)
	if want := h.CutSize(part, k); total != want {
		t.Errorf("cycle volume %d != hypergraph cut %d", total, want)
	}
}

func TestAssignmentValidation(t *testing.T) {
	m, lv := fixture(t, 0.02)
	if _, err := NewAssignment(m, lv, []int32{0, 1}, 2); err == nil {
		t.Error("expected error for short partition")
	}
	bad := make([]int32, m.NumElements())
	bad[5] = 99
	if _, err := NewAssignment(m, lv, bad, 2); err == nil {
		t.Error("expected error for out-of-range part")
	}
}

func TestSingleRankTimeMatchesWork(t *testing.T) {
	m, lv := fixture(t, 0.02)
	part := make([]int32, m.NumElements())
	a, err := NewAssignment(m, lv, part, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm := CPUModel
	cm.MissPenalty = 0 // disable cache effects for exact accounting
	st := Simulate(a, cm)
	// Expected: own + halo work per cycle.
	var steps int64
	for li := 0; li < lv.NumLevels; li++ {
		steps += (a.N[0][li] + a.NHalo[0][li]) * int64(1<<uint(li))
	}
	want := float64(steps) * cm.ElemCost
	if math.Abs(st.Time-want) > 1e-9*want {
		t.Errorf("single-rank cycle time %v, want %v", st.Time, want)
	}
	if steps < lv.WorkPerCycle() {
		t.Errorf("work with halo %d below ideal %d", steps, lv.WorkPerCycle())
	}
	if st.Comm != 0 {
		t.Errorf("single rank should not communicate: %v", st.Comm)
	}
}

// TestLTSOutperformsNonLTS: on the trench mesh the simulated LTS cycle
// must beat the global scheme by roughly the theoretical speedup.
func TestLTSOutperformsNonLTS(t *testing.T) {
	m, lv := fixture(t, 0.05)
	k := 16
	part := mustPartition(t, m, lv, k)
	a, err := NewAssignment(m, lv, part, k)
	if err != nil {
		t.Fatal(err)
	}
	lts := Simulate(a, CPUModel)
	non, err := SimulateNonLTS(m, lv, part, k, CPUModel)
	if err != nil {
		t.Fatal(err)
	}
	speedup := non.Time / lts.Time
	model := lv.TheoreticalSpeedup()
	if speedup < 0.5*model || speedup > 1.3*model {
		t.Errorf("simulated speedup %.2f vs model %.2f", speedup, model)
	}
}

// TestImbalancedPartitionIsSlower: concentrating the fine levels on one
// rank (the paper's Fig. 1 pathology) must cost wall-clock time.
func TestImbalancedPartitionIsSlower(t *testing.T) {
	m, lv := fixture(t, 0.05)
	k := 8
	good := mustPartition(t, m, lv, k)
	// Pathological: slab partition along x, so the refined band lands
	// entirely inside one rank — the Fig. 1 imbalance.
	bad := make([]int32, m.NumElements())
	for e := range bad {
		i, _, _ := m.ECoords(e)
		p := int32(i * k / m.NX)
		if p >= int32(k) {
			p = int32(k) - 1
		}
		bad[e] = p
	}
	ga, err := NewAssignment(m, lv, good, k)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := NewAssignment(m, lv, bad, k)
	if err != nil {
		t.Fatal(err)
	}
	gt := Simulate(ga, CPUModel)
	bt := Simulate(ba, CPUModel)
	if bt.Time < gt.Time*1.1 {
		t.Errorf("imbalanced partition time %.3g not clearly worse than balanced %.3g", bt.Time, gt.Time)
	}
}

// TestGPULaunchOverheadLimitsStrongScaling: doubling GPU ranks on a fixed
// mesh must show efficiency loss from kernel launch overhead on the tiny
// fine levels (the paper's Fig. 9-bottom mechanism).
func TestGPULaunchOverheadLimitsStrongScaling(t *testing.T) {
	m, lv := fixture(t, 0.05)
	perf := map[int]float64{}
	for _, k := range []int{4, 32} {
		part := mustPartition(t, m, lv, k)
		a, err := NewAssignment(m, lv, part, k)
		if err != nil {
			t.Fatal(err)
		}
		perf[k] = Simulate(a, GPUModel).Performance
	}
	eff := perf[32] / perf[4] / 8.0
	if eff > 0.9 {
		t.Errorf("GPU strong scaling efficiency %.2f, expected launch-overhead losses", eff)
	}
	if eff < 0.05 {
		t.Errorf("GPU scaling efficiency %.2f unreasonably low", eff)
	}
}

// TestCacheModelSuperlinearity: the CPU non-LTS scheme should scale
// slightly super-linearly on a mesh whose per-rank working set crosses the
// cache capacity (paper §IV-D).
func TestCacheModelSuperlinearity(t *testing.T) {
	m, lv := fixture(t, 0.1)
	perf := map[int]float64{}
	for _, k := range []int{64, 512} {
		part := mustPartition(t, m, lv, k)
		st, err := SimulateNonLTS(m, lv, part, k, CPUModel)
		if err != nil {
			t.Fatal(err)
		}
		perf[k] = st.Performance
	}
	eff := perf[512] / perf[64] / 8.0
	if eff < 1.0 {
		t.Errorf("non-LTS CPU scaling efficiency %.3f, expected super-linear (cache)", eff)
	}
	if eff > 1.6 {
		t.Errorf("non-LTS CPU scaling efficiency %.3f implausibly high", eff)
	}
}

// TestLTSHasBetterCacheHitRate (Fig. 12): LTS's small per-substep working
// sets must raise the modelled hit rate above the non-LTS run.
func TestLTSHasBetterCacheHitRate(t *testing.T) {
	m, lv := fixture(t, 0.1)
	k := 128
	part := mustPartition(t, m, lv, k)
	a, err := NewAssignment(m, lv, part, k)
	if err != nil {
		t.Fatal(err)
	}
	lts := Simulate(a, CPUModel)
	non, err := SimulateNonLTS(m, lv, part, k, CPUModel)
	if err != nil {
		t.Fatal(err)
	}
	if lts.HitRate <= non.HitRate {
		t.Errorf("LTS hit rate %.3f not above non-LTS %.3f", lts.HitRate, non.HitRate)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	m, lv := fixture(t, 0.02)
	part := mustPartition(t, m, lv, 4)
	a, _ := NewAssignment(m, lv, part, 4)
	s1 := Simulate(a, CPUModel)
	s2 := Simulate(a, CPUModel)
	if s1 != s2 {
		t.Error("simulation not deterministic")
	}
}

func BenchmarkSimulateCycle(b *testing.B) {
	m, lv := fixture(b, 0.05)
	part := mustPartition(b, m, lv, 64)
	a, err := NewAssignment(m, lv, part, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(a, CPUModel)
	}
}
