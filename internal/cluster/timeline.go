package cluster

import (
	"fmt"
	"strings"
)

// Timeline reproduces the paper's Fig. 1 (bottom): the per-substep
// execution profile of an LTS cycle across ranks, showing where processors
// stall waiting for the slowest rank at each synchronisation point.
type Timeline struct {
	// Substeps, in schedule order; each entry holds the active levels and
	// the per-rank busy time for that substep.
	Substeps []SubstepProfile
	// CycleTime is the total wall time of the cycle (sum of substep
	// maxima).
	CycleTime float64
	// BusyTime[r] is rank r's total busy time over the cycle.
	BusyTime []float64
}

// SubstepProfile is the execution of one substep.
type SubstepProfile struct {
	// Index is the substep index within the cycle (0..pMax-1).
	Index int
	// ActiveLevels holds the 1-based levels stepping at this substep.
	ActiveLevels []int
	// Busy[r] is rank r's compute+comm time for this substep.
	Busy []float64
	// Duration is the substep wall time: max over ranks.
	Duration float64
}

// StallFraction returns the fraction of total rank-time spent waiting:
// 1 - Σ busy / (K * cycleTime). Zero means perfect balance at every
// synchronisation point (the paper's goal); the Fig. 1 pathology gives
// large values.
func (t *Timeline) StallFraction() float64 {
	if t.CycleTime == 0 || len(t.BusyTime) == 0 {
		return 0
	}
	var busy float64
	for _, b := range t.BusyTime {
		busy += b
	}
	return 1 - busy/(float64(len(t.BusyTime))*t.CycleTime)
}

// Trace executes one LTS cycle like Simulate but records the full per-rank
// profile.
func Trace(a *Assignment, cm CostModel) *Timeline {
	tl := &Timeline{BusyTime: make([]float64, a.K)}
	for i := 0; i < a.PMax; i++ {
		sp := SubstepProfile{Index: i, Busy: make([]float64, a.K)}
		for li := 0; li < a.NumLevels; li++ {
			if i%(a.PMax>>uint(li)) == 0 {
				sp.ActiveLevels = append(sp.ActiveLevels, li+1)
			}
		}
		for r := 0; r < a.K; r++ {
			var ws int64
			for _, l := range sp.ActiveLevels {
				ws += a.N[r][l-1] + a.NHalo[r][l-1]
			}
			msf := cm.miss(float64(ws))
			perElem := cm.ElemCost * (1 + cm.MissPenalty*msf)
			var busy float64
			for _, l := range sp.ActiveLevels {
				li := l - 1
				ne := a.N[r][li] + a.NHalo[r][li]
				busy += float64(ne) * perElem
				if ne > 0 {
					busy += cm.KernelLaunch
				}
				if a.Vol[r][li] > 0 {
					busy += cm.Alpha*float64(a.Peers[r][li]) + cm.Beta*float64(a.Vol[r][li])
				}
			}
			sp.Busy[r] = busy
			tl.BusyTime[r] += busy
			if busy > sp.Duration {
				sp.Duration = busy
			}
		}
		tl.CycleTime += sp.Duration
		tl.Substeps = append(tl.Substeps, sp)
	}
	return tl
}

// Render draws the timeline as ASCII art in the style of the paper's
// Fig. 1: one row per rank, time flowing left to right, '#' for busy time
// and '.' for stalling, with substep boundaries marked by '|'. width is
// the total number of character columns for the cycle.
func (t *Timeline) Render(width int) string {
	if width < 2*len(t.Substeps) {
		width = 2 * len(t.Substeps)
	}
	k := len(t.BusyTime)
	var b strings.Builder
	fmt.Fprintf(&b, "LTS cycle timeline: %d substeps, %d ranks, stall fraction %.0f%%\n",
		len(t.Substeps), k, 100*t.StallFraction())
	// Column budget per substep proportional to its duration.
	cols := make([]int, len(t.Substeps))
	for i, sp := range t.Substeps {
		c := int(float64(width) * sp.Duration / t.CycleTime)
		if c < 1 {
			c = 1
		}
		cols[i] = c
	}
	for r := 0; r < k; r++ {
		fmt.Fprintf(&b, "P%-3d ", r)
		for i, sp := range t.Substeps {
			busyCols := 0
			if sp.Duration > 0 {
				busyCols = int(float64(cols[i]) * sp.Busy[r] / sp.Duration)
			}
			if sp.Busy[r] > 0 && busyCols == 0 {
				busyCols = 1
			}
			b.WriteString(strings.Repeat("#", busyCols))
			b.WriteString(strings.Repeat(".", cols[i]-busyCols))
			b.WriteByte('|')
		}
		b.WriteByte('\n')
	}
	// Level activity ruler.
	b.WriteString("lvls ")
	for i, sp := range t.Substeps {
		lbl := fmt.Sprintf("%d", len(sp.ActiveLevels))
		pad := cols[i] - len(lbl)
		if pad < 0 {
			pad = 0
			lbl = lbl[:cols[i]]
		}
		b.WriteString(lbl)
		b.WriteString(strings.Repeat(" ", pad))
		b.WriteByte('|')
	}
	b.WriteByte('\n')
	return b.String()
}
