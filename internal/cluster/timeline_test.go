package cluster

import (
	"math"
	"strings"
	"testing"
)

// fig1Assignment reconstructs the paper's Fig. 1 example: a 1-D mesh of 8
// elements, 4 fine (4 substeps per Δt, i.e. p=4) and 4 coarse, split
// between two processors so that A holds 3 fine + 1 coarse and B holds 1
// fine + 3 coarse. Level 2 is empty (the fine elements jump straight to
// Δt/4, as drawn in the figure).
func fig1Assignment() *Assignment {
	return &Assignment{
		K: 2, NumLevels: 3, PMax: 4, CoarseDt: 1,
		N:     [][]int64{{1, 0, 3}, {3, 0, 1}},
		NHalo: [][]int64{{0, 0, 0}, {0, 0, 0}},
		Vol:   [][]int64{{1, 0, 1}, {1, 0, 1}},
		Peers: [][]int{{1, 0, 1}, {1, 0, 1}},
	}
}

func TestFig1TimelineShowsStall(t *testing.T) {
	cm := CostModel{ElemCost: 1, RanksPerNode: 1} // pure work, no comm/cache
	tl := Trace(fig1Assignment(), cm)
	if len(tl.Substeps) != 4 {
		t.Fatalf("substeps %d, want 4", len(tl.Substeps))
	}
	// Substep 0 activates all levels; substep 1 only the finest.
	if got := tl.Substeps[0].ActiveLevels; len(got) != 3 {
		t.Errorf("substep 0 active levels %v", got)
	}
	if got := tl.Substeps[1].ActiveLevels; len(got) != 1 || got[0] != 3 {
		t.Errorf("substep 1 active levels %v", got)
	}
	// Fig. 1's pathology: processor A (rank 0 holds 3 fine) takes 3x
	// longer than B on fine substeps; B stalls.
	if tl.Substeps[1].Busy[0] <= tl.Substeps[1].Busy[1] {
		t.Errorf("expected rank 0 to dominate fine substeps: %v", tl.Substeps[1].Busy)
	}
	if tl.StallFraction() < 0.2 {
		t.Errorf("stall fraction %.2f, expected the Fig. 1 imbalance to stall >20%%", tl.StallFraction())
	}
	// A level-balanced assignment eliminates the stall.
	bal := &Assignment{
		K: 2, NumLevels: 3, PMax: 4, CoarseDt: 1,
		N:     [][]int64{{2, 0, 2}, {2, 0, 2}},
		NHalo: [][]int64{{0, 0, 0}, {0, 0, 0}},
		Vol:   [][]int64{{0, 0, 0}, {0, 0, 0}},
		Peers: [][]int{{0, 0, 0}, {0, 0, 0}},
	}
	tlb := Trace(bal, cm)
	if tlb.StallFraction() > 1e-9 {
		t.Errorf("balanced assignment stalls %.3f", tlb.StallFraction())
	}
	if tlb.CycleTime >= tl.CycleTime {
		t.Errorf("balanced cycle %.1f not faster than unbalanced %.1f", tlb.CycleTime, tl.CycleTime)
	}
}

func TestTraceConsistentWithSimulate(t *testing.T) {
	m, lv := fixture(t, 0.02)
	part := mustPartition(t, m, lv, 6)
	a, err := NewAssignment(m, lv, part, 6)
	if err != nil {
		t.Fatal(err)
	}
	st := Simulate(a, CPUModel)
	tl := Trace(a, CPUModel)
	if math.Abs(st.Time-tl.CycleTime) > 1e-12*st.Time {
		t.Errorf("Trace cycle %.6g != Simulate %.6g", tl.CycleTime, st.Time)
	}
	if len(tl.Substeps) != a.PMax {
		t.Errorf("substeps %d, want %d", len(tl.Substeps), a.PMax)
	}
}

func TestTimelineRender(t *testing.T) {
	cm := CostModel{ElemCost: 1, RanksPerNode: 1}
	tl := Trace(fig1Assignment(), cm)
	out := tl.Render(60)
	if !strings.Contains(out, "P0") || !strings.Contains(out, "P1") {
		t.Errorf("render missing rank rows:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Errorf("render missing busy/stall marks:\n%s", out)
	}
	if !strings.Contains(out, "stall fraction") {
		t.Errorf("render missing header:\n%s", out)
	}
}
