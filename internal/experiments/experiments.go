// Package experiments regenerates every table and figure of the paper's
// evaluation section (§IV) on the scaled benchmark meshes. Each experiment
// returns a Table whose rows mirror the paper's presentation; cmd/ltsbench
// renders them as text and bench_test.go wraps them as benchmarks.
//
// Per-experiment index (see DESIGN.md):
//
//	Table5  - benchmark mesh inventory (elements, DOF, speedup, levels)
//	Fig7    - load imbalance of MeTiS / PaToH(.05/.01) / SCOTCH-P
//	Fig9    - trench CPU + GPU scaling, 4 partitioners + ideal
//	Fig8    - graph cut and MPI volume of the four partitioners
//	Fig10   - embedding mesh CPU scaling
//	Fig11   - crust mesh CPU scaling
//	Fig12   - D1+D2 cache metric, LTS vs non-LTS
//	Fig13   - large trench scaling (SCOTCH-P)
//	SingleThread - measured single-thread LTS efficiency vs Eq. (9)
package experiments

import (
	"fmt"
	"strings"

	"golts/internal/mesh"
	"golts/internal/partition"
)

// Config controls experiment sizes. The zero value is replaced by
// Default(); Quick() is small enough for unit tests.
type Config struct {
	// TrenchScale etc. scale the benchmark meshes (1.0 = the repo default
	// of roughly 1/10 the paper's element counts).
	TrenchScale    float64
	TrenchBigScale float64
	EmbeddingScale float64
	CrustScale     float64
	// Nodes are the cluster sizes (in nodes; CPUs use 8 ranks/node, GPUs
	// 1) for the Fig. 9-11 scaling experiments.
	Nodes []int
	// BigNodes are the (scaled-down) node counts for Fig. 13.
	BigNodes []int
	// PartKs are the part counts of the Fig. 7/8 partition-quality tables.
	PartKs []int
	// Seed drives all randomised partitioners.
	Seed int64
	// CFL is the Courant number for level assignment.
	CFL float64
	// Workers are the shared-memory rank counts of the ParallelScaling
	// experiment (wall-clock speedup of package parallel).
	Workers []int
}

// Default returns the standard configuration: ~1/10-scale meshes, the
// paper's node counts for Figs. 9-12, and node counts reduced 8x for Fig.
// 13 (the paper's 128-1024 nodes assume a 26M-element mesh).
func Default() Config {
	return Config{
		TrenchScale:    0.3,
		TrenchBigScale: 0.05,
		EmbeddingScale: 0.3,
		CrustScale:     0.3,
		Nodes:          []int{16, 32, 64, 128},
		BigNodes:       []int{16, 32, 64, 128},
		PartKs:         []int{16, 32, 64},
		Seed:           20150525, // IPDPS'15 conference date
		CFL:            0.4,
		Workers:        []int{1, 2, 4, 8},
	}
}

// Quick returns a reduced configuration for tests and smoke benchmarks.
func Quick() Config {
	return Config{
		TrenchScale:    0.02,
		TrenchBigScale: 0.01,
		EmbeddingScale: 0.05,
		CrustScale:     0.05,
		Nodes:          []int{2, 4},
		BigNodes:       []int{2, 4},
		PartKs:         []int{4, 8},
		Seed:           1,
		CFL:            0.4,
		Workers:        []int{1, 2, 4},
	}
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.TrenchScale == 0 {
		c.TrenchScale = d.TrenchScale
	}
	if c.TrenchBigScale == 0 {
		c.TrenchBigScale = d.TrenchBigScale
	}
	if c.EmbeddingScale == 0 {
		c.EmbeddingScale = d.EmbeddingScale
	}
	if c.CrustScale == 0 {
		c.CrustScale = d.CrustScale
	}
	if len(c.Nodes) == 0 {
		c.Nodes = d.Nodes
	}
	if len(c.BigNodes) == 0 {
		c.BigNodes = d.BigNodes
	}
	if len(c.PartKs) == 0 {
		c.PartKs = d.PartKs
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.CFL == 0 {
		c.CFL = d.CFL
	}
	if len(c.Workers) == 0 {
		c.Workers = d.Workers
	}
	return c
}

// Table is a rendered experiment result.
type Table struct {
	Name   string // experiment id, e.g. "fig7"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.Name, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// benchMesh builds one of the four benchmark meshes with levels assigned.
func benchMesh(name string, scale, cfl float64) (*mesh.Mesh, *mesh.Levels, error) {
	gen, ok := mesh.Generators[name]
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown mesh %q", name)
	}
	m := gen(scale)
	lv := mesh.AssignLevels(m, cfl, 0)
	if err := lv.Validate(m); err != nil {
		return nil, nil, err
	}
	return m, lv, nil
}

// partitionFor runs one partitioner configuration.
func partitionFor(m *mesh.Mesh, lv *mesh.Levels, method partition.Method, k int, imb float64, seed int64) ([]int32, error) {
	res, err := partition.PartitionMesh(m, lv, partition.Options{
		K: k, Method: method, Imbalance: imb, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return res.Part, nil
}

// partitionerConfigs are the named configurations compared in Figs. 7-11.
type partitionerConfig struct {
	Label  string
	Method partition.Method
	Imbal  float64
}

var figPartitioners = []partitionerConfig{
	{"MeTiS", partition.Metis, 0.05},
	{"PaToH 0.05", partition.Patoh, 0.05},
	{"PaToH 0.01", partition.Patoh, 0.01},
	{"SCOTCH-P", partition.ScotchP, 0.03},
}
