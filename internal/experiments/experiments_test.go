package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func parseFloatCell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "M")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestTable5Quick(t *testing.T) {
	tb, err := Table5MeshInventory(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("want 4 meshes, got %d", len(tb.Rows))
	}
	wantLevels := map[string]string{"trench": "4", "trench-big": "6", "embedding": "4", "crust": "2"}
	for _, row := range tb.Rows {
		if got := row[4]; got != wantLevels[row[0]] {
			t.Errorf("%s: %s levels, want %s", row[0], got, wantLevels[row[0]])
		}
	}
	if !strings.Contains(tb.Render(), "trench-big") {
		t.Error("render missing mesh name")
	}
}

func TestFig1Quick(t *testing.T) {
	tb, err := Fig1Timeline(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	// The level-oblivious slab stalls at least as much as SCOTCH-P and
	// leaves at least one level fully unbalanced.
	slabStall := parseFloatCell(t, tb.Rows[0][1])
	spStall := parseFloatCell(t, tb.Rows[1][1])
	if slabStall < spStall {
		t.Errorf("slab stall %v%% below scotch-p %v%%", slabStall, spStall)
	}
	if !strings.Contains(tb.Rows[0][3], "100%") {
		t.Errorf("slab per-level imbalance %q should contain a fully unbalanced level", tb.Rows[0][3])
	}
	// SCOTCH-P's cycle is no slower.
	if rel := parseFloatCell(t, tb.Rows[1][2]); rel > 1.0 {
		t.Errorf("scotch-p relative cycle time %v > 1", rel)
	}
}

func TestFig7Quick(t *testing.T) {
	cfg := Quick()
	tb, err := Fig7LoadImbalance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(cfg.PartKs) {
		t.Fatalf("want %d rows, got %d", len(cfg.PartKs), len(tb.Rows))
	}
	// The baseline's per-level imbalance must dwarf every LTS-aware
	// partitioner's total imbalance (the paper's core point).
	for _, row := range tb.Rows {
		base := parseFloatCell(t, row[len(row)-1])
		if base < 50 {
			t.Errorf("baseline per-level imbalance %v%% suspiciously low", base)
		}
	}
}

func TestFig8Quick(t *testing.T) {
	cfg := Quick()
	tb, err := Fig8CommMetrics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(cfg.PartKs)*len(figPartitioners) {
		t.Fatalf("row count %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		cut, err := strconv.ParseFloat(row[2], 64)
		if err != nil || cut <= 0 {
			t.Errorf("bad graph cut %q", row[2])
		}
		vol, err := strconv.ParseFloat(row[3], 64)
		if err != nil || vol <= 0 {
			t.Errorf("bad volume %q", row[3])
		}
	}
}

func TestFig9Quick(t *testing.T) {
	cfg := Quick()
	cpu, gpu, err := Fig9TrenchScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpu.Rows) != len(cfg.Nodes) || len(gpu.Rows) != len(cfg.Nodes) {
		t.Fatalf("row counts %d/%d", len(cpu.Rows), len(gpu.Rows))
	}
	// Normalisation: non-LTS CPU at the first node count is 1.00.
	if got := parseFloatCell(t, cpu.Rows[0][1]); got != 1.00 {
		t.Errorf("baseline normalisation %v, want 1.00", got)
	}
	// LTS beats non-LTS at every point on the CPU panel.
	for _, row := range cpu.Rows {
		non := parseFloatCell(t, row[1])
		scotchp := parseFloatCell(t, row[3])
		if scotchp <= non {
			t.Errorf("LTS (%v) not faster than non-LTS (%v) at %s nodes", scotchp, non, row[0])
		}
	}
	// GPU non-LTS beats CPU non-LTS at equal node counts.
	if g, c := parseFloatCell(t, gpu.Rows[0][1]), parseFloatCell(t, cpu.Rows[0][1]); g <= c {
		t.Errorf("GPU (%v) not faster than CPU (%v)", g, c)
	}
}

func TestFig10And11Quick(t *testing.T) {
	cfg := Quick()
	t10, err := Fig10EmbeddingScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t11, err := Fig11CrustScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Crust's limited speedup: its LTS/non-LTS ratio stays below
	// embedding's at the same node count (1.9x vs 7.9x theoretical).
	embRatio := parseFloatCell(t, t10.Rows[0][3]) / parseFloatCell(t, t10.Rows[0][1])
	crustRatio := parseFloatCell(t, t11.Rows[0][3]) / parseFloatCell(t, t11.Rows[0][1])
	if crustRatio >= embRatio {
		t.Errorf("crust speedup ratio %v not below embedding %v", crustRatio, embRatio)
	}
	if crustRatio < 1.0 || crustRatio > 2.2 {
		t.Errorf("crust LTS ratio %v outside the plausible band around 1.9x", crustRatio)
	}
}

func TestFig12Quick(t *testing.T) {
	cfg := Quick()
	tb, err := Fig12CacheMetric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prevNon := 0.0
	for _, row := range tb.Rows {
		non := parseFloatCell(t, row[1])
		lts := parseFloatCell(t, row[2])
		nonRate := parseFloatCell(t, row[3])
		ltsRate := parseFloatCell(t, row[4])
		if ltsRate <= nonRate {
			t.Errorf("LTS hit rate %v not above non-LTS %v", ltsRate, nonRate)
		}
		if non <= prevNon {
			t.Errorf("hit metric not increasing with node count: %v after %v", non, prevNon)
		}
		prevNon = non
		_ = lts
	}
}

func TestFig13Quick(t *testing.T) {
	cfg := Quick()
	tb, err := Fig13LargeTrench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(cfg.BigNodes) {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	// LTS well above non-LTS everywhere (big theoretical speedup).
	for _, row := range tb.Rows {
		if lts, non := parseFloatCell(t, row[3]), parseFloatCell(t, row[1]); lts < 2*non {
			t.Errorf("large trench LTS %v not well above non-LTS %v", lts, non)
		}
	}
}

func TestSingleThreadEfficiencyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	// Plausibility bar, not a perf bar: a broken LTS active-set
	// implementation collapses to ~10% efficiency, while a loaded shared
	// CI box only shaves a handful of points off a healthy run. Keep the
	// floor well under the quiet-machine ~40-50% and take the best of
	// three measurements so scheduler noise cannot fail a correct build.
	const floor, ceil = 25, 200
	attempts := 3
	var rows [][]string
	for a := 1; ; a++ {
		tb, err := SingleThreadEfficiency(Quick())
		if err != nil {
			t.Fatal(err)
		}
		rows = tb.Rows
		ok := true
		for _, row := range rows {
			if eff := parseFloatCell(t, row[6]); eff < floor || eff > ceil {
				ok = false
			}
		}
		if ok || a == attempts {
			break
		}
		t.Logf("attempt %d outside [%d%%, %d%%]; remeasuring", a, floor, ceil)
	}
	for _, row := range rows {
		eff := parseFloatCell(t, row[6])
		if eff < floor || eff > ceil {
			t.Errorf("%s: measured efficiency %v%% implausible", row[0], eff)
		}
		model := parseFloatCell(t, row[3])
		if model <= 1 {
			t.Errorf("%s: model speedup %v should exceed 1", row[0], model)
		}
	}
}

func TestConvergenceStudyOrders(t *testing.T) {
	tb, err := ConvergenceStudy(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	// Observed orders on the refined rows must be ~2 for both schemes.
	for _, row := range tb.Rows[1:] {
		for _, col := range []int{2, 4} {
			ord := parseFloatCell(t, row[col])
			if ord < 1.7 || ord > 2.4 {
				t.Errorf("observed order %v outside [1.7, 2.4] (row %v)", ord, row)
			}
		}
	}
}

func TestRenderAligned(t *testing.T) {
	tb := &Table{
		Name:   "x",
		Title:  "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n"},
	}
	out := tb.Render()
	if !strings.Contains(out, "== x: t ==") || !strings.Contains(out, "note: n") {
		t.Errorf("render output malformed:\n%s", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c = c.withDefaults()
	if c.TrenchScale == 0 || len(c.Nodes) == 0 || c.Seed == 0 {
		t.Error("withDefaults left zero fields")
	}
}
