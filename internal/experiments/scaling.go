package experiments

import (
	"fmt"

	"golts/internal/cluster"
	"golts/internal/mesh"
	"golts/internal/partition"
)

// scalingSeries simulates one mesh on the CPU or GPU cluster across node
// counts, for each partitioner configuration, normalised to the non-LTS
// CPU performance at the smallest node count — exactly the presentation of
// Figs. 9-11 and 13.
func scalingSeries(m *mesh.Mesh, lv *mesh.Levels, nodes []int, cm cluster.CostModel,
	baseline float64, configs []partitionerConfig, seed int64) (rows [][]string, base float64, err error) {
	model := lv.TheoreticalSpeedup()
	for ni, nd := range nodes {
		k := nd * cm.RanksPerNode
		// Non-LTS reference uses the standard unweighted partitioner.
		nonPart, err := partitionFor(m, lv, partition.Scotch, k, 0.05, seed)
		if err != nil {
			return nil, 0, err
		}
		non, err := cluster.SimulateNonLTS(m, lv, nonPart, k, cm)
		if err != nil {
			return nil, 0, err
		}
		if baseline == 0 && ni == 0 {
			baseline = non.Performance
		}
		row := []string{
			fmt.Sprintf("%d", nd),
			fmt.Sprintf("%.2f", non.Performance/baseline),
		}
		// Ideal LTS: model speedup with perfect scaling from the first
		// node count.
		ideal := model * float64(nd) / float64(nodes[0])
		row = append(row, fmt.Sprintf("%.2f", ideal))
		for _, pc := range configs {
			part, err := partitionFor(m, lv, pc.Method, k, pc.Imbal, seed)
			if err != nil {
				return nil, 0, err
			}
			a, err := cluster.NewAssignment(m, lv, part, k)
			if err != nil {
				return nil, 0, err
			}
			st := cluster.Simulate(a, cm)
			row = append(row, fmt.Sprintf("%.2f", st.Performance/baseline))
		}
		rows = append(rows, row)
	}
	return rows, baseline, nil
}

var scalingConfigs = []partitionerConfig{
	{"SCOTCH-P", partition.ScotchP, 0.03},
	{"PaToH 0.01", partition.Patoh, 0.01},
	{"PaToH 0.05", partition.Patoh, 0.05},
}

func scalingHeader() []string {
	h := []string{"nodes", "non-LTS", "LTS ideal"}
	for _, pc := range scalingConfigs {
		h = append(h, pc.Label)
	}
	return h
}

// Fig9TrenchScaling regenerates Fig. 9: normalized performance of the
// trench mesh on the CPU cluster (8 ranks/node, top panel) and the GPU
// cluster (1 rank/node, bottom panel), all relative to the non-LTS CPU
// run at the smallest node count.
func Fig9TrenchScaling(cfg Config) (cpu, gpu *Table, err error) {
	cfg = cfg.withDefaults()
	m, lv, err := benchMesh("trench", cfg.TrenchScale, cfg.CFL)
	if err != nil {
		return nil, nil, err
	}
	cpu = &Table{
		Name:   "fig9-cpu",
		Title:  fmt.Sprintf("CPU performance, trench mesh (%d elements, %.1fx model speedup)", m.NumElements(), lv.TheoreticalSpeedup()),
		Header: scalingHeader(),
	}
	var base float64
	cpu.Rows, base, err = scalingSeries(m, lv, cfg.Nodes, cluster.CPUModel, 0, scalingConfigs, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	cpu.Notes = append(cpu.Notes,
		"normalised to the non-LTS CPU run at the smallest node count",
		"paper shape: LTS-CPU tracks the ideal curve within ~10%; non-LTS CPU slightly super-linear (cache)")
	gpu = &Table{
		Name:   "fig9-gpu",
		Title:  "GPU performance, trench mesh (vs non-LTS CPU baseline)",
		Header: scalingHeader(),
	}
	gpu.Rows, _, err = scalingSeries(m, lv, cfg.Nodes, cluster.GPUModel, base, scalingConfigs, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	gpu.Notes = append(gpu.Notes,
		"paper shape: non-LTS GPU ~6.9x the CPU baseline at 16 nodes; LTS-GPU starts near the model speedup but loses strong-scaling efficiency to kernel launch overhead on the small fine levels (45% at 128 nodes)")
	return cpu, gpu, nil
}

// Fig10EmbeddingScaling regenerates Fig. 10: embedding mesh CPU scaling.
func Fig10EmbeddingScaling(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m, lv, err := benchMesh("embedding", cfg.EmbeddingScale, cfg.CFL)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "fig10",
		Title:  fmt.Sprintf("CPU performance, embedding mesh (%d elements, %.1fx model speedup)", m.NumElements(), lv.TheoreticalSpeedup()),
		Header: scalingHeader(),
	}
	t.Rows, _, err = scalingSeries(m, lv, cfg.Nodes, cluster.CPUModel, 0, scalingConfigs, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: SCOTCH-P reaches 95% of the 7.9x theoretical speedup at 16 nodes; super-linear non-LTS scaling (123%)")
	return t, nil
}

// Fig11CrustScaling regenerates Fig. 11: crust mesh CPU scaling (limited
// 1.9x speedup).
func Fig11CrustScaling(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m, lv, err := benchMesh("crust", cfg.CrustScale, cfg.CFL)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "fig11",
		Title:  fmt.Sprintf("CPU performance, crust mesh (%d elements, %.1fx model speedup)", m.NumElements(), lv.TheoreticalSpeedup()),
		Header: scalingHeader(),
	}
	t.Rows, _, err = scalingSeries(m, lv, cfg.Nodes, cluster.CPUModel, 0, scalingConfigs, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: PaToH 0.01 and SCOTCH-P nearly identical, 96% scaling efficiency at 128 nodes; the stricter PaToH balance matters most here")
	return t, nil
}

// Fig12CacheMetric regenerates Fig. 12: the D1+D2 cache-hit metric of the
// LTS and non-LTS runs on the trench mesh across node counts (model
// units: hits per second, machine-wide).
func Fig12CacheMetric(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m, lv, err := benchMesh("trench", cfg.TrenchScale, cfg.CFL)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "fig12",
		Title:  "Cache hit metric (D1+D2 analogue), trench mesh",
		Header: []string{"nodes", "non-LTS hits", "LTS hits", "non-LTS hit rate", "LTS hit rate"},
	}
	for _, nd := range cfg.Nodes {
		k := nd * cluster.CPUModel.RanksPerNode
		nonPart, err := partitionFor(m, lv, partition.Scotch, k, 0.05, cfg.Seed)
		if err != nil {
			return nil, err
		}
		non, err := cluster.SimulateNonLTS(m, lv, nonPart, k, cluster.CPUModel)
		if err != nil {
			return nil, err
		}
		ltsPart, err := partitionFor(m, lv, partition.ScotchP, k, 0.03, cfg.Seed)
		if err != nil {
			return nil, err
		}
		a, err := cluster.NewAssignment(m, lv, ltsPart, k)
		if err != nil {
			return nil, err
		}
		lts := cluster.Simulate(a, cluster.CPUModel)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", nd),
			fmt.Sprintf("%.1f", non.Hits/non.Time/1e6),
			fmt.Sprintf("%.1f", lts.Hits/lts.Time/1e6),
			fmt.Sprintf("%.2f", non.HitRate),
			fmt.Sprintf("%.2f", lts.HitRate),
		})
	}
	t.Notes = append(t.Notes,
		"paper Fig. 12: hits rise with node count (smaller working sets) and the LTS version achieves higher utilisation than non-LTS; the absolute craypat units are not reproducible")
	return t, nil
}

// Fig13LargeTrench regenerates Fig. 13: the large trench mesh (6 levels,
// ~21.7x model speedup) with the SCOTCH-P partitioner, CPU cluster. The
// paper runs 128-1024 nodes on 26M elements; at our reduced mesh scale the
// node counts are reduced 8x to keep per-rank element counts comparable.
func Fig13LargeTrench(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m, lv, err := benchMesh("trench-big", cfg.TrenchBigScale, cfg.CFL)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "fig13",
		Title:  fmt.Sprintf("CPU performance, large trench mesh (%d elements, %.1fx model speedup)", m.NumElements(), lv.TheoreticalSpeedup()),
		Header: []string{"nodes", "non-LTS", "LTS ideal", "SCOTCH-P", "LTS scaling eff"},
	}
	model := lv.TheoreticalSpeedup()
	var base, ltsBase float64
	for ni, nd := range cfg.BigNodes {
		k := nd * cluster.CPUModel.RanksPerNode
		nonPart, err := partitionFor(m, lv, partition.Scotch, k, 0.05, cfg.Seed)
		if err != nil {
			return nil, err
		}
		non, err := cluster.SimulateNonLTS(m, lv, nonPart, k, cluster.CPUModel)
		if err != nil {
			return nil, err
		}
		part, err := partitionFor(m, lv, partition.ScotchP, k, 0.03, cfg.Seed)
		if err != nil {
			return nil, err
		}
		a, err := cluster.NewAssignment(m, lv, part, k)
		if err != nil {
			return nil, err
		}
		lts := cluster.Simulate(a, cluster.CPUModel)
		if ni == 0 {
			base = non.Performance
			ltsBase = lts.Performance
		}
		ideal := model * float64(nd) / float64(cfg.BigNodes[0])
		eff := lts.Performance / ltsBase / (float64(nd) / float64(cfg.BigNodes[0])) * 100
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", nd),
			fmt.Sprintf("%.2f", non.Performance/base),
			fmt.Sprintf("%.1f", ideal),
			fmt.Sprintf("%.1f", lts.Performance/base),
			fmt.Sprintf("%.0f%%", eff),
		})
	}
	t.Notes = append(t.Notes,
		"paper Fig. 13: LTS scaling efficiency near 100% until 512 nodes, dropping to 67% at 1024 nodes (93% for non-LTS)",
		"node counts reduced 8x to match the reduced mesh scale (comparable elements per rank)")
	return t, nil
}
