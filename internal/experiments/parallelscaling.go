package experiments

import (
	"fmt"
	"time"

	"golts/internal/lts"
	"golts/internal/parallel"
	"golts/internal/partition"
	"golts/internal/sem"
)

// ParallelScaling measures real wall-clock strong scaling of the
// shared-memory engine: multi-level LTS cycles on the trench mesh,
// executed by package parallel at each configured worker count. Unlike
// the Fig. 9-11 experiments, which evaluate the paper's *model* on
// simulated clusters, every row here is a timed run of the actual
// kernels, so the speedup column reflects the host's core count.
func ParallelScaling(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m, lv, err := benchMesh("trench", cfg.TrenchScale, cfg.CFL)
	if err != nil {
		return nil, err
	}
	op, err := sem.NewAcoustic3D(m, 4, false)
	if err != nil {
		return nil, err
	}
	const cycles = 5
	t := &Table{
		Name:   "parallel",
		Title:  fmt.Sprintf("measured shared-memory LTS scaling (trench, %d elements, %d levels, %d cycles)", m.NumElements(), lv.NumLevels, cycles),
		Header: []string{"workers", "ms/cycle", "Melem-applies/s", "speedup", "msgs/cycle", "volume/cycle"},
	}
	base := 0.0
	for _, w := range cfg.Workers {
		part, err := partition.Assign(m, lv, w, partition.ScotchP, cfg.Seed)
		if err != nil {
			return nil, err
		}
		pop, err := parallel.NewOperator(op, part, w)
		if err != nil {
			return nil, err
		}
		s, err := lts.FromMeshLevels(pop, lv, true)
		if err != nil {
			pop.Close()
			return nil, err
		}
		s.Step() // warm-up: builds nothing (plans are prepared), pages buffers
		st0 := pop.Stats()
		w0 := s.Work.ElemApplies
		t0 := time.Now()
		s.Run(cycles)
		dt := time.Since(t0)
		st1 := pop.Stats()
		pop.Close()
		perCycle := dt.Seconds() / cycles
		if base == 0 {
			base = perCycle
		}
		applies := float64(s.Work.ElemApplies - w0)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(w),
			fmt.Sprintf("%.2f", perCycle*1e3),
			fmt.Sprintf("%.3f", applies/dt.Seconds()/1e6),
			fmt.Sprintf("%.2fx", base/perCycle),
			fmt.Sprint((st1.Messages - st0.Messages) / cycles),
			fmt.Sprint((st1.Volume - st0.Volume) / cycles),
		})
	}
	t.Notes = append(t.Notes,
		"timed runs of the real engine on this host; speedup is vs the first configured worker count",
		fmt.Sprintf("partitioner %s, seed %d", partition.ScotchP, cfg.Seed))
	return t, nil
}
