package experiments

import (
	"fmt"
	"time"

	"golts/internal/lts"
	"golts/internal/mesh"
	"golts/internal/newmark"
	"golts/internal/sem"
)

// SingleThreadEfficiency measures the §II-C claim with real wall-clock
// time: the optimised sequential LTS implementation achieves a large
// fraction (paper: >90%) of the Eq. (9) model speedup over global Newmark.
// This is the one experiment that runs the actual SEM kernels rather than
// the cluster simulator.
func SingleThreadEfficiency(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Name:  "single-thread",
		Title: "Measured single-thread LTS efficiency vs Eq. (9) model (3-D acoustic SEM, degree 4)",
		Header: []string{"mesh", "#elems", "levels", "model speedup", "work speedup",
			"measured speedup", "LTS efficiency"},
	}
	// A miniature trench: graded x-band through a 3-D acoustic box. Sized
	// so both schemes run in seconds.
	// Bands are wide enough that each level's interior dominates its
	// 2-column halo; the paper's application meshes have even larger
	// volume-to-surface ratios, which is where the >90% comes from.
	type tc struct {
		name   string
		levels []int // element columns per x-band, coarse->fine->coarse
	}
	cases := []tc{
		{"mini-trench-3lv", []int{14, 5, 6, 5, 14}},
		{"mini-trench-4lv", []int{14, 4, 4, 6, 4, 4, 14}},
	}
	sizesFor := map[string][]float64{
		"mini-trench-3lv": {1, 0.5, 0.25, 0.5, 1},
		"mini-trench-4lv": {1, 0.5, 0.25, 0.125, 0.25, 0.5, 1},
	}
	for _, c := range cases {
		xc := []float64{0}
		for bi, cnt := range c.levels {
			h := sizesFor[c.name][bi]
			for i := 0; i < cnt; i++ {
				xc = append(xc, xc[len(xc)-1]+h)
			}
		}
		ny, nz := 6, 6
		yc := make([]float64, ny+1)
		zc := make([]float64, nz+1)
		for i := range yc {
			yc[i] = float64(i)
		}
		for i := range zc {
			zc[i] = float64(i)
		}
		m, err := mesh.New(c.name, xc, yc, zc)
		if err != nil {
			return nil, err
		}
		lv := mesh.AssignLevels(m, cfg.CFL/16, 0)
		op, err := sem.NewAcoustic3D(m, 4, false)
		if err != nil {
			return nil, err
		}
		u0 := make([]float64, op.NDof())
		for n := 0; n < op.NumNodes(); n++ {
			x, _, _ := op.NodeCoords(int32(n))
			u0[n] = 1 / (1 + x*x)
		}
		cycles := 6
		// Global Newmark at the fine step.
		g := newmark.New(op, lv.CoarseDt/float64(lv.PMax()))
		if err := g.SetInitial(u0, make([]float64, op.NDof())); err != nil {
			return nil, err
		}
		t0 := time.Now()
		g.Run(cycles * lv.PMax())
		tNewmark := time.Since(t0)
		// Optimised LTS.
		s, err := lts.FromMeshLevels(op, lv, true)
		if err != nil {
			return nil, err
		}
		if err := s.SetInitial(u0, make([]float64, op.NDof())); err != nil {
			return nil, err
		}
		t0 = time.Now()
		s.Run(cycles)
		tLTS := time.Since(t0)
		model := s.ModelSpeedup()
		measured := float64(tNewmark) / float64(tLTS)
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%d", m.NumElements()),
			fmt.Sprintf("%d", lv.NumLevels),
			fmt.Sprintf("%.2f", model),
			fmt.Sprintf("%.2f", s.EffectiveSpeedup()),
			fmt.Sprintf("%.2f", measured),
			fmt.Sprintf("%.0f%%", measured/model*100),
		})
	}
	t.Notes = append(t.Notes,
		"work speedup counts element-steps incl. the halo overhead; measured speedup is wall-clock",
		"paper §II-C: the optimised SPECFEM3D implementation exceeds 90% of the modelled speedup; our halo fraction is larger on these miniature meshes")
	return t, nil
}
