package experiments

import (
	"fmt"

	"golts/internal/partition"
)

// Table5MeshInventory regenerates the paper's Fig. 5 table: element count,
// degrees of freedom (unique degree-4 GLL nodes), theoretical LTS speedup
// (Eq. 9) and number of levels for the four benchmark meshes, at the
// configured scales.
func Table5MeshInventory(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Name:   "table5",
		Title:  "Benchmark meshes in detail (paper Fig. 5, scaled)",
		Header: []string{"Mesh", "#elements", "#DOF", "Theor. LTS speedup", "# of levels", "paper speedup"},
	}
	rows := []struct {
		name  string
		scale float64
		paper string
	}{
		{"trench", cfg.TrenchScale, "6.7"},
		{"trench-big", cfg.TrenchBigScale, "21.7"},
		{"embedding", cfg.EmbeddingScale, "7.9"},
		{"crust", cfg.CrustScale, "1.9"},
	}
	for _, r := range rows {
		m, lv, err := benchMesh(r.name, r.scale, cfg.CFL)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			r.name,
			fmt.Sprintf("%.2gM", float64(m.NumElements())/1e6),
			fmt.Sprintf("%.2gM", float64(m.NumGLLNodes(4))/1e6),
			fmt.Sprintf("%.1f", lv.TheoreticalSpeedup()),
			fmt.Sprintf("%d", lv.NumLevels),
			r.paper,
		})
	}
	t.Notes = append(t.Notes,
		"meshes are scaled to ~1/10 of the paper's element counts; the level structure and speedups are scale-invariant by construction")
	return t, nil
}

// Fig7LoadImbalance regenerates the paper's Fig. 7 table: total work-load
// imbalance (Eq. 21) of the LTS-aware partitioners on the trench mesh.
func Fig7LoadImbalance(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m, lv, err := benchMesh("trench", cfg.TrenchScale, cfg.CFL)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "fig7",
		Title:  fmt.Sprintf("Total load imbalance %% on trench mesh (%d elements)", m.NumElements()),
		Header: []string{"# of parts"},
	}
	for _, pc := range figPartitioners {
		t.Header = append(t.Header, pc.Label)
	}
	t.Header = append(t.Header, "max-level imbalance (SCOTCH baseline)")
	for _, k := range cfg.PartKs {
		row := []string{fmt.Sprintf("%d", k)}
		for _, pc := range figPartitioners {
			part, err := partitionFor(m, lv, pc.Method, k, pc.Imbal, cfg.Seed)
			if err != nil {
				return nil, err
			}
			mt := partition.Evaluate(m, lv, part, k)
			row = append(row, fmt.Sprintf("%.0f%%", mt.TotalImbalance))
		}
		// Baseline column: the single-constraint partitioner balances the
		// cycle total but not the levels (paper Figs. 1/6); report its
		// worst per-level imbalance to show why it fails.
		base, err := partitionFor(m, lv, "scotch", k, 0.05, cfg.Seed)
		if err != nil {
			return nil, err
		}
		mb := partition.Evaluate(m, lv, base, k)
		row = append(row, fmt.Sprintf("%.0f%%", mb.MaxLevelImbalance))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper Fig. 7: MeTiS {34, 88, 89}%, PaToH 0.05 {11, 17, 19}%, PaToH 0.01 {2, 5, 7}%, SCOTCH-P {6, 6, 7}%",
		"expected shape: PaToH 0.01 and SCOTCH-P tight; MeTiS loosest of the multi-constraint tools; baseline per-level imbalance ~100%")
	return t, nil
}

// Fig8CommMetrics regenerates the paper's Fig. 8 table: weighted graph cut
// and total MPI volume per LTS cycle for each partitioner on the trench
// mesh.
func Fig8CommMetrics(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m, lv, err := benchMesh("trench", cfg.TrenchScale, cfg.CFL)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "fig8",
		Title:  fmt.Sprintf("Communication cost metrics on trench mesh (%d elements)", m.NumElements()),
		Header: []string{"# of parts", "partitioner", "graph cut", "MPI volume"},
	}
	for _, k := range cfg.PartKs {
		for _, pc := range figPartitioners {
			part, err := partitionFor(m, lv, pc.Method, k, pc.Imbal, cfg.Seed)
			if err != nil {
				return nil, err
			}
			mt := partition.Evaluate(m, lv, part, k)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", k), pc.Label,
				fmt.Sprintf("%.2e", float64(mt.GraphCut)),
				fmt.Sprintf("%.2e", float64(mt.CommVolume)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper Fig. 8 shape: the hypergraph partitioner wins MPI volume even when it loses graph cut; tighter PaToH balance costs volume",
		"MPI volume is the hypergraph connectivity-1 metric with per-level costs (exact, Eq. 20)")
	return t, nil
}
