package experiments

import (
	"fmt"
	"math"

	"golts/internal/lts"
	"golts/internal/newmark"
	"golts/internal/sem"
)

// ConvergenceStudy verifies the §II-B claim (proved in the companion paper
// [15]) that the multi-level LTS-Newmark scheme preserves the second-order
// convergence of global Newmark: on a graded 1-D mesh with an analytic
// standing-wave solution, both schemes' errors fall by ~4x per halving of
// Δt.
func ConvergenceStudy(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	// Three-level graded bar with a refined middle.
	levels := []uint8{1, 1, 1, 2, 3, 3, 2, 1, 1, 1}
	const h, c, deg = 1.0, 1.0, 5
	xc := []float64{0}
	cs := make([]float64, len(levels))
	rho := make([]float64, len(levels))
	for i, l := range levels {
		xc = append(xc, xc[len(xc)-1]+h/float64(int(1)<<(l-1)))
		cs[i] = c
		rho[i] = 1
	}
	op, err := sem.NewOp1D(xc, cs, rho, deg, sem.FreeBC, sem.FreeBC)
	if err != nil {
		return nil, err
	}
	l := xc[len(xc)-1]
	k := math.Pi / l
	T := 0.75 * l // ωT = 3π/4 keeps the phase error visible
	base := 0.5 * h / c / float64(deg*deg)

	runLTS := func(dt float64) (float64, error) {
		s, err := lts.New(op, levels, 3, dt, true)
		if err != nil {
			return 0, err
		}
		return standingWaveError(op, s.SetInitial, func(steps int) { s.Run(steps) },
			func() []float64 { return s.U }, k, c, dt, T)
	}
	runNewmark := func(dt float64) (float64, error) {
		g := newmark.New(op, dt/4) // global scheme at the fine step Δt/p_max
		return standingWaveError(op, g.SetInitial, func(steps int) { g.Run(steps * 4) },
			func() []float64 { return g.U }, k, c, dt, T)
	}

	t := &Table{
		Name:   "convergence",
		Title:  "Second-order convergence of LTS-Newmark vs global Newmark (graded 1-D bar, 3 levels)",
		Header: []string{"Δt", "LTS error", "LTS order", "Newmark error", "Newmark order"},
	}
	var prevL, prevN float64
	for i := 0; i < 3; i++ {
		dt := base / float64(int(1)<<i)
		el, err := runLTS(dt)
		if err != nil {
			return nil, err
		}
		en, err := runNewmark(dt)
		if err != nil {
			return nil, err
		}
		ordL, ordN := "-", "-"
		if i > 0 {
			ordL = fmt.Sprintf("%.2f", math.Log2(prevL/el))
			ordN = fmt.Sprintf("%.2f", math.Log2(prevN/en))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3e", dt),
			fmt.Sprintf("%.3e", el), ordL,
			fmt.Sprintf("%.3e", en), ordN,
		})
		prevL, prevN = el, en
	}
	t.Notes = append(t.Notes,
		"order = log2(error(Δt)/error(Δt/2)); the companion paper [15] proves both schemes are second order",
		"the global scheme steps at Δt/p_max (its CFL-forced rate); errors are max-norm against the analytic standing wave")
	return t, nil
}

// standingWaveError runs a scheme to time T from the k-th cosine mode and
// returns the max-norm error.
func standingWaveError(op *sem.Op1D, setInitial func(u0, v0 []float64) error,
	run func(steps int), state func() []float64, k, c, dt, T float64) (float64, error) {
	u0 := make([]float64, op.NDof())
	for i := range u0 {
		u0[i] = math.Cos(k * op.NodeX(i))
	}
	if err := setInitial(u0, make([]float64, op.NDof())); err != nil {
		return 0, err
	}
	steps := int(math.Round(T / dt))
	run(steps)
	tEnd := float64(steps) * dt
	maxErr := 0.0
	for i := range u0 {
		want := math.Cos(k*op.NodeX(i)) * math.Cos(c*k*tEnd)
		maxErr = math.Max(maxErr, math.Abs(state()[i]-want))
	}
	return maxErr, nil
}
