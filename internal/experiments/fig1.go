package experiments

import (
	"fmt"
	"strings"

	"golts/internal/cluster"
	"golts/internal/partition"
)

// Fig1Timeline regenerates the paper's Fig. 1: the run-time profile of an
// LTS cycle under a standard (level-oblivious) partition versus a
// level-balanced one. The table reports the stall fraction and cycle time
// of each; the rendered ASCII timelines are attached as notes.
func Fig1Timeline(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m, lv, err := benchMesh("trench", cfg.TrenchScale/8, cfg.CFL)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "fig1",
		Title:  fmt.Sprintf("LTS cycle timeline, trench mesh (%d elements), 2 processors", m.NumElements()),
		Header: []string{"partitioner", "stall fraction", "cycle time (rel)", "per-level imbalance"},
	}
	// The paper's Fig. 1 splits the 1-D domain geometrically so that
	// processor A inherits most of the refined band — a work-balanced but
	// level-oblivious cut. Reproduce it with an x-slab split balanced on
	// total work, then compare with the level-balanced SCOTCH-P partition.
	slab := make([]int32, m.NumElements())
	var cum, half int64
	for e := 0; e < m.NumElements(); e++ {
		half += int64(lv.PFor(e))
	}
	half /= 2
	splitCol := 0
	for i := 0; i < m.NX && cum < half; i++ {
		for j := 0; j < m.NY; j++ {
			for k := 0; k < m.NZ; k++ {
				cum += int64(lv.PFor(m.EIndex(i, j, k)))
			}
		}
		splitCol = i
	}
	for e := 0; e < m.NumElements(); e++ {
		i, _, _ := m.ECoords(e)
		if i > splitCol {
			slab[e] = 1
		}
	}
	var baseTime float64
	for _, pc := range []partitionerConfig{
		{"standard split (Fig. 1)", "", 0},
		{"SCOTCH-P", partition.ScotchP, 0.03},
	} {
		var part []int32
		if pc.Method == "" {
			part = slab
		} else {
			part, err = partitionFor(m, lv, pc.Method, 2, pc.Imbal, cfg.Seed)
			if err != nil {
				return nil, err
			}
		}
		a, err := cluster.NewAssignment(m, lv, part, 2)
		if err != nil {
			return nil, err
		}
		tl := cluster.Trace(a, cluster.CPUModel)
		if baseTime == 0 {
			baseTime = tl.CycleTime
		}
		mt := partition.Evaluate(m, lv, part, 2)
		per := make([]string, len(mt.PerLevelImbalance))
		for i, v := range mt.PerLevelImbalance {
			per[i] = fmt.Sprintf("%.0f%%", v)
		}
		t.Rows = append(t.Rows, []string{
			pc.Label,
			fmt.Sprintf("%.0f%%", 100*tl.StallFraction()),
			fmt.Sprintf("%.2f", tl.CycleTime/baseTime),
			strings.Join(per, " "),
		})
		for _, line := range strings.Split(strings.TrimRight(tl.Render(72), "\n"), "\n") {
			t.Notes = append(t.Notes, pc.Label+": "+line)
		}
	}
	t.Notes = append(t.Notes,
		"paper Fig. 1: the level-oblivious split leaves each processor stalling at every fine substep; balancing each level removes the stalls")
	return t, nil
}
