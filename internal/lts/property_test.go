package lts

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for random 1-D graded meshes and random consistent level
// assignments, the optimised engine equals the reference engine, and both
// equal the dense no-masking oracle. This sweeps level topologies (fine
// regions at boundaries, adjacent jumps > 1, multiple islands) that the
// hand-written cases may miss.
func TestRandomLevelsEnginesAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ne := 4 + rng.Intn(6)
		maxL := 1 + rng.Intn(3)
		levels := make([]uint8, ne)
		has1 := false
		for i := range levels {
			levels[i] = uint8(1 + rng.Intn(maxL))
			if levels[i] == 1 {
				has1 = true
			}
		}
		if !has1 {
			levels[rng.Intn(ne)] = 1
		}
		nlv := 1
		for _, l := range levels {
			if int(l) > nlv {
				nlv = int(l)
			}
		}
		op, lv, _ := graded1D(levels, 1, 1, 3)
		dt := coarseDt(1, 1, 3)
		u0 := make([]float64, op.NDof())
		for i := range u0 {
			u0[i] = rng.NormFloat64()
		}
		ref, err := New(op, lv, nlv, dt, false)
		if err != nil {
			t.Log(err)
			return false
		}
		opt, err := New(op, lv, nlv, dt, true)
		if err != nil {
			t.Log(err)
			return false
		}
		oracle := newDenseOracle(op, lv, nlv, dt)
		copy(oracle.u, u0)
		if err := ref.SetInitial(u0, make([]float64, op.NDof())); err != nil {
			return false
		}
		if err := opt.SetInitial(u0, make([]float64, op.NDof())); err != nil {
			return false
		}
		for n := 0; n < 6; n++ {
			ref.Step()
			opt.Step()
			oracle.step()
		}
		scale := 1.0
		for _, v := range oracle.u {
			scale = math.Max(scale, math.Abs(v))
		}
		return maxAbsDiff(ref.U, oracle.u) < 1e-9*scale &&
			maxAbsDiff(opt.U, oracle.u) < 1e-9*scale &&
			maxAbsDiff(opt.V, ref.V) < 1e-9*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: work accounting identities hold for random level assignments:
// ideal <= actual <= non-LTS, and the model speedup matches Eq. 9 computed
// directly.
func TestWorkIdentitiesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ne := 4 + rng.Intn(12)
		levels := make([]uint8, ne)
		levels[0] = 1
		maxL := 1 + rng.Intn(4)
		for i := 1; i < ne; i++ {
			levels[i] = uint8(1 + rng.Intn(maxL))
		}
		nlv := 1
		for _, l := range levels {
			if int(l) > nlv {
				nlv = int(l)
			}
		}
		op, lv, _ := graded1D(levels, 1, 1, 2)
		s, err := New(op, lv, nlv, 0.01, true)
		if err != nil {
			return false
		}
		ideal := s.IdealElemStepsPerCycle()
		actual := s.ActualElemStepsPerCycle()
		non := s.NonLTSElemStepsPerCycle()
		if !(ideal <= actual && actual <= non*int64(nlv)) {
			return false
		}
		// Eq. 9 directly.
		var sum int64
		for _, l := range levels {
			sum += int64(1) << (l - 1)
		}
		pmax := int64(1) << (nlv - 1)
		want := float64(pmax*int64(ne)) / float64(sum)
		return math.Abs(s.ModelSpeedup()-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the active sets partition correctly — every node appears in
// exactly one levelNodes list and one stepNodesAt list, and stepLvl >=
// nodeLevel.
func TestSetInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ne := 3 + rng.Intn(10)
		levels := make([]uint8, ne)
		levels[0] = 1
		for i := 1; i < ne; i++ {
			levels[i] = uint8(1 + rng.Intn(4))
		}
		nlv := 1
		for _, l := range levels {
			if int(l) > nlv {
				nlv = int(l)
			}
		}
		op, lv, _ := graded1D(levels, 1, 1, 2)
		st, err := buildSets(op, lv, nlv)
		if err != nil {
			return false
		}
		nn := op.NumNodes()
		seenL := make([]int, nn)
		seenS := make([]int, nn)
		for li := 0; li < nlv; li++ {
			for _, n := range st.levelNodes[li] {
				seenL[n]++
			}
			for _, n := range st.stepNodesAt[li] {
				seenS[n]++
			}
		}
		for n := 0; n < nn; n++ {
			if seenL[n] != 1 || seenS[n] != 1 {
				return false
			}
			if st.stepLvl[n] < st.nodeLevel[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
