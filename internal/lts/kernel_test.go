package lts

import (
	"testing"

	"golts/internal/mesh"
	"golts/internal/sem"
)

// TestKernelModesBitwise pins the batched (default) and per-element
// stepping paths bitwise against each other: the batched kernels
// reproduce the per-element floating-point chains exactly, so whole
// trajectories — displacement and staggered velocity, across multi-level
// substepping, sources, and sponge damping — must agree to the last bit.
func TestKernelModesBitwise(t *testing.T) {
	m := mesh.Generators["trench"](0.02)
	lv := mesh.AssignLevels(m, 0.4/16, 0)
	if lv.NumLevels < 2 {
		t.Fatalf("want a multi-level configuration, got %d levels", lv.NumLevels)
	}
	for _, physics := range []string{"acoustic", "elastic"} {
		var op sem.Operator
		switch physics {
		case "acoustic":
			a, err := sem.NewAcoustic3D(m, 4, false)
			if err != nil {
				t.Fatal(err)
			}
			op = a
		case "elastic":
			e, err := sem.NewElastic3D(m, 4, false, 0)
			if err != nil {
				t.Fatal(err)
			}
			op = e
		}
		run := func(k sem.Kernel) *Scheme {
			s, err := FromMeshLevels(op, lv, true)
			if err != nil {
				t.Fatal(err)
			}
			s.Kernel = k
			s.SetSources([]sem.Source{{Dof: op.NDof() / 2, W: sem.Ricker{F0: 4, T0: 0.3}}})
			sigma := make([]float64, op.NumNodes())
			for n := range sigma {
				if n%17 == 0 {
					sigma[n] = 0.4
				}
			}
			s.Sigma = sigma
			s.Run(6)
			return s
		}
		batched := run(sem.KernelBatched)
		scalar := run(sem.KernelPerElement)
		for i := range batched.U {
			if batched.U[i] != scalar.U[i] {
				t.Fatalf("%s: U[%d]: batched %v != per-element %v", physics, i, batched.U[i], scalar.U[i])
			}
			if batched.V[i] != scalar.V[i] {
				t.Fatalf("%s: V[%d]: batched %v != per-element %v", physics, i, batched.V[i], scalar.V[i])
			}
		}
	}
}
