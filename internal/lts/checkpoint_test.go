package lts

import (
	"math"
	"testing"

	"golts/internal/ckpt"
)

// TestSaveRestoreBitwise: stepping k cycles, snapshotting, and finishing
// on a freshly built scheme must be bitwise identical to an
// uninterrupted run — for snapshots at the start, after one cycle,
// mid-run and at the last cycle.
func TestSaveRestoreBitwise(t *testing.T) {
	const total = 12
	build := func() *Scheme {
		op, lv, nl := graded1D([]uint8{1, 2, 3, 3, 2, 1}, 1, 1, 4)
		dt := coarseDt(1, 1, 4)
		s, err := New(op, lv, nl, dt, true)
		if err != nil {
			t.Fatal(err)
		}
		u0 := make([]float64, op.NDof())
		v0 := make([]float64, op.NDof())
		for i := range u0 {
			x := op.NodeX(i)
			u0[i] = math.Sin(math.Pi * x / 4)
			v0[i] = 0.1 * math.Cos(math.Pi*x/4)
		}
		if err := s.SetInitial(u0, v0); err != nil {
			t.Fatal(err)
		}
		return s
	}

	ref := build()
	for n := 0; n < total; n++ {
		ref.Step()
	}

	for _, k := range []int{0, 1, total / 2, total} {
		a := build()
		for n := 0; n < k; n++ {
			a.Step()
		}
		st := a.Save()
		// Mutate the donor afterwards to prove the snapshot is a copy.
		a.Step()

		b := build()
		if err := b.Restore(st); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for n := k; n < total; n++ {
			b.Step()
		}
		if b.Time() != ref.Time() {
			t.Fatalf("k=%d: time %v != %v", k, b.Time(), ref.Time())
		}
		for i := range ref.U {
			if math.Float64bits(b.U[i]) != math.Float64bits(ref.U[i]) ||
				math.Float64bits(b.V[i]) != math.Float64bits(ref.V[i]) {
				t.Fatalf("k=%d: resumed state differs from uninterrupted at dof %d", k, i)
			}
		}
		if b.Work.Cycles != ref.Work.Cycles || b.Work.ElemApplies != ref.Work.ElemApplies {
			t.Fatalf("k=%d: work counters differ: %+v vs %+v", k, b.Work, ref.Work)
		}
	}
}

func TestRestoreValidates(t *testing.T) {
	op, lv, nl := graded1D([]uint8{1, 2, 2, 1}, 1, 1, 4)
	s, err := New(op, lv, nl, coarseDt(1, 1, 4), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(&ckpt.StepperState{Scheme: "newmark"}); err == nil {
		t.Fatal("wrong scheme tag accepted")
	}
	if err := s.Restore(&ckpt.StepperState{Scheme: SchemeName, U: make([]float64, 1), V: make([]float64, 1), PerLevel: make([]int64, nl)}); err == nil {
		t.Fatal("wrong dof count accepted")
	}
	n := op.NDof()
	if err := s.Restore(&ckpt.StepperState{Scheme: SchemeName, U: make([]float64, n), V: make([]float64, n), PerLevel: make([]int64, nl+1)}); err == nil {
		t.Fatal("wrong level count accepted")
	}
}
