package lts

import (
	"fmt"

	"golts/internal/sem"
)

// sets holds the per-level index sets that drive the LTS recursion. All
// level indices here are 0-based (level 0 = coarsest, step Δt; level li
// steps Δt/2^li). The paper's 1-based p-levels map as k = li+1.
//
// Definitions (paper §II-C and Fig. 2):
//
//   - nodeLevel[n]: the finest (max) level of the elements sharing node n.
//     This realises the selection matrices P_k: node n belongs to P_k iff
//     nodeLevel[n] = k. The "gray halo" nodes of Fig. 2 are coarse-element
//     nodes that sit next to fine elements and therefore inherit the fine
//     level.
//   - levelNodes[li]: the P_k node list (nodeLevel == li).
//   - forceElems[li]: elements with at least one P_k node — exactly the
//     elements whose stiffness contributions A·P_k·u can be nonzero.
//   - forceNodes[li]: all nodes of forceElems[li] — the support of A·P_k·u.
//   - stepLvl[n]: the fastest rate at which node n's force can change
//     = max level li such that n ∈ forceNodes[li]. Nodes outside
//     forceNodes[li] for all li >= k see a constant force during level-k
//     substepping and admit a closed-form (quadratic-in-time) update.
//   - stepNodesAt[li]: nodes with stepLvl == li. The active update set of
//     level k is ∪_{li >= k} stepNodesAt[li].
type sets struct {
	numLevels   int
	elemLevel   []uint8 // 0-based per element
	nodeLevel   []uint8
	stepLvl     []uint8
	levelNodes  [][]int32
	forceElems  [][]int32
	forceNodes  [][]int32
	stepNodesAt [][]int32
}

// buildSets computes all index sets from the operator topology and the
// element level assignment (1-based, as produced by mesh.AssignLevels).
func buildSets(op sem.Operator, elemLevel1 []uint8, numLevels int) (*sets, error) {
	ne := op.NumElements()
	if len(elemLevel1) != ne {
		return nil, fmt.Errorf("lts: %d element levels for %d elements", len(elemLevel1), ne)
	}
	if numLevels < 1 || numLevels > 16 {
		return nil, fmt.Errorf("lts: numLevels %d outside [1, 16]", numLevels)
	}
	s := &sets{numLevels: numLevels}
	s.elemLevel = make([]uint8, ne)
	for e, l := range elemLevel1 {
		if l < 1 || int(l) > numLevels {
			return nil, fmt.Errorf("lts: element %d has level %d outside [1, %d]", e, l, numLevels)
		}
		s.elemLevel[e] = l - 1
	}
	nn := op.NumNodes()
	// Element connectivity: read the operator's precomputed flat table
	// when it exposes one (all in-tree operators do), falling back to
	// per-element ElemNodes copies otherwise.
	var nb []int32
	conn, npe := sem.ConnOf(op)
	elemNodes := func(e int) []int32 {
		if conn != nil {
			return conn[e*npe : (e+1)*npe]
		}
		nb = op.ElemNodes(e, nb[:0])
		return nb
	}
	s.nodeLevel = make([]uint8, nn)
	for e := 0; e < ne; e++ {
		le := s.elemLevel[e]
		for _, n := range elemNodes(e) {
			if le > s.nodeLevel[n] {
				s.nodeLevel[n] = le
			}
		}
	}
	// forceMask[n] bit li set <=> n is a node of an element that has a
	// level-li node.
	forceMask := make([]uint16, nn)
	elemForce := make([]uint16, ne) // bitmask of node levels present in e
	for e := 0; e < ne; e++ {
		en := elemNodes(e)
		var m uint16
		for _, n := range en {
			m |= 1 << s.nodeLevel[n]
		}
		elemForce[e] = m
		for _, n := range en {
			forceMask[n] |= m
		}
	}
	s.stepLvl = make([]uint8, nn)
	for n, m := range forceMask {
		l := 0
		for b := m; b > 1; b >>= 1 {
			l++
		}
		s.stepLvl[n] = uint8(l)
	}
	s.levelNodes = make([][]int32, numLevels)
	s.stepNodesAt = make([][]int32, numLevels)
	for n := 0; n < nn; n++ {
		s.levelNodes[s.nodeLevel[n]] = append(s.levelNodes[s.nodeLevel[n]], int32(n))
		s.stepNodesAt[s.stepLvl[n]] = append(s.stepNodesAt[s.stepLvl[n]], int32(n))
	}
	s.forceElems = make([][]int32, numLevels)
	for e := 0; e < ne; e++ {
		for li := 0; li < numLevels; li++ {
			if elemForce[e]&(1<<li) != 0 {
				s.forceElems[li] = append(s.forceElems[li], int32(e))
			}
		}
	}
	s.forceNodes = make([][]int32, numLevels)
	seen := make([]int32, nn)
	for i := range seen {
		seen[i] = -1
	}
	for li := 0; li < numLevels; li++ {
		for _, e := range s.forceElems[li] {
			for _, n := range elemNodes(int(e)) {
				if seen[n] != int32(li) {
					seen[n] = int32(li)
					s.forceNodes[li] = append(s.forceNodes[li], n)
				}
			}
		}
	}
	return s, nil
}

// referenceSets widens the update sets so that every node substeps at every
// level — the full-vector Algorithm 1 semantics, used as the verification
// oracle. Force sets are unchanged (restricting them is mathematically
// lossless).
func (s *sets) referenceSets() {
	all := make([]int32, len(s.stepLvl))
	for i := range all {
		all[i] = int32(i)
	}
	for li := range s.stepNodesAt {
		s.stepNodesAt[li] = nil
	}
	s.stepNodesAt[s.numLevels-1] = all
	for i := range s.stepLvl {
		s.stepLvl[i] = uint8(s.numLevels - 1)
	}
}

// haloElems returns, for level li, how many of forceElems[li] are not
// themselves level-li elements — the halo overhead the optimised
// implementation pays at level interfaces.
func (s *sets) haloElems(li int) int {
	h := 0
	for _, e := range s.forceElems[li] {
		if int(s.elemLevel[e]) != li {
			h++
		}
	}
	return h
}
