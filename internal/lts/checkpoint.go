package lts

import (
	"fmt"

	"golts/internal/ckpt"
)

// SchemeName is the StepperState.Scheme tag of an lts.Scheme.
const SchemeName = "lts"

// Save captures the complete inter-cycle state of the scheme. All
// per-level and shared scratch (zbuf, fbuf, vbuf, usnap, mask, kbuf,
// batch workspaces) is written before it is read within each Step, and
// cycleT is re-anchored at every Step entry, so {U, V, t, n, start}
// plus the work counters fully determine the remaining trajectory:
// restoring the snapshot into a freshly built scheme continues the run
// bitwise identically.
func (s *Scheme) Save() *ckpt.StepperState {
	return &ckpt.StepperState{
		Scheme:      SchemeName,
		T:           s.t,
		N:           s.n,
		Started:     s.start,
		U:           append([]float64(nil), s.U...),
		V:           append([]float64(nil), s.V...),
		ElemApplies: s.Work.ElemApplies,
		PerLevel:    append([]int64(nil), s.Work.PerLevel...),
		Cycles:      s.Work.Cycles,
	}
}

// Restore installs a snapshot previously produced by Save on a scheme
// built from the same operator/levels configuration.
func (s *Scheme) Restore(st *ckpt.StepperState) error {
	if st.Scheme != SchemeName {
		return fmt.Errorf("lts: restore: state is for scheme %q", st.Scheme)
	}
	if len(st.U) != len(s.U) || len(st.V) != len(s.V) {
		return fmt.Errorf("lts: restore: state has %d/%d dofs, scheme has %d",
			len(st.U), len(st.V), len(s.U))
	}
	if len(st.PerLevel) != s.nlv {
		return fmt.Errorf("lts: restore: state has %d levels, scheme has %d",
			len(st.PerLevel), s.nlv)
	}
	copy(s.U, st.U)
	copy(s.V, st.V)
	s.t = st.T
	s.cycleT = st.T // re-anchored at the next Step entry anyway
	s.n = st.N
	s.start = st.Started
	s.Work.ElemApplies = st.ElemApplies
	copy(s.Work.PerLevel, st.PerLevel)
	s.Work.Cycles = st.Cycles
	return nil
}
