// Package lts implements the paper's core contribution: the recursive,
// multi-level local time-stepping Newmark scheme (LTS-Newmark, §II,
// Algorithm 1) for semi-discrete wave equations M ü = -K u + F with
// diagonal mass matrix.
//
// Elements are grouped into levels k = 1..N with substep multipliers
// p_k = 2^(k-1) (Eq. 16); level-k degrees of freedom advance with step
// Δt/p_k, and all levels synchronise every coarse step Δt (one "LTS
// cycle"). The recursion freezes each coarser level's stiffness
// contribution A·P_k·u while the finer levels substep (Eqs. 10-14), then
// reconstructs the staggered velocity from the time-symmetric auxiliary
// solution (the factor-2 update of Eq. 14).
//
// Two engines share the code path:
//
//   - the reference engine (Optimized=false) advances full vectors exactly
//     as Algorithm 1 is written, and
//   - the optimised engine (Optimized=true) restricts substepping to the
//     active node sets (fine regions plus the coarse halo of Fig. 2) and
//     updates far coarse nodes with the exact closed-form quadratic, which
//     is what makes LTS actually save work (§II-C).
//
// Both produce the same trajectories to floating-point roundoff; the test
// suite checks this, plus exact equivalence with global Newmark when only
// one level exists.
package lts

import (
	"fmt"
	"time"

	"golts/internal/mesh"
	"golts/internal/sem"
)

// Work accumulates operation counts for efficiency accounting.
type Work struct {
	// ElemApplies is the total number of element stiffness applications.
	ElemApplies int64
	// PerLevel[li] is the element-application count of level li.
	PerLevel []int64
	// LevelNanos[li] is the cumulative wall time of level li's stiffness
	// kernel calls. Populated only when the scheme's Telemetry flag is
	// set (two monotonic clock reads per apply); zero otherwise.
	LevelNanos []int64
	// Cycles is the number of completed LTS cycles (coarse steps).
	Cycles int64
}

// Scheme is an LTS-Newmark time stepper.
type Scheme struct {
	Op sem.Operator
	// Dt is the coarse (level 1) step: the LTS cycle length.
	Dt float64
	// Optimized selects the active-set engine.
	Optimized bool
	// Sources are point forces; each is injected at its node's level, at
	// that level's local substep times.
	Sources []sem.Source
	// Sigma is an optional per-node sponge damping profile applied to the
	// velocity once per coarse step.
	Sigma []float64
	// Kernel selects the stiffness execution strategy. The zero value is
	// sem.KernelBatched: when the operator supports batching, every
	// substep's A·P_k·u runs as one fused batch over the level's
	// precomputed BatchPlan (bitwise-identical to the per-element path).
	// Set sem.KernelPerElement before stepping to force the per-element
	// reference path.
	Kernel sem.Kernel
	// Telemetry enables per-level kernel wall-time accounting in
	// Work.LevelNanos. Off by default: the hot path then carries one
	// predictable branch and no clock reads.
	Telemetry bool

	// U is the displacement at t_n; V the velocity at t_{n-1/2}.
	U, V []float64
	// Work holds operation counters.
	Work Work

	sets   *sets
	nlv    int
	t      float64
	cycleT float64 // anchor t_n of the cycle in progress (source symmetrization)
	n      int64
	start  bool

	// Per-level scratch (indexed by 0-based level):
	zbuf  [][]float64 // A P_k u (support forceNodes[li])
	fbuf  [][]float64 // accumulated frozen force through level li
	vbuf  [][]float64 // auxiliary staggered velocity of level li
	usnap [][]float64 // parent-field snapshot for the factor-2 update
	// Shared scratch with all-zero invariants between uses:
	mask []float64   // masked copy of u (support levelNodes[li])
	kbuf []float64   // stiffness accumulation (support forceNodes[li])
	scr  sem.Scratch // kernel scratch: steady-state Step() allocates nothing
	// Batched-kernel state: one plan per level (the per-level element sets
	// are stable for the scheme's lifetime) and one owned workspace, built
	// lazily on the first batched apply so KernelPerElement schemes never
	// pay the plans' memory.
	batch      sem.BatchKernel
	bplans     []sem.BatchPlan
	bscr       sem.BatchScratch
	batchTried bool
	// Diagnostic scratch, built lazily by Energy:
	energy *sem.Restriction // all-elements restriction
	ebuf   []float64        // Energy work buffer (all-zero between uses)

	srcLevel []uint8 // 0-based node level of each source's node
}

// New builds an LTS scheme. elemLevel holds 1-based p-levels per element
// (level k steps with Δt/2^(k-1)); dt is the coarse step.
func New(op sem.Operator, elemLevel []uint8, numLevels int, dt float64, optimized bool) (*Scheme, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("lts: dt must be positive, got %g", dt)
	}
	st, err := buildSets(op, elemLevel, numLevels)
	if err != nil {
		return nil, err
	}
	if !optimized {
		st.referenceSets()
	}
	nd := op.NDof()
	s := &Scheme{
		Op: op, Dt: dt, Optimized: optimized,
		U: make([]float64, nd), V: make([]float64, nd),
		sets: st, nlv: numLevels,
		mask: make([]float64, nd), kbuf: make([]float64, nd),
	}
	// Announce the per-level force-element lists to parallel backends: for
	// a parallel.PartitionedOperator these become the per-level activation
	// masks (which ranks wake at each substep) plus merge plans, built once
	// here instead of on the first substep of every level. (The batched
	// kernel's per-level BatchPlans are built lazily by ensureBatch on the
	// first batched apply, so per-element schemes never hold them.)
	for li := 0; li < numLevels; li++ {
		sem.Prepare(op, st.forceElems[li])
	}
	s.Work.PerLevel = make([]int64, numLevels)
	s.Work.LevelNanos = make([]int64, numLevels)
	s.zbuf = make([][]float64, numLevels)
	s.fbuf = make([][]float64, numLevels)
	s.vbuf = make([][]float64, numLevels)
	s.usnap = make([][]float64, numLevels)
	for li := 0; li < numLevels; li++ {
		s.zbuf[li] = make([]float64, nd)
		s.fbuf[li] = make([]float64, nd)
		s.vbuf[li] = make([]float64, nd)
		s.usnap[li] = make([]float64, nd)
	}
	return s, nil
}

// FromMeshLevels builds a scheme directly from a mesh level assignment,
// using its coarse step.
func FromMeshLevels(op sem.Operator, lv *mesh.Levels, optimized bool) (*Scheme, error) {
	return New(op, lv.Lvl, lv.NumLevels, lv.CoarseDt, optimized)
}

// SetInitial sets u(0) and v(0), both at t = 0. Must precede stepping.
func (s *Scheme) SetInitial(u0, v0 []float64) error {
	if s.start {
		return fmt.Errorf("lts: SetInitial after stepping started")
	}
	if len(u0) != len(s.U) || len(v0) != len(s.V) {
		return fmt.Errorf("lts: initial condition length mismatch")
	}
	copy(s.U, u0)
	copy(s.V, v0)
	return nil
}

// SetSources installs point sources (must be called before stepping so the
// per-source levels can be resolved).
func (s *Scheme) SetSources(src []sem.Source) {
	s.Sources = src
	s.srcLevel = make([]uint8, len(src))
	nc := s.Op.Comps()
	for i, sc := range src {
		s.srcLevel[i] = s.sets.nodeLevel[sc.Dof/nc]
	}
}

// Time returns the simulation time t_n.
func (s *Scheme) Time() float64 { return s.t }

// CycleCount returns the number of completed coarse steps.
func (s *Scheme) CycleCount() int64 { return s.n }

// NumLevels returns the number of LTS levels.
func (s *Scheme) NumLevels() int { return s.nlv }

// dtAt returns the substep of 0-based level li: Δt / 2^li.
func (s *Scheme) dtAt(li int) float64 { return s.Dt / float64(int64(1)<<uint(li)) }

// applyAP computes dst = A·P_li·u - M⁻¹F_li(t) on the support of level li:
// the input is masked to the level's P nodes, the stiffness restricted to
// the level's force elements, and sources living on level-li nodes are
// injected at local time t. dst is fully overwritten on forceNodes[li] and
// untouched (zero by invariant) elsewhere.
func (s *Scheme) applyAP(li int, u []float64, t float64, dst []float64) {
	nc := s.Op.Comps()
	minv := s.Op.MInv()
	// Mask input to P_li nodes.
	for _, n := range s.sets.levelNodes[li] {
		for c := 0; c < nc; c++ {
			s.mask[int(n)*nc+c] = u[int(n)*nc+c]
		}
	}
	var kstart time.Time
	if s.Telemetry {
		kstart = time.Now()
	}
	if s.Kernel == sem.KernelBatched && s.ensureBatch() {
		s.batch.AddKuBatch(s.kbuf, s.mask, s.bplans[li], &s.bscr)
	} else {
		s.Op.AddKuScratch(s.kbuf, s.mask, s.sets.forceElems[li], &s.scr)
	}
	if s.Telemetry {
		s.Work.LevelNanos[li] += time.Since(kstart).Nanoseconds()
	}
	s.Work.ElemApplies += int64(len(s.sets.forceElems[li]))
	s.Work.PerLevel[li] += int64(len(s.sets.forceElems[li]))
	for _, n := range s.sets.forceNodes[li] {
		mi := minv[n]
		for c := 0; c < nc; c++ {
			d := int(n)*nc + c
			dst[d] = mi * s.kbuf[d]
			s.kbuf[d] = 0
		}
	}
	// Restore the all-zero invariant of the mask buffer.
	for _, n := range s.sets.levelNodes[li] {
		for c := 0; c < nc; c++ {
			s.mask[int(n)*nc+c] = 0
		}
	}
	// Sources on this level enter with a minus sign: the schemes step with
	// v -= δ (F_frozen + A P u - M⁻¹F_src). The auxiliary solves of the
	// LTS recursion compute the time-symmetric (even) part of the
	// evolution about the cycle anchor t_n, so the source must enter as
	// its even extension ½(f(t_n+ξ) + f(t_n-ξ)) (Diaz & Grote's source
	// treatment); this preserves second-order accuracy. At the top level
	// ξ = 0 and the expression reduces to f(t_n).
	for i, sc := range s.Sources {
		if int(s.srcLevel[i]) == li {
			xi := t - s.cycleT
			amp := 0.5 * (sc.W.Amp(s.cycleT+xi) + sc.W.Amp(s.cycleT-xi))
			dst[sc.Dof] -= amp * minv[sc.Dof/nc]
		}
	}
}

// ensureBatch reports whether the batched kernel is usable, building the
// per-level BatchPlans on first call (one bool check afterwards). Lazy
// construction keeps KernelPerElement schemes from ever holding the
// plans' packed constants.
func (s *Scheme) ensureBatch() bool {
	if !s.batchTried {
		s.batchTried = true
		if bk, ok := s.Op.(sem.BatchKernel); ok {
			plans := make([]sem.BatchPlan, s.nlv)
			usable := true
			for li := 0; li < s.nlv; li++ {
				if plans[li] = bk.NewBatchPlan(s.sets.forceElems[li]); plans[li] == nil {
					usable = false // wrapper whose inner operator cannot batch
					break
				}
			}
			if usable {
				s.batch, s.bplans = bk, plans
			}
		}
	}
	return s.batch != nil
}

// eachStepNode calls f for every dof in the active update set of level li
// (nodes with stepLvl >= li). Kept for tests and non-hot paths; the
// stepping loops below are specialised inline for speed.
func (s *Scheme) eachStepNode(li int, f func(d int)) {
	nc := s.Op.Comps()
	for j := li; j < s.nlv; j++ {
		for _, n := range s.sets.stepNodesAt[j] {
			base := int(n) * nc
			for c := 0; c < nc; c++ {
				f(base + c)
			}
		}
	}
}

// advance performs the two level-li substeps that make up one step of
// level li-1, operating on s.U in place (the auxiliary field ũ of Eqs.
// 11/17). tStart is the local time at entry. On return, nodes with
// stepLvl >= li-1 carry the field advanced by Δt_{li-1}.
func (s *Scheme) advance(li int, tStart float64) {
	dt := s.dtAt(li)
	last := li == s.nlv-1
	v := s.vbuf[li]
	f := s.fbuf[li-1]
	nc := s.Op.Comps()
	u := s.U
	for m := 0; m < 2; m++ {
		tm := tStart + float64(m)*dt
		s.applyAP(li, u, tm, s.zbuf[li])
		z := s.zbuf[li]
		if last {
			// Finest level: plain leap-frog substeps against the frozen
			// coarser forces (innermost loop of Algorithm 1). The
			// auxiliary velocity restarts from v(0) = 0, so the first
			// substep is the half-step Taylor start.
			if m == 0 {
				for j := li; j < s.nlv; j++ {
					for _, n := range s.sets.stepNodesAt[j] {
						for d := int(n) * nc; d < int(n)*nc+nc; d++ {
							v[d] = -dt / 2 * (f[d] + z[d])
							u[d] += dt * v[d]
						}
					}
				}
			} else {
				for j := li; j < s.nlv; j++ {
					for _, n := range s.sets.stepNodesAt[j] {
						for d := int(n) * nc; d < int(n)*nc+nc; d++ {
							v[d] -= dt * (f[d] + z[d])
							u[d] += dt * v[d]
						}
					}
				}
			}
		} else {
			// Intermediate level: freeze this level's contribution, let
			// the finer levels advance one Δt_li, then reconstruct the
			// staggered velocity from the time-symmetric solution
			// (Eq. 14 / the ṽ update of Algorithm 1).
			us := s.usnap[li]
			fl := s.fbuf[li]
			for j := li; j < s.nlv; j++ {
				for _, n := range s.sets.stepNodesAt[j] {
					for d := int(n) * nc; d < int(n)*nc+nc; d++ {
						fl[d] = f[d] + z[d]
						us[d] = u[d]
					}
				}
			}
			s.advance(li+1, tm)
			if m == 0 {
				for j := li; j < s.nlv; j++ {
					for _, n := range s.sets.stepNodesAt[j] {
						for d := int(n) * nc; d < int(n)*nc+nc; d++ {
							v[d] = (u[d] - us[d]) / dt
							u[d] = us[d] + dt*v[d]
						}
					}
				}
			} else {
				for j := li; j < s.nlv; j++ {
					for _, n := range s.sets.stepNodesAt[j] {
						for d := int(n) * nc; d < int(n)*nc+nc; d++ {
							v[d] += 2 * (u[d] - us[d]) / dt
							u[d] = us[d] + dt*v[d]
						}
					}
				}
			}
		}
	}
	// Far coarse nodes of the parent's active set saw a constant force f
	// during both substeps; their evolution from v(0)=0 is exactly
	// quadratic: u -= (2 dt)²/2 · f. This closed form is what the
	// optimised engine saves; with reference sets the list is empty at
	// every level except the finest, reproducing full-vector Algorithm 1.
	dur := 2 * dt
	half := dur * dur / 2
	for _, n := range s.sets.stepNodesAt[li-1] {
		base := int(n) * nc
		for c := 0; c < nc; c++ {
			u[base+c] -= half * f[base+c]
		}
	}
}

// Step advances one LTS cycle (one coarse Δt).
func (s *Scheme) Step() {
	nd := s.Op.NDof()
	s.cycleT = s.t
	if s.nlv == 1 {
		// Degenerate single-level case: global leap-frog, identical
		// arithmetic to package newmark.
		s.applyAP(0, s.U, s.t, s.zbuf[0])
		z := s.zbuf[0]
		dt := s.Dt
		if !s.start {
			for d := 0; d < nd; d++ {
				s.V[d] -= dt / 2 * z[d]
			}
			s.start = true
		} else {
			for d := 0; d < nd; d++ {
				s.V[d] -= dt * z[d]
			}
		}
		s.damp()
		for d := 0; d < nd; d++ {
			s.U[d] += dt * s.V[d]
		}
		s.t += s.Dt
		s.n++
		s.Work.Cycles++
		return
	}
	// w = A P_1 u_n (+ level-1 sources), frozen for the whole cycle.
	s.applyAP(0, s.U, s.t, s.zbuf[0])
	us := s.usnap[0]
	copy(us, s.U)
	copy(s.fbuf[0], s.zbuf[0])
	s.advance(1, s.t)
	dtInv := 1 / s.Dt
	if !s.start {
		// First cycle: v(0) is unstaggered; u_1 = ũ(Δt) + Δt v(0).
		for d := 0; d < nd; d++ {
			s.V[d] += (s.U[d] - us[d]) * dtInv
		}
		s.start = true
	} else {
		for d := 0; d < nd; d++ {
			s.V[d] += 2 * (s.U[d] - us[d]) * dtInv
		}
	}
	s.damp()
	for d := 0; d < nd; d++ {
		s.U[d] = us[d] + s.Dt*s.V[d]
	}
	s.t += s.Dt
	s.n++
	s.Work.Cycles++
}

func (s *Scheme) damp() {
	if s.Sigma == nil {
		return
	}
	nc := s.Op.Comps()
	for n, sg := range s.Sigma {
		if sg == 0 {
			continue
		}
		fac := 1 / (1 + sg*s.Dt)
		for c := 0; c < nc; c++ {
			s.V[n*nc+c] *= fac
		}
	}
}

// Run advances n cycles.
func (s *Scheme) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Energy returns the instantaneous discrete energy ½vᵀMv + ½uᵀKu. The
// all-elements restriction and its work buffer are cached on first use,
// so repeated calls allocate nothing (the kbuf all-zero invariant of the
// stepping path is untouched).
func (s *Scheme) Energy() float64 {
	if s.energy == nil {
		s.energy = sem.NewRestriction(s.Op, sem.AllElements(s.Op))
		s.ebuf = make([]float64, s.Op.NDof())
	}
	return s.energy.Energy(s.Op, s.U, s.V, s.ebuf, &s.scr)
}
