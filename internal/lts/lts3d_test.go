package lts

import (
	"math"
	"testing"

	"golts/internal/mesh"
	"golts/internal/newmark"
	"golts/internal/sem"
)

// graded3D builds a small 3-D acoustic setup with a refined x-band, and
// returns the operator and level assignment.
func graded3D(t testing.TB) (*sem.Acoustic3D, *mesh.Levels, *mesh.Mesh) {
	t.Helper()
	// 6 columns: sizes {1, 1, 0.5, 0.25, 1, 1} -> levels {1,1,2,3,1,1}.
	xc := []float64{0, 1, 2, 2.5, 2.75, 3.75, 4.75}
	yc := []float64{0, 1, 2, 3}
	zc := []float64{0, 1, 2, 3}
	m, err := mesh.New("graded3d", xc, yc, zc)
	if err != nil {
		t.Fatal(err)
	}
	op, err := sem.NewAcoustic3D(m, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	lv := mesh.AssignLevels(m, 0.3/16, 0) // CFL scaled for degree-4 GLL spacing
	if err := lv.Validate(m); err != nil {
		t.Fatal(err)
	}
	if lv.NumLevels != 3 {
		t.Fatalf("expected 3 levels, got %d", lv.NumLevels)
	}
	return op, lv, m
}

// TestLTS3DMatchesGlobalNewmark: LTS on the graded 3-D mesh and global
// Newmark at the fine step approximate the same solution; their difference
// after a fixed simulated time must be small compared to the field.
func TestLTS3DMatchesGlobalNewmark(t *testing.T) {
	op, lv, _ := graded3D(t)
	s, err := FromMeshLevels(op, lv, true)
	if err != nil {
		t.Fatal(err)
	}
	fineDt := lv.CoarseDt / float64(lv.PMax())
	g := newmark.New(op, fineDt)
	u0 := make([]float64, op.NDof())
	for n := 0; n < op.NumNodes(); n++ {
		x, y, z := op.NodeCoords(int32(n))
		dx, dy, dz := x-2.4, y-1.5, z-1.5
		u0[n] = math.Exp(-1.5 * (dx*dx + dy*dy + dz*dz))
	}
	v0 := make([]float64, op.NDof())
	if err := s.SetInitial(u0, v0); err != nil {
		t.Fatal(err)
	}
	if err := g.SetInitial(u0, v0); err != nil {
		t.Fatal(err)
	}
	cycles := 24
	s.Run(cycles)
	g.Run(cycles * lv.PMax())
	if math.Abs(s.Time()-g.Time()) > 1e-12 {
		t.Fatalf("time mismatch: %v vs %v", s.Time(), g.Time())
	}
	scale, diff := 0.0, 0.0
	for i := range s.U {
		scale = math.Max(scale, math.Abs(g.U[i]))
		diff = math.Max(diff, math.Abs(s.U[i]-g.U[i]))
	}
	// Both schemes are O(Δt²) accurate; their difference is bounded by the
	// coarse-step truncation error.
	if diff > 0.02*scale {
		t.Errorf("LTS vs Newmark difference %v (scale %v)", diff, scale)
	}
}

// TestLTS3DOptimizedMatchesReference on the 3-D mesh.
func TestLTS3DOptimizedMatchesReference(t *testing.T) {
	op, lv, _ := graded3D(t)
	mk := func(optimized bool) *Scheme {
		s, err := FromMeshLevels(op, lv, optimized)
		if err != nil {
			t.Fatal(err)
		}
		u0 := make([]float64, op.NDof())
		for n := 0; n < op.NumNodes(); n++ {
			x, y, z := op.NodeCoords(int32(n))
			u0[n] = math.Sin(x) * math.Cos(0.7*y) * math.Cos(0.5*z)
		}
		if err := s.SetInitial(u0, make([]float64, op.NDof())); err != nil {
			t.Fatal(err)
		}
		return s
	}
	ref, opt := mk(false), mk(true)
	ref.Run(10)
	opt.Run(10)
	scale := 0.0
	for _, v := range ref.U {
		scale = math.Max(scale, math.Abs(v))
	}
	if d := maxAbsDiff(ref.U, opt.U); d > 1e-10*scale {
		t.Errorf("optimized differs from reference by %v (scale %v)", d, scale)
	}
	// The optimised engine must do strictly less work per cycle than the
	// full-vector non-LTS scheme would.
	if opt.ActualElemStepsPerCycle() >= opt.NonLTSElemStepsPerCycle() {
		t.Errorf("optimised LTS does %d elem-steps vs %d non-LTS",
			opt.ActualElemStepsPerCycle(), opt.NonLTSElemStepsPerCycle())
	}
}

// TestLTS3DSourceSeismogram: a Ricker source inside the fine region
// produces nearly identical seismograms under LTS and global Newmark.
func TestLTS3DSourceSeismogram(t *testing.T) {
	op, lv, _ := graded3D(t)
	src := sem.Source{
		Dof: int(op.ClosestNode(2.6, 1.5, 1.5)),
		W:   sem.Ricker{F0: 2.5, T0: 0.5},
	}
	rcvDof := int(op.ClosestNode(1.0, 1.0, 1.0))

	s, err := FromMeshLevels(op, lv, true)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSources([]sem.Source{src})
	fineDt := lv.CoarseDt / float64(lv.PMax())
	g := newmark.New(op, fineDt)
	g.Sources = []sem.Source{src}

	cycles := 170 // ~3.2 time units: wavelet (t0=0.5) plus ~1.75 travel time
	ltsRec := make([]float64, 0, cycles)
	newRec := make([]float64, 0, cycles)
	for i := 0; i < cycles; i++ {
		s.Step()
		ltsRec = append(ltsRec, s.U[rcvDof])
		g.Run(lv.PMax())
		newRec = append(newRec, g.U[rcvDof])
	}
	peak, rms, rmsDiff := 0.0, 0.0, 0.0
	for i, v := range newRec {
		peak = math.Max(peak, math.Abs(v))
		rms += v * v
		d := ltsRec[i] - v
		rmsDiff += d * d
	}
	if peak == 0 {
		t.Fatal("no signal arrived at receiver")
	}
	// Both schemes carry O(Δt²) truncation error at the coarse step, so
	// they agree to that accuracy, not exactly.
	for i := range ltsRec {
		if math.Abs(ltsRec[i]-newRec[i]) > 0.10*peak {
			t.Fatalf("seismogram sample %d: LTS %v vs Newmark %v (peak %v)",
				i, ltsRec[i], newRec[i], peak)
		}
	}
	if math.Sqrt(rmsDiff/rms) > 0.05 {
		t.Errorf("relative RMS seismogram misfit %.4f, want < 0.05", math.Sqrt(rmsDiff/rms))
	}
}

// TestLTSElastic3D: the scheme also runs on the 3-component elastic
// operator and stays consistent between engines.
func TestLTSElastic3D(t *testing.T) {
	xc := []float64{0, 1, 2, 2.5, 3.5}
	m, err := mesh.New("el", xc, []float64{0, 1, 2}, []float64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	op, err := sem.NewElastic3D(m, 3, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	lv := mesh.AssignLevels(m, 0.3/9, 0)
	if lv.NumLevels != 2 {
		t.Fatalf("want 2 levels, got %d", lv.NumLevels)
	}
	mk := func(optimized bool) *Scheme {
		s, err := FromMeshLevels(op, lv, optimized)
		if err != nil {
			t.Fatal(err)
		}
		u0 := make([]float64, op.NDof())
		for n := 0; n < op.NumNodes(); n++ {
			x, y, z := op.NodeCoords(int32(n))
			r := math.Exp(-2 * ((x-2.2)*(x-2.2) + (y-1)*(y-1) + (z-1)*(z-1)))
			u0[3*n] = r
			u0[3*n+1] = 0.5 * r
		}
		if err := s.SetInitial(u0, make([]float64, op.NDof())); err != nil {
			t.Fatal(err)
		}
		return s
	}
	ref, opt := mk(false), mk(true)
	ref.Run(8)
	opt.Run(8)
	scale := 0.0
	for _, v := range ref.U {
		scale = math.Max(scale, math.Abs(v))
	}
	if d := maxAbsDiff(ref.U, opt.U); d > 1e-10*scale {
		t.Errorf("elastic optimized differs from reference by %v (scale %v)", d, scale)
	}
	// Stability over a longer run.
	opt.Run(200)
	for _, v := range opt.U {
		if math.IsNaN(v) {
			t.Fatal("elastic LTS produced NaN")
		}
	}
}

func BenchmarkLTS3DCycleVsNewmark(b *testing.B) {
	op, lv, _ := graded3D(b)
	s, err := FromMeshLevels(op, lv, true)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("lts-cycle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	})
	g := newmark.New(op, lv.CoarseDt/float64(lv.PMax()))
	b.Run("newmark-equivalent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Run(lv.PMax())
		}
	})
}
