package lts

// Work accounting: the paper's speedup model (Eq. 9) counts one unit of
// work per element per substep. The optimised engine additionally applies
// the stiffness of halo elements (coarse elements bordering finer nodes,
// the gray region of Fig. 2) at the finer rate, which is the overhead that
// keeps measured single-thread efficiency below 100% (§II-C reports >90%).

// IdealElemStepsPerCycle returns Σ_k p_k n_k: the element-steps per coarse
// Δt that a perfect LTS implementation would perform.
func (s *Scheme) IdealElemStepsPerCycle() int64 {
	var w int64
	for _, l := range s.sets.elemLevel {
		w += int64(1) << uint(l)
	}
	return w
}

// ActualElemStepsPerCycle returns the element-steps per coarse Δt this
// scheme performs: every level applies its force elements (own + halo)
// p_k times per cycle.
func (s *Scheme) ActualElemStepsPerCycle() int64 {
	var w int64
	for li := 0; li < s.nlv; li++ {
		w += int64(len(s.sets.forceElems[li])) << uint(li)
	}
	return w
}

// NonLTSElemStepsPerCycle returns p_N * numElements: the cost of the
// global scheme over the same simulated time Δt.
func (s *Scheme) NonLTSElemStepsPerCycle() int64 {
	return int64(s.Op.NumElements()) << uint(s.nlv-1)
}

// Efficiency returns ideal/actual element-steps: 1.0 means the
// implementation pays no halo overhead. The paper reports >90% for its
// optimised SPECFEM3D implementation.
func (s *Scheme) Efficiency() float64 {
	a := s.ActualElemStepsPerCycle()
	if a == 0 {
		return 1
	}
	return float64(s.IdealElemStepsPerCycle()) / float64(a)
}

// ModelSpeedup evaluates the paper's Eq. (9) speedup model for this level
// assignment.
func (s *Scheme) ModelSpeedup() float64 {
	return float64(s.NonLTSElemStepsPerCycle()) / float64(s.IdealElemStepsPerCycle())
}

// EffectiveSpeedup returns the work-based speedup this scheme actually
// achieves over the global scheme: non-LTS cost / actual cost.
func (s *Scheme) EffectiveSpeedup() float64 {
	return float64(s.NonLTSElemStepsPerCycle()) / float64(s.ActualElemStepsPerCycle())
}

// HaloElems returns, per level, the number of force elements that belong
// to a coarser level (recomputed at the finer rate purely for coupling).
func (s *Scheme) HaloElems() []int {
	out := make([]int, s.nlv)
	for li := range out {
		out[li] = s.sets.haloElems(li)
	}
	return out
}

// LevelNodeCounts returns the size of each P_k node set.
func (s *Scheme) LevelNodeCounts() []int {
	out := make([]int, s.nlv)
	for li := range out {
		out[li] = len(s.sets.levelNodes[li])
	}
	return out
}

// ForceElemCounts returns the per-level force-element list sizes.
func (s *Scheme) ForceElemCounts() []int {
	out := make([]int, s.nlv)
	for li := range out {
		out[li] = len(s.sets.forceElems[li])
	}
	return out
}
