package lts

import (
	"testing"

	"golts/internal/mesh"
	"golts/internal/race"
	"golts/internal/sem"
)

// TestStepZeroAllocs asserts that a warmed-up multi-level LTS cycle on a
// sequential operator performs zero heap allocations: the kernel scratch,
// the per-level buffers, and the index sets are all precomputed, so the
// steady-state stepping loop never touches the allocator.
func TestStepZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	m := mesh.Generators["trench"](0.02)
	lv := mesh.AssignLevels(m, 0.4/16, 0)
	if lv.NumLevels < 2 {
		t.Fatalf("want a multi-level configuration, got %d levels", lv.NumLevels)
	}
	op, err := sem.NewAcoustic3D(m, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, optimized := range []bool{false, true} {
		for _, kern := range []sem.Kernel{sem.KernelBatched, sem.KernelPerElement} {
			s, err := FromMeshLevels(op, lv, optimized)
			if err != nil {
				t.Fatal(err)
			}
			s.Kernel = kern
			// Telemetry must stay free on the warm path: the per-level
			// counters are preallocated and the monotonic clock reads do
			// not allocate.
			s.Telemetry = true
			s.SetSources([]sem.Source{{Dof: 3, W: sem.Ricker{F0: 1, T0: 1.2}}})
			s.Step() // warm-up: scratch grows, first-cycle branch taken
			s.Step()
			if n := testing.AllocsPerRun(5, s.Step); n != 0 {
				t.Errorf("optimized=%v kernel=%v: Step allocates %v per cycle, want 0", optimized, kern, n)
			}
			// The Energy diagnostic caches its all-elements restriction and
			// work buffer on first use, so warm calls allocate nothing either.
			s.Energy()
			if n := testing.AllocsPerRun(5, func() { s.Energy() }); n != 0 {
				t.Errorf("optimized=%v kernel=%v: Energy allocates %v per call, want 0", optimized, kern, n)
			}
		}
	}
}
