package lts

import (
	"math"
	"testing"

	"golts/internal/newmark"
	"golts/internal/sem"
)

// graded1D builds a 1-D operator whose element sizes induce the given
// 1-based levels under power-of-two refinement: level k elements have size
// h/2^(k-1).
func graded1D(levels []uint8, h, c float64, deg int) (*sem.Op1D, []uint8, int) {
	xc := make([]float64, len(levels)+1)
	cs := make([]float64, len(levels))
	rho := make([]float64, len(levels))
	maxL := 1
	for i, l := range levels {
		xc[i+1] = xc[i] + h/float64(int(1)<<(l-1))
		cs[i] = c
		rho[i] = 1
		if int(l) > maxL {
			maxL = int(l)
		}
	}
	op, err := sem.NewOp1D(xc, cs, rho, deg, sem.FreeBC, sem.FreeBC)
	if err != nil {
		panic(err)
	}
	return op, levels, maxL
}

// coarseDt returns a stable coarse step for graded1D meshes: the CFL-scaled
// size of the coarse elements.
func coarseDt(h, c float64, deg int) float64 {
	// Conservative GLL CFL: the smallest GLL subinterval scales like
	// h/deg²; factor 0.5 for safety.
	return 0.5 * h / c / float64(deg*deg)
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestSingleLevelMatchesNewmarkExactly: with one level the LTS scheme must
// reproduce global Newmark bit for bit (same arithmetic).
func TestSingleLevelMatchesNewmarkExactly(t *testing.T) {
	op, lv, nl := graded1D([]uint8{1, 1, 1, 1, 1, 1}, 1, 1, 4)
	dt := coarseDt(1, 1, 4)
	s, err := New(op, lv, nl, dt, true)
	if err != nil {
		t.Fatal(err)
	}
	g := newmark.New(op, dt)
	u0 := make([]float64, op.NDof())
	v0 := make([]float64, op.NDof())
	for i := range u0 {
		x := op.NodeX(i)
		u0[i] = math.Sin(math.Pi * x / 6)
		v0[i] = 0.1 * math.Cos(math.Pi*x/6)
	}
	if err := s.SetInitial(u0, v0); err != nil {
		t.Fatal(err)
	}
	if err := g.SetInitial(u0, v0); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 50; n++ {
		s.Step()
		g.Step()
	}
	for i := range s.U {
		if s.U[i] != g.U[i] || s.V[i] != g.V[i] {
			t.Fatalf("dof %d: LTS (%v, %v) vs Newmark (%v, %v)", i, s.U[i], s.V[i], g.U[i], g.V[i])
		}
	}
}

// TestOptimizedMatchesReference: the active-set engine and the full-vector
// Algorithm 1 engine produce the same trajectory to roundoff, across level
// configurations.
func TestOptimizedMatchesReference(t *testing.T) {
	configs := [][]uint8{
		{1, 1, 2, 2, 1, 1},
		{1, 1, 1, 2, 3, 3, 2, 1, 1, 1},
		{1, 2, 3, 4, 3, 2, 1, 1},
		{3, 3, 1, 1, 1, 1, 3, 3}, // fine at both ends
	}
	for ci, levels := range configs {
		op, lv, nl := graded1D(levels, 1, 1, 4)
		dt := coarseDt(1, 1, 4)
		ref, err := New(op, lv, nl, dt, false)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := New(op, lv, nl, dt, true)
		if err != nil {
			t.Fatal(err)
		}
		u0 := make([]float64, op.NDof())
		for i := range u0 {
			x := op.NodeX(i)
			u0[i] = math.Exp(-2 * (x - 2) * (x - 2))
		}
		v0 := make([]float64, op.NDof())
		if err := ref.SetInitial(u0, v0); err != nil {
			t.Fatal(err)
		}
		if err := opt.SetInitial(u0, v0); err != nil {
			t.Fatal(err)
		}
		ref.Run(30)
		opt.Run(30)
		scale := 0.0
		for _, v := range ref.U {
			scale = math.Max(scale, math.Abs(v))
		}
		if d := maxAbsDiff(ref.U, opt.U); d > 1e-11*scale {
			t.Errorf("config %d: |U_ref - U_opt| = %v (scale %v)", ci, d, scale)
		}
		if d := maxAbsDiff(ref.V, opt.V); d > 1e-10 {
			t.Errorf("config %d: |V_ref - V_opt| = %v", ci, d)
		}
	}
}

// denseLTSOracle is an independent, brute-force transcription of the
// recursive multi-level scheme using full dense vectors and a dense A
// matrix, with no masking machinery: the verification oracle for the
// Scheme implementation.
type denseLTSOracle struct {
	a         [][]float64 // A = M⁻¹K dense
	nodeLevel []uint8     // 0-based
	nlv       int
	dt        float64
	u, v      []float64
	started   bool
}

func newDenseOracle(op sem.Operator, elemLevel []uint8, nlv int, dt float64) *denseLTSOracle {
	n := op.NDof()
	nc := op.Comps()
	o := &denseLTSOracle{nlv: nlv, dt: dt, u: make([]float64, n), v: make([]float64, n)}
	// Dense A by probing. A unit vector at dof j only excites the elements
	// incident to node j/nc, so each column is probed through a restricted
	// accel (sem.Restriction) over that incidence list — the node-restricted
	// variant both exercised here and O(support) instead of O(NDof).
	inc := make([][]int32, op.NumNodes())
	var nb []int32
	for e := 0; e < op.NumElements(); e++ {
		nb = op.ElemNodes(e, nb[:0])
		for _, nd := range nb {
			inc[nd] = append(inc[nd], int32(e))
		}
	}
	o.a = make([][]float64, n)
	for i := 0; i < n; i++ {
		o.a[i] = make([]float64, n)
	}
	probe := make([]float64, n)
	col := make([]float64, n)
	var scr sem.Scratch
	restr := make(map[int]*sem.Restriction) // per node: shared by its nc dofs
	for j := 0; j < n; j++ {
		r := restr[j/nc]
		if r == nil {
			r = sem.NewRestriction(op, inc[j/nc])
			restr[j/nc] = r
		}
		probe[j] = 1
		r.Accel(op, col, probe, &scr)
		probe[j] = 0
		for _, nd := range r.Nodes {
			for c := 0; c < nc; c++ {
				d := int(nd)*nc + c
				// Restriction.Accel returns -M⁻¹K; the oracle stores +M⁻¹K.
				o.a[d][j] = -col[d]
				col[d] = 0
			}
		}
	}
	// Node levels: max level of incident elements.
	o.nodeLevel = make([]uint8, op.NumNodes())
	for e := 0; e < op.NumElements(); e++ {
		nb = op.ElemNodes(e, nb[:0])
		for _, nd := range nb {
			if elemLevel[e]-1 > o.nodeLevel[nd] {
				o.nodeLevel[nd] = elemLevel[e] - 1
			}
		}
	}
	return o
}

// apl computes A·P_li·u densely.
func (o *denseLTSOracle) apl(li int, u []float64) []float64 {
	n := len(u)
	masked := make([]float64, n)
	for d := 0; d < n; d++ {
		if int(o.nodeLevel[d]) == li {
			masked[d] = u[d]
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += o.a[i][j] * masked[j]
		}
		out[i] = s
	}
	return out
}

func (o *denseLTSOracle) advance(li int, f, u []float64) []float64 {
	n := len(u)
	dt := o.dt / float64(int(1)<<li)
	cur := append([]float64(nil), u...)
	var v []float64
	for m := 0; m < 2; m++ {
		z := o.apl(li, cur)
		if li == o.nlv-1 {
			if m == 0 {
				v = make([]float64, n)
				for d := 0; d < n; d++ {
					v[d] = -dt / 2 * (f[d] + z[d])
				}
			} else {
				for d := 0; d < n; d++ {
					v[d] -= dt * (f[d] + z[d])
				}
			}
			for d := 0; d < n; d++ {
				cur[d] += dt * v[d]
			}
		} else {
			fz := make([]float64, n)
			for d := 0; d < n; d++ {
				fz[d] = f[d] + z[d]
			}
			end := o.advance(li+1, fz, cur)
			if m == 0 {
				v = make([]float64, n)
				for d := 0; d < n; d++ {
					v[d] = (end[d] - cur[d]) / dt
				}
			} else {
				for d := 0; d < n; d++ {
					v[d] += 2 * (end[d] - cur[d]) / dt
				}
			}
			for d := 0; d < n; d++ {
				cur[d] += dt * v[d]
			}
		}
	}
	return cur
}

func (o *denseLTSOracle) step() {
	n := len(o.u)
	w := o.apl(0, o.u)
	if o.nlv == 1 {
		if !o.started {
			for d := 0; d < n; d++ {
				o.v[d] -= o.dt / 2 * w[d]
			}
			o.started = true
		} else {
			for d := 0; d < n; d++ {
				o.v[d] -= o.dt * w[d]
			}
		}
		for d := 0; d < n; d++ {
			o.u[d] += o.dt * o.v[d]
		}
		return
	}
	end := o.advance(1, w, o.u)
	if !o.started {
		for d := 0; d < n; d++ {
			o.v[d] += (end[d] - o.u[d]) / o.dt
		}
		o.started = true
	} else {
		for d := 0; d < n; d++ {
			o.v[d] += 2 * (end[d] - o.u[d]) / o.dt
		}
	}
	for d := 0; d < n; d++ {
		o.u[d] += o.dt * o.v[d]
	}
}

// TestSchemeMatchesDenseOracle validates both engines against the dense
// no-masking transcription on a 3-level mesh.
func TestSchemeMatchesDenseOracle(t *testing.T) {
	levels := []uint8{1, 1, 2, 3, 3, 2, 1}
	op, lv, nl := graded1D(levels, 1, 1, 3)
	dt := coarseDt(1, 1, 3)
	oracle := newDenseOracle(op, lv, nl, dt)
	u0 := make([]float64, op.NDof())
	for i := range u0 {
		x := op.NodeX(i)
		u0[i] = math.Sin(1.3*x) + 0.2*x
	}
	copy(oracle.u, u0)
	for _, optimized := range []bool{false, true} {
		s, err := New(op, lv, nl, dt, optimized)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetInitial(u0, make([]float64, op.NDof())); err != nil {
			t.Fatal(err)
		}
		o := newDenseOracle(op, lv, nl, dt)
		copy(o.u, u0)
		for n := 0; n < 12; n++ {
			s.Step()
			o.step()
		}
		if d := maxAbsDiff(s.U, o.u); d > 1e-10 {
			t.Errorf("optimized=%v: |U - oracle| = %v", optimized, d)
		}
		if d := maxAbsDiff(s.V, o.v); d > 1e-9 {
			t.Errorf("optimized=%v: |V - oracle| = %v", optimized, d)
		}
	}
}

// TestLTSSecondOrderConvergence: on a graded mesh the LTS solution
// converges at second order in Δt to the analytic standing wave.
func TestLTSSecondOrderConvergence(t *testing.T) {
	levels := []uint8{1, 1, 1, 2, 3, 3, 2, 1, 1, 1}
	op, lv, nl := graded1D(levels, 1, 1, 5)
	l := op.XC[len(op.XC)-1]
	k := math.Pi / l
	runErr := func(dt float64) float64 {
		s, err := New(op, lv, nl, dt, true)
		if err != nil {
			t.Fatal(err)
		}
		u0 := make([]float64, op.NDof())
		for i := range u0 {
			u0[i] = math.Cos(k * op.NodeX(i))
		}
		if err := s.SetInitial(u0, make([]float64, op.NDof())); err != nil {
			t.Fatal(err)
		}
		T := 0.75 * l // ωT = 3π/4: phase error visible
		steps := int(math.Round(T / dt))
		s.Run(steps)
		tEnd := float64(steps) * dt
		maxErr := 0.0
		for i := range u0 {
			want := math.Cos(k*op.NodeX(i)) * math.Cos(k*tEnd)
			maxErr = math.Max(maxErr, math.Abs(s.U[i]-want))
		}
		return maxErr
	}
	base := coarseDt(1, 1, 5)
	e1 := runErr(base)
	e2 := runErr(base / 2)
	ratio := e1 / e2
	if ratio < 3.2 || ratio > 4.8 {
		t.Errorf("LTS time convergence ratio %v, want ~4 (errors %v, %v)", ratio, e1, e2)
	}
}

// TestLTSEnergyStability: the LTS-leap-frog family conserves a modified
// discrete energy (Diaz & Grote), so the instantaneous energy oscillates
// in a band of width O(Δt²) with no secular growth. The test checks (a)
// boundedness over many cycles and (b) that the oscillation band shrinks
// when Δt is halved.
func TestLTSEnergyStability(t *testing.T) {
	levels := []uint8{1, 2, 3, 3, 2, 1, 1, 1}
	op, lv, nl := graded1D(levels, 1, 1, 4)
	band := func(dt float64, cycles int) (lo, hi, mean float64) {
		s, err := New(op, lv, nl, dt, true)
		if err != nil {
			t.Fatal(err)
		}
		u0 := make([]float64, op.NDof())
		for i := range u0 {
			x := op.NodeX(i)
			u0[i] = math.Exp(-4 * (x - 1.5) * (x - 1.5))
		}
		if err := s.SetInitial(u0, make([]float64, op.NDof())); err != nil {
			t.Fatal(err)
		}
		s.Step()
		e := s.Energy()
		lo, hi, mean = e, e, e
		for i := 1; i < cycles; i++ {
			s.Step()
			e = s.Energy()
			lo = math.Min(lo, e)
			hi = math.Max(hi, e)
			mean += e
		}
		return lo, hi, mean / float64(cycles)
	}
	dt := coarseDt(1, 1, 4)
	lo1, hi1, mean1 := band(dt, 3000)
	if (hi1-lo1)/mean1 > 0.15 {
		t.Errorf("energy band [%v, %v] too wide (mean %v)", lo1, hi1, mean1)
	}
	lo2, hi2, mean2 := band(dt/2, 6000)
	w1 := (hi1 - lo1) / mean1
	w2 := (hi2 - lo2) / mean2
	if w2 > 0.6*w1 {
		t.Errorf("energy band did not shrink with Δt: %.4f -> %.4f", w1, w2)
	}
	_ = lo2
}

// TestLTSUnstableWhenFineElementAtCoarseLevel: misassigning a fine element
// to the coarse level violates its CFL bound and must blow up — evidence
// the level machinery actually controls stability.
func TestLTSUnstableWhenFineElementAtCoarseLevel(t *testing.T) {
	// Element sizes correspond to levels {1,1,3,1}, but we assign all to
	// level 1 and step at the coarse rate.
	op, _, _ := graded1D([]uint8{1, 1, 3, 1}, 1, 1, 4)
	all1 := []uint8{1, 1, 1, 1}
	dt := coarseDt(1, 1, 4) * 2 // comfortably stable for h, fatal for h/4
	s, err := New(op, all1, 1, dt, true)
	if err != nil {
		t.Fatal(err)
	}
	u0 := make([]float64, op.NDof())
	for i := range u0 {
		u0[i] = math.Sin(2.0 * op.NodeX(i))
	}
	if err := s.SetInitial(u0, make([]float64, op.NDof())); err != nil {
		t.Fatal(err)
	}
	s.Run(200)
	norm := 0.0
	for _, v := range s.U {
		norm += v * v
	}
	if !(norm > 1e6) && !math.IsNaN(norm) {
		t.Skip("coarse step still stable on this mesh; CFL margin too generous")
	}
	// Now the correct assignment must remain stable at the same coarse dt.
	s2, err := New(op, []uint8{1, 1, 3, 1}, 3, dt, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.SetInitial(u0, make([]float64, op.NDof())); err != nil {
		t.Fatal(err)
	}
	s2.Run(200)
	norm2 := 0.0
	for _, v := range s2.U {
		norm2 += v * v
	}
	if math.IsNaN(norm2) || norm2 > 1e3 {
		t.Errorf("LTS with correct levels unstable: |u|² = %v", norm2)
	}
}

func TestWorkAccounting(t *testing.T) {
	levels := []uint8{1, 1, 2, 2, 1, 1}
	op, lv, nl := graded1D(levels, 1, 1, 4)
	dt := coarseDt(1, 1, 4)
	s, err := New(op, lv, nl, dt, true)
	if err != nil {
		t.Fatal(err)
	}
	// Force elements: level 2 has 2 own + the 2 coarse neighbors sharing
	// nodes (1-D: elements 1 and 4) = 4; level 1 nodes exist in elements
	// 0,1,4,5 (elements 2,3 have only level-2 nodes).
	fc := s.ForceElemCounts()
	if fc[1] != 4 {
		t.Errorf("level-2 force elements = %d, want 4", fc[1])
	}
	if got := s.HaloElems()[1]; got != 2 {
		t.Errorf("level-2 halo = %d, want 2", got)
	}
	// Ideal work: 4*1 + 2*2 = 8; actual: |F1|*1 + |F2|*2 = fc[0] + 8.
	if got, want := s.IdealElemStepsPerCycle(), int64(8); got != want {
		t.Errorf("ideal work %d, want %d", got, want)
	}
	if got, want := s.ActualElemStepsPerCycle(), int64(fc[0])+8; got != want {
		t.Errorf("actual work %d, want %d", got, want)
	}
	if e := s.Efficiency(); e <= 0 || e > 1 {
		t.Errorf("efficiency %v outside (0, 1]", e)
	}
	// Work counters accumulate as predicted.
	s.Run(3)
	wantApplies := int64(fc[0])*3 + int64(fc[1])*2*3
	if s.Work.ElemApplies != wantApplies {
		t.Errorf("ElemApplies = %d, want %d", s.Work.ElemApplies, wantApplies)
	}
	if s.Work.Cycles != 3 {
		t.Errorf("Cycles = %d", s.Work.Cycles)
	}
}

func TestModelSpeedupMatchesEquation9(t *testing.T) {
	// Two-level: 6 coarse + 2 fine, p=2: speedup = 2*8/(2*2+6) = 1.6.
	levels := []uint8{1, 1, 1, 2, 2, 1, 1, 1}
	op, lv, nl := graded1D(levels, 1, 1, 2)
	s, err := New(op, lv, nl, 0.01, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ModelSpeedup(); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("model speedup %v, want 1.6", got)
	}
	if s.EffectiveSpeedup() >= s.ModelSpeedup() {
		t.Errorf("effective speedup %v should be below model %v (halo overhead)",
			s.EffectiveSpeedup(), s.ModelSpeedup())
	}
}

func TestValidationErrors(t *testing.T) {
	op, lv, nl := graded1D([]uint8{1, 2, 1}, 1, 1, 2)
	if _, err := New(op, lv, nl, -1, true); err == nil {
		t.Error("expected error for negative dt")
	}
	if _, err := New(op, []uint8{1, 2}, nl, 0.1, true); err == nil {
		t.Error("expected error for wrong level count")
	}
	if _, err := New(op, []uint8{1, 5, 1}, 2, 0.1, true); err == nil {
		t.Error("expected error for out-of-range level")
	}
	s, err := New(op, lv, nl, 0.001, true)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	if err := s.SetInitial(make([]float64, op.NDof()), make([]float64, op.NDof())); err == nil {
		t.Error("expected error for SetInitial after start")
	}
}

func BenchmarkLTSCycle1D(b *testing.B) {
	levels := make([]uint8, 64)
	for i := range levels {
		levels[i] = 1
	}
	levels[30], levels[31], levels[32] = 2, 3, 2
	op, lv, nl := graded1D(levels, 1, 1, 4)
	s, err := New(op, lv, nl, coarseDt(1, 1, 4), true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
