// Package newmark implements the global explicit Newmark (leap-frog) time
// stepping scheme of paper Eqs. 5-6: the reference, non-LTS scheme whose
// global CFL bottleneck (Eq. 7) LTS removes. It is the baseline in every
// performance comparison.
package newmark

import (
	"fmt"
	"math"

	"golts/internal/sem"
)

// Stepper advances M ü = -K u + F with the staggered scheme
//
//	v^{n+1/2} = v^{n-1/2} - Δt M⁻¹ (K u^n - F(t_n)),
//	u^{n+1}   = u^n + Δt v^{n+1/2}.
type Stepper struct {
	Op sem.Operator
	// Dt is the time step; stability requires Dt below the CFL limit.
	Dt float64
	// U is the displacement at time t_n.
	U []float64
	// V is the velocity at time t_{n-1/2} (staggered).
	V []float64
	// Sources are point forces evaluated at t_n.
	Sources []sem.Source
	// Sigma is an optional per-node sponge damping profile; nil disables.
	Sigma []float64
	// Eta adds Kelvin-Voigt attenuation: the stress law becomes
	// T = C:∇u + Eta C:∇u̇, i.e. an extra -Eta M⁻¹K v term in the
	// acceleration. A single mode of frequency ω then decays like
	// exp(-Eta ω² t / 2), giving a quality factor Q ≈ 1/(Eta ω). The
	// paper defers attenuation to future work (§I-A); this is the
	// simplest member of that family and is only supported by the global
	// scheme.
	Eta float64
	// Kernel selects the stiffness execution strategy. The zero value is
	// sem.KernelBatched: when the operator supports batching, the
	// all-elements stiffness application (and the Kelvin-Voigt term) runs
	// as fused batches over a precomputed BatchPlan, bitwise-identical to
	// the per-element path. Set sem.KernelPerElement before stepping to
	// force the per-element reference path.
	Kernel sem.Kernel

	t       float64
	n       int64
	started bool
	elems   []int32
	accel   []float64
	visc    []float64
	scr     sem.Scratch // kernel scratch: steady-state Step() allocates nothing
	// Batched-kernel state, built lazily on the first batched apply so
	// KernelPerElement steppers never pay the plan's memory.
	batch      sem.BatchKernel  // batched kernel of Op, when supported
	bplan      sem.BatchPlan    // all-elements batch plan
	bscr       sem.BatchScratch // owned batch workspace
	batchTried bool
	energy     *sem.Restriction // cached by Energy so diagnostics allocate nothing
	// ElementSteps counts element stiffness applications, for work
	// accounting in performance comparisons.
	ElementSteps int64
}

// New creates a stepper with zero initial conditions.
func New(op sem.Operator, dt float64) *Stepper {
	s := &Stepper{
		Op:    op,
		Dt:    dt,
		U:     make([]float64, op.NDof()),
		V:     make([]float64, op.NDof()),
		elems: sem.AllElements(op),
		accel: make([]float64, op.NDof()),
	}
	// Let parallel backends build the ownership split and merge plan for
	// the all-elements list once, outside the stepping loop. (The batched
	// kernel's all-elements BatchPlan is built lazily on the first batched
	// apply, so per-element steppers never hold it.)
	sem.Prepare(op, s.elems)
	return s
}

// addKu applies the stiffness of all elements through the selected
// kernel: the fused batch path by default, the per-element path when
// Kernel is sem.KernelPerElement or the operator cannot batch. The two
// are bitwise-identical. The batch plan is built on the first batched
// apply (one bool check afterwards).
func (s *Stepper) addKu(dst, u []float64) {
	if s.Kernel == sem.KernelBatched {
		if !s.batchTried {
			s.batchTried = true
			if bk, ok := s.Op.(sem.BatchKernel); ok {
				if pl := bk.NewBatchPlan(s.elems); pl != nil {
					s.batch, s.bplan = bk, pl
				}
			}
		}
		if s.batch != nil {
			s.batch.AddKuBatch(dst, u, s.bplan, &s.bscr)
			return
		}
	}
	s.Op.AddKuScratch(dst, u, s.elems, &s.scr)
}

// SetInitial sets u(0) and v(0) (both at t = 0, unstaggered). Must be
// called before the first Step.
func (s *Stepper) SetInitial(u0, v0 []float64) error {
	if s.started {
		return fmt.Errorf("newmark: SetInitial after stepping started")
	}
	if len(u0) != len(s.U) || len(v0) != len(s.V) {
		return fmt.Errorf("newmark: initial condition length mismatch")
	}
	copy(s.U, u0)
	copy(s.V, v0)
	return nil
}

// Time returns the current simulation time t_n.
func (s *Stepper) Time() float64 { return s.t }

// StepCount returns the number of completed steps.
func (s *Stepper) StepCount() int64 { return s.n }

// Step advances one time step. On the first step the unstaggered v(0) is
// converted to v(Δt/2) with a half-step, which keeps the scheme second
// order.
func (s *Stepper) Step() {
	a := s.accel
	for i := range a {
		a[i] = 0
	}
	s.addKu(a, s.U)
	s.ElementSteps += int64(len(s.elems))
	if s.Eta > 0 {
		// Kelvin-Voigt term: K applied to Eta * v (explicit, evaluated at
		// the lagged half step; stable for Eta well below Δt).
		if s.visc == nil {
			s.visc = make([]float64, len(s.U))
		}
		for i, v := range s.V {
			s.visc[i] = s.Eta * v
		}
		s.addKu(a, s.visc)
		s.ElementSteps += int64(len(s.elems))
	}
	minv := s.Op.MInv()
	nc := s.Op.Comps()
	for n := 0; n < s.Op.NumNodes(); n++ {
		mi := minv[n]
		for c := 0; c < nc; c++ {
			a[n*nc+c] *= -mi
		}
	}
	sem.AddForces(s.Op, s.Sources, s.t, a)
	dt := s.Dt
	if !s.started {
		// v(Δt/2) = v(0) + (Δt/2) a(0).
		for i := range s.V {
			s.V[i] += dt / 2 * a[i]
		}
		s.started = true
	} else {
		for i := range s.V {
			s.V[i] += dt * a[i]
		}
	}
	if s.Sigma != nil {
		applyDamping(s.V, s.Sigma, nc, dt)
	}
	for i := range s.U {
		s.U[i] += dt * s.V[i]
	}
	s.t += dt
	s.n++
}

// Run advances n steps.
func (s *Stepper) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Energy returns the instantaneous mechanical energy ½vᵀMv + ½uᵀKu, which
// oscillates with amplitude O(Δt²) around a constant for the staggered
// scheme. The all-elements restriction is cached on first use and the
// stiffness scratch reuses the stepper's accel buffer, so repeated calls
// allocate nothing.
func (s *Stepper) Energy() float64 {
	if s.energy == nil {
		s.energy = sem.NewRestriction(s.Op, s.elems)
	}
	for i := range s.accel {
		s.accel[i] = 0
	}
	return s.energy.Energy(s.Op, s.U, s.V, s.accel, &s.scr)
}

// ConservedEnergy returns the discrete energy that the undamped, unforced
// leap-frog scheme conserves exactly (up to roundoff):
//
//	E^{n+1/2} = ½ v_{n+1/2}ᵀ M v_{n+1/2} + ½ u_nᵀ K u_{n+1},
//
// evaluated from the stepper's state (U = u_{n+1}, V = v_{n+1/2},
// u_n = U - Δt V).
func (s *Stepper) ConservedEnergy() float64 {
	ku := s.accel
	for i := range ku {
		ku[i] = 0
	}
	s.Op.AddKuScratch(ku, s.U, s.elems, &s.scr)
	minv := s.Op.MInv()
	nc := s.Op.Comps()
	e := 0.0
	for n := 0; n < s.Op.NumNodes(); n++ {
		if minv[n] == 0 {
			continue
		}
		m := 1 / minv[n]
		for c := 0; c < nc; c++ {
			d := n*nc + c
			un := s.U[d] - s.Dt*s.V[d]
			e += 0.5*m*s.V[d]*s.V[d] + 0.5*un*ku[d]
		}
	}
	return e
}

// EstimateCriticalDt estimates the leap-frog stability limit
// Δt_max = 2/√λ_max(M⁻¹K) by power iteration. This is the sharp version of
// the CFL bound (Eq. 7): the heuristic h/c estimate must stay below it,
// and the LTS level assignment inherits its safety margin from the CFL
// constant used.
func EstimateCriticalDt(op sem.Operator, iters int) float64 {
	if iters <= 0 {
		iters = 60
	}
	n := op.NDof()
	u := make([]float64, n)
	ku := make([]float64, n)
	// Deterministic pseudo-random start vector with zero mean.
	s := uint64(0x9e3779b97f4a7c15)
	for i := range u {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		u[i] = float64(int64(s))/float64(1<<63) - 0
	}
	elems := sem.AllElements(op)
	minv := op.MInv()
	nc := op.Comps()
	lambda := 0.0
	var scr sem.Scratch
	for it := 0; it < iters; it++ {
		for i := range ku {
			ku[i] = 0
		}
		op.AddKuScratch(ku, u, elems, &scr)
		norm := 0.0
		for nd := 0; nd < op.NumNodes(); nd++ {
			for c := 0; c < nc; c++ {
				d := nd*nc + c
				ku[d] *= minv[nd]
				norm += ku[d] * ku[d]
			}
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return math.Inf(1)
		}
		lambda = norm
		for i := range u {
			u[i] = ku[i] / norm
		}
	}
	return 2 / math.Sqrt(lambda)
}

// applyDamping multiplies velocities by the per-node sponge factor. A
// first-order splitting: v *= 1/(1 + σΔt) ≈ e^{-σΔt}, unconditionally
// stable.
func applyDamping(v, sigma []float64, nc int, dt float64) {
	for n, sg := range sigma {
		if sg == 0 {
			continue
		}
		f := 1 / (1 + sg*dt)
		for c := 0; c < nc; c++ {
			v[n*nc+c] *= f
		}
	}
}
