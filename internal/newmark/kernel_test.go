package newmark

import (
	"testing"

	"golts/internal/mesh"
	"golts/internal/sem"
)

// TestKernelModesBitwise pins the batched (default) and per-element
// global-Newmark paths bitwise against each other, including the
// Kelvin-Voigt attenuation term (a second stiffness application per
// step).
func TestKernelModesBitwise(t *testing.T) {
	m := mesh.Uniform(5, 4, 4, 1, 1)
	for e := range m.C {
		m.C[e] = 1 + 0.2*float64(e%3)
		m.Rho[e] = 1 + 0.1*float64(e%5)
	}
	op, err := sem.NewElastic3D(m, 4, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	dt := 0.3 * m.StableDt(0, 0.4/16)
	run := func(k sem.Kernel) *Stepper {
		s := New(op, dt)
		s.Kernel = k
		s.Eta = dt / 50
		s.Sources = []sem.Source{{Dof: op.NDof() / 3, W: sem.Ricker{F0: 2, T0: 0.5}}}
		s.Run(8)
		return s
	}
	batched := run(sem.KernelBatched)
	scalar := run(sem.KernelPerElement)
	for i := range batched.U {
		if batched.U[i] != scalar.U[i] {
			t.Fatalf("U[%d]: batched %v != per-element %v", i, batched.U[i], scalar.U[i])
		}
		if batched.V[i] != scalar.V[i] {
			t.Fatalf("V[%d]: batched %v != per-element %v", i, batched.V[i], scalar.V[i])
		}
	}
}
