package newmark

import (
	"testing"

	"golts/internal/mesh"
	"golts/internal/race"
	"golts/internal/sem"
)

// TestStepZeroAllocs asserts that a warmed-up global Newmark step on a
// sequential operator performs zero heap allocations, including with
// sources, sponge damping, and Kelvin-Voigt attenuation enabled.
func TestStepZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	m := mesh.Uniform(4, 4, 4, 1, 1)
	op, err := sem.NewElastic3D(m, 4, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(op, 1e-3)
	s.Sources = []sem.Source{{Dof: 10, W: sem.Ricker{F0: 1, T0: 1.2}}}
	s.Sigma = make([]float64, op.NumNodes())
	s.Sigma[0] = 2
	s.Eta = 1e-6
	s.Step() // warm-up: visc buffer, kernel scratch, first-step branch
	s.Step()
	if n := testing.AllocsPerRun(5, s.Step); n != 0 {
		t.Errorf("Step allocates %v per step, want 0", n)
	}
	// Energy and ConservedEnergy reuse the cached restriction, the accel
	// buffer and the stepper's kernel scratch: warm calls allocate nothing.
	s.Energy()
	if n := testing.AllocsPerRun(5, func() { s.Energy() }); n != 0 {
		t.Errorf("Energy allocates %v per call, want 0", n)
	}
	if n := testing.AllocsPerRun(5, func() { s.ConservedEnergy() }); n != 0 {
		t.Errorf("ConservedEnergy allocates %v per call, want 0", n)
	}
}
