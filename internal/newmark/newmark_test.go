package newmark

import (
	"math"
	"testing"

	"golts/internal/mesh"
	"golts/internal/sem"
)

func uniform1D(ne int, l, c float64, deg int) *sem.Op1D {
	xc := make([]float64, ne+1)
	cs := make([]float64, ne)
	rho := make([]float64, ne)
	for i := range xc {
		xc[i] = l * float64(i) / float64(ne)
	}
	for i := range cs {
		cs[i] = c
		rho[i] = 1
	}
	op, err := sem.NewOp1D(xc, cs, rho, deg, sem.FreeBC, sem.FreeBC)
	if err != nil {
		panic(err)
	}
	return op
}

// standingWaveError runs the free-free 1-D bar with initial condition
// u = cos(kπx/L) to time T and returns the max error against the exact
// solution cos(kπx/L) cos(ωt).
func standingWaveError(op *sem.Op1D, l, c float64, dt float64, T float64) float64 {
	k := math.Pi / l
	s := New(op, dt)
	u0 := make([]float64, op.NDof())
	v0 := make([]float64, op.NDof())
	for i := range u0 {
		u0[i] = math.Cos(k * op.NodeX(i))
	}
	if err := s.SetInitial(u0, v0); err != nil {
		panic(err)
	}
	steps := int(math.Round(T / dt))
	s.Run(steps)
	tEnd := float64(steps) * dt
	maxErr := 0.0
	for i := range u0 {
		want := math.Cos(k*op.NodeX(i)) * math.Cos(c*k*tEnd)
		if e := math.Abs(s.U[i] - want); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

func TestStandingWaveAccuracy(t *testing.T) {
	const l, c = 1.0, 1.0
	op := uniform1D(16, l, c, 5)
	err := standingWaveError(op, l, c, 1e-3, 1.0)
	if err > 2e-5 {
		t.Errorf("standing wave error %v too large", err)
	}
}

// TestSecondOrderConvergenceInTime: halving Δt must reduce the error by
// ~4x once spatial error is negligible.
func TestSecondOrderConvergenceInTime(t *testing.T) {
	const l, c = 1.0, 1.0
	op := uniform1D(20, l, c, 6) // spectral spatial accuracy: error is time-dominated
	// Measure at T = 0.75 where ωT = 3π/4, so the leap-frog phase error is
	// visible (at T = 1 the mode sits at an extremum and the sensitivity
	// to phase error vanishes).
	e1 := standingWaveError(op, l, c, 1e-3, 0.75)
	e2 := standingWaveError(op, l, c, 5e-4, 0.75)
	ratio := e1 / e2
	if ratio < 3.3 || ratio > 4.7 {
		t.Errorf("time convergence ratio %v, want ~4 (errors %v, %v)", ratio, e1, e2)
	}
}

func TestEnergyConservation(t *testing.T) {
	op := uniform1D(12, 1, 1, 4)
	dt := 0.25 * (1.0 / 12) / 1 / 16 // well below CFL for deg 4
	s := New(op, dt)
	u0 := make([]float64, op.NDof())
	for i := range u0 {
		x := op.NodeX(i)
		u0[i] = math.Exp(-50 * (x - 0.5) * (x - 0.5))
	}
	if err := s.SetInitial(u0, make([]float64, op.NDof())); err != nil {
		t.Fatal(err)
	}
	s.Step()
	e0 := s.ConservedEnergy()
	var emin, emax = e0, e0
	var imin, imax = s.Energy(), s.Energy()
	for i := 0; i < 2000; i++ {
		s.Step()
		e := s.ConservedEnergy()
		emin = math.Min(emin, e)
		emax = math.Max(emax, e)
		ie := s.Energy()
		imin = math.Min(imin, ie)
		imax = math.Max(imax, ie)
	}
	// The staggered energy is conserved to roundoff...
	if (emax-emin)/e0 > 1e-10 {
		t.Errorf("conserved energy drift %.3e relative, want < 1e-10 (e0=%v emin=%v emax=%v)",
			(emax-emin)/e0, e0, emin, emax)
	}
	// ...while the instantaneous energy only oscillates within O(Δt²).
	if (imax-imin)/e0 > 0.05 {
		t.Errorf("instantaneous energy oscillation %.3e relative, want < 5%%", (imax-imin)/e0)
	}
}

func TestCFLViolationBlowsUp(t *testing.T) {
	op := uniform1D(16, 1, 1, 4)
	// Way above any plausible stability limit.
	s := New(op, 0.5)
	u0 := make([]float64, op.NDof())
	for i := range u0 {
		u0[i] = math.Sin(3 * math.Pi * op.NodeX(i))
	}
	if err := s.SetInitial(u0, make([]float64, op.NDof())); err != nil {
		t.Fatal(err)
	}
	s.Run(50)
	norm := 0.0
	for _, v := range s.U {
		norm += v * v
	}
	if !(norm > 1e6) && !math.IsNaN(norm) {
		t.Errorf("expected blow-up above CFL, |u|² = %v", norm)
	}
}

func TestSetInitialAfterStartFails(t *testing.T) {
	op := uniform1D(4, 1, 1, 2)
	s := New(op, 1e-3)
	s.Step()
	if err := s.SetInitial(make([]float64, op.NDof()), make([]float64, op.NDof())); err == nil {
		t.Error("expected error setting initial conditions after stepping")
	}
}

// TestAcousticPlaneWave3D: periodic cube, standing wave
// u = cos(2πx/L) cos(ωt), ω = c·2π/L.
func TestAcousticPlaneWave3D(t *testing.T) {
	const L, c = 2.0, 1.0
	m := mesh.Uniform(4, 2, 2, L/4, c)
	op, err := sem.NewAcoustic3D(m, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	k := 2 * math.Pi / L
	dt := 2e-3
	s := New(op, dt)
	u0 := make([]float64, op.NDof())
	for n := 0; n < op.NumNodes(); n++ {
		x, _, _ := op.NodeCoords(int32(n))
		u0[n] = math.Cos(k * x)
	}
	if err := s.SetInitial(u0, make([]float64, op.NDof())); err != nil {
		t.Fatal(err)
	}
	steps := 250
	s.Run(steps)
	tEnd := float64(steps) * dt
	for n := 0; n < op.NumNodes(); n++ {
		x, _, _ := op.NodeCoords(int32(n))
		want := math.Cos(k*x) * math.Cos(c*k*tEnd)
		if math.Abs(s.U[n]-want) > 5e-4 {
			t.Fatalf("node %d: u = %v, want %v", n, s.U[n], want)
		}
	}
}

// TestElasticPAndSWaves3D: periodic cube; a longitudinal standing mode
// oscillates at ω = c_p k and a transverse one at ω = c_s k.
func TestElasticPAndSWaves3D(t *testing.T) {
	const L = 2.0
	const cp = 1.0
	m := mesh.Uniform(4, 2, 2, L/4, cp)
	op, err := sem.NewElastic3D(m, 4, true, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cs := 0.5 * cp
	k := 2 * math.Pi / L
	cases := []struct {
		name  string
		comp  int
		speed float64
	}{
		{"P (longitudinal)", 0, cp},
		{"S (transverse)", 1, cs},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dt := 1e-3
			s := New(op, dt)
			u0 := make([]float64, op.NDof())
			for n := 0; n < op.NumNodes(); n++ {
				x, _, _ := op.NodeCoords(int32(n))
				u0[3*n+tc.comp] = math.Cos(k * x)
			}
			if err := s.SetInitial(u0, make([]float64, op.NDof())); err != nil {
				t.Fatal(err)
			}
			steps := 300
			s.Run(steps)
			tEnd := float64(steps) * dt
			for n := 0; n < op.NumNodes(); n++ {
				x, _, _ := op.NodeCoords(int32(n))
				want := math.Cos(k*x) * math.Cos(tc.speed*k*tEnd)
				if math.Abs(s.U[3*n+tc.comp]-want) > 1e-3 {
					t.Fatalf("node %d: u = %v, want %v", n, s.U[3*n+tc.comp], want)
				}
			}
		})
	}
}

// TestSourceInjectionPropagates: a Ricker source in a 1-D bar produces a
// disturbance that arrives at a receiver at distance d after ~d/c.
func TestSourceInjectionPropagates(t *testing.T) {
	const l, c = 10.0, 2.0
	op := uniform1D(100, l, c, 4)
	dt := 0.2 * (l / 100) / c / 16
	s := New(op, dt)
	srcNode := op.NumNodes() / 10
	s.Sources = []sem.Source{{Dof: srcNode, W: sem.Ricker{F0: 2, T0: 0.6}}}
	rcvNode := op.NumNodes() * 7 / 10
	dist := op.NodeX(rcvNode) - op.NodeX(srcNode)
	rcv := &sem.Receiver{Dof: rcvNode}
	tMax := 0.6 + dist/c + 0.4 // stop before boundary reflections arrive
	for s.Time() < tMax {
		s.Step()
		rcv.Record(s.Time(), s.U)
	}
	arrival := rcv.FirstArrival(0.3) - 0.6 // subtract wavelet delay
	want := dist / c
	if math.Abs(arrival-want) > 0.15*want {
		t.Errorf("arrival at %v, want ~%v", arrival, want)
	}
}

// TestSpongeAbsorbsEnergy: with a sponge layer the energy decays; without
// it, the wave reflects and energy persists.
func TestSpongeAbsorbsEnergy(t *testing.T) {
	op := uniform1D(60, 6, 1, 4)
	dt := 0.1 / 16 * 0.5
	run := func(withSponge bool) float64 {
		s := New(op, dt)
		if withSponge {
			sigma := make([]float64, op.NumNodes())
			for n := range sigma {
				x := op.NodeX(n)
				for _, edge := range []float64{x, 6 - x} {
					if edge < 1.5 {
						r := 1 - edge/1.5
						sigma[n] = math.Max(sigma[n], 30*r*r)
					}
				}
			}
			s.Sigma = sigma
		}
		u0 := make([]float64, op.NDof())
		for i := range u0 {
			x := op.NodeX(i)
			u0[i] = math.Exp(-8 * (x - 3) * (x - 3))
		}
		if err := s.SetInitial(u0, make([]float64, op.NDof())); err != nil {
			t.Fatal(err)
		}
		// Run long enough for the wave to reach the boundaries twice.
		for s.Time() < 12 {
			s.Step()
		}
		return s.Energy()
	}
	e0 := run(false)
	e1 := run(true)
	if e1 > 0.05*e0 {
		t.Errorf("sponge left %.3e of %.3e energy (want < 5%%)", e1, e0)
	}
}

func BenchmarkNewmarkStep1D(b *testing.B) {
	op := uniform1D(512, 1, 1, 4)
	s := New(op, 1e-5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkNewmarkStep3DAcoustic(b *testing.B) {
	m := mesh.Uniform(6, 6, 6, 1, 1)
	op, err := sem.NewAcoustic3D(m, 4, false)
	if err != nil {
		b.Fatal(err)
	}
	s := New(op, 1e-4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
