package newmark

import (
	"math"
	"testing"
)

// TestEstimateCriticalDtBracketsStability: stepping just below the
// estimated limit stays bounded; stepping 5% above it blows up. This
// brackets the true stability boundary around the power-iteration
// estimate.
func TestEstimateCriticalDtBracketsStability(t *testing.T) {
	op := uniform1D(12, 1, 1, 4)
	dtc := EstimateCriticalDt(op, 100)
	if dtc <= 0 || math.IsInf(dtc, 1) {
		t.Fatalf("critical dt estimate %v", dtc)
	}
	blowsUp := func(dt float64) bool {
		s := New(op, dt)
		u0 := make([]float64, op.NDof())
		for i := range u0 {
			u0[i] = math.Sin(7 * op.NodeX(i))
		}
		if err := s.SetInitial(u0, make([]float64, op.NDof())); err != nil {
			t.Fatal(err)
		}
		s.Run(3000)
		norm := 0.0
		for _, v := range s.U {
			norm += v * v
		}
		return math.IsNaN(norm) || norm > 1e8
	}
	if blowsUp(0.98 * dtc) {
		t.Errorf("dt = 0.98 dtc unstable (dtc = %v)", dtc)
	}
	if !blowsUp(1.05 * dtc) {
		t.Errorf("dt = 1.05 dtc unexpectedly stable (dtc = %v)", dtc)
	}
}

// TestCriticalDtScalesWithMesh: halving the element size must halve the
// critical step (the CFL proportionality of Eq. 7).
func TestCriticalDtScalesWithMesh(t *testing.T) {
	coarse := uniform1D(8, 1, 1, 4)
	fine := uniform1D(16, 1, 1, 4)
	dc := EstimateCriticalDt(coarse, 80)
	df := EstimateCriticalDt(fine, 80)
	ratio := dc / df
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("critical dt ratio %v, want ~2", ratio)
	}
}

// TestCriticalDtVelocityScaling: doubling the wave speed halves the limit.
func TestCriticalDtVelocityScaling(t *testing.T) {
	slow := uniform1D(10, 1, 1, 4)
	fast := uniform1D(10, 1, 2, 4)
	ratio := EstimateCriticalDt(slow, 80) / EstimateCriticalDt(fast, 80)
	if math.Abs(ratio-2) > 0.05 {
		t.Errorf("velocity scaling ratio %v, want 2", ratio)
	}
}
