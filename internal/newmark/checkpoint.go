package newmark

import (
	"fmt"

	"golts/internal/ckpt"
)

// SchemeName is the StepperState.Scheme tag of a newmark.Stepper.
const SchemeName = "newmark"

// Save captures the complete inter-step state of the stepper. The
// acceleration and viscous buffers are recomputed from scratch every
// Step, so {U, V, t, n, started} plus the work counter fully determine
// the remaining trajectory.
func (s *Stepper) Save() *ckpt.StepperState {
	return &ckpt.StepperState{
		Scheme:      SchemeName,
		T:           s.t,
		N:           s.n,
		Started:     s.started,
		U:           append([]float64(nil), s.U...),
		V:           append([]float64(nil), s.V...),
		ElemApplies: s.ElementSteps,
	}
}

// Restore installs a snapshot previously produced by Save on a stepper
// built from the same operator configuration.
func (s *Stepper) Restore(st *ckpt.StepperState) error {
	if st.Scheme != SchemeName {
		return fmt.Errorf("newmark: restore: state is for scheme %q", st.Scheme)
	}
	if len(st.U) != len(s.U) || len(st.V) != len(s.V) {
		return fmt.Errorf("newmark: restore: state has %d/%d dofs, stepper has %d",
			len(st.U), len(st.V), len(s.U))
	}
	copy(s.U, st.U)
	copy(s.V, st.V)
	s.t = st.T
	s.n = st.N
	s.started = st.Started
	s.ElementSteps = st.ElemApplies
	return nil
}
