package newmark

import (
	"math"
	"testing"

	"golts/internal/ckpt"
)

func TestSaveRestoreBitwise(t *testing.T) {
	const total = 40
	const dt = 1e-3
	build := func() *Stepper {
		op := uniform1D(12, 1, 1, 4)
		s := New(op, dt)
		u0 := make([]float64, op.NDof())
		v0 := make([]float64, op.NDof())
		for i := range u0 {
			u0[i] = math.Cos(math.Pi * op.NodeX(i))
			v0[i] = 0.2 * math.Sin(math.Pi*op.NodeX(i))
		}
		if err := s.SetInitial(u0, v0); err != nil {
			t.Fatal(err)
		}
		return s
	}

	ref := build()
	ref.Run(total)

	for _, k := range []int{0, 1, total / 2, total} {
		a := build()
		a.Run(k)
		st := a.Save()
		a.Step() // prove the snapshot is a copy

		b := build()
		if err := b.Restore(st); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		b.Run(total - k)
		if b.Time() != ref.Time() || b.StepCount() != ref.StepCount() {
			t.Fatalf("k=%d: time/steps %v/%d != %v/%d", k, b.Time(), b.StepCount(), ref.Time(), ref.StepCount())
		}
		for i := range ref.U {
			if math.Float64bits(b.U[i]) != math.Float64bits(ref.U[i]) ||
				math.Float64bits(b.V[i]) != math.Float64bits(ref.V[i]) {
				t.Fatalf("k=%d: resumed state differs from uninterrupted at dof %d", k, i)
			}
		}
		if b.ElementSteps != ref.ElementSteps {
			t.Fatalf("k=%d: ElementSteps %d != %d", k, b.ElementSteps, ref.ElementSteps)
		}
	}
}

func TestRestoreValidates(t *testing.T) {
	s := New(uniform1D(4, 1, 1, 4), 1e-3)
	if err := s.Restore(&ckpt.StepperState{Scheme: "lts"}); err == nil {
		t.Fatal("wrong scheme tag accepted")
	}
	if err := s.Restore(&ckpt.StepperState{Scheme: SchemeName, U: make([]float64, 1), V: make([]float64, 1)}); err == nil {
		t.Fatal("wrong dof count accepted")
	}
}
