package newmark

import (
	"math"
	"testing"

	"golts/internal/sem"
)

// TestInterfaceReflectionCoefficient: quantitative validation of
// heterogeneous materials. A rightward pulse hitting an impedance contrast
// Z = ρc reflects with amplitude R = (Z1 - Z2)/(Z1 + Z2) and transmits
// with T = 2 Z1/(Z1 + Z2) (displacement convention, normal incidence).
func TestInterfaceReflectionCoefficient(t *testing.T) {
	const (
		l   = 20.0
		ne  = 200
		c1  = 1.0
		c2  = 2.0
		rho = 1.0
	)
	xc := make([]float64, ne+1)
	cs := make([]float64, ne)
	rh := make([]float64, ne)
	for i := range xc {
		xc[i] = l * float64(i) / float64(ne)
	}
	for i := range cs {
		rh[i] = rho
		if xc[i] < l/2 {
			cs[i] = c1
		} else {
			cs[i] = c2
		}
	}
	op, err := sem.NewOp1D(xc, cs, rh, 4, sem.FreeBC, sem.FreeBC)
	if err != nil {
		t.Fatal(err)
	}
	dt := 0.2 * (l / ne) / c2 / 16
	s := New(op, dt)
	// Rightward-travelling Gaussian: u = f(x - c t), v = -c f'(x).
	u0 := make([]float64, op.NDof())
	v0 := make([]float64, op.NDof())
	const x0, w = 5.0, 0.5
	for i := range u0 {
		x := op.NodeX(i)
		u0[i] = math.Exp(-(x - x0) * (x - x0) / (2 * w * w))
		v0[i] = c1 * (x - x0) / (w * w) * u0[i]
	}
	if err := s.SetInitial(u0, v0); err != nil {
		t.Fatal(err)
	}
	// Run until the pulse has split at the interface: it needs 5 units to
	// reach x=10, then ~3 more to separate.
	for s.Time() < 7.5 {
		s.Step()
	}
	// Reflected peak in x < 10 (travelling left), transmitted in x > 10.
	var refl, trans float64
	for i := range s.U {
		x := op.NodeX(i)
		a := math.Abs(s.U[i])
		if x < l/2-1 && a > refl {
			refl = a
		}
		if x > l/2+1 && a > trans {
			trans = a
		}
	}
	z1, z2 := rho*c1, rho*c2
	wantR := math.Abs(z1-z2) / (z1 + z2) // 1/3
	wantT := 2 * z1 / (z1 + z2)          // 2/3
	if math.Abs(refl-wantR) > 0.05*wantR {
		t.Errorf("reflection amplitude %.4f, want %.4f (Z contrast)", refl, wantR)
	}
	if math.Abs(trans-wantT) > 0.05*wantT {
		t.Errorf("transmission amplitude %.4f, want %.4f", trans, wantT)
	}
}

// TestKelvinVoigtDecayRate: with attenuation Eta, a standing mode of
// frequency ω decays like exp(-Eta ω² t / 2) — the extension the paper
// defers to future work, validated quantitatively.
func TestKelvinVoigtDecayRate(t *testing.T) {
	const l, c = 1.0, 1.0
	op := uniform1D(16, l, c, 5)
	k := math.Pi / l
	omega := c * k
	eta := 0.02
	dt := 2e-4
	s := New(op, dt)
	s.Eta = eta
	u0 := make([]float64, op.NDof())
	for i := range u0 {
		u0[i] = math.Cos(k * op.NodeX(i))
	}
	if err := s.SetInitial(u0, make([]float64, op.NDof())); err != nil {
		t.Fatal(err)
	}
	// Track the mode amplitude via the energy: E ∝ amp², so
	// E(t) = E(0) exp(-Eta ω² t).
	s.Step()
	e0 := s.ConservedEnergy()
	T := 3.0
	for s.Time() < T {
		s.Step()
	}
	e1 := s.ConservedEnergy()
	gotRate := -math.Log(e1/e0) / s.Time()
	wantRate := eta * omega * omega
	if math.Abs(gotRate-wantRate) > 0.05*wantRate {
		t.Errorf("energy decay rate %.5f, want %.5f (Kelvin-Voigt)", gotRate, wantRate)
	}
}

// TestAttenuationOffConservesEnergy: Eta = 0 must leave the conservation
// property intact (regression guard for the attenuation path).
func TestAttenuationOffConservesEnergy(t *testing.T) {
	op := uniform1D(10, 1, 1, 4)
	s := New(op, 1e-4)
	u0 := make([]float64, op.NDof())
	for i := range u0 {
		u0[i] = math.Sin(2 * math.Pi * op.NodeX(i))
	}
	if err := s.SetInitial(u0, make([]float64, op.NDof())); err != nil {
		t.Fatal(err)
	}
	s.Step()
	e0 := s.ConservedEnergy()
	s.Run(500)
	if math.Abs(s.ConservedEnergy()-e0) > 1e-10*e0 {
		t.Errorf("energy drifted with Eta=0")
	}
}
