package decomp

import (
	"reflect"
	"testing"

	"golts/internal/mesh"
	"golts/internal/sem"
)

func testOp(t *testing.T) sem.Operator {
	t.Helper()
	m := mesh.Generators["trench"](0.0005)
	op, err := sem.NewAcoustic3D(m, 2, false)
	if err != nil {
		t.Fatalf("operator: %v", err)
	}
	return op
}

// roundRobin assigns element e to part e % p.
func roundRobin(n, p int) []int32 {
	part := make([]int32, n)
	for e := range part {
		part[e] = int32(e % p)
	}
	return part
}

// TestBuildInvariants: the ownership split preserves request order and
// covers the request exactly; touched sets are sorted, unique, and match
// sem.NodesOf per part.
func TestBuildInvariants(t *testing.T) {
	op := testOp(t)
	const P = 3
	part := roundRobin(op.NumElements(), P)
	elems := sem.AllElements(op)
	pl := Build(op, part, P, elems)

	total := 0
	for p := 0; p < P; p++ {
		total += len(pl.Parts[p])
		for _, e := range pl.Parts[p] {
			if part[e] != int32(p) {
				t.Fatalf("part %d holds foreign element %d", p, e)
			}
		}
		want := sem.NodesOf(op, pl.Parts[p])
		if !reflect.DeepEqual(pl.Touched[p], want) {
			t.Fatalf("part %d touched set differs from NodesOf", p)
		}
		for i := 1; i < len(pl.Touched[p]); i++ {
			if pl.Touched[p][i] <= pl.Touched[p][i-1] {
				t.Fatalf("part %d touched set not strictly ascending", p)
			}
		}
	}
	if total != len(elems) {
		t.Fatalf("split holds %d elements, want %d", total, len(elems))
	}
	if len(pl.Active) != P {
		t.Fatalf("active parts = %v, want all %d", pl.Active, P)
	}
	if pl.Messages != P {
		t.Fatalf("messages = %d, want %d", pl.Messages, P)
	}
}

// TestSharedUnionOwners: the halo set algebra.
func TestSharedUnionOwners(t *testing.T) {
	a := []int32{1, 3, 5, 7, 9}
	b := []int32{2, 3, 4, 7, 10}
	if got := Shared(a, b); !reflect.DeepEqual(got, []int32{3, 7}) {
		t.Errorf("Shared = %v", got)
	}
	if got := Shared(a, nil); got != nil {
		t.Errorf("Shared with empty = %v", got)
	}
	if got := Union(a, b); !reflect.DeepEqual(got, []int32{1, 2, 3, 4, 5, 7, 9, 10}) {
		t.Errorf("Union = %v", got)
	}
	if got := Union(); got != nil {
		t.Errorf("empty Union = %v", got)
	}
	own := Owners(6, [][]int32{{1, 3}, {3, 4}, {0, 4}})
	want := []int32{2, 0, -1, 0, 1, -1}
	if !reflect.DeepEqual(own, want) {
		t.Errorf("Owners = %v, want %v", own, want)
	}
}

// TestCacheStability: same-content lookups return the same plan pointer;
// different lists return different plans; mutating a cached list in
// place degrades to a rebuild.
func TestCacheStability(t *testing.T) {
	op := testOp(t)
	part := roundRobin(op.NumElements(), 2)
	c := NewCache(op, part, 2)

	elems := []int32{0, 1, 2, 3}
	p1, _ := c.Lookup(elems)
	p2, _ := c.Lookup([]int32{0, 1, 2, 3})
	if p1 != p2 {
		t.Error("equal lists returned distinct plans")
	}
	p3, _ := c.Lookup([]int32{3, 2, 1})
	if p3 == p1 {
		t.Error("different lists shared a plan")
	}
	elems[0] = 9 // caller mutates the list it handed in
	p4, _ := c.Lookup(elems)
	if p4 == p1 {
		t.Error("mutated list was served the stale plan")
	}
	if p4.Parts[1][0] != 9 {
		t.Errorf("rebuilt plan missing mutated element: %v", p4.Parts)
	}
}
