package decomp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMemoBasics: hit/miss accounting, LRU eviction order, and the
// bound.
func TestMemoBasics(t *testing.T) {
	m := NewMemo[int](2)
	mk := func(v int) func() (int, error) { return func() (int, error) { return v, nil } }

	if v, hit, _ := m.Get("a", mk(1)); v != 1 || hit {
		t.Fatalf("first Get = (%d, hit=%v), want (1, miss)", v, hit)
	}
	if v, hit, _ := m.Get("a", mk(99)); v != 1 || !hit {
		t.Fatalf("second Get = (%d, hit=%v), want cached (1, hit)", v, hit)
	}
	m.Get("b", mk(2))
	m.Get("a", mk(1)) // refresh a: b is now LRU
	m.Get("c", mk(3)) // evicts b
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if _, hit, _ := m.Get("a", mk(1)); !hit {
		t.Error("a was evicted despite being recently used")
	}
	rebuilt := false
	m.Get("b", func() (int, error) { rebuilt = true; return 2, nil })
	if !rebuilt {
		t.Error("b survived eviction past the bound")
	}
	ctr := m.Counters()
	if ctr.Evictions < 2 {
		t.Errorf("evictions = %d, want >= 2 (b twice)", ctr.Evictions)
	}
	if ctr.Hits < 2 || ctr.Misses < 4 {
		t.Errorf("counters = %+v, want >= 2 hits and >= 4 misses", ctr)
	}
}

// TestMemoSingleFlight: concurrent Gets of one key run the build exactly
// once; joiners block for the shared result and count as hits.
func TestMemoSingleFlight(t *testing.T) {
	m := NewMemo[int](8)
	var builds atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := m.Get("k", func() (int, error) {
				builds.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("Get: %v", err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times for %d concurrent Gets, want 1", n, waiters)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %d, want 42", i, v)
		}
	}
	ctr := m.Counters()
	if ctr.Misses != 1 || ctr.Hits != waiters-1 {
		t.Errorf("counters = %+v, want 1 miss and %d hits", ctr, waiters-1)
	}
}

// TestMemoBuildErrorNotCached: a failed build reaches every waiter and
// leaves nothing behind, so the next Get retries.
func TestMemoBuildErrorNotCached(t *testing.T) {
	m := NewMemo[int](8)
	boom := errors.New("boom")
	if _, _, err := m.Get("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("Get error = %v, want boom", err)
	}
	if m.Len() != 0 {
		t.Fatalf("error was cached: Len = %d", m.Len())
	}
	v, hit, err := m.Get("k", func() (int, error) { return 7, nil })
	if err != nil || hit || v != 7 {
		t.Fatalf("retry Get = (%d, hit=%v, err=%v), want fresh (7, miss, nil)", v, hit, err)
	}
}

// TestMemoDrop: dropping a key forces a rebuild and counts as an
// eviction.
func TestMemoDrop(t *testing.T) {
	m := NewMemo[int](8)
	m.Get("k", func() (int, error) { return 1, nil })
	m.Drop("k")
	v, hit, _ := m.Get("k", func() (int, error) { return 2, nil })
	if hit || v != 2 {
		t.Fatalf("Get after Drop = (%d, hit=%v), want rebuilt (2, miss)", v, hit)
	}
	if m.Counters().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", m.Counters().Evictions)
	}
}

// TestMemoConcurrentKeys hammers distinct and shared keys under the race
// detector.
func TestMemoConcurrentKeys(t *testing.T) {
	m := NewMemo[string](4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%6)
				v, _, err := m.Get(key, func() (string, error) { return key + "!", nil })
				if err != nil || v != key+"!" {
					t.Errorf("Get(%s) = (%q, %v)", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
