// Package decomp builds the owner-computes decomposition plans shared by
// every parallel execution backend of golts: given an element partition
// (part[e] = owning part) and an element list (the whole mesh, or one LTS
// level's force elements), a Plan records which elements each part applies
// and which global nodes each part's contributions touch.
//
// Two backends consume the same plans:
//
//   - the shared-memory engine (internal/parallel) maps parts onto
//     persistent rank goroutines and reduces the per-part contributions
//     with its sharded in-memory merge, and
//   - the distributed engine (internal/dist) maps parts onto rank
//     processes and exchanges the halo intersections of the touched sets
//     as real messages.
//
// Both assemble the per-part contributions at every node in ascending
// part order, so for a fixed decomposition the two backends — and any
// mapping of parts onto executors — produce bitwise-identical results.
// The Plan is therefore the unit of reproducibility: the decomposition
// width P pins the floating-point merge order, while the executor count
// (goroutines, processes) only changes where each part runs.
package decomp

import (
	"sort"
	"strconv"
	"sync"

	"golts/internal/sem"
)

// Plan is the owner-computes layout of one element list over P parts.
// Plans are immutable after construction and safe for concurrent reads.
type Plan struct {
	// Elems is a private copy of the requested element list, kept for
	// cache validation.
	Elems []int32
	// P is the decomposition width the plan was built for.
	P int
	// Parts[p] holds part p's owned ∩ requested elements in request
	// order, so a single part reproduces the sequential accumulation
	// order bitwise.
	Parts [][]int32
	// Touched[p] is the ascending list of unique global nodes part p's
	// contributions write.
	Touched [][]int32
	// Active lists the parts with at least one element, ascending.
	Active []int
	// Messages and Volume are the per-apply communication-accounting
	// deltas of the MPI analogy: one message per part with data, volume
	// in touched nodes.
	Messages, Volume int64
}

// Build computes the owner-computes plan of one element list: the
// per-part ownership split (request order preserved) and the per-part
// sorted touched-node sets. part[e] must be in [0, nparts) for every
// requested element; op supplies the element connectivity (through its
// flat table when it exposes one).
func Build(op sem.Operator, part []int32, nparts int, elems []int32) *Plan {
	pl := &Plan{
		Elems: append([]int32(nil), elems...),
		P:     nparts,
		Parts: make([][]int32, nparts),
	}
	for _, e := range elems {
		p := part[e]
		pl.Parts[p] = append(pl.Parts[p], e)
	}
	pl.Touched = TouchedNodes(op, pl.Parts)
	for p := 0; p < nparts; p++ {
		if len(pl.Parts[p]) == 0 {
			continue
		}
		pl.Active = append(pl.Active, p)
		pl.Messages++
		pl.Volume += int64(len(pl.Touched[p]))
	}
	return pl
}

// TouchedNodes computes, for each element list, the ascending list of
// unique global nodes its stiffness contributions write. Element
// connectivity comes from the operator's flat table when it exposes one,
// avoiding a per-element copy through ElemNodes.
func TouchedNodes(op sem.Operator, elemLists [][]int32) [][]int32 {
	conn, npe := sem.ConnOf(op)
	touchMap := make([]bool, op.NumNodes())
	var nb []int32
	out := make([][]int32, len(elemLists))
	for p, list := range elemLists {
		if len(list) == 0 {
			continue
		}
		var t []int32
		for _, e := range list {
			var en []int32
			if conn != nil {
				en = conn[int(e)*npe : (int(e)+1)*npe]
			} else {
				nb = op.ElemNodes(int(e), nb[:0])
				en = nb
			}
			for _, n := range en {
				if !touchMap[n] {
					touchMap[n] = true
					t = append(t, n)
				}
			}
		}
		for _, n := range t {
			touchMap[n] = false
		}
		sort.Slice(t, func(i, j int) bool { return t[i] < t[j] })
		out[p] = t
	}
	return out
}

// Shared returns the ascending intersection of two ascending node lists:
// the halo nodes whose contributions two parts (or two part unions) must
// co-assemble. Both inputs must be sorted ascending and duplicate-free.
func Shared(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Union returns the ascending union of the given ascending node lists.
func Union(lists ...[]int32) []int32 {
	var all []int32
	for _, l := range lists {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := all[:1]
	for _, n := range all[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}

// Owners maps every node to the lowest part whose touched set contains
// it, or -1 for nodes no part touches. For an all-elements plan this is
// the canonical disjoint node-ownership used to decide which executor
// reports a node's value (receiver sampling, state gathers).
func Owners(numNodes int, touched [][]int32) []int32 {
	own := make([]int32, numNodes)
	for i := range own {
		own[i] = -1
	}
	for p := len(touched) - 1; p >= 0; p-- {
		for _, n := range touched[p] {
			own[n] = int32(p)
		}
	}
	return own
}

// maxCachedPlans bounds a Cache; steppers use a handful of stable lists
// (one per LTS level), so eviction only triggers under adversarial call
// patterns, where dropping everything is acceptable.
const maxCachedPlans = 256

// Cache maps element-list fingerprints to Plans; it is the plan-shaped
// face of the generic Memo, sharing its LRU bound and traffic counters.
// Hits validate full content against the stored copy, so a hash
// collision or a caller mutating a cached list in place degrades to a
// rebuild, never to a wrong result. Lookup reports when any plan was
// evicted to make room, so callers holding per-Plan side tables can drop
// stale entries.
type Cache struct {
	op     sem.Operator
	part   []int32
	nparts int

	mu   sync.Mutex
	memo *Memo[*Plan]
}

// NewCache creates a plan cache for one (operator, partition) pair.
func NewCache(op sem.Operator, part []int32, nparts int) *Cache {
	return &Cache{op: op, part: part, nparts: nparts, memo: NewMemo[*Plan](maxCachedPlans)}
}

// Lookup returns the cached plan for the element list, building it on a
// miss. The returned pointer is stable for as long as the plan stays
// cached, so callers may key side tables by it; flushed reports whether
// this lookup evicted any previous entry (conservatively: side tables
// keyed by evicted pointers must go, and dropping everything is correct,
// merely slower).
func (c *Cache) Lookup(elems []int32) (pl *Plan, flushed bool) {
	key := strconv.FormatUint(hashElems(elems), 16)
	build := func() (*Plan, error) { return Build(c.op, c.part, c.nparts, elems), nil }
	// The outer mutex serializes lookups so the eviction-counter delta is
	// attributable to this call; steppers drive a Cache from one goroutine
	// at a time, so nothing is lost.
	c.mu.Lock()
	defer c.mu.Unlock()
	before := c.memo.Counters().Evictions
	pl, hit, _ := c.memo.Get(key, build)
	if hit && !sameElems(pl.Elems, elems) {
		// Fingerprint collision, or a caller mutated a cached list in
		// place: drop the stale plan and rebuild under the same key. The
		// Drop counts as an eviction, so this lookup reports flushed.
		c.memo.Drop(key)
		pl, _, _ = c.memo.Get(key, build)
	}
	flushed = c.memo.Counters().Evictions > before
	return pl, flushed
}

// Counters returns the cache's hit/miss/eviction counters.
func (c *Cache) Counters() MemoCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memo.Counters()
}

// hashElems is FNV-1a over the element ids.
func hashElems(elems []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, e := range elems {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(uint8(e >> s))
			h *= 1099511628211
		}
	}
	return h
}

func sameElems(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
