package decomp

import (
	"container/list"
	"fmt"
	"sync"
)

// Memo is a generic, size-bounded, least-recently-used memoization cache
// with single-flight builds: concurrent Gets for one key share a single
// build instead of racing duplicates — the artifact store of the
// simulation service keys meshes, GLL tables, decomposition plans and
// batch plans by canonical config hash through one of these, and the
// plan Cache below is rebased on it. Values are stored as built; callers
// must treat them as immutable (every consumer of a shared artifact in
// this codebase already does). Build errors are returned to every waiter
// and never cached. A Memo is safe for concurrent use.
type Memo[V any] struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	flights map[string]*flight[V]
	ctr     MemoCounters
}

// memoEntry is one cached key/value pair, threaded on the LRU list.
type memoEntry[V any] struct {
	key string
	val V
}

// flight is one in-progress build; joiners block on done.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// MemoCounters is a point-in-time snapshot of a Memo's traffic. A Get
// that joins an in-progress build counts as a hit — the work was shared,
// not repeated.
type MemoCounters struct {
	Hits, Misses, Evictions int64
}

// NewMemo creates a memo bounded to max entries (max < 1 panics: an
// unbounded artifact cache in a long-running service is a leak, so the
// bound is part of the contract).
func NewMemo[V any](max int) *Memo[V] {
	if max < 1 {
		panic(fmt.Sprintf("decomp: NewMemo bound %d < 1", max))
	}
	return &Memo[V]{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		flights: make(map[string]*flight[V]),
	}
}

// Get returns the value for key, building it at most once per residency:
// a cached value returns immediately (hit=true); the first Get of a
// missing key runs build; Gets arriving while a build is in progress
// block and share its result (also hit=true — the build ran once). On a
// build error the error goes to every waiter and nothing is cached.
func (m *Memo[V]) Get(key string, build func() (V, error)) (val V, hit bool, err error) {
	m.mu.Lock()
	if el, ok := m.entries[key]; ok {
		m.order.MoveToFront(el)
		m.ctr.Hits++
		v := el.Value.(*memoEntry[V]).val
		m.mu.Unlock()
		return v, true, nil
	}
	if fl, ok := m.flights[key]; ok {
		m.ctr.Hits++
		m.mu.Unlock()
		<-fl.done
		return fl.val, true, fl.err
	}
	fl := &flight[V]{done: make(chan struct{})}
	m.flights[key] = fl
	m.ctr.Misses++
	m.mu.Unlock()

	fl.val, fl.err = build()
	close(fl.done)

	m.mu.Lock()
	delete(m.flights, key)
	if fl.err == nil {
		m.insert(key, fl.val)
	}
	m.mu.Unlock()
	return fl.val, false, fl.err
}

// insert stores a value, evicting from the LRU tail to stay within the
// bound. Caller holds mu.
func (m *Memo[V]) insert(key string, val V) {
	if el, ok := m.entries[key]; ok {
		el.Value.(*memoEntry[V]).val = val
		m.order.MoveToFront(el)
		return
	}
	for m.order.Len() >= m.max {
		tail := m.order.Back()
		m.order.Remove(tail)
		delete(m.entries, tail.Value.(*memoEntry[V]).key)
		m.ctr.Evictions++
	}
	m.entries[key] = m.order.PushFront(&memoEntry[V]{key: key, val: val})
}

// Drop removes key if cached (in-flight builds are unaffected), for
// callers that detect a stale value — e.g. the plan cache's content
// validation on a fingerprint collision.
func (m *Memo[V]) Drop(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[key]; ok {
		m.order.Remove(el)
		delete(m.entries, key)
		m.ctr.Evictions++
	}
}

// Len returns the number of cached entries.
func (m *Memo[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// Counters returns a snapshot of the traffic counters.
func (m *Memo[V]) Counters() MemoCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ctr
}
