package graph

import (
	"testing"

	"golts/internal/mesh"
)

func trenchSmall() (*mesh.Mesh, *mesh.Levels) {
	m := mesh.Trench(0.02)
	lv := mesh.AssignLevels(m, 0.4, 0)
	return m, lv
}

func TestDualGraphStructure(t *testing.T) {
	m := mesh.Uniform(3, 3, 3, 1, 1)
	lv := mesh.AssignLevels(m, 0.4, 0)
	g := FromMeshDual(m, lv, false)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 27 {
		t.Fatalf("N = %d", g.N)
	}
	// 3x3x3 grid: edges = 3 * 3*3*2 (per direction) = 54.
	if g.NumEdges() != 54 {
		t.Fatalf("edges = %d, want 54", g.NumEdges())
	}
	if g.Components() != 1 {
		t.Fatalf("components = %d", g.Components())
	}
	min, max, mean := g.DegreeStats()
	if min != 3 || max != 6 {
		t.Fatalf("degree min/max = %d/%d, want 3/6", min, max)
	}
	if mean <= 3 || mean >= 6 {
		t.Fatalf("mean degree %v out of range", mean)
	}
}

func TestDualGraphWeights(t *testing.T) {
	m, lv := trenchSmall()
	// Single constraint: weight = p.
	g := FromMeshDual(m, lv, false)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NC() != 1 {
		t.Fatalf("NC = %d", g.NC())
	}
	for v := 0; v < g.N; v++ {
		if int(g.VW[0][v]) != lv.PFor(v) {
			t.Fatalf("vertex %d weight %d, want p = %d", v, g.VW[0][v], lv.PFor(v))
		}
	}
	// Edge weight = max(p_u, p_v).
	for v := 0; v < g.N; v++ {
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := g.Adj[i]
			want := lv.PFor(v)
			if p := lv.PFor(int(u)); p > want {
				want = p
			}
			if int(g.EW[i]) != want {
				t.Fatalf("edge (%d,%d) weight %d, want %d", v, u, g.EW[i], want)
			}
		}
	}
	// Multi-constraint: exactly one unit per vertex, in the right slot.
	mg := FromMeshDual(m, lv, true)
	if mg.NC() != lv.NumLevels {
		t.Fatalf("NC = %d, want %d", mg.NC(), lv.NumLevels)
	}
	for v := 0; v < mg.N; v++ {
		sum := int32(0)
		for c := 0; c < mg.NC(); c++ {
			sum += mg.VW[c][v]
			if mg.VW[c][v] == 1 && c != int(lv.Lvl[v])-1 {
				t.Fatalf("vertex %d has weight in constraint %d but level %d", v, c, lv.Lvl[v])
			}
		}
		if sum != 1 {
			t.Fatalf("vertex %d has total weight %d", v, sum)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	m := mesh.Uniform(4, 1, 1, 1, 1)
	lv := mesh.AssignLevels(m, 0.4, 0)
	g := FromMeshDual(m, lv, false)
	sub, toOld := g.InducedSubgraph([]int32{1, 2})
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.N != 2 || sub.NumEdges() != 1 {
		t.Fatalf("subgraph N=%d E=%d, want 2, 1", sub.N, sub.NumEdges())
	}
	if toOld[0] != 1 || toOld[1] != 2 {
		t.Fatalf("mapping %v", toOld)
	}
}

func TestEdgeCut(t *testing.T) {
	m := mesh.Uniform(2, 1, 1, 1, 1)
	lv := mesh.AssignLevels(m, 0.4, 0)
	g := FromMeshDual(m, lv, false)
	if cut := g.EdgeCut([]int32{0, 0}); cut != 0 {
		t.Errorf("same-part cut %d", cut)
	}
	if cut := g.EdgeCut([]int32{0, 1}); cut != 1 {
		t.Errorf("split cut %d, want 1 (unit p)", cut)
	}
}

func TestTotalWeightMatchesWork(t *testing.T) {
	m, lv := trenchSmall()
	g := FromMeshDual(m, lv, false)
	if got, want := g.TotalWeight()[0], lv.WorkPerCycle(); got != want {
		t.Errorf("total weight %d, want work per cycle %d", got, want)
	}
}

func BenchmarkFromMeshDual(b *testing.B) {
	m := mesh.Trench(0.1)
	lv := mesh.AssignLevels(m, 0.4, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromMeshDual(m, lv, true)
	}
}

func BenchmarkEdgeCut(b *testing.B) {
	m := mesh.Trench(0.1)
	lv := mesh.AssignLevels(m, 0.4, 0)
	g := FromMeshDual(m, lv, false)
	part := make([]int32, g.N)
	for i := range part {
		part[i] = int32(i % 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.EdgeCut(part)
	}
}
