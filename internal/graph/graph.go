// Package graph provides CSR graphs with multi-constraint vertex weights
// and weighted edges, plus the construction of a finite element mesh's dual
// graph (paper §III-A.1): vertices are elements, edges connect elements
// sharing a face, edge weights model the per-cycle synchronisation
// frequency max(p_u, p_v), and vertex weights model per-level work.
package graph

import (
	"fmt"
	"sort"

	"golts/internal/mesh"
)

// Graph is an undirected graph in CSR form.
type Graph struct {
	// N is the vertex count.
	N int
	// Xadj has length N+1; the neighbours of v are Adj[Xadj[v]:Xadj[v+1]].
	Xadj []int32
	// Adj lists neighbour vertices (each undirected edge appears twice).
	Adj []int32
	// EW holds edge weights parallel to Adj.
	EW []int32
	// VW holds vertex weight vectors: VW[c][v] is the weight of vertex v
	// under constraint c. len(VW) >= 1.
	VW [][]int32
}

// NC returns the number of balance constraints.
func (g *Graph) NC() int { return len(g.VW) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Adj) / 2 }

// TotalWeight returns the total vertex weight per constraint.
func (g *Graph) TotalWeight() []int64 {
	t := make([]int64, g.NC())
	for c, w := range g.VW {
		for _, x := range w {
			t[c] += int64(x)
		}
	}
	return t
}

// Validate checks CSR consistency and edge symmetry.
func (g *Graph) Validate() error {
	if len(g.Xadj) != g.N+1 {
		return fmt.Errorf("graph: xadj length %d for %d vertices", len(g.Xadj), g.N)
	}
	if int(g.Xadj[g.N]) != len(g.Adj) || len(g.Adj) != len(g.EW) {
		return fmt.Errorf("graph: adjacency arrays inconsistent")
	}
	for c := range g.VW {
		if len(g.VW[c]) != g.N {
			return fmt.Errorf("graph: constraint %d has %d weights", c, len(g.VW[c]))
		}
	}
	type edge struct{ u, v int32 }
	seen := make(map[edge]int32, len(g.Adj))
	for v := 0; v < g.N; v++ {
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := g.Adj[i]
			if u < 0 || int(u) >= g.N {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbour %d", v, u)
			}
			if u == int32(v) {
				return fmt.Errorf("graph: self loop at %d", v)
			}
			seen[edge{int32(v), u}] = g.EW[i]
		}
	}
	for e, w := range seen {
		if w2, ok := seen[edge{e.v, e.u}]; !ok || w2 != w {
			return fmt.Errorf("graph: edge (%d,%d) not symmetric", e.u, e.v)
		}
	}
	return nil
}

// FromMeshDual builds the dual (face-adjacency) graph of a mesh with LTS
// level information.
//
// multiConstraint=false gives the single-constraint model used by the
// SCOTCH baseline: w[v] = p_v, the per-cycle work of the element.
// multiConstraint=true gives one constraint per level with unit weights
// (paper §III-A.1): w[v, i] = 1 iff element v is on level i.
//
// In both cases the edge weight is max(p_u, p_v): finer elements exchange
// halo data p times per cycle (Fig. 2).
func FromMeshDual(m *mesh.Mesh, lv *mesh.Levels, multiConstraint bool) *Graph {
	n := m.NumElements()
	g := &Graph{N: n}
	g.Xadj = make([]int32, n+1)
	var buf []int32
	for v := 0; v < n; v++ {
		buf = m.FaceNeighbors(v, buf[:0])
		g.Xadj[v+1] = g.Xadj[v] + int32(len(buf))
	}
	g.Adj = make([]int32, g.Xadj[n])
	g.EW = make([]int32, g.Xadj[n])
	for v := 0; v < n; v++ {
		buf = m.FaceNeighbors(v, buf[:0])
		off := g.Xadj[v]
		pv := int32(lv.PFor(v))
		for i, u := range buf {
			g.Adj[off+int32(i)] = u
			pu := int32(lv.PFor(int(u)))
			if pu > pv {
				g.EW[off+int32(i)] = pu
			} else {
				g.EW[off+int32(i)] = pv
			}
		}
	}
	if multiConstraint {
		g.VW = make([][]int32, lv.NumLevels)
		for c := range g.VW {
			g.VW[c] = make([]int32, n)
		}
		for v := 0; v < n; v++ {
			g.VW[int(lv.Lvl[v])-1][v] = 1
		}
	} else {
		w := make([]int32, n)
		for v := 0; v < n; v++ {
			w[v] = int32(lv.PFor(v))
		}
		g.VW = [][]int32{w}
	}
	return g
}

// InducedSubgraph extracts the subgraph on the given vertices (which must
// be distinct). Returns the subgraph and the mapping from new to old ids.
func (g *Graph) InducedSubgraph(vertices []int32) (*Graph, []int32) {
	old2new := make(map[int32]int32, len(vertices))
	for i, v := range vertices {
		old2new[v] = int32(i)
	}
	sub := &Graph{N: len(vertices)}
	sub.Xadj = make([]int32, len(vertices)+1)
	sub.VW = make([][]int32, g.NC())
	for c := range sub.VW {
		sub.VW[c] = make([]int32, len(vertices))
	}
	for i, v := range vertices {
		for c := range g.VW {
			sub.VW[c][i] = g.VW[c][v]
		}
		cnt := int32(0)
		for j := g.Xadj[v]; j < g.Xadj[v+1]; j++ {
			if _, ok := old2new[g.Adj[j]]; ok {
				cnt++
			}
		}
		sub.Xadj[i+1] = sub.Xadj[i] + cnt
	}
	sub.Adj = make([]int32, sub.Xadj[len(vertices)])
	sub.EW = make([]int32, sub.Xadj[len(vertices)])
	for i, v := range vertices {
		off := sub.Xadj[i]
		for j := g.Xadj[v]; j < g.Xadj[v+1]; j++ {
			if nu, ok := old2new[g.Adj[j]]; ok {
				sub.Adj[off] = nu
				sub.EW[off] = g.EW[j]
				off++
			}
		}
	}
	newToOld := append([]int32(nil), vertices...)
	return sub, newToOld
}

// EdgeCut returns the total weight of edges whose endpoints lie in
// different parts.
func (g *Graph) EdgeCut(part []int32) int64 {
	var cut int64
	for v := 0; v < g.N; v++ {
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := g.Adj[i]
			if part[v] != part[u] {
				cut += int64(g.EW[i])
			}
		}
	}
	return cut / 2
}

// Components returns the number of connected components (ignoring weights).
func (g *Graph) Components() int {
	comp := make([]int32, g.N)
	for i := range comp {
		comp[i] = -1
	}
	n := 0
	stack := make([]int32, 0, 64)
	for s := 0; s < g.N; s++ {
		if comp[s] >= 0 {
			continue
		}
		stack = append(stack[:0], int32(s))
		comp[s] = int32(n)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
				if u := g.Adj[i]; comp[u] < 0 {
					comp[u] = int32(n)
					stack = append(stack, u)
				}
			}
		}
		n++
	}
	return n
}

// DegreeStats returns min, max and mean vertex degree (diagnostics).
func (g *Graph) DegreeStats() (min, max int, mean float64) {
	if g.N == 0 {
		return 0, 0, 0
	}
	degs := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		degs[v] = int(g.Xadj[v+1] - g.Xadj[v])
	}
	sort.Ints(degs)
	total := 0
	for _, d := range degs {
		total += d
	}
	return degs[0], degs[g.N-1], float64(total) / float64(g.N)
}
