package partition

import (
	"math/rand"

	"golts/internal/graph"
	"golts/internal/mesh"
)

// SCOTCH-P (paper §III-B.b): each p-level is partitioned separately into K
// parts with a standard single-constraint partitioner, giving per-level
// balance by construction; the per-level parts are then greedily mapped
// onto processors so that parts with high mutual connectivity land on the
// same processor, reducing communication. The paper notes a
// weighted-matching mapping as future work; the greedy coupling below is
// their published variant.

// scotchP partitions each level independently and merges. refineMapping
// additionally improves the greedy coupling with pairwise swaps (the
// paper's future-work mapping upgrade).
func scotchP(m *mesh.Mesh, lv *mesh.Levels, g *graph.Graph, k int, eps float64, rng *rand.Rand, refineMapping bool) []int32 {
	part := make([]int32, m.NumElements())
	levelElems := lv.LevelElements()
	// Order levels by descending element count: the largest level anchors
	// the processor identities.
	order := make([]int, lv.NumLevels)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if len(levelElems[order[j]]) > len(levelElems[order[i]]) {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	// The per-level graphs are partitioned with unit weights (all elements
	// of a level share the same cost).
	unitG := &graph.Graph{N: g.N, Xadj: g.Xadj, Adj: g.Adj, EW: g.EW}
	unit := make([]int32, g.N)
	for i := range unit {
		unit[i] = 1
	}
	unitG.VW = [][]int32{unit}

	assignedAny := false
	// accum[e] = true once element e has a processor.
	for oi, li := range order {
		elems := levelElems[li]
		if len(elems) == 0 {
			continue
		}
		var lp []int32
		if len(elems) <= k {
			// Fewer elements than processors: spread round-robin.
			lp = make([]int32, len(elems))
			for i := range lp {
				lp[i] = int32(i % k)
			}
		} else {
			sub, _ := unitG.InducedSubgraph(elems)
			lp = RecursiveBisectGraph(sub, k, eps, rng)
		}
		if !assignedAny {
			// First (largest) level: its parts define the processors.
			for i, e := range elems {
				part[e] = lp[i]
			}
			assignedAny = true
			continue
		}
		// Greedy coupling: affinity[q][r] = dual-graph edge weight between
		// level part q and the elements already assigned to processor r.
		aff := make([][]int64, k)
		for q := range aff {
			aff[q] = make([]int64, k)
		}
		inLevel := make(map[int32]int32, len(elems)) // element -> level part
		for i, e := range elems {
			inLevel[e] = lp[i]
		}
		for i, e := range elems {
			_ = i
			q := inLevel[e]
			for j := g.Xadj[e]; j < g.Xadj[e+1]; j++ {
				u := g.Adj[j]
				if _, ok := inLevel[u]; ok {
					continue // same level, not yet mapped
				}
				if isAssigned(u, part, lv, levelElems, order, oi) {
					aff[q][part[u]] += int64(g.EW[j])
				}
			}
		}
		// Greedy max assignment: repeatedly take the best (q, r) pair.
		usedQ := make([]bool, k)
		usedR := make([]bool, k)
		mapQ := make([]int32, k)
		for n := 0; n < k; n++ {
			bq, br, bv := -1, -1, int64(-1)
			for q := 0; q < k; q++ {
				if usedQ[q] {
					continue
				}
				for r := 0; r < k; r++ {
					if usedR[r] {
						continue
					}
					if aff[q][r] > bv {
						bq, br, bv = q, r, aff[q][r]
					}
				}
			}
			usedQ[bq] = true
			usedR[br] = true
			mapQ[bq] = int32(br)
		}
		if refineMapping {
			// Pairwise-swap (2-opt) improvement of the coupling: swap two
			// level parts' processors whenever total affinity improves.
			improved := true
			for pass := 0; improved && pass < 8; pass++ {
				improved = false
				for q1 := 0; q1 < k; q1++ {
					for q2 := q1 + 1; q2 < k; q2++ {
						r1, r2 := mapQ[q1], mapQ[q2]
						if aff[q1][r2]+aff[q2][r1] > aff[q1][r1]+aff[q2][r2] {
							mapQ[q1], mapQ[q2] = r2, r1
							improved = true
						}
					}
				}
			}
		}
		for i, e := range elems {
			part[e] = mapQ[lp[i]]
		}
	}
	return part
}

// isAssigned reports whether element u belongs to a level mapped before
// position oi in the processing order.
func isAssigned(u int32, part []int32, lv *mesh.Levels, levelElems [][]int32, order []int, oi int) bool {
	lu := int(lv.Lvl[u]) - 1
	for i := 0; i < oi; i++ {
		if order[i] == lu {
			return true
		}
	}
	return false
}
