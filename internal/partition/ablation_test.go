package partition

import (
	"testing"
)

// Ablations for the design choices DESIGN.md calls out: the
// coarse-cut-only alternative the paper rejects, and the mapping-refined
// SCOTCH-P variant the paper defers to future work.

// TestCoarseCutOnlyNeverCutsFine: the defining property — no refined
// element may sit on a partition boundary against a different part's
// refined element of the same region; equivalently, every face-connected
// refined region lives in exactly one part.
func TestCoarseCutOnlyNeverCutsFine(t *testing.T) {
	m, lv := trenchFixture(0.05)
	res, err := PartitionMesh(m, lv, Options{K: 8, Method: CoarseOnly, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf []int32
	for e := 0; e < m.NumElements(); e++ {
		if lv.PFor(e) == 1 {
			continue
		}
		buf = m.FaceNeighbors(e, buf[:0])
		for _, u := range buf {
			if lv.PFor(int(u)) > 1 && res.Part[u] != res.Part[e] {
				t.Fatalf("refined elements %d and %d split across parts %d/%d",
					e, u, res.Part[e], res.Part[u])
			}
		}
	}
}

// TestCoarseCutOnlyScalabilityLimit demonstrates the paper's objection:
// at small K the approach balances acceptably, but past the point where a
// single refined region outweighs the ideal per-part load, imbalance
// explodes while the LTS-aware methods stay controlled.
func TestCoarseCutOnlyScalabilityLimit(t *testing.T) {
	m, lv := trenchFixture(0.05)
	// The trench's refined band is one connected region: its work is a
	// hard floor on the heaviest part.
	imb := func(method Method, k int) float64 {
		res, err := PartitionMesh(m, lv, Options{K: k, Method: method, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return Evaluate(m, lv, res.Part, k).TotalImbalance
	}
	smallK := imb(CoarseOnly, 4)
	bigK := imb(CoarseOnly, 64)
	if bigK < 2*smallK {
		t.Errorf("coarse-only imbalance did not degrade with K: %.1f%% -> %.1f%%", smallK, bigK)
	}
	if ref := imb(ScotchP, 64); ref >= bigK {
		t.Errorf("scotch-p at K=64 (%.1f%%) should beat coarse-only (%.1f%%)", ref, bigK)
	}
}

// TestScotchPMappingRefinementHelpsOrMatches: the swap-refined coupling
// must never produce more communication volume than the greedy coupling
// (it only accepts affinity-improving swaps), and per-level balance is
// untouched.
func TestScotchPMappingRefinement(t *testing.T) {
	m, lv := trenchFixture(0.1)
	for _, k := range []int{8, 16} {
		greedy, err := PartitionMesh(m, lv, Options{K: k, Method: ScotchP, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		refined, err := PartitionMesh(m, lv, Options{K: k, Method: ScotchPM, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		mg := Evaluate(m, lv, greedy.Part, k)
		mr := Evaluate(m, lv, refined.Part, k)
		// Same per-level loads: the mapping is a permutation per level.
		for li := range mg.PerLevelImbalance {
			if mg.PerLevelImbalance[li] != mr.PerLevelImbalance[li] {
				t.Errorf("K=%d level %d: refinement changed balance %.2f -> %.2f",
					k, li+1, mg.PerLevelImbalance[li], mr.PerLevelImbalance[li])
			}
		}
		// The refined coupling should not lose on volume by more than
		// noise (the swap objective is the dual-graph affinity, a proxy).
		if float64(mr.CommVolume) > 1.05*float64(mg.CommVolume) {
			t.Errorf("K=%d: refined volume %d much worse than greedy %d",
				k, mr.CommVolume, mg.CommVolume)
		}
	}
}

// BenchmarkAblationPartitioners times all six strategies, including the
// two paper-discussed variants.
func BenchmarkAblationPartitioners(b *testing.B) {
	m, lv := trenchFixture(0.05)
	for _, method := range AllMethods {
		b.Run(string(method), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := PartitionMesh(m, lv, Options{K: 16, Method: method, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				mt := Evaluate(m, lv, res.Part, 16)
				b.ReportMetric(mt.TotalImbalance, "imbalance-%")
				b.ReportMetric(float64(mt.CommVolume), "mpi-volume")
			}
		})
	}
}
