package partition

import (
	"math/rand"
	"testing"

	"golts/internal/graph"
	"golts/internal/hypergraph"
	"golts/internal/mesh"
)

func trenchFixture(scale float64) (*mesh.Mesh, *mesh.Levels) {
	m := mesh.Trench(scale)
	lv := mesh.AssignLevels(m, 0.4, 0)
	return m, lv
}

func checkValidPartition(t *testing.T, part []int32, n, k int) {
	t.Helper()
	if len(part) != n {
		t.Fatalf("partition has %d entries for %d elements", len(part), n)
	}
	counts := make([]int, k)
	for e, p := range part {
		if p < 0 || int(p) >= k {
			t.Fatalf("element %d in part %d (K=%d)", e, p, k)
		}
		counts[p]++
	}
	for p, c := range counts {
		if c == 0 {
			t.Errorf("part %d is empty", p)
		}
	}
}

func TestAllMethodsProduceValidPartitions(t *testing.T) {
	m, lv := trenchFixture(0.02)
	for _, method := range Methods {
		for _, k := range []int{2, 4, 7, 16} {
			res, err := PartitionMesh(m, lv, Options{K: k, Method: method, Seed: 1})
			if err != nil {
				t.Fatalf("%s K=%d: %v", method, k, err)
			}
			checkValidPartition(t, res.Part, m.NumElements(), k)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	m, lv := trenchFixture(0.02)
	if _, err := PartitionMesh(m, lv, Options{K: 0, Method: Scotch}); err == nil {
		t.Error("expected error for K=0")
	}
	if _, err := PartitionMesh(m, lv, Options{K: 2, Method: "bogus"}); err == nil {
		t.Error("expected error for unknown method")
	}
}

func TestSingleConstraintBalancesTotalWork(t *testing.T) {
	m, lv := trenchFixture(0.05)
	res, err := PartitionMesh(m, lv, Options{K: 8, Method: Scotch, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	mt := Evaluate(m, lv, res.Part, 8)
	if mt.TotalImbalance > 25 {
		t.Errorf("scotch total imbalance %.1f%% too high", mt.TotalImbalance)
	}
}

// TestScotchBaselineUnbalancedPerLevel reproduces the paper's central
// observation (Fig. 1, Fig. 6): the single-constraint baseline balances
// total work but leaves individual p-levels badly unbalanced, while the
// LTS-aware methods balance every level.
func TestScotchBaselineUnbalancedPerLevel(t *testing.T) {
	m, lv := trenchFixture(0.1)
	base, err := PartitionMesh(m, lv, Options{K: 8, Method: Scotch, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mb := Evaluate(m, lv, base.Part, 8)
	for _, method := range []Method{ScotchP, Patoh} {
		res, err := PartitionMesh(m, lv, Options{K: 8, Method: method, Seed: 3, Imbalance: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		ma := Evaluate(m, lv, res.Part, 8)
		if ma.MaxLevelImbalance >= mb.MaxLevelImbalance {
			t.Errorf("%s max level imbalance %.1f%% not better than baseline %.1f%%",
				method, ma.MaxLevelImbalance, mb.MaxLevelImbalance)
		}
		if ma.MaxLevelImbalance > 40 {
			t.Errorf("%s max level imbalance %.1f%% too high", method, ma.MaxLevelImbalance)
		}
	}
}

func TestScotchPBalancesEachLevelTightly(t *testing.T) {
	m, lv := trenchFixture(0.1)
	res, err := PartitionMesh(m, lv, Options{K: 16, Method: ScotchP, Seed: 4, Imbalance: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	mt := Evaluate(m, lv, res.Part, 16)
	// The paper's Fig. 7 reports ~6% for SCOTCH-P; allow headroom for our
	// smaller meshes.
	if mt.MaxLevelImbalance > 35 {
		t.Errorf("scotch-p max level imbalance %.1f%%", mt.MaxLevelImbalance)
	}
}

// TestPatohImbalanceKnob: tightening final_imbal must improve (or at least
// not worsen) balance, the paper's PaToH 0.05 vs 0.01 comparison.
func TestPatohImbalanceKnob(t *testing.T) {
	m, lv := trenchFixture(0.1)
	loose, err := PartitionMesh(m, lv, Options{K: 16, Method: Patoh, Seed: 5, Imbalance: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := PartitionMesh(m, lv, Options{K: 16, Method: Patoh, Seed: 5, Imbalance: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ml := Evaluate(m, lv, loose.Part, 16)
	mt := Evaluate(m, lv, tight.Part, 16)
	if mt.TotalImbalance > ml.TotalImbalance+10 {
		t.Errorf("tight imbalance %.1f%% much worse than loose %.1f%%",
			mt.TotalImbalance, ml.TotalImbalance)
	}
}

func TestBisectGraphBalance(t *testing.T) {
	m, lv := trenchFixture(0.02)
	g := graph.FromMeshDual(m, lv, false)
	rng := rand.New(rand.NewSource(6))
	part := bisectGraph(g, [2]float64{0.5, 0.5}, 0.05, rng)
	var w [2]int64
	for v := 0; v < g.N; v++ {
		w[part[v]] += int64(g.VW[0][v])
	}
	total := w[0] + w[1]
	dev := float64(w[0]-w[1]) / float64(total)
	if dev < 0 {
		dev = -dev
	}
	if dev > 0.08 {
		t.Errorf("bisection deviation %.3f from 50/50", dev)
	}
	// The cut should be far below the total edge weight (a random split
	// would cut ~half).
	var totalEW int64
	for _, w := range g.EW {
		totalEW += int64(w)
	}
	totalEW /= 2
	cut := g.EdgeCut(toInt32(part))
	if cut*4 > totalEW {
		t.Errorf("bisection cut %d not much better than total %d", cut, totalEW)
	}
}

func toInt32(p []int8) []int32 {
	out := make([]int32, len(p))
	for i, v := range p {
		out[i] = int32(v)
	}
	return out
}

func TestBisectHypergraphBalance(t *testing.T) {
	m, lv := trenchFixture(0.02)
	h := hypergraph.FromMesh(m, lv)
	rng := rand.New(rand.NewSource(7))
	part := bisectH(h, [2]float64{0.5, 0.5}, 0.05, rng)
	// Per-level balance within tolerance-ish.
	nc := h.NC()
	for c := 0; c < nc; c++ {
		var w [2]int64
		for v := 0; v < h.NV; v++ {
			w[part[v]] += int64(h.VW[c][v])
		}
		total := w[0] + w[1]
		if total == 0 {
			continue
		}
		dev := float64(w[0]-w[1]) / float64(total)
		if dev < 0 {
			dev = -dev
		}
		if dev > 0.25 {
			t.Errorf("constraint %d deviation %.3f", c, dev)
		}
	}
}

// TestHypergraphBeatsGraphOnVolume: the PaToH-style partitioner optimises
// true communication volume, so on average it should not lose badly to the
// edge-cut-driven multi-constraint partitioner on that metric (paper Fig.
// 8 shows PaToH winning MPI volume while losing graph cut).
func TestHypergraphVolumeCompetitive(t *testing.T) {
	m, lv := trenchFixture(0.1)
	pat, err := PartitionMesh(m, lv, Options{K: 16, Method: Patoh, Seed: 8, Imbalance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	met, err := PartitionMesh(m, lv, Options{K: 16, Method: Metis, Seed: 8, Imbalance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	vp := Evaluate(m, lv, pat.Part, 16).CommVolume
	vm := Evaluate(m, lv, met.Part, 16).CommVolume
	if float64(vp) > 1.3*float64(vm) {
		t.Errorf("patoh volume %d much worse than metis %d", vp, vm)
	}
}

func TestEvaluateMetricsConsistency(t *testing.T) {
	m, lv := trenchFixture(0.02)
	res, err := PartitionMesh(m, lv, Options{K: 4, Method: ScotchP, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	mt := Evaluate(m, lv, res.Part, 4)
	var total int64
	for _, l := range mt.Loads {
		total += l
	}
	if total != lv.WorkPerCycle() {
		t.Errorf("loads sum %d != work per cycle %d", total, lv.WorkPerCycle())
	}
	if len(mt.PerLevelImbalance) != lv.NumLevels {
		t.Errorf("per-level imbalance has %d entries", len(mt.PerLevelImbalance))
	}
	if mt.CommVolume <= 0 || mt.GraphCut <= 0 {
		t.Errorf("metrics zero: cut=%d vol=%d", mt.GraphCut, mt.CommVolume)
	}
}

func TestImbalancePct(t *testing.T) {
	if got := imbalancePct([]int64{10, 10, 10}); got != 0 {
		t.Errorf("uniform imbalance %v", got)
	}
	if got := imbalancePct([]int64{5, 10}); got != 50 {
		t.Errorf("imbalance %v, want 50", got)
	}
	if got := imbalancePct(nil); got != 0 {
		t.Errorf("empty imbalance %v", got)
	}
	if got := imbalancePct([]int64{0, 0}); got != 0 {
		t.Errorf("zero imbalance %v", got)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	m, lv := trenchFixture(0.02)
	a, _ := PartitionMesh(m, lv, Options{K: 8, Method: Patoh, Seed: 42})
	b, _ := PartitionMesh(m, lv, Options{K: 8, Method: Patoh, Seed: 42})
	for i := range a.Part {
		if a.Part[i] != b.Part[i] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func BenchmarkPartitionTrenchK16(b *testing.B) {
	m, lv := trenchFixture(0.05)
	for _, method := range Methods {
		b.Run(string(method), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := PartitionMesh(m, lv, Options{K: 16, Method: method, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
