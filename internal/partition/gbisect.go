package partition

import (
	"container/heap"
	"math/rand"

	"golts/internal/graph"
)

// Multilevel 2-way graph bisection: heavy-edge-matching coarsening, greedy
// graph growing on the coarsest graph, and boundary FM refinement during
// uncoarsening. Supports multi-constraint vertex weight vectors: balance
// must hold for every constraint (paper Eq. 19).

const gCoarseTarget = 140 // stop coarsening below this many vertices

// gState tracks a 2-way partition of a graph with per-side, per-constraint
// weights.
type gState struct {
	g     *graph.Graph
	part  []int8
	w     [2][]int64 // w[side][constraint]
	total []int64
	tf    [2]float64
	eps   float64
	cut   int64
}

func newGState(g *graph.Graph, part []int8, tf [2]float64, eps float64) *gState {
	s := &gState{g: g, part: part, tf: tf, eps: eps, total: g.TotalWeight()}
	nc := g.NC()
	s.w[0] = make([]int64, nc)
	s.w[1] = make([]int64, nc)
	for v := 0; v < g.N; v++ {
		for c := 0; c < nc; c++ {
			s.w[part[v]][c] += int64(g.VW[c][v])
		}
	}
	s.cut = 0
	for v := 0; v < g.N; v++ {
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			if part[g.Adj[i]] != part[v] {
				s.cut += int64(g.EW[i])
			}
		}
	}
	s.cut /= 2
	return s
}

// cap returns the balance cap for side s, constraint c: (1+ε)·tf_s·total_c.
func (s *gState) cap(side int, c int) int64 {
	return int64((1 + s.eps) * s.tf[side] * float64(s.total[c]))
}

// violation returns the total overload across sides and constraints.
func (s *gState) violation() int64 {
	var v int64
	for side := 0; side < 2; side++ {
		for c := range s.total {
			if over := s.w[side][c] - s.cap(side, c); over > 0 {
				v += over
			}
		}
	}
	return v
}

// moveDeltaViolation returns the violation change if v moves to the other
// side.
func (s *gState) moveDeltaViolation(v int32) int64 {
	from := int(s.part[v])
	to := 1 - from
	var d int64
	for c := range s.total {
		wv := int64(s.g.VW[c][v])
		if wv == 0 {
			continue
		}
		// From side loses wv.
		overF0 := max64(0, s.w[from][c]-s.cap(from, c))
		overF1 := max64(0, s.w[from][c]-wv-s.cap(from, c))
		overT0 := max64(0, s.w[to][c]-s.cap(to, c))
		overT1 := max64(0, s.w[to][c]+wv-s.cap(to, c))
		d += (overF1 - overF0) + (overT1 - overT0)
	}
	return d
}

// gain returns the cut reduction of moving v.
func (s *gState) gain(v int32) int64 {
	var g int64
	for i := s.g.Xadj[v]; i < s.g.Xadj[v+1]; i++ {
		if s.part[s.g.Adj[i]] == s.part[v] {
			g -= int64(s.g.EW[i])
		} else {
			g += int64(s.g.EW[i])
		}
	}
	return g
}

// apply moves v to the other side, updating weights and cut.
func (s *gState) apply(v int32) {
	s.cut -= s.gain(v)
	from := int(s.part[v])
	to := 1 - from
	for c := range s.total {
		wv := int64(s.g.VW[c][v])
		s.w[from][c] -= wv
		s.w[to][c] += wv
	}
	s.part[v] = int8(to)
}

// fmItem is a heap entry with lazy invalidation via version stamps.
type fmItem struct {
	v    int32
	gain int64
	ver  int32
}

type fmHeap []fmItem

func (h fmHeap) Len() int            { return len(h) }
func (h fmHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h fmHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *fmHeap) Push(x interface{}) { *h = append(*h, x.(fmItem)) }
func (h *fmHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// refineFM runs boundary FM passes with rollback until no pass improves
// (violation, cut) lexicographically. maxNeg bounds hill-climbing.
func refineFM(s *gState, passes int, rng *rand.Rand) {
	n := s.g.N
	locked := make([]bool, n)
	version := make([]int32, n)
	for p := 0; p < passes; p++ {
		for i := range locked {
			locked[i] = false
		}
		var h fmHeap
		push := func(v int32) {
			version[v]++
			heap.Push(&h, fmItem{v, s.gain(v), version[v]})
		}
		// Seed with boundary vertices; when the pass starts unbalanced,
		// seed everything so balance repair can reach interior vertices.
		seedAll := n <= 64 || s.violation() > 0
		for v := int32(0); v < int32(n); v++ {
			boundary := seedAll
			if !boundary {
				for i := s.g.Xadj[v]; i < s.g.Xadj[v+1]; i++ {
					if s.part[s.g.Adj[i]] != s.part[v] {
						boundary = true
						break
					}
				}
			}
			if boundary {
				push(v)
			}
		}
		type mv struct{ v int32 }
		var seq []mv
		bestIdx := 0
		bestViol := s.violation()
		bestCut := s.cut
		neg := 0
		maxNeg := 50 + n/20
		for h.Len() > 0 && neg < maxNeg {
			it := heap.Pop(&h).(fmItem)
			v := it.v
			if locked[v] || it.ver != version[v] {
				continue
			}
			// Re-check gain freshness.
			if g := s.gain(v); g != it.gain {
				push(v)
				continue
			}
			dv := s.moveDeltaViolation(v)
			viol := s.violation()
			if viol > 0 {
				// Balance repair mode: only accept violation-reducing
				// moves.
				if dv >= 0 {
					continue
				}
			} else if dv > 0 {
				// Would break balance; skip.
				continue
			}
			s.apply(v)
			locked[v] = true
			seq = append(seq, mv{v})
			// Requeue affected neighbours.
			for i := s.g.Xadj[v]; i < s.g.Xadj[v+1]; i++ {
				u := s.g.Adj[i]
				if !locked[u] {
					push(u)
				}
			}
			curViol := s.violation()
			if curViol < bestViol || (curViol == bestViol && s.cut < bestCut) {
				bestViol, bestCut = curViol, s.cut
				bestIdx = len(seq)
				neg = 0
			} else {
				neg++
			}
		}
		// Roll back to the best prefix.
		improved := bestIdx > 0
		for i := len(seq) - 1; i >= bestIdx; i-- {
			s.apply(seq[i].v)
		}
		if !improved {
			break
		}
	}
}

// growInitial creates an initial bisection by greedy graph growing from a
// random seed: part 1 grows until its scalarised weight reaches the target
// fraction. Multiple tries keep the best (violation, cut).
func growInitial(g *graph.Graph, tf [2]float64, eps float64, rng *rand.Rand) []int8 {
	n := g.N
	tries := 4
	if n < 32 {
		tries = 8
	}
	var bestPart []int8
	var bestViol, bestCut int64 = 1 << 62, 1 << 62
	total := g.TotalWeight()
	nc := g.NC()
	for t := 0; t < tries; t++ {
		part := make([]int8, n)
		w1 := make([]int64, nc)
		// Scalar progress: mean of per-constraint fractions.
		progress := func() float64 {
			s := 0.0
			cnt := 0
			for c := 0; c < nc; c++ {
				if total[c] > 0 {
					s += float64(w1[c]) / float64(total[c])
					cnt++
				}
			}
			if cnt == 0 {
				return 1
			}
			return s / float64(cnt)
		}
		seed := int32(rng.Intn(n))
		inOne := make([]bool, n)
		moveTo1 := func(v int32) {
			part[v] = 1
			inOne[v] = true
			for c := 0; c < nc; c++ {
				w1[c] += int64(g.VW[c][v])
			}
		}
		// fits keeps every constraint within its side-1 cap during growth.
		fits := func(v int32) bool {
			for c := 0; c < nc; c++ {
				wv := int64(g.VW[c][v])
				if wv > 0 && w1[c]+wv > int64((1+eps)*tf[1]*float64(total[c])) {
					return false
				}
			}
			return true
		}
		moveTo1(seed)
		// Frontier scored by gain.
		gain := func(v int32) int64 {
			var gn int64
			for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
				if inOne[g.Adj[i]] {
					gn += int64(g.EW[i])
				} else {
					gn -= int64(g.EW[i])
				}
			}
			return gn
		}
		var h fmHeap
		ver := make([]int32, n)
		push := func(v int32) {
			ver[v]++
			heap.Push(&h, fmItem{v, gain(v), ver[v]})
		}
		for i := g.Xadj[seed]; i < g.Xadj[seed+1]; i++ {
			push(g.Adj[i])
		}
		for progress() < tf[1] && h.Len() > 0 {
			it := heap.Pop(&h).(fmItem)
			if inOne[it.v] || it.ver != ver[it.v] {
				continue
			}
			if gn := gain(it.v); gn != it.gain {
				push(it.v)
				continue
			}
			if !fits(it.v) {
				continue
			}
			moveTo1(it.v)
			for i := g.Xadj[it.v]; i < g.Xadj[it.v+1]; i++ {
				if u := g.Adj[i]; !inOne[u] {
					push(u)
				}
			}
		}
		// If the frontier died (disconnected graph or cap-blocked) before
		// reaching the target, add random fitting vertices, giving up
		// after a bounded number of misses (FM repairs the rest).
		for misses := 0; progress() < tf[1] && misses < 4*n; {
			v := int32(rng.Intn(n))
			if !inOne[v] && fits(v) {
				moveTo1(v)
			} else {
				misses++
			}
		}
		st := newGState(g, part, tf, eps)
		refineFM(st, 2, rng)
		if v := st.violation(); v < bestViol || (v == bestViol && st.cut < bestCut) {
			bestViol, bestCut = v, st.cut
			bestPart = append(bestPart[:0], part...)
		}
	}
	return bestPart
}

// coarsenGraph contracts a heavy-edge matching, returning the coarse graph
// and the fine-to-coarse vertex map. Matching respects per-constraint
// weight caps so no coarse vertex becomes unsplittable.
func coarsenGraph(g *graph.Graph, rng *rand.Rand) (*graph.Graph, []int32) {
	n := g.N
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	total := g.TotalWeight()
	nc := g.NC()
	caps := make([]int64, nc)
	for c := range caps {
		caps[c] = total[c]/8 + 1
	}
	order := rng.Perm(n)
	cmap := make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	var nCoarse int32
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		var best int32 = -1
		var bestW int64 = -1
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := g.Adj[i]
			if match[u] >= 0 {
				continue
			}
			ok := true
			for c := 0; c < nc; c++ {
				if int64(g.VW[c][v])+int64(g.VW[c][u]) > caps[c] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if int64(g.EW[i]) > bestW {
				bestW = int64(g.EW[i])
				best = u
			}
		}
		if best >= 0 {
			match[v], match[best] = best, v
			cmap[v] = nCoarse
			cmap[best] = nCoarse
		} else {
			match[v] = v
			cmap[v] = nCoarse
		}
		nCoarse++
	}
	// Build coarse graph.
	cg := &graph.Graph{N: int(nCoarse)}
	cg.VW = make([][]int32, nc)
	for c := range cg.VW {
		cg.VW[c] = make([]int32, nCoarse)
	}
	for v := 0; v < n; v++ {
		for c := 0; c < nc; c++ {
			cg.VW[c][cmap[v]] += g.VW[c][v]
		}
	}
	// Aggregate edges with a per-coarse-vertex accumulator.
	type centry struct {
		to int32
		w  int64
	}
	adjLists := make([][]centry, nCoarse)
	for v := 0; v < n; v++ {
		cv := cmap[v]
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			cu := cmap[g.Adj[i]]
			if cu == cv {
				continue
			}
			// Linear scan of the (short) coarse adjacency list.
			found := false
			for j := range adjLists[cv] {
				if adjLists[cv][j].to == cu {
					adjLists[cv][j].w += int64(g.EW[i])
					found = true
					break
				}
			}
			if !found {
				adjLists[cv] = append(adjLists[cv], centry{cu, int64(g.EW[i])})
			}
		}
	}
	cg.Xadj = make([]int32, nCoarse+1)
	for cv := int32(0); cv < nCoarse; cv++ {
		cg.Xadj[cv+1] = cg.Xadj[cv] + int32(len(adjLists[cv]))
	}
	cg.Adj = make([]int32, cg.Xadj[nCoarse])
	cg.EW = make([]int32, cg.Xadj[nCoarse])
	for cv := int32(0); cv < nCoarse; cv++ {
		off := cg.Xadj[cv]
		for j, e := range adjLists[cv] {
			cg.Adj[off+int32(j)] = e.to
			w := e.w
			if w > (1 << 30) {
				w = 1 << 30
			}
			cg.EW[off+int32(j)] = int32(w)
		}
	}
	return cg, cmap
}

// bisectGraph performs the full multilevel bisection.
func bisectGraph(g *graph.Graph, tf [2]float64, eps float64, rng *rand.Rand) []int8 {
	if g.N <= gCoarseTarget {
		part := growInitial(g, tf, eps, rng)
		st := newGState(g, part, tf, eps)
		refineFM(st, 3, rng)
		return part
	}
	cg, cmap := coarsenGraph(g, rng)
	if cg.N > g.N*19/20 {
		// Coarsening stalled; partition directly.
		part := growInitial(g, tf, eps, rng)
		st := newGState(g, part, tf, eps)
		refineFM(st, 3, rng)
		return part
	}
	cpart := bisectGraph(cg, tf, eps, rng)
	part := make([]int8, g.N)
	for v := 0; v < g.N; v++ {
		part[v] = cpart[cmap[v]]
	}
	st := newGState(g, part, tf, eps)
	refineFM(st, 2, rng)
	return part
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
