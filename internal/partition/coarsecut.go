package partition

import (
	"math/rand"

	"golts/internal/graph"
	"golts/internal/mesh"
)

// CoarseCutOnly implements the two-level strategy of Gödel et al. [7] that
// the paper considers and rejects (§III): partitions may only cut across
// coarse (p = 1) elements, so MPI synchronisation is needed only every Δt
// and never inside substeps. Each face-connected region of refined
// elements is contracted into an atomic supervertex before a standard
// weighted partition.
//
// The paper's objection — "it inherently limits the scalability with an
// artificially high lower limit on the number of elements per partition" —
// falls out naturally: once K grows past (total work)/(largest refined
// region), balance collapses. The ablation benchmarks demonstrate exactly
// that.
func CoarseCutOnly(m *mesh.Mesh, lv *mesh.Levels, k int, eps float64, rng *rand.Rand) []int32 {
	n := m.NumElements()
	// Union refined elements into face-connected regions.
	super := make([]int32, n) // element -> supervertex id
	for i := range super {
		super[i] = -1
	}
	var nSuper int32
	stack := make([]int32, 0, 64)
	var buf []int32
	for e := 0; e < n; e++ {
		if lv.PFor(e) == 1 || super[e] >= 0 {
			continue
		}
		id := nSuper
		nSuper++
		super[e] = id
		stack = append(stack[:0], int32(e))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			buf = m.FaceNeighbors(int(v), buf[:0])
			for _, u := range buf {
				if lv.PFor(int(u)) > 1 && super[u] < 0 {
					super[u] = id
					stack = append(stack, u)
				}
			}
		}
	}
	// Coarse elements become their own vertices after the supervertices.
	vid := make([]int32, n)
	next := nSuper
	for e := 0; e < n; e++ {
		if super[e] >= 0 {
			vid[e] = super[e]
		} else {
			vid[e] = next
			next++
		}
	}
	nv := int(next)
	// Contracted weighted graph: vertex weight = total work (Σ p), edge
	// weights aggregated.
	g := &graph.Graph{N: nv}
	w := make([]int32, nv)
	for e := 0; e < n; e++ {
		w[vid[e]] += int32(lv.PFor(e))
	}
	g.VW = [][]int32{w}
	type ed struct {
		to int32
		w  int64
	}
	adj := make([][]ed, nv)
	for e := 0; e < n; e++ {
		buf = m.FaceNeighbors(e, buf[:0])
		ve := vid[e]
		for _, u := range buf {
			vu := vid[u]
			if vu == ve {
				continue
			}
			found := false
			for i := range adj[ve] {
				if adj[ve][i].to == vu {
					adj[ve][i].w++
					found = true
					break
				}
			}
			if !found {
				adj[ve] = append(adj[ve], ed{vu, 1})
			}
		}
	}
	g.Xadj = make([]int32, nv+1)
	for v := 0; v < nv; v++ {
		g.Xadj[v+1] = g.Xadj[v] + int32(len(adj[v]))
	}
	g.Adj = make([]int32, g.Xadj[nv])
	g.EW = make([]int32, g.Xadj[nv])
	for v := 0; v < nv; v++ {
		off := g.Xadj[v]
		for i, e := range adj[v] {
			g.Adj[off+int32(i)] = e.to
			g.EW[off+int32(i)] = int32(e.w)
		}
	}
	cpart := RecursiveBisectGraph(g, k, eps, rng)
	part := make([]int32, n)
	for e := 0; e < n; e++ {
		part[e] = cpart[vid[e]]
	}
	return part
}
