package partition

import (
	"container/heap"
	"math/rand"
	"sort"

	"golts/internal/hypergraph"
)

// Multilevel 2-way hypergraph bisection with multi-constraint balance and
// the cut-net objective (for two parts, connectivity-1 and cut-net
// coincide). This is the PaToH stand-in: because the net costs encode the
// per-level communication frequency, minimizing this cut minimizes true
// MPI volume (paper §III-A.2).

const hCoarseTarget = 120

type hState struct {
	h     *hypergraph.Hypergraph
	part  []int8
	pc    [][2]int32 // pins per side, per net
	w     [2][]int64
	total []int64
	tf    [2]float64
	eps   float64
	cut   int64
}

func newHState(h *hypergraph.Hypergraph, part []int8, tf [2]float64, eps float64) *hState {
	s := &hState{h: h, part: part, tf: tf, eps: eps, total: h.TotalWeight()}
	nc := h.NC()
	s.w[0] = make([]int64, nc)
	s.w[1] = make([]int64, nc)
	for v := 0; v < h.NV; v++ {
		for c := 0; c < nc; c++ {
			s.w[part[v]][c] += int64(h.VW[c][v])
		}
	}
	s.pc = make([][2]int32, h.NumNets())
	for n := 0; n < h.NumNets(); n++ {
		for i := h.Xpins[n]; i < h.Xpins[n+1]; i++ {
			s.pc[n][part[h.Pins[i]]]++
		}
		if s.pc[n][0] > 0 && s.pc[n][1] > 0 {
			s.cut += int64(h.Cost[n])
		}
	}
	return s
}

func (s *hState) cap(side, c int) int64 {
	return int64((1 + s.eps) * s.tf[side] * float64(s.total[c]))
}

func (s *hState) violation() int64 {
	var v int64
	for side := 0; side < 2; side++ {
		for c := range s.total {
			if over := s.w[side][c] - s.cap(side, c); over > 0 {
				v += over
			}
		}
	}
	return v
}

func (s *hState) moveDeltaViolation(v int32) int64 {
	from := int(s.part[v])
	to := 1 - from
	var d int64
	for c := range s.total {
		wv := int64(s.h.VW[c][v])
		if wv == 0 {
			continue
		}
		overF0 := max64(0, s.w[from][c]-s.cap(from, c))
		overF1 := max64(0, s.w[from][c]-wv-s.cap(from, c))
		overT0 := max64(0, s.w[to][c]-s.cap(to, c))
		overT1 := max64(0, s.w[to][c]+wv-s.cap(to, c))
		d += (overF1 - overF0) + (overT1 - overT0)
	}
	return d
}

// gain returns the cut reduction of moving v: nets that become internal
// gain +cost, nets that become cut gain -cost.
func (s *hState) gain(v int32) int64 {
	from := s.part[v]
	to := 1 - from
	var g int64
	for i := s.h.Xnets[v]; i < s.h.Xnets[v+1]; i++ {
		n := s.h.VNets[i]
		if s.pc[n][to] == 0 {
			g -= int64(s.h.Cost[n]) // becomes cut
		}
		if s.pc[n][from] == 1 {
			g += int64(s.h.Cost[n]) // becomes uncut
		}
	}
	return g
}

func (s *hState) apply(v int32) {
	s.cut -= s.gain(v)
	from := int(s.part[v])
	to := 1 - from
	for c := range s.total {
		wv := int64(s.h.VW[c][v])
		s.w[from][c] -= wv
		s.w[to][c] += wv
	}
	for i := s.h.Xnets[v]; i < s.h.Xnets[v+1]; i++ {
		n := s.h.VNets[i]
		s.pc[n][from]--
		s.pc[n][to]++
	}
	s.part[v] = int8(to)
}

// boundary reports whether v touches any cut net.
func (s *hState) boundary(v int32) bool {
	for i := s.h.Xnets[v]; i < s.h.Xnets[v+1]; i++ {
		n := s.h.VNets[i]
		if s.pc[n][0] > 0 && s.pc[n][1] > 0 {
			return true
		}
	}
	return false
}

func refineHFM(s *hState, passes int, rng *rand.Rand) {
	n := s.h.NV
	locked := make([]bool, n)
	version := make([]int32, n)
	for p := 0; p < passes; p++ {
		for i := range locked {
			locked[i] = false
		}
		var h fmHeap
		push := func(v int32) {
			version[v]++
			heap.Push(&h, fmItem{v, s.gain(v), version[v]})
		}
		// Seed with boundary vertices; when the pass starts unbalanced,
		// seed everything so balance repair can reach interior vertices
		// even if the overloaded region's boundary is unproductive.
		seedAll := n <= 64 || s.violation() > 0
		for v := int32(0); v < int32(n); v++ {
			if seedAll || s.boundary(v) {
				push(v)
			}
		}
		var seq []int32
		bestIdx := 0
		bestViol := s.violation()
		bestCut := s.cut
		neg := 0
		maxNeg := 50 + n/20
		for h.Len() > 0 && neg < maxNeg {
			it := heap.Pop(&h).(fmItem)
			v := it.v
			if locked[v] || it.ver != version[v] {
				continue
			}
			if g := s.gain(v); g != it.gain {
				push(v)
				continue
			}
			dv := s.moveDeltaViolation(v)
			viol := s.violation()
			if viol > 0 {
				if dv >= 0 {
					continue
				}
			} else if dv > 0 {
				continue
			}
			s.apply(v)
			locked[v] = true
			seq = append(seq, v)
			// Requeue pins of v's nets.
			for i := s.h.Xnets[v]; i < s.h.Xnets[v+1]; i++ {
				nt := s.h.VNets[i]
				for j := s.h.Xpins[nt]; j < s.h.Xpins[nt+1]; j++ {
					u := s.h.Pins[j]
					if u != v && !locked[u] {
						push(u)
					}
				}
			}
			curViol := s.violation()
			if curViol < bestViol || (curViol == bestViol && s.cut < bestCut) {
				bestViol, bestCut = curViol, s.cut
				bestIdx = len(seq)
				neg = 0
			} else {
				neg++
			}
		}
		improved := bestIdx > 0
		for i := len(seq) - 1; i >= bestIdx; i-- {
			s.apply(seq[i])
		}
		if !improved {
			break
		}
	}
}

func growInitialH(h *hypergraph.Hypergraph, tf [2]float64, eps float64, rng *rand.Rand) []int8 {
	n := h.NV
	tries := 4
	var bestPart []int8
	var bestViol, bestCut int64 = 1 << 62, 1 << 62
	total := h.TotalWeight()
	nc := h.NC()
	for t := 0; t < tries; t++ {
		part := make([]int8, n)
		st := newHState(h, part, tf, eps)
		seed := int32(rng.Intn(n))
		progress := func() float64 {
			s, cnt := 0.0, 0
			for c := 0; c < nc; c++ {
				if total[c] > 0 {
					s += float64(st.w[1][c]) / float64(total[c])
					cnt++
				}
			}
			if cnt == 0 {
				return 1
			}
			return s / float64(cnt)
		}
		// fits reports whether adding v to side 1 keeps every constraint
		// within its cap, so a high-cost dominant constraint cannot be
		// starved while small constraints saturate.
		fits := func(v int32) bool {
			for c := 0; c < nc; c++ {
				wv := int64(h.VW[c][v])
				if wv > 0 && st.w[1][c]+wv > st.cap(1, c) {
					return false
				}
			}
			return true
		}
		var hp fmHeap
		ver := make([]int32, n)
		push := func(v int32) {
			ver[v]++
			heap.Push(&hp, fmItem{v, st.gain(v), ver[v]})
		}
		st.apply(seed)
		for i := h.Xnets[seed]; i < h.Xnets[seed+1]; i++ {
			nt := h.VNets[i]
			for j := h.Xpins[nt]; j < h.Xpins[nt+1]; j++ {
				if u := h.Pins[j]; st.part[u] == 0 {
					push(u)
				}
			}
		}
		for progress() < tf[1] && hp.Len() > 0 {
			it := heap.Pop(&hp).(fmItem)
			if st.part[it.v] == 1 || it.ver != ver[it.v] {
				continue
			}
			if g := st.gain(it.v); g != it.gain {
				push(it.v)
				continue
			}
			if !fits(it.v) {
				continue
			}
			st.apply(it.v)
			for i := h.Xnets[it.v]; i < h.Xnets[it.v+1]; i++ {
				nt := h.VNets[i]
				for j := h.Xpins[nt]; j < h.Xpins[nt+1]; j++ {
					if u := h.Pins[j]; st.part[u] == 0 {
						push(u)
					}
				}
			}
		}
		// Fill any residual deficit with random fitting vertices; give up
		// after a bounded number of misses (FM repairs the rest).
		for misses := 0; progress() < tf[1] && misses < 4*n; {
			v := int32(rng.Intn(n))
			if st.part[v] == 0 && fits(v) {
				st.apply(v)
			} else {
				misses++
			}
		}
		refineHFM(st, 2, rng)
		if v := st.violation(); v < bestViol || (v == bestViol && st.cut < bestCut) {
			bestViol, bestCut = v, st.cut
			bestPart = append(bestPart[:0], part...)
		}
	}
	return bestPart
}

// coarsenH contracts a heavy-connectivity matching: each vertex prefers the
// unmatched neighbour with which it shares the highest total net cost.
func coarsenH(h *hypergraph.Hypergraph, rng *rand.Rand) (*hypergraph.Hypergraph, []int32) {
	n := h.NV
	match := make([]int32, n)
	cmap := make([]int32, n)
	for i := range match {
		match[i] = -1
		cmap[i] = -1
	}
	total := h.TotalWeight()
	nc := h.NC()
	caps := make([]int64, nc)
	for c := range caps {
		caps[c] = total[c]/8 + 1
	}
	score := make(map[int32]int64, 32)
	order := rng.Perm(n)
	var nCoarse int32
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		for k := range score {
			delete(score, k)
		}
		for i := h.Xnets[v]; i < h.Xnets[v+1]; i++ {
			nt := h.VNets[i]
			cost := int64(h.Cost[nt])
			for j := h.Xpins[nt]; j < h.Xpins[nt+1]; j++ {
				u := h.Pins[j]
				if u != v && match[u] < 0 {
					score[u] += cost
				}
			}
		}
		var best int32 = -1
		var bestS int64 = -1
		for u, sc := range score {
			ok := true
			for c := 0; c < nc; c++ {
				if int64(h.VW[c][v])+int64(h.VW[c][u]) > caps[c] {
					ok = false
					break
				}
			}
			if ok && (sc > bestS || (sc == bestS && u < best)) {
				bestS, best = sc, u
			}
		}
		if best >= 0 {
			match[v], match[best] = best, v
			cmap[v], cmap[best] = nCoarse, nCoarse
		} else {
			match[v] = v
			cmap[v] = nCoarse
		}
		nCoarse++
	}
	ch := &hypergraph.Hypergraph{NV: int(nCoarse)}
	ch.VW = make([][]int32, nc)
	for c := range ch.VW {
		ch.VW[c] = make([]int32, nCoarse)
	}
	for v := 0; v < n; v++ {
		for c := 0; c < nc; c++ {
			ch.VW[c][cmap[v]] += h.VW[c][v]
		}
	}
	// Rebuild nets: map pins, dedupe within each net, drop singletons.
	// Pins are sorted so the construction is order-deterministic.
	ch.Xpins = append(ch.Xpins, 0)
	var pinBuf []int32
	for nt := 0; nt < h.NumNets(); nt++ {
		pinBuf = pinBuf[:0]
		for i := h.Xpins[nt]; i < h.Xpins[nt+1]; i++ {
			pinBuf = append(pinBuf, cmap[h.Pins[i]])
		}
		sort.Slice(pinBuf, func(a, b int) bool { return pinBuf[a] < pinBuf[b] })
		u := pinBuf[:0]
		var prev int32 = -1
		for _, p := range pinBuf {
			if p != prev {
				u = append(u, p)
				prev = p
			}
		}
		if len(u) < 2 {
			continue
		}
		ch.Pins = append(ch.Pins, u...)
		ch.Xpins = append(ch.Xpins, int32(len(ch.Pins)))
		ch.Cost = append(ch.Cost, h.Cost[nt])
	}
	ch.BuildVertexIncidence()
	return ch, cmap
}

func bisectH(h *hypergraph.Hypergraph, tf [2]float64, eps float64, rng *rand.Rand) []int8 {
	if h.NV <= hCoarseTarget {
		part := growInitialH(h, tf, eps, rng)
		st := newHState(h, part, tf, eps)
		refineHFM(st, 3, rng)
		return part
	}
	ch, cmap := coarsenH(h, rng)
	if ch.NV > h.NV*19/20 {
		part := growInitialH(h, tf, eps, rng)
		st := newHState(h, part, tf, eps)
		refineHFM(st, 3, rng)
		return part
	}
	cpart := bisectH(ch, tf, eps, rng)
	part := make([]int8, h.NV)
	for v := 0; v < h.NV; v++ {
		part[v] = cpart[cmap[v]]
	}
	st := newHState(h, part, tf, eps)
	refineHFM(st, 2, rng)
	return part
}

// inducedSubhypergraph extracts the hypergraph on the given vertices,
// keeping only nets with >= 2 remaining pins.
func inducedSubhypergraph(h *hypergraph.Hypergraph, vertices []int32) (*hypergraph.Hypergraph, []int32) {
	old2new := make(map[int32]int32, len(vertices))
	for i, v := range vertices {
		old2new[v] = int32(i)
	}
	sub := &hypergraph.Hypergraph{NV: len(vertices)}
	sub.VW = make([][]int32, h.NC())
	for c := range sub.VW {
		sub.VW[c] = make([]int32, len(vertices))
	}
	for i, v := range vertices {
		for c := range h.VW {
			sub.VW[c][i] = h.VW[c][v]
		}
	}
	sub.Xpins = append(sub.Xpins, 0)
	var pinBuf []int32
	for nt := 0; nt < h.NumNets(); nt++ {
		pinBuf = pinBuf[:0]
		for i := h.Xpins[nt]; i < h.Xpins[nt+1]; i++ {
			if nv, ok := old2new[h.Pins[i]]; ok {
				pinBuf = append(pinBuf, nv)
			}
		}
		if len(pinBuf) < 2 {
			continue
		}
		sub.Pins = append(sub.Pins, pinBuf...)
		sub.Xpins = append(sub.Xpins, int32(len(sub.Pins)))
		sub.Cost = append(sub.Cost, h.Cost[nt])
	}
	sub.BuildVertexIncidence()
	newToOld := append([]int32(nil), vertices...)
	return sub, newToOld
}

// RecursiveBisectHypergraph partitions h into k parts by recursive
// bisection with per-bisection tolerance eps.
func RecursiveBisectHypergraph(h *hypergraph.Hypergraph, k int, eps float64, rng *rand.Rand) []int32 {
	part := make([]int32, h.NV)
	if k <= 1 {
		return part
	}
	all := make([]int32, h.NV)
	for i := range all {
		all[i] = int32(i)
	}
	rbH(h, all, k, 0, eps, rng, part)
	return part
}

func rbH(h *hypergraph.Hypergraph, vertices []int32, k int, base int32, eps float64, rng *rand.Rand, out []int32) {
	if k == 1 || len(vertices) <= 1 {
		for _, v := range vertices {
			out[v] = base
		}
		return
	}
	k1 := (k + 1) / 2
	k2 := k - k1
	tf := [2]float64{float64(k1) / float64(k), float64(k2) / float64(k)}
	sub, toOld := inducedSubhypergraph(h, vertices)
	p := bisectH(sub, tf, eps, rng)
	var side0, side1 []int32
	for i, s := range p {
		if s == 0 {
			side0 = append(side0, toOld[i])
		} else {
			side1 = append(side1, toOld[i])
		}
	}
	for len(side0) == 0 && len(side1) > 1 {
		side0 = append(side0, side1[len(side1)-1])
		side1 = side1[:len(side1)-1]
	}
	for len(side1) == 0 && len(side0) > 1 {
		side1 = append(side1, side0[len(side0)-1])
		side0 = side0[:len(side0)-1]
	}
	rbH(h, side0, k1, base, eps, rng, out)
	rbH(h, side1, k2, base+int32(k1), eps, rng, out)
}
