package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"golts/internal/hypergraph"
	"golts/internal/mesh"
)

// Property: Eq. 21 imbalance is always in [0, 100] and zero iff all loads
// equal.
func TestImbalanceProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		loads := make([]int64, len(raw))
		allEq := true
		for i, v := range raw {
			loads[i] = int64(v)
			if v != raw[0] {
				allEq = false
			}
		}
		p := imbalancePct(loads)
		if p < 0 || p > 100 {
			return false
		}
		if allEq && p != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: for any random partition, the hypergraph cut is bounded by
// Σ cost(n)·(min(pins, K)-1) and is zero for the all-in-one partition.
func TestCutBoundsProperty(t *testing.T) {
	m := mesh.Trench(0.01)
	lv := mesh.AssignLevels(m, 0.4, 0)
	h := hypergraph.FromMesh(m, lv)
	zero := make([]int32, h.NV)
	if h.CutSize(zero, 4) != 0 {
		t.Fatal("all-in-one partition has nonzero cut")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const k = 5
		part := make([]int32, h.NV)
		for i := range part {
			part[i] = int32(rng.Intn(k))
		}
		cut := h.CutSize(part, k)
		var bound int64
		for n := 0; n < h.NumNets(); n++ {
			pins := int(h.Xpins[n+1] - h.Xpins[n])
			lim := pins
			if k < lim {
				lim = k
			}
			bound += int64(h.Cost[n]) * int64(lim-1)
		}
		return cut >= 0 && cut <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: every partitioner covers all elements with parts in [0, K).
func TestPartitionRangeProperty(t *testing.T) {
	m := mesh.Trench(0.01)
	lv := mesh.AssignLevels(m, 0.4, 0)
	f := func(seed int64, kRaw uint8, mi uint8) bool {
		k := 2 + int(kRaw%7)
		method := Methods[int(mi)%len(Methods)]
		res, err := PartitionMesh(m, lv, Options{K: k, Method: method, Seed: seed})
		if err != nil {
			t.Logf("%s: %v", method, err)
			return false
		}
		for _, p := range res.Part {
			if p < 0 || int(p) >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: moving one element between parts changes the evaluated total
// load by exactly its work weight (metric consistency).
func TestEvaluateMoveConsistencyProperty(t *testing.T) {
	m := mesh.Trench(0.01)
	lv := mesh.AssignLevels(m, 0.4, 0)
	base, err := PartitionMesh(m, lv, Options{K: 4, Method: ScotchP, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := func(eRaw uint16) bool {
		e := int(eRaw) % m.NumElements()
		part := append([]int32(nil), base.Part...)
		from := part[e]
		to := (from + 1) % 4
		m0 := Evaluate(m, lv, part, 4)
		part[e] = to
		m1 := Evaluate(m, lv, part, 4)
		w := int64(lv.PFor(e))
		return m1.Loads[from] == m0.Loads[from]-w && m1.Loads[to] == m0.Loads[to]+w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
