package partition

import (
	"math/rand"

	"golts/internal/graph"
)

// RecursiveBisectGraph partitions g into k parts by recursive bisection:
// each bisection targets fractions proportional to the number of leaf parts
// on each side, so any k (not just powers of two) is balanced. eps is the
// per-bisection balance tolerance for every constraint.
func RecursiveBisectGraph(g *graph.Graph, k int, eps float64, rng *rand.Rand) []int32 {
	part := make([]int32, g.N)
	if k <= 1 {
		return part
	}
	all := make([]int32, g.N)
	for i := range all {
		all[i] = int32(i)
	}
	rbGraph(g, all, k, 0, eps, rng, part)
	return part
}

// rbGraph assigns parts [base, base+k) to the given vertices of g.
func rbGraph(g *graph.Graph, vertices []int32, k int, base int32, eps float64, rng *rand.Rand, out []int32) {
	if k == 1 || len(vertices) <= 1 {
		for _, v := range vertices {
			out[v] = base
		}
		return
	}
	k1 := (k + 1) / 2
	k2 := k - k1
	tf := [2]float64{float64(k1) / float64(k), float64(k2) / float64(k)}
	sub, toOld := g.InducedSubgraph(vertices)
	p := bisectGraph(sub, tf, eps, rng)
	var side0, side1 []int32
	for i, s := range p {
		if s == 0 {
			side0 = append(side0, toOld[i])
		} else {
			side1 = append(side1, toOld[i])
		}
	}
	// Guard against degenerate empty sides (tiny subgraphs): steal
	// vertices to keep every part nonempty.
	for len(side0) == 0 && len(side1) > 1 {
		side0 = append(side0, side1[len(side1)-1])
		side1 = side1[:len(side1)-1]
	}
	for len(side1) == 0 && len(side0) > 1 {
		side1 = append(side1, side0[len(side0)-1])
		side0 = side0[:len(side0)-1]
	}
	rbGraph(g, side0, k1, base, eps, rng, out)
	rbGraph(g, side1, k2, base+int32(k1), eps, rng, out)
}
