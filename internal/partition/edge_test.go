package partition

import (
	"testing"

	"golts/internal/mesh"
)

// Edge cases and failure injection for the partitioning stack.

// TestUniformMeshAllMethods: with a single level the multi-constraint
// machinery degenerates gracefully (one constraint, one level list).
func TestUniformMeshAllMethods(t *testing.T) {
	m := mesh.Uniform(6, 6, 6, 1, 1)
	lv := mesh.AssignLevels(m, 0.4, 0)
	if lv.NumLevels != 1 {
		t.Fatal("setup: expected 1 level")
	}
	for _, method := range AllMethods {
		res, err := PartitionMesh(m, lv, Options{K: 4, Method: method, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		checkValidPartition(t, res.Part, m.NumElements(), 4)
		mt := Evaluate(m, lv, res.Part, 4)
		if mt.TotalImbalance > 20 {
			t.Errorf("%s: uniform mesh imbalance %.1f%%", method, mt.TotalImbalance)
		}
	}
}

// TestKEqualsElements: one element per part must still produce a full
// cover (every part nonempty).
func TestKEqualsElements(t *testing.T) {
	m := mesh.Uniform(2, 2, 2, 1, 1)
	lv := mesh.AssignLevels(m, 0.4, 0)
	for _, method := range []Method{Scotch, Metis, Patoh} {
		res, err := PartitionMesh(m, lv, Options{K: 8, Method: method, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		seen := map[int32]bool{}
		for _, p := range res.Part {
			seen[p] = true
		}
		if len(seen) != 8 {
			t.Errorf("%s: only %d of 8 parts used", method, len(seen))
		}
	}
}

// TestKOne: trivial partition.
func TestKOne(t *testing.T) {
	m := mesh.Uniform(3, 3, 3, 1, 1)
	lv := mesh.AssignLevels(m, 0.4, 0)
	for _, method := range AllMethods {
		res, err := PartitionMesh(m, lv, Options{K: 1, Method: method, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		for _, p := range res.Part {
			if p != 0 {
				t.Fatalf("%s: K=1 produced part %d", method, p)
			}
		}
	}
}

// TestTinyLevelsSpreadRoundRobin: when a level has fewer elements than
// parts, SCOTCH-P must not crash and must still assign them.
func TestTinyLevelsSpreadRoundRobin(t *testing.T) {
	// One very fast element creates a singleton level.
	m := mesh.Uniform(5, 5, 5, 1, 1)
	m.C[62] = 4
	lv := mesh.AssignLevels(m, 0.4, 0)
	if lv.Count[lv.NumLevels-1] != 1 {
		t.Fatal("setup: expected a singleton finest level")
	}
	res, err := PartitionMesh(m, lv, Options{K: 8, Method: ScotchP, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkValidPartition(t, res.Part, m.NumElements(), 8)
}

// TestEmptyMiddleLevel: velocity-driven assignments can skip levels; all
// partitioners must cope with a zero-weight constraint.
func TestEmptyMiddleLevel(t *testing.T) {
	m := mesh.Uniform(6, 4, 4, 1, 1)
	for i := 0; i < 8; i++ {
		m.C[i] = 4 // level 3; level 2 stays empty
	}
	lv := mesh.AssignLevels(m, 0.4, 0)
	if lv.NumLevels != 3 || lv.Count[1] != 0 {
		t.Fatalf("setup: levels %v", lv.Count)
	}
	for _, method := range Methods {
		res, err := PartitionMesh(m, lv, Options{K: 4, Method: method, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		checkValidPartition(t, res.Part, m.NumElements(), 4)
	}
}
