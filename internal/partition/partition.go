// Package partition implements the four LTS-aware mesh partitioning
// strategies compared in the paper (§III-B):
//
//   - Scotch: the baseline — single-constraint graph partitioning with
//     per-element work weights p_e. Balances total work per LTS cycle but
//     not the individual levels.
//   - ScotchP: each p-level partitioned separately, then greedily merged
//     onto processors (§III-B.b) — the paper's best performer.
//   - Metis: multi-constraint graph partitioning with weighted edges
//     (§III-B.c): one unit-weight constraint per level, edge cut as the
//     communication proxy.
//   - Patoh: multi-constraint hypergraph partitioning (§III-B.d): the
//     connectivity-1 objective models MPI volume exactly; the FinalImbal
//     parameter trades communication against balance.
//
// All partitioners are from-scratch multilevel implementations (matching
// coarsening, greedy growing, FM refinement) rather than bindings, per the
// reproduction ground rules.
package partition

import (
	"fmt"
	"math/rand"

	"golts/internal/graph"
	"golts/internal/hypergraph"
	"golts/internal/mesh"
)

// Method selects a partitioning strategy.
type Method string

// The four strategies of paper §III-B, plus two variants the paper
// discusses: ScotchPM upgrades SCOTCH-P's greedy level-to-processor
// coupling with pairwise-swap refinement (the paper's "more efficient
// mapping methods" future work), and CoarseOnly is the Gödel et al. [7]
// two-level approach (cuts restricted to coarse elements) that the paper
// rejects for its scalability limit.
const (
	Scotch     Method = "scotch"
	ScotchP    Method = "scotch-p"
	Metis      Method = "metis"
	Patoh      Method = "patoh"
	ScotchPM   Method = "scotch-pm"
	CoarseOnly Method = "coarse-only"
)

// Methods lists the paper's four strategies in presentation order.
var Methods = []Method{Scotch, ScotchP, Metis, Patoh}

// AllMethods additionally includes the variants discussed but not
// benchmarked in the paper.
var AllMethods = []Method{Scotch, ScotchP, Metis, Patoh, ScotchPM, CoarseOnly}

// Options configures a partitioning run.
type Options struct {
	// K is the number of parts (processors).
	K int
	// Imbalance is the per-bisection balance tolerance ε (default 0.05).
	// For Patoh this plays the role of the paper's final_imbal parameter.
	Imbalance float64
	// Seed makes runs reproducible.
	Seed int64
	// Method selects the strategy.
	Method Method
}

// Result is an element-to-part assignment.
type Result struct {
	Part   []int32
	K      int
	Method Method
}

// PartitionMesh partitions the mesh's elements for LTS execution on K
// processors.
func PartitionMesh(m *mesh.Mesh, lv *mesh.Levels, opt Options) (*Result, error) {
	if opt.K < 1 {
		return nil, fmt.Errorf("partition: K must be >= 1, got %d", opt.K)
	}
	if opt.Imbalance <= 0 {
		opt.Imbalance = 0.05
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	var part []int32
	switch opt.Method {
	case Scotch:
		g := graph.FromMeshDual(m, lv, false)
		part = RecursiveBisectGraph(g, opt.K, opt.Imbalance, rng)
	case Metis:
		g := graph.FromMeshDual(m, lv, true)
		part = RecursiveBisectGraph(g, opt.K, opt.Imbalance, rng)
	case Patoh:
		h := hypergraph.FromMesh(m, lv)
		part = RecursiveBisectHypergraph(h, opt.K, opt.Imbalance, rng)
	case ScotchP:
		g := graph.FromMeshDual(m, lv, false)
		part = scotchP(m, lv, g, opt.K, opt.Imbalance, rng, false)
	case ScotchPM:
		g := graph.FromMeshDual(m, lv, false)
		part = scotchP(m, lv, g, opt.K, opt.Imbalance, rng, true)
	case CoarseOnly:
		part = CoarseCutOnly(m, lv, opt.K, opt.Imbalance, rng)
	default:
		return nil, fmt.Errorf("partition: unknown method %q", opt.Method)
	}
	return &Result{Part: part, K: opt.K, Method: opt.Method}, nil
}

// Assign returns an element-to-rank assignment for k shared-memory
// workers, the form package parallel consumes. k <= 1 yields the trivial
// single-rank assignment without running a partitioner; method "" selects
// ScotchP, the paper's best performer. This is the one-call path the cmds
// and benches use to stand up a parallel engine.
func Assign(m *mesh.Mesh, lv *mesh.Levels, k int, method Method, seed int64) ([]int32, error) {
	if k <= 1 {
		return make([]int32, m.NumElements()), nil
	}
	if method == "" {
		method = ScotchP
	}
	res, err := PartitionMesh(m, lv, Options{K: k, Method: method, Seed: seed})
	if err != nil {
		return nil, err
	}
	return res.Part, nil
}

// Metrics summarises partition quality for the paper's Fig. 7 / Fig. 8
// comparisons.
type Metrics struct {
	K int
	// TotalImbalance is Eq. (21) applied to the per-part work load
	// Σ_e p_e, in percent.
	TotalImbalance float64
	// PerLevelImbalance is Eq. (21) applied to each level's element count
	// across parts, in percent.
	PerLevelImbalance []float64
	// MaxLevelImbalance is the worst entry of PerLevelImbalance.
	MaxLevelImbalance float64
	// GraphCut is the weighted dual-graph edge cut (the proxy metric the
	// graph partitioners optimise).
	GraphCut int64
	// CommVolume is the exact MPI volume per LTS cycle (hypergraph
	// connectivity-1 with per-level costs).
	CommVolume int64
	// Loads holds the per-part work Σ p_e.
	Loads []int64
}

// Evaluate computes all quality metrics of a partition.
func Evaluate(m *mesh.Mesh, lv *mesh.Levels, part []int32, k int) *Metrics {
	mt := &Metrics{K: k}
	mt.Loads = make([]int64, k)
	levelCounts := make([][]int64, lv.NumLevels)
	for i := range levelCounts {
		levelCounts[i] = make([]int64, k)
	}
	for e := 0; e < m.NumElements(); e++ {
		p := part[e]
		mt.Loads[p] += int64(lv.PFor(e))
		levelCounts[int(lv.Lvl[e])-1][p]++
	}
	mt.TotalImbalance = imbalancePct(mt.Loads)
	mt.PerLevelImbalance = make([]float64, lv.NumLevels)
	for i := range levelCounts {
		mt.PerLevelImbalance[i] = imbalancePct(levelCounts[i])
		if mt.PerLevelImbalance[i] > mt.MaxLevelImbalance {
			mt.MaxLevelImbalance = mt.PerLevelImbalance[i]
		}
	}
	g := graph.FromMeshDual(m, lv, false)
	mt.GraphCut = g.EdgeCut(part)
	h := hypergraph.FromMesh(m, lv)
	mt.CommVolume = h.CutSize(part, k)
	return mt
}

// imbalancePct implements Eq. (21): (max - min) / max * 100.
func imbalancePct(loads []int64) float64 {
	if len(loads) == 0 {
		return 0
	}
	min, max := loads[0], loads[0]
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max == 0 {
		return 0
	}
	return float64(max-min) / float64(max) * 100
}
