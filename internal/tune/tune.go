// Package tune is the adaptive load-balancing and auto-tuning subsystem
// layered over the engines' timing telemetry.
//
// Three cooperating pieces close the paper's loop between the static,
// cost-model-driven partition (internal/cluster) and what a run actually
// measures:
//
//   - Trace, a fixed-capacity ring buffer of per-cycle busy samples —
//     the telemetry substrate the other pieces read;
//   - Detector + Remap, the runtime rebalancer: a sustained-imbalance
//     detector over the per-rank busy signal and a deterministic LPT
//     part → rank remapper over measured per-part costs. Parts stay
//     fixed — only their placement on ranks moves — so a remap never
//     changes the ascending-part assembly order and the trajectory stays
//     bitwise identical (the distributed backend's PR 5 contract);
//   - Calibrate, the auto-tuner: short probe cycles over a small
//     candidate grid (workers × ranks × kernel), fitted against the
//     cluster cost model's predictions, returning the Plan a caller
//     (the wave facade, the waved job service) deploys with.
//
// The package is deliberately engine-agnostic: it consumes plain
// slices and callbacks, never importing the engines, so internal/dist,
// internal/parallel and wave can all feed it.
package tune

// Sample is one cycle's telemetry: the per-worker (or per-rank) busy
// time of the cycle, in nanoseconds.
type Sample struct {
	Cycle int64
	Busy  []float64
}

// Trace is a fixed-capacity ring buffer of cycle samples. The zero
// value is unusable; make one with NewTrace. Not safe for concurrent
// use — the recording loop owns it.
type Trace struct {
	buf  []Sample
	n    int // samples held (≤ cap)
	next int // ring write position
}

// NewTrace returns a trace holding the most recent capacity samples.
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Sample, capacity)}
}

// Record appends a sample, evicting the oldest once full. The Busy
// slice is copied into storage reused across evictions, so recording is
// allocation-free once the ring has wrapped with same-width samples.
func (t *Trace) Record(cycle int64, busy []float64) {
	s := &t.buf[t.next]
	s.Cycle = cycle
	if cap(s.Busy) >= len(busy) {
		s.Busy = s.Busy[:len(busy)]
	} else {
		s.Busy = make([]float64, len(busy))
	}
	copy(s.Busy, busy)
	t.next = (t.next + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	}
}

// Len returns the number of samples held.
func (t *Trace) Len() int { return t.n }

// Samples returns the held samples, oldest first. The returned slice
// and its Busy fields are freshly allocated copies.
func (t *Trace) Samples() []Sample {
	out := make([]Sample, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		s := t.buf[(start+i)%len(t.buf)]
		out = append(out, Sample{Cycle: s.Cycle, Busy: append([]float64(nil), s.Busy...)})
	}
	return out
}
