package tune

import (
	"fmt"
	"testing"
	"time"
)

func TestTraceRing(t *testing.T) {
	tr := NewTrace(3)
	for c := int64(0); c < 5; c++ {
		tr.Record(c, []float64{float64(c), float64(2 * c)})
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	s := tr.Samples()
	want := []int64{2, 3, 4}
	for i, smp := range s {
		if smp.Cycle != want[i] {
			t.Errorf("sample %d cycle = %d, want %d", i, smp.Cycle, want[i])
		}
		if smp.Busy[1] != 2*float64(want[i]) {
			t.Errorf("sample %d busy = %v", i, smp.Busy)
		}
	}
}

func TestTraceRecordNoAlloc(t *testing.T) {
	tr := NewTrace(4)
	busy := []float64{1, 2, 3}
	for i := 0; i < 8; i++ { // warm: wrap the ring
		tr.Record(int64(i), busy)
	}
	n := testing.AllocsPerRun(100, func() { tr.Record(99, busy) })
	if n != 0 {
		t.Fatalf("Record allocates %v/op after warm-up, want 0", n)
	}
}

func TestDetector(t *testing.T) {
	d := NewDetector(DetectorConfig{Threshold: 1.5, Window: 3, Cooldown: 5})
	balanced := []float64{10, 10, 10, 10}
	skewed := []float64{40, 10, 10, 10} // ratio 40/17.5 ≈ 2.3
	for i := 0; i < 10; i++ {
		if d.Observe(balanced) {
			t.Fatalf("balanced cycle %d triggered", i)
		}
	}
	if d.Observe(skewed) || d.Observe(skewed) {
		t.Fatal("triggered before window filled")
	}
	if !d.Observe(skewed) {
		t.Fatal("no trigger after Window imbalanced cycles")
	}
	// Cooldown: even sustained skew stays quiet for Cooldown cycles.
	for i := 0; i < 5; i++ {
		if d.Observe(skewed) {
			t.Fatalf("triggered during cooldown cycle %d", i)
		}
	}
	d.Observe(skewed)
	d.Observe(skewed)
	if !d.Observe(skewed) {
		t.Fatal("no re-trigger after cooldown")
	}
}

func TestDetectorStreakResets(t *testing.T) {
	d := NewDetector(DetectorConfig{Threshold: 1.5, Window: 2, Cooldown: 3})
	skewed := []float64{30, 10}
	balanced := []float64{10, 10}
	d.Observe(skewed)
	d.Observe(balanced) // breaks the streak
	if d.Observe(skewed) {
		t.Fatal("triggered with a broken streak")
	}
}

func TestRemapDeterministicAndBalanced(t *testing.T) {
	cost := []float64{100, 10, 10, 10, 10, 50}
	m1 := Remap(cost, 2)
	m2 := Remap(cost, 2)
	if !Equal(m1, m2) {
		t.Fatalf("Remap not deterministic: %v vs %v", m1, m2)
	}
	// The heavy part and the rest must split: LPT puts part 0 (100)
	// alone-ish against part 5 (50) + the light parts.
	if m1[0] == m1[5] {
		t.Fatalf("heaviest two parts on one rank: %v", m1)
	}
	if r := Imbalance(cost, m1, 2); r > 1.12 {
		t.Fatalf("LPT imbalance %.3f, want near 1 (map %v)", r, m1)
	}
	// Every rank owns at least one part, even with all-zero costs.
	z := Remap(make([]float64, 4), 3)
	seen := map[int]bool{}
	for _, r := range z {
		seen[r] = true
	}
	for r := 0; r < 3; r++ {
		if !seen[r] {
			t.Fatalf("rank %d left empty under zero costs: %v", r, z)
		}
	}
}

func TestCalibratePicksFastest(t *testing.T) {
	grid := []Candidate{
		{Workers: 1, Kernel: "perelement"},
		{Workers: 1, Kernel: "batched"},
		{Ranks: 2, Kernel: "batched"},
	}
	speed := map[string]float64{
		"workers=1/perelement": 300,
		"workers=1/batched":    100,
		"ranks=2/batched":      150,
	}
	plan, err := Calibrate(grid, time.Second, 2, func(c Candidate, cycles int) (Result, error) {
		return Result{CycleNanos: speed[c.String()], ModelSeconds: speed[c.String()] / 200}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Valid() {
		t.Fatalf("invalid plan %+v", plan)
	}
	if plan.Best.Workers != 1 || plan.Best.Kernel != "batched" {
		t.Fatalf("Best = %+v, want workers=1/batched", plan.Best)
	}
	if len(plan.Measurements) != 3 {
		t.Fatalf("got %d measurements, want 3", len(plan.Measurements))
	}
	// Perfect linear model: the fit must reproduce the measurements.
	for _, m := range plan.Measurements {
		if diff := m.PredictedNanos - m.CycleNanos; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("fit off for %s: predicted %.1f measured %.1f", m.Candidate, m.PredictedNanos, m.CycleNanos)
		}
	}
}

func TestCalibrateSkipsFailuresAndBudget(t *testing.T) {
	grid := []Candidate{
		{Workers: 1, Kernel: "batched"},
		{Workers: 2, Kernel: "batched"},
		{Workers: 4, Kernel: "batched"},
	}
	calls := 0
	plan, err := Calibrate(grid, time.Nanosecond, 1, func(c Candidate, cycles int) (Result, error) {
		calls++
		time.Sleep(time.Millisecond)
		return Result{CycleNanos: 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("budget exhausted but %d probes ran", calls)
	}
	if !plan.Valid() {
		t.Fatalf("invalid plan %+v", plan)
	}

	// All probes failing is an error.
	_, err = Calibrate(grid, time.Second, 1, func(c Candidate, cycles int) (Result, error) {
		return Result{}, fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("want error when every probe fails")
	}

	// A failing probe is skipped, not fatal.
	plan, err = Calibrate(grid, time.Second, 1, func(c Candidate, cycles int) (Result, error) {
		if c.Workers == 1 {
			return Result{}, fmt.Errorf("boom")
		}
		return Result{CycleNanos: float64(c.Workers)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Best.Workers != 2 {
		t.Fatalf("Best = %+v, want workers=2", plan.Best)
	}
}
