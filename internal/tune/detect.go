package tune

// DetectorConfig tunes the imbalance detector. Zero values select the
// defaults.
type DetectorConfig struct {
	// Threshold is the max/mean per-rank busy ratio that counts as an
	// imbalanced cycle. Default 1.5: the slowest rank runs 50% over the
	// average, i.e. the paper's parallel efficiency drops under ~2/3.
	Threshold float64
	// Window is how many consecutive imbalanced cycles arm a rebalance
	// (transient noise — GC pauses, scheduler hiccups — should not).
	// Default 3.
	Window int
	// Cooldown is how many cycles the detector stays quiet after
	// triggering, giving the new placement time to show in the signal.
	// Default 10.
	Cooldown int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Threshold <= 1 {
		c.Threshold = 1.5
	}
	if c.Window < 1 {
		c.Window = 3
	}
	if c.Cooldown < 1 {
		c.Cooldown = 10
	}
	return c
}

// Detector watches the per-cycle, per-rank busy signal for sustained
// imbalance. It is a small deterministic state machine: Observe returns
// true exactly when Window consecutive cycles exceeded Threshold and no
// cooldown is pending.
type Detector struct {
	cfg      DetectorConfig
	streak   int
	cooldown int
}

// NewDetector builds a detector; zero config fields take defaults.
func NewDetector(cfg DetectorConfig) *Detector {
	return &Detector{cfg: cfg.withDefaults()}
}

// Ratio returns max/mean of the busy sample, or 0 when the sample is
// degenerate (empty, or an idle cycle with zero mean).
func Ratio(busy []float64) float64 {
	if len(busy) == 0 {
		return 0
	}
	var sum, max float64
	for _, b := range busy {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum <= 0 {
		return 0
	}
	return max / (sum / float64(len(busy)))
}

// Observe feeds one cycle's busy sample and reports whether a rebalance
// should fire now.
func (d *Detector) Observe(busy []float64) bool {
	if d.cooldown > 0 {
		d.cooldown--
		return false
	}
	r := Ratio(busy)
	if r >= d.cfg.Threshold {
		d.streak++
	} else {
		d.streak = 0
	}
	if d.streak >= d.cfg.Window {
		d.streak = 0
		d.cooldown = d.cfg.Cooldown
		return true
	}
	return false
}
