package tune

import "sort"

// Remap assigns parts to ranks by longest-processing-time-first greedy
// scheduling over measured per-part costs: parts in descending cost
// order (ties broken by ascending part id) each go to the currently
// least-loaded rank (ties broken by lowest rank id). The procedure is
// fully deterministic, and with len(cost) ≥ ranks every rank receives
// at least one part — zero or negative measured costs are floored at
// one nanosecond so empty-looking parts still spread out.
//
// The returned map is a valid RunConfig.PartRank: remapping placement
// never changes the ascending-part assembly order, so deploying it
// mid-run keeps the trajectory bitwise identical.
func Remap(cost []float64, ranks int) []int {
	if ranks < 1 {
		ranks = 1
	}
	parts := len(cost)
	order := make([]int, parts)
	for p := range order {
		order[p] = p
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := flooredCost(cost[order[a]]), flooredCost(cost[order[b]])
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b]
	})
	load := make([]float64, ranks)
	out := make([]int, parts)
	for _, p := range order {
		r := 0
		for q := 1; q < ranks; q++ {
			if load[q] < load[r] {
				r = q
			}
		}
		out[p] = r
		load[r] += flooredCost(cost[p])
	}
	return out
}

func flooredCost(c float64) float64 {
	if c < 1 {
		return 1
	}
	return c
}

// Imbalance returns max/mean rank load of a placement under the given
// per-part costs — the predicted post-remap counterpart of Ratio.
func Imbalance(cost []float64, partRank []int, ranks int) float64 {
	load := make([]float64, ranks)
	for p, r := range partRank {
		load[r] += flooredCost(cost[p])
	}
	return Ratio(load)
}

// Equal reports whether two part → rank maps are identical.
func Equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
