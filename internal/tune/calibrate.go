package tune

import (
	"fmt"
	"time"
)

// Candidate is one deployment shape of the calibration grid. Ranks == 0
// probes the shared-memory backend with Workers workers; Ranks > 0
// probes the distributed backend. Kernel is "batched" or "per-element"
// (the wave facade's spellings).
type Candidate struct {
	Workers int    `json:"workers"`
	Ranks   int    `json:"ranks"`
	Kernel  string `json:"kernel"`
}

func (c Candidate) String() string {
	if c.Ranks > 0 {
		return fmt.Sprintf("ranks=%d/%s", c.Ranks, c.Kernel)
	}
	return fmt.Sprintf("workers=%d/%s", c.Workers, c.Kernel)
}

// Result is what a probe run reports back to Calibrate: measured wall
// time per coarse cycle, the per-level kernel telemetry, and the
// cluster cost model's predicted cycle time for the same shape (model
// seconds; Calibrate fits the nanos-per-model-second scale).
type Result struct {
	CycleNanos   float64
	LevelNanos   []int64
	ModelSeconds float64
}

// Runner executes one probe: a short run of the caller's configuration
// under candidate c for the given number of coarse cycles. The wave
// facade supplies it — this package never builds simulations itself.
type Runner func(c Candidate, cycles int) (Result, error)

// Measurement is one candidate's calibration row: measured next to
// predicted, the table BENCH_tune.json publishes.
type Measurement struct {
	Candidate
	CycleNanos     float64 `json:"cycle_ns"`
	ModelSeconds   float64 `json:"model_s"`
	PredictedNanos float64 `json:"predicted_ns"`
	LevelNanos     []int64 `json:"level_ns,omitempty"`
	Err            string  `json:"error,omitempty"`
}

// Plan is the calibration outcome: the winning shape plus the full
// measured-vs-predicted table behind the choice.
type Plan struct {
	Best         Candidate     `json:"best"`
	ProbeCycles  int           `json:"probe_cycles"`
	FitScale     float64       `json:"fit_ns_per_model_s"`
	Measurements []Measurement `json:"measurements"`
}

// Valid reports whether the plan selects an executable shape. Both
// spellings of the per-element kernel are accepted: the wave facade
// probes "per-element", and plans serialised before the spellings were
// unified carry "perelement". (The mismatch stayed invisible while the
// batched kernel won every probe; on builds where the per-element path
// wins — e.g. purego — a valid plan was rejected.)
func (p *Plan) Valid() bool {
	return p != nil && (p.Best.Workers > 0 || p.Best.Ranks > 0) &&
		(p.Best.Kernel == "batched" || p.Best.Kernel == "perelement" || p.Best.Kernel == "per-element")
}

// Calibrate probes the candidate grid with short runs and returns the
// plan. Each candidate runs probeCycles coarse cycles; once the wall
// budget is spent, remaining candidates are skipped (at least one
// always runs — a zero or tiny budget degenerates to probing the first
// candidate only). The winner is the lowest measured per-cycle time;
// the fit scale is the least-squares nanos-per-model-second factor
// between the cluster model's predictions and the measurements, so
// PredictedNanos is directly comparable to CycleNanos in the report.
func Calibrate(cands []Candidate, budget time.Duration, probeCycles int, run Runner) (*Plan, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("tune: no candidates")
	}
	if run == nil {
		return nil, fmt.Errorf("tune: nil runner")
	}
	if probeCycles < 1 {
		probeCycles = 3
	}
	start := time.Now()
	plan := &Plan{ProbeCycles: probeCycles}
	ran := 0
	for _, c := range cands {
		if ran > 0 && budget > 0 && time.Since(start) >= budget {
			break
		}
		m := Measurement{Candidate: c}
		res, err := run(c, probeCycles)
		if err != nil {
			m.Err = err.Error()
		} else {
			m.CycleNanos = res.CycleNanos
			m.ModelSeconds = res.ModelSeconds
			m.LevelNanos = res.LevelNanos
		}
		plan.Measurements = append(plan.Measurements, m)
		ran++
	}
	// Least-squares fit measured = scale · model over successful probes.
	var num, den float64
	for _, m := range plan.Measurements {
		if m.Err == "" && m.ModelSeconds > 0 {
			num += m.CycleNanos * m.ModelSeconds
			den += m.ModelSeconds * m.ModelSeconds
		}
	}
	if den > 0 {
		plan.FitScale = num / den
	}
	best := -1
	for i := range plan.Measurements {
		m := &plan.Measurements[i]
		if m.ModelSeconds > 0 {
			m.PredictedNanos = plan.FitScale * m.ModelSeconds
		}
		if m.Err == "" && (best < 0 || m.CycleNanos < plan.Measurements[best].CycleNanos) {
			best = i
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("tune: every probe failed (first: %s)", plan.Measurements[0].Err)
	}
	plan.Best = plan.Measurements[best].Candidate
	return plan, nil
}
