package parallel

import (
	"math"
	"testing"

	"golts/internal/lts"
	"golts/internal/mesh"
	"golts/internal/newmark"
	"golts/internal/partition"
	"golts/internal/sem"
)

func setup3D(t testing.TB) (*sem.Acoustic3D, *mesh.Levels, []int32, int) {
	t.Helper()
	xc := []float64{0, 1, 2, 2.5, 2.75, 3.75, 4.75}
	m, err := mesh.New("par3d", xc, []float64{0, 1, 2, 3}, []float64{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	op, err := sem.NewAcoustic3D(m, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	lv := mesh.AssignLevels(m, 0.3/9, 0)
	const k = 4
	res, err := partition.PartitionMesh(m, lv, partition.Options{K: k, Method: partition.ScotchP, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return op, lv, res.Part, k
}

func maxDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestAddKuMatchesSequential(t *testing.T) {
	op, _, part, k := setup3D(t)
	pop, err := NewOperator(op, part, k)
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	u := make([]float64, op.NDof())
	for i := range u {
		u[i] = math.Sin(0.13 * float64(i))
	}
	seq := make([]float64, op.NDof())
	par := make([]float64, op.NDof())
	elems := sem.AllElements(op)
	op.AddKu(seq, u, elems)
	pop.AddKu(par, u, elems)
	scale := 0.0
	for _, v := range seq {
		scale = math.Max(scale, math.Abs(v))
	}
	if d := maxDiff(seq, par); d > 1e-12*scale {
		t.Errorf("parallel AddKu differs by %v (scale %v)", d, scale)
	}
	st := pop.Stats()
	if st.Applies != 1 || st.Messages == 0 || st.Volume == 0 {
		t.Errorf("stats not accumulated: %+v", st)
	}
}

func TestAddKuRestrictedElements(t *testing.T) {
	op, _, part, k := setup3D(t)
	pop, err := NewOperator(op, part, k)
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	u := make([]float64, op.NDof())
	for i := range u {
		u[i] = float64(i % 11)
	}
	sub := []int32{3, 4, 5, 20, 21}
	seq := make([]float64, op.NDof())
	par := make([]float64, op.NDof())
	op.AddKu(seq, u, sub)
	pop.AddKu(par, u, sub)
	if d := maxDiff(seq, par); d > 1e-10 {
		t.Errorf("restricted parallel AddKu differs by %v", d)
	}
}

// TestParallelNewmark: the global stepper on the partitioned operator
// reproduces the sequential trajectory.
func TestParallelNewmark(t *testing.T) {
	op, lv, part, k := setup3D(t)
	pop, err := NewOperator(op, part, k)
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	dt := lv.CoarseDt / float64(lv.PMax())
	sSeq := newmark.New(op, dt)
	sPar := newmark.New(pop, dt)
	u0 := make([]float64, op.NDof())
	for n := 0; n < op.NumNodes(); n++ {
		x, y, z := op.NodeCoords(int32(n))
		u0[n] = math.Exp(-((x - 2.4) * (x - 2.4)) - (y-1.5)*(y-1.5) - (z-1.5)*(z-1.5))
	}
	v0 := make([]float64, op.NDof())
	if err := sSeq.SetInitial(u0, v0); err != nil {
		t.Fatal(err)
	}
	if err := sPar.SetInitial(u0, v0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		sSeq.Step()
		sPar.Step()
	}
	scale := 0.0
	for _, v := range sSeq.U {
		scale = math.Max(scale, math.Abs(v))
	}
	if d := maxDiff(sSeq.U, sPar.U); d > 1e-11*scale {
		t.Errorf("parallel Newmark differs by %v (scale %v)", d, scale)
	}
}

// TestParallelLTS: the multi-level LTS scheme runs unchanged on the
// partitioned operator — the paper's parallel LTS execution — and matches
// the sequential run.
func TestParallelLTS(t *testing.T) {
	op, lv, part, k := setup3D(t)
	pop, err := NewOperator(op, part, k)
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	sSeq, err := lts.FromMeshLevels(op, lv, true)
	if err != nil {
		t.Fatal(err)
	}
	sPar, err := lts.FromMeshLevels(pop, lv, true)
	if err != nil {
		t.Fatal(err)
	}
	u0 := make([]float64, op.NDof())
	for n := 0; n < op.NumNodes(); n++ {
		x, y, z := op.NodeCoords(int32(n))
		u0[n] = math.Cos(0.8*x) * math.Cos(0.6*y) * math.Cos(0.9*z)
	}
	v0 := make([]float64, op.NDof())
	if err := sSeq.SetInitial(u0, v0); err != nil {
		t.Fatal(err)
	}
	if err := sPar.SetInitial(u0, v0); err != nil {
		t.Fatal(err)
	}
	sSeq.Run(10)
	sPar.Run(10)
	scale := 0.0
	for _, v := range sSeq.U {
		scale = math.Max(scale, math.Abs(v))
	}
	if d := maxDiff(sSeq.U, sPar.U); d > 1e-11*scale {
		t.Errorf("parallel LTS differs by %v (scale %v)", d, scale)
	}
	// LTS communicates every substep of every level: many more messages
	// than cycles.
	st := pop.Stats()
	if st.Applies < 10*int64(lv.PMax()) {
		t.Errorf("expected at least %d applies, got %d", 10*lv.PMax(), st.Applies)
	}
}

func TestOperatorValidation(t *testing.T) {
	op, _, part, _ := setup3D(t)
	if _, err := NewOperator(op, part[:3], 4); err == nil {
		t.Error("expected error for short partition")
	}
	bad := append([]int32(nil), part...)
	bad[0] = 99
	if _, err := NewOperator(op, bad, 4); err == nil {
		t.Error("expected error for out-of-range rank")
	}
}

func TestCloseIdempotent(t *testing.T) {
	op, _, part, k := setup3D(t)
	pop, err := NewOperator(op, part, k)
	if err != nil {
		t.Fatal(err)
	}
	pop.Close()
	pop.Close() // must not panic
}

func BenchmarkParallelApply(b *testing.B) {
	op, _, part, k := setup3D(b)
	pop, err := NewOperator(op, part, k)
	if err != nil {
		b.Fatal(err)
	}
	defer pop.Close()
	u := make([]float64, op.NDof())
	dst := make([]float64, op.NDof())
	elems := sem.AllElements(op)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pop.AddKu(dst, u, elems)
	}
}
