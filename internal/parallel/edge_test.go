package parallel

import (
	"math"
	"testing"

	"golts/internal/sem"
)

// TestEmptyRank: a rank that owns no elements must not deadlock or corrupt
// results.
func TestEmptyRank(t *testing.T) {
	op, _, part, _ := setup3D(t)
	// Rebuild the partition with rank 3 emptied into rank 0.
	p2 := append([]int32(nil), part...)
	for i, p := range p2 {
		if p == 3 {
			p2[i] = 0
		}
	}
	pop, err := NewOperator(op, p2, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	u := make([]float64, op.NDof())
	for i := range u {
		u[i] = math.Cos(0.1 * float64(i))
	}
	seq := make([]float64, op.NDof())
	par := make([]float64, op.NDof())
	elems := sem.AllElements(op)
	op.AddKu(seq, u, elems)
	pop.AddKu(par, u, elems)
	if d := maxDiff(seq, par); d > 1e-10 {
		t.Errorf("empty-rank result differs by %v", d)
	}
}

// TestEmptyElementList: applying zero elements is a no-op.
func TestEmptyElementList(t *testing.T) {
	op, _, part, k := setup3D(t)
	pop, err := NewOperator(op, part, k)
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	u := make([]float64, op.NDof())
	dst := make([]float64, op.NDof())
	pop.AddKu(dst, u, nil)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("no-op apply wrote to %d: %v", i, v)
		}
	}
}

// TestSingleRankDegeneratesToSequential: K=1 funnels everything through
// one worker and must match exactly (same element order).
func TestSingleRankDegeneratesToSequential(t *testing.T) {
	op, _, _, _ := setup3D(t)
	part := make([]int32, op.NumElements())
	pop, err := NewOperator(op, part, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	u := make([]float64, op.NDof())
	for i := range u {
		u[i] = float64((i*7)%13) - 6
	}
	seq := make([]float64, op.NDof())
	par := make([]float64, op.NDof())
	elems := sem.AllElements(op)
	op.AddKu(seq, u, elems)
	pop.AddKu(par, u, elems)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("K=1 differs at %d: %v vs %v", i, seq[i], par[i])
		}
	}
}
