package parallel

import (
	"sort"
	"sync"

	"golts/internal/sem"
)

// applyPlan is the cached execution layout for one element list: the
// per-rank ownership split (the activation mask — ranks with an empty
// slice are never woken), the per-rank sorted touched-node lists, and the
// node-range shard boundaries of the parallel merge.
type applyPlan struct {
	nc        int
	elems     []int32   // private copy of the request, for cache validation
	rankElems [][]int32 // owned ∩ requested per rank, request order
	touched   [][]int32 // unique touched nodes per rank, ascending
	// shardIdx[r] holds K+1 boundaries into touched[r]: shard m covers
	// touched[r][shardIdx[r][m]:shardIdx[r][m+1]].
	shardIdx     [][]int32
	activeRanks  []int
	activeShards []int
	// rankBatch holds one inner-operator BatchPlan per active rank (nil
	// entries for idle ranks): the per-rank half of the "BatchPlan per LTS
	// level, per rank" layout. Compute tasks carrying one of these run the
	// rank's owned slice as one fused batch on the worker's own
	// BatchScratch. Built lazily by PartitionedOperator.NewBatchPlan (nil
	// until a caller asks for the batched kernel), so per-element
	// configurations never hold the packed plan constants.
	rankBatch []sem.BatchPlan
	// Per-apply accounting deltas (MPI analogy): one message per rank with
	// data, volume in touched nodes.
	messages, volume int64
}

// maxCachedPlans bounds the plan cache; steppers use a handful of stable
// lists (one per LTS level), so eviction only triggers under adversarial
// call patterns, where dropping everything is acceptable.
const maxCachedPlans = 256

// planCache maps element-list fingerprints to plans. Hits validate full
// content against the stored copy, so a hash collision or a caller
// mutating a cached list in place degrades to a rebuild, never to a wrong
// result.
type planCache struct {
	mu sync.Mutex
	m  map[uint64]*applyPlan
}

func (c *planCache) init() { c.m = make(map[uint64]*applyPlan) }

func (c *planCache) lookup(p *PartitionedOperator, elems []int32) *applyPlan {
	h := hashElems(elems)
	c.mu.Lock()
	defer c.mu.Unlock()
	if pl, ok := c.m[h]; ok && sameElems(pl.elems, elems) {
		return pl
	}
	pl := buildPlan(p, elems)
	if len(c.m) >= maxCachedPlans {
		c.m = make(map[uint64]*applyPlan)
	}
	c.m[h] = pl
	return pl
}

// hashElems is FNV-1a over the element ids.
func hashElems(elems []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, e := range elems {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(uint8(e >> s))
			h *= 1099511628211
		}
	}
	return h
}

func sameElems(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// buildPlan computes the full execution layout for one element list.
func buildPlan(p *PartitionedOperator, elems []int32) *applyPlan {
	k := p.K
	pl := &applyPlan{
		nc:        p.inner.Comps(),
		elems:     append([]int32(nil), elems...),
		rankElems: make([][]int32, k),
		touched:   make([][]int32, k),
		shardIdx:  make([][]int32, k),
	}
	// Ownership split, preserving request order so a single rank reproduces
	// the sequential accumulation order bitwise.
	for _, e := range elems {
		r := p.part[e]
		pl.rankElems[r] = append(pl.rankElems[r], e)
	}
	// Per-rank touched-node lists, deduped and sorted. Element
	// connectivity comes from the operator's flat table when it exposes
	// one, avoiding a per-element copy through ElemNodes.
	conn, npe := sem.ConnOf(p.inner)
	touchMap := make([]bool, p.inner.NumNodes())
	var nb []int32
	total := 0
	for r := 0; r < k; r++ {
		if len(pl.rankElems[r]) == 0 {
			continue
		}
		pl.activeRanks = append(pl.activeRanks, r)
		var t []int32
		for _, e := range pl.rankElems[r] {
			var en []int32
			if conn != nil {
				en = conn[int(e)*npe : (int(e)+1)*npe]
			} else {
				nb = p.inner.ElemNodes(int(e), nb[:0])
				en = nb
			}
			for _, n := range en {
				if !touchMap[n] {
					touchMap[n] = true
					t = append(t, n)
				}
			}
		}
		for _, n := range t {
			touchMap[n] = false
		}
		sort.Slice(t, func(i, j int) bool { return t[i] < t[j] })
		pl.touched[r] = t
		total += len(t)
		pl.messages++
		pl.volume += int64(len(t))
	}
	// Merge shards: contiguous node-id ranges balanced by touched volume.
	// Boundaries are node-id values taken at volume quantiles of the merged
	// touched multiset; per-rank boundary indices follow by binary search.
	bounds := make([]int32, k+1)
	bounds[k] = int32(p.inner.NumNodes())
	if total > 0 && k > 1 {
		all := make([]int32, 0, total)
		for _, t := range pl.touched {
			all = append(all, t...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for m := 1; m < k; m++ {
			bounds[m] = all[m*len(all)/k]
			if bounds[m] < bounds[m-1] {
				bounds[m] = bounds[m-1]
			}
		}
	}
	shardWork := make([]int, k)
	for r := 0; r < k; r++ {
		idx := make([]int32, k+1)
		t := pl.touched[r]
		for m := 1; m <= k; m++ {
			b := bounds[m]
			idx[m] = int32(sort.Search(len(t), func(i int) bool { return t[i] >= b }))
		}
		for m := 0; m < k; m++ {
			shardWork[m] += int(idx[m+1] - idx[m])
		}
		pl.shardIdx[r] = idx
	}
	for m := 0; m < k; m++ {
		if shardWork[m] > 0 {
			pl.activeShards = append(pl.activeShards, m)
		}
	}
	return pl
}
