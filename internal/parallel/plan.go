package parallel

import (
	"sort"
	"sync"

	"golts/internal/decomp"
	"golts/internal/sem"
)

// applyPlan is the cached execution layout for one element list: the
// shared owner-computes decomposition (per-rank ownership split — the
// activation mask — and per-rank sorted touched-node lists, built by
// package decomp) plus the backend-specific state of the shared-memory
// merge: the node-range shard boundaries of the parallel reduction and
// the per-rank inner batch plans.
type applyPlan struct {
	dp *decomp.Plan
	nc int // component count, cached for the merge inner loop
	// shardIdx[r] holds K+1 boundaries into dp.Touched[r]: shard m covers
	// dp.Touched[r][shardIdx[r][m]:shardIdx[r][m+1]].
	shardIdx     [][]int32
	activeShards []int
	// rankBatch holds one inner-operator BatchPlan per active rank (nil
	// entries for idle ranks): the per-rank half of the "BatchPlan per LTS
	// level, per rank" layout. Compute tasks carrying one of these run the
	// rank's owned slice as one fused batch on the worker's own
	// BatchScratch. Built lazily by PartitionedOperator.NewBatchPlan (nil
	// until a caller asks for the batched kernel), so per-element
	// configurations never hold the packed plan constants.
	rankBatch []sem.BatchPlan
}

// planCache maps decomp plans (content-validated by decomp.Cache) to the
// shared-memory merge state layered on top of them.
type planCache struct {
	cache *decomp.Cache
	mu    sync.Mutex
	ext   map[*decomp.Plan]*applyPlan
}

func (c *planCache) init(p *PartitionedOperator) {
	c.cache = decomp.NewCache(p.inner, p.part, p.K)
	c.ext = make(map[*decomp.Plan]*applyPlan)
}

func (c *planCache) lookup(p *PartitionedOperator, elems []int32) *applyPlan {
	dp, flushed := c.cache.Lookup(elems)
	c.mu.Lock()
	defer c.mu.Unlock()
	if flushed {
		c.ext = make(map[*decomp.Plan]*applyPlan)
	}
	if pl, ok := c.ext[dp]; ok {
		return pl
	}
	pl := buildMerge(p, dp)
	c.ext[dp] = pl
	return pl
}

// buildMerge computes the shared-memory merge layout on top of a
// decomposition plan: contiguous node-id shard ranges balanced by
// touched volume. Boundaries are node-id values taken at volume
// quantiles of the merged touched multiset; per-rank boundary indices
// follow by binary search.
func buildMerge(p *PartitionedOperator, dp *decomp.Plan) *applyPlan {
	k := p.K
	pl := &applyPlan{dp: dp, nc: p.inner.Comps(), shardIdx: make([][]int32, k)}
	total := 0
	for _, t := range dp.Touched {
		total += len(t)
	}
	bounds := make([]int32, k+1)
	bounds[k] = int32(p.inner.NumNodes())
	if total > 0 && k > 1 {
		all := make([]int32, 0, total)
		for _, t := range dp.Touched {
			all = append(all, t...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for m := 1; m < k; m++ {
			bounds[m] = all[m*len(all)/k]
			if bounds[m] < bounds[m-1] {
				bounds[m] = bounds[m-1]
			}
		}
	}
	shardWork := make([]int, k)
	for r := 0; r < k; r++ {
		idx := make([]int32, k+1)
		t := dp.Touched[r]
		for m := 1; m <= k; m++ {
			b := bounds[m]
			idx[m] = int32(sort.Search(len(t), func(i int) bool { return t[i] >= b }))
		}
		for m := 0; m < k; m++ {
			shardWork[m] += int(idx[m+1] - idx[m])
		}
		pl.shardIdx[r] = idx
	}
	for m := 0; m < k; m++ {
		if shardWork[m] > 0 {
			pl.activeShards = append(pl.activeShards, m)
		}
	}
	return pl
}
