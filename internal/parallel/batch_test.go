package parallel

import (
	"testing"

	"golts/internal/mesh"
	"golts/internal/partition"
	"golts/internal/sem"
)

// TestAddKuBatchMatchesScratch pins the engine's batched apply bitwise
// against both its own per-element apply and the inner sequential
// operator, across worker counts: the per-rank batches reproduce each
// rank's per-element accumulation exactly, and the deterministic sharded
// merge is shared by both paths.
func TestAddKuBatchMatchesScratch(t *testing.T) {
	m, op := eqSetup(t)
	lv := mesh.AssignLevels(m, 0.3/9, 2)
	elems := sem.AllElements(op)
	// A restricted, non-contiguous list too: the first level's force set.
	restricted := elems[:len(elems)/3*2]
	u := make([]float64, op.NDof())
	sem.BenchField(u)
	for _, k := range []int{1, 2, 4} {
		part, err := partition.Assign(m, lv, k, partition.ScotchP, 1)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewOperator(op, part, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, list := range [][]int32{elems, restricted, {}} {
			want := make([]float64, op.NDof())
			var sc sem.Scratch
			p.AddKuScratch(want, u, list, &sc)
			plan := p.NewBatchPlan(list)
			if plan == nil {
				t.Fatalf("K=%d: NewBatchPlan returned nil for a batchable inner operator", k)
			}
			got := make([]float64, op.NDof())
			var bs sem.BatchScratch
			p.AddKuBatch(got, u, plan, &bs)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("K=%d len=%d dof=%d: batched %v != per-element %v", k, len(list), i, got[i], want[i])
				}
			}
		}
		p.Close()
	}
}

// noBatchOp hides the inner operator's BatchKernel methods, modelling a
// wrapped operator without a batched kernel.
type noBatchOp struct{ sem.Operator }

// TestNewBatchPlanNilForNonBatchInner checks the documented fallback
// contract: wrapping an operator without a batched kernel yields nil
// plans, which callers treat as "use AddKuScratch".
func TestNewBatchPlanNilForNonBatchInner(t *testing.T) {
	m, op := eqSetup(t)
	lv := mesh.AssignLevels(m, 0.3/9, 2)
	part, err := partition.Assign(m, lv, 2, partition.ScotchP, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewOperator(noBatchOp{op}, part, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if plan := p.NewBatchPlan(sem.AllElements(op)); plan != nil {
		t.Fatalf("NewBatchPlan = %T, want nil for a non-batchable inner operator", plan)
	}
}
