package parallel

import (
	"sync/atomic"
	"time"

	"golts/internal/sem"
)

// taskKind selects the phase a dispatched task belongs to.
type taskKind uint8

const (
	taskCompute taskKind = iota
	taskMerge
)

// task is one unit of work handed to a rank worker: either "apply your
// owned slice of the plan's elements" — as one fused batch when bplan is
// set, per element otherwise — or "reduce one merge shard".
type task struct {
	kind  taskKind
	plan  *applyPlan
	bplan sem.BatchPlan // compute: the rank's batch plan (nil = per-element)
	u     []float64     // compute: shared read-only input field
	dst   []float64     // merge: shared output (shards write disjoint ranges)
	shard int           // merge: shard index
}

// rankWorker is one persistent goroutine owning a private accumulation
// buffer and its own kernel scratches — the per-element Scratch and the
// batched-kernel BatchScratch (one per worker serves every level's plan,
// since a worker executes one task at a time and the arena grows to the
// largest request). The buffer is all-zero between applies: the compute
// phase writes the rank's contributions, the merge phase drains and
// re-zeroes exactly the touched entries. The scratches warm on the first
// apply, after which the compute phase is allocation-free.
type rankWorker struct {
	id   int
	op   sem.Operator
	bop  sem.BatchKernel // op's batched kernel, when supported
	ch   chan task
	acc  []float64
	scr  sem.Scratch
	bscr sem.BatchScratch
	busy atomic.Int64 // cumulative compute nanos (telemetry only)
}

// serve processes tasks until the channel closes. The master's
// phase.Wait() between the compute and merge dispatches is the barrier
// that makes every rank's compute writes visible to every merge reader.
func (w *rankWorker) serve(p *PartitionedOperator) {
	for t := range w.ch {
		switch t.kind {
		case taskCompute:
			var start time.Time
			tel := p.telemetry.Load()
			if tel {
				start = time.Now()
			}
			if t.bplan != nil {
				w.bop.AddKuBatch(w.acc, t.u, t.bplan, &w.bscr)
			} else {
				w.op.AddKuScratch(w.acc, t.u, t.plan.dp.Parts[w.id], &w.scr)
			}
			if tel {
				w.busy.Add(time.Since(start).Nanoseconds())
			}
		case taskMerge:
			t.plan.mergeShard(t.shard, t.dst, p.workers)
		}
		p.phase.Done()
	}
}

// mergeShard reduces one contiguous node-id range: for every rank in
// ascending order, add its contributions for the shard's slice of the
// rank's touched-node list into dst and zero the private buffer. Shards
// partition the node space, so writes to dst and to each acc are disjoint
// across concurrent shards, and the fixed rank order makes the floating-
// point sum per node deterministic.
func (pl *applyPlan) mergeShard(m int, dst []float64, workers []*rankWorker) {
	nc := pl.nc
	for r, touched := range pl.dp.Touched {
		lo, hi := pl.shardIdx[r][m], pl.shardIdx[r][m+1]
		if lo == hi {
			continue
		}
		acc := workers[r].acc
		for _, n := range touched[lo:hi] {
			base := int(n) * nc
			for c := 0; c < nc; c++ {
				dst[base+c] += acc[base+c]
				acc[base+c] = 0
			}
		}
	}
}
