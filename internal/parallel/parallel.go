// Package parallel provides a message-passing parallel execution of the
// wave operators: K persistent rank goroutines each own a subset of the
// elements (from any partitioner) and communicate only via channels — the
// same owner-computes + boundary-exchange structure as the paper's MPI
// parallelization (§III), realised in shared memory.
//
// The package wraps any sem.Operator in a PartitionedOperator that
// distributes every stiffness application across the ranks: each rank
// computes the contributions of its own elements into private storage and
// sends the touched (node, value) pairs back as messages; the merge adds
// rank contributions in deterministic order. Both the global Newmark
// stepper and the multi-level LTS scheme then run *unchanged* on top, which
// demonstrates that the LTS recursion parallelises purely through its
// per-substep, per-level stiffness applications — exactly the property the
// paper's partitioning work load-balances.
//
// On a single-core host this is a correctness and accounting vehicle (it
// validates the parallel decomposition and measures true message volumes),
// not a speedup vehicle; the performance experiments use package cluster.
package parallel

import (
	"fmt"
	"sync"

	"golts/internal/sem"
)

// message carries one rank's sparse stiffness contributions.
type message struct {
	nodes  []int32
	values []float64 // Comps() values per node
}

// rankWorker owns a set of elements and serves stiffness requests.
type rankWorker struct {
	id       int
	op       sem.Operator
	elems    []int32 // owned elements (ascending)
	reqCh    chan []int32
	u        []float64 // shared read-only field for the current apply
	resCh    chan message
	acc      []float64 // private accumulation buffer
	touched  []int32
	touchMap []bool
}

// Stats accumulates communication accounting across applies.
type Stats struct {
	// Applies counts AddKu calls.
	Applies int64
	// Messages counts rank->master messages carrying nonzero data.
	Messages int64
	// Volume counts node-values exchanged (the shared-memory analogue of
	// MPI volume).
	Volume int64
}

// PartitionedOperator distributes AddKu over rank goroutines. It
// implements sem.Operator and is safe for the sequential call patterns of
// the steppers (one apply at a time).
type PartitionedOperator struct {
	inner   sem.Operator
	K       int
	part    []int32
	workers []*rankWorker
	wg      sync.WaitGroup
	closed  bool

	mu    sync.Mutex
	stats Stats
}

// NewOperator wraps inner so that stiffness applications execute on K rank
// goroutines according to the element partition.
func NewOperator(inner sem.Operator, part []int32, k int) (*PartitionedOperator, error) {
	if len(part) != inner.NumElements() {
		return nil, fmt.Errorf("parallel: partition has %d entries for %d elements", len(part), inner.NumElements())
	}
	p := &PartitionedOperator{inner: inner, K: k, part: part}
	byRank := make([][]int32, k)
	for e, r := range part {
		if r < 0 || int(r) >= k {
			return nil, fmt.Errorf("parallel: element %d in part %d (K=%d)", e, r, k)
		}
		byRank[r] = append(byRank[r], int32(e))
	}
	nd := inner.NDof()
	p.workers = make([]*rankWorker, k)
	for r := 0; r < k; r++ {
		w := &rankWorker{
			id:       r,
			op:       inner,
			elems:    byRank[r],
			reqCh:    make(chan []int32),
			resCh:    make(chan message),
			acc:      make([]float64, nd),
			touchMap: make([]bool, inner.NumNodes()),
		}
		p.workers[r] = w
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			w.serve()
		}()
	}
	return p, nil
}

// serve processes apply requests until the request channel closes.
func (w *rankWorker) serve() {
	nc := w.op.Comps()
	var nb []int32
	for elems := range w.reqCh {
		// Local compute: contributions of owned ∩ requested elements.
		w.op.AddKu(w.acc, w.u, elems)
		// Collect touched nodes (sorted ascending by construction of the
		// element list and nb ordering is irrelevant: we sort implicitly
		// by scanning element node lists and deduping via touchMap, then
		// emit in first-touch order — made deterministic by the fixed
		// element order).
		w.touched = w.touched[:0]
		for _, e := range elems {
			nb = w.op.ElemNodes(int(e), nb[:0])
			for _, n := range nb {
				if !w.touchMap[n] {
					w.touchMap[n] = true
					w.touched = append(w.touched, n)
				}
			}
		}
		vals := make([]float64, len(w.touched)*nc)
		for i, n := range w.touched {
			for c := 0; c < nc; c++ {
				vals[i*nc+c] = w.acc[int(n)*nc+c]
				w.acc[int(n)*nc+c] = 0
			}
			w.touchMap[n] = false
		}
		w.resCh <- message{nodes: append([]int32(nil), w.touched...), values: vals}
	}
}

// AddKu distributes the application across ranks and merges contributions
// in rank order (deterministic).
func (p *PartitionedOperator) AddKu(dst, u []float64, elems []int32) {
	// Split requested elements by owner.
	byRank := make([][]int32, p.K)
	for _, e := range elems {
		r := p.part[e]
		byRank[r] = append(byRank[r], e)
	}
	nc := p.inner.Comps()
	// Dispatch.
	active := 0
	for r := 0; r < p.K; r++ {
		if len(byRank[r]) == 0 {
			continue
		}
		p.workers[r].u = u
		p.workers[r].reqCh <- byRank[r]
		active++
	}
	// Collect in rank order for determinism.
	var msgs, vol int64
	for r := 0; r < p.K; r++ {
		if len(byRank[r]) == 0 {
			continue
		}
		m := <-p.workers[r].resCh
		for i, n := range m.nodes {
			for c := 0; c < nc; c++ {
				dst[int(n)*nc+c] += m.values[i*nc+c]
			}
		}
		if len(m.nodes) > 0 {
			msgs++
			vol += int64(len(m.nodes))
		}
	}
	p.mu.Lock()
	p.stats.Applies++
	p.stats.Messages += msgs
	p.stats.Volume += vol
	p.mu.Unlock()
}

// Close shuts down the rank goroutines. The operator must not be used
// afterwards.
func (p *PartitionedOperator) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, w := range p.workers {
		close(w.reqCh)
	}
	p.wg.Wait()
}

// Stats returns accumulated communication counters.
func (p *PartitionedOperator) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// NumNodes implements sem.Operator.
func (p *PartitionedOperator) NumNodes() int { return p.inner.NumNodes() }

// Comps implements sem.Operator.
func (p *PartitionedOperator) Comps() int { return p.inner.Comps() }

// NDof implements sem.Operator.
func (p *PartitionedOperator) NDof() int { return p.inner.NDof() }

// NumElements implements sem.Operator.
func (p *PartitionedOperator) NumElements() int { return p.inner.NumElements() }

// MInv implements sem.Operator.
func (p *PartitionedOperator) MInv() []float64 { return p.inner.MInv() }

// ElemNodes implements sem.Operator.
func (p *PartitionedOperator) ElemNodes(e int, buf []int32) []int32 {
	return p.inner.ElemNodes(e, buf)
}

var _ sem.Operator = (*PartitionedOperator)(nil)
