// Package parallel is a shared-memory parallel execution engine for the
// wave operators: K persistent rank goroutines (one per GOMAXPROCS slot by
// default) each own a subset of the elements from any partitioner — the
// same owner-computes decomposition as the paper's MPI parallelization
// (§III), realised with threads instead of processes.
//
// The package wraps any sem.Operator in a PartitionedOperator that
// executes every stiffness application in two concurrent phases:
//
//  1. Compute: each active rank applies the stiffness of its owned ∩
//     requested elements into a private full-length accumulation buffer.
//     Ranks run concurrently; no shared writes.
//  2. Merge: the global node-id space is sharded into contiguous ranges
//     (balanced by touched-node volume) and the shards are reduced
//     concurrently — each shard adds the rank contributions for its node
//     range into dst in ascending rank order, then zeroes the private
//     buffers. Because every node belongs to exactly one shard and ranks
//     are always summed in the same order, the result is bitwise
//     reproducible from run to run for a fixed (partition, K).
//
// Repeated applications of the same element list — the global stepper's
// all-elements list, and each LTS level's force-element list — hit a plan
// cache holding the per-rank element split, the per-rank sorted touched
// node lists, and the merge shard boundaries. The per-level plans double
// as the activation masks of the paper's Fig. 1 schedule: an LTS substep
// only wakes the ranks that own active elements at that level; everyone
// else stays parked on their channel. Callers that know their element
// lists up front (package lts, package newmark) install the plans eagerly
// via Prepare, so no apply pays plan construction.
//
// Both the global Newmark stepper and the multi-level LTS scheme run
// *unchanged* on top, which demonstrates that the LTS recursion
// parallelises purely through its per-substep, per-level stiffness
// applications — exactly the property the paper's partitioning work
// load-balances. Stats keeps the message/volume accounting of the MPI
// analogy: one "message" per active rank per apply, volume in touched
// nodes.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"golts/internal/sem"
)

// Stats accumulates communication accounting across applies.
type Stats struct {
	// Applies counts AddKu calls.
	Applies int64
	// Messages counts per-apply active-rank contributions carrying nonzero
	// data (the shared-memory analogue of MPI messages).
	Messages int64
	// Volume counts node-values exchanged (the shared-memory analogue of
	// MPI volume).
	Volume int64
}

// PartitionedOperator distributes AddKu over persistent rank goroutines.
// It implements sem.Operator and is safe for the sequential call patterns
// of the steppers (one apply at a time); the parallelism is internal.
type PartitionedOperator struct {
	inner   sem.Operator
	K       int
	part    []int32
	workers []*rankWorker
	wg      sync.WaitGroup // worker goroutine lifetime
	phase   sync.WaitGroup // per-phase barrier (compute, then merge)
	closed  bool

	plans planCache

	// scrPool backs the plain AddKu entry point on the K == 1 delegation
	// path only — a cold convenience for callers without an owned scratch
	// (one-shot diagnostics, tests). Every hot caller holds a plan-owned
	// scratch: the steppers call AddKuBatch/AddKuScratch with their own
	// workspace, and for K > 1 the rank workers own theirs, so AddKu
	// never touches the pool there.
	scrPool sync.Pool

	// telemetry gates the per-worker compute-time counters (read by the
	// workers on every compute task, so atomic rather than a plain bool).
	telemetry atomic.Bool

	mu    sync.Mutex
	stats Stats
}

// SetTelemetry enables or disables per-worker compute wall-time
// accounting. Off by default; when off the compute path performs a
// single atomic load and no clock reads.
func (p *PartitionedOperator) SetTelemetry(on bool) { p.telemetry.Store(on) }

// WorkerBusyNanos returns each worker's cumulative compute wall time,
// indexed by worker id. All zeros unless SetTelemetry(true) was called.
func (p *PartitionedOperator) WorkerBusyNanos() []int64 {
	out := make([]int64, p.K)
	for r, w := range p.workers {
		out[r] = w.busy.Load()
	}
	return out
}

// DefaultWorkers returns the default rank count: one per GOMAXPROCS slot.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// NewOperator wraps inner so that stiffness applications execute on K rank
// goroutines according to the element partition (part[e] = owning rank).
func NewOperator(inner sem.Operator, part []int32, k int) (*PartitionedOperator, error) {
	if k < 1 {
		return nil, fmt.Errorf("parallel: K must be >= 1, got %d", k)
	}
	if len(part) != inner.NumElements() {
		return nil, fmt.Errorf("parallel: partition has %d entries for %d elements", len(part), inner.NumElements())
	}
	p := &PartitionedOperator{inner: inner, K: k, part: part}
	p.scrPool.New = func() any { return new(sem.Scratch) }
	for e, r := range part {
		if r < 0 || int(r) >= k {
			return nil, fmt.Errorf("parallel: element %d in part %d (K=%d)", e, r, k)
		}
	}
	p.plans.init(p)
	nd := inner.NDof()
	p.workers = make([]*rankWorker, k)
	bop, _ := inner.(sem.BatchKernel)
	for r := 0; r < k; r++ {
		w := &rankWorker{
			id:  r,
			op:  inner,
			bop: bop,
			ch:  make(chan task, 1),
			acc: make([]float64, nd),
		}
		p.workers[r] = w
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			w.serve(p)
		}()
	}
	return p, nil
}

// Prepare builds and caches the execution plan (per-rank element split,
// touched-node lists, merge shards) for the given element list, so later
// AddKu calls with the same list start computing immediately. The steppers
// call this once per level at construction time.
func (p *PartitionedOperator) Prepare(elems []int32) {
	p.plans.lookup(p, elems)
}

// AddKu distributes the application across the rank workers and reduces
// the per-rank contributions with a sharded parallel merge. The element
// list must not be mutated between applies that reuse it (the plan cache
// validates content and rebuilds on change, at O(len) cost).
//
// For K > 1 no scratch is needed at all — the rank workers own theirs —
// so the call goes straight to AddKuScratch; only the K == 1 delegation
// path draws from the scratch pool (cold-only: hot callers hold a
// plan-owned scratch and use AddKuScratch or AddKuBatch directly).
func (p *PartitionedOperator) AddKu(dst, u []float64, elems []int32) {
	if p.K > 1 {
		p.AddKuScratch(dst, u, elems, nil)
		return
	}
	sc := p.scrPool.Get().(*sem.Scratch)
	p.AddKuScratch(dst, u, elems, sc)
	p.scrPool.Put(sc)
}

// AddKuScratch implements sem.Operator. For K > 1 the parallelism is
// internal — every rank worker owns its own scratch — and sc is unused
// (callers may pass nil); for K = 1 the apply delegates to the inner
// operator with sc.
func (p *PartitionedOperator) AddKuScratch(dst, u []float64, elems []int32, sc *sem.Scratch) {
	plan := p.plans.lookup(p, elems)
	// Single rank: delegate straight to the inner operator — bitwise the
	// sequential accumulation, without the dispatch/merge machinery — so
	// the 1-worker engine is an honest speedup baseline. The plan lookup
	// stays to keep the Stats accounting identical.
	if p.K == 1 {
		p.inner.AddKuScratch(dst, u, elems, sc)
		p.account(plan)
		return
	}
	p.runPhases(plan, dst, u, false)
}

// runPhases executes the shared two-phase protocol of an apply.
//
// Phase 1 — compute: wake only the ranks owning active elements (the
// per-level activation mask); each accumulates into its private buffer —
// as one fused batch when batched is set, per element otherwise.
//
// Phase 2 — merge: deterministic parallel reduction over node-range
// shards. Each shard sums rank contributions in ascending rank order and
// restores the accumulation buffers' all-zero invariant. The merge is
// identical for both kernels, which is what keeps them bitwise-equal.
func (p *PartitionedOperator) runPhases(plan *applyPlan, dst, u []float64, batched bool) {
	p.phase.Add(len(plan.dp.Active))
	for _, r := range plan.dp.Active {
		t := task{kind: taskCompute, plan: plan, u: u}
		if batched {
			t.bplan = plan.rankBatch[r]
		}
		p.workers[r].ch <- t
	}
	p.phase.Wait()
	p.phase.Add(len(plan.activeShards))
	for _, m := range plan.activeShards {
		p.workers[m].ch <- task{kind: taskMerge, plan: plan, shard: m, dst: dst}
	}
	p.phase.Wait()
	p.account(plan)
}

// account applies one apply's communication-accounting deltas.
func (p *PartitionedOperator) account(plan *applyPlan) {
	p.mu.Lock()
	p.stats.Applies++
	p.stats.Messages += plan.dp.Messages
	p.stats.Volume += plan.dp.Volume
	p.mu.Unlock()
}

// rankBatchPlan is the PartitionedOperator's BatchPlan: the cached
// execution plan plus its per-rank inner batch plans — the "per level,
// per rank" layout, with the level dimension owned by the stepper and
// the rank dimension owned here.
type rankBatchPlan struct {
	p    *PartitionedOperator
	plan *applyPlan
}

// Elems implements sem.BatchPlan.
func (rp *rankBatchPlan) Elems() []int32 { return rp.plan.dp.Elems }

// BatchedElems implements sem.BatchPlan: the sum over ranks of the
// elements executing through full SoA blocks.
func (rp *rankBatchPlan) BatchedElems() int {
	n := 0
	for _, bp := range rp.plan.rankBatch {
		if bp != nil {
			n += bp.BatchedElems()
		}
	}
	return n
}

// NewBatchPlan implements sem.BatchKernel: the element list's execution
// plan (ownership split, merge shards) is built or fetched from the plan
// cache, and one inner BatchPlan per active rank is attached on first
// request — per-element configurations that never ask for the batched
// kernel never hold the packed plan constants. Returns nil when the
// inner operator has no batched kernel; callers fall back to
// AddKuScratch.
func (p *PartitionedOperator) NewBatchPlan(elems []int32) sem.BatchPlan {
	bk, ok := p.inner.(sem.BatchKernel)
	if !ok {
		return nil
	}
	pl := p.plans.lookup(p, elems)
	p.plans.mu.Lock()
	defer p.plans.mu.Unlock()
	if pl.rankBatch == nil {
		rb := make([]sem.BatchPlan, p.K)
		for _, r := range pl.dp.Active {
			if rb[r] = bk.NewBatchPlan(pl.dp.Parts[r]); rb[r] == nil {
				return nil // wrapper whose inner operator cannot batch
			}
		}
		pl.rankBatch = rb
	}
	return &rankBatchPlan{p: p, plan: pl}
}

// AddKuBatch implements sem.BatchKernel: the compute phase runs each
// active rank's owned slice as one fused batch on the worker's own
// BatchScratch; the deterministic sharded merge is unchanged, so the
// result is bitwise-identical to AddKuScratch with the same plan (and,
// lane for lane, to the sequential per-element path). For K = 1 the
// apply delegates to the inner operator's batched kernel with bs.
func (p *PartitionedOperator) AddKuBatch(dst, u []float64, plan sem.BatchPlan, bs *sem.BatchScratch) {
	rp, ok := plan.(*rankBatchPlan)
	if !ok {
		panic(fmt.Sprintf("parallel: AddKuBatch: foreign plan type %T", plan))
	}
	if rp.p != p {
		panic("parallel: AddKuBatch: plan built by a different operator")
	}
	pl := rp.plan
	if p.K == 1 {
		if bp := pl.rankBatch[0]; bp != nil { // nil only for an empty list
			p.inner.(sem.BatchKernel).AddKuBatch(dst, u, bp, bs)
		}
		p.account(pl)
		return
	}
	p.runPhases(pl, dst, u, true)
}

// Close shuts down the rank goroutines. The operator must not be used
// afterwards.
func (p *PartitionedOperator) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, w := range p.workers {
		close(w.ch)
	}
	p.wg.Wait()
}

// Stats returns accumulated communication counters.
func (p *PartitionedOperator) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// NumNodes implements sem.Operator.
func (p *PartitionedOperator) NumNodes() int { return p.inner.NumNodes() }

// Comps implements sem.Operator.
func (p *PartitionedOperator) Comps() int { return p.inner.Comps() }

// NDof implements sem.Operator.
func (p *PartitionedOperator) NDof() int { return p.inner.NDof() }

// NumElements implements sem.Operator.
func (p *PartitionedOperator) NumElements() int { return p.inner.NumElements() }

// MInv implements sem.Operator.
func (p *PartitionedOperator) MInv() []float64 { return p.inner.MInv() }

// ElemNodes implements sem.Operator.
func (p *PartitionedOperator) ElemNodes(e int, buf []int32) []int32 {
	return p.inner.ElemNodes(e, buf)
}

// ConnTable forwards the inner operator's flat connectivity table
// (implements sem.Connectivity); it returns (nil, 0) when the inner
// operator has none, which callers treat as "fall back to ElemNodes".
func (p *PartitionedOperator) ConnTable() ([]int32, int) {
	if ct, ok := p.inner.(sem.Connectivity); ok {
		return ct.ConnTable()
	}
	return nil, 0
}

var (
	_ sem.Operator     = (*PartitionedOperator)(nil)
	_ sem.Preparer     = (*PartitionedOperator)(nil)
	_ sem.Connectivity = (*PartitionedOperator)(nil)
	_ sem.BatchKernel  = (*PartitionedOperator)(nil)
)
