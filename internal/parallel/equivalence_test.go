package parallel

import (
	"fmt"
	"math"
	"testing"

	"golts/internal/lts"
	"golts/internal/mesh"
	"golts/internal/newmark"
	"golts/internal/partition"
	"golts/internal/sem"
)

// The equivalence suite is the race-proof correctness contract of the
// engine: parallel trajectories must match the sequential reference within
// 1e-10 across worker counts {1,2,4,8}, two partitioners, and 1-3 LTS
// levels, and identical configurations must reproduce bitwise. Under
// -short (the -race CI job) the matrix shrinks to its corners.

const eqTol = 1e-10

func eqSetup(t testing.TB) (*mesh.Mesh, *sem.Acoustic3D) {
	t.Helper()
	// Grading 1 : 1/4 in x gives three natural p-levels to cap from.
	xc := []float64{0, 1, 2, 2.5, 2.75, 3, 3.25, 4.25}
	yc := []float64{0, 1, 2, 3}
	zc := []float64{0, 1, 2, 3}
	m, err := mesh.New("equiv3d", xc, yc, zc)
	if err != nil {
		t.Fatal(err)
	}
	op, err := sem.NewAcoustic3D(m, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	return m, op
}

func eqInitial(op *sem.Acoustic3D) ([]float64, []float64) {
	u0 := make([]float64, op.NDof())
	v0 := make([]float64, op.NDof())
	for n := 0; n < op.NumNodes(); n++ {
		x, y, z := op.NodeCoords(int32(n))
		u0[n] = math.Exp(-(x-2.8)*(x-2.8) - (y-1.5)*(y-1.5) - (z-1.5)*(z-1.5))
		v0[n] = 0.1 * math.Cos(0.7*x) * math.Cos(0.5*y) * math.Cos(0.4*z)
	}
	return u0, v0
}

func eqMatrix() (workers []int, methods []partition.Method, levels []int) {
	workers = []int{1, 2, 4, 8}
	methods = []partition.Method{partition.ScotchP, partition.Metis}
	levels = []int{1, 2, 3}
	if testing.Short() {
		workers = []int{1, 4}
		methods = methods[:1]
		levels = []int{1, 3}
	}
	return
}

// runLTS advances cycles LTS cycles on the given operator and returns the
// final displacement and velocity.
func runLTS(t *testing.T, op sem.Operator, lv *mesh.Levels, u0, v0 []float64, cycles int) ([]float64, []float64) {
	t.Helper()
	s, err := lts.FromMeshLevels(op, lv, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetInitial(u0, v0); err != nil {
		t.Fatal(err)
	}
	s.Run(cycles)
	return s.U, s.V
}

func fieldScale(u []float64) float64 {
	s := 1.0
	for _, v := range u {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// TestEquivalenceLTS: parallel multi-level LTS trajectories match the
// sequential reference within 1e-10 for every (workers, partitioner,
// levels) combination.
func TestEquivalenceLTS(t *testing.T) {
	m, op := eqSetup(t)
	u0, v0 := eqInitial(op)
	workers, methods, levels := eqMatrix()
	const cycles = 8
	for _, nlv := range levels {
		lv := mesh.AssignLevels(m, 0.3/9, nlv)
		refU, refV := runLTS(t, op, lv, u0, v0, cycles)
		tol := eqTol * fieldScale(refU)
		for _, meth := range methods {
			for _, k := range workers {
				t.Run(fmt.Sprintf("levels=%d/%s/workers=%d", nlv, meth, k), func(t *testing.T) {
					part, err := partition.Assign(m, lv, k, meth, 7)
					if err != nil {
						t.Fatal(err)
					}
					pop, err := NewOperator(op, part, k)
					if err != nil {
						t.Fatal(err)
					}
					defer pop.Close()
					gotU, gotV := runLTS(t, pop, lv, u0, v0, cycles)
					if d := maxDiff(refU, gotU); d > tol {
						t.Errorf("U differs from sequential by %v (tol %v)", d, tol)
					}
					if d := maxDiff(refV, gotV); d > tol {
						t.Errorf("V differs from sequential by %v (tol %v)", d, tol)
					}
				})
			}
		}
	}
}

// TestEquivalenceNewmark: the global stepper on the engine matches the
// sequential stepper within 1e-10 across workers and partitioners.
func TestEquivalenceNewmark(t *testing.T) {
	m, op := eqSetup(t)
	u0, v0 := eqInitial(op)
	workers, methods, _ := eqMatrix()
	lv := mesh.AssignLevels(m, 0.3/9, 0)
	dt := lv.CoarseDt / float64(lv.PMax())
	steps := 30
	if testing.Short() {
		steps = 12
	}
	ref := newmark.New(op, dt)
	if err := ref.SetInitial(u0, v0); err != nil {
		t.Fatal(err)
	}
	ref.Run(steps)
	tol := eqTol * fieldScale(ref.U)
	for _, meth := range methods {
		for _, k := range workers {
			t.Run(fmt.Sprintf("%s/workers=%d", meth, k), func(t *testing.T) {
				part, err := partition.Assign(m, lv, k, meth, 7)
				if err != nil {
					t.Fatal(err)
				}
				pop, err := NewOperator(op, part, k)
				if err != nil {
					t.Fatal(err)
				}
				defer pop.Close()
				s := newmark.New(pop, dt)
				if err := s.SetInitial(u0, v0); err != nil {
					t.Fatal(err)
				}
				s.Run(steps)
				if d := maxDiff(ref.U, s.U); d > tol {
					t.Errorf("U differs from sequential by %v (tol %v)", d, tol)
				}
				if d := maxDiff(ref.V, s.V); d > tol {
					t.Errorf("V differs from sequential by %v (tol %v)", d, tol)
				}
			})
		}
	}
}

// TestDeterminism: two runs with identical configuration produce bitwise
// identical fields — the sharded merge always sums ranks in the same
// order, independent of goroutine scheduling.
func TestDeterminism(t *testing.T) {
	m, op := eqSetup(t)
	u0, v0 := eqInitial(op)
	lv := mesh.AssignLevels(m, 0.3/9, 3)
	part, err := partition.Assign(m, lv, 4, partition.ScotchP, 7)
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]float64, []float64) {
		pop, err := NewOperator(op, part, 4)
		if err != nil {
			t.Fatal(err)
		}
		defer pop.Close()
		return runLTS(t, pop, lv, u0, v0, 6)
	}
	u1, v1 := run()
	u2, v2 := run()
	for i := range u1 {
		if u1[i] != u2[i] || v1[i] != v2[i] {
			t.Fatalf("dof %d not bitwise reproducible: u %v vs %v, v %v vs %v",
				i, u1[i], u2[i], v1[i], v2[i])
		}
	}
}

// TestSingleWorkerBitwise: the K=1 engine reproduces the sequential LTS
// trajectory exactly — same element order, same accumulation order.
func TestSingleWorkerBitwise(t *testing.T) {
	m, op := eqSetup(t)
	u0, v0 := eqInitial(op)
	lv := mesh.AssignLevels(m, 0.3/9, 3)
	refU, refV := runLTS(t, op, lv, u0, v0, 6)
	pop, err := NewOperator(op, make([]int32, m.NumElements()), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	gotU, gotV := runLTS(t, pop, lv, u0, v0, 6)
	for i := range refU {
		if refU[i] != gotU[i] || refV[i] != gotV[i] {
			t.Fatalf("dof %d not bitwise equal to sequential", i)
		}
	}
}

// TestEquivalenceElastic covers the multi-component (Comps()==3) merge
// indexing: parallel LTS on the elastic operator matches the sequential
// reference within 1e-10.
func TestEquivalenceElastic(t *testing.T) {
	m, _ := eqSetup(t)
	op, err := sem.NewElastic3D(m, 2, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	u0 := make([]float64, op.NDof())
	v0 := make([]float64, op.NDof())
	nc := op.Comps()
	for n := 0; n < op.NumNodes(); n++ {
		x, y, z := op.NodeCoords(int32(n))
		g := math.Exp(-(x-2.8)*(x-2.8) - (y-1.5)*(y-1.5) - (z-1.5)*(z-1.5))
		for c := 0; c < nc; c++ {
			u0[n*nc+c] = g * float64(c+1) / 3
			v0[n*nc+c] = 0.05 * math.Cos(0.6*x+0.4*float64(c)) * math.Cos(0.5*y)
		}
	}
	lv := mesh.AssignLevels(m, 0.3/4, 3)
	refU, refV := runLTS(t, op, lv, u0, v0, 6)
	tol := eqTol * fieldScale(refU)
	for _, k := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", k), func(t *testing.T) {
			part, err := partition.Assign(m, lv, k, partition.ScotchP, 7)
			if err != nil {
				t.Fatal(err)
			}
			pop, err := NewOperator(op, part, k)
			if err != nil {
				t.Fatal(err)
			}
			defer pop.Close()
			gotU, gotV := runLTS(t, pop, lv, u0, v0, 6)
			if d := maxDiff(refU, gotU); d > tol {
				t.Errorf("U differs from sequential by %v (tol %v)", d, tol)
			}
			if d := maxDiff(refV, gotV); d > tol {
				t.Errorf("V differs from sequential by %v (tol %v)", d, tol)
			}
		})
	}
}

// TestStressInterleavedSchemes drives many applies through several cached
// plans at more workers than cores — grist for the -race job: the compute
// and merge phases of consecutive applies from different schemes must
// never overlap incorrectly.
func TestStressInterleavedSchemes(t *testing.T) {
	m, op := eqSetup(t)
	u0, v0 := eqInitial(op)
	lv := mesh.AssignLevels(m, 0.3/9, 3)
	part, err := partition.Assign(m, lv, 8, partition.ScotchP, 7)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := NewOperator(op, part, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	s, err := lts.FromMeshLevels(pop, lv, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetInitial(u0, v0); err != nil {
		t.Fatal(err)
	}
	g := newmark.New(pop, lv.CoarseDt/float64(lv.PMax()))
	if err := g.SetInitial(u0, v0); err != nil {
		t.Fatal(err)
	}
	cycles := 8
	if testing.Short() {
		cycles = 3
	}
	for i := 0; i < cycles; i++ {
		s.Step()
		g.Run(2)
	}
	st := pop.Stats()
	if st.Applies == 0 || st.Volume == 0 {
		t.Fatalf("engine did no work: %+v", st)
	}
}
