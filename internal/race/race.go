//go:build !race

// Package race reports whether the race detector is active, so
// allocation-regression tests can skip assertions that the detector's
// instrumentation would break.
package race

// Enabled is true when the binary is built with -race.
const Enabled = false
