// Package gll provides Gauss-Legendre-Lobatto (GLL) quadrature rules and
// Lagrange interpolation utilities on the reference interval [-1, 1].
//
// GLL collocation is the foundation of the spectral element method (SEM):
// placing both the interpolation nodes and the quadrature points at the GLL
// points yields a diagonal mass matrix while retaining spectral accuracy,
// which is what makes explicit time stepping cheap (paper §I-B).
package gll

import (
	"fmt"
	"math"
)

// Rule holds the GLL points, quadrature weights and the Lagrange derivative
// matrix for polynomial degree N (N+1 points).
type Rule struct {
	// N is the polynomial degree; the rule has N+1 points.
	N int
	// Points are the GLL nodes in ascending order; Points[0] = -1,
	// Points[N] = +1.
	Points []float64
	// Weights are the quadrature weights w_i = 2 / (N(N+1) P_N(x_i)^2).
	Weights []float64
	// D is the Lagrange derivative matrix: D[i][j] = l'_j(x_i), where l_j is
	// the Lagrange cardinal polynomial of the GLL nodes. Stored row-major as
	// a dense (N+1)x(N+1) matrix.
	D [][]float64
}

// New constructs the GLL rule of degree n (n+1 points). n must be >= 1.
func New(n int) (*Rule, error) {
	if n < 1 {
		return nil, fmt.Errorf("gll: degree must be >= 1, got %d", n)
	}
	r := &Rule{N: n}
	r.Points = lobattoPoints(n)
	r.Weights = make([]float64, n+1)
	for i, x := range r.Points {
		p := legendre(n, x)
		r.Weights[i] = 2.0 / (float64(n*(n+1)) * p * p)
	}
	r.D = derivativeMatrix(n, r.Points)
	return r, nil
}

// MustNew is like New but panics on error. Intended for package-level
// initialisation with constant degrees.
func MustNew(n int) *Rule {
	r, err := New(n)
	if err != nil {
		panic(err)
	}
	return r
}

// legendre evaluates the Legendre polynomial P_n(x) by the three-term
// recurrence.
func legendre(n int, x float64) float64 {
	if n == 0 {
		return 1
	}
	if n == 1 {
		return x
	}
	pm, p := 1.0, x
	for k := 2; k <= n; k++ {
		pm, p = p, ((2*float64(k)-1)*x*p-(float64(k)-1)*pm)/float64(k)
	}
	return p
}

// legendreDeriv evaluates P_n'(x) using the standard identity
// (1-x^2) P_n'(x) = n (P_{n-1}(x) - x P_n(x)).
func legendreDeriv(n int, x float64) float64 {
	if n == 0 {
		return 0
	}
	if x == 1 || x == -1 {
		// P_n'(±1) = ±1^{n-1} n(n+1)/2
		s := 1.0
		if x < 0 && n%2 == 0 {
			s = -1
		}
		return s * float64(n*(n+1)) / 2
	}
	return float64(n) * (legendre(n-1, x) - x*legendre(n, x)) / (1 - x*x)
}

// lobattoPoints computes the n+1 GLL points: the roots of (1-x^2) P_n'(x).
// Interior roots are found by Newton iteration from Chebyshev-Gauss-Lobatto
// initial guesses, which converge for all practical degrees.
func lobattoPoints(n int) []float64 {
	pts := make([]float64, n+1)
	pts[0], pts[n] = -1, 1
	for i := 1; i < n; i++ {
		// Chebyshev-Lobatto initial guess.
		x := -math.Cos(math.Pi * float64(i) / float64(n))
		for iter := 0; iter < 100; iter++ {
			// f(x) = P_n'(x); f'(x) from the Legendre ODE:
			// (1-x^2) P_n'' - 2x P_n' + n(n+1) P_n = 0
			// => P_n'' = (2x P_n' - n(n+1) P_n) / (1-x^2)
			f := legendreDeriv(n, x)
			fp := (2*x*legendreDeriv(n, x) - float64(n*(n+1))*legendre(n, x)) / (1 - x*x)
			dx := f / fp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		pts[i] = x
	}
	// Enforce exact symmetry: average with the mirrored root.
	for i := 1; i < n; i++ {
		j := n - i
		if i < j {
			m := (pts[j] - pts[i]) / 2
			pts[i], pts[j] = -m, m
		} else if i == j {
			pts[i] = 0
		}
	}
	return pts
}

// derivativeMatrix builds D[i][j] = l'_j(x_i) using the closed form for GLL
// nodes:
//
//	D_ij = P_n(x_i) / (P_n(x_j) (x_i - x_j))   for i != j,
//	D_00 = -n(n+1)/4,  D_nn = +n(n+1)/4,  D_ii = 0 otherwise.
func derivativeMatrix(n int, x []float64) [][]float64 {
	d := make([][]float64, n+1)
	for i := range d {
		d[i] = make([]float64, n+1)
	}
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			switch {
			case i == j:
				switch i {
				case 0:
					d[i][j] = -float64(n*(n+1)) / 4
				case n:
					d[i][j] = float64(n*(n+1)) / 4
				default:
					d[i][j] = 0
				}
			default:
				d[i][j] = legendre(n, x[i]) / (legendre(n, x[j]) * (x[i] - x[j]))
			}
		}
	}
	return d
}

// Lagrange evaluates the j-th Lagrange cardinal polynomial of the rule's
// nodes at an arbitrary point xi in [-1, 1].
func (r *Rule) Lagrange(j int, xi float64) float64 {
	p := 1.0
	for m, xm := range r.Points {
		if m == j {
			continue
		}
		p *= (xi - xm) / (r.Points[j] - xm)
	}
	return p
}

// Interpolate evaluates the polynomial with nodal values u (len N+1) at xi.
func (r *Rule) Interpolate(u []float64, xi float64) float64 {
	s := 0.0
	for j := range u {
		s += u[j] * r.Lagrange(j, xi)
	}
	return s
}

// Integrate approximates the integral of f over [-1, 1] with the GLL rule.
// Exact for polynomials of degree <= 2N-1.
func (r *Rule) Integrate(f func(float64) float64) float64 {
	s := 0.0
	for i, x := range r.Points {
		s += r.Weights[i] * f(x)
	}
	return s
}

// DerivAt computes the derivative of the nodal polynomial u at node i:
// sum_j D[i][j] u[j].
func (r *Rule) DerivAt(u []float64, i int) float64 {
	s := 0.0
	row := r.D[i]
	for j, uj := range u {
		s += row[j] * uj
	}
	return s
}
