package gll

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadDegree(t *testing.T) {
	for _, n := range []int{-3, -1, 0} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d): expected error", n)
		}
	}
}

func TestKnownDegree1(t *testing.T) {
	r := MustNew(1)
	want := []float64{-1, 1}
	for i, x := range want {
		if math.Abs(r.Points[i]-x) > 1e-15 {
			t.Errorf("point[%d] = %v, want %v", i, r.Points[i], x)
		}
		if math.Abs(r.Weights[i]-1) > 1e-15 {
			t.Errorf("weight[%d] = %v, want 1", i, r.Weights[i])
		}
	}
}

func TestKnownDegree2(t *testing.T) {
	r := MustNew(2)
	wantP := []float64{-1, 0, 1}
	wantW := []float64{1.0 / 3, 4.0 / 3, 1.0 / 3}
	for i := range wantP {
		if math.Abs(r.Points[i]-wantP[i]) > 1e-14 {
			t.Errorf("point[%d] = %v, want %v", i, r.Points[i], wantP[i])
		}
		if math.Abs(r.Weights[i]-wantW[i]) > 1e-14 {
			t.Errorf("weight[%d] = %v, want %v", i, r.Weights[i], wantW[i])
		}
	}
}

// TestKnownDegree4 checks the degree-4 rule used throughout the paper
// (125-node hexahedra = degree 4 in each dimension).
func TestKnownDegree4(t *testing.T) {
	r := MustNew(4)
	s := math.Sqrt(3.0 / 7.0)
	wantP := []float64{-1, -s, 0, s, 1}
	wantW := []float64{1.0 / 10, 49.0 / 90, 32.0 / 45, 49.0 / 90, 1.0 / 10}
	for i := range wantP {
		if math.Abs(r.Points[i]-wantP[i]) > 1e-14 {
			t.Errorf("point[%d] = %v, want %v", i, r.Points[i], wantP[i])
		}
		if math.Abs(r.Weights[i]-wantW[i]) > 1e-14 {
			t.Errorf("weight[%d] = %v, want %v", i, r.Weights[i], wantW[i])
		}
	}
}

func TestWeightsSumToTwo(t *testing.T) {
	for n := 1; n <= 12; n++ {
		r := MustNew(n)
		s := 0.0
		for _, w := range r.Weights {
			s += w
		}
		if math.Abs(s-2) > 1e-12 {
			t.Errorf("degree %d: weights sum to %v, want 2", n, s)
		}
	}
}

func TestPointsSymmetricAndSorted(t *testing.T) {
	for n := 1; n <= 12; n++ {
		r := MustNew(n)
		for i := 0; i <= n; i++ {
			if got, want := r.Points[i], -r.Points[n-i]; math.Abs(got-want) > 1e-15 {
				t.Errorf("degree %d: point %d not symmetric: %v vs %v", n, i, got, want)
			}
			if i > 0 && r.Points[i] <= r.Points[i-1] {
				t.Errorf("degree %d: points not strictly ascending at %d", n, i)
			}
		}
	}
}

// TestQuadratureExactness: GLL with N+1 points integrates polynomials of
// degree up to 2N-1 exactly.
func TestQuadratureExactness(t *testing.T) {
	for n := 1; n <= 8; n++ {
		r := MustNew(n)
		for deg := 0; deg <= 2*n-1; deg++ {
			got := r.Integrate(func(x float64) float64 { return math.Pow(x, float64(deg)) })
			want := 0.0
			if deg%2 == 0 {
				want = 2.0 / float64(deg+1)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("degree %d rule, x^%d: got %v want %v", n, deg, got, want)
			}
		}
	}
}

// TestQuadratureInexactAt2N documents that x^(2N) is NOT integrated exactly
// (the well-known GLL under-integration that nevertheless yields the
// diagonal mass matrix).
func TestQuadratureInexactAt2N(t *testing.T) {
	r := MustNew(4)
	got := r.Integrate(func(x float64) float64 { return math.Pow(x, 8) })
	want := 2.0 / 9.0
	if math.Abs(got-want) < 1e-6 {
		t.Errorf("x^8 with degree-4 rule unexpectedly exact: %v vs %v", got, want)
	}
}

// TestDerivativeMatrixExactOnPolynomials: D applied to nodal values of x^k
// must reproduce k x^(k-1) at the nodes for k <= N.
func TestDerivativeMatrixExactOnPolynomials(t *testing.T) {
	for n := 1; n <= 8; n++ {
		r := MustNew(n)
		for k := 0; k <= n; k++ {
			u := make([]float64, n+1)
			for i, x := range r.Points {
				u[i] = math.Pow(x, float64(k))
			}
			for i, x := range r.Points {
				got := r.DerivAt(u, i)
				want := 0.0
				if k > 0 {
					want = float64(k) * math.Pow(x, float64(k-1))
				}
				if math.Abs(got-want) > 1e-10 {
					t.Errorf("degree %d, d/dx x^%d at node %d: got %v want %v", n, k, i, got, want)
				}
			}
		}
	}
}

// TestDerivativeRowsSumToZero: derivative of the constant 1 is 0, so each
// row of D sums to zero.
func TestDerivativeRowsSumToZero(t *testing.T) {
	for n := 1; n <= 10; n++ {
		r := MustNew(n)
		for i := 0; i <= n; i++ {
			s := 0.0
			for j := 0; j <= n; j++ {
				s += r.D[i][j]
			}
			if math.Abs(s) > 1e-11 {
				t.Errorf("degree %d: row %d of D sums to %v", n, i, s)
			}
		}
	}
}

func TestLagrangeCardinalProperty(t *testing.T) {
	r := MustNew(5)
	for j := 0; j <= 5; j++ {
		for i, x := range r.Points {
			got := r.Lagrange(j, x)
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("l_%d(x_%d) = %v, want %v", j, i, got, want)
			}
		}
	}
}

func TestInterpolateReproducesPolynomial(t *testing.T) {
	r := MustNew(6)
	f := func(x float64) float64 { return 3*x*x*x - 2*x + 0.5 }
	u := make([]float64, 7)
	for i, x := range r.Points {
		u[i] = f(x)
	}
	for _, xi := range []float64{-0.9, -0.33, 0, 0.17, 0.71, 1} {
		if got, want := r.Interpolate(u, xi), f(xi); math.Abs(got-want) > 1e-11 {
			t.Errorf("interp at %v: got %v want %v", xi, got, want)
		}
	}
}

// Property: interpolation is linear in the nodal values.
func TestInterpolationLinearityProperty(t *testing.T) {
	r := MustNew(4)
	f := func(a, b [5]float64, s float64) bool {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return true
		}
		s = math.Mod(s, 100)
		xi := 0.37
		var u, v, w [5]float64
		for i := range u {
			a[i] = math.Mod(a[i], 1e6)
			b[i] = math.Mod(b[i], 1e6)
			if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
				return true
			}
			u[i], v[i] = a[i], b[i]
			w[i] = a[i] + s*b[i]
		}
		got := r.Interpolate(w[:], xi)
		want := r.Interpolate(u[:], xi) + s*r.Interpolate(v[:], xi)
		scale := math.Max(1, math.Abs(want))
		return math.Abs(got-want) <= 1e-9*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLegendreKnownValues(t *testing.T) {
	// P_2(x) = (3x^2-1)/2, P_3(x) = (5x^3-3x)/2
	for _, x := range []float64{-1, -0.5, 0, 0.3, 1} {
		if got, want := legendre(2, x), (3*x*x-1)/2; math.Abs(got-want) > 1e-14 {
			t.Errorf("P2(%v) = %v, want %v", x, got, want)
		}
		if got, want := legendre(3, x), (5*x*x*x-3*x)/2; math.Abs(got-want) > 1e-14 {
			t.Errorf("P3(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestLegendreDerivEndpoints(t *testing.T) {
	for n := 1; n <= 6; n++ {
		want := float64(n*(n+1)) / 2
		if got := legendreDeriv(n, 1); math.Abs(got-want) > 1e-12 {
			t.Errorf("P%d'(1) = %v, want %v", n, got, want)
		}
	}
}

func BenchmarkRuleConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustNew(4)
	}
}

func BenchmarkDerivAt(b *testing.B) {
	r := MustNew(4)
	u := []float64{1, 2, 3, 4, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.DerivAt(u, 2)
	}
}
