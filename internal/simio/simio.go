// Package simio provides the I/O surface of the simulation tools:
// JSON run configurations (mesh, physics, source, receivers) and
// seismogram export as CSV or JSON. It keeps the numerical packages free
// of serialization concerns.
package simio

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Config describes one simulation run for cmd/wavesim.
type Config struct {
	// Mesh is a benchmark mesh name (trench, trench-big, embedding,
	// crust).
	Mesh string `json:"mesh"`
	// Scale is the mesh scale factor.
	Scale float64 `json:"scale"`
	// Physics is "acoustic" or "elastic".
	Physics string `json:"physics"`
	// Degree is the SEM polynomial degree (default 4).
	Degree int `json:"degree"`
	// CFL is the Courant number (default 0.4, normalised internally for
	// the GLL spacing).
	CFL float64 `json:"cfl"`
	// LTS selects LTS-Newmark; false runs global Newmark.
	LTS bool `json:"lts"`
	// Cycles is the number of coarse steps.
	Cycles int `json:"cycles"`
	// Source is the point source; zero value places a default source.
	Source SourceSpec `json:"source"`
	// Receivers list the recording stations.
	Receivers []ReceiverSpec `json:"receivers"`
	// Sponge configures the absorbing boundary layer; zero disables.
	Sponge SpongeSpec `json:"sponge"`
}

// SourceSpec places a Ricker point source.
type SourceSpec struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
	// Comp is the force component (0..2 for elastic; must be 0 for
	// acoustic).
	Comp int `json:"comp"`
	// F0 is the dominant frequency; T0 the time shift.
	F0 float64 `json:"f0"`
	T0 float64 `json:"t0"`
}

// ReceiverSpec places a recording station.
type ReceiverSpec struct {
	Name string  `json:"name"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	Z    float64 `json:"z"`
	Comp int     `json:"comp"`
}

// SpongeSpec configures the absorbing layer.
type SpongeSpec struct {
	Width    float64 `json:"width"`
	Strength float64 `json:"strength"`
	// Faces selects absorbing faces in x0,x1,y0,y1,z0,z1 order; the
	// typical seismology setup absorbs everything except the free surface.
	Faces [6]bool `json:"faces"`
}

// Validate fills defaults and rejects inconsistent configurations.
func (c *Config) Validate() error {
	if c.Mesh == "" {
		c.Mesh = "trench"
	}
	if c.Scale == 0 {
		c.Scale = 0.02
	}
	if c.Physics == "" {
		c.Physics = "acoustic"
	}
	if c.Physics != "acoustic" && c.Physics != "elastic" {
		return fmt.Errorf("simio: unknown physics %q", c.Physics)
	}
	if c.Degree == 0 {
		c.Degree = 4
	}
	if c.Degree < 1 || c.Degree > 12 {
		return fmt.Errorf("simio: degree %d outside [1, 12]", c.Degree)
	}
	if c.CFL == 0 {
		c.CFL = 0.4
	}
	if c.CFL < 0 {
		return fmt.Errorf("simio: negative CFL")
	}
	if c.Cycles == 0 {
		c.Cycles = 20
	}
	if c.Cycles < 0 {
		return fmt.Errorf("simio: negative cycle count")
	}
	// Components are validated against the physics: acoustic fields have a
	// single component 0, elastic fields three. Out-of-range components are
	// rejected here instead of being silently clamped by the driver.
	maxComp := 2
	if c.Physics == "acoustic" {
		maxComp = 0
	}
	if c.Source.Comp < 0 || c.Source.Comp > maxComp {
		return fmt.Errorf("simio: source component %d outside [0, %d] for %s physics",
			c.Source.Comp, maxComp, c.Physics)
	}
	for i, r := range c.Receivers {
		if r.Comp < 0 || r.Comp > maxComp {
			return fmt.Errorf("simio: receiver %d component %d outside [0, %d] for %s physics",
				i, r.Comp, maxComp, c.Physics)
		}
	}
	return nil
}

// LoadConfig reads and validates a JSON configuration file.
func LoadConfig(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseConfig(f)
}

// ParseConfig reads and validates a JSON configuration.
func ParseConfig(r io.Reader) (*Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("simio: parsing config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Trace is one recorded seismogram.
type Trace struct {
	Name   string    `json:"name"`
	X      float64   `json:"x"`
	Y      float64   `json:"y"`
	Z      float64   `json:"z"`
	Values []float64 `json:"values"`
}

// SeismogramSet is a collection of traces sharing a time axis.
type SeismogramSet struct {
	Times  []float64 `json:"times"`
	Traces []Trace   `json:"traces"`
}

// AddTrace appends a trace; the first trace fixes the time axis and later
// traces must match its length.
func (s *SeismogramSet) AddTrace(name string, x, y, z float64, times, values []float64) error {
	if s.Times == nil {
		s.Times = append([]float64(nil), times...)
	}
	if len(values) != len(s.Times) {
		return fmt.Errorf("simio: trace %q has %d samples, set has %d", name, len(values), len(s.Times))
	}
	s.Traces = append(s.Traces, Trace{Name: name, X: x, Y: y, Z: z, Values: append([]float64(nil), values...)})
	return nil
}

// WriteCSV writes the set as a CSV table: a time column followed by one
// column per trace.
func (s *SeismogramSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"time"}
	for _, tr := range s.Traces {
		header = append(header, tr.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i, t := range s.Times {
		row[0] = strconv.FormatFloat(t, 'g', 12, 64)
		for j, tr := range s.Traces {
			row[j+1] = strconv.FormatFloat(tr.Values[i], 'g', 12, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the set as indented JSON.
func (s *SeismogramSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON parses a set written by WriteJSON.
func ReadJSON(r io.Reader) (*SeismogramSet, error) {
	var s SeismogramSet
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	for _, tr := range s.Traces {
		if len(tr.Values) != len(s.Times) {
			return nil, fmt.Errorf("simio: trace %q sample count mismatch", tr.Name)
		}
	}
	return &s, nil
}
