package simio

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseConfigDefaults(t *testing.T) {
	c, err := ParseConfig(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Mesh != "trench" || c.Physics != "acoustic" || c.Degree != 4 || c.CFL != 0.4 || c.Cycles != 20 {
		t.Errorf("defaults not applied: %+v", c)
	}
}

func TestParseConfigRejectsBadFields(t *testing.T) {
	cases := []string{
		`{"physics": "quantum"}`,
		`{"degree": 55}`,
		`{"cycles": -3}`,
		`{"cfl": -1}`,
		`{"source": {"comp": 7}}`,
		`{"receivers": [{"comp": -1}]}`,
		`{"unknown_field": 1}`,
		`not json`,
	}
	for _, s := range cases {
		if _, err := ParseConfig(strings.NewReader(s)); err == nil {
			t.Errorf("config %q accepted", s)
		}
	}
}

// TestValidateComponentPhysics: component ranges are validated against the
// physics — acoustic fields have a single component — instead of the
// driver silently clamping out-of-range components.
func TestValidateComponentPhysics(t *testing.T) {
	cases := []struct {
		js string
		ok bool
	}{
		{`{"physics": "acoustic", "source": {"comp": 1, "f0": 1}}`, false},
		{`{"physics": "acoustic", "receivers": [{"comp": 2}]}`, false},
		{`{"physics": "acoustic", "source": {"comp": 0, "f0": 1}}`, true},
		{`{"physics": "elastic", "source": {"comp": 2, "f0": 1}}`, true},
		{`{"physics": "elastic", "receivers": [{"comp": 2}]}`, true},
		{`{"physics": "elastic", "source": {"comp": 3, "f0": 1}}`, false},
	}
	for _, c := range cases {
		_, err := ParseConfig(strings.NewReader(c.js))
		if c.ok && err != nil {
			t.Errorf("config %q rejected: %v", c.js, err)
		}
		if !c.ok && err == nil {
			t.Errorf("config %q accepted", c.js)
		}
	}
}

func TestParseConfigFull(t *testing.T) {
	js := `{
		"mesh": "crust", "scale": 0.1, "physics": "elastic", "degree": 5,
		"cfl": 0.3, "lts": true, "cycles": 7,
		"source": {"x": 1, "y": 2, "z": 0.5, "comp": 2, "f0": 4, "t0": 0.3},
		"receivers": [{"name": "st1", "x": 3, "y": 2, "z": 0, "comp": 2}],
		"sponge": {"width": 2, "strength": 20, "faces": [true,true,true,true,false,true]}
	}`
	c, err := ParseConfig(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if c.Mesh != "crust" || !c.LTS || c.Cycles != 7 || len(c.Receivers) != 1 {
		t.Errorf("parse mismatch: %+v", c)
	}
	if c.Sponge.Faces[4] {
		t.Error("free surface should not absorb")
	}
}

func TestSeismogramCSV(t *testing.T) {
	var s SeismogramSet
	times := []float64{0, 0.1, 0.2}
	if err := s.AddTrace("a", 1, 2, 3, times, []float64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTrace("b", 4, 5, 6, times, []float64{3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTrace("c", 0, 0, 0, times, []float64{1}); err == nil {
		t.Error("mismatched trace accepted")
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[0][1] != "a" || recs[2][2] != "4" {
		t.Errorf("csv content wrong: %v", recs)
	}
}

func TestSeismogramJSONRoundTrip(t *testing.T) {
	var s SeismogramSet
	times := []float64{0, 0.5}
	if err := s.AddTrace("x", 1, 0, 0, times, []float64{0.25, -1.5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Traces) != 1 || got.Traces[0].Name != "x" || got.Traces[0].Values[1] != -1.5 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

// Property: JSON round trip preserves arbitrary finite trace values.
func TestJSONRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true // JSON cannot carry these; skip
			}
		}
		var s SeismogramSet
		times := make([]float64, len(vals))
		for i := range times {
			times[i] = float64(i)
		}
		if err := s.AddTrace("t", 0, 0, 0, times, vals); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			return false
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		for i, v := range vals {
			if got.Traces[0].Values[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
