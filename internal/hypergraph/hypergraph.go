// Package hypergraph implements the paper's hypergraph model of a finite
// element mesh for LTS partitioning (§III-A.2): vertices are elements, and
// each mesh corner node n defines one net connecting all elements that
// touch n, with cost c[h'_n] = Σ_{e ∋ n} p_level(e). With that cost, the
// connectivity-1 cut metric (Eq. 20) equals the total MPI communication
// volume of one LTS cycle exactly — the property that lets a hypergraph
// partitioner (PaToH in the paper) optimise true communication volume
// instead of the edge-cut upper bound.
package hypergraph

import (
	"fmt"

	"golts/internal/mesh"
)

// Hypergraph is a hypergraph in pin-list form with multi-constraint vertex
// weights.
type Hypergraph struct {
	// NV is the vertex count.
	NV int
	// Xpins has length NumNets+1; net n's pins are Pins[Xpins[n]:Xpins[n+1]].
	Xpins []int32
	// Pins lists the vertices of each net.
	Pins []int32
	// Cost is the per-net cost.
	Cost []int32
	// VW holds vertex weight vectors per constraint.
	VW [][]int32
	// Xnets / VNets is the transposed (vertex -> nets) incidence, built by
	// BuildVertexIncidence; required by the FM refiner.
	Xnets []int32
	VNets []int32
}

// NumNets returns the net count.
func (h *Hypergraph) NumNets() int { return len(h.Xpins) - 1 }

// NC returns the number of balance constraints.
func (h *Hypergraph) NC() int { return len(h.VW) }

// TotalWeight returns the total vertex weight per constraint.
func (h *Hypergraph) TotalWeight() []int64 {
	t := make([]int64, h.NC())
	for c, w := range h.VW {
		for _, x := range w {
			t[c] += int64(x)
		}
	}
	return t
}

// BuildVertexIncidence fills Xnets/VNets from the pin lists.
func (h *Hypergraph) BuildVertexIncidence() {
	h.Xnets = make([]int32, h.NV+1)
	for _, p := range h.Pins {
		h.Xnets[p+1]++
	}
	for v := 0; v < h.NV; v++ {
		h.Xnets[v+1] += h.Xnets[v]
	}
	h.VNets = make([]int32, len(h.Pins))
	fill := make([]int32, h.NV)
	for n := 0; n < h.NumNets(); n++ {
		for i := h.Xpins[n]; i < h.Xpins[n+1]; i++ {
			v := h.Pins[i]
			h.VNets[h.Xnets[v]+fill[v]] = int32(n)
			fill[v]++
		}
	}
}

// Validate checks structural consistency.
func (h *Hypergraph) Validate() error {
	if len(h.Cost) != h.NumNets() {
		return fmt.Errorf("hypergraph: %d costs for %d nets", len(h.Cost), h.NumNets())
	}
	for _, p := range h.Pins {
		if p < 0 || int(p) >= h.NV {
			return fmt.Errorf("hypergraph: pin %d out of range", p)
		}
	}
	for c := range h.VW {
		if len(h.VW[c]) != h.NV {
			return fmt.Errorf("hypergraph: constraint %d has %d weights", c, len(h.VW[c]))
		}
	}
	return nil
}

// FromMesh builds the LTS hypergraph model: one net per mesh corner node
// with cost Σ_{e ∋ n} p_e, and one unit-weight constraint per level.
func FromMesh(m *mesh.Mesh, lv *mesh.Levels) *Hypergraph {
	off, elems := m.CornerIncidence()
	h := &Hypergraph{NV: m.NumElements()}
	nn := m.NumCornerNodes()
	// Skip single-pin nets (domain corners interior to one element): they
	// can never be cut.
	keep := make([]int32, 0, nn)
	for n := 0; n < nn; n++ {
		if off[n+1]-off[n] >= 2 {
			keep = append(keep, int32(n))
		}
	}
	h.Xpins = make([]int32, len(keep)+1)
	h.Cost = make([]int32, len(keep))
	for i, n := range keep {
		h.Xpins[i+1] = h.Xpins[i] + (off[n+1] - off[n])
		var c int32
		for j := off[n]; j < off[n+1]; j++ {
			c += int32(lv.PFor(int(elems[j])))
		}
		h.Cost[i] = c
	}
	h.Pins = make([]int32, h.Xpins[len(keep)])
	for i, n := range keep {
		copy(h.Pins[h.Xpins[i]:h.Xpins[i+1]], elems[off[n]:off[n+1]])
	}
	h.VW = make([][]int32, lv.NumLevels)
	for c := range h.VW {
		h.VW[c] = make([]int32, h.NV)
	}
	for v := 0; v < h.NV; v++ {
		h.VW[int(lv.Lvl[v])-1][v] = 1
	}
	h.BuildVertexIncidence()
	return h
}

// CutSize returns the connectivity-1 metric (Eq. 20):
// Σ_nets cost(n) (λ_n - 1), where λ_n is the number of distinct parts among
// the net's pins. With the FromMesh costs this is exactly the MPI volume
// per LTS cycle.
func (h *Hypergraph) CutSize(part []int32, k int) int64 {
	mark := make([]int32, k)
	for i := range mark {
		mark[i] = -1
	}
	var cut int64
	for n := 0; n < h.NumNets(); n++ {
		lambda := 0
		for i := h.Xpins[n]; i < h.Xpins[n+1]; i++ {
			p := part[h.Pins[i]]
			if mark[p] != int32(n) {
				mark[p] = int32(n)
				lambda++
			}
		}
		if lambda > 1 {
			cut += int64(h.Cost[n]) * int64(lambda-1)
		}
	}
	return cut
}
