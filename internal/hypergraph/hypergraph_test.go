package hypergraph

import (
	"testing"

	"golts/internal/mesh"
)

func TestFromMeshStructure(t *testing.T) {
	m := mesh.Uniform(2, 2, 2, 1, 1)
	lv := mesh.AssignLevels(m, 0.4, 0)
	h := FromMesh(m, lv)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NV != 8 {
		t.Fatalf("NV = %d", h.NV)
	}
	// 27 corner nodes, 8 of them touch a single element (domain corners)
	// and are dropped: 19 nets.
	if h.NumNets() != 19 {
		t.Fatalf("nets = %d, want 19", h.NumNets())
	}
	// The central node connects all 8 elements.
	found8 := false
	for n := 0; n < h.NumNets(); n++ {
		if h.Xpins[n+1]-h.Xpins[n] == 8 {
			found8 = true
			// Uniform mesh: p = 1 everywhere, cost = 8.
			if h.Cost[n] != 8 {
				t.Fatalf("central net cost %d, want 8", h.Cost[n])
			}
		}
	}
	if !found8 {
		t.Fatal("no 8-pin net found")
	}
}

// TestCutSizeMatchesPaperFig3: when 4 elements sharing a corner go to 4
// different parts, the hypergraph counts the extra communication the dual
// graph misses.
func TestCutSizeFourWayCorner(t *testing.T) {
	m := mesh.Uniform(2, 2, 1, 1, 1)
	lv := mesh.AssignLevels(m, 0.4, 0)
	h := FromMesh(m, lv)
	// All four elements in different parts: the central edge (2 pins of 4
	// elements... in 2x2x1 the central vertical edge nodes connect all 4).
	part := []int32{0, 1, 2, 3}
	cut := h.CutSize(part, 4)
	// Nets: the central corner (1,1,z) on each z-level has 4 pins and cost
	// 4; each face-mid node ((1,0,z), (0,1,z), (2,1,z), (1,2,z)) has 2
	// pins and cost 2 — 4 per z-level, 8 total. With 4-way split:
	// CutSize = 2 * 4*(4-1) + 8 * 2*(2-1) = 24 + 16 = 40.
	if cut != 40 {
		t.Fatalf("cut = %d, want 40", cut)
	}
	// Two parts along x: nets crossing the x-split: central corners (λ=2):
	// 2 nets * 4 * 1 = 8; mid-edge nodes crossing: 2 per z * 2 z-levels *
	// 2... count: nodes shared by elements {0,1} and {2,3} pairs across x:
	// on each z-level the x=1 line has 3 nodes; the middle one is the
	// 4-element corner, the outer two connect 1 element... wait, y edges:
	// nodes at (1, 0, z) connect elements 0 and 1 (λ=2, cost 2). Total
	// crossing 2-pin nets per z-level: (1,0): {0,1}, (1,2): {2,3} are cut;
	// (0,1): {0,2}? No: (0,1,z) connects elements (0,0) and (0,1) = 0 and
	// 2 -> cut. Let's just assert symmetry: cutting x or y gives the same.
	cx := h.CutSize([]int32{0, 1, 0, 1}, 2)
	cy := h.CutSize([]int32{0, 0, 1, 1}, 2)
	if cx != cy {
		t.Fatalf("x-cut %d != y-cut %d on symmetric mesh", cx, cy)
	}
	if cut <= cx {
		t.Fatalf("4-way cut %d should exceed 2-way cut %d", cut, cx)
	}
}

func TestCostsEncodeLevels(t *testing.T) {
	// Two elements in x, one refined (p=2): their shared face nodes cost
	// 1 + 2 = 3 per node.
	xc := []float64{0, 1, 1.5}
	m, err := mesh.New("t", xc, []float64{0, 1}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	lv := mesh.AssignLevels(m, 0.4, 0)
	if lv.PFor(1) != 2 {
		t.Fatalf("setup: p(1) = %d", lv.PFor(1))
	}
	h := FromMesh(m, lv)
	// All nets are the 4 shared-face nodes with pins {0, 1}.
	if h.NumNets() != 4 {
		t.Fatalf("nets = %d, want 4", h.NumNets())
	}
	for n := 0; n < 4; n++ {
		if h.Cost[n] != 3 {
			t.Fatalf("net %d cost %d, want 1+2=3", n, h.Cost[n])
		}
	}
	// Splitting them: volume = 4 nodes * 3 = 12 per cycle.
	if cut := h.CutSize([]int32{0, 1}, 2); cut != 12 {
		t.Fatalf("cut = %d, want 12", cut)
	}
}

func TestVertexIncidenceTransposition(t *testing.T) {
	m := mesh.Uniform(3, 2, 2, 1, 1)
	lv := mesh.AssignLevels(m, 0.4, 0)
	h := FromMesh(m, lv)
	// Every (net, pin) pair appears in the transposed structure.
	count := 0
	for v := int32(0); v < int32(h.NV); v++ {
		for i := h.Xnets[v]; i < h.Xnets[v+1]; i++ {
			n := h.VNets[i]
			found := false
			for j := h.Xpins[n]; j < h.Xpins[n+1]; j++ {
				if h.Pins[j] == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("vertex %d lists net %d but is not a pin", v, n)
			}
			count++
		}
	}
	if count != len(h.Pins) {
		t.Fatalf("transposed pin count %d != %d", count, len(h.Pins))
	}
}

func BenchmarkFromMesh(b *testing.B) {
	m := mesh.Trench(0.1)
	lv := mesh.AssignLevels(m, 0.4, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromMesh(m, lv)
	}
}

func BenchmarkCutSize(b *testing.B) {
	m := mesh.Trench(0.1)
	lv := mesh.AssignLevels(m, 0.4, 0)
	h := FromMesh(m, lv)
	part := make([]int32, h.NV)
	for i := range part {
		part[i] = int32(i % 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.CutSize(part, 16)
	}
}
