// Command partbench compares the four LTS-aware partitioning strategies
// (§III-B) on a benchmark mesh: load imbalance (total and per level),
// weighted graph cut and exact MPI volume per LTS cycle.
//
// Usage:
//
//	partbench -mesh trench [-scale f] [-k 16] [-imbalance 0.05] [-seed n]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"golts/internal/mesh"
	"golts/internal/partition"
)

func main() {
	name := flag.String("mesh", "trench", "benchmark mesh")
	scale := flag.Float64("scale", 0.3, "mesh scale")
	k := flag.Int("k", 16, "number of parts")
	imb := flag.Float64("imbalance", 0.05, "balance tolerance (PaToH final_imbal analogue)")
	seed := flag.Int64("seed", 20150525, "random seed")
	cfl := flag.Float64("cfl", 0.4, "Courant number")
	vtk := flag.String("vtk", "", "write mesh with per-method partition ids as legacy VTK (paper Fig. 6)")
	all := flag.Bool("all", false, "include the paper-discussed variants (scotch-pm, coarse-only)")
	flag.Parse()

	gen, ok := mesh.Generators[*name]
	if !ok {
		fmt.Fprintf(os.Stderr, "partbench: unknown mesh %q\n", *name)
		os.Exit(2)
	}
	m := gen(*scale)
	lv := mesh.AssignLevels(m, *cfl, 0)
	fmt.Printf("mesh %s: %d elements, %d levels, %.2fx model speedup, K=%d\n\n",
		m.Name, m.NumElements(), lv.NumLevels, lv.TheoreticalSpeedup(), *k)
	methods := partition.Methods
	if *all {
		methods = partition.AllMethods
	}
	cellData := map[string][]float64{}
	fmt.Printf("%-12s %9s %9s %12s %12s %9s %10s\n",
		"method", "total-imb", "max-lvl", "graph-cut", "mpi-volume", "time", "per-level")
	for _, method := range methods {
		t0 := time.Now()
		res, err := partition.PartitionMesh(m, lv, partition.Options{
			K: *k, Method: method, Imbalance: *imb, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "partbench: %s: %v\n", method, err)
			os.Exit(1)
		}
		el := time.Since(t0)
		mt := partition.Evaluate(m, lv, res.Part, *k)
		per := make([]string, len(mt.PerLevelImbalance))
		for i, v := range mt.PerLevelImbalance {
			per[i] = fmt.Sprintf("%.0f", v)
		}
		fmt.Printf("%-12s %8.1f%% %8.1f%% %12.3e %12.3e %8.1fs [%s]\n",
			method, mt.TotalImbalance, mt.MaxLevelImbalance,
			float64(mt.GraphCut), float64(mt.CommVolume), el.Seconds(),
			strings.Join(per, " "))
		data := make([]float64, len(res.Part))
		for e, p := range res.Part {
			data[e] = float64(p)
		}
		cellData["part_"+string(method)] = data
	}
	if *vtk != "" {
		levels := make([]float64, m.NumElements())
		for e := range levels {
			levels[e] = float64(lv.Lvl[e])
		}
		cellData["plevel"] = levels
		f, err := os.Create(*vtk)
		if err != nil {
			fmt.Fprintln(os.Stderr, "partbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := mesh.WriteVTK(f, m, cellData); err != nil {
			fmt.Fprintln(os.Stderr, "partbench:", err)
			os.Exit(1)
		}
		fmt.Printf("VTK written to %s\n", *vtk)
	}
}
