// Command meshgen generates one of the benchmark meshes and prints its LTS
// structure: element counts per p-level, theoretical speedup (Eq. 9) and
// CFL statistics.
//
// Usage:
//
//	meshgen -mesh trench|trench-big|embedding|crust [-scale f] [-cfl c] [-smooth]
package main

import (
	"flag"
	"fmt"
	"os"

	"golts/internal/mesh"
)

func main() {
	name := flag.String("mesh", "trench", "benchmark mesh name")
	scale := flag.Float64("scale", 0.3, "mesh scale (1.0 ~ 1/10 of the paper)")
	cfl := flag.Float64("cfl", 0.4, "Courant number")
	smooth := flag.Bool("smooth", false, "limit level jumps between neighbours to 1")
	vtk := flag.String("vtk", "", "write the mesh with p-levels as legacy VTK (paper Fig. 4)")
	flag.Parse()

	gen, ok := mesh.Generators[*name]
	if !ok {
		fmt.Fprintf(os.Stderr, "meshgen: unknown mesh %q (have: trench, trench-big, embedding, crust)\n", *name)
		os.Exit(2)
	}
	m := gen(*scale)
	lv := mesh.AssignLevels(m, *cfl, 0)
	if *smooth {
		promoted := lv.Smooth(m, 1)
		fmt.Printf("smoothing promoted %d elements\n", promoted)
	}
	if err := lv.Validate(m); err != nil {
		fmt.Fprintf(os.Stderr, "meshgen: invalid levels: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mesh %s at scale %g\n", m.Name, *scale)
	fmt.Printf("  dimensions: %d x %d x %d = %d elements\n", m.NX, m.NY, m.NZ, m.NumElements())
	fmt.Printf("  DOF (degree-4 GLL nodes): %d\n", m.NumGLLNodes(4))
	fmt.Printf("  global CFL step (non-LTS): %.4g\n", m.GlobalDt(*cfl))
	fmt.Printf("  LTS coarse step: %.4g  (%d levels)\n", lv.CoarseDt, lv.NumLevels)
	fmt.Printf("  theoretical LTS speedup (Eq. 9): %.2fx\n", lv.TheoreticalSpeedup())
	fmt.Println("  level   p    #elements  fraction")
	for k := 0; k < lv.NumLevels; k++ {
		fmt.Printf("  %5d  %3d  %10d  %7.3f%%\n",
			k+1, lv.P[k], lv.Count[k], 100*float64(lv.Count[k])/float64(m.NumElements()))
	}
	if *vtk != "" {
		f, err := os.Create(*vtk)
		if err != nil {
			fmt.Fprintln(os.Stderr, "meshgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		levels := make([]float64, m.NumElements())
		for e := range levels {
			levels[e] = float64(lv.Lvl[e])
		}
		if err := mesh.WriteVTK(f, m, map[string][]float64{"plevel": levels}); err != nil {
			fmt.Fprintln(os.Stderr, "meshgen:", err)
			os.Exit(1)
		}
		fmt.Printf("VTK written to %s\n", *vtk)
	}
}
