// Command waved is the long-running simulation service: an HTTP/JSON
// job API over the wave facade with a bounded priority queue, a shared
// worker budget, and a process-wide artifact cache keyed by canonical
// configuration hash (identical configurations share meshes, operators,
// partitions and batch plans, built exactly once).
//
// Usage:
//
//	waved [-addr :8457] [-queue 64] [-concurrency 2] [-workers N] [-cache 64]
//	      [-spool DIR] [-ckpt-every 4] [-retry-base 500ms] [-auto-tune 0]
//
// With -auto-tune set to a probing budget (e.g. 30s), the first job of
// each configuration calibrates a deployment shape (worker count,
// kernel) against the cluster performance model; the tuned plan is
// cached in the artifact cache, so subsequent same-config jobs run with
// the tuned shape at no extra cost. GET /stats reports each job's
// tuned_workers / tuned_ranks / rebalances.
//
// With -spool, job specs, per-job checkpoints and streamed rows persist
// under DIR: a restarted waved pointed at the same directory replays
// every unfinished job and resumes mid-run from the newest checkpoint,
// with the delivered row stream byte-identical to an uninterrupted run.
//
// Endpoints (see golts/internal/serve):
//
//	POST   /jobs            submit a simulation (cmd/wavesim JSON config
//	                        plus priority/workers/partitioner/seed; with
//	                        "ranks" the job runs on the distributed
//	                        backend, and "min_ranks"/"max_recoveries"
//	                        control degraded-mode survival of permanent
//	                        rank loss — rows stay byte-identical);
//	                        202 with the job id, 429 when the queue is full
//	GET    /jobs/{id}       poll state, timings and final stats
//	GET    /jobs/{id}/rows  stream seismogram CSV rows as produced
//	DELETE /jobs/{id}       cancel (queued or running)
//	GET    /healthz         liveness
//	GET    /stats           queue depth, in-flight jobs, cache counters
//
// SIGINT/SIGTERM shut the service down gracefully: in-flight jobs are
// cancelled (with -spool: parked, spool entries kept for the next
// instance) and the listener drains before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"golts/internal/serve"
	"golts/wave"
)

func main() {
	// Jobs submitted with "ranks" run on the distributed backend, which
	// re-execs this binary as its rank processes.
	wave.RankMain()
	addr := flag.String("addr", ":8457", "listen address")
	queue := flag.Int("queue", 64, "maximum queued jobs (beyond this, submissions get 429)")
	concurrency := flag.Int("concurrency", 2, "simulations run simultaneously")
	workers := flag.Int("workers", 0, "total worker budget shared by in-flight jobs (0: same as -concurrency)")
	cache := flag.Int("cache", 0, "artifact cache entries (0: default)")
	spool := flag.String("spool", "", "durability directory: persist jobs/checkpoints/rows, replay on restart (empty: off)")
	ckptEvery := flag.Int("ckpt-every", 0, "per-job checkpoint interval in cycles with -spool (0: default 4)")
	retryBase := flag.Duration("retry-base", 0, "first retry backoff for infra failures, doubling per retry (0: default 500ms)")
	autoTune := flag.Duration("auto-tune", 0, "calibration budget per configuration: probe deployment shapes and place jobs with the tuned one (0: off)")
	flag.Parse()

	srv, err := serve.New(serve.Config{
		MaxQueue:        *queue,
		Concurrency:     *concurrency,
		WorkerBudget:    *workers,
		CacheSize:       *cache,
		SpoolDir:        *spool,
		CheckpointEvery: *ckptEvery,
		RetryBaseDelay:  *retryBase,
		AutoTune:        *autoTune,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "waved:", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-sigs
		fmt.Fprintln(os.Stderr, "waved: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Close()
	}()

	fmt.Fprintf(os.Stderr, "waved: listening on %s (queue %d, concurrency %d)\n", *addr, *queue, *concurrency)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "waved:", err)
		os.Exit(1)
	}
	<-done
}
