// Command benchcheck is the benchmark-regression gate: it compares a
// freshly measured BENCH_kernels.json against the committed
// bench_baseline.json and fails when any kernel row regressed beyond the
// tolerance. `make bench-check` runs kernelbench and then this gate.
//
// Raw ns/elem is not comparable across machines, so by default each
// fresh/baseline ratio is normalised by the median ratio over all rows:
// a uniformly slower runner shifts every ratio alike and cancels out,
// while a single kernel regressing against its peers stands out. -raw
// disables the normalisation for same-machine comparisons.
//
// Shared runners are noisy per row even after normalisation, so the
// verdict is two-level: a row beyond tolerance but within the hard cap
// (2x tolerance) is a warning, and the gate fails only when a row
// exceeds the hard cap or when warnings are systemic (more than
// -max-warn rows, default 1/8 of the compared rows). A genuine kernel
// regression shows up either as one row far beyond its peers or as a
// cluster of correlated rows — both still fail; an isolated scheduler
// blip does not.
//
// Baseline rows for SIMD tiers the runner cannot execute are skipped
// with an explicit log line, so a baseline recorded on an AVX-512
// machine still gates an AVX2-only runner.
//
// Usage:
//
//	benchcheck [-baseline bench_baseline.json] [-fresh BENCH_kernels.json] [-tol 0.15] [-raw]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"golts/internal/sem"
)

// benchFile mirrors the parts of kernelbench's JSON the gate compares.
type benchFile struct {
	SIMD    string `json:"simd"`
	Results []struct {
		Op        string  `json:"op"`
		Deg       int     `json:"deg"`
		NsPerElem float64 `json:"ns_per_elem"`
	} `json:"results"`
	Batched struct {
		Results []struct {
			Op    string `json:"op"`
			Deg   int    `json:"deg"`
			Sweep []struct {
				Batch     int     `json:"batch"`
				NsPerElem float64 `json:"ns_per_elem"`
			} `json:"sweep"`
		} `json:"results"`
	} `json:"batched"`
	PerTier struct {
		Results []struct {
			Tier      string  `json:"tier"`
			Op        string  `json:"op"`
			Deg       int     `json:"deg"`
			NsPerElem float64 `json:"ns_per_elem"`
		} `json:"results"`
	} `json:"per_tier"`
}

// row is one comparable measurement; Tier is empty for tier-independent
// rows.
type row struct {
	Key       string
	Tier      string
	NsPerElem float64
}

// flatten turns a parsed bench file into keyed rows.
func flatten(f *benchFile) []row {
	var rows []row
	for _, r := range f.Results {
		rows = append(rows, row{
			Key:       fmt.Sprintf("scalar/%s/deg%d", r.Op, r.Deg),
			NsPerElem: r.NsPerElem,
		})
	}
	for _, r := range f.Batched.Results {
		for _, p := range r.Sweep {
			rows = append(rows, row{
				Key:       fmt.Sprintf("batched/%s/deg%d@%d", r.Op, r.Deg, p.Batch),
				NsPerElem: p.NsPerElem,
			})
		}
	}
	for _, r := range f.PerTier.Results {
		rows = append(rows, row{
			Key:       fmt.Sprintf("tier/%s/%s/deg%d", r.Tier, r.Op, r.Deg),
			Tier:      r.Tier,
			NsPerElem: r.NsPerElem,
		})
	}
	return rows
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func main() {
	baseline := flag.String("baseline", "bench_baseline.json", "committed baseline JSON")
	fresh := flag.String("fresh", "BENCH_kernels.json", "freshly measured JSON")
	tol := flag.Float64("tol", 0.15, "allowed fractional slowdown per row after normalisation; 2x is the per-row hard cap")
	maxWarn := flag.Int("max-warn", -1, "rows allowed between tolerance and the hard cap before the gate fails (-1: rows/8)")
	raw := flag.Bool("raw", false, "compare raw ratios without median normalisation (same-machine baselines only)")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*fresh)
	if err != nil {
		fatal(err)
	}

	usable := map[string]bool{}
	for _, t := range sem.SIMDTiers() {
		usable[t] = true
	}
	freshRows := map[string]row{}
	for _, r := range flatten(cur) {
		freshRows[r.Key] = r
	}

	// Pair up rows; collect fresh/baseline ratios.
	type pair struct {
		key         string
		base, fresh float64
		ratio       float64
	}
	var pairs []pair
	var ratios []float64
	for _, b := range flatten(base) {
		if b.Tier != "" && !usable[b.Tier] {
			fmt.Printf("skip   %-40s baseline tier %q not usable on this runner (usable: %v)\n",
				b.Key, b.Tier, sem.SIMDTiers())
			continue
		}
		f, ok := freshRows[b.Key]
		if !ok {
			fmt.Printf("skip   %-40s not present in fresh run\n", b.Key)
			continue
		}
		if b.NsPerElem <= 0 || f.NsPerElem <= 0 {
			fmt.Printf("skip   %-40s non-positive measurement\n", b.Key)
			continue
		}
		r := f.NsPerElem / b.NsPerElem
		pairs = append(pairs, pair{key: b.Key, base: b.NsPerElem, fresh: f.NsPerElem, ratio: r})
		ratios = append(ratios, r)
	}
	if len(pairs) == 0 {
		fatal(fmt.Errorf("no comparable rows between %s and %s", *baseline, *fresh))
	}

	norm := 1.0
	if !*raw {
		sorted := append([]float64(nil), ratios...)
		sort.Float64s(sorted)
		norm = sorted[len(sorted)/2]
		if len(sorted)%2 == 0 {
			norm = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
		}
		fmt.Printf("median fresh/baseline ratio %.3f (machine-speed normaliser; -raw disables)\n", norm)
	}

	hard, warned, failed := 1+2*(*tol), 0, 0
	for _, p := range pairs {
		rel := p.ratio / norm
		status := "ok    "
		switch {
		case rel > hard:
			status = "REGRES"
			failed++
		case rel > 1+*tol:
			status = "warn  "
			warned++
		}
		fmt.Printf("%s %-40s baseline %9.1f  fresh %9.1f  ratio %5.2f  normalised %5.2f\n",
			status, p.key, p.base, p.fresh, p.ratio, rel)
	}
	allow := *maxWarn
	if allow < 0 {
		allow = len(pairs) / 8
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d rows regressed beyond the %.0f%% hard cap (normalised)", failed, len(pairs), (hard-1)*100))
	}
	if warned > allow {
		fatal(fmt.Errorf("%d of %d rows beyond %.0f%% (max %d noise outliers allowed): systemic regression", warned, len(pairs), *tol*100, allow))
	}
	if warned > 0 {
		fmt.Printf("benchcheck: %d rows within %.0f%%, %d noise outlier(s) tolerated (max %d)\n", len(pairs)-warned, *tol*100, warned, allow)
		return
	}
	fmt.Printf("benchcheck: %d rows within %.0f%% of baseline\n", len(pairs), *tol*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
