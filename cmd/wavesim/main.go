// Command wavesim runs a 3-D wave simulation on a benchmark mesh, with or
// without LTS, and writes receiver seismograms.
//
// Usage:
//
//	wavesim [-config run.json] [-out seismograms.csv]
//	wavesim [-mesh trench] [-scale 0.02] [-physics acoustic|elastic]
//	        [-lts] [-cycles 20] [-degree 4] [-cfl 0.4]
//	        [-workers 0] [-partitioner scotch-p]
//
// -workers N runs the stiffness applications on N persistent rank workers
// (package parallel); 0 means one per GOMAXPROCS slot, 1 disables the
// engine. Results are bitwise reproducible for a fixed (workers,
// partitioner, seed); the GOMAXPROCS default therefore varies in the last
// FP digits across hosts with different core counts — pin -workers for
// cross-host reproducibility. A JSON config (see internal/simio.Config)
// overrides the other flags and may place sources, receivers and a sponge
// layer explicitly.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"golts/internal/lts"
	"golts/internal/mesh"
	"golts/internal/newmark"
	"golts/internal/parallel"
	"golts/internal/partition"
	"golts/internal/sem"
	"golts/internal/simio"
)

func main() {
	cfgPath := flag.String("config", "", "JSON run configuration (overrides other flags)")
	outPath := flag.String("out", "", "seismogram output file (.csv or .json)")
	name := flag.String("mesh", "trench", "benchmark mesh")
	scale := flag.Float64("scale", 0.02, "mesh scale")
	physics := flag.String("physics", "acoustic", "acoustic or elastic")
	useLTS := flag.Bool("lts", true, "use LTS-Newmark (false = global Newmark)")
	cycles := flag.Int("cycles", 20, "coarse steps to simulate")
	degree := flag.Int("degree", 4, "SEM polynomial degree")
	cfl := flag.Float64("cfl", 0.4, "Courant number")
	workers := flag.Int("workers", 0, "parallel rank workers (0 = GOMAXPROCS, 1 = sequential)")
	partMethod := flag.String("partitioner", string(partition.ScotchP), "element partitioner for -workers > 1")
	seed := flag.Int64("seed", 1, "partitioner seed")
	flag.Parse()

	var cfg *simio.Config
	if *cfgPath != "" {
		var err error
		cfg, err = simio.LoadConfig(*cfgPath)
		if err != nil {
			fatal(err)
		}
	} else {
		cfg = &simio.Config{
			Mesh: *name, Scale: *scale, Physics: *physics,
			Degree: *degree, CFL: *cfl, LTS: *useLTS, Cycles: *cycles,
		}
		if err := cfg.Validate(); err != nil {
			fatal(err)
		}
	}
	if err := run(cfg, *outPath, *workers, partition.Method(*partMethod), *seed); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wavesim:", err)
	os.Exit(1)
}

// operator abstracts the two physics choices for the driver.
type operator interface {
	sem.Operator
	NodeCoords(n int32) (x, y, z float64)
}

func run(cfg *simio.Config, outPath string, workers int, method partition.Method, seed int64) error {
	gen, ok := mesh.Generators[cfg.Mesh]
	if !ok {
		return fmt.Errorf("unknown mesh %q", cfg.Mesh)
	}
	m := gen(cfg.Scale)
	lv := mesh.AssignLevels(m, cfg.CFL/float64(cfg.Degree*cfg.Degree), 0)

	var op operator
	switch cfg.Physics {
	case "acoustic":
		a, err := sem.NewAcoustic3D(m, cfg.Degree, false)
		if err != nil {
			return err
		}
		op = a
	case "elastic":
		e, err := sem.NewElastic3D(m, cfg.Degree, false, 0)
		if err != nil {
			return err
		}
		op = e
	}
	nc := op.Comps()

	// step is the operator the time steppers see: the geometry operator
	// itself, or the parallel engine wrapped around it.
	var step sem.Operator = op
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	var pop *parallel.PartitionedOperator
	if workers > 1 {
		part, err := partition.Assign(m, lv, workers, method, seed)
		if err != nil {
			return err
		}
		pop, err = parallel.NewOperator(op, part, workers)
		if err != nil {
			return err
		}
		defer pop.Close()
		step = pop
	}

	// Defaults: source near the refinement, one receiver nearby.
	x0, x1, y0, y1, z0, z1 := m.Extent()
	if cfg.Source.F0 == 0 {
		dur := float64(cfg.Cycles) * lv.CoarseDt
		cfg.Source = simio.SourceSpec{
			X: (x0 + x1) / 2, Y: (y0 + y1) / 2, Z: z0 + (z1-z0)/4,
			Comp: min(cfg.Source.Comp, nc-1), F0: 8 / dur, T0: dur / 5,
		}
	}
	if len(cfg.Receivers) == 0 {
		cfg.Receivers = []simio.ReceiverSpec{{
			Name: "st0", X: (x0+x1)/2 + (x1-x0)/12, Y: (y0 + y1) / 2, Z: z0,
			Comp: min(cfg.Source.Comp, nc-1),
		}}
	}
	srcNode := nearestNode(op, cfg.Source.X, cfg.Source.Y, cfg.Source.Z)
	src := sem.Source{
		Dof: int(srcNode)*nc + min(cfg.Source.Comp, nc-1),
		W:   sem.Ricker{F0: cfg.Source.F0, T0: cfg.Source.T0},
	}
	var recs []*sem.Receiver
	for _, r := range cfg.Receivers {
		n := nearestNode(op, r.X, r.Y, r.Z)
		recs = append(recs, &sem.Receiver{Dof: int(n)*nc + min(r.Comp, nc-1)})
	}
	var sigma []float64
	if cfg.Sponge.Strength > 0 {
		sigma = sem.SpongeProfile(op.NumNodes(), op.NodeCoords,
			x0, x1, y0, y1, z0, z1, cfg.Sponge.Faces, cfg.Sponge.Width, cfg.Sponge.Strength)
	}

	fmt.Printf("mesh %s: %d elements, %d DOF, %d levels, model speedup %.2fx, %d workers\n",
		m.Name, m.NumElements(), op.NDof(), lv.NumLevels, lv.TheoreticalSpeedup(), workers)

	t0 := time.Now()
	if cfg.LTS {
		s, err := lts.FromMeshLevels(step, lv, true)
		if err != nil {
			return err
		}
		s.SetSources([]sem.Source{src})
		s.Sigma = sigma
		for i := 0; i < cfg.Cycles; i++ {
			s.Step()
			for _, r := range recs {
				r.Record(s.Time(), s.U)
			}
		}
		fmt.Printf("LTS-Newmark: %d cycles in %.2fs; work saving %.2fx (%.0f%% of Eq. 9 model)\n",
			cfg.Cycles, time.Since(t0).Seconds(), s.EffectiveSpeedup(), 100*s.Efficiency())
	} else {
		g := newmark.New(step, lv.CoarseDt/float64(lv.PMax()))
		g.Sources = []sem.Source{src}
		g.Sigma = sigma
		for i := 0; i < cfg.Cycles; i++ {
			g.Run(lv.PMax())
			for _, r := range recs {
				r.Record(g.Time(), g.U)
			}
		}
		fmt.Printf("global Newmark: %d steps in %.2fs\n", cfg.Cycles*lv.PMax(), time.Since(t0).Seconds())
	}

	if pop != nil {
		st := pop.Stats()
		fmt.Printf("parallel engine: %d applies, %d messages, %d node-values exchanged\n",
			st.Applies, st.Messages, st.Volume)
	}

	var set simio.SeismogramSet
	for i, r := range recs {
		spec := cfg.Receivers[i]
		if err := set.AddTrace(spec.Name, spec.X, spec.Y, spec.Z, r.Times, r.Values); err != nil {
			return err
		}
		peak := 0.0
		for _, v := range r.Values {
			peak = math.Max(peak, math.Abs(v))
		}
		fmt.Printf("receiver %-6s |u|max = %.3e  peak t = %.3f\n", spec.Name, peak, r.PeakTime())
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if len(outPath) > 5 && outPath[len(outPath)-5:] == ".json" {
			err = set.WriteJSON(f)
		} else {
			err = set.WriteCSV(f)
		}
		if err != nil {
			return err
		}
		fmt.Printf("seismograms written to %s\n", outPath)
	}
	return nil
}

func nearestNode(op operator, x, y, z float64) int32 {
	best, bd := int32(0), math.Inf(1)
	for n := 0; n < op.NumNodes(); n++ {
		nx, ny, nz := op.NodeCoords(int32(n))
		d := (nx-x)*(nx-x) + (ny-y)*(ny-y) + (nz-z)*(nz-z)
		if d < bd {
			best, bd = int32(n), d
		}
	}
	return best
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
