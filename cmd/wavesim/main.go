// Command wavesim runs a 3-D wave simulation on a benchmark mesh, with or
// without LTS, and writes receiver seismograms. It is a thin client of
// the public golts/wave facade.
//
// Usage:
//
//	wavesim [-config run.json] [-out seismograms.csv]
//	wavesim [-mesh trench] [-scale 0.02] [-physics acoustic|elastic]
//	        [-lts] [-cycles 20] [-degree 4] [-cfl 0.4]
//	        [-workers 0] [-partitioner scotch-p]
//
// -workers N runs the stiffness applications on N persistent rank workers
// (the shared-memory parallel engine); 0 means one per GOMAXPROCS slot, 1
// disables the engine. Results are bitwise reproducible for a fixed
// (workers, partitioner, seed); the GOMAXPROCS default therefore varies
// in the last FP digits across hosts with different core counts — pin
// -workers for cross-host reproducibility. A JSON config (see
// internal/simio.Config) overrides the other flags and may place sources,
// receivers and a sponge layer explicitly. The -out format is selected by
// file extension: ".json" writes JSON, anything else CSV.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"golts/wave"
)

func main() {
	cfgPath := flag.String("config", "", "JSON run configuration (overrides other flags)")
	outPath := flag.String("out", "", "seismogram output file (.csv or .json)")
	name := flag.String("mesh", "trench", "benchmark mesh")
	scale := flag.Float64("scale", 0.02, "mesh scale")
	physics := flag.String("physics", "acoustic", "acoustic or elastic")
	useLTS := flag.Bool("lts", true, "use LTS-Newmark (false = global Newmark)")
	cycles := flag.Int("cycles", 20, "coarse steps to simulate")
	degree := flag.Int("degree", 4, "SEM polynomial degree")
	cfl := flag.Float64("cfl", 0.4, "Courant number")
	workers := flag.Int("workers", 0, "parallel rank workers (0 = GOMAXPROCS, 1 = sequential)")
	partMethod := flag.String("partitioner", string(wave.ScotchP), "element partitioner for -workers > 1")
	seed := flag.Int64("seed", 1, "partitioner seed")
	flag.Parse()

	// Execution options the config file does not carry.
	exec := []wave.Option{
		wave.WithWorkers(*workers),
		wave.WithPartitioner(wave.Partitioner(*partMethod)),
		wave.WithSeed(*seed),
	}
	if *outPath != "" {
		exec = append(exec, wave.WithSink(wave.FileSink(*outPath)))
	}

	var sim *wave.Simulation
	var err error
	if *cfgPath != "" {
		sim, err = wave.FromConfigFile(*cfgPath, exec...)
	} else {
		scheme := wave.WithLTS()
		if !*useLTS {
			scheme = wave.WithGlobalNewmark()
		}
		sim, err = wave.New(append([]wave.Option{
			wave.WithMesh(*name, *scale),
			wave.WithPhysics(wave.Physics(*physics)),
			wave.WithDegree(*degree),
			wave.WithCFL(*cfl),
			wave.WithCycles(*cycles),
			scheme,
		}, exec...)...)
	}
	if err != nil {
		fatal(err)
	}
	defer sim.Close()

	st := sim.Stats()
	fmt.Printf("mesh %s: %d elements, %d DOF, %d levels, model speedup %.2fx, %d workers\n",
		st.Mesh, st.Elements, st.DOF, st.Levels, st.TheoreticalSpeedup, st.Workers)

	t0 := time.Now()
	if err := sim.Run(context.Background(), 0); err != nil {
		fatal(err)
	}
	st = sim.Stats()
	if st.LTS {
		fmt.Printf("LTS-Newmark: %d cycles in %.2fs; work saving %.2fx (%.0f%% of Eq. 9 model)\n",
			st.Cycles, time.Since(t0).Seconds(), st.EffectiveSpeedup, 100*st.Efficiency)
	} else {
		fmt.Printf("global Newmark: %d steps in %.2fs\n",
			st.Cycles*int64(st.PMax), time.Since(t0).Seconds())
	}
	if st.Engine != nil {
		fmt.Printf("parallel engine: %d applies, %d messages, %d node-values exchanged\n",
			st.Engine.Applies, st.Engine.Messages, st.Engine.Volume)
	}

	seis := sim.Seismograms()
	for i := range seis.Traces {
		tr := &seis.Traces[i]
		peak, pt := tr.Peak(seis.Times)
		fmt.Printf("receiver %-6s |u|max = %.3e  peak t = %.3f\n", tr.Name, peak, pt)
	}
	// Close flushes the sink; report only after the data is on disk.
	if err := sim.Close(); err != nil {
		fatal(err)
	}
	if *outPath != "" {
		fmt.Printf("seismograms written to %s\n", *outPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wavesim:", err)
	os.Exit(1)
}
