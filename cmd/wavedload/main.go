// Command wavedload exercises a waved service and reports its numbers.
//
// Two modes:
//
//	wavedload -smoke [-addr host:port]
//	    Acceptance smoke: submits two identical jobs and checks their
//	    streamed CSV rows are byte-identical with artifact-cache hits on
//	    the second, then submits-and-cancels a job and checks it lands
//	    in the cancelled state. Exit status 0 only if all checks pass.
//
//	wavedload [-jobs 32] [-clients 4] [-addr host:port]
//	    Load generation: -clients concurrent submitters push -jobs total
//	    jobs through the service and the run reports throughput (jobs/s),
//	    p50/p99 job latency and the artifact-cache hit rate, written as
//	    JSON to -out (default BENCH_serve.json) and echoed to stdout.
//
//	wavedload -restart-smoke [-out BENCH_fault.json] [-dist-report F]
//	    Durability smoke: runs a reference job on a spool-less service,
//	    then interrupts the same job mid-run on a spooled service (graceful
//	    shutdown), restarts the service on the same spool and checks the
//	    replayed job resumes from its checkpoint and delivers a row stream
//	    byte-identical to the uninterrupted reference. Writes restart /
//	    resume latency numbers to -out; -dist-report embeds a distrun
//	    -fault-report JSON so one artifact carries both recovery paths.
//
//	wavedload -degraded-smoke [-out BENCH_degraded.json] [-scale 0.015]
//	    Degraded-mode smoke: runs a local reference job (with nonzero
//	    receiver amplitude, enforced), then the same configuration as a
//	    distributed job whose rank 1 is killed in generation 0 and again
//	    during the recovery replay, exhausting max_recoveries=1. The
//	    service must finish the job degraded (the dead rank retired, its
//	    parts redistributed), report degraded_ranks in the job JSON and
//	    /stats, and deliver rows byte-identical to the local reference.
//
// With no -addr, an in-process service is started on a loopback port so
// the tool is self-contained (the CI serve-smoke and fault-smoke jobs run
// it this way); requests still travel through real HTTP.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"golts/internal/serve"
	"golts/wave"
)

func main() {
	// The -degraded-smoke service runs distributed jobs, whose rank
	// processes are re-execs of this binary.
	wave.RankMain()
	addr := flag.String("addr", "", "waved address (empty: start an in-process service)")
	smoke := flag.Bool("smoke", false, "run the acceptance smoke instead of load generation")
	jobs := flag.Int("jobs", 32, "total jobs to submit in load mode")
	clients := flag.Int("clients", 4, "concurrent submitters in load mode")
	distinct := flag.Int("distinct", 4, "distinct configurations cycled through in load mode")
	scale := flag.Float64("scale", 0.0005, "mesh scale of the generated jobs")
	cycles := flag.Int("cycles", 2, "coarse cycles per job")
	out := flag.String("out", "BENCH_serve.json", "load-mode report path")
	restart := flag.Bool("restart-smoke", false, "run the checkpoint/restart durability smoke (owns its own services; ignores -addr)")
	distReport := flag.String("dist-report", "", "distrun -fault-report JSON to embed in the -restart-smoke report")
	degraded := flag.Bool("degraded-smoke", false, "run the degraded-mode smoke: a distributed job survives permanent rank loss byte-identically (owns its own service; ignores -addr)")
	flag.Parse()

	if *restart {
		runRestartSmoke(*out, *distReport, *scale)
		return
	}
	if *degraded {
		runDegradedSmoke(*out, *scale)
		return
	}

	base := *addr
	if base == "" {
		srv, err := serve.New(serve.Config{Concurrency: 2, WorkerBudget: 2, MaxQueue: 1 << 16})
		if err != nil {
			fatal("serve: %v", err)
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal("listen: %v", err)
		}
		go http.Serve(ln, srv.Handler())
		base = ln.Addr().String()
		fmt.Fprintf(os.Stderr, "wavedload: in-process service on %s\n", base)
	}
	url := "http://" + base

	if *smoke {
		runSmoke(url, *scale, *cycles)
		return
	}
	runLoad(url, *out, *jobs, *clients, *distinct, *scale, *cycles)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wavedload: "+format+"\n", args...)
	os.Exit(1)
}

func config(scale float64, cycles, seed int) map[string]any {
	return map[string]any{
		"mesh":   "trench",
		"scale":  scale,
		"lts":    true,
		"cycles": cycles,
		"seed":   int64(seed),
	}
}

// jobStatus mirrors the service's job snapshot wire form.
type jobStatus struct {
	ID            string `json:"id"`
	Hash          string `json:"hash"`
	State         string `json:"state"`
	Error         string `json:"error"`
	Rows          int    `json:"rows"`
	DegradedRanks int    `json:"degraded_ranks"`
}

func submit(url string, cfg map[string]any) (jobStatus, error) {
	body, _ := json.Marshal(cfg)
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return jobStatus{}, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return jobStatus{}, fmt.Errorf("submit: status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var st jobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return jobStatus{}, err
	}
	return st, nil
}

// streamRows blocks until the job completes, returning its full CSV
// byte stream.
func streamRows(url, id string) ([]byte, error) {
	resp, err := http.Get(url + "/jobs/" + id + "/rows")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func getStatus(url, id string) (jobStatus, error) {
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		return jobStatus{}, err
	}
	defer resp.Body.Close()
	var st jobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func waitState(url, id string, timeout time.Duration) (jobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := getStatus(url, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case "done", "failed", "cancelled":
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func serviceStats(url string) (serve.StatsResponse, error) {
	resp, err := http.Get(url + "/stats")
	if err != nil {
		return serve.StatsResponse{}, err
	}
	defer resp.Body.Close()
	var st serve.StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func runSmoke(url string, scale float64, cycles int) {
	// Two identical jobs: byte-identical rows, cache hits on the second.
	cfg := config(scale, cycles, 1)
	a, err := submit(url, cfg)
	if err != nil {
		fatal("%v", err)
	}
	rowsA, err := streamRows(url, a.ID)
	if err != nil {
		fatal("rows A: %v", err)
	}
	stA, err := waitState(url, a.ID, 5*time.Minute)
	if err != nil || stA.State != "done" {
		fatal("job A: %+v (%v)", stA, err)
	}
	b, err := submit(url, cfg)
	if err != nil {
		fatal("%v", err)
	}
	rowsB, err := streamRows(url, b.ID)
	if err != nil {
		fatal("rows B: %v", err)
	}
	if a.Hash != b.Hash {
		fatal("identical configs hashed differently: %s vs %s", a.Hash, b.Hash)
	}
	if len(rowsA) == 0 || !bytes.Equal(rowsA, rowsB) {
		fatal("cached rerun is not byte-identical to the cold run (%d vs %d bytes)", len(rowsA), len(rowsB))
	}
	stats, err := serviceStats(url)
	if err != nil {
		fatal("stats: %v", err)
	}
	if stats.Cache.Hits == 0 {
		fatal("no artifact-cache hits after an identical rerun: %+v", stats.Cache)
	}

	// Cancellation: a queued long job deleted right away lands cancelled.
	long := config(scale, 1000000, 1)
	c, err := submit(url, long)
	if err != nil {
		fatal("%v", err)
	}
	req, _ := http.NewRequest(http.MethodDelete, url+"/jobs/"+c.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		fatal("cancel: %v", err)
	} else {
		resp.Body.Close()
	}
	stC, err := waitState(url, c.ID, time.Minute)
	if err != nil || stC.State != "cancelled" {
		fatal("cancelled job state: %+v (%v)", stC, err)
	}

	fmt.Printf("smoke ok: %d identical bytes across cold+cached runs, %d cache hits, cancel works\n",
		len(rowsA), stats.Cache.Hits)
}

// report is the BENCH_serve.json schema.
type report struct {
	Jobs         int     `json:"jobs"`
	Clients      int     `json:"clients"`
	Distinct     int     `json:"distinct_configs"`
	Cycles       int     `json:"cycles"`
	Scale        float64 `json:"scale"`
	WallSeconds  float64 `json:"wall_seconds"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	P50LatencyMS float64 `json:"p50_latency_ms"`
	P99LatencyMS float64 `json:"p99_latency_ms"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	NumCPU       int     `json:"num_cpu"`
	GoMaxProcs   int     `json:"gomaxprocs"`
}

func runLoad(url, out string, jobs, clients, distinct int, scale float64, cycles int) {
	if clients < 1 {
		clients = 1
	}
	if distinct < 1 {
		distinct = 1
	}
	latencies := make([]time.Duration, jobs)
	errs := make([]error, jobs)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= jobs {
					return
				}
				t0 := time.Now()
				st, err := submit(url, config(scale, cycles, 1+i%distinct))
				if err == nil {
					var fin jobStatus
					fin, err = waitState(url, st.ID, 10*time.Minute)
					if err == nil && fin.State != "done" {
						err = fmt.Errorf("job %s: %s (%s)", fin.ID, fin.State, fin.Error)
					}
				}
				latencies[i] = time.Since(t0)
				errs[i] = err
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	for _, err := range errs {
		if err != nil {
			fatal("load job failed: %v", err)
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx]) / float64(time.Millisecond)
	}
	stats, err := serviceStats(url)
	if err != nil {
		fatal("stats: %v", err)
	}
	rep := report{
		Jobs:         jobs,
		Clients:      clients,
		Distinct:     distinct,
		Cycles:       cycles,
		Scale:        scale,
		WallSeconds:  wall.Seconds(),
		JobsPerSec:   float64(jobs) / wall.Seconds(),
		P50LatencyMS: pct(0.50),
		P99LatencyMS: pct(0.99),
		CacheHits:    stats.Cache.Hits,
		CacheMisses:  stats.Cache.Misses,
		NumCPU:       runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
	}
	if total := stats.Cache.Hits + stats.Cache.Misses; total > 0 {
		rep.CacheHitRate = float64(stats.Cache.Hits) / float64(total)
	}
	raw, _ := json.MarshalIndent(rep, "", "  ")
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		fatal("write %s: %v", out, err)
	}
	os.Stdout.Write(raw)
}

// faultReport is the BENCH_fault.json schema: the waved restart/resume
// path, plus (when -dist-report is given) the distributed rank-recovery
// numbers from distrun -fault-report.
type faultReport struct {
	Scale         float64         `json:"scale"`
	Cycles        int             `json:"cycles"`
	InterruptRows int             `json:"interrupt_rows"`
	TotalRows     int             `json:"total_rows"`
	RowsBytes     int             `json:"rows_bytes"`
	ResumeWallS   float64         `json:"resume_wall_seconds"`
	Replayed      int64           `json:"replayed"`
	Resumed       int64           `json:"resumed"`
	Checkpoints   int64           `json:"checkpoints"`
	ByteIdentical bool            `json:"byte_identical"`
	NumCPU        int             `json:"num_cpu"`
	GoMaxProcs    int             `json:"gomaxprocs"`
	Dist          json.RawMessage `json:"dist,omitempty"`
}

// startService runs an in-process serve.Server behind a real loopback
// HTTP listener, returning its base URL and a stop function.
func startService(cfg serve.Config) (*serve.Server, string, func()) {
	srv, err := serve.New(cfg)
	if err != nil {
		fatal("serve: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal("listen: %v", err)
	}
	go http.Serve(ln, srv.Handler())
	stop := func() {
		ln.Close()
		srv.Close()
	}
	return srv, "http://" + ln.Addr().String(), stop
}

// csvHasNonzeroSample reports whether any sample column (every column
// after the leading time) of a CSV row stream holds a nonzero value.
func csvHasNonzeroSample(rows []byte) bool {
	for i, line := range strings.Split(string(rows), "\n") {
		if i == 0 { // header
			continue
		}
		fields := strings.Split(line, ",")
		for _, f := range fields[1:] {
			if v, err := strconv.ParseFloat(strings.TrimSpace(f), 64); err == nil && v != 0 {
				return true
			}
		}
	}
	return false
}

// runRestartSmoke checks the waved durability path end to end: a spooled
// job interrupted by a graceful shutdown replays on the next service
// instance, resumes from its checkpoint, and its delivered CSV stream is
// byte-identical to an uninterrupted run of the same configuration.
func runRestartSmoke(out, distReport string, scale float64) {
	const cycles = 40
	const interruptAt = cycles / 2
	cfg := config(scale, cycles, 1)

	// Uninterrupted reference on a spool-less service.
	_, refURL, stopRef := startService(serve.Config{Concurrency: 1, WorkerBudget: 1})
	ref, err := submit(refURL, cfg)
	if err != nil {
		fatal("reference submit: %v", err)
	}
	refRows, err := streamRows(refURL, ref.ID)
	if err != nil {
		fatal("reference rows: %v", err)
	}
	if st, err := waitState(refURL, ref.ID, 10*time.Minute); err != nil || st.State != "done" {
		fatal("reference job: %+v (%v)", st, err)
	}
	stopRef()
	// Anti-vacuity guard: a byte-comparison of all-zero sample columns
	// cannot distinguish a correct resume from one that resets the
	// wavefield, so the reference stream must carry nonzero samples
	// (run at -scale 0.015 or larger for the wave to reach a receiver).
	if !csvHasNonzeroSample(refRows) {
		fatal("vacuous reference: every sample in the row stream is zero (raise -scale)")
	}

	spool, err := os.MkdirTemp("", "wavedload-spool-")
	if err != nil {
		fatal("spool dir: %v", err)
	}
	defer os.RemoveAll(spool)

	// Interrupted run: spooled service, checkpoint every 2 cycles, shut
	// down mid-job once enough rows (and therefore checkpoints) exist.
	durable := serve.Config{Concurrency: 1, WorkerBudget: 1, SpoolDir: spool, CheckpointEvery: 2}
	_, bURL, stopB := startService(durable)
	job, err := submit(bURL, cfg)
	if err != nil {
		fatal("durable submit: %v", err)
	}
	var interruptRows int
	for deadline := time.Now().Add(10 * time.Minute); ; {
		st, err := getStatus(bURL, job.ID)
		if err != nil {
			fatal("durable status: %v", err)
		}
		if st.State != "queued" && st.State != "running" {
			fatal("job finished before the interrupt (state %s); raise cycles", st.State)
		}
		if st.Rows >= interruptAt {
			interruptRows = st.Rows
			break
		}
		if time.Now().After(deadline) {
			fatal("job never reached the interrupt threshold")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stopB() // graceful: parks the running job, spool preserved

	// Restarted service on the same spool: the job replays and resumes.
	t0 := time.Now()
	_, cURL, stopC := startService(durable)
	defer stopC()
	gotRows, err := streamRows(cURL, job.ID)
	if err != nil {
		fatal("resumed rows: %v", err)
	}
	if st, err := waitState(cURL, job.ID, 10*time.Minute); err != nil || st.State != "done" {
		fatal("resumed job: %+v (%v)", st, err)
	}
	resumeWall := time.Since(t0)
	stats, err := serviceStats(cURL)
	if err != nil {
		fatal("stats: %v", err)
	}

	identical := bytes.Equal(refRows, gotRows)
	rep := faultReport{
		Scale:         scale,
		Cycles:        cycles,
		InterruptRows: interruptRows,
		TotalRows:     1 + cycles,
		RowsBytes:     len(gotRows),
		ResumeWallS:   resumeWall.Seconds(),
		Replayed:      stats.Replayed,
		Resumed:       stats.Resumed,
		Checkpoints:   stats.Checkpoints,
		ByteIdentical: identical,
		NumCPU:        runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
	}
	if distReport != "" {
		raw, err := os.ReadFile(distReport)
		if err != nil {
			fatal("dist report: %v", err)
		}
		rep.Dist = json.RawMessage(bytes.TrimSpace(raw))
	}
	raw, _ := json.MarshalIndent(rep, "", "  ")
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		fatal("write %s: %v", out, err)
	}
	os.Stdout.Write(raw)

	switch {
	case !identical:
		fatal("resumed stream differs from the uninterrupted reference (%d vs %d bytes)", len(gotRows), len(refRows))
	case stats.Replayed < 1:
		fatal("restarted service replayed no jobs")
	case stats.Resumed < 1:
		fatal("replayed job did not resume from its checkpoint")
	}
	fmt.Printf("restart smoke ok: %d rows byte-identical after interrupt at %d, resume took %.2fs\n",
		1+cycles, interruptRows, resumeWall.Seconds())
}

// degradedReport is the BENCH_degraded.json schema.
type degradedReport struct {
	Scale         float64 `json:"scale"`
	Cycles        int     `json:"cycles"`
	Ranks         int     `json:"ranks"`
	MinRanks      int     `json:"min_ranks"`
	DegradedRanks int     `json:"degraded_ranks"`
	RowsBytes     int     `json:"rows_bytes"`
	ByteIdentical bool    `json:"byte_identical"`
	HashEqual     bool    `json:"hash_equal"`
	WallSeconds   float64 `json:"wall_seconds"`
	NumCPU        int     `json:"num_cpu"`
	GoMaxProcs    int     `json:"gomaxprocs"`
}

// runDegradedSmoke checks the service's degraded-mode path end to end: a
// distributed job whose rank is killed past its recovery budget must
// finish on the survivor, mark itself degraded in the job JSON and
// /stats, and stream rows byte-identical to the local reference.
func runDegradedSmoke(out string, scale float64) {
	const cycles, workers, ranks, minRanks = 40, 4, 2, 1
	_, url, stop := startService(serve.Config{Concurrency: 1, WorkerBudget: workers})
	defer stop()

	// Local reference at the same decomposition width (workers parts),
	// before the fault plan enters the environment.
	refCfg := config(scale, cycles, 1)
	refCfg["workers"] = workers
	ref, err := submit(url, refCfg)
	if err != nil {
		fatal("reference submit: %v", err)
	}
	refRows, err := streamRows(url, ref.ID)
	if err != nil {
		fatal("reference rows: %v", err)
	}
	if st, err := waitState(url, ref.ID, 10*time.Minute); err != nil || st.State != "done" {
		fatal("reference job: %+v (%v)", st, err)
	}
	if !csvHasNonzeroSample(refRows) {
		fatal("vacuous reference: every sample in the row stream is zero (raise -scale)")
	}

	// Kill rank 1 in generation 0, then again during the recovery replay
	// (gen=1 plan; rank-local cycle counters reset per generation), so
	// MaxRecoveries=1 is exhausted and the coordinator must degrade. The
	// spawned rank processes inherit this process's environment.
	os.Setenv("GOLTS_FAULT", "kill:rank=1,cycle=20,substep=1;kill:rank=1,cycle=1,substep=1,gen=1")
	defer os.Unsetenv("GOLTS_FAULT")
	degCfg := config(scale, cycles, 1)
	degCfg["workers"] = workers
	degCfg["ranks"] = ranks
	degCfg["min_ranks"] = minRanks
	degCfg["max_recoveries"] = 1
	t0 := time.Now()
	deg, err := submit(url, degCfg)
	if err != nil {
		fatal("degraded submit: %v", err)
	}
	degRows, err := streamRows(url, deg.ID)
	if err != nil {
		fatal("degraded rows: %v", err)
	}
	st, err := waitState(url, deg.ID, 10*time.Minute)
	if err != nil || st.State != "done" {
		fatal("degraded job: %+v (%v)", st, err)
	}
	wall := time.Since(t0)
	stats, err := serviceStats(url)
	if err != nil {
		fatal("stats: %v", err)
	}

	identical := bytes.Equal(refRows, degRows)
	rep := degradedReport{
		Scale:         scale,
		Cycles:        cycles,
		Ranks:         ranks,
		MinRanks:      minRanks,
		DegradedRanks: st.DegradedRanks,
		RowsBytes:     len(degRows),
		ByteIdentical: identical,
		HashEqual:     ref.Hash == deg.Hash,
		WallSeconds:   wall.Seconds(),
		NumCPU:        runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
	}
	raw, _ := json.MarshalIndent(rep, "", "  ")
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		fatal("write %s: %v", out, err)
	}
	os.Stdout.Write(raw)

	switch {
	case ref.Hash != deg.Hash:
		fatal("rank count leaked into the canonical hash: %s vs %s", ref.Hash, deg.Hash)
	case st.DegradedRanks != 1:
		fatal("job JSON degraded_ranks = %d, want 1 (fault did not fire or degrade?)", st.DegradedRanks)
	case stats.DegradedRanks < 1:
		fatal("/stats degraded_ranks = %d, want >= 1", stats.DegradedRanks)
	case !identical:
		fatal("degraded stream differs from the local reference (%d vs %d bytes)", len(degRows), len(refRows))
	}
	fmt.Printf("degraded smoke ok: rank retired past its recovery budget, %d rows byte-identical in %.2fs\n",
		1+cycles, wall.Seconds())
}
