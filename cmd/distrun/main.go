// Command distrun launches a distributed wave simulation: a coordinator
// that spawns N rank processes of this same binary, each owning a slice
// of the owner-computes decomposition and exchanging halo node
// contributions over loopback sockets at every substep. It is the CLI
// face of wave.WithBackend(wave.Distributed{...}) and the measurement
// tool behind the README's distributed scaling table.
//
// Usage:
//
//	distrun [-ranks 2] [-parts 0] [-mesh trench] [-scale 0.02]
//	        [-physics acoustic|elastic] [-lts] [-cycles 20]
//	        [-degree 4] [-cfl 0.4] [-partitioner scotch-p] [-seed 1]
//	        [-out seismograms.csv]
//	        [-recover-every N] [-max-recoveries 3]
//	        [-min-ranks 0] [-expect-degraded] [-chaos-report chaos.json]
//	        [-expect-recovery] [-fault-report report.json]
//	        [-level-times] [-part-rank 0,0,0,1] [-auto-rebalance]
//	        [-rebalance-threshold 1.5] [-rebalance-window 3]
//	        [-rebalance-cooldown 10] [-expect-rebalance]
//	        [-auto-tune 30s] [-tune-report BENCH_tune.json]
//
// -parts fixes the owner-computes decomposition width independently of
// the process count (0 means parts = ranks). Because the decomposition —
// not the process count — pins the floating-point assembly order,
// distrun runs with the same -parts produce byte-identical seismogram
// files for any -ranks, which is what `make dist-smoke` asserts.
//
// -recover-every N checkpoints the distributed state every N cycles and
// turns on rank-failure recovery: a rank that dies or stalls mid-run is
// respawned, restored from the newest coordinator checkpoint and the
// lost cycles replayed, bitwise. Fault injection comes from the
// GOLTS_FAULT environment variable (kill|stall|delay:rank=R,cycle=C
// [,substep=S][,ms=D]), which the coordinator forwards to every rank —
// `make fault-smoke` kills a rank this way and asserts the recovered
// seismograms match a fault-free run byte for byte. -expect-recovery
// exits 1 when the run finishes without recovering anything (the
// injected fault never fired); -fault-report writes recovery-latency
// numbers as JSON. The fault grammar also carries the network verbs
// droplink, stall-link, corrupt and partition, plus ';'-separated
// multi-plans and gen=G addressing for faults during recovery itself.
//
// -min-ranks N enables degraded mode: a rank that exhausts
// -max-recoveries is retired for good, its parts are redistributed onto
// the survivors, and the run continues with fewer ranks (never below N).
// The decomposition width is pinned by -parts, so the degraded
// seismograms stay byte-identical — `make chaos-smoke` asserts exactly
// that. -expect-degraded exits 1 unless at least one rank was retired;
// -chaos-report writes the degraded/recovery/link counters as JSON.
//
// -level-times turns on the timing telemetry and prints the per-rank,
// per-level stiffness-kernel table after the run (also embedded in the
// -fault-report JSON). -part-rank places each part on an explicit rank
// (any placement is bitwise-identical; only wall time changes), and
// -auto-rebalance lets the coordinator remap parts onto ranks mid-run
// when the measured per-rank busy times stay imbalanced — `make
// tune-smoke` starts from a skewed placement and asserts the run
// rebalances and still matches the balanced run byte for byte.
// -auto-tune calibrates the deployment shape with short probe runs
// before the real one; -tune-report writes the measured-vs-predicted
// table as BENCH_tune.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"golts/internal/tune"
	"golts/wave"
)

func main() {
	// The coordinator re-executes this binary for every rank; RankMain
	// routes those children into the rank runtime before flag parsing.
	wave.RankMain()

	ranks := flag.Int("ranks", 2, "rank processes to spawn")
	parts := flag.Int("parts", 0, "decomposition width (0 = ranks); pins the result bits")
	name := flag.String("mesh", "trench", "benchmark mesh")
	scale := flag.Float64("scale", 0.02, "mesh scale")
	physics := flag.String("physics", "acoustic", "acoustic or elastic")
	useLTS := flag.Bool("lts", true, "use LTS-Newmark (false = global Newmark)")
	cycles := flag.Int("cycles", 20, "coarse cycles to simulate")
	degree := flag.Int("degree", 4, "SEM polynomial degree")
	cfl := flag.Float64("cfl", 0.4, "Courant number")
	partMethod := flag.String("partitioner", string(wave.ScotchP), "element partitioner")
	seed := flag.Int64("seed", 1, "partitioner seed")
	outPath := flag.String("out", "", "seismogram output file (.csv or .json)")
	recoverEvery := flag.Int("recover-every", 0, "checkpoint every N cycles and recover failed ranks (0: off)")
	maxRecoveries := flag.Int("max-recoveries", 0, "rank recoveries before giving up (0: default 3)")
	minRanks := flag.Int("min-ranks", 0, "degraded mode: survive permanent rank loss down to this many ranks (0: off)")
	expectDegraded := flag.Bool("expect-degraded", false, "exit 1 unless at least one rank was permanently retired")
	chaosReport := flag.String("chaos-report", "", "write degraded/recovery/link counters as JSON to this path")
	expectRecovery := flag.Bool("expect-recovery", false, "exit 1 unless at least one rank recovery happened")
	requireNonzero := flag.Bool("require-nonzero", false, "exit 1 unless some receiver sample is nonzero (guards byte-comparisons against vacuously-zero traces)")
	faultReport := flag.String("fault-report", "", "write recovery-latency numbers as JSON to this path")
	levelTimes := flag.Bool("level-times", false, "enable timing telemetry and print the per-rank, per-level kernel table")
	partRank := flag.String("part-rank", "", "explicit part placement as comma-separated rank ids, one per part (empty: contiguous blocks)")
	autoRebalance := flag.Bool("auto-rebalance", false, "remap parts onto ranks mid-run when per-rank busy times stay imbalanced")
	rebThreshold := flag.Float64("rebalance-threshold", 0, "max/mean busy ratio that arms a rebalance (0: default 1.5)")
	rebWindow := flag.Int("rebalance-window", 0, "consecutive imbalanced cycles before rebalancing (0: default 3)")
	rebCooldown := flag.Int("rebalance-cooldown", 0, "quiet cycles after a rebalance (0: default 10)")
	expectRebalance := flag.Bool("expect-rebalance", false, "exit 1 unless at least one automatic rebalance happened")
	autoTune := flag.Duration("auto-tune", 0, "calibrate the deployment shape with probe runs under this wall budget (0: off)")
	tuneReport := flag.String("tune-report", "", "write the calibration's measured-vs-predicted table as JSON to this path")
	flag.Parse()

	scheme := wave.WithLTS()
	if !*useLTS {
		scheme = wave.WithGlobalNewmark()
	}
	ckptEvery := -1 // Distributed semantics: negative disables
	switch {
	case *recoverEvery > 0:
		ckptEvery = *recoverEvery
	case *minRanks > 0:
		ckptEvery = 0 // degraded mode needs checkpoints; take the default interval
	}
	placement, err := parsePartRank(*partRank)
	if err != nil {
		fmt.Fprintln(os.Stderr, "distrun:", err)
		os.Exit(2)
	}
	opts := []wave.Option{
		wave.WithMesh(*name, *scale),
		wave.WithPhysics(wave.Physics(*physics)),
		wave.WithDegree(*degree),
		wave.WithCFL(*cfl),
		wave.WithCycles(*cycles),
		scheme,
		wave.WithPartitioner(wave.Partitioner(*partMethod)),
		wave.WithSeed(*seed),
		wave.WithBackend(wave.Distributed{
			Ranks: *ranks, Parts: *parts,
			CheckpointEvery: ckptEvery, MaxRecoveries: *maxRecoveries,
			DegradedMode: *minRanks > 0, MinRanks: *minRanks,
			Telemetry:          *levelTimes,
			PartRank:           placement,
			AutoRebalance:      *autoRebalance,
			RebalanceThreshold: *rebThreshold, RebalanceWindow: *rebWindow,
			RebalanceCooldown: *rebCooldown,
		}),
	}
	if *outPath != "" {
		opts = append(opts, wave.WithSink(wave.FileSink(*outPath)))
	}
	if *autoTune > 0 {
		opts = append(opts, wave.WithAutoTune(*autoTune))
	}

	// Reject impossible flags (ranks > parts, nonpositive cycles, a typo'd
	// physics) as a usage error before any mesh or operator work — the
	// typed *OptionError names the offending option.
	if err := wave.Validate(opts...); err != nil {
		fmt.Fprintln(os.Stderr, "distrun:", err)
		flag.Usage()
		os.Exit(2)
	}

	t0 := time.Now()
	sim, err := wave.New(opts...)
	if err != nil {
		fatal(err)
	}
	defer sim.Close()
	st := sim.Stats()
	fmt.Printf("mesh %s: %d elements, %d DOF, %d levels; %d ranks x %d parts, startup %.2fs\n",
		st.Mesh, st.Elements, st.DOF, st.Levels, st.Ranks, st.Parts, time.Since(t0).Seconds())

	t0 = time.Now()
	if err := sim.Run(context.Background(), 0); err != nil {
		fatal(err)
	}
	wall := time.Since(t0).Seconds()
	st = sim.Stats()
	perCycle := wall / float64(st.Cycles)
	if st.LTS {
		fmt.Printf("LTS-Newmark: %d cycles in %.2fs (%.1f ms/cycle); work saving %.2fx (%.0f%% of Eq. 9)\n",
			st.Cycles, wall, 1e3*perCycle, st.EffectiveSpeedup, 100*st.Efficiency)
	} else {
		fmt.Printf("global Newmark: %d cycles (%d steps) in %.2fs (%.1f ms/cycle)\n",
			st.Cycles, st.Cycles*int64(st.PMax), wall, 1e3*perCycle)
	}
	if st.Engine != nil {
		fmt.Printf("halo exchange: %d applies/rank, %d messages, %d node-values over the wire\n",
			st.Engine.Applies, st.Engine.Messages, st.Engine.Volume)
	}
	if *recoverEvery > 0 || *minRanks > 0 {
		fmt.Printf("fault tolerance: %d rank recoveries (%d ms recovering), %d corrupt frames rejected, %d link retries\n",
			st.Recoveries, st.RecoveryMillis, st.CorruptFrames, st.LinkRetries)
	}
	if *minRanks > 0 {
		fmt.Printf("degraded mode: %d ranks permanently retired (%d ms shrinking), %d of %d ranks finished the run\n",
			st.DegradedRanks, st.DegradedMillis, st.Ranks-st.DegradedRanks, st.Ranks)
	}
	if *autoTune > 0 {
		fmt.Printf("auto-tune: selected ranks=%d kernel=%s\n", st.TunedRanks, st.TunedKernel)
	}
	if *autoRebalance {
		fmt.Printf("load balancing: %d automatic rebalances (%d ms rebalancing)\n",
			st.Rebalances, st.RebalanceMillis)
	}
	if *levelTimes {
		printLevelTimes(st)
	}

	seis := sim.Seismograms()
	peakMax := 0.0
	for i := range seis.Traces {
		tr := &seis.Traces[i]
		peak, pt := tr.Peak(seis.Times)
		if peak > peakMax {
			peakMax = peak
		}
		fmt.Printf("receiver %-6s |u|max = %.3e  peak t = %.3f\n", tr.Name, peak, pt)
	}
	if *requireNonzero && peakMax == 0 {
		fmt.Fprintln(os.Stderr, "distrun: -require-nonzero set but every receiver sample is exactly zero (wave never reached a receiver; raise -scale or -cycles)")
		os.Exit(1)
	}
	// Close flushes the sink and shuts the ranks down; report only after
	// both happened cleanly.
	if err := sim.Close(); err != nil {
		fatal(err)
	}
	if *outPath != "" {
		fmt.Printf("seismograms written to %s\n", *outPath)
	}
	if *faultReport != "" {
		rep := struct {
			Ranks      int               `json:"ranks"`
			Parts      int               `json:"parts"`
			Cycles     int64             `json:"cycles"`
			Recoveries int               `json:"recoveries"`
			RecoveryMS int64             `json:"recovery_ms"`
			Rebalances int               `json:"rebalances"`
			WallS      float64           `json:"wall_seconds"`
			NumCPU     int               `json:"num_cpu"`
			GoMaxProcs int               `json:"gomaxprocs"`
			Fault      string            `json:"fault,omitempty"`
			LevelTimes []wave.LevelStats `json:"level_times,omitempty"`
		}{st.Ranks, st.Parts, st.Cycles, st.Recoveries, st.RecoveryMillis,
			st.Rebalances, wall, runtime.NumCPU(), runtime.GOMAXPROCS(0),
			os.Getenv("GOLTS_FAULT"), st.LevelTimes}
		raw, _ := json.MarshalIndent(rep, "", "  ")
		raw = append(raw, '\n')
		if err := os.WriteFile(*faultReport, raw, 0o644); err != nil {
			fatal(err)
		}
	}
	if *tuneReport != "" {
		rep := struct {
			Benchmark  string     `json:"benchmark"`
			Mesh       string     `json:"mesh"`
			Scale      float64    `json:"scale"`
			Ranks      int        `json:"ranks"`
			Parts      int        `json:"parts"`
			NumCPU     int        `json:"num_cpu"`
			GoMaxProcs int        `json:"gomaxprocs"`
			Plan       *tune.Plan `json:"plan"`
		}{"tune", *name, *scale, st.Ranks, st.Parts,
			runtime.NumCPU(), runtime.GOMAXPROCS(0), sim.TunePlan()}
		if rep.Plan == nil {
			fmt.Fprintln(os.Stderr, "distrun: -tune-report set without -auto-tune (no plan to report)")
			os.Exit(2)
		}
		predicted := 0
		for _, m := range rep.Plan.Measurements {
			if m.Err == "" && m.CycleNanos > 0 && m.PredictedNanos > 0 {
				predicted++
			}
		}
		if predicted < 2 {
			fmt.Fprintf(os.Stderr, "distrun: calibration carries model predictions for %d shapes, want >= 2\n", predicted)
			os.Exit(1)
		}
		raw, _ := json.MarshalIndent(rep, "", "  ")
		raw = append(raw, '\n')
		if err := os.WriteFile(*tuneReport, raw, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("calibration report written to %s\n", *tuneReport)
	}
	if *chaosReport != "" {
		rep := struct {
			Ranks         int     `json:"ranks"`
			Parts         int     `json:"parts"`
			Cycles        int64   `json:"cycles"`
			DegradedRanks int     `json:"degraded_ranks"`
			DegradedMS    int64   `json:"degraded_ms"`
			Recoveries    int     `json:"recoveries"`
			RecoveryMS    int64   `json:"recovery_ms"`
			LinkRetries   int64   `json:"link_retries"`
			CorruptFrames int64   `json:"corrupt_frames"`
			WallS         float64 `json:"wall_seconds"`
			NumCPU        int     `json:"num_cpu"`
			GoMaxProcs    int     `json:"gomaxprocs"`
			Fault         string  `json:"fault,omitempty"`
		}{st.Ranks, st.Parts, st.Cycles, st.DegradedRanks, st.DegradedMillis,
			st.Recoveries, st.RecoveryMillis, st.LinkRetries, st.CorruptFrames,
			wall, runtime.NumCPU(), runtime.GOMAXPROCS(0), os.Getenv("GOLTS_FAULT")}
		raw, _ := json.MarshalIndent(rep, "", "  ")
		raw = append(raw, '\n')
		if err := os.WriteFile(*chaosReport, raw, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("chaos report written to %s\n", *chaosReport)
	}
	if *expectRecovery && st.Recoveries == 0 {
		fmt.Fprintln(os.Stderr, "distrun: -expect-recovery set but the run recovered nothing (fault never fired?)")
		os.Exit(1)
	}
	if *expectDegraded && st.DegradedRanks == 0 {
		fmt.Fprintln(os.Stderr, "distrun: -expect-degraded set but no rank was retired (fault never exhausted the budget?)")
		os.Exit(1)
	}
	if *expectRebalance && st.Rebalances == 0 {
		fmt.Fprintln(os.Stderr, "distrun: -expect-rebalance set but the run never rebalanced (placement already balanced?)")
		os.Exit(1)
	}
}

// parsePartRank parses "0,0,1,1" into a placement slice (nil for "").
func parsePartRank(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	fields := strings.Split(s, ",")
	out := make([]int, len(fields))
	for i, f := range fields {
		r, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("-part-rank entry %d: %v", i, err)
		}
		out[i] = r
	}
	return out, nil
}

// printLevelTimes renders the telemetry table: one row per LTS level,
// one column per rank, milliseconds of cumulative stiffness-kernel time.
func printLevelTimes(st wave.Stats) {
	if len(st.LevelTimes) == 0 {
		fmt.Println("level times: no telemetry recorded")
		return
	}
	fmt.Print("level times (ms/rank):\n        ")
	for r := range st.LevelTimes[0].RankNanos {
		fmt.Printf("  rank%-2d", r)
	}
	fmt.Println()
	for _, lt := range st.LevelTimes {
		fmt.Printf("level %-2d", lt.Level)
		for _, n := range lt.RankNanos {
			fmt.Printf(" %7.1f", float64(n)/1e6)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distrun:", err)
	os.Exit(1)
}
