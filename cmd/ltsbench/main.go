// Command ltsbench regenerates the paper's evaluation tables and figures
// (Fig. 5 table, Figs. 7-13) as text tables.
//
// Usage:
//
//	ltsbench [-experiment all|table5|fig1|fig7|fig8|fig9|fig10|fig11|fig12|fig13|single-thread|parallel]
//	         [-quick] [-scale f] [-seed n] [-workers n]
//	         [-cpuprofile f] [-memprofile f]
//
// -quick runs reduced sizes (seconds instead of minutes); -scale
// multiplies the default mesh scales. The "parallel" experiment times the
// real shared-memory engine; -workers n replaces its default worker-count
// ladder with the powers of two up to n. -cpuprofile/-memprofile write
// pprof profiles covering the selected experiments, so kernel regressions
// can be diagnosed without code edits:
//
//	ltsbench -experiment single-thread -quick -cpuprofile cpu.pprof
//	go tool pprof cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"golts/internal/experiments"
)

func main() {
	// All exits funnel through run()'s return code so the deferred
	// profile writers flush even when an experiment fails.
	os.Exit(run())
}

func run() int {
	exp := flag.String("experiment", "all", "which experiment to run")
	quick := flag.Bool("quick", false, "reduced sizes for a fast smoke run")
	scale := flag.Float64("scale", 1.0, "multiplier on the default mesh scales")
	seed := flag.Int64("seed", 0, "partitioner seed (0 = default)")
	workers := flag.Int("workers", 0, "max worker count for the parallel experiment (0 = default ladder)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			complain("cpuprofile", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			complain("cpuprofile", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				complain("memprofile", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				complain("memprofile", err)
			}
		}()
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.TrenchScale *= *scale
	cfg.TrenchBigScale *= *scale
	cfg.EmbeddingScale *= *scale
	cfg.CrustScale *= *scale
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *workers > 0 {
		cfg.Workers = nil
		for w := 1; w < *workers; w *= 2 {
			cfg.Workers = append(cfg.Workers, w)
		}
		// Always measure the requested count itself, power of two or not.
		cfg.Workers = append(cfg.Workers, *workers)
	}

	type runner struct {
		name string
		run  func() ([]*experiments.Table, error)
	}
	one := func(f func(experiments.Config) (*experiments.Table, error)) func() ([]*experiments.Table, error) {
		return func() ([]*experiments.Table, error) {
			t, err := f(cfg)
			if err != nil {
				return nil, err
			}
			return []*experiments.Table{t}, nil
		}
	}
	runners := []runner{
		{"table5", one(experiments.Table5MeshInventory)},
		{"fig1", one(experiments.Fig1Timeline)},
		{"fig7", one(experiments.Fig7LoadImbalance)},
		{"fig8", one(experiments.Fig8CommMetrics)},
		{"fig9", func() ([]*experiments.Table, error) {
			cpu, gpu, err := experiments.Fig9TrenchScaling(cfg)
			if err != nil {
				return nil, err
			}
			return []*experiments.Table{cpu, gpu}, nil
		}},
		{"fig10", one(experiments.Fig10EmbeddingScaling)},
		{"fig11", one(experiments.Fig11CrustScaling)},
		{"fig12", one(experiments.Fig12CacheMetric)},
		{"fig13", one(experiments.Fig13LargeTrench)},
		{"single-thread", one(experiments.SingleThreadEfficiency)},
		{"parallel", one(experiments.ParallelScaling)},
		{"convergence", one(experiments.ConvergenceStudy)},
	}

	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		t0 := time.Now()
		tables, err := r.run()
		if err != nil {
			complain(r.name, err)
			return 1
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", r.name, time.Since(t0).Seconds())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "ltsbench: unknown experiment %q\n", *exp)
		return 2
	}
	return 0
}

func complain(what string, err error) {
	fmt.Fprintf(os.Stderr, "ltsbench: %s: %v\n", what, err)
}
