// Command kernelbench times the steady-state AddKu kernel of every
// operator and writes the results as JSON, so the per-element cost — the
// constant the paper's speedup model (Eq. 9) assumes small and fixed —
// is tracked across revisions. `make bench` writes BENCH_kernels.json at
// the repo root. The operator fixtures are sem.KernelBenchOperators,
// shared with BenchmarkAddKu in internal/sem, so both measure the same
// workload.
//
// Alongside the per-element rows, the batched-kernel sweep
// (sem.KernelSweepOperators, 512-element fixtures) times AddKuBatch at
// element-list sizes 1, 8, 64 and 512 and reports batched_vs_scalar —
// the speedup of the fused SoA path over the per-element path on the
// same element set.
//
// Usage:
//
//	kernelbench [-out BENCH_kernels.json] [-benchtime 1s] [-smoke]
//
// -smoke shrinks the measurement time and exits non-zero if the batched
// path fails to run or allocates in steady state: the allocation-free
// fused path is asserted structurally, without timing-dependent
// thresholds, so CI can run it without flakiness.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"golts/internal/sem"
)

// result is one per-element kernel measurement row.
type result struct {
	Op          string  `json:"op"`
	Deg         int     `json:"deg"`
	Elements    int     `json:"elements"`
	NsPerElem   float64 `json:"ns_per_elem"`
	ElemPerSec  float64 `json:"elem_per_s"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// sweepPoint is one batched measurement at a given element-list size.
type sweepPoint struct {
	Batch       int     `json:"batch"`
	NsPerElem   float64 `json:"ns_per_elem"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// batchedResult is one operator's batched-kernel sweep.
type batchedResult struct {
	Op              string       `json:"op"`
	Deg             int          `json:"deg"`
	Elements        int          `json:"elements"`
	ScalarNsPerElem float64      `json:"scalar_ns_per_elem"`
	Sweep           []sweepPoint `json:"sweep"`
	// BatchedVsScalar is the speedup of AddKuBatch over AddKuScratch at
	// the largest batch: scalar ns/elem divided by batched ns/elem.
	BatchedVsScalar float64 `json:"batched_vs_scalar"`
}

// batchSizes is the element-list sweep of the batched kernels.
var batchSizes = []int{1, 8, 64, 512}

// tierResult is one (SIMD tier, operator) batched measurement at the
// largest batch size: the steady-state per-element cost of that tier.
type tierResult struct {
	Tier        string  `json:"tier"`
	Op          string  `json:"op"`
	Deg         int     `json:"deg"`
	NsPerElem   float64 `json:"ns_per_elem"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	testing.Init() // register test.* flags so test.benchtime is settable
	out := flag.String("out", "BENCH_kernels.json", "output JSON path (- for stdout)")
	benchtime := flag.Duration("benchtime", time.Second, "minimum measurement time per kernel")
	flag.IntVar(&repeatN, "repeat", 3, "measurement repeats per kernel; the fastest is reported (noise robustness)")
	smoke := flag.Bool("smoke", false, "tiny-N correctness smoke: assert the batched path runs alloc-free, ignore timings")
	flag.Parse()

	const deg = 4 // the paper's 125-node configuration (specialised kernels)
	if *smoke {
		*benchtime = 20 * time.Millisecond
		repeatN = 1
	}
	if f := flag.Lookup("test.benchtime"); f != nil {
		f.Value.Set(benchtime.String())
	}

	cases, err := sem.KernelBenchOperators(deg)
	if err != nil {
		fatal(err)
	}
	var results []result
	for _, c := range cases {
		r := measure(c.Name, deg, c.Op)
		results = append(results, r)
		fmt.Fprintf(os.Stderr, "%-14s deg=%d  %10.1f ns/elem  %12.0f elem/s  %d allocs/op\n",
			r.Op, r.Deg, r.NsPerElem, r.ElemPerSec, r.AllocsPerOp)
	}

	sweepCases, err := sem.KernelSweepOperators(deg)
	if err != nil {
		fatal(err)
	}
	var batched []batchedResult
	for _, c := range sweepCases {
		br := measureBatched(c.Name, deg, c.Op.(sem.BatchKernel))
		batched = append(batched, br)
		fmt.Fprintf(os.Stderr, "%-14s deg=%d  batched %8.1f ns/elem @%d  vs scalar %8.1f  speedup %.2fx\n",
			br.Op, br.Deg, br.Sweep[len(br.Sweep)-1].NsPerElem, batchSizes[len(batchSizes)-1],
			br.ScalarNsPerElem, br.BatchedVsScalar)
		if *smoke {
			for _, p := range br.Sweep {
				if p.AllocsPerOp != 0 {
					fatal(fmt.Errorf("%s: AddKuBatch allocates %d/op at batch %d (want 0)", br.Op, p.AllocsPerOp, p.Batch))
				}
			}
			if !(br.BatchedVsScalar > 0) {
				fatal(fmt.Errorf("%s: batched sweep produced no speedup figure", br.Op))
			}
		}
	}

	var tiers []tierResult
	for _, c := range sweepCases {
		trs, err := measureTiers(c.Name, deg, c.Op.(sem.BatchKernel))
		if err != nil {
			fatal(err)
		}
		for _, tr := range trs {
			fmt.Fprintf(os.Stderr, "%-14s deg=%d  tier %-7s %10.1f ns/elem  %d allocs/op\n",
				tr.Op, tr.Deg, tr.Tier, tr.NsPerElem, tr.AllocsPerOp)
			if *smoke && tr.AllocsPerOp != 0 {
				fatal(fmt.Errorf("%s tier %s: AddKuBatch allocates %d/op (want 0)", tr.Op, tr.Tier, tr.AllocsPerOp))
			}
		}
		tiers = append(tiers, trs...)
	}

	enc, err := json.MarshalIndent(map[string]any{
		"benchmark":  "AddKuScratch",
		"unit_note":  "ns_per_elem is wall time per element stiffness application",
		"num_cpu":    runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"simd":       sem.ActiveSIMDTier(),
		"simd_tiers": sem.SIMDTiers(),
		"results":    results,
		"batched": map[string]any{
			"benchmark": "AddKuBatch",
			"unit_note": "sweep times the fused SoA batch path per element-list size; batched_vs_scalar is scalar ns/elem over batched ns/elem at the largest batch",
			"results":   batched,
		},
		"per_tier": map[string]any{
			"benchmark": "AddKuBatch",
			"unit_note": "full-sweep batched cost per usable SIMD microkernel tier (deg=4, largest batch); tiers absent on this machine are not listed",
			"results":   tiers,
		},
	}, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kernelbench:", err)
	os.Exit(1)
}

// repeatN is how many times each kernel is measured; see -repeat.
var repeatN = 3

// bench runs f under testing.Benchmark repeatN times and keeps the
// fastest run: the minimum is far less sensitive to scheduler noise on
// shared CI runners than a single long measurement, which is what lets
// benchcheck gate at a tight tolerance.
func bench(f func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(f)
	for i := 1; i < repeatN; i++ {
		if r := testing.Benchmark(f); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// measure runs the per-element kernel under testing.Benchmark and
// converts to per-element numbers.
func measure(name string, deg int, op sem.Operator) result {
	u := make([]float64, op.NDof())
	sem.BenchField(u)
	dst := make([]float64, op.NDof())
	elems := sem.AllElements(op)
	var sc sem.Scratch
	op.AddKuScratch(dst, u, elems, &sc) // warm-up
	br := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op.AddKuScratch(dst, u, elems, &sc)
		}
	})
	nsPerOp := float64(br.NsPerOp())
	ne := float64(len(elems))
	return result{
		Op:          name,
		Deg:         deg,
		Elements:    len(elems),
		NsPerElem:   nsPerOp / ne,
		ElemPerSec:  ne / (nsPerOp * 1e-9),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
	}
}

// measureBatched times AddKuScratch and AddKuBatch on the same sweep
// fixture: the scalar baseline over all elements, then the batched path
// at each element-list size.
func measureBatched(name string, deg int, op sem.BatchKernel) batchedResult {
	u := make([]float64, op.NDof())
	sem.BenchField(u)
	dst := make([]float64, op.NDof())
	all := sem.AllElements(op)
	var sc sem.Scratch
	op.AddKuScratch(dst, u, all, &sc)
	sbr := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			op.AddKuScratch(dst, u, all, &sc)
		}
	})
	out := batchedResult{
		Op:              name,
		Deg:             deg,
		Elements:        len(all),
		ScalarNsPerElem: float64(sbr.NsPerOp()) / float64(len(all)),
	}
	var bs sem.BatchScratch
	for _, n := range batchSizes {
		if n > len(all) {
			continue
		}
		elems := all[:n]
		plan := op.NewBatchPlan(elems)
		op.AddKuBatch(dst, u, plan, &bs) // warm-up
		br := bench(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op.AddKuBatch(dst, u, plan, &bs)
			}
		})
		out.Sweep = append(out.Sweep, sweepPoint{
			Batch:       n,
			NsPerElem:   float64(br.NsPerOp()) / float64(n),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		})
	}
	if last := out.Sweep[len(out.Sweep)-1]; last.NsPerElem > 0 {
		out.BatchedVsScalar = out.ScalarNsPerElem / last.NsPerElem
	}
	return out
}

// measureTiers times AddKuBatch over the full sweep fixture under every
// SIMD tier usable in this process, forcing each tier in turn.
func measureTiers(name string, deg int, op sem.BatchKernel) ([]tierResult, error) {
	u := make([]float64, op.NDof())
	sem.BenchField(u)
	dst := make([]float64, op.NDof())
	all := sem.AllElements(op)
	plan := op.NewBatchPlan(all)
	var bs sem.BatchScratch
	var out []tierResult
	for _, tier := range sem.SIMDTiers() {
		restore, err := sem.ForceSIMDTier(tier)
		if err != nil {
			return nil, err
		}
		op.AddKuBatch(dst, u, plan, &bs) // warm-up
		br := bench(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op.AddKuBatch(dst, u, plan, &bs)
			}
		})
		restore()
		out = append(out, tierResult{
			Tier:        tier,
			Op:          name,
			Deg:         deg,
			NsPerElem:   float64(br.NsPerOp()) / float64(len(all)),
			AllocsPerOp: br.AllocsPerOp(),
		})
	}
	return out, nil
}
