// Command kernelbench times the steady-state AddKu kernel of every
// operator and writes the results as JSON, so the per-element cost — the
// constant the paper's speedup model (Eq. 9) assumes small and fixed —
// is tracked across revisions. `make bench` writes BENCH_kernels.json at
// the repo root. The operator fixtures are sem.KernelBenchOperators,
// shared with BenchmarkAddKu in internal/sem, so both measure the same
// workload.
//
// Usage:
//
//	kernelbench [-out BENCH_kernels.json] [-benchtime 1s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"golts/internal/sem"
)

// result is one kernel measurement row.
type result struct {
	Op          string  `json:"op"`
	Deg         int     `json:"deg"`
	Elements    int     `json:"elements"`
	NsPerElem   float64 `json:"ns_per_elem"`
	ElemPerSec  float64 `json:"elem_per_s"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func main() {
	testing.Init() // register test.* flags so test.benchtime is settable
	out := flag.String("out", "BENCH_kernels.json", "output JSON path (- for stdout)")
	benchtime := flag.Duration("benchtime", time.Second, "minimum measurement time per kernel")
	flag.Parse()

	const deg = 4 // the paper's 125-node configuration (specialised kernels)
	cases, err := sem.KernelBenchOperators(deg)
	if err != nil {
		fatal(err)
	}
	if f := flag.Lookup("test.benchtime"); f != nil {
		f.Value.Set(benchtime.String())
	}
	var results []result
	for _, c := range cases {
		r := measure(c.Name, deg, c.Op)
		results = append(results, r)
		fmt.Fprintf(os.Stderr, "%-14s deg=%d  %10.1f ns/elem  %12.0f elem/s  %d allocs/op\n",
			r.Op, r.Deg, r.NsPerElem, r.ElemPerSec, r.AllocsPerOp)
	}
	enc, err := json.MarshalIndent(map[string]any{
		"benchmark": "AddKuScratch",
		"unit_note": "ns_per_elem is wall time per element stiffness application",
		"results":   results,
	}, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kernelbench:", err)
	os.Exit(1)
}

// measure runs the kernel under testing.Benchmark and converts to
// per-element numbers.
func measure(name string, deg int, op sem.Operator) result {
	u := make([]float64, op.NDof())
	sem.BenchField(u)
	dst := make([]float64, op.NDof())
	elems := sem.AllElements(op)
	var sc sem.Scratch
	op.AddKuScratch(dst, u, elems, &sc) // warm-up
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op.AddKuScratch(dst, u, elems, &sc)
		}
	})
	nsPerOp := float64(br.NsPerOp())
	ne := float64(len(elems))
	return result{
		Op:          name,
		Deg:         deg,
		Elements:    len(elems),
		NsPerElem:   nsPerOp / ne,
		ElemPerSec:  ne / (nsPerOp * 1e-9),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
	}
}
