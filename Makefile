GO ?= go

.PHONY: build test race bench vet fmt check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector job over the shared-memory engine and the LTS scheme that
# drives it; -short shrinks the equivalence matrix to its corners so this
# stays CI-friendly.
race:
	$(GO) test -race -short ./internal/parallel ./internal/lts

# Quick-config benchmarks, including BenchmarkParallelSpeedup.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: fmt vet build test race
