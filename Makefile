GO ?= go

.PHONY: build test race bench vet fmt check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector job over the shared-memory engine and the LTS scheme that
# drives it; -short shrinks the equivalence matrix to its corners so this
# stays CI-friendly.
race:
	$(GO) test -race -short ./internal/parallel ./internal/lts

# Quick-config benchmarks, including BenchmarkParallelSpeedup, plus the
# kernel trajectory file: BENCH_kernels.json records ns/elem and allocs/op
# of every operator's AddKu kernel so perf regressions are visible across
# PRs (compare against the committed copy, or `git diff BENCH_kernels.json`).
bench: bench-kernels
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Per-operator stiffness-kernel benchmarks (ns/elem), written as JSON.
bench-kernels:
	$(GO) run ./cmd/kernelbench -out BENCH_kernels.json

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: fmt vet build test race
