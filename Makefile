GO ?= go

.PHONY: build test race bench bench-kernels bench-smoke bench-check bench-baseline dist-smoke serve-smoke fault-smoke tune-smoke chaos-smoke lint vet fmt check examples

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector job over the engines with internal concurrency: the
# shared-memory engine, the LTS scheme that drives it, and the
# distributed backend (whose coordinator multiplexes rank connections on
# goroutines and whose ranks run reader goroutines per peer); -short
# shrinks the equivalence matrices to their corners so this stays
# CI-friendly.
race:
	$(GO) test -race -short ./internal/parallel ./internal/lts ./internal/dist

# Quick-config benchmarks, including BenchmarkParallelSpeedup, plus the
# kernel trajectory file: BENCH_kernels.json records ns/elem and allocs/op
# of every operator's AddKu kernel so perf regressions are visible across
# PRs (compare against the committed copy, or `git diff BENCH_kernels.json`).
bench: bench-kernels
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Per-operator stiffness-kernel benchmarks (ns/elem) including the
# batched-kernel sweep, written as JSON.
bench-kernels:
	$(GO) run ./cmd/kernelbench -out BENCH_kernels.json

# Tiny-N kernel smoke: asserts the batched path runs and stays
# allocation-free (structural checks only — no timing thresholds), so CI
# catches kernel regressions without benchmark flakiness.
bench-smoke:
	$(GO) run ./cmd/kernelbench -smoke -out /dev/null

# Benchmark-regression gate: measure a fresh BENCH_kernels.json and
# compare ns/elem row by row against the committed bench_baseline.json,
# normalised by the median fresh/baseline ratio so a uniformly slower CI
# runner does not trip the gate while a regressed kernel does. Rows for
# SIMD tiers this machine cannot run are skipped with a log line. The
# tolerance is 15% (BENCH_TOL to override): any row beyond 2x the
# tolerance fails, as does a systemic cluster of >15% rows; isolated
# scheduler blips between the two are tolerated (see cmd/benchcheck).
BENCH_TOL ?= 0.15
bench-check:
	$(GO) run ./cmd/kernelbench -out BENCH_kernels.json
	$(GO) run ./cmd/benchcheck -baseline bench_baseline.json -fresh BENCH_kernels.json -tol $(BENCH_TOL)

# Refresh the committed benchmark baseline (run on a quiet machine, then
# commit bench_baseline.json together with the change that moved it).
bench-baseline:
	$(GO) run ./cmd/kernelbench -out bench_baseline.json

# Distributed smoke: a tiny trench run on 1, 2 and 4 local rank
# processes with the decomposition width pinned to 4 parts. The
# decomposition — not the process count — fixes the floating-point
# assembly order, so all three receiver CSVs must be byte-identical.
dist-smoke:
	@rm -rf .dist-smoke && mkdir -p .dist-smoke
	$(GO) build -o .dist-smoke/distrun ./cmd/distrun
	./.dist-smoke/distrun -ranks 1 -parts 4 -scale 0.004 -cycles 6 -out .dist-smoke/r1.csv
	./.dist-smoke/distrun -ranks 2 -parts 4 -scale 0.004 -cycles 6 -out .dist-smoke/r2.csv
	./.dist-smoke/distrun -ranks 4 -parts 4 -scale 0.004 -cycles 6 -out .dist-smoke/r4.csv
	cmp .dist-smoke/r1.csv .dist-smoke/r2.csv
	cmp .dist-smoke/r1.csv .dist-smoke/r4.csv
	@rm -rf .dist-smoke
	@echo "dist-smoke: 1-, 2- and 4-rank receiver CSVs byte-identical"

# Service smoke: wavedload starts an in-process waved service, runs the
# acceptance smoke over real HTTP (cold vs cache-hit runs byte-identical,
# cache hits recorded, cancellation works), then a small load run whose
# throughput / latency / cache-hit-rate report lands in BENCH_serve.json
# (structural health numbers, no thresholds — compare across PRs).
serve-smoke:
	$(GO) run ./cmd/wavedload -smoke
	$(GO) run ./cmd/wavedload -jobs 24 -clients 4 -out BENCH_serve.json

# Fault-tolerance smoke, both recovery paths end to end:
#  1. distributed: a rank process SIGKILLs itself mid-run (GOLTS_FAULT),
#     the coordinator respawns and restores it, and the recovered
#     seismogram CSV must be byte-identical to a fault-free run;
#  2. service: wavedload interrupts a spooled waved job mid-run, restarts
#     the service on the same spool, and the replayed job must resume
#     from its checkpoint with a byte-identical row stream.
# Both legs run at scale 0.015 x 40 cycles and assert nonzero receiver
# samples (-require-nonzero / the wavedload guard): at smaller scales
# every sample is exactly zero and the byte-comparisons pass vacuously —
# that blindness is how the stale-replica checkpoint bug slipped through.
# Recovery-latency numbers land in BENCH_fault.json (the distrun report
# is embedded), alongside BENCH_serve.json in the CI artifacts.
fault-smoke:
	@rm -rf .fault-smoke && mkdir -p .fault-smoke
	$(GO) build -o .fault-smoke/distrun ./cmd/distrun
	./.fault-smoke/distrun -ranks 2 -parts 4 -scale 0.015 -cycles 40 -require-nonzero \
		-out .fault-smoke/ref.csv
	GOLTS_FAULT=kill:rank=1,cycle=20,substep=2 ./.fault-smoke/distrun \
		-ranks 2 -parts 4 -scale 0.015 -cycles 40 -recover-every 4 -max-recoveries 2 \
		-expect-recovery -require-nonzero \
		-fault-report .fault-smoke/dist.json -out .fault-smoke/recovered.csv
	cmp .fault-smoke/ref.csv .fault-smoke/recovered.csv
	$(GO) run ./cmd/wavedload -restart-smoke -scale 0.015 -dist-report .fault-smoke/dist.json -out BENCH_fault.json
	@rm -rf .fault-smoke
	@echo "fault-smoke: rank-kill recovery and waved restart both byte-identical at nonzero amplitude"

# Degraded-mode & wire-fault smoke — the failure taxonomy end to end,
# every leg at scale 0.015 x 40 cycles with -require-nonzero so the
# byte-comparisons cannot pass vacuously on all-zero samples:
#  1. corrupt: a rank flips a bit in one outbound frame; the CRC check
#     must reject it and recovery must restore the run byte-identically;
#  2. droplink: a rank drops its coordinator connection mid-cycle; the
#     typed link failure must recover byte-identically;
#  3. degraded: a rank is SIGKILLed in generation 0 and again during the
#     recovery replay (gen=1 plan), exhausting -max-recoveries 1; the
#     coordinator must retire it (-expect-degraded), redistribute its
#     parts onto the survivor and finish byte-identically, with the
#     counters written to BENCH_chaos.json;
#  4. service: wavedload -degraded-smoke drives the same permanent-loss
#     path through waved's job API (degraded_ranks in the job JSON,
#     byte-identical rows), reported in BENCH_degraded.json.
chaos-smoke:
	@rm -rf .chaos-smoke && mkdir -p .chaos-smoke
	$(GO) build -o .chaos-smoke/distrun ./cmd/distrun
	./.chaos-smoke/distrun -ranks 2 -parts 4 -scale 0.015 -cycles 40 -require-nonzero \
		-out .chaos-smoke/ref.csv
	GOLTS_FAULT=corrupt:rank=1,cycle=12,substep=1 ./.chaos-smoke/distrun \
		-ranks 2 -parts 4 -scale 0.015 -cycles 40 -recover-every 4 \
		-expect-recovery -require-nonzero -out .chaos-smoke/corrupt.csv
	cmp .chaos-smoke/ref.csv .chaos-smoke/corrupt.csv
	GOLTS_FAULT=droplink:rank=1,cycle=18,substep=1 ./.chaos-smoke/distrun \
		-ranks 2 -parts 4 -scale 0.015 -cycles 40 -recover-every 4 \
		-expect-recovery -require-nonzero -out .chaos-smoke/droplink.csv
	cmp .chaos-smoke/ref.csv .chaos-smoke/droplink.csv
	GOLTS_FAULT='kill:rank=1,cycle=20,substep=1;kill:rank=1,cycle=1,substep=1,gen=1' \
		./.chaos-smoke/distrun -ranks 2 -parts 4 -scale 0.015 -cycles 40 \
		-recover-every 4 -max-recoveries 1 -min-ranks 1 \
		-expect-degraded -require-nonzero \
		-chaos-report BENCH_chaos.json -out .chaos-smoke/degraded.csv
	cmp .chaos-smoke/ref.csv .chaos-smoke/degraded.csv
	$(GO) run ./cmd/wavedload -degraded-smoke -scale 0.015 -out BENCH_degraded.json
	@rm -rf .chaos-smoke
	@echo "chaos-smoke: corrupt, droplink and permanent-loss runs all byte-identical at nonzero amplitude"

# Auto-tune & load-balance smoke, both halves of internal/tune:
#  1. calibration: a tiny distributed run probes its deployment-shape
#     grid under -auto-tune and writes the measured-vs-predicted table
#     to BENCH_tune.json; distrun exits nonzero unless at least two
#     shapes carry internal/cluster model predictions;
#  2. rebalancing: a run started on a maximally skewed part placement
#     (rank 0 carries 3 of 4 parts) must trigger at least one automatic
#     mid-run rebalance (-expect-rebalance) and still produce a receiver
#     CSV byte-identical to the balanced run — at scale 0.015 x 40
#     cycles with -require-nonzero, so the comparison cannot pass
#     vacuously on all-zero samples.
tune-smoke:
	@rm -rf .tune-smoke && mkdir -p .tune-smoke
	$(GO) build -o .tune-smoke/distrun ./cmd/distrun
	./.tune-smoke/distrun -ranks 2 -parts 4 -scale 0.004 -cycles 6 \
		-auto-tune 30s -tune-report BENCH_tune.json -out .tune-smoke/tuned.csv
	./.tune-smoke/distrun -ranks 2 -parts 4 -scale 0.015 -cycles 40 -require-nonzero \
		-out .tune-smoke/ref.csv
	./.tune-smoke/distrun -ranks 2 -parts 4 -scale 0.015 -cycles 40 \
		-part-rank 0,0,0,1 -auto-rebalance -rebalance-threshold 1.2 \
		-rebalance-window 2 -rebalance-cooldown 3 \
		-expect-rebalance -require-nonzero -level-times \
		-out .tune-smoke/rebalanced.csv
	cmp .tune-smoke/ref.csv .tune-smoke/rebalanced.csv
	@rm -rf .tune-smoke
	@echo "tune-smoke: calibration predicted >=2 shapes; skewed run rebalanced and stayed byte-identical"

# Static analysis beyond go vet. CI installs staticcheck; locally the
# target runs it when present and skips (loudly) when not, so `make
# check` mirrors CI wherever the tool is installed.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Smoke-run every example at tiny scales, so facade changes cannot
# silently break them (they are not covered by `go test`).
examples:
	$(GO) run ./examples/quickstart -scale 0.001 -cycles 5
	$(GO) run ./examples/trench_seismology -scale 0.001 -cycles 5
	$(GO) run ./examples/partition_compare -scale 0.02
	$(GO) run ./examples/cluster_scaling -scale 0.02 -nodes 2,4

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: fmt vet lint build test race examples dist-smoke serve-smoke fault-smoke tune-smoke chaos-smoke
