GO ?= go

.PHONY: build test race bench bench-kernels bench-smoke vet fmt check examples

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector job over the shared-memory engine and the LTS scheme that
# drives it; -short shrinks the equivalence matrix to its corners so this
# stays CI-friendly.
race:
	$(GO) test -race -short ./internal/parallel ./internal/lts

# Quick-config benchmarks, including BenchmarkParallelSpeedup, plus the
# kernel trajectory file: BENCH_kernels.json records ns/elem and allocs/op
# of every operator's AddKu kernel so perf regressions are visible across
# PRs (compare against the committed copy, or `git diff BENCH_kernels.json`).
bench: bench-kernels
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Per-operator stiffness-kernel benchmarks (ns/elem) including the
# batched-kernel sweep, written as JSON.
bench-kernels:
	$(GO) run ./cmd/kernelbench -out BENCH_kernels.json

# Tiny-N kernel smoke: asserts the batched path runs and stays
# allocation-free (structural checks only — no timing thresholds), so CI
# catches kernel regressions without benchmark flakiness.
bench-smoke:
	$(GO) run ./cmd/kernelbench -smoke -out /dev/null

# Smoke-run every example at tiny scales, so facade changes cannot
# silently break them (they are not covered by `go test`).
examples:
	$(GO) run ./examples/quickstart -scale 0.001 -cycles 5
	$(GO) run ./examples/trench_seismology -scale 0.001 -cycles 5
	$(GO) run ./examples/partition_compare -scale 0.02
	$(GO) run ./examples/cluster_scaling -scale 0.02 -nodes 2,4

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: fmt vet build test race examples
