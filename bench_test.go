// Root benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (see DESIGN.md's per-experiment index). Each bench
// runs the corresponding experiment at the Quick configuration so the full
// suite completes in minutes; `go run ./cmd/ltsbench` regenerates the
// full-scale tables.
package main

import (
	"fmt"
	"testing"
	"time"

	"golts/internal/experiments"
	"golts/internal/lts"
	"golts/internal/mesh"
	"golts/internal/newmark"
	"golts/internal/parallel"
	"golts/internal/partition"
	"golts/internal/sem"
)

func benchCfg() experiments.Config {
	cfg := experiments.Quick()
	// Slightly larger than test-quick so benches exercise real work.
	cfg.TrenchScale = 0.05
	return cfg
}

func BenchmarkTable5MeshInventory(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5MeshInventory(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1Timeline(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1Timeline(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7LoadImbalance(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7LoadImbalance(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8CommVolume(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8CommMetrics(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9TrenchScaling(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig9TrenchScaling(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10EmbeddingScaling(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10EmbeddingScaling(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11CrustScaling(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11CrustScaling(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12CacheModel(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12CacheMetric(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13LargeTrench(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13LargeTrench(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvergenceStudy(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ConvergenceStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSpeedup times real multi-level LTS cycles on the Quick
// trench config executed by the shared-memory engine at 1/2/4/8 workers.
// Reported metrics: elem-applies/s (raw stiffness throughput) and
// speedup-vs-1w (wall-clock cycle time vs the 1-worker engine, measured
// once up front). On a multicore host speedup-vs-1w tracks the core
// count; on a single hardware thread it stays near 1.
func BenchmarkParallelSpeedup(b *testing.B) {
	cfg := benchCfg()
	m := mesh.Generators["trench"](cfg.TrenchScale)
	lv := mesh.AssignLevels(m, cfg.CFL, 0)
	op, err := sem.NewAcoustic3D(m, 4, false)
	if err != nil {
		b.Fatal(err)
	}
	newEngine := func(b *testing.B, w int) (*parallel.PartitionedOperator, *lts.Scheme) {
		part, err := partition.Assign(m, lv, w, partition.ScotchP, cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		pop, err := parallel.NewOperator(op, part, w)
		if err != nil {
			b.Fatal(err)
		}
		s, err := lts.FromMeshLevels(pop, lv, true)
		if err != nil {
			pop.Close()
			b.Fatal(err)
		}
		return pop, s
	}
	// Baseline for the speedup metric: a one-shot 1-worker cycle time as
	// fallback (for filtered runs that skip workers=1), refined by the
	// b.N-calibrated workers=1 sub-benchmark when it runs.
	popBase, sBase := newEngine(b, 1)
	sBase.Step() // warm-up
	const baseCycles = 3
	t0 := time.Now()
	sBase.Run(baseCycles)
	basePerCycle := time.Since(t0).Seconds() / baseCycles
	popBase.Close()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			pop, s := newEngine(b, w)
			defer pop.Close()
			s.Step() // warm-up: plans are prepared, buffers paged
			a0 := s.Work.ElemApplies
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			el := b.Elapsed().Seconds()
			perCycle := el / float64(b.N)
			if w == 1 {
				basePerCycle = perCycle // calibrated: later rows divide by this
			}
			b.ReportMetric(float64(s.Work.ElemApplies-a0)/el, "elem-applies/s")
			b.ReportMetric(basePerCycle/perCycle, "speedup-vs-1w")
		})
	}
}

// BenchmarkSingleThreadLTSEfficiency measures the real kernels: wall time
// of one LTS cycle vs the equivalent global Newmark steps on a graded 3-D
// acoustic mesh (§II-C's >90% single-thread efficiency claim).
func BenchmarkSingleThreadLTSEfficiency(b *testing.B) {
	xc := []float64{0, 1, 2, 3, 3.5, 3.75, 4.75, 5.75, 6.75}
	yc := make([]float64, 7)
	zc := make([]float64, 7)
	for i := range yc {
		yc[i] = float64(i)
		zc[i] = float64(i)
	}
	m, err := mesh.New("bench-trench", xc, yc, zc)
	if err != nil {
		b.Fatal(err)
	}
	lv := mesh.AssignLevels(m, 0.4/16, 0)
	op, err := sem.NewAcoustic3D(m, 4, false)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("lts-cycle", func(b *testing.B) {
		s, err := lts.FromMeshLevels(op, lv, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
		b.ReportMetric(s.ModelSpeedup(), "model-speedup")
		b.ReportMetric(s.Efficiency()*100, "work-eff-%")
	})
	b.Run("newmark-equivalent", func(b *testing.B) {
		g := newmark.New(op, lv.CoarseDt/float64(lv.PMax()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Run(lv.PMax())
		}
	})
}
