package wave

import (
	"context"
	"fmt"

	"golts/internal/dist"
	"golts/internal/tune"
)

// Backend selects the execution engine behind the facade. Two backends
// exist: Local (this process, optionally with shared-memory workers via
// WithWorkers) and Distributed (N spawned rank processes exchanging halo
// contributions over loopback sockets).
type Backend interface {
	// backendName keeps the set of backends closed; the two
	// implementations live in this package.
	backendName() string
}

type localBackend struct{}

func (localBackend) backendName() string { return "local" }

// Local is the default backend: everything runs in this process.
var Local Backend = localBackend{}

// Distributed executes the run on Ranks spawned rank processes of the
// same binary — main (or TestMain) must call RankMain first. Each rank
// owns a contiguous block of the decomposition's parts, applies the
// stiffness of its owned elements with the batched SoA kernels, and
// exchanges halo node contributions with neighbouring ranks at every
// substep.
//
// Parts sets the owner-computes decomposition width and defaults to
// Ranks. The decomposition — not the process count — pins the
// floating-point assembly order, so runs with the same Parts are bitwise
// identical for any Ranks (including 1), and match the Local backend
// with WithWorkers(Parts) exactly.
type Distributed struct {
	// Ranks is the number of rank processes (>= 1).
	Ranks int
	// Parts is the decomposition width; 0 means Ranks. Must be >= Ranks
	// otherwise.
	Parts int
	// CheckpointEvery enables transparent rank-failure recovery: the
	// coordinator snapshots the replicated stepper state every n cycles
	// and, when a rank dies or stalls, relaunches the ranks, restores the
	// snapshot and replays to the failure point — bitwise, since Parts
	// pins the assembly order. 0 selects the default interval (4);
	// negative disables recovery.
	CheckpointEvery int
	// MaxRecoveries bounds recoveries per rank configuration; 0 selects
	// the default (3). With DegradedMode the budget resets after each
	// successful shrink.
	MaxRecoveries int
	// DegradedMode keeps the run alive through permanent rank loss: a
	// rank that exhausts the recovery budget is retired, its parts are
	// redistributed onto the surviving ranks (LPT over measured costs),
	// and the run continues with fewer ranks. Parts never change, so the
	// degraded trajectory is bitwise identical to the fault-free one.
	// Requires recovery checkpoints (CheckpointEvery >= 0).
	DegradedMode bool
	// MinRanks is the floor DegradedMode will not shrink below; 0 selects
	// 1 (a run survives down to a single rank).
	MinRanks int
	// Telemetry enables the per-rank, per-level timing counters
	// (surfaced through Stats.Levels and the coordinator's busy trace).
	// Cheap — two monotonic clock reads per owned part per apply — but
	// off by default.
	Telemetry bool
	// AutoRebalance enables the runtime load balancer: on sustained
	// per-rank imbalance the coordinator snapshots the run, remaps
	// parts onto ranks by measured cost, relaunches and resumes. Parts
	// stay fixed, so receiver output is bitwise identical with or
	// without rebalances. Implies Telemetry.
	AutoRebalance bool
	// MaxRebalances bounds automatic rebalances per run; 0 selects the
	// default (4).
	MaxRebalances int
	// PartRank optionally places each part on a rank explicitly
	// (len Parts, every rank owning at least one part); nil selects
	// contiguous blocks. Any placement produces bitwise-identical
	// seismograms — only wall time changes — which is what lets the
	// rebalancer move placement mid-run.
	PartRank []int
	// RebalanceThreshold, RebalanceWindow and RebalanceCooldown tune
	// the imbalance detector: a rebalance arms after Window consecutive
	// cycles whose max/mean per-rank busy ratio is at least Threshold,
	// then stays quiet for Cooldown cycles. Zero values select the
	// defaults (1.5, 3, 10).
	RebalanceThreshold float64
	RebalanceWindow    int
	RebalanceCooldown  int
}

func (Distributed) backendName() string { return "distributed" }

// parts resolves the effective decomposition width.
func (d Distributed) parts() int {
	if d.Parts == 0 {
		return d.Ranks
	}
	return d.Parts
}

// ckptEvery resolves the recovery checkpoint interval (0 → 4 cycles,
// negative → recovery off).
func (d Distributed) ckptEvery() int {
	switch {
	case d.CheckpointEvery < 0:
		return 0
	case d.CheckpointEvery == 0:
		return 4
	default:
		return d.CheckpointEvery
	}
}

// maxRecoveries resolves the recovery budget (0 → 3).
func (d Distributed) maxRecoveries() int {
	if d.MaxRecoveries <= 0 {
		return 3
	}
	return d.MaxRecoveries
}

// WithBackend selects the execution backend (default Local). The
// distributed backend is incompatible with WithWorkers > 1 (or the
// auto-sizing 0): within-rank shared-memory parallelism is not layered
// yet, and the conflict is reported at build time.
func WithBackend(b Backend) Option {
	return func(s *settings) error {
		switch be := b.(type) {
		case nil:
			return optErr("WithBackend", ErrBackendSpec, "nil backend")
		case localBackend:
			s.backend = be
		case Distributed:
			if be.Ranks < 1 {
				return optErr("WithBackend", ErrRanksRange, "got %d", be.Ranks)
			}
			if be.Parts != 0 && be.Parts < be.Ranks {
				return optErr("WithBackend", ErrPartsRange,
					"parts %d below ranks %d", be.Parts, be.Ranks)
			}
			if be.PartRank != nil && len(be.PartRank) != be.parts() {
				return optErr("WithBackend", ErrPartsRange,
					"part-rank map has %d entries for %d parts",
					len(be.PartRank), be.parts())
			}
			if be.MinRanks < 0 || be.MinRanks > be.Ranks {
				return optErr("WithBackend", ErrRanksRange,
					"min ranks %d outside [0, %d]", be.MinRanks, be.Ranks)
			}
			if be.DegradedMode && be.CheckpointEvery < 0 {
				return optErr("WithBackend", ErrCheckpointSpec,
					"DegradedMode requires recovery checkpoints (CheckpointEvery >= 0)")
			}
			s.backend = be
		default:
			return optErr("WithBackend", ErrBackendSpec, "unknown backend %T", b)
		}
		return nil
	}
}

// RankMain is the cooperative re-exec hook of the distributed backend.
// Binaries (and test binaries) that build Simulations with
// WithBackend(Distributed{...}) must call it at the top of main or
// TestMain: in a normal process it returns immediately; in a process
// spawned as a rank it runs the rank runtime and exits. Without it the
// spawned children re-run the caller's main and the coordinator's
// handshake times out.
func RankMain() { dist.RankMain() }

// buildDistributed starts the rank processes for a distributed
// configuration and wires the coordinator in as the simulation's
// stepper.
func buildDistributed(s *Simulation, set *settings, be Distributed, semSrcs []srcSpec, ac *[2]int64) error {
	cfg := dist.RunConfig{
		Mesh:       set.mesh,
		Scale:      set.scale,
		Physics:    string(set.physics),
		Degree:     set.degree,
		LevelCFL:   set.levelCFL(),
		LTS:        set.lts,
		PerElement: set.kernel == PerElement,
		Ranks:      be.Ranks,
		Parts:      be.parts(),
		Sponge: dist.SpongeSpec{
			Width:    set.sponge.Width,
			Strength: set.sponge.Strength,
			Faces:    set.sponge.Faces,
		},
	}
	part, err := getPartition(set, s.m, s.lv, cfg.Parts, ac)
	if err != nil {
		return fmt.Errorf("wave: partitioning: %w", err)
	}
	cfg.Part = part
	for _, src := range semSrcs {
		cfg.Sources = append(cfg.Sources, dist.SourceSpec{
			Dof: src.dof, F0: src.f0, T0: src.t0,
		})
	}
	recDofs := make([]int, len(s.recs))
	for i, r := range s.recs {
		recDofs[i] = r.Dof
	}
	cfg.Receivers = recDofs
	cfg.Telemetry = be.Telemetry
	if be.PartRank != nil {
		cfg.PartRank = append([]int(nil), be.PartRank...)
	}

	degraded := be.DegradedMode || set.degradedMode
	minRanks := be.MinRanks
	if set.degradedMode && set.minRanks > 0 {
		minRanks = set.minRanks
	}
	co, err := dist.Start(dist.Config{
		Run:             cfg,
		CheckpointEvery: be.ckptEvery(),
		MaxRecoveries:   be.maxRecoveries(),
		DegradedMode:    degraded,
		MinRanks:        minRanks,
		AutoRebalance:   be.AutoRebalance,
		MaxRebalances:   be.MaxRebalances,
		RebalanceDetector: tune.DetectorConfig{
			Threshold: be.RebalanceThreshold,
			Window:    be.RebalanceWindow,
			Cooldown:  be.RebalanceCooldown,
		},
	})
	if err != nil {
		return fmt.Errorf("wave: distributed backend: %w", err)
	}
	parts, err := dist.ReceiverOwnerParts(s.geom, &cfg)
	if err != nil {
		co.Close()
		return fmt.Errorf("wave: distributed backend: %w", err)
	}
	if err := co.SetReceiverParts(parts); err != nil {
		co.Close()
		return fmt.Errorf("wave: distributed backend: %w", err)
	}
	s.dist = co
	s.distCfg = &cfg
	s.stepper = &distStepper{co: co, u: make([]float64, s.geom.NDof()), recDofs: recDofs}
	return nil
}

// distStepper adapts the coordinator to the unified Stepper: one facade
// cycle advances every rank by one coarse cycle in lockstep. State is
// sparse — the full field lives sharded across the rank processes, and
// only the receiver dofs carry live values in this process (which is all
// Run reads); probes needing full fields should use the local backend.
type distStepper struct {
	co      *dist.Coordinator
	u       []float64
	recDofs []int
	t       float64
}

func (d *distStepper) Step() error { return d.StepCtx(context.Background()) }

// StepCtx is the context-aware step Run prefers: cancelling ctx mid-step
// aborts the coordinator — spawned rank processes are killed and reaped
// immediately instead of waiting out the wire step timeout.
func (d *distStepper) StepCtx(ctx context.Context) error {
	t, samples, err := d.co.StepCtx(ctx)
	if err != nil {
		return err
	}
	d.t = t
	for i, dof := range d.recDofs {
		d.u[dof] = samples[i]
	}
	return nil
}

func (d *distStepper) Time() float64    { return d.t }
func (d *distStepper) State() []float64 { return d.u }

var (
	_ Stepper    = (*distStepper)(nil)
	_ ctxStepper = (*distStepper)(nil)
)
