package wave_test

import (
	"bytes"
	"context"
	"testing"

	"golts/wave"
)

// runToCSV builds a simulation with the given options, runs it to
// completion and returns the CSV byte stream of its seismograms.
func runConfigCSV(t *testing.T, opts ...wave.Option) []byte {
	t.Helper()
	var buf bytes.Buffer
	sim, err := wave.New(append(opts, wave.WithSink(wave.CSVSink(&buf)))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.Run(context.Background(), 0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := sim.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// TestArtifactCacheBitwiseReuse is the artifact-cache acceptance bar: a
// cached (warm) run must hit the cache for every build artifact and
// produce byte-identical output to both the cold run and a cache-free
// run of the same configuration.
func TestArtifactCacheBitwiseReuse(t *testing.T) {
	cache := wave.NewArtifactCache(0)
	opts := tinyOpts(wave.WithWorkers(2), wave.WithArtifactCache(cache))

	plain := runConfigCSV(t, tinyOpts(wave.WithWorkers(2))...)
	cold := runConfigCSV(t, opts...)
	warm := runConfigCSV(t, opts...)

	if !bytes.Equal(cold, plain) {
		t.Error("cold cached run diverges from cache-free run")
	}
	if !bytes.Equal(warm, cold) {
		t.Error("warm (cache-hit) run diverges from cold run")
	}

	ctr := cache.Counters()
	if ctr.Hits == 0 {
		t.Errorf("no cache hits across two identical runs: %+v", ctr)
	}
	if ctr.Misses == 0 {
		t.Errorf("no cache misses on the cold run: %+v", ctr)
	}
}

// TestArtifactCacheStats: Stats reports per-simulation lookup/hit counts
// — zero lookups without a cache, all-hits on the warm build.
func TestArtifactCacheStats(t *testing.T) {
	cache := wave.NewArtifactCache(0)
	opts := tinyOpts(wave.WithWorkers(2), wave.WithArtifactCache(cache))

	cold, err := wave.New(opts...)
	if err != nil {
		t.Fatalf("New (cold): %v", err)
	}
	defer cold.Close()
	cs := cold.Stats()
	if cs.ArtifactLookups == 0 || cs.ArtifactHits != 0 {
		t.Errorf("cold stats = %d lookups / %d hits, want >0 / 0", cs.ArtifactLookups, cs.ArtifactHits)
	}

	warm, err := wave.New(opts...)
	if err != nil {
		t.Fatalf("New (warm): %v", err)
	}
	defer warm.Close()
	ws := warm.Stats()
	if ws.ArtifactLookups == 0 || ws.ArtifactHits != ws.ArtifactLookups {
		t.Errorf("warm stats = %d lookups / %d hits, want all hits", ws.ArtifactLookups, ws.ArtifactHits)
	}

	plain, err := wave.New(tinyOpts()...)
	if err != nil {
		t.Fatalf("New (no cache): %v", err)
	}
	defer plain.Close()
	if ps := plain.Stats(); ps.ArtifactLookups != 0 || ps.ArtifactHits != 0 {
		t.Errorf("cache-free stats = %d lookups / %d hits, want 0 / 0", ps.ArtifactLookups, ps.ArtifactHits)
	}
}

// TestArtifactCacheDistinctConfigs: different configurations coexist in
// one cache without cross-talk — each physics matches its own cache-free
// reference bitwise, and the two references differ. Cycle count is high
// enough for the wavefront to reach the receiver (at 2 cycles both
// physics still record exact zeros, which would mask cross-talk).
func TestArtifactCacheDistinctConfigs(t *testing.T) {
	cycles := wave.WithCycles(10)
	elastic := []wave.Option{wave.WithPhysics(wave.Elastic), wave.WithSourceComponent(2)}

	refA := runConfigCSV(t, tinyOpts(cycles)...)
	refB := runConfigCSV(t, append(tinyOpts(cycles), elastic...)...)
	if bytes.Equal(refA, refB) {
		t.Fatal("reference acoustic and elastic runs are byte-identical; configs unusable for a cross-talk check")
	}

	cache := wave.NewArtifactCache(0)
	a := runConfigCSV(t, tinyOpts(cycles, wave.WithArtifactCache(cache))...)
	b := runConfigCSV(t, append(tinyOpts(cycles, wave.WithArtifactCache(cache)), elastic...)...)
	if !bytes.Equal(a, refA) {
		t.Error("cached acoustic run diverges from cache-free reference")
	}
	if !bytes.Equal(b, refB) {
		t.Error("cached elastic run diverges from cache-free reference")
	}
	a2 := runConfigCSV(t, tinyOpts(cycles, wave.WithArtifactCache(cache))...)
	if !bytes.Equal(a2, refA) {
		t.Error("acoustic rerun diverged after an elastic run shared the cache")
	}
}

// TestArtifactCacheConcurrentRuns: two simulations sharing cached
// operators may step concurrently; both must match the sequential
// reference bitwise. (Operators and plans are immutable; scratch is
// pooled per goroutine.)
func TestArtifactCacheConcurrentRuns(t *testing.T) {
	cache := wave.NewArtifactCache(0)
	opts := tinyOpts(wave.WithWorkers(2), wave.WithArtifactCache(cache))
	want := runConfigCSV(t, opts...)

	type result struct {
		bytes []byte
		err   error
	}
	results := make(chan result, 2)
	for g := 0; g < 2; g++ {
		go func() {
			var buf bytes.Buffer
			sim, err := wave.New(append(opts, wave.WithSink(wave.CSVSink(&buf)))...)
			if err == nil {
				if err = sim.Run(context.Background(), 0); err == nil {
					err = sim.Close()
				}
			}
			results <- result{buf.Bytes(), err}
		}()
	}
	for g := 0; g < 2; g++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("concurrent run: %v", r.err)
		}
		if !bytes.Equal(r.bytes, want) {
			t.Fatal("concurrent cached run diverges from reference")
		}
	}
}

// TestWithArtifactCacheNil: the option rejects a nil cache eagerly.
func TestWithArtifactCacheNil(t *testing.T) {
	if err := wave.Validate(wave.WithArtifactCache(nil)); err == nil {
		t.Fatal("nil cache accepted")
	}
}
