package wave_test

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"golts/wave"
)

// ckptOpts is the shared tiny configuration of the checkpoint tests:
// explicit source and receivers so every build resolves identical dofs.
func ckptOpts(physics wave.Physics, lts bool, cycles int, extra ...wave.Option) []wave.Option {
	comp := 0
	if physics == wave.Elastic {
		comp = 1
	}
	opts := []wave.Option{
		wave.WithMesh("trench", 0.0005),
		wave.WithPhysics(physics),
		wave.WithCycles(cycles),
		wave.WithSource(wave.Source{X: 0.5, Y: 0.5, Z: 0.3, Comp: comp, F0: 10, T0: 0.05}),
		wave.WithReceiver(wave.Receiver{Name: "surf", X: 0.55, Y: 0.5, Z: 0, Comp: comp}),
		wave.WithReceiver(wave.Receiver{Name: "deep", X: 0.4, Y: 0.45, Z: 0.6, Comp: 0}),
	}
	if lts {
		opts = append(opts, wave.WithLTS())
	} else {
		opts = append(opts, wave.WithGlobalNewmark())
	}
	return append(opts, extra...)
}

// requireTail checks that got — the seismograms of a run resumed after
// cycle k — continues want bitwise from cycle k+1 on.
func requireTail(t *testing.T, want, got *wave.Seismograms, k int) {
	t.Helper()
	if len(got.Times) != len(want.Times)-k {
		t.Fatalf("resumed run recorded %d cycles, want %d", len(got.Times), len(want.Times)-k)
	}
	for i := range got.Times {
		if math.Float64bits(got.Times[i]) != math.Float64bits(want.Times[k+i]) {
			t.Fatalf("time %d: %v != %v", i, got.Times[i], want.Times[k+i])
		}
	}
	for ti, tr := range want.Traces {
		for i := range got.Traces[ti].Values {
			if math.Float64bits(got.Traces[ti].Values[i]) != math.Float64bits(tr.Values[k+i]) {
				t.Fatalf("trace %q sample %d: %v (%#x) != %v (%#x)", tr.Name, i,
					got.Traces[ti].Values[i], math.Float64bits(got.Traces[ti].Values[i]),
					tr.Values[k+i], math.Float64bits(tr.Values[k+i]))
			}
		}
	}
}

// runFull runs a configuration to completion and returns its
// seismograms.
func runFull(t *testing.T, opts ...wave.Option) *wave.Seismograms {
	t.Helper()
	sim, err := wave.New(opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sim.Close()
	if err := sim.Run(context.Background(), 0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return sim.Seismograms()
}

// TestResumeNonzeroAmplitude re-runs the resume property at a scale and
// length where the receiver samples are provably nonzero (the guard
// fails otherwise). The tiny fixtures above sample amplitudes that are
// exactly 0.0 for most of the run, so they cannot distinguish a correct
// resume from one that resets the wavefield — this one can.
func TestResumeNonzeroAmplitude(t *testing.T) {
	if testing.Short() {
		t.Skip("long nonzero-amplitude run skipped in -short")
	}
	opts := []wave.Option{
		wave.WithMesh("trench", 0.015),
		wave.WithCycles(40),
		wave.WithLTS(),
	}
	want := runFull(t, opts...)
	m := 0.0
	for _, tr := range want.Traces {
		for _, v := range tr.Values {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
	}
	if m == 0 {
		t.Fatal("vacuous reference: every receiver sample is exactly zero")
	}

	const k = 20
	path := filepath.Join(t.TempDir(), "nonzero.ckpt")
	part, err := wave.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer part.Close()
	if err := part.Run(context.Background(), k); err != nil {
		t.Fatal(err)
	}
	if err := part.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	part.Close()

	res, err := wave.Resume(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if err := res.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	requireTail(t, want, res.Seismograms(), k)
}

// TestCheckpointRoundTrip is the round-trip property: for every cycle k
// — including 0 (before any stepping) and the final cycle — a run
// checkpointed at k and resumed continues bitwise identically to the
// uninterrupted run, for both schemes and both sequential and parallel
// execution.
func TestCheckpointRoundTrip(t *testing.T) {
	const total = 6
	ks := []int{0, 1, 3, total}
	cases := []struct {
		name    string
		physics wave.Physics
		lts     bool
		workers int
	}{
		{"lts-seq", wave.Acoustic, true, 1},
		{"lts-par", wave.Acoustic, true, 2},
		{"newmark-seq", wave.Acoustic, false, 1},
		{"newmark-par", wave.Acoustic, false, 2},
		{"elastic-lts-par", wave.Elastic, true, 2},
	}
	if testing.Short() {
		cases = cases[1:2]
		ks = []int{0, 3}
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opts := ckptOpts(c.physics, c.lts, total, wave.WithWorkers(c.workers))
			want := runFull(t, opts...)
			for _, k := range ks {
				path := filepath.Join(t.TempDir(), "run.ckpt")
				sim, err := wave.New(opts...)
				if err != nil {
					t.Fatalf("k=%d: New: %v", k, err)
				}
				// Run(ctx, 0) means "the configured default", so the k=0
				// checkpoint is taken before any stepping at all.
				if k > 0 {
					if err := sim.Run(context.Background(), k); err != nil {
						t.Fatalf("k=%d: Run: %v", k, err)
					}
				}
				if err := sim.Checkpoint(path); err != nil {
					t.Fatalf("k=%d: Checkpoint: %v", k, err)
				}
				sim.Close()

				rs, err := wave.Resume(path, opts...)
				if err != nil {
					t.Fatalf("k=%d: Resume: %v", k, err)
				}
				if got, wantT := rs.Time(), want.Times; k > 0 && math.Float64bits(got) != math.Float64bits(wantT[k-1]) {
					t.Fatalf("k=%d: resumed Time() = %v, want %v", k, got, wantT[k-1])
				}
				if err := rs.Run(context.Background(), 0); err != nil {
					t.Fatalf("k=%d: resumed Run: %v", k, err)
				}
				requireTail(t, want, rs.Seismograms(), k)
				rs.Close()
			}
		})
	}
}

// TestWithCheckpointEveryResume: the periodic checkpoint a Run writes is
// itself restartable, and Run(ctx, 0) on the resumed simulation steps
// exactly the remaining cycles.
func TestWithCheckpointEveryResume(t *testing.T) {
	const total = 6
	path := filepath.Join(t.TempDir(), "run.ckpt")
	base := ckptOpts(wave.Acoustic, true, total)
	want := runFull(t, base...)

	opts := append(append([]wave.Option(nil), base...), wave.WithCheckpointEvery(path, 2))
	sim, err := wave.New(opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Interrupt after 3 cycles; the newest on-disk checkpoint is cycle 2.
	if err := sim.Run(context.Background(), 3); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n := sim.Stats().Checkpoints; n != 1 {
		t.Fatalf("Checkpoints = %d, want 1", n)
	}
	sim.Close()

	rs, err := wave.Resume(path, opts...)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer rs.Close()
	if err := rs.Run(context.Background(), 0); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	requireTail(t, want, rs.Seismograms(), 2)
	// Cycles 4 and 6 crossed the interval again on the resumed run.
	if n := rs.Stats().Checkpoints; n != 2 {
		t.Errorf("resumed Checkpoints = %d, want 2", n)
	}
}

// TestCheckpointCrossBackend: the checkpoint key pins the decomposition
// width, not the execution engine, so a local workers=4 checkpoint seeds
// a Distributed{Parts: 4} run — and the continuation is still bitwise.
func TestCheckpointCrossBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns rank processes")
	}
	const total, k = 5, 2
	path := filepath.Join(t.TempDir(), "run.ckpt")
	local := ckptOpts(wave.Acoustic, true, total, wave.WithWorkers(4))
	want := runFull(t, local...)

	sim, err := wave.New(local...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.Run(context.Background(), k); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := sim.Checkpoint(path); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	sim.Close()

	distOpts := ckptOpts(wave.Acoustic, true, total,
		wave.WithBackend(wave.Distributed{Ranks: 2, Parts: 4}))
	rs, err := wave.Resume(path, distOpts...)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer rs.Close()
	if err := rs.Run(context.Background(), 0); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	requireTail(t, want, rs.Seismograms(), k)
}

// TestResumeMismatch: checkpoints refuse to seed a run whose
// result-determining configuration differs.
func TestResumeMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	opts := ckptOpts(wave.Acoustic, true, 3)
	sim, err := wave.New(opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.Checkpoint(path); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	sim.Close()

	for _, c := range []struct {
		name  string
		other []wave.Option
	}{
		{"scale", ckptOpts(wave.Acoustic, true, 3, wave.WithMesh("trench", 0.0006))},
		{"scheme", ckptOpts(wave.Acoustic, false, 3)},
		{"width", ckptOpts(wave.Acoustic, true, 3, wave.WithWorkers(2))},
		{"seed", ckptOpts(wave.Acoustic, true, 3, wave.WithSeed(7), wave.WithWorkers(2))},
	} {
		t.Run(c.name, func(t *testing.T) {
			rs, err := wave.Resume(path, c.other...)
			if err == nil {
				rs.Close()
				t.Fatal("mismatched Resume accepted")
			}
			if !errors.Is(err, wave.ErrCheckpointMismatch) {
				t.Fatalf("error %v does not wrap ErrCheckpointMismatch", err)
			}
		})
	}

	if _, err := wave.Resume(filepath.Join(t.TempDir(), "missing.ckpt"), opts...); err == nil {
		t.Fatal("Resume of a missing file succeeded")
	}
}

// TestWithCheckpointEveryValidation: malformed checkpoint requests are
// rejected eagerly with the documented sentinel.
func TestWithCheckpointEveryValidation(t *testing.T) {
	for _, c := range []struct {
		name string
		opt  wave.Option
	}{
		{"empty-path", wave.WithCheckpointEvery("", 2)},
		{"zero-interval", wave.WithCheckpointEvery("x.ckpt", 0)},
		{"negative-interval", wave.WithCheckpointEvery("x.ckpt", -3)},
	} {
		t.Run(c.name, func(t *testing.T) {
			err := wave.Validate(c.opt)
			if err == nil {
				t.Fatal("accepted")
			}
			if !errors.Is(err, wave.ErrCheckpointSpec) {
				t.Fatalf("error %v does not wrap ErrCheckpointSpec", err)
			}
			var oe *wave.OptionError
			if !errors.As(err, &oe) || oe.Option != "WithCheckpointEvery" {
				t.Fatalf("error %v is not an *OptionError for WithCheckpointEvery", err)
			}
		})
	}
}
