package wave

import (
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"golts/internal/simio"
)

// Sink consumes the per-cycle receiver samples of a Run as they are
// produced. Open is called once before the first cycle with the resolved
// receiver list, Sample after every cycle, and Flush by Simulation.Close.
type Sink interface {
	Open(receivers []Receiver) error
	Sample(t float64, values []float64) error
	Flush() error
}

// Trace is one recorded seismogram.
type Trace struct {
	// Name labels the trace; X, Y, Z is the station position.
	Name    string
	X, Y, Z float64
	// Values holds one sample per cycle.
	Values []float64
}

// Peak returns the largest absolute sample and its time on the given time
// axis (the crude arrival picker of the legacy driver). Zeros when empty.
func (tr *Trace) Peak(times []float64) (amp, t float64) {
	for i, v := range tr.Values {
		if a := abs(v); a > amp {
			amp, t = a, times[i]
		}
	}
	return amp, t
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Seismograms is a collection of traces sharing one time axis.
type Seismograms struct {
	Times  []float64
	Traces []Trace
}

// toSet converts to the simio representation, which owns the CSV/JSON
// encodings.
func (sg *Seismograms) toSet() (*simio.SeismogramSet, error) {
	var set simio.SeismogramSet
	set.Times = append([]float64(nil), sg.Times...)
	for _, tr := range sg.Traces {
		if err := set.AddTrace(tr.Name, tr.X, tr.Y, tr.Z, sg.Times, tr.Values); err != nil {
			return nil, err
		}
	}
	return &set, nil
}

// WriteCSV writes the set as a CSV table: a time column followed by one
// column per trace.
func (sg *Seismograms) WriteCSV(w io.Writer) error {
	set, err := sg.toSet()
	if err != nil {
		return err
	}
	return set.WriteCSV(w)
}

// WriteJSON writes the set as indented JSON.
func (sg *Seismograms) WriteJSON(w io.Writer) error {
	set, err := sg.toSet()
	if err != nil {
		return err
	}
	return set.WriteJSON(w)
}

// formatSample matches simio's CSV float encoding, so the streaming sink
// and the batch writer produce identical bytes.
func formatSample(v float64) string { return strconv.FormatFloat(v, 'g', 12, 64) }

// csvSink streams one CSV row per cycle.
type csvSink struct {
	cw     *csv.Writer
	closer io.Closer
	row    []string
}

// CSVSink returns a sink that streams seismograms to w as CSV — a header
// row at Open, then one row per cycle — in the same encoding as
// Seismograms.WriteCSV.
func CSVSink(w io.Writer) Sink { return &csvSink{cw: csv.NewWriter(w)} }

func (s *csvSink) Open(receivers []Receiver) error {
	header := make([]string, len(receivers)+1)
	header[0] = "time"
	for i, r := range receivers {
		header[i+1] = r.Name
	}
	s.row = make([]string, len(header))
	return s.cw.Write(header)
}

func (s *csvSink) Sample(t float64, values []float64) error {
	if len(values)+1 != len(s.row) {
		return fmt.Errorf("wave: sample has %d values for %d columns", len(values), len(s.row)-1)
	}
	s.row[0] = formatSample(t)
	for i, v := range values {
		s.row[i+1] = formatSample(v)
	}
	return s.cw.Write(s.row)
}

func (s *csvSink) Flush() error {
	// Surface the writer error AND close the underlying file: an encode or
	// short-write failure (disk full) must never leave the file open, and a
	// close failure must never mask the write error. errors.Join keeps both.
	s.cw.Flush()
	err := s.cw.Error()
	if s.closer != nil {
		err = errors.Join(err, s.closer.Close())
	}
	return err
}

// jsonSink accumulates the run and encodes it at Flush (JSON has no
// row-streaming form that matches the batch encoding).
type jsonSink struct {
	w      io.Writer
	closer io.Closer
	set    simio.SeismogramSet
}

// JSONSink returns a sink that writes the complete seismogram set to w as
// indented JSON when it is flushed.
func JSONSink(w io.Writer) Sink { return &jsonSink{w: w} }

func (s *jsonSink) Open(receivers []Receiver) error {
	s.set.Traces = make([]simio.Trace, len(receivers))
	for i, r := range receivers {
		s.set.Traces[i] = simio.Trace{Name: r.Name, X: r.X, Y: r.Y, Z: r.Z}
	}
	return nil
}

func (s *jsonSink) Sample(t float64, values []float64) error {
	if len(values) != len(s.set.Traces) {
		return fmt.Errorf("wave: sample has %d values for %d traces", len(values), len(s.set.Traces))
	}
	s.set.Times = append(s.set.Times, t)
	for i, v := range values {
		s.set.Traces[i].Values = append(s.set.Traces[i].Values, v)
	}
	return nil
}

func (s *jsonSink) Flush() error {
	// As with csvSink: always close the file, and report the encode error
	// alongside (never masked by) any close error.
	err := s.set.WriteJSON(s.w)
	if s.closer != nil {
		err = errors.Join(err, s.closer.Close())
	}
	return err
}

// fileSink creates the file lazily at Open and selects the format by
// extension.
type fileSink struct {
	path  string
	inner Sink
}

// FileSink returns a sink that writes seismograms to path, selecting the
// format by file extension: ".json" writes indented JSON, anything else
// CSV. The file is created when the first Run opens the sink.
func FileSink(path string) Sink { return &fileSink{path: path} }

func (s *fileSink) Open(receivers []Receiver) error {
	f, err := os.Create(s.path)
	if err != nil {
		return err
	}
	if filepath.Ext(s.path) == ".json" {
		s.inner = &jsonSink{w: f, closer: f}
	} else {
		s.inner = &csvSink{cw: csv.NewWriter(f), closer: f}
	}
	return s.inner.Open(receivers)
}

func (s *fileSink) Sample(t float64, values []float64) error {
	if s.inner == nil {
		return errors.New("wave: FileSink not opened")
	}
	return s.inner.Sample(t, values)
}

func (s *fileSink) Flush() error {
	if s.inner == nil {
		return nil
	}
	return s.inner.Flush()
}

// rowCSVSink encodes each sample as one CSV row and hands the encoded
// bytes to a callback immediately — no buffering between cycles.
type rowCSVSink struct {
	fn  func(row []byte) error
	buf bytes.Buffer
	cw  *csv.Writer
	row []string
}

// RowCSVSink returns a sink that delivers seismogram output row by row:
// fn receives the encoded header line at Open and one encoded sample line
// per cycle, each including its trailing newline, in exactly the byte
// encoding of CSVSink — concatenating every row reproduces the CSVSink
// file bitwise. The slice passed to fn is reused; callers that retain
// rows must copy them. This is the streaming seam of the job server: rows
// can be forwarded to subscribers while the simulation is still running.
func RowCSVSink(fn func(row []byte) error) Sink {
	s := &rowCSVSink{fn: fn}
	s.cw = csv.NewWriter(&s.buf)
	return s
}

func (s *rowCSVSink) Open(receivers []Receiver) error {
	if s.fn == nil {
		return errors.New("wave: RowCSVSink with nil callback")
	}
	header := make([]string, len(receivers)+1)
	header[0] = "time"
	for i, r := range receivers {
		header[i+1] = r.Name
	}
	s.row = make([]string, len(header))
	return s.emit(header)
}

func (s *rowCSVSink) Sample(t float64, values []float64) error {
	if len(values)+1 != len(s.row) {
		return fmt.Errorf("wave: sample has %d values for %d columns", len(values), len(s.row)-1)
	}
	s.row[0] = formatSample(t)
	for i, v := range values {
		s.row[i+1] = formatSample(v)
	}
	return s.emit(s.row)
}

func (s *rowCSVSink) Flush() error { return nil }

func (s *rowCSVSink) emit(fields []string) error {
	s.buf.Reset()
	if err := s.cw.Write(fields); err != nil {
		return err
	}
	s.cw.Flush()
	if err := s.cw.Error(); err != nil {
		return err
	}
	return s.fn(s.buf.Bytes())
}
