package wave_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"golts/wave"
)

// tinyOpts is a fast valid base configuration for behaviour tests.
func tinyOpts(extra ...wave.Option) []wave.Option {
	return append([]wave.Option{
		wave.WithMesh("trench", 0.0005),
		wave.WithCycles(2),
	}, extra...)
}

// TestOptionValidation: every option rejects bad arguments eagerly with a
// typed *OptionError wrapping the documented sentinel.
func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name     string
		opt      wave.Option
		sentinel error
	}{
		{"WithMesh-unknown", wave.WithMesh("moon", 1), wave.ErrUnknownMesh},
		{"WithMesh-scale", wave.WithMesh("trench", 0), wave.ErrScaleRange},
		{"WithMesh-negative-scale", wave.WithMesh("trench", -2), wave.ErrScaleRange},
		{"WithPhysics", wave.WithPhysics("quantum"), wave.ErrUnknownPhysics},
		{"WithDegree-low", wave.WithDegree(0), wave.ErrDegreeRange},
		{"WithDegree-high", wave.WithDegree(13), wave.ErrDegreeRange},
		{"WithCFL", wave.WithCFL(0), wave.ErrCFLRange},
		{"WithCycles", wave.WithCycles(0), wave.ErrCyclesRange},
		{"WithWorkers", wave.WithWorkers(-1), wave.ErrWorkersRange},
		{"WithPartitioner", wave.WithPartitioner("zoltan"), wave.ErrUnknownPartitioner},
		{"WithSource-f0", wave.WithSource(wave.Source{F0: 0}), wave.ErrSourceSpec},
		{"WithSource-comp", wave.WithSource(wave.Source{F0: 1, Comp: 3}), wave.ErrComponentRange},
		{"WithSourceComponent", wave.WithSourceComponent(4), wave.ErrComponentRange},
		{"WithSink-nil", wave.WithSink(nil), wave.ErrNilArgument},
		{"WithProbe-nil", wave.WithProbe(nil), wave.ErrNilArgument},
		{"WithReceiver-comp", wave.WithReceiver(wave.Receiver{Comp: -1}), wave.ErrComponentRange},
		{"WithSponge-strength", wave.WithSponge(wave.Sponge{Strength: -1}), wave.ErrSpongeSpec},
		{"WithSponge-width", wave.WithSponge(wave.Sponge{Strength: 1, Width: 0}), wave.ErrSpongeSpec},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := wave.New(c.opt)
			if err == nil {
				t.Fatal("bad option accepted")
			}
			if !errors.Is(err, c.sentinel) {
				t.Errorf("error %v does not wrap %v", err, c.sentinel)
			}
			var oe *wave.OptionError
			if !errors.As(err, &oe) {
				t.Errorf("error %T is not an *OptionError", err)
			} else if oe.Option == "" {
				t.Error("OptionError.Option is empty")
			}
		})
	}
}

// TestCrossFieldComponentValidation: components are validated against the
// physics at build time — the eager replacement for the legacy driver's
// silent min(comp, nc-1) clamp.
func TestCrossFieldComponentValidation(t *testing.T) {
	_, err := wave.New(tinyOpts(
		wave.WithPhysics(wave.Acoustic),
		wave.WithSource(wave.Source{X: 0.5, Y: 0.5, Z: 0.5, Comp: 2, F0: 10}),
	)...)
	if !errors.Is(err, wave.ErrComponentRange) {
		t.Errorf("acoustic source comp 2: got %v, want ErrComponentRange", err)
	}
	_, err = wave.New(tinyOpts(
		wave.WithPhysics(wave.Acoustic),
		wave.WithReceiver(wave.Receiver{X: 0.5, Y: 0.5, Z: 0, Comp: 1}),
	)...)
	if !errors.Is(err, wave.ErrComponentRange) {
		t.Errorf("acoustic receiver comp 1: got %v, want ErrComponentRange", err)
	}
	_, err = wave.New(tinyOpts(
		wave.WithPhysics(wave.Acoustic),
		wave.WithSourceComponent(2),
	)...)
	if !errors.Is(err, wave.ErrComponentRange) {
		t.Errorf("acoustic default-source comp 2: got %v, want ErrComponentRange", err)
	}
	// The same components are fine for elastic.
	sim, err := wave.New(tinyOpts(
		wave.WithPhysics(wave.Elastic),
		wave.WithSource(wave.Source{X: 0.5, Y: 0.5, Z: 0.5, Comp: 2, F0: 10}),
		wave.WithReceiver(wave.Receiver{X: 0.5, Y: 0.5, Z: 0, Comp: 1}),
	)...)
	if err != nil {
		t.Fatalf("elastic comps rejected: %v", err)
	}
	sim.Close()
}

// TestRunLifecycle: context cancellation, per-cycle probes, the
// configured-default cycle count, and use-after-Close.
func TestRunLifecycle(t *testing.T) {
	sim, err := wave.New(tinyOpts(wave.WithCycles(3))...)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()

	// A cancelled context stops before the first cycle.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sim.Run(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Run: got %v, want context.Canceled", err)
	}
	if got := len(sim.Seismograms().Times); got != 0 {
		t.Errorf("cancelled Run recorded %d samples", got)
	}

	// Negative cycle counts are rejected.
	if err := sim.Run(context.Background(), -1); !errors.Is(err, wave.ErrCyclesRange) {
		t.Errorf("Run(-1): got %v, want ErrCyclesRange", err)
	}

	// cycles == 0 runs the configured default; probes fire per cycle.
	var seen []int
	err = sim.Run(context.Background(), 0, func(f wave.Frame) error {
		seen = append(seen, f.Cycle)
		if len(f.Samples) != len(sim.Receivers()) {
			t.Errorf("frame has %d samples for %d receivers", len(f.Samples), len(sim.Receivers()))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Errorf("probe cycles = %v, want [1 2 3]", seen)
	}

	// A probe error aborts the run.
	boom := errors.New("boom")
	err = sim.Run(context.Background(), 2, func(wave.Frame) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("probe error: got %v, want boom", err)
	}

	// Closed simulations refuse to run.
	if err := sim.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(context.Background(), 1); !errors.Is(err, wave.ErrClosed) {
		t.Errorf("Run after Close: got %v, want ErrClosed", err)
	}
	if err := sim.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestSnapshotEvery fires only on multiples of n.
func TestSnapshotEvery(t *testing.T) {
	sim, err := wave.New(tinyOpts(wave.WithCycles(5))...)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	var seen []int
	probe := wave.SnapshotEvery(2, func(f wave.Frame) error {
		seen = append(seen, f.Cycle)
		return nil
	})
	if err := sim.Run(context.Background(), 0, probe); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 2 || seen[1] != 4 {
		t.Errorf("snapshot cycles = %v, want [2 4]", seen)
	}
}

// TestFileSinkExtension: the output format follows the file extension —
// ".json" is JSON, anything else CSV.
func TestFileSinkExtension(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "out.json")
	csvPath := filepath.Join(dir, "out.csv")
	sim, err := wave.New(tinyOpts(
		wave.WithSink(wave.FileSink(jsonPath)),
		wave.WithSink(wave.FileSink(csvPath)),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if err := sim.Close(); err != nil {
		t.Fatal(err)
	}
	js, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(js), "{") {
		t.Errorf(".json output does not look like JSON: %q", js[:min(len(js), 20)])
	}
	cs, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(cs), "time,") {
		t.Errorf(".csv output does not look like CSV: %q", cs[:min(len(cs), 20)])
	}
}

// TestPartitionMesh validates its inputs and balances the trench across
// parts.
func TestPartitionMesh(t *testing.T) {
	if _, err := wave.PartitionMesh("moon", 1, wave.PartitionOptions{Parts: 2}); !errors.Is(err, wave.ErrUnknownMesh) {
		t.Errorf("unknown mesh: got %v", err)
	}
	if _, err := wave.PartitionMesh("trench", 0.01, wave.PartitionOptions{Parts: 0}); !errors.Is(err, wave.ErrPartsRange) {
		t.Errorf("zero parts: got %v", err)
	}
	if _, err := wave.PartitionMesh("trench", 0.01, wave.PartitionOptions{Parts: 2, Method: "zoltan"}); !errors.Is(err, wave.ErrUnknownPartitioner) {
		t.Errorf("unknown method: got %v", err)
	}
	if _, err := wave.PartitionMesh("trench", 0.01, wave.PartitionOptions{Parts: 2, Degree: 40}); !errors.Is(err, wave.ErrDegreeRange) {
		t.Errorf("bad degree: got %v", err)
	}
	rep, err := wave.PartitionMesh("trench", 0.01, wave.PartitionOptions{Parts: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != wave.ScotchP {
		t.Errorf("default method = %q, want scotch-p", rep.Method)
	}
	if len(rep.Loads) != 4 || rep.TotalImbalance > 50 {
		t.Errorf("suspicious report: loads %v, imbalance %.1f%%", rep.Loads, rep.TotalImbalance)
	}
	counts := make(map[int32]int)
	for _, p := range rep.Part {
		counts[p]++
	}
	if len(counts) != 4 {
		t.Errorf("partition uses %d of 4 parts", len(counts))
	}
}

// TestDescribe reports mesh metadata without building operators.
func TestDescribe(t *testing.T) {
	p, err := wave.Describe(wave.WithMesh("trench", 0.0005))
	if err != nil {
		t.Fatal(err)
	}
	if p.Elements <= 0 || p.Levels < 2 || p.CoarseDt <= 0 || p.X1 <= p.X0 {
		t.Errorf("implausible plan: %+v", p)
	}
	if _, err := wave.Describe(wave.WithMesh("moon", 1)); !errors.Is(err, wave.ErrUnknownMesh) {
		t.Errorf("unknown mesh: got %v", err)
	}
}

// TestStepperInterface drives the simulation manually through the unified
// Stepper.
func TestStepperInterface(t *testing.T) {
	for _, scheme := range []wave.Option{wave.WithLTS(), wave.WithGlobalNewmark()} {
		sim, err := wave.New(tinyOpts(scheme)...)
		if err != nil {
			t.Fatal(err)
		}
		st := sim.Stepper()
		t0 := st.Time()
		if err := st.Step(); err != nil {
			t.Fatal(err)
		}
		if st.Time() <= t0 {
			t.Error("Step did not advance time")
		}
		if len(st.State()) != sim.Stats().DOF {
			t.Errorf("State length %d, want %d", len(st.State()), sim.Stats().DOF)
		}
		sim.Close()
	}
}
