package wave_test

import (
	"context"
	"testing"

	"golts/internal/sem"
	"golts/wave"
)

// simdGoldenCases picks the deg=4 golden cells (the degree whose batched
// kernels go through the dispatched microkernels) and adds an elastic
// deg=4 LTS cell so all three stress passes run at full tier width.
func simdGoldenCases() []goldenCase {
	var cases []goldenCase
	for _, c := range goldenCases() {
		if c.cfg.Degree == 4 {
			cases = append(cases, c)
		}
	}
	el := goldenCases()[2] // elastic-lts-4w
	el.name = "elastic-lts-4w-deg4"
	el.cfg.Degree = 4
	cases = append(cases, el)
	return cases
}

// runGolden runs one golden case through the facade and returns its
// recorded seismogram samples plus the SIMD tier Stats reported.
func runGolden(t *testing.T, c goldenCase) ([]float64, string) {
	t.Helper()
	sim, err := wave.New(facadeOptions(c)...)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	tier := sim.Stats().SIMD
	set := sim.Seismograms()
	var vals []float64
	vals = append(vals, set.Times...)
	for _, tr := range set.Traces {
		vals = append(vals, tr.Values...)
	}
	return vals, tier
}

// TestGoldenSeismogramsAllSIMDTiers runs full wave simulations at deg=4
// under every usable microkernel tier and requires bitwise-identical
// seismograms: the tier switch must change speed only, never physics.
func TestGoldenSeismogramsAllSIMDTiers(t *testing.T) {
	for _, c := range simdGoldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			restore, err := sem.ForceSIMDTier("go")
			if err != nil {
				t.Fatal(err)
			}
			want, tier := runGolden(t, c)
			restore()
			if tier != "go" {
				t.Fatalf("Stats().SIMD = %q under forced go tier", tier)
			}
			nonzero := false
			for _, v := range want {
				if v != 0 {
					nonzero = true
					break
				}
			}
			if !nonzero {
				t.Fatal("go-tier run recorded only zeros; the comparison is vacuous")
			}
			for _, name := range sem.SIMDTiers() {
				restore, err := sem.ForceSIMDTier(name)
				if err != nil {
					t.Fatal(err)
				}
				got, tier := runGolden(t, c)
				restore()
				if tier != name {
					t.Fatalf("Stats().SIMD = %q under forced %s tier", tier, name)
				}
				if len(got) != len(want) {
					t.Fatalf("tier %s recorded %d samples, go tier %d", name, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("tier %s sample %d = %v, go tier %v (bitwise)", name, i, got[i], want[i])
					}
				}
			}
		})
	}
}
