package wave_test

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"testing"

	"golts/wave"
)

// runFaultCSV builds and runs a distributed simulation to completion,
// returning its streamed CSV bytes and its Stats.
func runFaultCSV(t *testing.T, opts ...wave.Option) ([]byte, wave.Stats) {
	t.Helper()
	var buf bytes.Buffer
	sim, err := wave.New(append(opts, wave.WithSink(wave.CSVSink(&buf)))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sim.Close()
	if err := sim.Run(context.Background(), 0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := sim.Stats()
	if err := sim.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes(), st
}

// TestSpawnedKillAtEachSubstep is the end-to-end fault matrix: a spawned
// rank process SIGKILLs itself mid-run — before stepping (substep 0) and
// at the first stiffness application of each LTS level boundary
// (substeps 1..3) — and the recovered run's streamed CSV is byte-equal
// to the fault-free reference, for both physics and both rank counts.
// The fault plan reaches the rank processes through the GOLTS_FAULT
// environment variable, exactly as `make fault-smoke` injects it.
func TestSpawnedKillAtEachSubstep(t *testing.T) {
	const parts, cycles = 4, 5
	type combo struct {
		physics wave.Physics
		ranks   int
		substep int
	}
	var cases []combo
	if testing.Short() {
		cases = []combo{{wave.Acoustic, 2, 1}}
	} else {
		for _, p := range []wave.Physics{wave.Acoustic, wave.Elastic} {
			for _, r := range []int{2, 4} {
				for s := 0; s <= 3; s++ {
					cases = append(cases, combo{p, r, s})
				}
			}
		}
	}
	// References once per physics, computed with the local engine at the
	// same decomposition width — and before the fault plan enters the
	// environment.
	refs := map[wave.Physics][]byte{}
	for _, p := range []wave.Physics{wave.Acoustic, wave.Elastic} {
		csv, _ := runFaultCSV(t, ckptOpts(p, true, cycles, wave.WithWorkers(parts))...)
		refs[p] = csv
	}
	for _, c := range cases {
		name := fmt.Sprintf("%s-r%d-s%d", c.physics, c.ranks, c.substep)
		t.Run(name, func(t *testing.T) {
			t.Setenv("GOLTS_FAULT", fmt.Sprintf("kill:rank=1,cycle=3,substep=%d", c.substep))
			csv, st := runFaultCSV(t, ckptOpts(c.physics, true, cycles,
				wave.WithBackend(wave.Distributed{
					Ranks: c.ranks, Parts: parts,
					CheckpointEvery: 1, MaxRecoveries: 2,
				}))...)
			if st.Recoveries < 1 {
				t.Fatalf("no recovery recorded (fault did not fire?); stats: %+v", st)
			}
			if st.RecoveryMillis < 0 {
				t.Fatalf("negative recovery wall time")
			}
			if !bytes.Equal(csv, refs[c.physics]) {
				t.Fatalf("recovered CSV differs from fault-free reference:\nref:\n%s\ngot:\n%s",
					refs[c.physics], csv)
			}
		})
	}
}

// TestSpawnedMultiKillSameCycle: a correlated failure — two spawned rank
// processes SIGKILL themselves in the same cycle — recovers byte-equal
// to the fault-free reference. One relaunch replaces the whole
// generation, so the double loss costs a single recovery.
func TestSpawnedMultiKillSameCycle(t *testing.T) {
	const parts, cycles = 4, 5
	ref, _ := runFaultCSV(t, ckptOpts(wave.Acoustic, true, cycles, wave.WithWorkers(parts))...)
	t.Setenv("GOLTS_FAULT", "kill:rank=0,cycle=3,substep=1;kill:rank=1,cycle=3,substep=1")
	csv, st := runFaultCSV(t, ckptOpts(wave.Acoustic, true, cycles,
		wave.WithBackend(wave.Distributed{
			Ranks: 2, Parts: parts,
			CheckpointEvery: 1, MaxRecoveries: 2,
		}))...)
	if st.Recoveries < 1 {
		t.Fatalf("no recovery recorded (double kill did not fire?); stats: %+v", st)
	}
	if !bytes.Equal(csv, ref) {
		t.Fatalf("recovered CSV differs from fault-free reference:\nref:\n%s\ngot:\n%s", ref, csv)
	}
}

// TestSpawnedDegradedMode: a spawned rank killed in generation 0 and
// again during the recovery replay (gen=1 plan) exhausts MaxRecoveries
// of 1; with WithDegradedMode the coordinator retires it, redistributes
// its parts onto the survivor, and the finished CSV is byte-equal to the
// fault-free reference.
func TestSpawnedDegradedMode(t *testing.T) {
	const parts, cycles = 4, 5
	ref, _ := runFaultCSV(t, ckptOpts(wave.Acoustic, true, cycles, wave.WithWorkers(parts))...)
	t.Setenv("GOLTS_FAULT", "kill:rank=1,cycle=3,substep=1;kill:rank=1,cycle=1,substep=1,gen=1")
	csv, st := runFaultCSV(t, ckptOpts(wave.Acoustic, true, cycles,
		wave.WithDegradedMode(1),
		wave.WithBackend(wave.Distributed{
			Ranks: 2, Parts: parts,
			CheckpointEvery: 1, MaxRecoveries: 1,
		}))...)
	if st.DegradedRanks != 1 {
		t.Fatalf("DegradedRanks = %d, want 1; stats: %+v", st.DegradedRanks, st)
	}
	if st.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1 (second failure must degrade)", st.Recoveries)
	}
	if !bytes.Equal(csv, ref) {
		t.Fatalf("degraded CSV differs from fault-free reference:\nref:\n%s\ngot:\n%s", ref, csv)
	}
}

// TestKillRecoveryNonzeroAmplitude is the facade-level regression for
// the stale-replica checkpoint bug: the substep matrix above runs at an
// amplitude where every sample is exactly 0.0, so it cannot see a
// recovery that resets the wavefield. This run is long enough for the
// wave to reach the receivers (the guard proves it), a rank is killed
// mid-run, and the recovered seismograms must still match a fault-free
// local run sample for sample. CheckpointEvery 4 forces recovery to
// replay the cycles between the last snapshot and the failure.
func TestKillRecoveryNonzeroAmplitude(t *testing.T) {
	if testing.Short() {
		t.Skip("long nonzero-amplitude run skipped in -short")
	}
	opts := []wave.Option{
		wave.WithMesh("trench", 0.015),
		wave.WithCycles(40),
		wave.WithLTS(),
	}
	full, err := wave.New(append(opts, wave.WithWorkers(4))...)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if err := full.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	ref := full.Seismograms()
	refMax := 0.0
	for i := range ref.Traces {
		for _, v := range ref.Traces[i].Values {
			if a := math.Abs(v); a > refMax {
				refMax = a
			}
		}
	}
	if refMax == 0 {
		t.Fatal("vacuous reference: every receiver sample is exactly zero")
	}

	t.Setenv("GOLTS_FAULT", "kill:rank=1,cycle=20,substep=1")
	sim, err := wave.New(append(opts, wave.WithBackend(wave.Distributed{
		Ranks: 2, Parts: 4, CheckpointEvery: 4, MaxRecoveries: 2,
	}))...)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if sim.Stats().Recoveries < 1 {
		t.Fatal("no recovery recorded (fault did not fire?)")
	}
	got := sim.Seismograms()
	bad := 0
	for i := range ref.Traces {
		for k := range ref.Traces[i].Values {
			if ref.Traces[i].Values[k] != got.Traces[i].Values[k] {
				if bad < 6 {
					t.Errorf("trace %d sample %d: want %.17g got %.17g",
						i, k, ref.Traces[i].Values[k], got.Traces[i].Values[k])
				}
				bad++
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%d mismatched samples", bad)
	}
}

// TestDegradedModeNonzeroAmplitude is the tentpole acceptance: a rank
// killed past MaxRecoveries at an amplitude where the wave has provably
// reached the receivers, with the run completing on the survivor and the
// seismograms matching the fault-free local reference sample for
// sample. CheckpointEvery 4 makes both the recovery and the shrink
// replay several cycles.
func TestDegradedModeNonzeroAmplitude(t *testing.T) {
	if testing.Short() {
		t.Skip("long nonzero-amplitude run skipped in -short")
	}
	opts := []wave.Option{
		wave.WithMesh("trench", 0.015),
		wave.WithCycles(40),
		wave.WithLTS(),
	}
	full, err := wave.New(append(opts, wave.WithWorkers(4))...)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if err := full.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	ref := full.Seismograms()
	refMax := 0.0
	for i := range ref.Traces {
		for _, v := range ref.Traces[i].Values {
			if a := math.Abs(v); a > refMax {
				refMax = a
			}
		}
	}
	if refMax == 0 {
		t.Fatal("vacuous reference: every receiver sample is exactly zero")
	}

	t.Setenv("GOLTS_FAULT", "kill:rank=1,cycle=20,substep=1;kill:rank=1,cycle=1,substep=1,gen=1")
	sim, err := wave.New(append(opts,
		wave.WithDegradedMode(1),
		wave.WithBackend(wave.Distributed{
			Ranks: 2, Parts: 4, CheckpointEvery: 4, MaxRecoveries: 1,
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if err := sim.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	if st.DegradedRanks != 1 {
		t.Fatalf("DegradedRanks = %d, want 1; stats: %+v", st.DegradedRanks, st)
	}
	got := sim.Seismograms()
	bad := 0
	for i := range ref.Traces {
		for k := range ref.Traces[i].Values {
			if ref.Traces[i].Values[k] != got.Traces[i].Values[k] {
				if bad < 6 {
					t.Errorf("trace %d sample %d: want %.17g got %.17g",
						i, k, ref.Traces[i].Values[k], got.Traces[i].Values[k])
				}
				bad++
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%d mismatched samples", bad)
	}
}
