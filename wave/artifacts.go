package wave

import (
	"fmt"
	"strconv"

	"golts/internal/decomp"
	"golts/internal/mesh"
	"golts/internal/sem"
)

// DefaultArtifactCacheSize bounds an ArtifactCache built by
// NewArtifactCache(0). Entries are whole meshes, operators, partitions
// and batch plans, so a long-running service with a handful of hot
// configurations stays far below it.
const DefaultArtifactCacheSize = 64

// ArtifactCache shares the expensive, immutable build products of a
// Simulation — the generated mesh with its LTS level assignment, the
// spectral-element operator with its GLL tables, the element partition,
// and the per-element-set batch plans — across Simulations with matching
// configurations. Every artifact is keyed by the canonical string of the
// options that determine it, entries are LRU-bounded, and concurrent
// builds of one artifact are collapsed into a single construction
// (decomp.Memo's single-flight), which is what lets a job server run the
// same configuration many times while building its operators exactly
// once.
//
// Sharing is safe because every cached artifact is immutable after
// construction: operators only read their tables under AddKu/AddKuBatch
// (scratch is pooled or caller-owned), batch plans are documented
// concurrent-read-safe, and partitions are copied out on every lookup as
// defence against caller mutation. Results are unchanged by cache hits —
// cold and cached runs of one configuration are bitwise identical.
//
// Use one cache per process (e.g. the waved daemon's) and attach it with
// WithArtifactCache. The zero value is not usable; call NewArtifactCache.
type ArtifactCache struct {
	memo *decomp.Memo[any]
}

// NewArtifactCache creates an artifact cache bounded to max entries
// (max <= 0 means DefaultArtifactCacheSize).
func NewArtifactCache(max int) *ArtifactCache {
	if max <= 0 {
		max = DefaultArtifactCacheSize
	}
	return &ArtifactCache{memo: decomp.NewMemo[any](max)}
}

// Counters reports the cache's cumulative hit/miss/eviction counters
// across all artifact kinds — the numbers behind a service's cache
// hit-rate metric.
func (c *ArtifactCache) Counters() decomp.MemoCounters { return c.memo.Counters() }

// Len returns the number of cached artifacts.
func (c *ArtifactCache) Len() int { return c.memo.Len() }

// WithArtifactCache attaches a shared artifact cache: mesh generation,
// operator construction, partitioning and batch-plan construction
// consult it before building. Simulations with distinct configurations
// coexist in one cache; Stats reports this simulation's lookup and hit
// counts.
func WithArtifactCache(c *ArtifactCache) Option {
	return func(s *settings) error {
		if c == nil {
			return optErr("WithArtifactCache", ErrNilArgument, "nil cache")
		}
		s.artifacts = c
		return nil
	}
}

// meshLevels is the cached pair of a generated mesh and its level
// assignment (always derived together: the levels depend only on the
// mesh and the normalised CFL in the key).
type meshLevels struct {
	m  *mesh.Mesh
	lv *mesh.Levels
}

// Canonical artifact keys. Floats print with %.17g so every distinct
// value gets a distinct key (full round-trip precision).
func (s *settings) meshKey() string {
	return fmt.Sprintf("mesh|%s|%.17g|%.17g", s.mesh, s.scale, s.levelCFL())
}

func (s *settings) opKey() string {
	return fmt.Sprintf("op|%s|%.17g|%s|%d", s.mesh, s.scale, s.physics, s.degree)
}

func (s *settings) partKey(k int) string {
	return fmt.Sprintf("part|%s|%.17g|%.17g|%d|%s|%d", s.mesh, s.scale, s.levelCFL(), k, s.partitioner, s.seed)
}

// getMesh returns the (mesh, levels) pair for the settings, cached when
// an artifact cache is attached. counts receives (lookups, hits) deltas.
func getMesh(set *settings, counts *[2]int64) (*mesh.Mesh, *mesh.Levels) {
	build := func() meshLevels {
		m := mesh.Generators[set.mesh](set.scale)
		return meshLevels{m: m, lv: mesh.AssignLevels(m, set.levelCFL(), 0)}
	}
	if set.artifacts == nil {
		ml := build()
		return ml.m, ml.lv
	}
	v, hit, _ := set.artifacts.memo.Get(set.meshKey(), func() (any, error) { return build(), nil })
	counts[0]++
	if hit {
		counts[1]++
	}
	ml := v.(meshLevels)
	return ml.m, ml.lv
}

// getOperator builds (or retrieves) the geometry operator and, when a
// cache is attached, wraps it so batch-plan construction is shared too.
func getOperator(set *settings, m *mesh.Mesh, counts *[2]int64) (geomOperator, error) {
	build := func() (geomOperator, error) {
		switch set.physics {
		case Acoustic:
			return sem.NewAcoustic3D(m, set.degree, false)
		case Elastic:
			return sem.NewElastic3D(m, set.degree, false, 0)
		default:
			return nil, optErr("WithPhysics", ErrUnknownPhysics, "%q", set.physics)
		}
	}
	if set.artifacts == nil {
		return build()
	}
	key := set.opKey()
	v, hit, err := set.artifacts.memo.Get(key, func() (any, error) {
		op, err := build()
		if err != nil {
			return nil, err
		}
		return op, nil
	})
	counts[0]++
	if err != nil {
		return nil, err
	}
	if hit {
		counts[1]++
	}
	geom := v.(geomOperator)
	// Batch-plan sharing needs the optional interfaces; every concrete
	// operator has them, but fall back to the bare operator if not.
	if bk, ok := geom.(sem.BatchKernel); ok {
		if conn, ok := geom.(sem.Connectivity); ok {
			return &sharedOp{geomOperator: geom, bk: bk, conn: conn, key: key, memo: set.artifacts.memo}, nil
		}
	}
	return geom, nil
}

// getPartition assigns (or retrieves) the k-way element partition. The
// cached assignment is copied out on every lookup, so a caller mutating
// its slice can never corrupt another simulation's decomposition.
func getPartition(set *settings, m *mesh.Mesh, lv *mesh.Levels, k int, counts *[2]int64) ([]int32, error) {
	if set.artifacts == nil {
		return partitionAssign(m, lv, k, set)
	}
	v, hit, err := set.artifacts.memo.Get(set.partKey(k), func() (any, error) {
		part, err := partitionAssign(m, lv, k, set)
		if err != nil {
			return nil, err
		}
		return part, nil
	})
	counts[0]++
	if err != nil {
		return nil, err
	}
	if hit {
		counts[1]++
	}
	return append([]int32(nil), v.([]int32)...), nil
}

// sharedOp wraps a cached geometry operator so that batch plans — one
// per stable element set: per LTS level, per engine part — are built
// once per configuration and shared. Plans are immutable and
// concurrent-read-safe, and AddKuBatch accepts any plan built by the
// inner operator, so forwarding preserves the bitwise contract exactly.
type sharedOp struct {
	geomOperator
	bk   sem.BatchKernel
	conn sem.Connectivity
	key  string // owning operator's artifact key, scoping the plan keys
	memo *decomp.Memo[any]
}

// ConnTable forwards the flat connectivity table (sem.Connectivity).
func (s *sharedOp) ConnTable() ([]int32, int) { return s.conn.ConnTable() }

// NewBatchPlan implements sem.BatchKernel with memoized construction:
// identical element lists across simulations of one configuration share
// one plan. A fingerprint collision is detected by comparing the plan's
// element list and degrades to an uncached build — never a wrong plan.
func (s *sharedOp) NewBatchPlan(elems []int32) sem.BatchPlan {
	key := "bplan|" + s.key + "|" + strconv.Itoa(len(elems)) + "|" + strconv.FormatUint(hashElems(elems), 16)
	v, _, _ := s.memo.Get(key, func() (any, error) { return s.bk.NewBatchPlan(elems), nil })
	pl, _ := v.(sem.BatchPlan)
	if pl == nil || !sameElems(pl.Elems(), elems) {
		return s.bk.NewBatchPlan(elems)
	}
	return pl
}

// AddKuBatch forwards to the inner operator (sem.BatchKernel).
func (s *sharedOp) AddKuBatch(dst, u []float64, plan sem.BatchPlan, bs *sem.BatchScratch) {
	s.bk.AddKuBatch(dst, u, plan, bs)
}

// hashElems is FNV-1a over the element ids.
func hashElems(elems []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, e := range elems {
		for sh := 0; sh < 32; sh += 8 {
			h ^= uint64(uint8(e >> sh))
			h *= 1099511628211
		}
	}
	return h
}

func sameElems(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

var (
	_ sem.BatchKernel  = (*sharedOp)(nil)
	_ sem.Connectivity = (*sharedOp)(nil)
	_ geomOperator     = (*sharedOp)(nil)
)
