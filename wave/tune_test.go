package wave_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"golts/wave"
)

// TestWithTelemetryLocal: telemetry fills the per-level table and the
// per-worker busy counters on the local backend, and stays empty when
// off.
func TestWithTelemetryLocal(t *testing.T) {
	sim, err := wave.New(
		wave.WithMesh("trench", 0.02),
		wave.WithWorkers(2),
		wave.WithCycles(2),
		wave.WithTelemetry(),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sim.Close()
	if err := sim.Run(context.Background(), 0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := sim.Stats()
	if len(st.LevelTimes) != st.Levels {
		t.Fatalf("LevelTimes has %d rows for %d levels", len(st.LevelTimes), st.Levels)
	}
	var total int64
	for _, lt := range st.LevelTimes {
		if len(lt.RankNanos) != 1 {
			t.Fatalf("local level row has %d columns", len(lt.RankNanos))
		}
		total += lt.RankNanos[0]
	}
	if total <= 0 {
		t.Errorf("level telemetry sums to %d, want > 0", total)
	}
	if len(st.WorkerBusyNanos) != 2 {
		t.Fatalf("WorkerBusyNanos has %d entries for 2 workers", len(st.WorkerBusyNanos))
	}
	for w, n := range st.WorkerBusyNanos {
		if n <= 0 {
			t.Errorf("worker %d busy %d, want > 0", w, n)
		}
	}

	off, err := wave.New(wave.WithMesh("trench", 0.02), wave.WithCycles(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer off.Close()
	if err := off.Run(context.Background(), 0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st := off.Stats(); len(st.LevelTimes) != 0 || len(st.WorkerBusyNanos) != 0 {
		t.Error("telemetry reported with it disabled")
	}
}

// TestWithAutoTune: calibration probes the local grid, selects a valid
// shape, publishes the measured-vs-predicted table, and caches the plan
// in the artifact cache so a second build of the same configuration
// skips the probes.
func TestWithAutoTune(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probes skipped in -short")
	}
	cache := wave.NewArtifactCache(0)
	opts := []wave.Option{
		wave.WithMesh("trench", 0.02),
		wave.WithCycles(2),
		wave.WithArtifactCache(cache),
		wave.WithAutoTune(30 * time.Second),
	}
	sim, err := wave.New(opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sim.Close()
	plan := sim.TunePlan()
	if plan == nil || !plan.Valid() {
		t.Fatalf("invalid plan: %+v", plan)
	}
	st := sim.Stats()
	if st.TunedWorkers != plan.Best.Workers || st.TunedWorkers < 1 {
		t.Errorf("TunedWorkers = %d, plan best %d", st.TunedWorkers, plan.Best.Workers)
	}
	if st.Workers != plan.Best.Workers {
		t.Errorf("plan not applied: workers %d, best %d", st.Workers, plan.Best.Workers)
	}
	if string(st.TunedKernel) != plan.Best.Kernel {
		t.Errorf("TunedKernel = %q, plan best %q", st.TunedKernel, plan.Best.Kernel)
	}
	// The measured-vs-predicted table must cover at least two shapes
	// with a nonzero model prediction for the fit to mean anything.
	predicted := 0
	for _, m := range plan.Measurements {
		if m.Err == "" && m.PredictedNanos > 0 && m.CycleNanos > 0 {
			predicted++
		}
	}
	if predicted < 2 {
		t.Errorf("only %d measurements carry predictions, want >= 2:\n%+v", predicted, plan.Measurements)
	}

	// Same configuration, same cache: the plan is reused, not re-probed.
	sim2, err := wave.New(opts...)
	if err != nil {
		t.Fatalf("second New: %v", err)
	}
	defer sim2.Close()
	if sim2.TunePlan() != plan {
		t.Error("second build did not reuse the cached plan")
	}

	if _, err := wave.New(wave.WithAutoTune(0)); !errors.Is(err, wave.ErrTuneSpec) {
		t.Errorf("WithAutoTune(0) error = %v, want ErrTuneSpec", err)
	}
}

// TestRebalanceBitwiseNonzeroAmplitude is the acceptance regression for
// the runtime load balancer: a distributed run started on a maximally
// skewed part→rank placement triggers at least one automatic mid-run
// rebalance and still streams receiver CSV byte-identical to the
// rebalance-free run of the same decomposition — at an amplitude where
// the wave has reached the receivers, so a rebalance that perturbed the
// field could not hide in a sea of zeros.
func TestRebalanceBitwiseNonzeroAmplitude(t *testing.T) {
	if testing.Short() {
		t.Skip("long nonzero-amplitude run skipped in -short")
	}
	opts := []wave.Option{
		wave.WithMesh("trench", 0.015),
		wave.WithCycles(40),
		wave.WithLTS(),
	}
	run := func(be wave.Distributed) ([]byte, wave.Stats, float64) {
		var buf bytes.Buffer
		sim, err := wave.New(append(opts, wave.WithBackend(be), wave.WithSink(wave.CSVSink(&buf)))...)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer sim.Close()
		if err := sim.Run(context.Background(), 0); err != nil {
			t.Fatalf("Run: %v", err)
		}
		peak := 0.0
		seis := sim.Seismograms()
		for i := range seis.Traces {
			for _, v := range seis.Traces[i].Values {
				if a := math.Abs(v); a > peak {
					peak = a
				}
			}
		}
		return buf.Bytes(), sim.Stats(), peak
	}

	refCSV, refStats, refPeak := run(wave.Distributed{Ranks: 2, Parts: 4})
	if refStats.Rebalances != 0 {
		t.Fatalf("reference run rebalanced %d times", refStats.Rebalances)
	}
	if refPeak == 0 {
		t.Fatal("vacuous reference: every receiver sample is exactly zero")
	}

	csv, st, _ := run(wave.Distributed{
		Ranks: 2, Parts: 4,
		PartRank:           []int{0, 0, 0, 1}, // rank 0 carries 3 of 4 parts
		AutoRebalance:      true,
		RebalanceThreshold: 1.2, RebalanceWindow: 2, RebalanceCooldown: 3,
	})
	if st.Rebalances < 1 {
		t.Fatalf("no automatic rebalance triggered; stats: %+v", st)
	}
	if !bytes.Equal(csv, refCSV) {
		t.Fatalf("rebalanced CSV differs from rebalance-free reference:\nref:\n%s\ngot:\n%s", refCSV, csv)
	}
}
